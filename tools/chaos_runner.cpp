/**
 * @file
 * chaos_runner: deterministic fault-injection sweep over the
 * microbench corpus.
 *
 * For each seed the runner executes a rotating slice of the corpus
 * with the FaultInjector enabled, cross-checks the runtime invariants
 * after every GC cycle and at end of run, and (with -repro) replays
 * each run to assert the fault schedule is byte-identical — the
 * determinism contract of seed-driven chaos.
 *
 * Usage:
 *   chaos_runner [options]
 *     -seeds <n>          number of seeds to sweep (default 25)
 *     -seed-base <n>      first master seed (default 1)
 *     -match <regex>      only run patterns whose name matches
 *     -per-seed <n>       corpus patterns per seed, rotating so the
 *                         sweep covers the whole corpus (default 6;
 *                         0 = whole corpus every seed)
 *     -procs <list>       comma-separated GOMAXPROCS values cycled
 *                         across runs (default 1,2,4)
 *     -panic-prob <p>     injected-panic probability    (default 0.002)
 *     -spurious-prob <p>  spurious-wakeup probability   (default 0.01)
 *     -delayed-prob <p>   delayed-wakeup probability    (default 0.01)
 *     -allocfail-prob <p> simulated-OOM probability     (default 0.002)
 *     -forcegc-prob <p>   forced-collection probability (default 0.005)
 *     -reclaimfail-prob <p> throwing-reclaim probability (default 0.05)
 *     -spanmap-prob <p>   injected span-mmap-failure probability
 *                         (default 0; pool backend only — drawn from
 *                         a dedicated RNG stream so enabling it does
 *                         not shift the shared fault schedule)
 *     -memlimit <MiB>     soft heap limit per runtime (0 = off);
 *                         arms the memory-pressure ladder: pacing,
 *                         scavenge, forced GOLF, shed, fatal report
 *     -scavenge           release the retired-span cache after every
 *                         GC cycle (MemConfig::scavengeOnGc)
 *     -repro              run every configuration twice and require
 *                         byte-identical fault traces (the SpanMap
 *                         stream included) plus identical
 *                         report/cancel/fatal-OOM counts
 *     -obs-repro          run every configuration at gcWorkers 1, 2
 *                         and 4 and require byte-identical obs output
 *                         (metrics JSON, Prometheus text, goroutine /
 *                         block / mutex profiles, flight-recorder
 *                         drain); forces profile rates on if unset
 *     -metrics <path>     write the last run's metrics JSON to path;
 *                         with a profile rate armed, also writes
 *                         <path>.block.folded / <path>.mutex.folded
 *     -alloc <backend>    allocator backend: pool (default) or
 *                         legacy; outcomes are identical for either
 *                         (the -alloc=<backend> spelling also works)
 *     -gctrace            print one line per GC/GOLF cycle (stderr)
 *     -flight <records>   flight-recorder ring capacity per P
 *                         (0 disables; default 4096)
 *     -blockprofile <ns>  block-profile sampling rate in virtual ns
 *     -mutexprofile <ns>  mutex-profile sampling rate in virtual ns
 *     -no-obs             disable telemetry entirely (one branch per
 *                         trace-event site)
 *     -race               run under the race detector (happens-before
 *                         race checking + lock-order analysis); race
 *                         and cycle totals are reported per sweep
 *     -watchdog           enable the blocked-goroutine watchdog
 *                         (forces off-cycle detection passes)
 *     -recovery <rung>    recovery ladder rung: detect, cancel,
 *                         reclaim (default) or quarantine; the
 *                         -recovery=<rung> spelling also works
 *     -v                  per-run output
 *
 * Cluster mode (-shards N with N >= 2 switches the sweep from the
 * microbench corpus to golf::cluster end-to-end runs):
 *     -shards <n>         shard count (>= 2 selects cluster mode)
 *     -netfault           enable inter-shard link fault injection
 *                         (drop/dup/reorder/delay at the defaults
 *                         below; override with the -net-* flags)
 *     -net-drop-prob <p>    link drop probability      (default 0.08)
 *     -net-dup-prob <p>     link duplicate probability (default 0.05)
 *     -net-reorder-prob <p> link reorder probability   (default 0.05)
 *     -net-delay-prob <p>   link delay probability     (default 0.05)
 *     -partition          force one partition: shard 1 loses every
 *                         link during [250ms, 700ms) virtual time,
 *                         then heals inside the run
 *     -leak-prob <p>      P(handler leaks forever)     (default 0.06)
 *     -restart <s@ms>     schedule a rolling restart of shard s at
 *                         virtual millisecond ms (repeatable)
 *     -verify             require, per seed: zero false-positive
 *                         cross-shard verdicts, >= 95%% detection of
 *                         injected leaks whose waiter survived, and
 *                         every issued call completed or cancelled
 *     -repro              (cluster mode) run every seed twice and at
 *                         swapped -gc-workers and require the repro
 *                         transcript byte-identical both ways
 *
 * Exit status: 0 iff zero invariant violations, zero reproducibility
 * mismatches, zero unexpected runtime failures and zero unexpected
 * quarantines (quarantines with reclaim-fault injection disabled).
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "mc/mc.hpp"
#include "microbench/harness.hpp"
#include "microbench/registry.hpp"
#include "obs/obs.hpp"

namespace {

using namespace golf;
using namespace golf::microbench;

struct Options
{
    int seeds = 25;
    uint64_t seedBase = 1;
    std::string match;
    int perSeed = 6;
    std::vector<int> procs{1, 2, 4};
    int gcWorkers = 0; // 0 = auto (hardware concurrency)
    gc::AllocBackend backend = gc::AllocBackend::Pool;
    rt::FaultConfig faults;
    bool repro = false;
    bool obsRepro = false;
    obs::Config obs;
    std::string metricsPath;
    bool race = false;
    bool watchdog = false;
    rt::Recovery recovery = rt::Recovery::Reclaim;
    bool verbose = false;
    /** Soft heap limit in MiB (0 = ladder off). */
    uint64_t memlimitMiB = 0;
    /** Scavenge the retired-span cache after every GC cycle. */
    bool scavenge = false;

    // Model-checking replay mode: re-execute a golf_mc trace and
    // byte-compare the verdict.
    std::string mcCheck;

    // Cluster mode (-shards >= 2).
    int shards = 0;
    bool netfault = false;
    bool partition = false;
    bool verify = false;
    double leakProb = 0.06;
    double netDropProb = 0.08;
    double netDupProb = 0.05;
    double netReorderProb = 0.05;
    double netDelayProb = 0.05;
    std::vector<cluster::ScheduledRestart> restarts;
};

bool
parseArgs(int argc, char** argv, Options& opt)
{
    opt.faults.enabled = true;
    opt.faults.panicProb = 0.02;
    opt.faults.spuriousWakeupProb = 0.10;
    opt.faults.delayedWakeupProb = 0.10;
    opt.faults.allocFailProb = 0.01;
    opt.faults.forceGcProb = 0.05;
    opt.faults.reclaimFailureProb = 0.25;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept both -flag and --flag spellings.
        if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-')
            arg.erase(0, 1);
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        auto nextD = [&](double& out) {
            const char* v = next();
            if (!v)
                return false;
            out = std::atof(v);
            if (out < 0.0 || out > 1.0) {
                std::fprintf(stderr,
                             "probability out of [0,1]: %s %s\n",
                             argv[i - 1], v);
                return false;
            }
            return true;
        };
        if (arg == "-seeds") {
            const char* v = next();
            if (!v)
                return false;
            opt.seeds = std::atoi(v);
        } else if (arg == "-mc-check") {
            const char* v = next();
            if (!v)
                return false;
            opt.mcCheck = v;
        } else if (arg == "-seed-base") {
            const char* v = next();
            if (!v)
                return false;
            opt.seedBase = static_cast<uint64_t>(std::atoll(v));
        } else if (arg == "-match") {
            const char* v = next();
            if (!v)
                return false;
            opt.match = v;
        } else if (arg == "-per-seed") {
            const char* v = next();
            if (!v)
                return false;
            opt.perSeed = std::atoi(v);
        } else if (arg == "-procs") {
            const char* v = next();
            if (!v)
                return false;
            opt.procs.clear();
            std::stringstream ss(v);
            std::string tok;
            while (std::getline(ss, tok, ','))
                opt.procs.push_back(std::atoi(tok.c_str()));
        } else if (arg == "-gc-workers") {
            const char* v = next();
            if (!v)
                return false;
            opt.gcWorkers = std::atoi(v);
        } else if (arg == "-alloc" || arg.rfind("-alloc=", 0) == 0) {
            const char* v = arg == "-alloc"
                ? next() : arg.c_str() + std::strlen("-alloc=");
            if (v && std::strcmp(v, "pool") == 0) {
                opt.backend = gc::AllocBackend::Pool;
            } else if (v && std::strcmp(v, "legacy") == 0) {
                opt.backend = gc::AllocBackend::Legacy;
            } else {
                std::fprintf(stderr, "-alloc wants pool|legacy\n");
                return false;
            }
        } else if (arg == "-panic-prob") {
            if (!nextD(opt.faults.panicProb))
                return false;
        } else if (arg == "-spurious-prob") {
            if (!nextD(opt.faults.spuriousWakeupProb))
                return false;
        } else if (arg == "-delayed-prob") {
            if (!nextD(opt.faults.delayedWakeupProb))
                return false;
        } else if (arg == "-allocfail-prob") {
            if (!nextD(opt.faults.allocFailProb))
                return false;
        } else if (arg == "-forcegc-prob") {
            if (!nextD(opt.faults.forceGcProb))
                return false;
        } else if (arg == "-reclaimfail-prob") {
            if (!nextD(opt.faults.reclaimFailureProb))
                return false;
        } else if (arg == "-spanmap-prob") {
            if (!nextD(opt.faults.spanMapFailProb))
                return false;
        } else if (arg == "-memlimit") {
            const char* v = next();
            if (!v)
                return false;
            opt.memlimitMiB = static_cast<uint64_t>(std::atoll(v));
        } else if (arg == "-scavenge") {
            opt.scavenge = true;
        } else if (arg == "-repro") {
            opt.repro = true;
        } else if (arg == "-obs-repro") {
            opt.obsRepro = true;
        } else if (arg == "-metrics") {
            const char* v = next();
            if (!v)
                return false;
            opt.metricsPath = v;
        } else if (arg == "-gctrace") {
            opt.obs.gctrace = true;
        } else if (arg == "-flight") {
            const char* v = next();
            if (!v)
                return false;
            opt.obs.flightRecords =
                static_cast<size_t>(std::atoll(v));
        } else if (arg == "-blockprofile") {
            const char* v = next();
            if (!v)
                return false;
            opt.obs.blockProfileRateNs =
                static_cast<uint64_t>(std::atoll(v));
        } else if (arg == "-mutexprofile") {
            const char* v = next();
            if (!v)
                return false;
            opt.obs.mutexProfileRateNs =
                static_cast<uint64_t>(std::atoll(v));
        } else if (arg == "-no-obs") {
            opt.obs.enabled = false;
        } else if (arg == "-race") {
            opt.race = true;
        } else if (arg == "-watchdog") {
            opt.watchdog = true;
        } else if (arg == "-recovery" ||
                   arg.rfind("-recovery=", 0) == 0) {
            const char* v = arg == "-recovery"
                ? next() : arg.c_str() + std::strlen("-recovery=");
            if (!v || !rt::parseRecovery(v, opt.recovery)) {
                std::fprintf(stderr,
                             "-recovery wants detect|cancel|reclaim|"
                             "quarantine\n");
                return false;
            }
        } else if (arg == "-v") {
            opt.verbose = true;
        } else if (arg == "-shards") {
            const char* v = next();
            if (!v)
                return false;
            opt.shards = std::atoi(v);
        } else if (arg == "-netfault") {
            opt.netfault = true;
        } else if (arg == "-partition") {
            opt.partition = true;
        } else if (arg == "-verify") {
            opt.verify = true;
        } else if (arg == "-leak-prob") {
            if (!nextD(opt.leakProb))
                return false;
        } else if (arg == "-net-drop-prob") {
            if (!nextD(opt.netDropProb))
                return false;
        } else if (arg == "-net-dup-prob") {
            if (!nextD(opt.netDupProb))
                return false;
        } else if (arg == "-net-reorder-prob") {
            if (!nextD(opt.netReorderProb))
                return false;
        } else if (arg == "-net-delay-prob") {
            if (!nextD(opt.netDelayProb))
                return false;
        } else if (arg == "-restart") {
            const char* v = next();
            if (!v)
                return false;
            int s = 0;
            long ms = 0;
            if (std::sscanf(v, "%d@%ld", &s, &ms) != 2) {
                std::fprintf(stderr,
                             "-restart wants <shard>@<ms>, got %s\n",
                             v);
                return false;
            }
            opt.restarts.push_back(
                {s, static_cast<support::VTime>(ms) *
                        support::kMillisecond});
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
            return false;
        }
    }
    return opt.seeds > 0 && !opt.procs.empty();
}

/** True for the one fault outcome that legitimately ends a run: a
 *  second injected allocation failure before the emergency collection
 *  could complete (the simulated double-OOM). */
bool
isInjectedOom(const RunOutcome& out)
{
    return out.failureMessage.find("injected allocation failure") !=
           std::string::npos;
}

/** The FatalReport rung ended the run: live bytes stayed over the
 *  soft limit past the grace window. With -memlimit armed this is a
 *  deliberate, replayable outcome, not a runner bug. */
bool
isFatalOom(const RunOutcome& out)
{
    return out.failureMessage.find("soft heap limit exceeded") !=
           std::string::npos;
}

struct Totals
{
    uint64_t runs = 0;
    uint64_t faults = 0;
    uint64_t containedPanics = 0;
    uint64_t quarantined = 0;
    uint64_t injectedOoms = 0;
    uint64_t fatalOomRuns = 0;
    uint64_t spanMapFaults = 0;
    uint64_t memScavenges = 0;
    uint64_t memForcedGolfs = 0;
    uint64_t deadlockReports = 0;
    uint64_t violations = 0;
    uint64_t reproMismatches = 0;
    uint64_t obsReproMismatches = 0;
    uint64_t unexpectedFailures = 0;
    uint64_t unexpectedQuarantines = 0;
    uint64_t cancels = 0;
    uint64_t cancelDeaths = 0;
    uint64_t resurrections = 0;
    uint64_t watchdogTriggers = 0;
    uint64_t races = 0;
    uint64_t lockOrderCycles = 0;
    uint64_t confirmedCycles = 0;
    std::vector<std::string> failureLines;
    std::vector<std::string> raceLines;
};

void
noteFailure(Totals& t, const std::string& line)
{
    if (t.failureLines.size() < 20)
        t.failureLines.push_back(line);
}

/** Byte-compare every captured obs surface of two runs; returns the
 *  name of the first differing surface, or nullptr when identical. */
const char*
obsCaptureDiff(const RunOutcome& a, const RunOutcome& b)
{
    if (a.obsMetricsJson != b.obsMetricsJson)
        return "metrics JSON";
    if (a.obsPrometheus != b.obsPrometheus)
        return "Prometheus text";
    if (a.obsGoroutineProfile != b.obsGoroutineProfile)
        return "goroutine profile";
    if (a.obsBlockProfile != b.obsBlockProfile)
        return "block profile";
    if (a.obsMutexProfile != b.obsMutexProfile)
        return "mutex profile";
    if (a.obsFlightCsv != b.obsFlightCsv)
        return "flight drain";
    return nullptr;
}

cluster::ClusterConfig
clusterConfigFor(const Options& opt, uint64_t seed)
{
    using support::kMillisecond;
    cluster::ClusterConfig cfg;
    cfg.shards = opt.shards;
    cfg.seed = seed;
    cfg.gcWorkers = opt.gcWorkers > 0 ? opt.gcWorkers : 1;
    cfg.recovery = opt.recovery;
    cfg.clientsPerShard = 2;
    cfg.issueWindow = 700 * kMillisecond;
    cfg.grace = 800 * kMillisecond;
    cfg.thinkNs = 20 * kMillisecond;
    cfg.leakProb = opt.leakProb;
    cfg.watchdog = true;
    cfg.restarts = opt.restarts;
    cfg.shardSoftLimitBytes = opt.memlimitMiB * 1024 * 1024;
    cfg.mem.scavengeOnGc = opt.scavenge;
    if (opt.netfault) {
        cfg.netfault.enabled = true;
        cfg.netfault.dropProb = opt.netDropProb;
        cfg.netfault.dupProb = opt.netDupProb;
        cfg.netfault.reorderProb = opt.netReorderProb;
        cfg.netfault.delayProb = opt.netDelayProb;
    }
    if (opt.partition) {
        // One forced partition that heals inside the issue window:
        // shard 1 drops off every link, the detector degrades, and
        // detection of its leaks completes after the heal.
        cfg.netfault.enabled = true;
        cfg.netfault.partitionShard = 1 % cfg.shards;
        cfg.netfault.partitionStartNs = 250 * kMillisecond;
        cfg.netfault.partitionDurationNs = 450 * kMillisecond;
    }
    return cfg;
}

int
runClusterSweep(const Options& opt)
{
    Totals t;
    uint64_t issued = 0, completed = 0, cancelled = 0;
    uint64_t detectable = 0, detected = 0, falsePositives = 0;
    uint64_t verdicts = 0, degraded = 0, netFaults = 0;
    uint64_t verifyFailures = 0;

    for (int s = 0; s < opt.seeds; ++s) {
        const uint64_t seed =
            opt.seedBase + static_cast<uint64_t>(s) * 2654435761ull;
        const cluster::ClusterConfig cfg = clusterConfigFor(opt, seed);
        cluster::ClusterResult r = cluster::runCluster(cfg);

        ++t.runs;
        issued += r.issued;
        completed += r.completed;
        cancelled += r.cancelled;
        detectable += r.leaksDetectable;
        detected += r.leaksDetected;
        falsePositives += r.falsePositives;
        verdicts += r.verdicts;
        degraded += r.degradedRounds;
        netFaults += r.net.dropped + r.net.duplicated +
                     r.net.reordered + r.net.delayed +
                     r.net.partitioned;

        if (r.failed) {
            ++t.unexpectedFailures;
            noteFailure(t, "cluster seed=" + std::to_string(seed) +
                               ": " + r.failReason);
        }
        if (opt.verify) {
            if (r.falsePositives > 0) {
                ++verifyFailures;
                noteFailure(t, "cluster seed=" + std::to_string(seed) +
                                   ": " +
                                   std::to_string(r.falsePositives) +
                                   " false-positive verdicts");
            }
            if (r.leaksDetected * 100 < r.leaksDetectable * 95) {
                ++verifyFailures;
                noteFailure(t, "cluster seed=" + std::to_string(seed) +
                                   ": detected " +
                                   std::to_string(r.leaksDetected) +
                                   "/" +
                                   std::to_string(r.leaksDetectable) +
                                   " detectable leaks");
            }
            if (r.completed + r.cancelled != r.issued) {
                ++verifyFailures;
                noteFailure(t, "cluster seed=" + std::to_string(seed) +
                                   ": " +
                                   std::to_string(
                                       r.issued - r.completed -
                                       r.cancelled) +
                                   " calls never resolved");
            }
        }
        if (opt.repro) {
            // Same config replays byte-identically, and the mark
            // worker count must not leak into the transcript.
            cluster::ClusterResult again = cluster::runCluster(cfg);
            cluster::ClusterConfig swapped = cfg;
            swapped.gcWorkers = cfg.gcWorkers == 1 ? 2 : 1;
            cluster::ClusterResult other = cluster::runCluster(swapped);
            if (again.repro != r.repro) {
                ++t.reproMismatches;
                noteFailure(t, "cluster seed=" + std::to_string(seed) +
                                   ": transcript differs on replay");
            }
            if (other.repro != r.repro) {
                ++t.reproMismatches;
                noteFailure(t, "cluster seed=" + std::to_string(seed) +
                                   ": transcript differs at "
                                   "gc-workers " +
                                   std::to_string(swapped.gcWorkers));
            }
        }
        if (opt.verbose) {
            std::printf("cluster seed=%-12llu issued=%-5llu "
                        "done=%-5llu cancelled=%-4llu leaks=%llu/%llu "
                        "fp=%llu degraded=%llu\n",
                        static_cast<unsigned long long>(seed),
                        static_cast<unsigned long long>(r.issued),
                        static_cast<unsigned long long>(r.completed),
                        static_cast<unsigned long long>(r.cancelled),
                        static_cast<unsigned long long>(r.leaksDetected),
                        static_cast<unsigned long long>(
                            r.leaksDetectable),
                        static_cast<unsigned long long>(
                            r.falsePositives),
                        static_cast<unsigned long long>(
                            r.degradedRounds));
        } else {
            std::fprintf(stderr, ".");
        }
    }
    if (!opt.verbose)
        std::fprintf(stderr, "\n");

    std::printf("cluster chaos: %llu runs, %d shards, %d seeds\n",
                static_cast<unsigned long long>(t.runs), opt.shards,
                opt.seeds);
    std::printf("  issued / completed / cancelled: %llu / %llu / %llu\n",
                static_cast<unsigned long long>(issued),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(cancelled));
    std::printf("  link faults injected: %llu\n",
                static_cast<unsigned long long>(netFaults));
    std::printf("  degraded rounds:      %llu\n",
                static_cast<unsigned long long>(degraded));
    std::printf("  verdicts:             %llu\n",
                static_cast<unsigned long long>(verdicts));
    std::printf("  leaks detected:       %llu / %llu detectable\n",
                static_cast<unsigned long long>(detected),
                static_cast<unsigned long long>(detectable));
    std::printf("  false positives:      %llu\n",
                static_cast<unsigned long long>(falsePositives));
    if (opt.repro) {
        std::printf("  repro mismatches:     %llu\n",
                    static_cast<unsigned long long>(t.reproMismatches));
    }
    std::printf("  unexpected failures:  %llu\n",
                static_cast<unsigned long long>(
                    t.unexpectedFailures + verifyFailures));
    for (const auto& line : t.failureLines)
        std::fprintf(stderr, "FAIL %s\n", line.c_str());

    const bool ok = t.unexpectedFailures == 0 &&
                    t.reproMismatches == 0 && verifyFailures == 0;
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}

/**
 * -mc-check: parse a golf_mc trace, re-execute its schedule through
 * mc::runSchedule, and byte-compare the canonical verdict (plus the
 * recorded enabled sets, the replay-drift guard). Exit 0 iff both
 * match.
 */
int
runMcCheck(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "mc-check: cannot open %s\n",
                     path.c_str());
        return 2;
    }
    mc::TraceFile t;
    std::string err;
    if (!mc::parseTrace(in, t, err)) {
        std::fprintf(stderr, "mc-check: %s: %s\n", path.c_str(),
                     err.c_str());
        return 2;
    }
    const Pattern* pat = nullptr;
    for (const Pattern& p : Registry::instance().all()) {
        if (p.name == t.pattern && p.correct == t.correct) {
            pat = &p;
            break;
        }
    }
    if (pat == nullptr) {
        std::fprintf(stderr, "mc-check: unknown pattern %s\n",
                     t.pattern.c_str());
        return 2;
    }

    mc::McConfig cfg;
    cfg.duration = t.duration;
    cfg.patternSeed = t.patternSeed;
    mc::ExecResult r = mc::runSchedule(*pat, cfg, t.schedule);

    bool ok = true;
    if (r.choices.size() < t.schedule.size()) {
        std::fprintf(stderr,
                     "mc-check: replay drift: %zu choice points, "
                     "trace has %zu\n",
                     r.choices.size(), t.schedule.size());
        ok = false;
    }
    for (size_t k = 0; ok && k < t.schedule.size(); ++k) {
        if (k < t.enabled.size() &&
            r.choices[k].enabled != t.enabled[k]) {
            std::fprintf(stderr,
                         "mc-check: replay drift: enabled set at "
                         "choice %zu differs\n",
                         k);
            ok = false;
        }
    }
    const std::string got = r.verdict.canonical();
    if (ok && got != t.verdictCanonical) {
        std::fprintf(stderr,
                     "mc-check: verdict mismatch\n  trace:  %s\n"
                     "  replay: %s\n",
                     t.verdictCanonical.c_str(), got.c_str());
        ok = false;
    }
    if (ok && r.verdict.hash() != t.verdictHash) {
        std::fprintf(stderr, "mc-check: verdict hash mismatch\n");
        ok = false;
    }
    std::printf("mc-check %s: %s (%s)\n", t.pattern.c_str(),
                ok ? "OK" : "FAILED", got.c_str());
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        std::fprintf(
            stderr,
            "usage: chaos_runner [-seeds n] [-seed-base n] "
            "[-match re] [-per-seed n] [-procs 1,2,4] "
            "[-gc-workers n] [-alloc pool|legacy] "
            "[-<kind>-prob p ...] [-memlimit MiB] [-scavenge] "
            "[-repro] "
            "[-obs-repro] [-metrics path] [-gctrace] [-flight n] "
            "[-blockprofile ns] [-mutexprofile ns] [-no-obs] [-race] "
            "[-watchdog] [-recovery rung] [-v] [-mc-check trace] "
            "[-shards n "
            "[-netfault] [-partition] [-verify] [-leak-prob p] "
            "[-net-<kind>-prob p] [-restart s@ms]]\n");
        return 2;
    }

    if (!opt.mcCheck.empty())
        return runMcCheck(opt.mcCheck);

    if (opt.shards >= 2)
        return runClusterSweep(opt);

    std::vector<const Pattern*> corpus;
    std::regex re(opt.match.empty() ? ".*" : opt.match);
    for (const Pattern& p : Registry::instance().all()) {
        if (std::regex_search(p.name, re))
            corpus.push_back(&p);
    }
    if (corpus.empty()) {
        std::fprintf(stderr, "no patterns match '%s'\n",
                     opt.match.c_str());
        return 2;
    }

    const size_t perSeed =
        opt.perSeed <= 0 ? corpus.size()
                         : std::min(static_cast<size_t>(opt.perSeed),
                                    corpus.size());
    Totals t;
    std::string lastMetricsJson;
    std::string lastBlockFolded;
    std::string lastMutexFolded;
    size_t rot = 0;

    for (int s = 0; s < opt.seeds; ++s) {
        const uint64_t seed =
            opt.seedBase + static_cast<uint64_t>(s) * 2654435761ull;
        for (size_t j = 0; j < perSeed; ++j, ++rot) {
            const Pattern& p = *corpus[rot % corpus.size()];

            HarnessConfig cfg;
            cfg.procs = opt.procs[rot % opt.procs.size()];
            cfg.seed = seed;
            cfg.gcWorkers = opt.gcWorkers;
            cfg.heap.backend = opt.backend;
            cfg.faults = opt.faults;
            cfg.verifyInvariants = true;
            cfg.race = opt.race;
            cfg.recovery = opt.recovery;
            cfg.watchdog.enabled = opt.watchdog;
            cfg.obs = opt.obs;
            cfg.captureObs = !opt.metricsPath.empty();
            cfg.heap.softLimitBytes = opt.memlimitMiB * 1024 * 1024;
            cfg.mem.scavengeOnGc = opt.scavenge;

            RunOutcome out = runPatternOnce(p, cfg);
            if (cfg.captureObs) {
                lastMetricsJson = out.obsMetricsJson;
                lastBlockFolded = out.obsBlockProfile;
                lastMutexFolded = out.obsMutexProfile;
            }
            ++t.runs;
            t.faults += out.faultsInjected;
            t.containedPanics += out.containedPanics;
            t.quarantined += out.quarantined;
            t.memScavenges += out.memScavenges;
            t.memForcedGolfs += out.memForcedGolfs;
            t.spanMapFaults += static_cast<uint64_t>(
                std::count(out.spanFaultTrace.begin(),
                           out.spanFaultTrace.end(), '\n'));
            t.deadlockReports += out.individualReports;
            t.violations += out.invariantViolations.size();
            t.cancels += out.cancelsDelivered;
            t.cancelDeaths += out.cancelDeaths;
            t.resurrections += out.resurrections;
            t.watchdogTriggers += out.watchdogTriggers;
            if (out.quarantined > 0 &&
                opt.faults.reclaimFailureProb == 0.0) {
                // Quarantine is strictly a reclaim-unwind-failure
                // outcome; without injected reclaim faults any
                // occurrence is a real bug.
                t.unexpectedQuarantines += out.quarantined;
                noteFailure(t, p.name + " seed=" +
                                   std::to_string(seed) +
                                   ": unexpected quarantine");
            }
            t.races += out.raceStats.raceReports;
            t.lockOrderCycles += out.raceStats.lockOrderCycles;
            t.confirmedCycles += out.raceStats.confirmedCycles;
            for (const auto& line : out.raceReportLines) {
                if (t.raceLines.size() < 20)
                    t.raceLines.push_back(p.name + " seed=" +
                                          std::to_string(seed) + ": " +
                                          line);
            }
            for (const auto& v : out.invariantViolations) {
                noteFailure(t, p.name + " seed=" +
                                   std::to_string(seed) +
                                   ": invariant: " + v);
            }
            if (out.runtimeFailure) {
                if (isInjectedOom(out)) {
                    ++t.injectedOoms;
                } else if (opt.memlimitMiB > 0 && isFatalOom(out)) {
                    ++t.fatalOomRuns;
                } else {
                    ++t.unexpectedFailures;
                    noteFailure(t, p.name + " seed=" +
                                       std::to_string(seed) +
                                       ": runtime failure: " +
                                       out.failureMessage);
                }
            }

            if (opt.repro) {
                RunOutcome again = runPatternOnce(p, cfg);
                if (again.faultTrace != out.faultTrace ||
                    again.spanFaultTrace != out.spanFaultTrace ||
                    again.fatalOoms != out.fatalOoms ||
                    again.individualReports != out.individualReports ||
                    again.cancelsDelivered != out.cancelsDelivered ||
                    again.resurrections != out.resurrections) {
                    ++t.reproMismatches;
                    noteFailure(t, p.name + " seed=" +
                                       std::to_string(seed) +
                                       ": fault trace or guard counts "
                                       "differ on replay");
                }
            }

            if (opt.obsRepro) {
                // The obs byte-identity contract: every telemetry
                // surface is fed from virtual time and modeled costs
                // only, so the worker count must not leak into it.
                HarnessConfig ocfg = cfg;
                ocfg.captureObs = true;
                if (ocfg.obs.blockProfileRateNs == 0)
                    ocfg.obs.blockProfileRateNs = 1000;
                if (ocfg.obs.mutexProfileRateNs == 0)
                    ocfg.obs.mutexProfileRateNs = 1000;
                ocfg.gcWorkers = 1;
                RunOutcome w1 = runPatternOnce(p, ocfg);
                for (int workers : {2, 4}) {
                    ocfg.gcWorkers = workers;
                    RunOutcome wn = runPatternOnce(p, ocfg);
                    if (const char* what = obsCaptureDiff(w1, wn)) {
                        ++t.obsReproMismatches;
                        noteFailure(
                            t, p.name + " seed=" +
                                   std::to_string(seed) + ": obs " +
                                   what + " differs at gcWorkers=" +
                                   std::to_string(workers));
                    }
                }
            }

            if (opt.verbose) {
                std::printf("%-28s seed=%-12llu procs=%d "
                            "faults=%-4llu panics=%-3llu quar=%-2llu "
                            "reports=%-3zu viol=%zu\n",
                            p.name.c_str(),
                            static_cast<unsigned long long>(seed),
                            cfg.procs,
                            static_cast<unsigned long long>(
                                out.faultsInjected),
                            static_cast<unsigned long long>(
                                out.containedPanics),
                            static_cast<unsigned long long>(
                                out.quarantined),
                            out.individualReports,
                            out.invariantViolations.size());
            }
        }
        if (!opt.verbose)
            std::fprintf(stderr, ".");
    }
    if (!opt.verbose)
        std::fprintf(stderr, "\n");

    std::printf("chaos: %llu runs over %zu patterns, %d seeds\n",
                static_cast<unsigned long long>(t.runs), corpus.size(),
                opt.seeds);
    std::printf("  faults injected:      %llu\n",
                static_cast<unsigned long long>(t.faults));
    std::printf("  contained panics:     %llu\n",
                static_cast<unsigned long long>(t.containedPanics));
    std::printf("  quarantined:          %llu\n",
                static_cast<unsigned long long>(t.quarantined));
    std::printf("  injected double-OOMs: %llu\n",
                static_cast<unsigned long long>(t.injectedOoms));
    if (opt.faults.spanMapFailProb > 0.0) {
        std::printf("  span-map faults:      %llu\n",
                    static_cast<unsigned long long>(t.spanMapFaults));
    }
    if (opt.memlimitMiB > 0) {
        std::printf("  fatal OOM reports:    %llu\n",
                    static_cast<unsigned long long>(t.fatalOomRuns));
        std::printf("  ladder scavenges:     %llu\n",
                    static_cast<unsigned long long>(t.memScavenges));
        std::printf("  ladder forced GOLFs:  %llu\n",
                    static_cast<unsigned long long>(t.memForcedGolfs));
    }
    std::printf("  deadlock reports:     %llu\n",
                static_cast<unsigned long long>(t.deadlockReports));
    if (opt.recovery == rt::Recovery::Cancel ||
        opt.recovery == rt::Recovery::Quarantine) {
        std::printf("  cancels delivered:    %llu (%llu unrecovered)\n",
                    static_cast<unsigned long long>(t.cancels),
                    static_cast<unsigned long long>(t.cancelDeaths));
    }
    if (opt.watchdog) {
        std::printf("  watchdog triggers:    %llu\n",
                    static_cast<unsigned long long>(t.watchdogTriggers));
    }
    std::printf("  resurrections:        %llu\n",
                static_cast<unsigned long long>(t.resurrections));
    std::printf("  invariant violations: %llu\n",
                static_cast<unsigned long long>(t.violations));
    if (opt.repro) {
        std::printf("  repro mismatches:     %llu\n",
                    static_cast<unsigned long long>(t.reproMismatches));
    }
    if (opt.obsRepro) {
        std::printf("  obs repro mismatches: %llu\n",
                    static_cast<unsigned long long>(
                        t.obsReproMismatches));
    }
    if (!opt.metricsPath.empty()) {
        std::ofstream mf(opt.metricsPath);
        mf << lastMetricsJson;
        if (!mf) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.metricsPath.c_str());
            return 2;
        }
        // With a sampling rate armed, drop folded-stack profiles
        // (flamegraph.pl / speedscope input) next to the snapshot.
        if (opt.obs.blockProfileRateNs > 0) {
            std::ofstream bf(opt.metricsPath + ".block.folded");
            bf << lastBlockFolded;
        }
        if (opt.obs.mutexProfileRateNs > 0) {
            std::ofstream xf(opt.metricsPath + ".mutex.folded");
            xf << lastMutexFolded;
        }
    }
    if (opt.race) {
        std::printf("  data races:           %llu\n",
                    static_cast<unsigned long long>(t.races));
        std::printf("  lock-order cycles:    %llu (%llu confirmed "
                    "by GOLF)\n",
                    static_cast<unsigned long long>(t.lockOrderCycles),
                    static_cast<unsigned long long>(t.confirmedCycles));
        for (const auto& line : t.raceLines)
            std::fprintf(stderr, "RACE %s\n", line.c_str());
    }
    std::printf("  unexpected failures:  %llu\n",
                static_cast<unsigned long long>(t.unexpectedFailures));
    for (const auto& line : t.failureLines)
        std::fprintf(stderr, "FAIL %s\n", line.c_str());

    const bool ok = t.violations == 0 && t.reproMismatches == 0 &&
                    t.obsReproMismatches == 0 &&
                    t.unexpectedFailures == 0 &&
                    t.unexpectedQuarantines == 0;
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
