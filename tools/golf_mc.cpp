/**
 * @file
 * golf_mc: systematic stateless model checking of microbench
 * schedules (golf::mc, DESIGN.md §12).
 *
 * For every selected pattern the explorer enumerates scheduling
 * decisions by DFS over the choice tree with sleep-set, visited-
 * fingerprint and dynamic partial-order pruning:
 *
 *  - correct patterns: exhaustively verify that no interleaving
 *    makes GOLF report a deadlock (zero false positives);
 *  - leaky patterns: find a failing schedule, shrink it to the
 *    minimal failing pick prefix, and emit it as a replayable
 *    golf-mc-trace into the output directory (chaos_runner
 *    -mc-check <trace> re-executes and byte-compares the verdict);
 *  - goodlock cross-check: lock-order cycles golf::race predicted
 *    vs. the schedules the explorer actually realized.
 *
 * Usage:
 *   golf_mc [options]
 *     -match <substr>    only patterns whose name contains substr
 *     -correct           the corrected variants (default: both)
 *     -leaky             the deadlocking variants (default: both)
 *     -smallest <n>      per group, only the n smallest patterns by
 *                        measured mcBound (0 = all)
 *     -depth <n>         choice-point depth bound   (default 256)
 *     -max-execs <n>     execution budget per pattern (default 20000)
 *     -max-states <n>    state budget per pattern     (default 200000)
 *     -duration <ms>     virtual run length before the forced GC
 *                        (default 5000)
 *     -seeds <n>         pattern data-seed sweep width: each seed gets
 *                        its own exhaustive schedule exploration
 *                        (default: 4 for correct, up to 16 for leaky —
 *                        leaky stops at the first failing seed)
 *     -no-dpor           disable partial-order reduction
 *     -no-sleep          disable sleep sets
 *     -no-visited        disable visited-fingerprint pruning
 *     -keep-going        leaky: keep exploring after the first
 *                        failing schedule (full verdict census)
 *     -out <dir>         trace output directory (default results/mc)
 *     -metrics <path>    write the /mc/ metrics JSON snapshot
 *     -measure           print an mc_bounds.inc table (choice points
 *                        along the default schedule) instead of
 *                        exploring
 *     -goodlock          print the goodlock-precision report
 *     -best-effort       leaky patterns with no failing schedule in
 *                        budget are reported but not fatal
 *     -v                 per-pattern detail
 *
 * Exit status: 0 iff zero GOLF false positives on correct patterns
 * and (unless -best-effort) every selected leaky pattern produced a
 * minimal failing trace within budget.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mc/mc.hpp"
#include "microbench/registry.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace golf;

struct Options
{
    std::string match;
    bool correct = false;
    bool leaky = false;
    int smallest = 0;
    mc::McConfig mcCfg;
    int seeds = 0; // Pattern-seed sweep width (0 = defaults).
    bool keepGoing = false;
    std::string outDir = "results/mc";
    std::string metricsPath;
    bool measure = false;
    bool goodlock = false;
    bool bestEffort = false;
    bool verbose = false;
};

bool
parseArgs(int argc, char** argv, Options& opt)
{
    opt.mcCfg.maxExecutions = 20000;
    opt.mcCfg.maxStates = 200000;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-')
            arg.erase(0, 1);
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "-match") {
            const char* v = next();
            if (!v)
                return false;
            opt.match = v;
        } else if (arg == "-correct") {
            opt.correct = true;
        } else if (arg == "-leaky") {
            opt.leaky = true;
        } else if (arg == "-smallest") {
            const char* v = next();
            if (!v)
                return false;
            opt.smallest = std::atoi(v);
        } else if (arg == "-depth") {
            const char* v = next();
            if (!v)
                return false;
            opt.mcCfg.depthBound = std::atoi(v);
        } else if (arg == "-max-execs") {
            const char* v = next();
            if (!v)
                return false;
            opt.mcCfg.maxExecutions =
                static_cast<uint64_t>(std::atoll(v));
        } else if (arg == "-max-states") {
            const char* v = next();
            if (!v)
                return false;
            opt.mcCfg.maxStates =
                static_cast<uint64_t>(std::atoll(v));
        } else if (arg == "-duration") {
            const char* v = next();
            if (!v)
                return false;
            opt.mcCfg.duration =
                std::atoll(v) * support::kMillisecond;
        } else if (arg == "-seeds") {
            const char* v = next();
            if (!v)
                return false;
            opt.seeds = std::atoi(v);
        } else if (arg == "-no-dpor") {
            opt.mcCfg.dpor = false;
        } else if (arg == "-no-sleep") {
            opt.mcCfg.sleepSets = false;
        } else if (arg == "-no-visited") {
            opt.mcCfg.visited = false;
        } else if (arg == "-keep-going") {
            opt.keepGoing = true;
        } else if (arg == "-out") {
            const char* v = next();
            if (!v)
                return false;
            opt.outDir = v;
        } else if (arg == "-metrics") {
            const char* v = next();
            if (!v)
                return false;
            opt.metricsPath = v;
        } else if (arg == "-measure") {
            opt.measure = true;
        } else if (arg == "-goodlock") {
            opt.goodlock = true;
        } else if (arg == "-best-effort") {
            opt.bestEffort = true;
        } else if (arg == "-v") {
            opt.verbose = true;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
            return false;
        }
    }
    if (!opt.correct && !opt.leaky) {
        opt.correct = true;
        opt.leaky = true;
    }
    return true;
}

std::vector<const microbench::Pattern*>
selectGroup(bool correct, const Options& opt)
{
    std::vector<const microbench::Pattern*> out;
    for (const auto& p : microbench::Registry::instance().all()) {
        if (p.correct != correct)
            continue;
        if (!opt.match.empty() &&
            p.name.find(opt.match) == std::string::npos)
            continue;
        out.push_back(&p);
    }
    // Smallest measured exploration first; unmeasured (0) last.
    std::stable_sort(out.begin(), out.end(),
                     [](const microbench::Pattern* a,
                        const microbench::Pattern* b) {
                         const int ba =
                             a->mcBound == 0 ? INT32_MAX : a->mcBound;
                         const int bb =
                             b->mcBound == 0 ? INT32_MAX : b->mcBound;
                         if (ba != bb)
                             return ba < bb;
                         return a->name < b->name;
                     });
    if (opt.smallest > 0 &&
        out.size() > static_cast<size_t>(opt.smallest))
        out.resize(static_cast<size_t>(opt.smallest));
    return out;
}

void
measure(const std::vector<const microbench::Pattern*>& group,
        const Options& opt)
{
    for (const auto* p : group) {
        mc::ExecResult r = mc::runSchedule(*p, opt.mcCfg, {});
        std::printf("    {\"%s\", %s, %d},\n", p->name.c_str(),
                    p->correct ? "true" : "false",
                    static_cast<int>(r.choices.size()) + 1);
    }
}

void
writeTraceFile(const microbench::Pattern& p, const Options& opt,
               const mc::McConfig& cfg, const mc::ExploreResult& res)
{
    std::error_code ec;
    std::filesystem::create_directories(opt.outDir, ec);
    mc::TraceFile t;
    t.pattern = p.name;
    t.correct = p.correct;
    t.duration = cfg.duration;
    t.patternSeed = cfg.patternSeed;
    t.schedule = res.minimalSchedule;
    // Re-run the minimal schedule once to record the enabled sets
    // (replay-drift guard in -mc-check).
    mc::ExecResult rerun =
        mc::runSchedule(p, cfg, res.minimalSchedule);
    for (size_t k = 0; k < t.schedule.size(); ++k)
        t.enabled.push_back(rerun.choices[k].enabled);
    t.verdictCanonical = rerun.verdict.canonical();
    t.verdictHash = rerun.verdict.hash();

    const std::string path =
        opt.outDir + "/" + mc::patternSlug(p.name) +
        (p.correct ? "_correct" : "") + ".trace";
    std::ofstream os(path, std::ios::binary);
    os << mc::writeTrace(t);
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        std::fprintf(stderr, "usage: golf_mc [options]; see header\n");
        return 2;
    }

    obs::Registry metrics;
    mc::registerMetrics(metrics);

    uint64_t falsePositives = 0;
    uint64_t undetectedLeaky = 0;
    uint64_t minedTraces = 0;
    uint64_t incomplete = 0;
    uint64_t goodlockPredicted = 0;
    uint64_t goodlockConfirmed = 0;

    auto runGroup = [&](bool correct) {
        auto group = selectGroup(correct, opt);
        if (opt.measure) {
            measure(group, opt);
            return;
        }
        for (const auto* p : group) {
            mc::McConfig cfg = opt.mcCfg;
            cfg.stopOnFailure = !correct && !opt.keepGoing;
            // Data-seed sweep: schedule exploration is exhaustive per
            // seed; FLAKY patterns leak only on some internal data
            // draws, so leaky patterns try seeds until one fails.
            const int seedLimit =
                opt.seeds > 0 ? opt.seeds : (correct ? 4 : 16);
            mc::ExploreResult res;
            for (int s = 1; s <= seedLimit; ++s) {
                cfg.patternSeed = static_cast<uint64_t>(s);
                mc::ExploreResult one = mc::explore(*p, cfg, &metrics);
                if (s == 1) {
                    res = std::move(one);
                } else {
                    res.stats.executions += one.stats.executions;
                    res.stats.states += one.stats.states;
                    res.stats.branches += one.stats.branches;
                    res.stats.sleepPruned += one.stats.sleepPruned;
                    res.stats.dporPruned += one.stats.dporPruned;
                    res.stats.visitedPruned += one.stats.visitedPruned;
                    res.complete = res.complete && one.complete;
                    res.falsePositiveExecutions +=
                        one.falsePositiveExecutions;
                    res.failedLabels.insert(one.failedLabels.begin(),
                                            one.failedLabels.end());
                    res.goodlock.insert(res.goodlock.end(),
                                        one.goodlock.begin(),
                                        one.goodlock.end());
                    if (one.foundFailure && !res.foundFailure) {
                        res.foundFailure = true;
                        res.firstFailure = one.firstFailure;
                        res.minimalSchedule = one.minimalSchedule;
                        res.minimalVerdict = one.minimalVerdict;
                    }
                }
                if (res.foundFailure) {
                    cfg.patternSeed = static_cast<uint64_t>(s);
                    break; // Leaky: this seed's minimal trace wins.
                }
            }
            const uint64_t failingSeed = cfg.patternSeed;
            if (!res.complete)
                ++incomplete;
            for (const auto& e : res.goodlock) {
                ++goodlockPredicted;
                if (e.confirmedIn > 0)
                    ++goodlockConfirmed;
                if (opt.goodlock) {
                    std::printf(
                        "goodlock %-24s %s predicted=%llu "
                        "confirmed=%llu\n",
                        p->name.c_str(), e.cycle.c_str(),
                        static_cast<unsigned long long>(e.predictedIn),
                        static_cast<unsigned long long>(
                            e.confirmedIn));
                }
            }
            if (correct) {
                const bool fp = res.falsePositiveExecutions > 0;
                const bool anomaly = res.foundFailure;
                if (fp)
                    ++falsePositives;
                if (opt.verbose || fp || anomaly) {
                    std::printf(
                        "correct %-24s execs=%-7llu states=%-7llu "
                        "%s%s%s\n",
                        p->name.c_str(),
                        static_cast<unsigned long long>(
                            res.stats.executions),
                        static_cast<unsigned long long>(
                            res.stats.states),
                        res.complete ? "exhaustive" : "BUDGET",
                        fp ? " FALSE-POSITIVE" : "",
                        anomaly && !fp ? (" ANOMALY " +
                                          res.firstFailure.canonical())
                                             .c_str()
                                       : "");
                }
            } else {
                if (res.foundFailure) {
                    writeTraceFile(*p, opt, cfg, res);
                    ++minedTraces;
                    if (opt.verbose) {
                        std::printf(
                            "leaky   %-24s execs=%-7llu minimal=%zu "
                            "seed=%llu verdict=%s\n",
                            p->name.c_str(),
                            static_cast<unsigned long long>(
                                res.stats.executions),
                            res.minimalSchedule.size(),
                            static_cast<unsigned long long>(
                                failingSeed),
                            res.minimalVerdict.canonical().c_str());
                    }
                } else {
                    ++undetectedLeaky;
                    std::printf(
                        "leaky   %-24s NO FAILING SCHEDULE "
                        "(execs=%llu states=%llu%s)\n",
                        p->name.c_str(),
                        static_cast<unsigned long long>(
                            res.stats.executions),
                        static_cast<unsigned long long>(
                            res.stats.states),
                        res.complete ? ", tree exhausted" : ", budget");
                }
            }
        }
    };

    if (opt.measure)
        std::printf("const McBoundEntry kMcBounds[] = {\n");
    if (opt.correct)
        runGroup(true);
    if (opt.leaky)
        runGroup(false);
    if (opt.measure) {
        std::printf("};\n");
        return 0;
    }

    if (!opt.metricsPath.empty()) {
        std::ofstream os(opt.metricsPath, std::ios::binary);
        os << metrics.snapshotJson();
    }

    std::printf(
        "golf_mc: false-positives=%llu mined-traces=%llu "
        "undetected-leaky=%llu incomplete=%llu goodlock=%llu/%llu\n",
        static_cast<unsigned long long>(falsePositives),
        static_cast<unsigned long long>(minedTraces),
        static_cast<unsigned long long>(undetectedLeaky),
        static_cast<unsigned long long>(incomplete),
        static_cast<unsigned long long>(goodlockConfirmed),
        static_cast<unsigned long long>(goodlockPredicted));

    if (falsePositives > 0)
        return 1;
    if (undetectedLeaky > 0 && !opt.bestEffort)
        return 1;
    return 0;
}
