/**
 * @file
 * golf-tester: the artifact's testing harness (Appendix A.4.2) as a
 * command-line tool over the built-in corpus.
 *
 * Usage:
 *   golf_tester [options]
 *     -match <regex>    only run benchmarks whose name matches
 *     -repeats <n>      repetitions per configuration (default 10)
 *     -procs <list>     comma-separated core counts (default 1,2,4,10)
 *     -report <path>    write the coverage report there (default
 *                       ./golf-tester-report.txt)
 *     -perf             performance mode: compare marking phase
 *                       against the Baseline GC; writes
 *                       results-perf.csv and results.tex (a pgfplots
 *                       box plot, as the artifact does)
 *     -race             race-analysis mode: run the whole corpus
 *                       (including the correct patterns) under the
 *                       happens-before race detector and lock-order
 *                       analyzer; prints one analysis-stats line per
 *                       benchmark and every deduplicated report
 *     -seed <n>         master seed (default 1)
 *     -gc-workers <n>   GC mark workers (0 = auto, 1 = serial;
 *                       results are identical for every value)
 *     -alloc <backend>  allocator backend: pool (default) or legacy;
 *                       results are identical for either
 *                       (-alloc=<backend> also accepted)
 *     -memlimit <MiB>   soft heap limit per run (0 = off); arms the
 *                       memory-pressure ladder (DESIGN.md §14)
 *     -scavenge         release the retired-span cache after every
 *                       GC cycle
 *     -verify           cross-check runtime invariants after every GC
 *                       and at end of run; any violation, runtime
 *                       failure or unexpected quarantine prints a
 *                       one-line FAIL with the seed and exits 1
 *     -watchdog         enable the blocked-goroutine watchdog
 *     -recovery <rung>  recovery ladder rung: detect, cancel, reclaim
 *                       (default) or quarantine (-recovery=<rung>
 *                       also accepted)
 *     -metrics <path>   write a metrics JSON snapshot from one
 *                       representative run to path
 *     -gctrace          print one line per GC/GOLF cycle (stderr)
 *     -flight <n>       flight-recorder ring capacity per P
 *                       (0 disables; default 4096)
 *     -blockprofile <ns>  block-profile sampling rate (virtual ns)
 *     -mutexprofile <ns>  mutex-profile sampling rate (virtual ns)
 *     -no-obs           disable telemetry entirely
 *
 * Coverage mode prints a Table 1-style aggregate; trace lines for
 * detected deadlocks use the runtime's "partial deadlock!" format.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "microbench/harness.hpp"
#include "microbench/registry.hpp"
#include "obs/obs.hpp"
#include "service/metrics.hpp"
#include "support/stats.hpp"

namespace {

using namespace golf;
using namespace golf::microbench;

struct Options
{
    std::string match;
    int repeats = 10;
    std::vector<int> procs{1, 2, 4, 10};
    std::string report = "./golf-tester-report.txt";
    bool perf = false;
    bool race = false;
    uint64_t seed = 1;
    int gcWorkers = 0; // 0 = auto (hardware concurrency)
    gc::AllocBackend backend = gc::AllocBackend::Pool;
    bool verify = false;
    bool watchdog = false;
    rt::Recovery recovery = rt::Recovery::Reclaim;
    obs::Config obs;
    std::string metricsPath;
    /** Soft heap limit in MiB (0 = memory-pressure ladder off). */
    uint64_t memlimitMiB = 0;
    /** Scavenge the retired-span cache after every GC cycle. */
    bool scavenge = false;

    /** Heap + ladder knobs shared by every harness run. */
    void
    applyMem(HarnessConfig& cfg) const
    {
        cfg.heap.backend = backend;
        cfg.heap.softLimitBytes = memlimitMiB * 1024 * 1024;
        cfg.mem.scavengeOnGc = scavenge;
    }
};

bool
parseArgs(int argc, char** argv, Options& opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "-match") {
            const char* v = next();
            if (!v)
                return false;
            opt.match = v;
        } else if (arg == "-repeats") {
            const char* v = next();
            if (!v)
                return false;
            opt.repeats = std::atoi(v);
        } else if (arg == "-procs") {
            const char* v = next();
            if (!v)
                return false;
            opt.procs.clear();
            std::stringstream ss(v);
            std::string tok;
            while (std::getline(ss, tok, ','))
                opt.procs.push_back(std::atoi(tok.c_str()));
        } else if (arg == "-report") {
            const char* v = next();
            if (!v)
                return false;
            opt.report = v;
        } else if (arg == "-perf") {
            opt.perf = true;
        } else if (arg == "-race") {
            opt.race = true;
        } else if (arg == "-seed") {
            const char* v = next();
            if (!v)
                return false;
            opt.seed = static_cast<uint64_t>(std::atoll(v));
        } else if (arg == "-gc-workers") {
            const char* v = next();
            if (!v)
                return false;
            opt.gcWorkers = std::atoi(v);
        } else if (arg == "-alloc" || arg.rfind("-alloc=", 0) == 0) {
            const char* v = arg == "-alloc"
                ? next() : arg.c_str() + std::strlen("-alloc=");
            if (v && std::strcmp(v, "pool") == 0) {
                opt.backend = gc::AllocBackend::Pool;
            } else if (v && std::strcmp(v, "legacy") == 0) {
                opt.backend = gc::AllocBackend::Legacy;
            } else {
                std::fprintf(stderr, "-alloc wants pool|legacy\n");
                return false;
            }
        } else if (arg == "-verify") {
            opt.verify = true;
        } else if (arg == "-memlimit") {
            const char* v = next();
            if (!v)
                return false;
            opt.memlimitMiB = static_cast<uint64_t>(std::atoll(v));
        } else if (arg == "-scavenge") {
            opt.scavenge = true;
        } else if (arg == "-metrics") {
            const char* v = next();
            if (!v)
                return false;
            opt.metricsPath = v;
        } else if (arg == "-gctrace") {
            opt.obs.gctrace = true;
        } else if (arg == "-flight") {
            const char* v = next();
            if (!v)
                return false;
            opt.obs.flightRecords =
                static_cast<size_t>(std::atoll(v));
        } else if (arg == "-blockprofile") {
            const char* v = next();
            if (!v)
                return false;
            opt.obs.blockProfileRateNs =
                static_cast<uint64_t>(std::atoll(v));
        } else if (arg == "-mutexprofile") {
            const char* v = next();
            if (!v)
                return false;
            opt.obs.mutexProfileRateNs =
                static_cast<uint64_t>(std::atoll(v));
        } else if (arg == "-no-obs") {
            opt.obs.enabled = false;
        } else if (arg == "-watchdog") {
            opt.watchdog = true;
        } else if (arg == "-recovery" ||
                   arg.rfind("-recovery=", 0) == 0) {
            const char* v = arg == "-recovery"
                ? next() : arg.c_str() + std::strlen("-recovery=");
            if (!v || !rt::parseRecovery(v, opt.recovery)) {
                std::fprintf(stderr,
                             "-recovery wants detect|cancel|reclaim|"
                             "quarantine\n");
                return false;
            }
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

std::vector<const Pattern*>
selectPatterns(const Options& opt, bool includeCorrect)
{
    std::vector<const Pattern*> out;
    std::regex re(opt.match.empty() ? ".*" : opt.match);
    for (const Pattern& p : Registry::instance().all()) {
        if (p.correct && !includeCorrect)
            continue;
        if (std::regex_search(p.name, re))
            out.push_back(&p);
    }
    return out;
}

int
runCoverage(const Options& opt)
{
    auto patterns = selectPatterns(opt, /*includeCorrect=*/false);
    if (patterns.empty()) {
        std::fprintf(stderr, "no benchmarks match '%s'\n",
                     opt.match.c_str());
        return 1;
    }

    std::ofstream report(opt.report);
    report << "Benchmark";
    for (int p : opt.procs)
        report << " " << p << "P";
    report << " Total\n";

    size_t shown = 0, remaining = 0, remainingBenchmarks = 0;
    double aggDetected = 0, aggRuns = 0;
    std::vector<std::string> failures;

    for (const Pattern* p : patterns) {
        std::map<std::string, std::map<int, int>> detected;
        for (int procs : opt.procs) {
            HarnessConfig cfg;
            cfg.procs = procs;
            cfg.gcWorkers = opt.gcWorkers;
            opt.applyMem(cfg);
            cfg.seed = opt.seed * 7919 +
                       static_cast<uint64_t>(procs);
            cfg.verifyInvariants = opt.verify;
            cfg.watchdog.enabled = opt.watchdog;
            cfg.recovery = opt.recovery;
            cfg.obs = opt.obs;
            auto sites = runPatternRepeated(*p, cfg, opt.repeats,
                                            &failures);
            for (const auto& s : sites)
                detected[s.label][procs] = s.detectedRuns;
        }
        bool allPerfect = true;
        for (const auto& [label, byProcs] : detected) {
            long total = 0;
            for (int procs : opt.procs)
                total += byProcs.count(procs) ? byProcs.at(procs) : 0;
            aggDetected += static_cast<double>(total);
            aggRuns += static_cast<double>(opt.procs.size()) *
                       opt.repeats;
            if (total ==
                static_cast<long>(opt.procs.size()) * opt.repeats) {
                ++remaining;
                continue;
            }
            allPerfect = false;
            ++shown;
            report << label;
            for (int procs : opt.procs)
                report << " " << byProcs.at(procs);
            report << " "
                   << 100.0 * static_cast<double>(total) /
                          (static_cast<double>(opt.procs.size()) *
                           opt.repeats)
                   << "%\n";
        }
        if (allPerfect)
            ++remainingBenchmarks;
        std::fprintf(stderr, ".");
    }
    std::fprintf(stderr, "\n");

    report << "Remaining " << remaining << " go instruction ("
           << remainingBenchmarks << " benchmarks) 100.00%\n";
    report << "Aggregated "
           << 100.0 * aggDetected / (aggRuns > 0 ? aggRuns : 1)
           << "%\n";
    std::printf("coverage report written to %s (%zu flaky sites, "
                "%zu at 100%%)\n",
                opt.report.c_str(), shown, remaining);
    if (!opt.metricsPath.empty() && opt.obs.enabled) {
        // One representative run with obs capture on; the sweep
        // itself stays capture-free so coverage timing is untouched.
        HarnessConfig cfg;
        cfg.procs = opt.procs.front();
        cfg.gcWorkers = opt.gcWorkers;
        opt.applyMem(cfg);
        cfg.seed = opt.seed * 7919 +
                   static_cast<uint64_t>(cfg.procs);
        cfg.watchdog.enabled = opt.watchdog;
        cfg.recovery = opt.recovery;
        cfg.obs = opt.obs;
        cfg.captureObs = true;
        RunOutcome out = runPatternOnce(*patterns.front(), cfg);
        std::ofstream mf(opt.metricsPath);
        mf << out.obsMetricsJson;
        std::printf("metrics snapshot written to %s\n",
                    opt.metricsPath.c_str());
    }
    for (const auto& line : failures)
        std::fprintf(stderr, "FAIL %s\n", line.c_str());
    return failures.empty() ? 0 : 1;
}

/** pgfplots box plot of the Mark clock columns (artifact A.5.2). */
void
writeTex(const std::string& path, const support::Samples& correct,
         const support::Samples& deadlock)
{
    auto box = [](const support::Samples& s) {
        support::BoxStats b = support::BoxStats::of(s);
        std::ostringstream os;
        os << "    \\addplot+[boxplot prepared={lower whisker="
           << b.min << ", lower quartile=" << b.q1 << ", median="
           << b.median << ", upper quartile=" << b.q3
           << ", upper whisker=" << b.max
           << "}] coordinates {};\n";
        return os.str();
    };
    std::ofstream tex(path);
    tex << "\\documentclass{standalone}\n"
        << "\\usepackage{pgfplots}\n"
        << "\\usepgfplotslibrary{statistics}\n"
        << "\\begin{document}\n"
        << "\\begin{tikzpicture}\n"
        << "  \\begin{axis}[boxplot/draw direction=y,\n"
        << "      ylabel={GOLF mark clock slowdown ($\\times$)},\n"
        << "      xtick={1,2},\n"
        << "      xticklabels={correct, deadlocking}]\n"
        << box(correct) << box(deadlock) << "  \\end{axis}\n"
        << "\\end{tikzpicture}\n"
        << "\\end{document}\n";
}

int
runPerf(const Options& opt)
{
    auto patterns = selectPatterns(opt, /*includeCorrect=*/true);
    std::ofstream csv("results-perf.csv");
    csv << "benchmark,kind,Mark clock OFF (us),Mark clock ON (us),"
           "slowdown\n";

    support::Samples slowCorrect, slowDeadlock;
    for (const Pattern* p : patterns) {
        auto measure = [&](rt::GcMode mode) {
            support::Samples s;
            for (int i = 0; i < opt.repeats; ++i) {
                HarnessConfig cfg;
                cfg.procs = 1;
                cfg.gcWorkers = opt.gcWorkers;
                opt.applyMem(cfg);
                cfg.seed = opt.seed + static_cast<uint64_t>(i);
                cfg.gcMode = mode;
                cfg.obs = opt.obs;
                auto out = runPatternOnce(*p, cfg);
                if (out.gcCycles > 0)
                    s.add(out.avgMarkCpuUs);
            }
            return s.mean();
        };
        double off = measure(rt::GcMode::Baseline);
        double on = measure(rt::GcMode::Golf);
        if (off <= 0 || on <= 0)
            continue;
        double slowdown = on / off;
        (p->correct ? slowCorrect : slowDeadlock).add(slowdown);
        csv << p->name << ","
            << (p->correct ? "correct" : "deadlock") << "," << off
            << "," << on << "," << slowdown << "\n";
        std::fprintf(stderr, ".");
    }
    std::fprintf(stderr, "\n");

    writeTex("results.tex", slowCorrect, slowDeadlock);
    std::printf("perf results: results-perf.csv, box plot: "
                "results.tex\n");
    std::printf("correct: %s\n",
                support::BoxStats::of(slowCorrect).str().c_str());
    std::printf("deadlocking: %s\n",
                support::BoxStats::of(slowDeadlock).str().c_str());
    return 0;
}

/**
 * Race-analysis sweep: every corpus pattern — correct ones included,
 * they are the false-positive regression suite — runs under the
 * detector across the -procs configurations, with the per-benchmark
 * aggregate emitted as a service::AnalysisStats line.
 */
int
runRace(const Options& opt)
{
    auto patterns = selectPatterns(opt, /*includeCorrect=*/true);
    if (patterns.empty()) {
        std::fprintf(stderr, "no benchmarks match '%s'\n",
                     opt.match.c_str());
        return 1;
    }

    uint64_t totalRaces = 0, totalCycles = 0, totalConfirmed = 0;
    for (const Pattern* p : patterns) {
        service::AnalysisStats agg;
        std::vector<std::string> lines;
        for (int procs : opt.procs) {
            for (int i = 0; i < opt.repeats; ++i) {
                HarnessConfig cfg;
                cfg.procs = procs;
                cfg.gcWorkers = opt.gcWorkers;
                opt.applyMem(cfg);
                cfg.seed = opt.seed * 7919 +
                           static_cast<uint64_t>(procs) * 131 +
                           static_cast<uint64_t>(i);
                cfg.race = true;
                cfg.obs = opt.obs;
                RunOutcome out = runPatternOnce(*p, cfg);
                agg.d.goroutines += out.raceStats.goroutines;
                agg.d.syncOps += out.raceStats.syncOps;
                agg.d.memAccesses += out.raceStats.memAccesses;
                agg.d.shadowCells += out.raceStats.shadowCells;
                agg.d.lockAcquires += out.raceStats.lockAcquires;
                agg.d.lockGraphEdges += out.raceStats.lockGraphEdges;
                agg.d.raceInstances += out.raceStats.raceInstances;
                agg.d.raceReports += out.raceStats.raceReports;
                agg.d.lockOrderCycles += out.raceStats.lockOrderCycles;
                agg.d.confirmedCycles += out.raceStats.confirmedCycles;
                for (const auto& line : out.raceReportLines) {
                    if (lines.size() < 8)
                        lines.push_back("  seed=" +
                                        std::to_string(cfg.seed) +
                                        " " + line);
                }
            }
        }
        totalRaces += agg.d.raceReports;
        totalCycles += agg.d.lockOrderCycles;
        totalConfirmed += agg.d.confirmedCycles;
        std::printf("%-28s %s\n", p->name.c_str(), agg.str().c_str());
        for (const auto& line : lines)
            std::printf("%s\n", line.c_str());
    }
    std::printf("race sweep: %zu benchmarks, %llu races, "
                "%llu lock-order cycles (%llu confirmed by GOLF)\n",
                patterns.size(),
                static_cast<unsigned long long>(totalRaces),
                static_cast<unsigned long long>(totalCycles),
                static_cast<unsigned long long>(totalConfirmed));
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        std::fprintf(
            stderr,
            "usage: golf_tester [-match re] [-repeats n] "
            "[-procs 1,2,4] [-report path] [-perf] [-race] "
            "[-seed n] [-verify] [-alloc pool|legacy] "
            "[-memlimit MiB] [-scavenge] "
            "[-watchdog] [-recovery rung] "
            "[-metrics path] [-gctrace] [-flight n] "
            "[-blockprofile ns] [-mutexprofile ns] [-no-obs]\n");
        return 2;
    }
    if (opt.race)
        return runRace(opt);
    return opt.perf ? runPerf(opt) : runCoverage(opt);
}
