#!/usr/bin/env bash
# Sanitizer tier: build and run the test suite under ASan and UBSan
# (GOLF_SANITIZE=address / =undefined), plus the parallel-marking
# suite under TSan (GOLF_SANITIZE=thread). Each sanitizer gets its
# own build tree so the instrumented objects never mix with the
# default build.
#
# The thread tier runs `ctest -L 'parallel|mc'` only: the rest of the
# runtime is single-threaded by construction, so TSan has nothing to
# check there — the mark-worker pool (Chase-Lev deques, termination
# protocol, CAS mark words) is the one genuinely concurrent subsystem,
# and the model-checking suite drives it across -gc-workers 1/2
# (fingerprint determinism) on every explored execution.
#
# Usage: tools/run_sanitizers.sh [address] [undefined] [thread]
#   (no arguments = all three tiers)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
tiers=("$@")
if [ ${#tiers[@]} -eq 0 ]; then
    tiers=(address undefined thread)
fi

# Quarantined goroutines abandon their frames by design; see the
# suppression file for why that is not a bug.
export LSAN_OPTIONS="suppressions=$root/tools/lsan.supp${LSAN_OPTIONS:+:$LSAN_OPTIONS}"

for san in "${tiers[@]}"; do
    bdir="$root/build-$san"
    echo "== sanitizer tier: $san ($bdir) =="
    cmake -S "$root" -B "$bdir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGOLF_SANITIZE="$san" >/dev/null
    cmake --build "$bdir" -j "$jobs"
    if [ "$san" = thread ]; then
        ctest --test-dir "$bdir" --output-on-failure -j "$jobs" \
            -L 'parallel|mc'
    else
        ctest --test-dir "$bdir" --output-on-failure -j "$jobs"
    fi
done
echo "sanitizer tiers passed: ${tiers[*]}"
