#!/usr/bin/env bash
# Sanitizer tier: build and run the full test suite under ASan and
# UBSan (GOLF_SANITIZE=address / =undefined). Each sanitizer gets its
# own build tree so the instrumented objects never mix with the
# default build.
#
# Usage: tools/run_sanitizers.sh [address] [undefined]
#   (no arguments = both tiers)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
tiers=("$@")
if [ ${#tiers[@]} -eq 0 ]; then
    tiers=(address undefined)
fi

# Quarantined goroutines abandon their frames by design; see the
# suppression file for why that is not a bug.
export LSAN_OPTIONS="suppressions=$root/tools/lsan.supp${LSAN_OPTIONS:+:$LSAN_OPTIONS}"

for san in "${tiers[@]}"; do
    bdir="$root/build-$san"
    echo "== sanitizer tier: $san ($bdir) =="
    cmake -S "$root" -B "$bdir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGOLF_SANITIZE="$san" >/dev/null
    cmake --build "$bdir" -j "$jobs"
    ctest --test-dir "$bdir" --output-on-failure -j "$jobs"
done
echo "sanitizer tiers passed: ${tiers[*]}"
