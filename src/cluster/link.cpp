#include "cluster/link.hpp"

#include <algorithm>

namespace golf::cluster {

namespace {

LinkSite
siteFor(MsgType t)
{
    switch (t) {
      case MsgType::Request:
      case MsgType::Response: return LinkSite::Data;
      case MsgType::Ack: return LinkSite::Ack;
      case MsgType::Heartbeat: return LinkSite::Heartbeat;
      case MsgType::Summary: return LinkSite::Summary;
    }
    return LinkSite::Data;
}

} // namespace

void
Network::send(Message m, support::VTime now)
{
    m.sentVt = now;
    if (m.reliable()) {
        const int64_t k = key(m.src, m.dst);
        m.seq = ++nextSeq_[k];
        ++sentTo_[k];
        const std::string bytes = m.encode();
        unacked_[{k, m.seq}] = Unacked{
            bytes, m.src, m.dst, 0,
            now + cfg_.retransmit.backoff(0, rng_)};
        transmit(bytes, m.src, m.dst, siteFor(m.type), now);
        return;
    }
    transmit(m.encode(), m.src, m.dst, siteFor(m.type), now);
}

void
Network::transmit(const std::string& bytes, int src, int dst,
                  LinkSite site, support::VTime now)
{
    ++totals_.sent;
    const NetFault f = injector_.decide(site, now, src, dst);
    support::VTime at = now + cfg_.baseLatencyNs;
    switch (f.kind) {
      case NetFaultKind::Drop:
        ++totals_.dropped;
        return;
      case NetFaultKind::Partition:
        ++totals_.partitioned;
        return;
      case NetFaultKind::Duplicate:
        ++totals_.duplicated;
        inflight_.push({at, ++tick_, dst, bytes});
        inflight_.push({at + cfg_.baseLatencyNs / 2, ++tick_, dst,
                        bytes});
        return;
      case NetFaultKind::Delay:
        ++totals_.delayed;
        at += f.magnitude;
        break;
      case NetFaultKind::Reorder:
        // One extra base-latency quantum (plus a sub-quantum skew)
        // so traffic sent after this message overtakes it.
        ++totals_.reordered;
        at += cfg_.baseLatencyNs +
              (cfg_.baseLatencyNs > 0
                   ? f.magnitude % cfg_.baseLatencyNs
                   : 0);
        break;
      case NetFaultKind::None:
        break;
    }
    inflight_.push({at, ++tick_, dst, bytes});
}

std::vector<Network::Delivery>
Network::pump(support::VTime now)
{
    // Due retransmissions first: they enter the in-flight queue at
    // `now` and may still be delivered by this same pump.
    for (auto& [k, u] : unacked_) {
        while (u.nextRetryAt <= now) {
            ++u.attempts;
            ++totals_.retransmits;
            transmit(u.bytes, u.src, u.dst, LinkSite::Retransmit,
                     u.nextRetryAt);
            u.nextRetryAt +=
                cfg_.retransmit.backoff(u.attempts, rng_);
        }
    }

    std::vector<Delivery> out;
    while (!inflight_.empty() && inflight_.top().at <= now) {
        InFlight f = inflight_.top();
        inflight_.pop();
        Message m;
        if (!Message::decode(f.bytes, m))
            continue; // corrupt frames are dropped silently
        if (m.type == MsgType::Ack) {
            // Ack for (ack.dst → ack.src, seq): clear the buffer.
            if (unacked_.erase({key(m.dst, m.src), m.seq}) > 0)
                ++totals_.acked;
            continue;
        }
        if (m.reliable()) {
            const int64_t k = key(m.src, m.dst);
            auto& seenSet = seen_[k];
            const bool dup = !seenSet.insert(m.seq).second;
            // Ack every copy — the first ack may have been lost.
            Message ack;
            ack.type = MsgType::Ack;
            ack.src = m.dst;
            ack.dst = m.src;
            ack.seq = m.seq;
            send(ack, now);
            if (dup) {
                ++totals_.deduped;
                continue;
            }
            ++deliveredFrom_[k];
        }
        ++totals_.delivered;
        out.push_back({f.dst, std::move(m)});
    }
    return out;
}

support::VTime
Network::nextEventAt() const
{
    support::VTime t = support::VClock::kNoDeadline;
    if (!inflight_.empty())
        t = inflight_.top().at;
    for (const auto& [k, u] : unacked_)
        t = std::min(t, u.nextRetryAt);
    return t;
}

uint64_t
Network::sentTo(int src, int dst) const
{
    auto it = sentTo_.find(key(src, dst));
    return it == sentTo_.end() ? 0 : it->second;
}

uint64_t
Network::deliveredFrom(int dst, int src) const
{
    auto it = deliveredFrom_.find(key(src, dst));
    return it == deliveredFrom_.end() ? 0 : it->second;
}

void
Network::forgetEndpoint(int endpoint)
{
    for (auto it = unacked_.begin(); it != unacked_.end();) {
        if (it->second.src == endpoint || it->second.dst == endpoint)
            it = unacked_.erase(it);
        else
            ++it;
    }
}

} // namespace golf::cluster
