/**
 * @file
 * Inter-shard wire format and consistent-hash routing.
 *
 * Every message that crosses a shard boundary is serialized to a
 * byte string before it enters the network and parsed back on
 * delivery — shards share no pointers, so a shard restart (or, in a
 * real deployment, a process boundary) cannot leave dangling
 * references in a peer. The encoding is a fixed little-endian header
 * plus a length-prefixed payload; summaries (detector.hpp) nest
 * their own encoding inside the payload.
 *
 * Link-level reliability vocabulary: every Request/Response/Summary
 * carries a per-directed-link sequence number and is retransmitted
 * until the receiver acks it; receivers dedup by seq, so the link
 * delivers exactly-once to the endpoint even when the fault injector
 * drops or duplicates transmissions. Heartbeats are deliberately
 * fire-and-forget — loss *is* the failure-detector signal.
 */
#ifndef GOLFCC_CLUSTER_MESSAGE_HPP
#define GOLFCC_CLUSTER_MESSAGE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "support/vclock.hpp"

namespace golf::cluster {

/** The coordinator's control-plane endpoint id (not a shard). */
constexpr int kControlEndpoint = -2;

enum class MsgType : uint8_t
{
    Request,    ///< Client call: reqId + key + payload.
    Response,   ///< Handler reply: reqId + payload.
    Ack,        ///< Link-level ack of `seq` (unreliable, unacked).
    Heartbeat,  ///< Failure-detector beacon (unreliable, unacked).
    Summary,    ///< Epoch-stamped GOLF summary (reliable).
};

const char* msgTypeName(MsgType t);

struct Message
{
    MsgType type = MsgType::Request;
    int src = 0;
    int dst = 0;
    uint64_t seq = 0;      ///< Per-directed-link sequence number.
    uint64_t reqId = 0;    ///< Request/Response correlation id.
    uint64_t key = 0;      ///< Routing key (Request only).
    uint32_t generation = 0; ///< Sender's restart generation.
    support::VTime sentVt = 0; ///< Sender's virtual clock at send.
    std::string payload;

    /** Whether the link layer acks + retransmits this type. */
    bool
    reliable() const
    {
        return type == MsgType::Request || type == MsgType::Response ||
               type == MsgType::Summary;
    }

    std::string encode() const;
    /** Returns false on a malformed buffer. */
    static bool decode(const std::string& bytes, Message& out);
};

/// @{ Primitive little-endian writers/readers shared with the
/// summary encoding (detector.cpp).
void putU32(std::string& out, uint32_t v);
void putU64(std::string& out, uint64_t v);
void putI64(std::string& out, int64_t v);
void putStr(std::string& out, const std::string& s);
bool getU32(const std::string& in, size_t& off, uint32_t& v);
bool getU64(const std::string& in, size_t& off, uint64_t& v);
bool getI64(const std::string& in, size_t& off, int64_t& v);
bool getStr(const std::string& in, size_t& off, std::string& s);
/// @}

/** splitmix64: the routing/workload hash (stable across platforms). */
uint64_t mix64(uint64_t x);

/**
 * Consistent-hash ring with virtual nodes. Routing depends only on
 * (shard set, vnodesPerShard), so every shard computes the same
 * assignment without coordination; quarantining a shard removes its
 * vnodes and remaps only the keys that hashed to them.
 */
class Ring
{
  public:
    Ring() = default;
    Ring(int shards, int vnodesPerShard);

    /** Owning shard for key, skipping shards marked unroutable.
     *  Returns -1 when no shard is routable. */
    int route(uint64_t key) const;

    void setRoutable(int shard, bool routable);
    bool routable(int shard) const;
    int shards() const { return static_cast<int>(routable_.size()); }

  private:
    struct VNode
    {
        uint64_t point;
        int shard;
        bool operator<(const VNode& o) const
        {
            return point != o.point ? point < o.point
                                    : shard < o.shard;
        }
    };

    std::vector<VNode> ring_;
    std::vector<bool> routable_;
};

} // namespace golf::cluster

#endif // GOLFCC_CLUSTER_MESSAGE_HPP
