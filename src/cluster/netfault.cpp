#include "cluster/netfault.hpp"

#include <sstream>

namespace golf::cluster {

const char*
linkSiteName(LinkSite s)
{
    switch (s) {
      case LinkSite::Data: return "data";
      case LinkSite::Ack: return "ack";
      case LinkSite::Heartbeat: return "heartbeat";
      case LinkSite::Summary: return "summary";
      case LinkSite::Retransmit: return "retransmit";
    }
    return "?";
}

const char*
netFaultKindName(NetFaultKind k)
{
    switch (k) {
      case NetFaultKind::None: return "none";
      case NetFaultKind::Drop: return "drop";
      case NetFaultKind::Duplicate: return "duplicate";
      case NetFaultKind::Reorder: return "reorder";
      case NetFaultKind::Delay: return "delay";
      case NetFaultKind::Partition: return "partition";
    }
    return "?";
}

NetFault
NetFaultInjector::decide(LinkSite site, support::VTime now, int src,
                         int dst)
{
    if (partitioned(now, src, dst)) {
        NetFaultRecord r;
        r.seq = injected_++;
        r.vt = now;
        r.site = site;
        r.kind = NetFaultKind::Partition;
        r.src = src;
        r.dst = dst;
        log_.push_back(r);
        return {NetFaultKind::Partition, 0};
    }
    if (!cfg_.enabled)
        return {};

    // Draw 1: fault kind (one uniform double partitioned by the
    // configured probabilities). Draw 2: magnitude — always consumed
    // so the stream position never depends on the outcome.
    const double u = rng_.nextDouble();
    const support::VTime mag = static_cast<support::VTime>(
        rng_.nextBelow(static_cast<uint64_t>(
            cfg_.delayMaxNs > 0 ? cfg_.delayMaxNs : 1)));

    NetFaultKind kind = NetFaultKind::None;
    double edge = cfg_.dropProb;
    if (u < edge) {
        kind = NetFaultKind::Drop;
    } else if (u < (edge += cfg_.dupProb)) {
        kind = NetFaultKind::Duplicate;
    } else if (u < (edge += cfg_.reorderProb)) {
        kind = NetFaultKind::Reorder;
    } else if (u < (edge += cfg_.delayProb)) {
        kind = NetFaultKind::Delay;
    }
    if (kind == NetFaultKind::None || injected_ >= cfg_.maxFaults)
        return {};

    NetFaultRecord r;
    r.seq = injected_++;
    r.vt = now;
    r.site = site;
    r.kind = kind;
    r.src = src;
    r.dst = dst;
    r.magnitude =
        (kind == NetFaultKind::Delay || kind == NetFaultKind::Reorder)
            ? mag
            : 0;
    log_.push_back(r);
    return {kind, r.magnitude};
}

std::string
NetFaultInjector::trace() const
{
    std::ostringstream os;
    for (const NetFaultRecord& r : log_) {
        os << r.seq << " vt=" << r.vt << " " << linkSiteName(r.site)
           << " " << netFaultKindName(r.kind) << " " << r.src << "->"
           << r.dst << " mag=" << r.magnitude << "\n";
    }
    return os.str();
}

} // namespace golf::cluster
