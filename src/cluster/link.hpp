/**
 * @file
 * The inter-shard network: every link is a fault-injected, serialized
 * byte pipe with link-level reliability on top.
 *
 * Mechanics per transmission (see netfault.hpp for the fault model):
 *
 *   - reliable messages (Request/Response/Summary) get a per-
 *     directed-link sequence number, are kept in an unacked buffer,
 *     and are retransmitted with exponential backoff + seeded jitter
 *     until the receiver's Ack arrives — so a dropped message is
 *     eventually delivered once the link heals, and "never received"
 *     is a transient, not a verdict;
 *   - receivers dedup by (link, seq) and re-ack duplicates, giving
 *     exactly-once endpoint delivery on an at-least-once pipe;
 *   - Acks and Heartbeats are fire-and-forget (an Ack loss just
 *     costs one redundant retransmission; Heartbeat loss is the
 *     failure detector's signal).
 *
 * Everything is driven by the cluster's virtual time and two seeded
 * RNGs (fault injector + retransmit jitter), so delivery order is a
 * pure function of (seed, config) and replays byte-identically.
 */
#ifndef GOLFCC_CLUSTER_LINK_HPP
#define GOLFCC_CLUSTER_LINK_HPP

#include <cstdint>
#include <map>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/message.hpp"
#include "cluster/netfault.hpp"
#include "service/retry.hpp"
#include "support/rng.hpp"
#include "support/vclock.hpp"

namespace golf::cluster {

struct LinkStats
{
    uint64_t sent = 0;         ///< Transmissions attempted.
    uint64_t delivered = 0;    ///< App-level deliveries (post-dedup).
    uint64_t dropped = 0;      ///< Injected drops.
    uint64_t duplicated = 0;   ///< Injected duplicates.
    uint64_t reordered = 0;    ///< Injected reorders.
    uint64_t delayed = 0;      ///< Injected delays.
    uint64_t partitioned = 0;  ///< Suppressed by the partition window.
    uint64_t retransmits = 0;  ///< Link-level retransmissions.
    uint64_t acked = 0;        ///< Unacked entries cleared by an Ack.
    uint64_t deduped = 0;      ///< Duplicate seqs suppressed.
};

struct NetworkConfig
{
    support::VTime baseLatencyNs = support::kMillisecond;
    NetFaultConfig faults;
    /** Retransmission timer: base doubles per attempt up to cap,
     *  plus seeded jitter (service/retry.hpp). */
    service::BackoffPolicy retransmit{20 * support::kMillisecond,
                                      500 * support::kMillisecond};
};

class Network
{
  public:
    Network(const NetworkConfig& cfg, uint64_t seed)
        : cfg_(cfg), injector_(cfg.faults, seed),
          rng_(seed ^ 0x11A7E57ull)
    {}

    /** Serialize + transmit; reliable types get a seq and enter the
     *  retransmit buffer. */
    void send(Message m, support::VTime now);

    struct Delivery
    {
        int dst;
        Message msg;
    };

    /** Fire due retransmissions, then hand out every delivery with
     *  deliverAt <= now (in deterministic (time, tick) order). Acks
     *  are consumed internally. */
    std::vector<Delivery> pump(support::VTime now);

    /** Earliest pending network event (delivery or retransmission);
     *  VClock::kNoDeadline when fully quiescent. */
    support::VTime nextEventAt() const;

    NetFaultInjector& injector() { return injector_; }
    const NetFaultInjector& injector() const { return injector_; }
    const LinkStats& totals() const { return totals_; }

    /** Reliable messages given sequence numbers on src→dst. */
    uint64_t sentTo(int src, int dst) const;
    /** Unique reliable messages delivered on src→dst. */
    uint64_t deliveredFrom(int dst, int src) const;

    /** Drop link state involving a quarantined endpoint (stop
     *  retransmitting into a black hole). */
    void forgetEndpoint(int endpoint);

  private:
    static int64_t
    key(int src, int dst)
    {
        return (static_cast<int64_t>(src + 8) << 16) |
               static_cast<int64_t>(dst + 8);
    }

    struct InFlight
    {
        support::VTime at;
        uint64_t tick;
        int dst;
        std::string bytes;
        bool operator>(const InFlight& o) const
        {
            return at != o.at ? at > o.at : tick > o.tick;
        }
    };

    struct Unacked
    {
        std::string bytes;
        int src = 0;
        int dst = 0;
        int attempts = 0;
        support::VTime nextRetryAt = 0;
    };

    void transmit(const std::string& bytes, int src, int dst,
                  LinkSite site, support::VTime now);

    NetworkConfig cfg_;
    NetFaultInjector injector_;
    support::Rng rng_;
    uint64_t tick_ = 0;
    LinkStats totals_;
    std::unordered_map<int64_t, uint64_t> nextSeq_;
    std::unordered_map<int64_t, std::unordered_set<uint64_t>> seen_;
    std::unordered_map<int64_t, uint64_t> sentTo_;
    std::unordered_map<int64_t, uint64_t> deliveredFrom_;
    /** Ordered so due-retransmit iteration is deterministic. */
    std::map<std::pair<int64_t, uint64_t>, Unacked> unacked_;
    std::priority_queue<InFlight, std::vector<InFlight>,
                        std::greater<>>
        inflight_;
};

} // namespace golf::cluster

#endif // GOLFCC_CLUSTER_LINK_HPP
