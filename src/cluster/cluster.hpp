/**
 * @file
 * golf::cluster — a sharded multi-runtime cluster in one process.
 *
 * N rt::Runtime shards, each with its own heap, scheduler, virtual
 * clock, GOLF collector and watchdog, connected only by serialized
 * messages over fault-injected links (link.hpp). A single-threaded
 * driver steps whichever shard's clock is furthest behind, pumps the
 * network, runs the phi failure detector + cluster recovery ladder
 * (detector.hpp), and applies the coordinator's cross-shard verdicts
 * by delivering guard::DeadlockError into remote-waiting goroutines.
 *
 * Determinism: the driver is single-threaded and every source of
 * randomness (shard scheduling, workload keys, fault injection,
 * retransmit jitter) is seeded from ClusterConfig::seed, so a run is
 * a pure function of its config; ClusterResult::repro is a
 * byte-stable transcript compared verbatim under `-repro`.
 *
 * Workload: per-shard open-loop generators spawn one goroutine per
 * request; the request routes by consistent hash (possibly to the
 * issuing shard), the caller parks in WaitReason::RemoteWait — which
 * local GOLF treats as live forever — and the target shard runs a
 * handler goroutine that replies, or (with leakProb) parks forever on
 * a private channel. Leaked handlers are detected and reclaimed by
 * the *target* shard's GOLF; the caller's wait is only resolvable by
 * the cluster coordinator's epoch-confirmed verdict.
 */
#ifndef GOLFCC_CLUSTER_CLUSTER_HPP
#define GOLFCC_CLUSTER_CLUSTER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/detector.hpp"
#include "cluster/link.hpp"
#include "cluster/message.hpp"
#include "cluster/netfault.hpp"
#include "runtime/fault.hpp"
#include "runtime/runtime.hpp"
#include "support/vclock.hpp"

namespace golf::cluster {

/** One planned rolling-restart event. */
struct ScheduledRestart
{
    int shard = 0;
    support::VTime at = 0;
};

struct ClusterConfig
{
    int shards = 2;
    uint64_t seed = 1;
    int gcWorkers = 1;
    rt::Recovery recovery = rt::Recovery::Reclaim;
    bool obsEnabled = true;
    /** Capture each shard's final metrics snapshot into
     *  ClusterResult::shardMetricsJson (bench output). */
    bool captureObs = false;
    bool verboseReports = false;

    /// @{ Workload.
    int clientsPerShard = 3;      ///< Open-loop generators per shard.
    support::VTime issueWindow = 2 * support::kSecond;
    /** Post-issue drain time (detection of the tail + partition
     *  healing happen here). */
    support::VTime grace = 1500 * support::kMillisecond;
    /** Extra drain allowance past `grace`: the run keeps the shards
     *  alive (clients stopped) until every pending call resolves —
     *  completed, verdict-cancelled, or quarantined away — or this
     *  cap elapses, whichever comes first. */
    support::VTime drainCap = 8 * support::kSecond;
    support::VTime thinkNs = 15 * support::kMillisecond;
    double leakProb = 0.0;        ///< P(handler parks forever).
    support::VTime handlerIoNs = support::kMillisecond;
    support::VTime handlerCostNs = 100 * support::kMicrosecond;
    int vnodes = 16;              ///< Consistent-hash vnodes/shard.
    /** Arrival-rate multiplier inside the flash-crowd window
     *  (1.0 = no flash crowd). */
    double flashCrowdFactor = 1.0;
    support::VTime flashStart = 0;
    support::VTime flashDuration = 0;
    /// @}

    /// @{ Faults and restarts.
    NetFaultConfig netfault;
    support::VTime baseLatencyNs = support::kMillisecond;
    std::vector<ScheduledRestart> restarts;
    /** Virtual downtime a restarting shard pays before resuming. */
    support::VTime restartCostNs = 10 * support::kMillisecond;
    /** Per-shard runtime fault injection (chaos inside a shard). */
    rt::FaultConfig shardFaults;
    /** Per-shard soft heap limit (0 = no limit; every shard gets the
     *  same limit, keeping shard heaps symmetric). */
    uint64_t shardSoftLimitBytes = 0;
    /** Memory-pressure ladder thresholds for every shard. */
    mem::MemConfig mem;
    /// @}

    /// @{ Control plane.
    support::VTime summaryEvery = 150 * support::kMillisecond;
    support::VTime detectEvery = 200 * support::kMillisecond;
    support::VTime fdPollEvery = 20 * support::kMillisecond;
    PhiConfig phi;
    bool watchdog = true;         ///< Per-shard watchdog (leak GC).
    /// @}
};

/** Per-shard outcome counters. */
struct ShardOutcome
{
    uint64_t issued = 0;
    uint64_t completed = 0;
    uint64_t cancelled = 0;     ///< Calls resolved by a verdict.
    uint64_t localCalls = 0;
    uint64_t remoteCalls = 0;
    uint64_t unroutable = 0;    ///< route() found no live shard.
    uint64_t handlersRun = 0;
    uint64_t leaksInjected = 0; ///< Leaky handlers dispatched here.
    size_t peakPressure = 0;    ///< Max watchdog pressure observed.
    int restarts = 0;
    ShardHealth finalHealth = ShardHealth::Healthy;
    bool mainCompleted = false;
};

struct ClusterResult
{
    bool failed = false;          ///< A shard crashed or stalled.
    std::string failReason;

    uint64_t issued = 0;
    uint64_t completed = 0;
    uint64_t cancelled = 0;
    uint64_t leaksInjected = 0;
    /** Leaks whose waiter shard survived un-restarted (the verdicts
     *  the coordinator is expected to reach eventually). */
    uint64_t leaksDetectable = 0;
    uint64_t leaksDetected = 0;
    /** Verdicts on calls whose handler had actually responded or
     *  never leaked — must be zero, always. */
    uint64_t falsePositives = 0;
    uint64_t verdicts = 0;        ///< Coordinator + local resolutions.
    uint64_t rounds = 0;
    uint64_t degradedRounds = 0;
    uint64_t summaries = 0;

    uint64_t restarts = 0;
    uint64_t quarantines = 0;
    uint64_t suspects = 0;
    uint64_t safeModes = 0;

    LinkStats net;
    std::vector<ShardOutcome> shards;

    /** Completed requests per virtual second of issue window. */
    double goodput = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double p999Ms = 0.0;

    support::VTime endVt = 0;
    /** Byte-stable transcript: net fault log, coordinator rounds,
     *  per-shard fault logs, final counters (the -repro artifact). */
    std::string repro;
    /** Per-shard metrics snapshots (captureObs). */
    std::string shardMetricsJson;
};

ClusterResult runCluster(const ClusterConfig& cfg);

} // namespace golf::cluster

#endif // GOLFCC_CLUSTER_CLUSTER_HPP
