#include "cluster/message.hpp"

#include <algorithm>

namespace golf::cluster {

const char*
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::Request: return "request";
      case MsgType::Response: return "response";
      case MsgType::Ack: return "ack";
      case MsgType::Heartbeat: return "heartbeat";
      case MsgType::Summary: return "summary";
    }
    return "?";
}

void
putU32(std::string& out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string& out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putI64(std::string& out, int64_t v)
{
    putU64(out, static_cast<uint64_t>(v));
}

void
putStr(std::string& out, const std::string& s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out += s;
}

bool
getU32(const std::string& in, size_t& off, uint32_t& v)
{
    if (off + 4 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(
                 static_cast<unsigned char>(in[off + i]))
             << (8 * i);
    off += 4;
    return true;
}

bool
getU64(const std::string& in, size_t& off, uint64_t& v)
{
    if (off + 8 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(
                 static_cast<unsigned char>(in[off + i]))
             << (8 * i);
    off += 8;
    return true;
}

bool
getI64(const std::string& in, size_t& off, int64_t& v)
{
    uint64_t u;
    if (!getU64(in, off, u))
        return false;
    v = static_cast<int64_t>(u);
    return true;
}

bool
getStr(const std::string& in, size_t& off, std::string& s)
{
    uint32_t n;
    if (!getU32(in, off, n) || off + n > in.size())
        return false;
    s.assign(in, off, n);
    off += n;
    return true;
}

std::string
Message::encode() const
{
    std::string out;
    out.push_back(static_cast<char>(type));
    putU32(out, static_cast<uint32_t>(src));
    putU32(out, static_cast<uint32_t>(dst));
    putU64(out, seq);
    putU64(out, reqId);
    putU64(out, key);
    putU32(out, generation);
    putI64(out, sentVt);
    putStr(out, payload);
    return out;
}

bool
Message::decode(const std::string& bytes, Message& out)
{
    if (bytes.empty())
        return false;
    size_t off = 0;
    const uint8_t t = static_cast<uint8_t>(bytes[off++]);
    if (t > static_cast<uint8_t>(MsgType::Summary))
        return false;
    out.type = static_cast<MsgType>(t);
    uint32_t src, dst;
    if (!getU32(bytes, off, src) || !getU32(bytes, off, dst) ||
        !getU64(bytes, off, out.seq) || !getU64(bytes, off, out.reqId) ||
        !getU64(bytes, off, out.key) ||
        !getU32(bytes, off, out.generation) ||
        !getI64(bytes, off, out.sentVt) ||
        !getStr(bytes, off, out.payload)) {
        return false;
    }
    out.src = static_cast<int32_t>(src);
    out.dst = static_cast<int32_t>(dst);
    return off == bytes.size();
}

uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

Ring::Ring(int shards, int vnodesPerShard)
{
    routable_.assign(static_cast<size_t>(shards), true);
    for (int s = 0; s < shards; ++s) {
        for (int v = 0; v < vnodesPerShard; ++v) {
            ring_.push_back(
                {mix64((static_cast<uint64_t>(s) << 20) |
                       static_cast<uint64_t>(v)),
                 s});
        }
    }
    std::sort(ring_.begin(), ring_.end());
}

int
Ring::route(uint64_t key) const
{
    if (ring_.empty())
        return -1;
    const uint64_t h = mix64(key);
    size_t lo = 0, hi = ring_.size();
    while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (ring_[mid].point < h)
            lo = mid + 1;
        else
            hi = mid;
    }
    // First routable vnode clockwise from h (wrapping).
    for (size_t i = 0; i < ring_.size(); ++i) {
        const VNode& vn = ring_[(lo + i) % ring_.size()];
        if (routable_[static_cast<size_t>(vn.shard)])
            return vn.shard;
    }
    return -1;
}

void
Ring::setRoutable(int shard, bool routable)
{
    if (shard >= 0 && shard < shards())
        routable_[static_cast<size_t>(shard)] = routable;
}

bool
Ring::routable(int shard) const
{
    return shard >= 0 && shard < shards() &&
           routable_[static_cast<size_t>(shard)];
}

} // namespace golf::cluster
