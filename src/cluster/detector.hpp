/**
 * @file
 * Cross-shard GOLF: epoch-stamped summaries and the coordinator's
 * distributed fixpoint, plus the phi-style shard failure detector
 * feeding the cluster recovery ladder.
 *
 * Soundness (DESIGN.md §11): per-shard GOLF treats a goroutine
 * parked on a remote call (WaitReason::RemoteWait) as live forever —
 * the local fixpoint can never see the remote handler, so it must
 * not guess. Only the coordinator may cancel a remote waiter, and it
 * only acts on *positive* evidence with a confirmed frontier:
 *
 *   1. shard B's GOLF declared the handler for reqId dead (the
 *      handler goroutine ended — reclaim, cancel death, quarantine
 *      or unwind — without ever producing a response), AND B still
 *      reports it dead one full epoch later (b1, b2 with
 *      b2.epoch > b1.epoch, same restart generation);
 *   2. the waiter on shard A was pending before b1 and is still
 *      pending in a summary emitted after b1 (a2.vt > b1.vt) — the
 *      response cannot have crossed with the verdict;
 *   3. the A→B link is quiescent at the frontier: every reliable
 *      message A had sent to B by a2 was delivered (and deduped)
 *      at B by b2 — no in-flight request could still spawn the
 *      handler.
 *
 * If any of those summaries is missing or stale — a dropped link, a
 * partitioned or restarting shard — the coordinator *degrades*: it
 * counts a degraded round and issues nothing involving that shard.
 * Absence of evidence is never evidence of death, so a partition can
 * only delay verdicts, never fabricate one. Per-shard detection
 * continues untouched throughout.
 */
#ifndef GOLFCC_CLUSTER_DETECTOR_HPP
#define GOLFCC_CLUSTER_DETECTOR_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/message.hpp"
#include "support/vclock.hpp"

namespace golf::cluster {

/** A client call awaiting a remote reply (from shard A's view). */
struct PendingCallInfo
{
    uint64_t reqId = 0;
    int target = 0;
    support::VTime sinceVt = 0;
};

/** One shard's epoch-stamped blocked-on/reachability summary. */
struct SummaryData
{
    int shard = 0;
    uint32_t generation = 0;
    uint64_t epoch = 0;
    support::VTime vt = 0;  ///< Shard-local clock at emission.
    /** Reliable data-plane messages this shard has sent to / fully
     *  delivered from each peer (indexed by shard id). */
    std::vector<uint64_t> sentTo;
    std::vector<uint64_t> deliveredFrom;
    std::vector<PendingCallInfo> pending;
    std::vector<uint64_t> dead;   ///< reqIds: handler dead, no response.
    std::vector<uint64_t> active; ///< reqIds: handler live or queued.

    std::string encodePayload() const;
    static bool decodePayload(const std::string& bytes,
                              SummaryData& out);
};

/** A cross-shard Cancel/Reclaim verdict. */
struct Verdict
{
    uint64_t reqId = 0;
    int waiterShard = 0;
    int targetShard = 0;
    uint64_t epochB = 0;  ///< Confirming epoch (b2).
};

/** The coordinator's fixpoint over received summaries. */
class Coordinator
{
  public:
    explicit Coordinator(int shards) : shards_(shards) {}

    /** Feed a summary received over the (faulty) control links. */
    void onSummary(const SummaryData& s);

    /**
     * Run one detection round at cluster time `now`. Shards in
     * `down` (safe-mode / restarting / quarantined) are excluded and
     * degrade the round. Returns the verdicts to apply; each reqId
     * is issued at most once.
     */
    std::vector<Verdict> round(support::VTime now,
                               const std::vector<bool>& down);

    uint64_t rounds() const { return rounds_; }
    uint64_t degradedRounds() const { return degradedRounds_; }
    uint64_t verdictsIssued() const { return verdictsIssued_; }
    uint64_t summariesReceived() const { return summariesReceived_; }

    /** Byte-stable log of rounds + verdicts (for -repro). */
    const std::string& trace() const { return trace_; }

  private:
    int shards_;
    /** Two most recent summaries per shard (prev, last). */
    std::unordered_map<int, SummaryData> last_;
    std::unordered_map<int, SummaryData> prev_;
    std::unordered_set<uint64_t> issued_;
    uint64_t rounds_ = 0;
    uint64_t degradedRounds_ = 0;
    uint64_t verdictsIssued_ = 0;
    uint64_t summariesReceived_ = 0;
    std::string trace_;
};

/** Cluster recovery ladder state for one shard (extends the PR 4
 *  per-runtime Detect→Cancel→Reclaim→Quarantine ladder to whole
 *  shards). */
enum class ShardHealth : uint8_t
{
    Healthy,
    Suspect,       ///< phi >= suspectPhi: watch closely.
    SafeMode,      ///< phi >= safeModePhi: unroutable + detector
                   ///< degrades; per-shard GOLF keeps running.
    Quarantined,   ///< Restarts exhausted: permanently removed.
};

const char* shardHealthName(ShardHealth h);

struct PhiConfig
{
    support::VTime heartbeatEvery = 50 * support::kMillisecond;
    /** phi = silence / heartbeatEvery (linear accrual). */
    double suspectPhi = 4.0;
    double safeModePhi = 10.0;
    /** Restart the shard when phi crosses this (0 = never). */
    double restartPhi = 0.0;
    int maxRestarts = 1;
    /** Quarantine when phi crosses this after restarts are spent
     *  (0 = never). */
    double quarantinePhi = 0.0;
};

/**
 * Phi-style accrual failure detector over virtual time: suspicion
 * rises continuously with heartbeat silence and collapses to zero on
 * the next beat. Thresholds gate the ladder transitions; the cluster
 * driver applies the side effects (rerouting, restart, quarantine).
 */
class FailureDetector
{
  public:
    FailureDetector(const PhiConfig& cfg, int shards)
        : cfg_(cfg), lastHeard_(static_cast<size_t>(shards), 0),
          health_(static_cast<size_t>(shards), ShardHealth::Healthy),
          restarts_(static_cast<size_t>(shards), 0)
    {}

    void
    onHeartbeat(int shard, support::VTime now)
    {
        lastHeard_[static_cast<size_t>(shard)] = now;
    }

    double
    phi(int shard, support::VTime now) const
    {
        const support::VTime silence =
            now - lastHeard_[static_cast<size_t>(shard)];
        return static_cast<double>(silence) /
               static_cast<double>(cfg_.heartbeatEvery);
    }

    ShardHealth health(int shard) const
    {
        return health_[static_cast<size_t>(shard)];
    }
    int restarts(int shard) const
    {
        return restarts_[static_cast<size_t>(shard)];
    }

    struct Actions
    {
        std::vector<int> toRestart;
        std::vector<int> toQuarantine;
        bool anyTransition = false;
    };

    /** Re-evaluate every shard's rung at `now`. */
    Actions poll(support::VTime now);

    /** The driver performed a restart: reset suspicion with a grace
     *  stamp so the recovering shard isn't immediately re-suspected. */
    void
    noteRestarted(int shard, support::VTime now)
    {
        ++restarts_[static_cast<size_t>(shard)];
        lastHeard_[static_cast<size_t>(shard)] = now;
        health_[static_cast<size_t>(shard)] = ShardHealth::Suspect;
    }

    uint64_t suspectTransitions() const { return suspects_; }
    uint64_t safeModeTransitions() const { return safeModes_; }

  private:
    PhiConfig cfg_;
    std::vector<support::VTime> lastHeard_;
    std::vector<ShardHealth> health_;
    std::vector<int> restarts_;
    uint64_t suspects_ = 0;
    uint64_t safeModes_ = 0;
};

} // namespace golf::cluster

#endif // GOLFCC_CLUSTER_DETECTOR_HPP
