#include "cluster/cluster.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <unordered_set>

#include "chan/channel.hpp"
#include "gc/object.hpp"
#include "runtime/defer.hpp"
#include "runtime/local.hpp"
#include "support/stats.hpp"

namespace golf::cluster {
namespace {

using chan::Channel;
using chan::Unit;
using chan::makeChan;
using support::VTime;
using support::kMicrosecond;
using support::kMillisecond;
using support::kSecond;

struct Cluster;
struct ShardCtx;

/** The caller-side handle for one remote call. Rooted by the parked
 *  waiter's blockedOn set and the caller's gc::Local; the pending map
 *  holds a raw pointer that is erased before the waiter can die. */
struct RemoteCallObj final : gc::Object
{
    enum State : uint8_t { Pending, Responded, Failed };
    State state = Pending;
    std::string response;

    const char* objectName() const override { return "RemoteCall"; }
};

struct PendingCall
{
    uint64_t reqId = 0;
    int target = 0;
    VTime sentVt = 0;
    rt::Goroutine* waiter = nullptr;
    RemoteCallObj* call = nullptr;
};

/** Handler-side journal entry. Survives shard restarts — the journal
 *  is what rolling restart replays (at-least-once; the caller's
 *  pending map dedups the response). */
struct ReqEntry
{
    uint64_t key = 0;
    int origin = 0;
    bool leaky = false;
    bool responded = false;
};

struct ShardCtx
{
    Cluster* cl = nullptr;
    int id = 0;
    uint32_t generation = 0;
    bool done = false;
    rt::RunResult result;
    uint64_t nextReqSeq = 0;
    /** Ordered maps/sets: summary emission iterates them and the
     *  repro transcript must be byte-stable. */
    std::map<uint64_t, PendingCall> pending;
    std::map<uint64_t, ReqEntry> reqs;
    std::set<uint64_t> deadSet; ///< Handler died without responding.
    uint64_t epoch = 0;
    VTime nextSummaryAt = 0;
    VTime nextHbAt = 0;
    VTime issueEndVt = 0;
    VTime endVt = 0;
    ShardOutcome out;
    std::string faultTrace; ///< Accumulated across restarts.
    bool everRestarted = false;
    obs::Gauge* gHealth = nullptr;
    obs::Gauge* gPending = nullptr;
    obs::Gauge* gDead = nullptr;
    obs::Gauge* gGeneration = nullptr;
    /** Declared last: destroyed first, so frame-unwind destructors
     *  (HandlerScope, call defers) still see the maps above. */
    std::unique_ptr<rt::Runtime> rt;
};

struct Cluster
{
    const ClusterConfig& cfg;
    Network net;
    Ring ring;
    Coordinator coord;
    FailureDetector fd;
    support::Samples latenciesMs;
    std::unordered_set<uint64_t> leakyReqs;    ///< Dispatch intent.
    std::unordered_set<uint64_t> leakedParked; ///< Actually parked.
    std::unordered_set<uint64_t> detectedReqs;
    uint64_t falsePositives = 0;
    uint64_t verdictsApplied = 0;
    uint64_t quarantineCancels = 0;
    /** Set by the driver once every pending call has resolved (or
     *  the drain cap hit); shard mains exit on their next tick. */
    bool drained = false;
    std::string localTrace; ///< Same-shard resolutions (repro).
    std::vector<std::unique_ptr<ShardCtx>> shards;

    explicit Cluster(const ClusterConfig& c)
        : cfg(c),
          net(NetworkConfig{c.baseLatencyNs, c.netfault, {}},
              c.seed ^ 0x5EEDC0DEull),
          ring(c.shards, c.vnodes), coord(c.shards),
          fd(c.phi, c.shards)
    {}
};

/** Positive-evidence hook: lives in the handler coroutine frame, so
 *  it runs on *every* way the handler can end — normal return (after
 *  respond() set the flag), GOLF reclaim of a leak, cancel-rung
 *  death, injected panic, or restart teardown. */
struct HandlerScope
{
    ShardCtx* sh;
    uint64_t reqId;

    ~HandlerScope()
    {
        auto it = sh->reqs.find(reqId);
        if (it != sh->reqs.end() && !it->second.responded)
            sh->deadSet.insert(reqId);
    }
};

void dispatchRequest(Cluster& cl, ShardCtx* b, uint64_t reqId,
                     uint64_t key, int origin);

/** Resolve a response on the caller shard. Returns false if the call
 *  is already gone (cancelled, restarted, duplicate response). */
bool
completeCall(ShardCtx* a, uint64_t reqId, const std::string& payload)
{
    auto it = a->pending.find(reqId);
    if (it == a->pending.end())
        return false;
    RemoteCallObj* call = it->second.call;
    rt::Goroutine* waiter = it->second.waiter;
    // Completion is counted here, at delivery: a waiter readied at
    // the drain boundary may be abandoned Go-style before it ever
    // resumes to observe the response.
    ++a->out.completed;
    a->cl->latenciesMs.add(
        static_cast<double>(a->rt->clock().now() -
                            it->second.sentVt) /
        static_cast<double>(support::kMillisecond));
    a->pending.erase(it);
    call->state = RemoteCallObj::Responded;
    call->response = payload;
    if (waiter)
        a->rt->ready(waiter);
    return true;
}

void
respond(ShardCtx* sh, uint64_t reqId)
{
    auto it = sh->reqs.find(reqId);
    if (it == sh->reqs.end() || it->second.responded)
        return;
    it->second.responded = true;
    const std::string payload = "ok:" + std::to_string(reqId);
    if (it->second.origin == sh->id) {
        completeCall(sh, reqId, payload);
        return;
    }
    Message m;
    m.type = MsgType::Response;
    m.src = sh->id;
    m.dst = it->second.origin;
    m.reqId = reqId;
    m.generation = sh->generation;
    m.payload = payload;
    sh->cl->net.send(std::move(m), sh->rt->clock().now());
}

rt::Go
handlerTask(ShardCtx* sh, uint64_t reqId)
{
    HandlerScope scope{sh, reqId};
    ++sh->out.handlersRun;
    co_await rt::ioWait(sh->cl->cfg.handlerIoNs);
    rt::busy(sh->cl->cfg.handlerCostNs);
    auto it = sh->reqs.find(reqId);
    if (it == sh->reqs.end() || it->second.responded)
        co_return;
    if (it->second.leaky) {
        // The injected cross-shard leak: park forever on a channel
        // nobody else holds. The *target* shard's GOLF detects and
        // reclaims this goroutine; only the epoch-confirmed verdict
        // may release the remote caller.
        sh->cl->leakedParked.insert(reqId);
        gc::Local<Channel<Unit>> ch(makeChan<Unit>(*sh->rt, 0));
        co_await chan::recv(ch.get());
        co_return; // reachable only via a cancel-rung recovery
    }
    respond(sh, reqId);
    co_return;
}

void
dispatchRequest(Cluster& cl, ShardCtx* b, uint64_t reqId,
                uint64_t key, int origin)
{
    auto [it, fresh] = b->reqs.try_emplace(reqId);
    if (fresh) {
        it->second.key = key;
        it->second.origin = origin;
        it->second.leaky =
            cl.cfg.leakProb > 0.0 &&
            static_cast<double>(mix64(reqId ^ (cl.cfg.seed * 31))) <
                cl.cfg.leakProb *
                    static_cast<double>(
                        std::numeric_limits<uint64_t>::max());
        if (it->second.leaky) {
            cl.leakyReqs.insert(reqId);
            ++b->out.leaksInjected;
        }
    } else if (it->second.responded) {
        // Late duplicate of an answered request: re-send the reply
        // rather than re-running the handler (idempotence).
        it->second.responded = false;
        respond(b, reqId);
        return;
    }
    rt::Runtime::Scope scope(*b->rt);
    GOLF_GO(*b->rt, handlerTask, b, reqId);
}

/** Awaitable remote reply: parks in RemoteWait, which per-shard GOLF
 *  never treats as a deadlock candidate. */
struct CallAwaiter
{
    ShardCtx* sh;
    RemoteCallObj* call;
    uint64_t reqId;

    bool
    await_ready() const noexcept
    {
        return call->state != RemoteCallObj::Pending;
    }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        rt::Runtime* rt = rt::Runtime::current();
        rt::Goroutine* g = rt->currentGoroutine();
        auto it = sh->pending.find(reqId);
        if (it != sh->pending.end())
            it->second.waiter = g;
        rt->park(g, h, rt::WaitReason::RemoteWait, {call}, false,
                 rt::Site{"cluster.cpp", 0, "remoteCall"});
    }

    void await_resume() { rt::checkCancel(); }
};

rt::Go
oneCall(ShardCtx* sh, uint64_t key)
{
    Cluster* cl = sh->cl;
    uint64_t reqId = 0;
    GOLF_DEFER([sh, &reqId] {
        // A coordinator verdict lands here as a DeadlockError. The
        // cancellation is *counted* in cancelWaiter (driver side):
        // a waiter woken at the drain boundary may be abandoned
        // Go-style before this defer ever runs.
        rt::recover();
        if (reqId != 0)
            sh->pending.erase(reqId);
    });
    const int target = cl->ring.route(key);
    if (target < 0) {
        ++sh->out.unroutable;
        co_return;
    }
    reqId = (static_cast<uint64_t>(sh->id + 1) << 40) |
            ++sh->nextReqSeq;
    const VTime t0 = sh->rt->clock().now();
    gc::Local<RemoteCallObj> call(sh->rt->make<RemoteCallObj>());
    sh->pending[reqId] =
        PendingCall{reqId, target, t0, nullptr, call.get()};
    ++sh->out.issued;
    if (target == sh->id) {
        ++sh->out.localCalls;
        dispatchRequest(*cl, sh, reqId, key, sh->id);
    } else {
        ++sh->out.remoteCalls;
        Message m;
        m.type = MsgType::Request;
        m.src = sh->id;
        m.dst = target;
        m.reqId = reqId;
        m.key = key;
        m.generation = sh->generation;
        cl->net.send(std::move(m), t0);
    }
    co_await CallAwaiter{sh, call.get(), reqId};
    co_return;
}

rt::Go
clientLoop(ShardCtx* sh, int idx)
{
    rt::Runtime& rt = *sh->rt;
    const ClusterConfig& cfg = sh->cl->cfg;
    support::Rng rng(mix64(cfg.seed ^
                           (static_cast<uint64_t>(sh->id) << 8) ^
                           (static_cast<uint64_t>(idx) << 24) ^
                           (static_cast<uint64_t>(sh->generation)
                            << 48)));
    while (rt.clock().now() < sh->issueEndVt) {
        GOLF_GO(rt, oneCall, sh, rng.next());
        VTime interval = cfg.thinkNs;
        const VTime now = rt.clock().now();
        if (cfg.flashCrowdFactor > 1.0 && now >= cfg.flashStart &&
            now < cfg.flashStart + cfg.flashDuration) {
            interval = static_cast<VTime>(
                static_cast<double>(interval) / cfg.flashCrowdFactor);
        }
        if (interval < 10 * kMicrosecond)
            interval = 10 * kMicrosecond;
        co_await rt::sleepFor(
            interval +
            static_cast<VTime>(rng.nextBelow(
                static_cast<uint64_t>(interval / 4) + 1)));
    }
    co_return;
}

/** The shard's main: spawn the generators, then keep a timer alive
 *  until the horizon so a stepped shard always has local work and
 *  Idle strictly means "waiting on the network". Never joins its
 *  calls — leaked or unanswered waiters must not wedge the shard.
 *  Past the grace horizon the shard stays up until the driver
 *  declares the cluster drained, so late-injected leaks still get
 *  their reclaim -> two-epoch confirm -> verdict pipeline. */
rt::Go
shardMain(ShardCtx* sh)
{
    for (int c = 0; c < sh->cl->cfg.clientsPerShard; ++c)
        GOLF_GO(*sh->rt, clientLoop, sh, c);
    while (sh->rt->clock().now() < sh->endVt || !sh->cl->drained)
        co_await rt::sleepFor(kMillisecond);
    co_return;
}

void
registerClusterGauges(ShardCtx* sh)
{
    obs::Obs* o = sh->rt->obs();
    if (!o)
        return;
    obs::Registry& reg = o->registry();
    sh->gHealth = reg.gauge(
        "/cluster/shard/health:rung",
        "Cluster ladder rung (0 healthy, 1 suspect, 2 safe-mode, "
        "3 quarantined)");
    sh->gPending = reg.gauge("/cluster/calls/pending:calls",
                             "Outbound calls awaiting a reply");
    sh->gDead = reg.gauge(
        "/cluster/handlers/dead:reqs",
        "Requests whose handler died without responding");
    sh->gGeneration = reg.gauge("/cluster/shard/generation:restarts",
                                "Shard restart generation");
}

void
bootShard(Cluster& cl, ShardCtx* sh, VTime startClockAt)
{
    rt::Config rc;
    rc.seed = mix64(cl.cfg.seed ^
                    (static_cast<uint64_t>(sh->id) * 0x9E37ull) ^
                    (static_cast<uint64_t>(sh->generation) << 32));
    rc.shardId = sh->id;
    rc.gcWorkers = cl.cfg.gcWorkers;
    rc.recovery = cl.cfg.recovery;
    rc.faults = cl.cfg.shardFaults;
    rc.watchdog.enabled = cl.cfg.watchdog;
    rc.verboseReports = cl.cfg.verboseReports;
    rc.obs.enabled = cl.cfg.obsEnabled;
    rc.heap.softLimitBytes = cl.cfg.shardSoftLimitBytes;
    rc.mem = cl.cfg.mem;
    sh->rt = std::make_unique<rt::Runtime>(rc);
    rt::Runtime::Scope scope(*sh->rt);
    if (startClockAt > 0)
        sh->rt->clock().advance(startClockAt);
    registerClusterGauges(sh);
    const VTime now = sh->rt->clock().now();
    sh->nextHbAt = now + cl.cfg.phi.heartbeatEvery +
                   static_cast<VTime>(sh->id) * kMicrosecond;
    sh->nextSummaryAt = now + cl.cfg.summaryEvery +
                        static_cast<VTime>(sh->id) * kMicrosecond;
    sh->rt->startMain(shardMain, sh);
}

void
accountVerdict(Cluster& cl, ShardCtx* b, uint64_t reqId)
{
    ++cl.verdictsApplied;
    // Soundness check against live ground truth: a verdict is false
    // iff the handler did not actually die without responding.
    if (b->deadSet.count(reqId) == 0)
        ++cl.falsePositives;
    if (cl.leakyReqs.count(reqId))
        cl.detectedReqs.insert(reqId);
}

void
cancelWaiter(ShardCtx* a, uint64_t reqId, const std::string& why)
{
    auto it = a->pending.find(reqId);
    if (it == a->pending.end())
        return;
    PendingCall pc = it->second;
    a->pending.erase(it);
    ++a->out.cancelled;
    rt::Runtime::Scope scope(*a->rt);
    pc.call->state = RemoteCallObj::Failed;
    if (pc.waiter)
        a->rt->deliverCancel(pc.waiter, why);
}

void
applyVerdicts(Cluster& cl, const std::vector<Verdict>& vs)
{
    for (const Verdict& v : vs) {
        ShardCtx* a = cl.shards[static_cast<size_t>(v.waiterShard)]
                          .get();
        ShardCtx* b = cl.shards[static_cast<size_t>(v.targetShard)]
                          .get();
        accountVerdict(cl, b, v.reqId);
        if (a->done || !a->rt)
            continue;
        cancelWaiter(a, v.reqId,
                     "cross-shard deadlock: request " +
                         std::to_string(v.reqId) +
                         " handler dead on shard " +
                         std::to_string(v.targetShard));
    }
}

/** Same-shard calls never cross a link, so the coordinator's frontier
 *  conditions cannot apply; resolve them from purely local state
 *  (pending + deadSet on one shard), which is trivially sound. */
void
resolveLocalDead(Cluster& cl, ShardCtx* sh)
{
    std::vector<uint64_t> hits;
    for (const auto& [rid, pc] : sh->pending)
        if (pc.target == sh->id && sh->deadSet.count(rid))
            hits.push_back(rid);
    for (uint64_t rid : hits) {
        accountVerdict(cl, sh, rid);
        std::ostringstream os;
        os << "local-resolve shard=" << sh->id << " req=" << rid
           << " vt=" << sh->rt->clock().now() << "\n";
        cl.localTrace += os.str();
        cancelWaiter(sh, rid,
                     "local deadlock: request " +
                         std::to_string(rid) +
                         " handler dead on this shard");
    }
}

void
emitSummary(Cluster& cl, ShardCtx* sh, VTime now)
{
    SummaryData s;
    s.shard = sh->id;
    s.generation = sh->generation;
    s.epoch = ++sh->epoch;
    s.vt = now;
    s.sentTo.resize(static_cast<size_t>(cl.cfg.shards), 0);
    s.deliveredFrom.resize(static_cast<size_t>(cl.cfg.shards), 0);
    for (int j = 0; j < cl.cfg.shards; ++j) {
        s.sentTo[static_cast<size_t>(j)] = cl.net.sentTo(sh->id, j);
        s.deliveredFrom[static_cast<size_t>(j)] =
            cl.net.deliveredFrom(sh->id, j);
    }
    for (const auto& [rid, pc] : sh->pending)
        s.pending.push_back({rid, pc.target, pc.sentVt});
    s.dead.assign(sh->deadSet.begin(), sh->deadSet.end());
    for (const auto& [rid, e] : sh->reqs)
        if (!e.responded && sh->deadSet.count(rid) == 0)
            s.active.push_back(rid);
    Message m;
    m.type = MsgType::Summary;
    m.src = sh->id;
    m.dst = kControlEndpoint;
    m.generation = sh->generation;
    m.payload = s.encodePayload();
    cl.net.send(std::move(m), now);

    if (sh->gPending) {
        sh->gHealth->set(static_cast<double>(cl.fd.health(sh->id)));
        sh->gPending->set(static_cast<double>(sh->pending.size()));
        sh->gDead->set(static_cast<double>(sh->deadSet.size()));
        sh->gGeneration->set(static_cast<double>(sh->generation));
    }
}

void
restartShard(Cluster& cl, ShardCtx* sh, VTime now)
{
    if (sh->done || !sh->rt)
        return;
    ++sh->out.restarts;
    sh->everRestarted = true;
    sh->faultTrace += sh->rt->faults().trace();
    const VTime clockAt =
        std::max(now, sh->rt->clock().now()) + cl.cfg.restartCostNs;
    // Tearing the runtime down unwinds every live frame: leaked
    // handlers mark themselves dead, callers' defers drain pending.
    sh->rt.reset();
    sh->pending.clear();
    ++sh->generation;
    bootShard(cl, sh, clockAt);
    // Journal replay: accepted-but-unanswered requests run again
    // under the new generation; their teardown dead-marks are
    // withdrawn so the old generation's evidence dies with it.
    for (auto& [rid, e] : sh->reqs) {
        if (e.responded)
            continue;
        sh->deadSet.erase(rid);
        rt::Runtime::Scope scope(*sh->rt);
        GOLF_GO(*sh->rt, handlerTask, sh, rid);
    }
    cl.fd.noteRestarted(sh->id, clockAt);
    cl.ring.setRoutable(sh->id, true);
}

void
quarantineShard(Cluster& cl, ShardCtx* sh)
{
    if (!sh->rt)
        return;
    sh->faultTrace += sh->rt->faults().trace();
    sh->rt.reset();
    sh->done = true;
    sh->out.finalHealth = ShardHealth::Quarantined;
    cl.ring.setRoutable(sh->id, false);
    cl.net.forgetEndpoint(sh->id);
    // The shard is permanently gone and its journal will never be
    // replayed: every caller still waiting on it can soundly be
    // released (the response provably cannot arrive).
    for (auto& a : cl.shards) {
        if (a->done || !a->rt)
            continue;
        std::vector<uint64_t> hits;
        for (const auto& [rid, pc] : a->pending)
            if (pc.target == sh->id)
                hits.push_back(rid);
        for (uint64_t rid : hits) {
            ++cl.quarantineCancels;
            cancelWaiter(a.get(), rid,
                         "shard " + std::to_string(sh->id) +
                             " quarantined");
        }
    }
}

void
deliverMessage(Cluster& cl, const Network::Delivery& d, VTime now)
{
    const Message& m = d.msg;
    if (d.dst == kControlEndpoint) {
        if (m.type == MsgType::Heartbeat) {
            cl.fd.onHeartbeat(m.src, now);
        } else if (m.type == MsgType::Summary) {
            SummaryData s;
            if (SummaryData::decodePayload(m.payload, s))
                cl.coord.onSummary(s);
        }
        return;
    }
    if (d.dst < 0 || d.dst >= cl.cfg.shards)
        return;
    ShardCtx* b = cl.shards[static_cast<size_t>(d.dst)].get();
    if (b->done || !b->rt)
        return;
    switch (m.type) {
      case MsgType::Request:
        dispatchRequest(cl, b, m.reqId, m.key, m.src);
        break;
      case MsgType::Response: {
        rt::Runtime::Scope scope(*b->rt);
        completeCall(b, m.reqId, m.payload);
        break;
      }
      default:
        break;
    }
}

std::vector<bool>
downShards(const Cluster& cl)
{
    std::vector<bool> down(static_cast<size_t>(cl.cfg.shards), false);
    for (int i = 0; i < cl.cfg.shards; ++i) {
        const ShardHealth h = cl.fd.health(i);
        down[static_cast<size_t>(i)] =
            h == ShardHealth::SafeMode ||
            h == ShardHealth::Quarantined || !cl.shards
                [static_cast<size_t>(i)]->rt;
    }
    return down;
}

void
fdPoll(Cluster& cl, VTime at)
{
    const FailureDetector::Actions acts = cl.fd.poll(at);
    for (int s : acts.toRestart)
        restartShard(cl, cl.shards[static_cast<size_t>(s)].get(), at);
    for (int s : acts.toQuarantine)
        quarantineShard(cl, cl.shards[static_cast<size_t>(s)].get());
    // Ladder side effect: safe-mode and quarantined shards leave the
    // ring; the consistent hash remaps only their keys.
    for (int i = 0; i < cl.cfg.shards; ++i) {
        const ShardHealth h = cl.fd.health(i);
        cl.ring.setRoutable(i, h == ShardHealth::Healthy ||
                                   h == ShardHealth::Suspect);
    }
}

} // namespace

ClusterResult
runCluster(const ClusterConfig& cfg)
{
    Cluster cl(cfg);
    ClusterResult res;
    for (int i = 0; i < cfg.shards; ++i) {
        auto sh = std::make_unique<ShardCtx>();
        sh->cl = &cl;
        sh->id = i;
        sh->issueEndVt = cfg.issueWindow;
        sh->endVt = cfg.issueWindow + cfg.grace;
        cl.shards.push_back(std::move(sh));
    }
    for (auto& sh : cl.shards)
        bootShard(cl, sh.get(), 0);

    std::vector<ScheduledRestart> plan = cfg.restarts;
    std::sort(plan.begin(), plan.end(),
              [](const ScheduledRestart& x, const ScheduledRestart& y) {
                  return x.at != y.at ? x.at < y.at
                                      : x.shard < y.shard;
              });
    size_t planIdx = 0;
    VTime nextRound = cfg.detectEvery;
    VTime nextFdPoll = cfg.fdPollEvery;
    const VTime drainMinVt = cfg.issueWindow + cfg.grace;
    const VTime drainCapVt = drainMinVt + cfg.drainCap;
    uint64_t stallTicks = 0;

    while (true) {
        ShardCtx* sh = nullptr;
        VTime t = std::numeric_limits<VTime>::max();
        for (auto& s : cl.shards) {
            if (s->done || !s->rt)
                continue;
            const VTime c = s->rt->clock().now();
            if (c < t) {
                t = c;
                sh = s.get();
            }
        }
        if (!sh)
            break;

        for (const Network::Delivery& d : cl.net.pump(t))
            deliverMessage(cl, d, t);
        while (nextFdPoll <= t) {
            fdPoll(cl, nextFdPoll);
            nextFdPoll += cfg.fdPollEvery;
        }
        while (nextRound <= t) {
            applyVerdicts(cl,
                          cl.coord.round(nextRound, downShards(cl)));
            nextRound += cfg.detectEvery;
        }
        if (!cl.drained && t >= drainMinVt) {
            bool allResolved = true;
            for (auto& s : cl.shards) {
                if (s->rt && !s->done && !s->pending.empty()) {
                    allResolved = false;
                    break;
                }
            }
            if (allResolved || t >= drainCapVt)
                cl.drained = true;
        }
        while (planIdx < plan.size() && plan[planIdx].at <= t) {
            restartShard(
                cl,
                cl.shards[static_cast<size_t>(plan[planIdx].shard)]
                    .get(),
                t);
            ++planIdx;
        }
        if (sh->done || !sh->rt)
            continue; // a ladder action consumed this shard

        const VTime snow = sh->rt->clock().now();
        if (sh->nextHbAt <= snow) {
            Message hb;
            hb.type = MsgType::Heartbeat;
            hb.src = sh->id;
            hb.dst = kControlEndpoint;
            hb.generation = sh->generation;
            cl.net.send(std::move(hb), snow);
            sh->nextHbAt = snow + cfg.phi.heartbeatEvery;
            sh->out.peakPressure = std::max(
                sh->out.peakPressure, sh->rt->watchdogPressure());
        }
        if (sh->nextSummaryAt <= snow) {
            emitSummary(cl, sh, snow);
            resolveLocalDead(cl, sh);
            sh->nextSummaryAt = snow + cfg.summaryEvery;
        }

        rt::Runtime::StepOutcome o;
        {
            rt::Runtime::Scope scope(*sh->rt);
            o = sh->rt->step();
        }
        if (o == rt::Runtime::StepOutcome::Done) {
            rt::Runtime::Scope scope(*sh->rt);
            sh->result = sh->rt->finishRun();
            sh->done = true;
            sh->out.mainCompleted = sh->result.mainCompleted;
            if (sh->result.panicked) {
                res.failed = true;
                res.failReason = "shard " + std::to_string(sh->id) +
                                 " panicked: " +
                                 sh->result.panicMessage;
            }
            stallTicks = 0;
        } else if (o == rt::Runtime::StepOutcome::Idle) {
            VTime target = t + kMillisecond;
            target = std::min(target, cl.net.nextEventAt());
            target = std::min(target, sh->nextHbAt);
            target = std::min(target, sh->nextSummaryAt);
            target = std::min(target, nextRound);
            target = std::min(target, nextFdPoll);
            if (planIdx < plan.size())
                target = std::min(target, plan[planIdx].at);
            if (target <= snow)
                target = snow + 10 * kMicrosecond;
            {
                rt::Runtime::Scope scope(*sh->rt);
                sh->rt->idleAdvanceTo(target);
            }
            if (sh->rt->clock().now() <= snow) {
                if (++stallTicks > 100000) {
                    res.failed = true;
                    res.failReason = "cluster stalled at vt=" +
                                     std::to_string(t);
                    break;
                }
            } else {
                stallTicks = 0;
            }
        } else {
            stallTicks = 0;
        }
    }

    // ---- Final accounting (before teardown mutates dead sets). ----
    res.verdicts = cl.verdictsApplied + cl.quarantineCancels;
    res.falsePositives = cl.falsePositives;
    res.rounds = cl.coord.rounds();
    res.degradedRounds = cl.coord.degradedRounds();
    res.summaries = cl.coord.summariesReceived();
    res.suspects = cl.fd.suspectTransitions();
    res.safeModes = cl.fd.safeModeTransitions();
    res.net = cl.net.totals();
    res.leaksInjected = cl.leakyReqs.size();
    for (uint64_t rid : cl.leakedParked) {
        const int origin = static_cast<int>((rid >> 40) - 1);
        ShardCtx* a = cl.shards[static_cast<size_t>(origin)].get();
        // Target shard = the shard whose journal holds rid.
        int target = -1;
        for (auto& s : cl.shards) {
            if (s->reqs.count(rid)) {
                target = s->id;
                break;
            }
        }
        const bool targetQuarantined =
            target >= 0 &&
            cl.fd.health(target) == ShardHealth::Quarantined;
        if (!a->everRestarted && !targetQuarantined)
            ++res.leaksDetectable;
    }
    res.leaksDetected = cl.detectedReqs.size();
    VTime lastClock = 0;
    for (auto& sh : cl.shards) {
        sh->out.finalHealth = cl.fd.health(sh->id);
        res.issued += sh->out.issued;
        res.completed += sh->out.completed;
        res.cancelled += sh->out.cancelled;
        res.restarts += static_cast<uint64_t>(sh->out.restarts);
        if (sh->out.finalHealth == ShardHealth::Quarantined)
            ++res.quarantines;
        if (sh->rt)
            lastClock = std::max(lastClock, sh->rt->clock().now());
        res.shards.push_back(sh->out);
    }
    res.endVt = lastClock;
    res.goodput = static_cast<double>(res.completed) /
                  (static_cast<double>(cfg.issueWindow) /
                   static_cast<double>(kSecond));
    if (cl.latenciesMs.count() > 0) {
        res.p50Ms = cl.latenciesMs.percentile(50.0);
        res.p99Ms = cl.latenciesMs.percentile(99.0);
        res.p999Ms = cl.latenciesMs.percentile(99.9);
    }
    if (!res.failed) {
        for (auto& sh : cl.shards) {
            if (!sh->done && sh->rt) {
                res.failed = true;
                res.failReason = "shard " + std::to_string(sh->id) +
                                 " never finished";
            }
        }
    }

    // ---- Repro transcript (byte-stable). ----
    std::ostringstream r;
    // gcWorkers deliberately not echoed: the transcript must be
    // byte-identical across worker counts (the DESIGN §8 contract
    // extended to the cluster).
    r << "cluster shards=" << cfg.shards << " seed=" << cfg.seed
      << "\n";
    r << "netfaults " << cl.net.injector().injected() << "\n"
      << cl.net.injector().trace();
    r << "coordinator rounds=" << res.rounds
      << " degraded=" << res.degradedRounds
      << " verdicts=" << cl.coord.verdictsIssued() << "\n"
      << cl.coord.trace() << cl.localTrace;
    for (auto& sh : cl.shards) {
        r << "shard " << sh->id << " gen=" << sh->generation
          << " issued=" << sh->out.issued
          << " completed=" << sh->out.completed
          << " cancelled=" << sh->out.cancelled
          << " handlers=" << sh->out.handlersRun
          << " leaks=" << sh->out.leaksInjected
          << " dead=" << sh->deadSet.size()
          << " pending=" << sh->pending.size() << "\n";
        if (sh->rt)
            sh->faultTrace += sh->rt->faults().trace();
        r << sh->faultTrace;
    }
    r << "totals issued=" << res.issued
      << " completed=" << res.completed
      << " cancelled=" << res.cancelled
      << " verdicts=" << res.verdicts << " fp=" << res.falsePositives
      << " detected=" << res.leaksDetected << "/"
      << res.leaksDetectable << "/" << res.leaksInjected
      << " net.sent=" << res.net.sent
      << " net.dropped=" << res.net.dropped
      << " net.retransmits=" << res.net.retransmits << "\n";
    res.repro = r.str();

    if (cfg.captureObs) {
        std::ostringstream j;
        j << "{";
        bool first = true;
        for (auto& sh : cl.shards) {
            if (!sh->rt || !sh->rt->obs())
                continue;
            rt::Runtime::Scope scope(*sh->rt);
            if (!first)
                j << ",";
            first = false;
            j << "\"shard" << sh->id
              << "\": " << sh->rt->obs()->metricsJson();
        }
        j << "}";
        res.shardMetricsJson = j.str();
    }

    // Deterministic teardown order (frame unwinds touch ShardCtx
    // maps, which outlive each runtime).
    for (auto& sh : cl.shards)
        sh->rt.reset();
    return res;
}

} // namespace golf::cluster
