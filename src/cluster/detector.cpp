#include "cluster/detector.hpp"

#include <algorithm>
#include <sstream>

namespace golf::cluster {

std::string
SummaryData::encodePayload() const
{
    std::string out;
    putU32(out, static_cast<uint32_t>(shard));
    putU32(out, generation);
    putU64(out, epoch);
    putI64(out, vt);
    putU32(out, static_cast<uint32_t>(sentTo.size()));
    for (uint64_t v : sentTo)
        putU64(out, v);
    putU32(out, static_cast<uint32_t>(deliveredFrom.size()));
    for (uint64_t v : deliveredFrom)
        putU64(out, v);
    putU32(out, static_cast<uint32_t>(pending.size()));
    for (const PendingCallInfo& p : pending) {
        putU64(out, p.reqId);
        putU32(out, static_cast<uint32_t>(p.target));
        putI64(out, p.sinceVt);
    }
    putU32(out, static_cast<uint32_t>(dead.size()));
    for (uint64_t v : dead)
        putU64(out, v);
    putU32(out, static_cast<uint32_t>(active.size()));
    for (uint64_t v : active)
        putU64(out, v);
    return out;
}

bool
SummaryData::decodePayload(const std::string& bytes, SummaryData& out)
{
    size_t off = 0;
    uint32_t shard, n;
    if (!getU32(bytes, off, shard) ||
        !getU32(bytes, off, out.generation) ||
        !getU64(bytes, off, out.epoch) || !getI64(bytes, off, out.vt))
        return false;
    out.shard = static_cast<int32_t>(shard);
    if (!getU32(bytes, off, n))
        return false;
    out.sentTo.resize(n);
    for (uint32_t i = 0; i < n; ++i)
        if (!getU64(bytes, off, out.sentTo[i]))
            return false;
    if (!getU32(bytes, off, n))
        return false;
    out.deliveredFrom.resize(n);
    for (uint32_t i = 0; i < n; ++i)
        if (!getU64(bytes, off, out.deliveredFrom[i]))
            return false;
    if (!getU32(bytes, off, n))
        return false;
    out.pending.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
        uint32_t target;
        if (!getU64(bytes, off, out.pending[i].reqId) ||
            !getU32(bytes, off, target) ||
            !getI64(bytes, off, out.pending[i].sinceVt))
            return false;
        out.pending[i].target = static_cast<int32_t>(target);
    }
    if (!getU32(bytes, off, n))
        return false;
    out.dead.resize(n);
    for (uint32_t i = 0; i < n; ++i)
        if (!getU64(bytes, off, out.dead[i]))
            return false;
    if (!getU32(bytes, off, n))
        return false;
    out.active.resize(n);
    for (uint32_t i = 0; i < n; ++i)
        if (!getU64(bytes, off, out.active[i]))
            return false;
    return off == bytes.size();
}

void
Coordinator::onSummary(const SummaryData& s)
{
    ++summariesReceived_;
    auto it = last_.find(s.shard);
    if (it != last_.end()) {
        // Summaries travel over reordering links: keep (prev, last)
        // as the two highest epochs of the current generation.
        if (s.generation > it->second.generation) {
            prev_.erase(s.shard);   // restart: old generation is void
            last_[s.shard] = s;
            return;
        }
        if (s.generation < it->second.generation ||
            s.epoch <= it->second.epoch)
            return;                 // stale or duplicate
        prev_[s.shard] = it->second;
        it->second = s;
        return;
    }
    last_[s.shard] = s;
}

std::vector<Verdict>
Coordinator::round(support::VTime now, const std::vector<bool>& down)
{
    ++rounds_;
    std::vector<Verdict> out;
    bool degraded = false;

    // A shard participates only with two confirmed epochs of the
    // same generation on file and a clear ladder state.
    auto frontier = [&](int shard, const SummaryData*& p,
                        const SummaryData*& l) {
        if (shard < static_cast<int>(down.size()) &&
            down[static_cast<size_t>(shard)])
            return false;
        auto li = last_.find(shard);
        auto pi = prev_.find(shard);
        if (li == last_.end() || pi == prev_.end())
            return false;
        if (li->second.generation != pi->second.generation)
            return false;
        p = &pi->second;
        l = &li->second;
        return true;
    };

    for (int a = 0; a < shards_; ++a) {
        const SummaryData *a1, *a2;
        if (!frontier(a, a1, a2)) {
            degraded = true;
            continue;
        }
        for (const PendingCallInfo& call : a2->pending) {
            if (issued_.count(call.reqId))
                continue;
            const int b = call.target;
            if (b < 0 || b >= shards_ || b == a)
                continue;
            const SummaryData *b1, *b2;
            if (!frontier(b, b1, b2)) {
                degraded = true;
                continue;
            }
            // (1) positive dead evidence in two consecutive epochs.
            auto deadIn = [&](const SummaryData* s) {
                return std::find(s->dead.begin(), s->dead.end(),
                                 call.reqId) != s->dead.end();
            };
            if (!deadIn(b1) || !deadIn(b2))
                continue;
            // (2) the waiter predates the confirmation window and
            // was still pending after B first reported death.
            auto pendingIn = [&](const SummaryData* s) {
                for (const PendingCallInfo& p : s->pending)
                    if (p.reqId == call.reqId)
                        return true;
                return false;
            };
            if (!pendingIn(a1) || call.sinceVt >= b1->vt ||
                a2->vt <= b1->vt)
                continue;
            // (3) link quiescence at the frontier: everything A had
            // sent to B by a2 was delivered at B by b2. The counters
            // are monotone ground truth sampled at emission, so the
            // inequality alone orders the snapshots — requiring
            // b2.vt > a2.vt as well would let only the shard whose
            // summary happens to be newest ever act as target, and
            // with a stable emission order one direction starves.
            const size_t ai = static_cast<size_t>(a);
            const size_t bi = static_cast<size_t>(b);
            if (bi >= a2->sentTo.size() ||
                ai >= b2->deliveredFrom.size())
                continue;
            if (b2->deliveredFrom[ai] < a2->sentTo[bi])
                continue;

            issued_.insert(call.reqId);
            ++verdictsIssued_;
            out.push_back({call.reqId, a, b, b2->epoch});
        }
    }
    if (degraded)
        ++degradedRounds_;

    std::ostringstream os;
    os << "round " << rounds_ << " now=" << now
       << (degraded ? " degraded" : "");
    for (const Verdict& v : out)
        os << " verdict req=" << v.reqId << " " << v.waiterShard
           << "<-" << v.targetShard << "@e" << v.epochB;
    os << "\n";
    trace_ += os.str();
    return out;
}

const char*
shardHealthName(ShardHealth h)
{
    switch (h) {
      case ShardHealth::Healthy: return "healthy";
      case ShardHealth::Suspect: return "suspect";
      case ShardHealth::SafeMode: return "safe-mode";
      case ShardHealth::Quarantined: return "quarantined";
    }
    return "?";
}

FailureDetector::Actions
FailureDetector::poll(support::VTime now)
{
    Actions acts;
    for (size_t i = 0; i < health_.size(); ++i) {
        if (health_[i] == ShardHealth::Quarantined)
            continue;
        const double p = phi(static_cast<int>(i), now);
        ShardHealth next = ShardHealth::Healthy;
        if (p >= cfg_.safeModePhi)
            next = ShardHealth::SafeMode;
        else if (p >= cfg_.suspectPhi)
            next = ShardHealth::Suspect;

        if (next == ShardHealth::SafeMode) {
            if (cfg_.quarantinePhi > 0 && p >= cfg_.quarantinePhi &&
                restarts_[i] >= cfg_.maxRestarts) {
                health_[i] = ShardHealth::Quarantined;
                acts.toQuarantine.push_back(static_cast<int>(i));
                acts.anyTransition = true;
                continue;
            }
            if (cfg_.restartPhi > 0 && p >= cfg_.restartPhi &&
                restarts_[i] < cfg_.maxRestarts) {
                acts.toRestart.push_back(static_cast<int>(i));
                acts.anyTransition = true;
                continue;
            }
        }
        if (next != health_[i]) {
            acts.anyTransition = true;
            if (next == ShardHealth::Suspect &&
                health_[i] == ShardHealth::Healthy)
                ++suspects_;
            if (next == ShardHealth::SafeMode)
                ++safeModes_;
            health_[i] = next;
        }
    }
    return acts;
}

} // namespace golf::cluster
