/**
 * @file
 * Seeded network fault injection for inter-shard links.
 *
 * The cluster analog of rt::FaultInjector (fault.hpp), with the same
 * determinism contract: decisions depend only on (seed, call order),
 * every decide() consumes exactly two RNG draws — one for the fault
 * kind, one for a magnitude that is used by Delay/Reorder and burned
 * otherwise — and the injected-fault log dumps as a byte-stable
 * trace, so a cluster chaos run replays bit-identically under
 * `-repro`.
 *
 * Kinds:
 *   Drop      the transmission is lost (the link layer's retransmit
 *             timer is the only way it ever arrives).
 *   Duplicate the message is delivered twice (receiver-side seq
 *             dedup must make this invisible).
 *   Reorder   delivery is pushed behind later-sent traffic by one
 *             extra base-latency quantum scaled by the magnitude
 *             draw (later messages overtake this one).
 *   Delay     delivery is delayed by magnitude ∈ [0, delayMaxNs).
 *   Partition full loss on every link touching the configured shard
 *             during [partitionStartNs, partitionStartNs +
 *             partitionDurationNs). Window membership is pure
 *             configuration — it consumes no draws — but each
 *             suppressed transmission is logged.
 */
#ifndef GOLFCC_CLUSTER_NETFAULT_HPP
#define GOLFCC_CLUSTER_NETFAULT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "support/vclock.hpp"

namespace golf::cluster {

/** What a transmission is carrying (for the trace only). */
enum class LinkSite : uint8_t
{
    Data,        ///< Request/Response payload.
    Ack,         ///< Link-level acknowledgement.
    Heartbeat,   ///< Failure-detector heartbeat.
    Summary,     ///< Cross-shard GOLF summary.
    Retransmit,  ///< A retransmission of unacked Data.
};

const char* linkSiteName(LinkSite s);

enum class NetFaultKind : uint8_t
{
    None,
    Drop,
    Duplicate,
    Reorder,
    Delay,
    Partition,
};

const char* netFaultKindName(NetFaultKind k);

struct NetFaultConfig
{
    bool enabled = false;
    double dropProb = 0.0;
    double dupProb = 0.0;
    double reorderProb = 0.0;
    double delayProb = 0.0;
    /** Upper bound on injected Delay magnitudes. */
    support::VTime delayMaxNs = 20 * support::kMillisecond;
    /** Shard cut off from every link (-1 = no forced partition). */
    int partitionShard = -1;
    support::VTime partitionStartNs = 0;
    support::VTime partitionDurationNs = 0;
    /** Stop injecting after this many faults (determinism intact:
     *  draws are still consumed). */
    uint64_t maxFaults = UINT64_MAX;
};

/** One injected fault, in injection order. */
struct NetFaultRecord
{
    uint64_t seq = 0;            ///< Injection sequence number.
    support::VTime vt = 0;       ///< Virtual send time.
    LinkSite site = LinkSite::Data;
    NetFaultKind kind = NetFaultKind::None;
    int src = 0;
    int dst = 0;
    support::VTime magnitude = 0; ///< Delay/Reorder extra latency.
};

/** The decide() outcome handed to the link layer. */
struct NetFault
{
    NetFaultKind kind = NetFaultKind::None;
    support::VTime magnitude = 0;
};

class NetFaultInjector
{
  public:
    NetFaultInjector() = default;
    NetFaultInjector(const NetFaultConfig& cfg, uint64_t seed)
        : cfg_(cfg), rng_(seed ^ 0xC1A57E12D00DULL)
    {}

    bool enabled() const { return cfg_.enabled; }
    const NetFaultConfig& config() const { return cfg_; }

    /** Whether (src → dst) is inside the forced-partition window. */
    bool
    partitioned(support::VTime now, int src, int dst) const
    {
        if (cfg_.partitionShard < 0)
            return false;
        if (src != cfg_.partitionShard && dst != cfg_.partitionShard)
            return false;
        return now >= cfg_.partitionStartNs &&
               now < cfg_.partitionStartNs + cfg_.partitionDurationNs;
    }

    /**
     * Decide the fate of one transmission. Exactly two RNG draws per
     * call when enabled (kind + magnitude); zero when disabled. The
     * partition check runs first and consumes no draws.
     */
    NetFault decide(LinkSite site, support::VTime now, int src,
                    int dst);

    uint64_t injected() const { return injected_; }
    const std::vector<NetFaultRecord>& log() const { return log_; }

    /** Byte-stable dump of the injected-fault log (for -repro). */
    std::string trace() const;

  private:
    NetFaultConfig cfg_;
    support::Rng rng_;
    uint64_t injected_ = 0;
    std::vector<NetFaultRecord> log_;
};

} // namespace golf::cluster

#endif // GOLFCC_CLUSTER_NETFAULT_HPP
