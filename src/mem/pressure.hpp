/**
 * @file
 * golf::mem — the memory-pressure recovery ladder (DESIGN.md §14).
 *
 * The paper's leak story motivates a survival guarantee for the
 * window *before* GOLF catches a deadlocked (memory-pinning) cycle:
 * a GOMEMLIMIT-style soft heap limit (gc::HeapConfig::softLimitBytes)
 * plus a graded response as live bytes approach it:
 *
 *   PaceGC      the heap pacer caps its trigger at the midpoint
 *               between live bytes and the limit, so collection (and
 *               with it GOLF detection) runs increasingly early;
 *   Scavenge    release retired 64 KiB spans from the reuse cache
 *               back to the OS (gc::Heap::scavenge);
 *   ForcedGOLF  force an off-cycle detection pass — leaked deadlock
 *               cycles are the dominant pinner, so detection *is*
 *               memory recovery;
 *   Shed        the guarded service refuses new requests off the
 *               /mem/pressure:ratio gauge (mirroring the watchdog-
 *               pressure breaker);
 *   FatalReport after `fatalGraceCycles` consecutive GC cycles that
 *               still end over the limit, record a structured OOM
 *               report, flush post-mortem state and exit non-zero
 *               with a replayable trace.
 *
 * Everything here is a pure function of modeled (deterministic) live
 * bytes, so enabling the ladder keeps every transparency surface
 * byte-identical across gcWorkers counts and allocator backends.
 */
#ifndef GOLFCC_MEM_PRESSURE_HPP
#define GOLFCC_MEM_PRESSURE_HPP

#include <cstddef>
#include <cstdint>

namespace golf::mem {

/** Ladder position, by rising pressure ratio (live / soft limit). */
enum class PressureRung : uint8_t
{
    None,        ///< No limit, or live comfortably below it.
    PaceGc,      ///< Pacer cap active: early GOLF+GC cycles.
    Scavenge,    ///< Retired-span cache released to the OS.
    ForcedGolf,  ///< Off-cycle detection pass forced.
    Shed,        ///< Service refuses new requests.
    FatalReport, ///< Grace exhausted: structured OOM + non-zero exit.
};

const char* rungName(PressureRung r);

/** Ladder thresholds, carried inside rt::Config::mem. */
struct MemConfig
{
    /** Ratio at/above which the pacer cap counts as "pacing". Purely
     *  a reporting threshold — the cap itself lives in gc::Heap and
     *  tightens continuously. */
    double paceAt = 0.50;
    /** Ratio at/above which cached retired spans are scavenged. */
    double scavengeAt = 0.75;
    /** Ratio at/above which an off-cycle GOLF pass is forced. */
    double forcedGolfAt = 0.85;
    /** Ratio at/above which /mem/pressure:ratio readers should shed
     *  (advisory: admission control makes the call). */
    double shedAt = 0.95;
    /** Consecutive GC cycles allowed to end at/over the limit before
     *  the FatalReport rung fires. */
    int fatalGraceCycles = 4;
    /** Spans the scavenger leaves in the retired cache (warm-start
     *  allowance for the next churn burst). */
    size_t scavengeKeepSpans = 8;
    /** Scavenge after every GC cycle, not only at the Scavenge rung
     *  (the chaos_runner/golf_tester -scavenge flag). */
    bool scavengeOnGc = false;
};

/** What a poll decided; every action fires at most once per
 *  excursion above its threshold (re-armed when a GC cycle ends
 *  below it). */
struct PressureActions
{
    bool scavenge = false;
    bool forceGolf = false;
    bool fatal = false;
};

/**
 * The ladder's brain. Pure modeled-bytes arithmetic: poll() at
 * scheduler safepoints, onGcCycle() after each collection. Holds no
 * pointers into the runtime — the runtime interprets the actions.
 */
class PressureController
{
  public:
    PressureController() = default;
    PressureController(const MemConfig& cfg, uint64_t softLimitBytes)
        : cfg_(cfg), limit_(softLimitBytes)
    {}

    /** False when no soft limit is configured (ladder inert). */
    bool enabled() const { return limit_ > 0; }
    uint64_t softLimit() const { return limit_; }
    const MemConfig& config() const { return cfg_; }

    /** live / limit (0.0 when no limit is set). */
    double ratio(uint64_t liveBytes) const;

    /** Current ladder position for reporting. */
    PressureRung rung(uint64_t liveBytes) const;

    /** Safepoint evaluation; deterministic in the sequence of
     *  (liveBytes, onGcCycle) observations. */
    PressureActions poll(uint64_t liveBytes);

    /** A GC cycle just finished with this much live heap: re-arm
     *  rungs the cycle got us back under, and account the fatal
     *  grace (a cycle that *ends* over the limit is a cycle GOLF
     *  and the sweeper both failed to rescue). */
    void onGcCycle(uint64_t liveBytesAfter);

    /** Cycles in the current consecutive over-limit streak. */
    int overLimitCycles() const { return overLimitStreak_; }

  private:
    MemConfig cfg_;
    uint64_t limit_ = 0;
    bool scavengeFired_ = false;
    bool golfFired_ = false;
    int overLimitStreak_ = 0;
};

} // namespace golf::mem

#endif // GOLFCC_MEM_PRESSURE_HPP
