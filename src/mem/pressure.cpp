#include "mem/pressure.hpp"

namespace golf::mem {

const char*
rungName(PressureRung r)
{
    switch (r) {
      case PressureRung::None: return "none";
      case PressureRung::PaceGc: return "pace-gc";
      case PressureRung::Scavenge: return "scavenge";
      case PressureRung::ForcedGolf: return "forced-golf";
      case PressureRung::Shed: return "shed";
      case PressureRung::FatalReport: return "fatal-report";
    }
    return "?";
}

double
PressureController::ratio(uint64_t liveBytes) const
{
    if (limit_ == 0)
        return 0.0;
    return static_cast<double>(liveBytes) /
           static_cast<double>(limit_);
}

PressureRung
PressureController::rung(uint64_t liveBytes) const
{
    if (limit_ == 0)
        return PressureRung::None;
    const double r = ratio(liveBytes);
    if (r >= 1.0 && overLimitStreak_ >= cfg_.fatalGraceCycles)
        return PressureRung::FatalReport;
    if (r >= cfg_.shedAt)
        return PressureRung::Shed;
    if (r >= cfg_.forcedGolfAt)
        return PressureRung::ForcedGolf;
    if (r >= cfg_.scavengeAt)
        return PressureRung::Scavenge;
    if (r >= cfg_.paceAt)
        return PressureRung::PaceGc;
    return PressureRung::None;
}

PressureActions
PressureController::poll(uint64_t liveBytes)
{
    PressureActions a;
    if (limit_ == 0)
        return a;
    const double r = ratio(liveBytes);
    if (r >= cfg_.scavengeAt && !scavengeFired_) {
        scavengeFired_ = true;
        a.scavenge = true;
    }
    if (r >= cfg_.forcedGolfAt && !golfFired_) {
        golfFired_ = true;
        a.forceGolf = true;
    }
    if (r >= 1.0 && overLimitStreak_ >= cfg_.fatalGraceCycles)
        a.fatal = true;
    return a;
}

void
PressureController::onGcCycle(uint64_t liveBytesAfter)
{
    if (limit_ == 0)
        return;
    const double r = ratio(liveBytesAfter);
    // Re-arm only the rungs this cycle got us back under: while the
    // ratio camps above a threshold, re-firing the same action every
    // cycle would buy nothing (the pacer already keeps cycles
    // coming) — one shot per excursion.
    if (r < cfg_.scavengeAt)
        scavengeFired_ = false;
    if (r < cfg_.forcedGolfAt)
        golfFired_ = false;
    if (r >= 1.0)
        ++overLimitStreak_;
    else
        overLimitStreak_ = 0;
}

} // namespace golf::mem
