/**
 * @file
 * Watchdog and recovery-ladder policy knobs (carried in rt::Config).
 *
 * The paper couples detection latency to GC pacing: a partial
 * deadlock is noticed only when the allocation rate next triggers a
 * collection (Section 6 discusses the resulting delay). The watchdog
 * decouples them. The scheduler stamps the virtual time at which each
 * goroutine parks on a deadlock-candidate operation; the drive loop
 * polls at a fixed virtual-time interval, and when any blocked
 * candidate has been waiting longer than the threshold it requests an
 * off-cycle GOLF detection pass. Detection latency is then bounded by
 *
 *     blockedThresholdNs + pollIntervalNs + (time to next safepoint)
 *
 * independent of heap growth. Because the forced pass runs through
 * the ordinary collectNow() path at a deterministic virtual time, the
 * entire fault/report/trace stream stays a pure function of
 * (seed, config) — watchdog runs replay byte-identically.
 */
#ifndef GOLFCC_GUARD_WATCHDOG_HPP
#define GOLFCC_GUARD_WATCHDOG_HPP

#include "support/vclock.hpp"

namespace golf::guard {

/** Virtual-time watchdog configuration (rt::Config::watchdog). */
struct WatchdogConfig
{
    /** Off by default: zero behavior (and trace) change. */
    bool enabled = false;
    /** A deadlock-candidate goroutine blocked at least this long
     *  triggers an off-cycle detection pass. */
    support::VTime blockedThresholdNs = 100 * support::kMillisecond;
    /** How often the drive loop examines blocked durations. */
    support::VTime pollIntervalNs = 20 * support::kMillisecond;
};

/** Escalation policy for the recovery ladder (rt::Config::guard). */
struct GuardPolicy
{
    /** Cancel deliveries attempted per goroutine before the ladder
     *  escalates (Cancel rung: give up and keep it Deadlocked;
     *  Quarantine rung: escalate to reclaim). */
    int cancelAttempts = 1;
};

} // namespace golf::guard

#endif // GOLFCC_GUARD_WATCHDOG_HPP
