/**
 * @file
 * DeadlockError: the cancellation outcome delivered to a blocked
 * goroutine by the Cancel rung of the recovery ladder.
 *
 * The paper's only recovery is forced reclaim (Section 5.4): destroy
 * the deadlocked goroutine's frames and scrub its wait-queue entries.
 * The guard subsystem adds a softer rung below it — instead of tearing
 * the goroutine down, the runtime wakes it with a DeadlockError
 * "thrown from the blocking operation", exactly as if the co_await
 * had panicked. Because DeadlockError derives GoPanicError, the whole
 * defer/recover machinery applies unchanged: a goroutine that guards
 * its blocking calls with GOLF_DEFER + rt::recover() observes the
 * cancellation as a recoverable panic, runs its cleanup, and may
 * return an application-level error — the graceful-degradation path
 * the service layer builds on.
 *
 * Delivery protocol (see Runtime::deliverCancel): the collector
 * flags the goroutine at STW and requeues it Runnable; the *blocked
 * awaitable itself* notices the flag in await_resume (before touching
 * the un-granted operation state) and calls rt::checkCancel(), which
 * throws. An un-recovered DeadlockError kills only that goroutine —
 * Runtime::onGoroutinePanic contains it like an injected fault — so
 * cancellation never escalates into whole-process failure.
 */
#ifndef GOLFCC_GUARD_CANCEL_HPP
#define GOLFCC_GUARD_CANCEL_HPP

#include <string>

#include "support/panic.hpp"

namespace golf::guard {

/**
 * The panic object a cancelled blocking operation throws. Recoverable
 * via GOLF_DEFER + rt::recover() like any Go panic; if unrecovered it
 * terminates the goroutine (not the run).
 */
class DeadlockError : public support::GoPanicError
{
  public:
    explicit DeadlockError(const std::string& msg)
        : support::GoPanicError(msg)
    {}
};

} // namespace golf::guard

#endif // GOLFCC_GUARD_CANCEL_HPP
