/**
 * @file
 * sync.RWMutex analog: writer-preferring reader/writer lock built on
 * two semaphores, mirroring Go's readerSem/writerSem structure.
 * Parked readers have B(g) = {rwmutex} with reason RWMutexRLock;
 * parked writers use RWMutexWLock.
 */
#ifndef GOLFCC_SYNC_RWMUTEX_HPP
#define GOLFCC_SYNC_RWMUTEX_HPP

#include <coroutine>
#include <source_location>

#include "sync/semaphore.hpp"

namespace golf::sync {

class RWMutex : public gc::Object
{
  public:
    explicit RWMutex(rt::Runtime& rt) : rt_(rt) {}

    class RLockOp
    {
      public:
        RLockOp(RWMutex* m, rt::Site site) : m_(m), site_(site) {}

        bool await_ready() const noexcept { return false; }

        bool
        await_suspend(std::coroutine_handle<> h)
        {
            rt::checkFault(rt::FaultSite::RWMutexRLock);
            if (!m_->writer_ && m_->waitingWriters_ == 0) {
                ++m_->readers_;
                if (auto* rd = m_->rt_.raceDetector()) {
                    rd->lockAcquire(m_->rt_.currentGoroutine(), m_,
                                    /*exclusive=*/false,
                                    /*blocking=*/true, site_);
                }
                return false;
            }
            parked_ = true;
            rt::Runtime* rt = rt::Runtime::current();
            rt::Goroutine* g = rt->currentGoroutine();
            waiter_.g = g;
            rt->semtable().enqueue(&m_->readerSem_, &waiter_);
            rt->setBlockedSema(g, &m_->readerSem_);
            rt->park(g, h, rt::WaitReason::RWMutexRLock, {m_}, false,
                     site_);
            return true;
        }

        void
        await_resume()
        {
            rt::checkCancel();
            if (!parked_)
                return;
            rt::Runtime* rt = rt::Runtime::current();
            rt->clearBlockedSema(rt->currentGoroutine());
            if (auto* rd = rt->raceDetector()) {
                rd->lockAcquire(rt->currentGoroutine(), m_,
                                /*exclusive=*/false,
                                /*blocking=*/true, site_);
            }
        }

      private:
        RWMutex* m_;
        rt::Site site_;
        rt::SemWaiter waiter_;
        bool parked_ = false;
    };

    class WLockOp
    {
      public:
        WLockOp(RWMutex* m, rt::Site site) : m_(m), site_(site) {}

        bool await_ready() const noexcept { return false; }

        bool
        await_suspend(std::coroutine_handle<> h)
        {
            rt::checkFault(rt::FaultSite::RWMutexWLock);
            if (!m_->writer_ && m_->readers_ == 0) {
                m_->writer_ = true;
                if (auto* rd = m_->rt_.raceDetector()) {
                    rd->lockAcquire(m_->rt_.currentGoroutine(), m_,
                                    /*exclusive=*/true,
                                    /*blocking=*/true, site_);
                }
                return false;
            }
            parked_ = true;
            ++m_->waitingWriters_;
            rt::Runtime* rt = rt::Runtime::current();
            rt::Goroutine* g = rt->currentGoroutine();
            waiter_.g = g;
            rt->semtable().enqueue(&m_->writerSem_, &waiter_);
            rt->setBlockedSema(g, &m_->writerSem_);
            rt->park(g, h, rt::WaitReason::RWMutexWLock, {m_}, false,
                     site_);
            return true;
        }

        void
        await_resume()
        {
            // A parked writer raised waitingWriters_ (it gates new
            // readers); roll that back before a cancel throw, or the
            // lock would shut out readers forever.
            if (parked_ && rt::cancelPending())
                --m_->waitingWriters_;
            rt::checkCancel();
            if (!parked_)
                return;
            rt::Runtime* rt = rt::Runtime::current();
            rt->clearBlockedSema(rt->currentGoroutine());
            if (auto* rd = rt->raceDetector()) {
                rd->lockAcquire(rt->currentGoroutine(), m_,
                                /*exclusive=*/true,
                                /*blocking=*/true, site_);
            }
        }

      private:
        RWMutex* m_;
        rt::Site site_;
        rt::SemWaiter waiter_;
        bool parked_ = false;
    };

    /** co_await m->rlock(); */
    RLockOp
    rlock(std::source_location loc = std::source_location::current())
    {
        return RLockOp(this, rt::Site::from(loc));
    }

    /** co_await m->lock(); (write lock) */
    WLockOp
    lock(std::source_location loc = std::source_location::current())
    {
        return WLockOp(this, rt::Site::from(loc));
    }

    void runlock();
    void unlock();

    int readers() const { return readers_; }
    bool writerActive() const { return writer_; }

    const char* objectName() const override { return "sync.RWMutex"; }

    uint64_t
    mcFingerprint() const override
    {
        return (static_cast<uint64_t>(readers_) << 10) |
               (static_cast<uint64_t>(waitingWriters_) << 2) |
               (static_cast<uint64_t>(writer_) << 1) | 1u;
    }

  private:
    rt::Runtime& rt_;
    int readers_ = 0;
    bool writer_ = false;
    int waitingWriters_ = 0;
    Sema readerSem_;
    Sema writerSem_;
};

} // namespace golf::sync

#endif // GOLFCC_SYNC_RWMUTEX_HPP
