#include "sync/waitgroup.hpp"

namespace golf::sync {

void
WaitGroup::add(int64_t delta)
{
    if (poisoned())
        rt_.onResurrection(this, "waitgroup add");
    count_ += delta;
    if (count_ < 0)
        support::goPanic("sync: negative WaitGroup counter");
    // Every Add/Done HB the Wait it releases (Go memory model:
    // "Done happens before the return of any Wait it unblocks").
    if (auto* rd = rt_.raceDetector())
        rd->release(rt_.currentGoroutine(), this);
    if (count_ == 0)
        semWakeAll(rt_, &sema_);
}

} // namespace golf::sync
