#include "sync/waitgroup.hpp"

namespace golf::sync {

void
WaitGroup::add(int64_t delta)
{
    count_ += delta;
    if (count_ < 0)
        support::goPanic("sync: negative WaitGroup counter");
    if (count_ == 0)
        semWakeAll(rt_, &sema_);
}

} // namespace golf::sync
