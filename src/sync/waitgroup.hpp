/**
 * @file
 * sync.WaitGroup analog: a non-negative counter; Wait parks until it
 * reaches zero. B(g) for a parked waiter is {waitgroup}.
 *
 * The artifact notes GOLF patched sync/waitgroup.go to enable
 * detection of WaitGroup deadlocks; here the parking path flows
 * through the same semtable machinery as every other sync primitive,
 * so detection needs no special casing.
 */
#ifndef GOLFCC_SYNC_WAITGROUP_HPP
#define GOLFCC_SYNC_WAITGROUP_HPP

#include <coroutine>
#include <source_location>

#include "sync/semaphore.hpp"

namespace golf::sync {

class WaitGroup : public gc::Object
{
  public:
    explicit WaitGroup(rt::Runtime& rt) : rt_(rt) {}

    /** Add delta; panics if the counter goes negative. Reaching zero
     *  releases every parked waiter. */
    void add(int64_t delta);

    /** Done() = Add(-1). */
    void done() { add(-1); }

    class WaitOp
    {
      public:
        WaitOp(WaitGroup* wg, rt::Site site) : wg_(wg), site_(site) {}

        bool await_ready() const noexcept { return false; }

        bool
        await_suspend(std::coroutine_handle<> h)
        {
            rt::checkFault(rt::FaultSite::WaitGroupWait);
            if (wg_->count_ == 0) {
                if (auto* rd = wg_->rt_.raceDetector()) {
                    rd->acquire(wg_->rt_.currentGoroutine(), wg_);
                }
                return false;
            }
            parked_ = true;
            rt::Runtime* rt = rt::Runtime::current();
            rt::Goroutine* g = rt->currentGoroutine();
            waiter_.g = g;
            rt->semtable().enqueue(&wg_->sema_, &waiter_);
            rt->setBlockedSema(g, &wg_->sema_);
            rt->park(g, h, rt::WaitReason::WaitGroupWait, {wg_},
                     false, site_);
            return true;
        }

        void
        await_resume()
        {
            rt::checkCancel();
            if (!parked_)
                return;
            rt::Runtime* rt = rt::Runtime::current();
            rt->clearBlockedSema(rt->currentGoroutine());
            if (auto* rd = rt->raceDetector())
                rd->acquire(rt->currentGoroutine(), wg_);
        }

      private:
        WaitGroup* wg_;
        rt::Site site_;
        rt::SemWaiter waiter_;
        bool parked_ = false;
    };

    /** co_await wg->wait(); */
    WaitOp
    wait(std::source_location loc = std::source_location::current())
    {
        return WaitOp(this, rt::Site::from(loc));
    }

    int64_t count() const { return count_; }

    const char* objectName() const override { return "sync.WaitGroup"; }

    uint64_t
    mcFingerprint() const override
    {
        return (static_cast<uint64_t>(count_) << 1) | 1u;
    }

  private:
    rt::Runtime& rt_;
    int64_t count_ = 0;
    Sema sema_;
};

} // namespace golf::sync

#endif // GOLFCC_SYNC_WAITGROUP_HPP
