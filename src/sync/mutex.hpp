/**
 * @file
 * sync.Mutex analog: a lock flag plus a runtime semaphore.
 *
 * Unlock hands the lock directly to the longest waiter (no barging),
 * which keeps the blocked-set semantics simple: a goroutine parked in
 * Lock() has B(g) = {mutex}.
 */
#ifndef GOLFCC_SYNC_MUTEX_HPP
#define GOLFCC_SYNC_MUTEX_HPP

#include <coroutine>
#include <source_location>

#include "sync/semaphore.hpp"

namespace golf::sync {

class Mutex : public gc::Object
{
  public:
    explicit Mutex(rt::Runtime& rt) : rt_(rt) {}

    class LockOp
    {
      public:
        LockOp(Mutex* m, rt::Site site) : m_(m), site_(site) {}

        bool await_ready() const noexcept { return false; }

        bool
        await_suspend(std::coroutine_handle<> h)
        {
            rt::checkFault(rt::FaultSite::MutexLock);
            if (!m_->locked_) {
                m_->locked_ = true;
                if (auto* rd = m_->rt_.raceDetector()) {
                    rd->lockAcquire(m_->rt_.currentGoroutine(), m_,
                                    /*exclusive=*/true,
                                    /*blocking=*/true, site_);
                }
                return false;
            }
            parked_ = true;
            rt::Runtime* rt = rt::Runtime::current();
            rt::Goroutine* g = rt->currentGoroutine();
            waiter_.g = g;
            rt->semtable().enqueue(&m_->sema_, &waiter_);
            rt->setBlockedSema(g, &m_->sema_);
            rt->park(g, h, rt::WaitReason::MutexLock, {m_}, false,
                     site_);
            return true;
        }

        void
        await_resume()
        {
            // A cancelled waiter never received the handoff (its
            // semtable entry was purged at delivery), so ownership
            // needs no rollback before the throw.
            rt::checkCancel();
            // Granted by unlock(): ownership was handed over with
            // locked_ still set.
            if (!parked_)
                return;
            rt::Runtime* rt = rt::Runtime::current();
            rt->clearBlockedSema(rt->currentGoroutine());
            if (auto* rd = rt->raceDetector()) {
                rd->lockAcquire(rt->currentGoroutine(), m_,
                                /*exclusive=*/true, /*blocking=*/true,
                                site_);
            }
        }

      private:
        Mutex* m_;
        rt::Site site_;
        rt::SemWaiter waiter_;
        bool parked_ = false;
    };

    /** co_await m->lock(); */
    LockOp
    lock(std::source_location loc = std::source_location::current())
    {
        return LockOp(this, rt::Site::from(loc));
    }

    /** Non-blocking acquire attempt. */
    bool tryLock(
        std::source_location loc = std::source_location::current());

    /** Release; direct handoff to the longest waiter if any. */
    void unlock();

    bool locked() const { return locked_; }

    const char* objectName() const override { return "sync.Mutex"; }

    uint64_t
    mcFingerprint() const override
    {
        return (static_cast<uint64_t>(locked_) << 1) | 1u;
    }

  private:
    friend class Cond;

    rt::Runtime& rt_;
    bool locked_ = false;
    Sema sema_;
};

} // namespace golf::sync

#endif // GOLFCC_SYNC_MUTEX_HPP
