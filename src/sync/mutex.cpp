#include "sync/mutex.hpp"

namespace golf::sync {

bool
Mutex::tryLock(std::source_location loc)
{
    if (locked_)
        return false;
    locked_ = true;
    // A non-blocking acquisition still guards later lock-order edges
    // (it is in the held set) but never adds an incoming edge: a
    // tryLock cannot wait, so it cannot close a deadlock cycle.
    if (auto* rd = rt_.raceDetector()) {
        rd->lockAcquire(rt_.currentGoroutine(), this,
                        /*exclusive=*/true, /*blocking=*/false,
                        rt::Site::from(loc));
    }
    return true;
}

void
Mutex::unlock()
{
    if (poisoned())
        rt_.onResurrection(this, "mutex unlock");
    if (!locked_)
        support::goPanic("sync: unlock of unlocked mutex");
    if (auto* rd = rt_.raceDetector())
        rd->lockRelease(rt_.currentGoroutine(), this);
    if (!semWake(rt_, &sema_))
        locked_ = false;
    // else: direct handoff, locked_ stays true for the waiter.
}

} // namespace golf::sync
