#include "sync/mutex.hpp"

namespace golf::sync {

bool
Mutex::tryLock()
{
    if (locked_)
        return false;
    locked_ = true;
    return true;
}

void
Mutex::unlock()
{
    if (!locked_)
        support::goPanic("sync: unlock of unlocked mutex");
    if (!semWake(rt_, &sema_))
        locked_ = false;
    // else: direct handoff, locked_ stays true for the waiter.
}

} // namespace golf::sync
