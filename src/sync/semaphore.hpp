/**
 * @file
 * Runtime semaphores: the parking substrate of the sync package.
 *
 * Go's sync primitives block goroutines on runtime semaphores; the
 * runtime records the (semaphore address -> waiting goroutines)
 * relation in the global semtable treap. GOLF extends *g with the
 * masked address of the blocking semaphore and sets B(g) to the
 * owning sync object (Section 5.4). SemParkOp reproduces all three:
 * it enqueues a SemWaiter in the runtime's semtable under the masked
 * address, records the masked address on the goroutine, and parks
 * with B(g) = {owner}.
 */
#ifndef GOLFCC_SYNC_SEMAPHORE_HPP
#define GOLFCC_SYNC_SEMAPHORE_HPP

#include <coroutine>
#include <source_location>

#include "gc/object.hpp"
#include "runtime/runtime.hpp"
#include "runtime/semtable.hpp"

namespace golf::sync {

/** Address-only token: the "uint32 sema" field of Go sync structs.
 *  Only its address matters; it keys the semtable treap. */
struct Sema
{
    uint8_t token = 0;
};

/** FaultSite for a sync-package park, by wait reason. */
inline rt::FaultSite
faultSiteFor(rt::WaitReason r)
{
    switch (r) {
      case rt::WaitReason::MutexLock: return rt::FaultSite::MutexLock;
      case rt::WaitReason::RWMutexRLock:
        return rt::FaultSite::RWMutexRLock;
      case rt::WaitReason::RWMutexWLock:
        return rt::FaultSite::RWMutexWLock;
      case rt::WaitReason::WaitGroupWait:
        return rt::FaultSite::WaitGroupWait;
      case rt::WaitReason::CondWait: return rt::FaultSite::CondWait;
      default: return rt::FaultSite::SemAcquire;
    }
}

/** Awaitable that parks the current goroutine on a semaphore. */
class SemParkOp
{
  public:
    SemParkOp(const Sema* sema, gc::Object* owner,
              rt::WaitReason reason, rt::Site site)
        : sema_(sema), owner_(owner), reason_(reason), site_(site)
    {}

    bool await_ready() const noexcept { return false; }

    bool
    await_suspend(std::coroutine_handle<> h)
    {
        rt::checkFault(faultSiteFor(reason_));
        rt::Runtime* rt = rt::Runtime::current();
        rt::Goroutine* g = rt->currentGoroutine();
        waiter_.g = g;
        rt->semtable().enqueue(sema_, &waiter_);
        rt->setBlockedSema(g, sema_);
        rt->park(g, h, reason_, {owner_}, false, site_);
        return true;
    }

    void
    await_resume()
    {
        // Cancel delivery already purged our semtable entry and the
        // blocked-sema record; nothing to roll back before throwing.
        rt::checkCancel();
        rt::Runtime* rt = rt::Runtime::current();
        rt->clearBlockedSema(rt->currentGoroutine());
        // The waker released into the owner's clock (signal,
        // broadcast, release); complete the acquire side.
        if (auto* rd = rt->raceDetector())
            rd->acquire(rt->currentGoroutine(), owner_);
    }

  private:
    const Sema* sema_;
    gc::Object* owner_;
    rt::WaitReason reason_;
    rt::Site site_;
    rt::SemWaiter waiter_;
};

/** Wake the longest waiter on sema; returns false if none waited. */
bool semWake(rt::Runtime& rt, const Sema* sema);

/** Wake every waiter on sema; returns how many were woken. */
size_t semWakeAll(rt::Runtime& rt, const Sema* sema);

/**
 * A counted semaphore as a standalone managed object (used directly
 * by tests and as a building block; Go exposes the equivalent via
 * runtime_Semacquire).
 */
class Semaphore : public gc::Object
{
  public:
    Semaphore(rt::Runtime& rt, uint32_t initial)
        : rt_(rt), count_(initial)
    {}

    /** P(): decrement or park (wait reason "semacquire"). */
    class AcquireOp
    {
      public:
        AcquireOp(Semaphore* s, rt::Site site) : s_(s), site_(site) {}

        bool await_ready() const noexcept { return false; }

        bool
        await_suspend(std::coroutine_handle<> h)
        {
            rt::checkFault(rt::FaultSite::SemAcquire);
            if (s_->count_ > 0) {
                --s_->count_;
                if (auto* rd = s_->rt_.raceDetector())
                    rd->acquire(s_->rt_.currentGoroutine(), s_);
                return false;
            }
            parked_ = true;
            rt::Runtime* rt = rt::Runtime::current();
            rt::Goroutine* g = rt->currentGoroutine();
            waiter_.g = g;
            rt->semtable().enqueue(&s_->sema_, &waiter_);
            rt->setBlockedSema(g, &s_->sema_);
            rt->park(g, h, rt::WaitReason::SemAcquire, {s_}, false,
                     site_);
            return true;
        }

        void
        await_resume()
        {
            rt::checkCancel();
            if (!parked_)
                return;
            rt::Runtime* rt = rt::Runtime::current();
            rt->clearBlockedSema(rt->currentGoroutine());
            if (auto* rd = rt->raceDetector())
                rd->acquire(rt->currentGoroutine(), s_);
        }

      private:
        Semaphore* s_;
        rt::Site site_;
        rt::SemWaiter waiter_;
        bool parked_ = false;
    };

    AcquireOp
    acquire(std::source_location loc = std::source_location::current())
    {
        return AcquireOp(this, rt::Site::from(loc));
    }

    /** V(): wake a waiter or increment. */
    void
    release()
    {
        if (poisoned())
            rt_.onResurrection(this, "sema release");
        if (auto* rd = rt_.raceDetector())
            rd->release(rt_.currentGoroutine(), this);
        if (!semWake(rt_, &sema_))
            ++count_;
    }

    uint32_t count() const { return count_; }

    const char* objectName() const override { return "semaphore"; }

    uint64_t
    mcFingerprint() const override
    {
        return (static_cast<uint64_t>(count_) << 1) | 1u;
    }

  private:
    rt::Runtime& rt_;
    uint32_t count_;
    Sema sema_;
};

} // namespace golf::sync

#endif // GOLFCC_SYNC_SEMAPHORE_HPP
