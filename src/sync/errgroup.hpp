/**
 * @file
 * x/sync/errgroup analog: structured fan-out with error propagation
 * and context cancellation.
 *
 * A group spawns worker goroutines whose bodies are Task<int>
 * coroutines returning an error code (0 = nil). The first non-zero
 * error is retained and, if the group was built over a context,
 * cancels it so sibling workers can bail out. wait() parks until
 * every worker finished and yields the first error.
 *
 * errgroup is one of the most common sources of goroutine leaks in
 * real Go code (a worker blocked on a channel nobody drains keeps
 * the whole group's Wait parked); the tests pin that GOLF sees
 * through the group: both the stuck worker and the waiter are
 * reported once the group becomes unreachable.
 */
#ifndef GOLFCC_SYNC_ERRGROUP_HPP
#define GOLFCC_SYNC_ERRGROUP_HPP

#include "runtime/context.hpp"
#include "runtime/task.hpp"
#include "sync/waitgroup.hpp"

namespace golf::sync {

class ErrGroup : public gc::Object
{
  public:
    explicit ErrGroup(rt::Runtime& rt, rt::Context* ctx = nullptr)
        : rt_(rt), ctx_(ctx), wg_(rt.make<WaitGroup>(rt))
    {}

    /**
     * Spawn a worker. fn must be a coroutine function returning
     * rt::Task<int>; args are copied like goroutine arguments
     * (pointers to managed objects are pinned for the worker's
     * lifetime).
     */
    template <typename Fn, typename... Args>
    void
    spawn(Fn fn, Args... args)
    {
        wg_->add(1);
        rt_.goAt(rt::Site{"<errgroup>", 0, "worker"},
                 &ErrGroup::runner<Fn, Args...>, this, fn, args...);
    }

    /** co_await group->wait(): parks until all workers are done,
     *  returns the first error (0 if none). */
    rt::Task<int>
    wait()
    {
        co_await wg_->wait();
        co_return firstErr_;
    }

    /** The group's context (nullptr when constructed without one). */
    rt::Context* context() const { return ctx_; }

    /** First recorded error so far (0 = none). */
    int firstError() const { return firstErr_; }

    void
    trace(gc::Marker& m) override
    {
        m.mark(ctx_);
        m.mark(wg_);
    }

    const char* objectName() const override { return "errgroup"; }

  private:
    template <typename Fn, typename... Args>
    static rt::Go
    runner(ErrGroup* g, Fn fn, Args... args)
    {
        int err = co_await std::invoke(fn, args...);
        if (err != 0 && g->firstErr_ == 0) {
            g->firstErr_ = err;
            if (g->ctx_)
                g->ctx_->cancel();
        }
        g->wg_->done();
        co_return;
    }

    rt::Runtime& rt_;
    rt::Context* ctx_;
    WaitGroup* wg_;
    int firstErr_ = 0;
};

/** errgroup.WithContext: group + derived cancellable context. */
inline ErrGroup*
makeErrGroup(rt::Runtime& rt, rt::Context* parent)
{
    rt::Context* ctx = rt::withCancel(rt, parent);
    return rt.make<ErrGroup>(rt, ctx);
}

} // namespace golf::sync

#endif // GOLFCC_SYNC_ERRGROUP_HPP
