#include "sync/rwmutex.hpp"

namespace golf::sync {

void
RWMutex::runlock()
{
    if (poisoned())
        rt_.onResurrection(this, "rwmutex runlock");
    if (readers_ <= 0)
        support::goPanic("sync: RUnlock of unlocked RWMutex");
    if (auto* rd = rt_.raceDetector())
        rd->lockRelease(rt_.currentGoroutine(), this,
                        /*exclusive=*/false);
    --readers_;
    if (readers_ == 0 && waitingWriters_ > 0) {
        // Grant the lock to the longest-waiting writer.
        if (semWake(rt_, &writerSem_)) {
            --waitingWriters_;
            writer_ = true;
        }
    }
}

void
RWMutex::unlock()
{
    if (poisoned())
        rt_.onResurrection(this, "rwmutex unlock");
    if (!writer_)
        support::goPanic("sync: Unlock of unlocked RWMutex");
    if (auto* rd = rt_.raceDetector())
        rd->lockRelease(rt_.currentGoroutine(), this);
    writer_ = false;
    if (waitingWriters_ > 0) {
        if (semWake(rt_, &writerSem_)) {
            --waitingWriters_;
            writer_ = true;
            return;
        }
    }
    // No writers: admit every parked reader.
    while (semWake(rt_, &readerSem_))
        ++readers_;
}

} // namespace golf::sync
