#include "sync/semaphore.hpp"

namespace golf::sync {

bool
semWake(rt::Runtime& rt, const Sema* sema)
{
    rt::SemWaiter* w = rt.semtable().dequeue(sema);
    if (!w)
        return false;
    w->granted = true;
    rt.ready(w->g);
    return true;
}

size_t
semWakeAll(rt::Runtime& rt, const Sema* sema)
{
    size_t n = 0;
    while (semWake(rt, sema))
        ++n;
    return n;
}

} // namespace golf::sync
