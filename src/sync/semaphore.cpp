#include "sync/semaphore.hpp"

namespace golf::sync {

bool
semWake(rt::Runtime& rt, const Sema* sema)
{
    rt::SemWaiter* w;
    while ((w = rt.semtable().dequeue(sema)) != nullptr) {
        // Defensive: waiters of a quarantined goroutine are purged at
        // quarantine time, but no wakeup must ever reach one.
        if (w->g &&
            w->g->status() == rt::GStatus::Quarantined) {
            continue;
        }
        w->granted = true;
        rt.ready(w->g);
        return true;
    }
    return false;
}

size_t
semWakeAll(rt::Runtime& rt, const Sema* sema)
{
    size_t n = 0;
    while (semWake(rt, sema))
        ++n;
    return n;
}

} // namespace golf::sync
