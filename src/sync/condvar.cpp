#include "sync/condvar.hpp"

namespace golf::sync {

rt::Task<void>
Cond::wait(std::source_location loc)
{
    l_->unlock();
    co_await SemParkOp(&sema_, this, rt::WaitReason::CondWait,
                       rt::Site::from(loc));
    co_await l_->lock(loc);
}

void
Cond::signal()
{
    if (auto* rd = rt_.raceDetector())
        rd->release(rt_.currentGoroutine(), this);
    semWake(rt_, &sema_);
}

void
Cond::broadcast()
{
    if (auto* rd = rt_.raceDetector())
        rd->release(rt_.currentGoroutine(), this);
    semWakeAll(rt_, &sema_);
}

} // namespace golf::sync
