#include "sync/condvar.hpp"

namespace golf::sync {

rt::Task<void>
Cond::wait(std::source_location loc)
{
    l_->unlock();
    // NOTE: a guard cancellation (DeadlockError) delivered during the
    // park propagates out of here with the mutex NOT held — the wait
    // was unwound before the reacquire. Recovering callers must not
    // unlock.
    co_await SemParkOp(&sema_, this, rt::WaitReason::CondWait,
                       rt::Site::from(loc));
    co_await l_->lock(loc);
}

void
Cond::signal()
{
    if (poisoned())
        rt_.onResurrection(this, "cond signal");
    if (auto* rd = rt_.raceDetector())
        rd->release(rt_.currentGoroutine(), this);
    semWake(rt_, &sema_);
}

void
Cond::broadcast()
{
    if (poisoned())
        rt_.onResurrection(this, "cond broadcast");
    if (auto* rd = rt_.raceDetector())
        rd->release(rt_.currentGoroutine(), this);
    semWakeAll(rt_, &sema_);
}

} // namespace golf::sync
