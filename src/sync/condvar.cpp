#include "sync/condvar.hpp"

namespace golf::sync {

rt::Task<void>
Cond::wait(std::source_location loc)
{
    l_->unlock();
    co_await SemParkOp(&sema_, this, rt::WaitReason::CondWait,
                       rt::Site::from(loc));
    co_await l_->lock(loc);
}

void
Cond::signal()
{
    semWake(rt_, &sema_);
}

void
Cond::broadcast()
{
    semWakeAll(rt_, &sema_);
}

} // namespace golf::sync
