/**
 * @file
 * sync.Cond analog: condition variable bound to a Mutex.
 *
 * Wait() atomically releases the mutex, parks on the condition's
 * semaphore (B(g) = {cond}, reason CondWait), and reacquires the
 * mutex after being signalled. Signal wakes one waiter at random
 * effect (longest waiter here); Broadcast wakes all (Section 2).
 */
#ifndef GOLFCC_SYNC_CONDVAR_HPP
#define GOLFCC_SYNC_CONDVAR_HPP

#include <source_location>

#include "gc/marker.hpp"
#include "runtime/task.hpp"
#include "sync/mutex.hpp"

namespace golf::sync {

class Cond : public gc::Object
{
  public:
    Cond(rt::Runtime& rt, Mutex* l) : rt_(rt), l_(l) {}

    /** co_await cond->wait(); — caller must hold the mutex. */
    rt::Task<void> wait(
        std::source_location loc = std::source_location::current());

    /** Wake one waiter if any. */
    void signal();

    /** Wake all waiters. */
    void broadcast();

    Mutex* locker() const { return l_; }

    void
    trace(gc::Marker& m) override
    {
        m.mark(l_);
    }

    const char* objectName() const override { return "sync.Cond"; }

  private:
    rt::Runtime& rt_;
    Mutex* l_;
    Sema sema_;
};

} // namespace golf::sync

#endif // GOLFCC_SYNC_CONDVAR_HPP
