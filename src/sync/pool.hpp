/**
 * @file
 * sync.Pool analog with Go's GC-integrated lifetime: pooled objects
 * survive roughly two collection cycles. At the start of every GC
 * cycle the primary cache demotes to the victim cache and the old
 * victims are dropped (become unreachable and are swept in that same
 * cycle) — exactly Go's poolCleanup, which runs during the STW
 * window before marking.
 *
 * This is a second, smaller instance of the paper's theme: runtime
 * facilities piggybacking on the collector's cycle structure.
 */
#ifndef GOLFCC_SYNC_POOL_HPP
#define GOLFCC_SYNC_POOL_HPP

#include <functional>
#include <vector>

#include "gc/marker.hpp"
#include "runtime/runtime.hpp"
#include "sync/mutex.hpp"

namespace golf::sync {

/** Type-erased base so the runtime can clean all pools per cycle. */
class PoolBase : public gc::Object
{
  public:
    /** Demote primary -> victim, drop old victims (poolCleanup). */
    virtual void gcCleanup() = 0;
};

template <typename T>
class Pool : public PoolBase
{
  public:
    /** newFn is invoked by get() when both caches are empty
     *  (the Pool.New field); may be empty. */
    explicit Pool(rt::Runtime& rt, std::function<T*()> newFn = {})
        : rt_(rt), newFn_(std::move(newFn))
    {
        rt_.registerPool(this);
    }

    ~Pool() override { rt_.unregisterPool(this); }

    /** Put returns an object to the pool. */
    void put(T* obj) { primary_.push_back(obj); }

    /** Get pops a pooled object (primary first, then victim), or
     *  calls New, or returns nullptr. */
    T*
    get()
    {
        if (!primary_.empty()) {
            T* obj = primary_.back();
            primary_.pop_back();
            return obj;
        }
        if (!victim_.empty()) {
            T* obj = victim_.back();
            victim_.pop_back();
            return obj;
        }
        return newFn_ ? newFn_() : nullptr;
    }

    size_t primarySize() const { return primary_.size(); }
    size_t victimSize() const { return victim_.size(); }

    void
    gcCleanup() override
    {
        victim_ = std::move(primary_);
        primary_.clear();
    }

    void
    trace(gc::Marker& m) override
    {
        for (T* obj : primary_)
            m.mark(obj);
        for (T* obj : victim_)
            m.mark(obj);
    }

    const char* objectName() const override { return "sync.Pool"; }

  private:
    rt::Runtime& rt_;
    std::function<T*()> newFn_;
    std::vector<T*> primary_;
    std::vector<T*> victim_;
};

/**
 * sync.Once analog: do(fn) runs fn exactly once; concurrent callers
 * park until the first invocation completes (fn may suspend).
 */
class Once : public gc::Object
{
  public:
    explicit Once(rt::Runtime& rt)
        : mu_(rt.make<Mutex>(rt))
    {}

    /** co_await once->doOnce(fn) — fn: () -> rt::Task<void>. */
    template <typename Fn>
    rt::Task<void>
    doOnce(Fn fn)
    {
        if (done_)
            co_return;
        co_await mu_->lock();
        if (!done_) {
            co_await fn();
            done_ = true;
        }
        mu_->unlock();
        co_return;
    }

    bool done() const { return done_; }

    void
    trace(gc::Marker& m) override
    {
        m.mark(mu_);
    }

    const char* objectName() const override { return "sync.Once"; }

  private:
    Mutex* mu_;
    bool done_ = false;
};

} // namespace golf::sync

#endif // GOLFCC_SYNC_POOL_HPP
