/**
 * @file
 * Memory-access annotations for the race detector.
 *
 * Go's -race instruments every load and store at compile time; a
 * library runtime cannot, so shared locations are annotated instead:
 * either with the free functions (race::read / race::write on any
 * address) or by wrapping the field in race::Shared<T>, whose load()
 * and store() annotate automatically with the caller's source
 * location. All annotations compile down to a single null check when
 * rt::Config::race is off.
 */
#ifndef GOLFCC_RACE_ANNOTATE_HPP
#define GOLFCC_RACE_ANNOTATE_HPP

#include <source_location>
#include <utility>

#include "runtime/runtime.hpp"

namespace golf::race {

/** Annotate a read of [addr, addr+size). */
inline void
read(const void* addr, size_t size, const char* name = nullptr,
     std::source_location loc = std::source_location::current())
{
    rt::Runtime* rt = rt::Runtime::current();
    if (rt == nullptr)
        return;
    if (Detector* rd = rt->raceDetector()) {
        rd->memRead(rt->currentGoroutine(), addr, size,
                    rt::Site::from(loc), name);
    }
}

/** Annotate a write of [addr, addr+size). */
inline void
write(const void* addr, size_t size, const char* name = nullptr,
      std::source_location loc = std::source_location::current())
{
    rt::Runtime* rt = rt::Runtime::current();
    if (rt == nullptr)
        return;
    if (Detector* rd = rt->raceDetector()) {
        rd->memWrite(rt->currentGoroutine(), addr, size,
                     rt::Site::from(loc), name);
    }
}

/**
 * A shared variable with annotated accesses — the moral equivalent of
 * a plain Go variable under `go build -race`. Embed it in a managed
 * object (or any structure reachable by several goroutines) and use
 * load()/store(); unsynchronized conflicting accesses are reported.
 */
template <typename T>
class Shared
{
  public:
    explicit Shared(const char* name, T init = T{})
        : name_(name), v_(std::move(init))
    {}

    T
    load(std::source_location loc =
             std::source_location::current()) const
    {
        read(&v_, sizeof(T), name_, loc);
        return v_;
    }

    void
    store(T v,
          std::source_location loc = std::source_location::current())
    {
        write(&v_, sizeof(T), name_, loc);
        v_ = std::move(v);
    }

    /** load-modify-store (v++ and friends): one read + one write. */
    template <typename Fn>
    void
    update(Fn&& fn,
           std::source_location loc = std::source_location::current())
    {
        read(&v_, sizeof(T), name_, loc);
        write(&v_, sizeof(T), name_, loc);
        v_ = fn(v_);
    }

    /** Unannotated access (initialization, post-run assertions). */
    const T& unsafeRef() const { return v_; }
    T& unsafeRef() { return v_; }

  private:
    const char* name_;
    T v_;
};

} // namespace golf::race

#endif // GOLFCC_RACE_ANNOTATE_HPP
