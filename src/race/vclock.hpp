/**
 * @file
 * Vector clocks for the happens-before race detector.
 *
 * One clock component per goroutine ever observed by the detector;
 * components are addressed by a dense slot index assigned at spawn
 * (goroutine ids themselves are 64-bit and ever-growing, so they are
 * mapped down once). A (slot, clock) pair is an *epoch* — FastTrack's
 * compressed representation of "the last access by one goroutine" —
 * and `Epoch e` happens-before `VectorClock v` iff e.clock <=
 * v.get(e.slot), the O(1) check that makes the common same-goroutine
 * access path cheap.
 */
#ifndef GOLFCC_RACE_VCLOCK_HPP
#define GOLFCC_RACE_VCLOCK_HPP

#include <cstdint>
#include <vector>

namespace golf::race {

/** Scalar clock value of one goroutine component. */
using Clock = uint32_t;

/** Dense slot index of a goroutine in every vector clock. */
using Slot = uint32_t;

/** One goroutine's last operation: FastTrack's epoch. */
struct Epoch
{
    Slot slot = 0;
    Clock clock = 0;
};

class VectorClock
{
  public:
    /** Component for slot (0 when never written). */
    Clock
    get(Slot s) const
    {
        return s < c_.size() ? c_[s] : 0;
    }

    void
    set(Slot s, Clock v)
    {
        if (s >= c_.size())
            c_.resize(s + 1, 0);
        c_[s] = v;
    }

    /** Pointwise maximum (the join of the two clock frontiers). */
    void
    join(const VectorClock& o)
    {
        if (o.c_.size() > c_.size())
            c_.resize(o.c_.size(), 0);
        for (size_t i = 0; i < o.c_.size(); ++i) {
            if (o.c_[i] > c_[i])
                c_[i] = o.c_[i];
        }
    }

    /** Advance the own component (a release point). */
    void
    tick(Slot s)
    {
        set(s, get(s) + 1);
    }

    /** The epoch of slot s in this clock. */
    Epoch
    epochOf(Slot s) const
    {
        return Epoch{s, get(s)};
    }

    /** Whether the operation stamped `e` happens-before this frontier. */
    bool
    covers(const Epoch& e) const
    {
        return e.clock <= get(e.slot);
    }

    size_t size() const { return c_.size(); }

  private:
    std::vector<Clock> c_;
};

} // namespace golf::race

#endif // GOLFCC_RACE_VCLOCK_HPP
