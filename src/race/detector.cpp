#include "race/detector.hpp"

#include <algorithm>
#include <iostream>

#include "gc/object.hpp"
#include "golf/report.hpp"
#include "runtime/goroutine.hpp"

namespace golf::race {

Detector::Detector(DetectorConfig config, const support::VClock* clock)
    : config_(config), clock_(clock)
{
}

Detector::GState&
Detector::stateOf(const rt::Goroutine* g)
{
    const uint64_t gid = g->id();
    auto it = indexOfGid_.find(gid);
    if (it != indexOfGid_.end())
        return gs_[it->second];
    const auto idx = static_cast<uint32_t>(gs_.size());
    indexOfGid_.emplace(gid, idx);
    GState gs;
    gs.gid = gid;
    gs.slot = idx;
    gs.spawnSite = g->spawnSite();
    gs.vc.set(gs.slot, 1); // Epoch 0 means "never ran".
    gs_.push_back(std::move(gs));
    return gs_.back();
}

VectorClock&
Detector::syncClock(const void* obj)
{
    return syncVc_[reinterpret_cast<uintptr_t>(obj)];
}

VectorClock&
Detector::readClock(const void* obj)
{
    return readVc_[reinterpret_cast<uintptr_t>(obj)];
}

void
Detector::onSpawn(const rt::Goroutine* parent, const rt::Goroutine* child)
{
    if (child == nullptr)
        return;
    if (parent == nullptr) {
        (void)stateOf(child);
        return;
    }
    (void)stateOf(parent);
    (void)stateOf(child); // May reallocate gs_: re-look-up below.
    GState& p = stateOf(parent);
    GState& c = stateOf(child);
    c.vc.join(p.vc); // go statement: everything before it HB child.
    p.vc.tick(p.slot);
    ++syncOps_;
}

void
Detector::onFinish(const rt::Goroutine* g)
{
    if (g == nullptr)
        return;
    GState& gs = stateOf(g);
    gs.vc.tick(gs.slot);
    // A finished goroutine cannot hold locks; drop leftovers (panic
    // unwinding past a held lock) so they cannot guard later edges.
    for (const auto& h : gs.held) {
        auto& hv = holders_[h.lockId];
        auto it = std::find(hv.begin(), hv.end(), gs.gid);
        if (it != hv.end())
            hv.erase(it);
    }
    gs.held.clear();
}

void
Detector::onWakeEdge(const rt::Goroutine* waker, const rt::Goroutine* woken)
{
    if (waker == nullptr || woken == nullptr || waker == woken)
        return;
    (void)stateOf(waker);
    (void)stateOf(woken);
    GState& a = stateOf(waker);
    GState& b = stateOf(woken);
    b.vc.join(a.vc); // The wakeup itself orders waker before woken.
    a.vc.tick(a.slot);
    ++syncOps_;
}

void
Detector::acquire(const rt::Goroutine* g, const void* obj)
{
    if (g == nullptr)
        return;
    GState& gs = stateOf(g);
    gs.vc.join(syncClock(obj));
    ++syncOps_;
    if (opSink_)
        opSink_(gs.gid, reinterpret_cast<uintptr_t>(obj), true);
}

void
Detector::release(const rt::Goroutine* g, const void* obj)
{
    if (g == nullptr)
        return;
    GState& gs = stateOf(g);
    syncClock(obj).join(gs.vc);
    gs.vc.tick(gs.slot);
    ++syncOps_;
    if (opSink_)
        opSink_(gs.gid, reinterpret_cast<uintptr_t>(obj), true);
}

void
Detector::channelPair(const rt::Goroutine* a, const rt::Goroutine* b,
                      const void* ch)
{
    if (a == nullptr || b == nullptr || a == b)
        return;
    (void)stateOf(a);
    (void)stateOf(b);
    GState& x = stateOf(a);
    GState& y = stateOf(b);
    // Rendezvous: both sides observe each other (Go memory model — an
    // unbuffered send HB the receive *and* the receive completing HB
    // the send returning).
    VectorClock& c = syncClock(ch);
    c.join(x.vc);
    c.join(y.vc);
    x.vc.join(c);
    y.vc.join(c);
    x.vc.tick(x.slot);
    y.vc.tick(y.slot);
    ++syncOps_;
    if (opSink_) {
        opSink_(x.gid, reinterpret_cast<uintptr_t>(ch), true);
        opSink_(y.gid, reinterpret_cast<uintptr_t>(ch), true);
    }
}

uint32_t
Detector::lockIdOf(const gc::Object* lock)
{
    const auto addr = reinterpret_cast<uintptr_t>(lock);
    auto it = lockIdByAddr_.find(addr);
    if (it != lockIdByAddr_.end())
        return it->second;
    const auto id = static_cast<uint32_t>(lockLabels_.size());
    lockIdByAddr_.emplace(addr, id);
    lockLabels_.push_back(std::string(lock->objectName()) + "#" +
                          std::to_string(id));
    return id;
}

void
Detector::lockAcquire(const rt::Goroutine* g, const gc::Object* lock,
                      bool exclusive, bool blocking, rt::Site site)
{
    if (g == nullptr || lock == nullptr)
        return;
    GState& gs = stateOf(g);
    gs.vc.join(syncClock(lock)); // The HB acquire edge.
    if (exclusive)
        gs.vc.join(readClock(lock)); // Writers order after readers.
    ++syncOps_;
    ++lockAcquires_;
    if (opSink_)
        opSink_(gs.gid, reinterpret_cast<uintptr_t>(lock), true);

    const uint32_t id = lockIdOf(lock);
    if (blocking && !gs.held.empty()) {
        // The guard set is everything held at this acquisition: two
        // edges whose guards intersect cannot interleave into a
        // deadlock (the gate-lock criterion).
        std::vector<uint32_t> guard;
        guard.reserve(gs.held.size());
        for (const auto& h : gs.held)
            guard.push_back(h.lockId);
        std::sort(guard.begin(), guard.end());
        guard.erase(std::unique(guard.begin(), guard.end()),
                    guard.end());
        for (const auto& h : gs.held) {
            if (h.lockId == id)
                continue; // Re-acquisition (RLock) is not an edge.
            auto& insts = edges_[{h.lockId, id}];
            if (insts.size() < 8) {
                EdgeInst e;
                e.gid = gs.gid;
                e.spawnSite = gs.spawnSite;
                e.fromSite = h.site;
                e.toSite = site;
                e.guard = guard;
                insts.push_back(std::move(e));
            }
        }
    }
    gs.held.push_back(GState::Held{id, site});
    holders_[id].push_back(gs.gid);
}

void
Detector::lockRelease(const rt::Goroutine* g, const gc::Object* lock,
                      bool exclusive)
{
    if (g == nullptr || lock == nullptr)
        return;
    GState& gs = stateOf(g);
    // The HB release edge. Exclusive releases are seen by every later
    // acquirer; shared releases (RUnlock) go into the read clock that
    // only write acquisitions join — a reader's clock must not flow
    // to other readers, or a buggy write under RLock is hidden.
    if (exclusive)
        syncClock(lock).join(gs.vc);
    else
        readClock(lock).join(gs.vc);
    gs.vc.tick(gs.slot);
    ++syncOps_;
    if (opSink_)
        opSink_(gs.gid, reinterpret_cast<uintptr_t>(lock), true);

    const uint32_t id = lockIdOf(lock);
    auto dropHeld = [this, id](uint64_t gid) {
        auto it = indexOfGid_.find(gid);
        if (it == indexOfGid_.end())
            return;
        auto& held = gs_[it->second].held;
        for (auto h = held.rbegin(); h != held.rend(); ++h) {
            if (h->lockId == id) {
                held.erase(std::next(h).base());
                return;
            }
        }
    };
    auto& hv = holders_[id];
    auto self = std::find(hv.begin(), hv.end(), gs.gid);
    if (self != hv.end()) {
        hv.erase(self);
        dropHeld(gs.gid);
    } else if (!hv.empty()) {
        // Unlocked by a goroutine that did not lock it (Go permits
        // this for Mutex): release on behalf of some actual holder so
        // the stale entry cannot guard that goroutine's later edges.
        const uint64_t owner = hv.back();
        hv.pop_back();
        dropHeld(owner);
    }
}

Detector::Access
Detector::accessOf(const GState& gs, bool write, rt::Site site)
{
    Access a;
    a.epoch = gs.vc.epochOf(gs.slot);
    a.gid = gs.gid;
    a.write = write;
    a.site = site;
    a.spawnSite = gs.spawnSite;
    return a;
}

void
Detector::reportRace(const Access& prior, const Access& cur,
                     uintptr_t addr, const ShadowWord& word)
{
    RaceReport r;
    r.prior = AccessRecord{prior.gid, prior.write, prior.site,
                           prior.spawnSite};
    r.current =
        AccessRecord{cur.gid, cur.write, cur.site, cur.spawnSite};
    r.addr = addr;
    r.size = word.size;
    r.objectName = word.name != nullptr ? word.name : "memory";
    r.vtime = clock_ != nullptr ? clock_->now() : 0;
    if (log_.races().size() >= config_.maxReports) {
        log_.countInstance();
        return;
    }
    if (log_.add(std::move(r)) && config_.verbose)
        std::cerr << log_.races().back().str() << "\n";
}

void
Detector::checkWord(const GState& gs, const Access& cur,
                    uintptr_t addr, const ShadowWord& w)
{
    if (w.hasWrite && w.write.gid != gs.gid &&
        !gs.vc.covers(w.write.epoch))
        reportRace(w.write, cur, addr, w);
    if (!cur.write)
        return;
    for (const Access& r : w.reads) {
        if (r.gid != gs.gid && !gs.vc.covers(r.epoch))
            reportRace(r, cur, addr, w);
    }
}

void
Detector::checkOverlaps(const GState& gs, const Access& cur,
                        uintptr_t lo, size_t size)
{
    // Shadow words are keyed by annotation base address, so accesses
    // to one location through different bases (write(p, 8) vs
    // read(p + 4, 4)) land in different entries. Compare against
    // every neighbor whose [base, base+size) intersects this access;
    // the backward scan is bounded by the largest size ever recorded.
    const uintptr_t hi = lo + std::max<size_t>(size, 1);
    auto it = shadow_.lower_bound(lo);
    for (auto back = it; back != shadow_.begin();) {
        --back;
        if (back->first + maxShadowSize_ <= lo)
            break;
        if (back->first + std::max<size_t>(back->second.size, 1) > lo)
            checkWord(gs, cur, back->first, back->second);
    }
    for (; it != shadow_.end() && it->first < hi; ++it) {
        if (it->first != lo) // lo is the caller's own entry.
            checkWord(gs, cur, it->first, it->second);
    }
}

void
Detector::memRead(const rt::Goroutine* g, const void* addr, size_t size,
                  rt::Site site, const char* objName)
{
    if (g == nullptr)
        return;
    GState& gs = stateOf(g);
    ++memAccesses_;
    maxShadowSize_ = std::max(maxShadowSize_, size);
    ShadowWord& w = shadow_[reinterpret_cast<uintptr_t>(addr)];
    w.size = size;
    if (objName != nullptr)
        w.name = objName;
    const Access cur = accessOf(gs, false, site);
    if (w.hasWrite && w.write.gid != gs.gid &&
        !gs.vc.covers(w.write.epoch))
        reportRace(w.write, cur,
                   reinterpret_cast<uintptr_t>(addr), w);
    checkOverlaps(gs, cur, reinterpret_cast<uintptr_t>(addr), size);
    // Keep the read set maximal-concurrent: drop reads this access
    // happens-after, then record this one (replacing our own slot).
    std::erase_if(w.reads, [&](const Access& r) {
        return r.gid == gs.gid || gs.vc.covers(r.epoch);
    });
    w.reads.push_back(cur);
    if (opSink_)
        opSink_(gs.gid, reinterpret_cast<uintptr_t>(addr), false);
}

void
Detector::memWrite(const rt::Goroutine* g, const void* addr, size_t size,
                   rt::Site site, const char* objName)
{
    if (g == nullptr)
        return;
    GState& gs = stateOf(g);
    ++memAccesses_;
    maxShadowSize_ = std::max(maxShadowSize_, size);
    ShadowWord& w = shadow_[reinterpret_cast<uintptr_t>(addr)];
    w.size = size;
    if (objName != nullptr)
        w.name = objName;
    const Access cur = accessOf(gs, true, site);
    const auto a = reinterpret_cast<uintptr_t>(addr);
    if (w.hasWrite && w.write.gid != gs.gid &&
        !gs.vc.covers(w.write.epoch))
        reportRace(w.write, cur, a, w);
    for (const Access& r : w.reads) {
        if (r.gid != gs.gid && !gs.vc.covers(r.epoch))
            reportRace(r, cur, a, w);
    }
    checkOverlaps(gs, cur, a, size);
    w.hasWrite = true;
    w.write = cur;
    w.reads.clear();
    gs.vc.tick(gs.slot); // Distinct writes get distinct epochs.
    if (opSink_)
        opSink_(gs.gid, a, true);
}

void
Detector::onObjectFree(const gc::Object* obj)
{
    // Erase exactly the object's own footprint: allocSize() also
    // counts bytes charged for payloads living elsewhere, and a
    // range that wide would clobber neighboring live allocations'
    // shadow words, sync clocks and lock-id bindings.
    const auto lo = reinterpret_cast<uintptr_t>(obj);
    const uintptr_t hi = lo + std::max<size_t>(obj->baseSize(), 1);
    shadow_.erase(shadow_.lower_bound(lo), shadow_.lower_bound(hi));
    syncVc_.erase(syncVc_.lower_bound(lo), syncVc_.lower_bound(hi));
    readVc_.erase(readVc_.lower_bound(lo), readVc_.lower_bound(hi));
    // Lock ids stay allocated (labels outlive the object in reports);
    // only the address binding dies with the allocation.
    for (auto it = lockIdByAddr_.lower_bound(lo);
         it != lockIdByAddr_.end() && it->first < hi;)
        it = lockIdByAddr_.erase(it);
}

bool
Detector::cycleInstances(const std::vector<uint32_t>& nodes,
                         std::vector<LockOrderEdge>& out) const
{
    // Pick one dynamic instance per hop such that the goroutines are
    // pairwise distinct and the guard sets pairwise disjoint. Cycles
    // of pure read-locks are kept: RWMutex is writer-preferring, so
    // RLock blocks whenever a writer waits and opposite-order reader
    // pairs can genuinely deadlock once writers queue in between.
    // Instance lists are capped at 8, cycles at length 4, so brute
    // force is bounded by 8^4.
    const size_t n = nodes.size();
    std::vector<const std::vector<EdgeInst>*> lists(n);
    for (size_t i = 0; i < n; ++i) {
        auto it = edges_.find({nodes[i], nodes[(i + 1) % n]});
        if (it == edges_.end() || it->second.empty())
            return false;
        lists[i] = &it->second;
    }
    std::vector<size_t> pick(n, 0);
    while (true) {
        bool ok = true;
        for (size_t i = 0; i < n && ok; ++i) {
            const EdgeInst& a = (*lists[i])[pick[i]];
            for (size_t j = i + 1; j < n && ok; ++j) {
                const EdgeInst& b = (*lists[j])[pick[j]];
                if (a.gid == b.gid) {
                    ok = false;
                    break;
                }
                // Guards are sorted: linear intersection test.
                size_t x = 0;
                size_t y = 0;
                while (x < a.guard.size() && y < b.guard.size()) {
                    if (a.guard[x] == b.guard[y]) {
                        ok = false; // A common gate lock.
                        break;
                    }
                    if (a.guard[x] < b.guard[y])
                        ++x;
                    else
                        ++y;
                }
            }
        }
        if (ok) {
            out.clear();
            for (size_t i = 0; i < n; ++i) {
                const EdgeInst& e = (*lists[i])[pick[i]];
                LockOrderEdge hop;
                hop.lockA = lockLabels_[nodes[i]];
                hop.lockB = lockLabels_[nodes[(i + 1) % n]];
                hop.goroutineId = e.gid;
                hop.firstSite = e.fromSite;
                hop.secondSite = e.toSite;
                hop.spawnSite = e.spawnSite;
                out.push_back(std::move(hop));
            }
            return true;
        }
        // Advance the odometer.
        size_t i = 0;
        for (; i < n; ++i) {
            if (++pick[i] < lists[i]->size())
                break;
            pick[i] = 0;
        }
        if (i == n)
            return false;
    }
}

void
Detector::finalize(const detect::ReportLog& golfLog)
{
    // Enumerate simple cycles of length 2..maxCycleLength in the
    // lock-acquisition graph. Each cycle is discovered exactly once
    // by rooting the DFS at its smallest node and only walking
    // through larger ones.
    std::map<uint32_t, std::vector<uint32_t>> adj;
    for (const auto& [key, insts] : edges_) {
        if (!insts.empty())
            adj[key.first].push_back(key.second);
    }
    const size_t maxLen = std::max<size_t>(config_.maxCycleLength, 2);

    std::vector<uint32_t> path;
    std::vector<LockOrderEdge> hops;
    auto report = [&](const std::vector<uint32_t>& nodes) {
        if (log_.lockOrders().size() >= config_.maxReports)
            return;
        if (!cycleInstances(nodes, hops))
            return;
        LockOrderReport r;
        r.cycle = hops;
        r.vtime = clock_ != nullptr ? clock_->now() : 0;
        for (const auto& golf : golfLog.all()) {
            for (const auto& hop : r.cycle) {
                if (golf.blockSite == hop.secondSite) {
                    r.confirmedByGolf = true;
                    break;
                }
            }
            if (r.confirmedByGolf)
                break;
        }
        if (log_.addLockOrder(std::move(r)) && config_.verbose)
            std::cerr << log_.lockOrders().back().str() << "\n";
    };

    std::function<void(uint32_t, uint32_t)> dfs =
        [&](uint32_t root, uint32_t node) {
            auto it = adj.find(node);
            if (it == adj.end())
                return;
            for (uint32_t next : it->second) {
                if (next == root && path.size() >= 2) {
                    report(path);
                    continue;
                }
                if (next <= root || path.size() >= maxLen)
                    continue;
                if (std::find(path.begin(), path.end(), next) !=
                    path.end())
                    continue;
                path.push_back(next);
                dfs(root, next);
                path.pop_back();
            }
        };
    for (const auto& [root, _] : adj) {
        path.assign(1, root);
        dfs(root, root);
    }
}

void
Detector::blockedAttempt(const rt::Goroutine* g,
                         const std::vector<gc::Object*>& objs)
{
    if (!opSink_ || g == nullptr)
        return;
    for (const gc::Object* o : objs)
        if (o != nullptr)
            opSink_(g->id(), reinterpret_cast<uintptr_t>(o), true);
}

uint64_t
Detector::frontierHash(const rt::Goroutine* g) const
{
    if (g == nullptr)
        return 0;
    auto it = indexOfGid_.find(g->id());
    if (it == indexOfGid_.end())
        return 0;
    const VectorClock& vc = gs_[it->second].vc;
    // FNV-1a over the dense clock components. Trailing zero slots
    // hash like absent ones so two frontiers that differ only in
    // resize history collide, as they should.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    size_t top = vc.size();
    while (top > 0 && vc.get(static_cast<Slot>(top - 1)) == 0)
        --top;
    for (size_t i = 0; i < top; ++i)
        mix(vc.get(static_cast<Slot>(i)) + 1);
    return h;
}

DetectorStats
Detector::stats() const
{
    DetectorStats s;
    s.goroutines = gs_.size();
    s.syncOps = syncOps_;
    s.memAccesses = memAccesses_;
    s.shadowCells = shadow_.size();
    s.lockAcquires = lockAcquires_;
    s.lockGraphEdges = edges_.size();
    s.raceInstances = log_.raceInstances();
    s.raceReports = log_.races().size();
    s.lockOrderCycles = log_.lockOrders().size();
    for (const auto& r : log_.lockOrders()) {
        if (r.confirmedByGolf)
            ++s.confirmedCycles;
    }
    return s;
}

} // namespace golf::race
