#include "race/report.hpp"

#include <algorithm>
#include <sstream>

namespace golf::race {

std::string
AccessRecord::str() const
{
    std::ostringstream os;
    os << (write ? "write" : "read") << " by goroutine "
       << goroutineId << " at " << site.str() << " (created at "
       << spawnSite.str() << ")";
    return os.str();
}

std::string
RaceReport::dedupKey() const
{
    std::string a = prior.site.str() + (prior.write ? "+w" : "+r");
    std::string b =
        current.site.str() + (current.write ? "+w" : "+r");
    // Order-normalize: the same static pair reports once regardless
    // of which side the detector saw first.
    return a < b ? a + "|" + b : b + "|" + a;
}

std::string
RaceReport::str() const
{
    std::ostringstream os;
    os << "data race! on " << objectName << " (" << size
       << " bytes)\n"
       << "  " << current.str() << "\n"
       << "  conflicts with previous " << prior.str();
    return os.str();
}

std::string
RaceReport::json() const
{
    auto side = [](const AccessRecord& a) {
        std::ostringstream os;
        os << "{\"goroutine\":" << a.goroutineId << ",\"kind\":\""
           << (a.write ? "write" : "read") << "\",\"site\":\""
           << a.site.str() << "\",\"spawn\":\"" << a.spawnSite.str()
           << "\"}";
        return os.str();
    };
    std::ostringstream os;
    os << "{\"object\":\"" << objectName << "\",\"size\":" << size
       << ",\"current\":" << side(current) << ",\"prior\":"
       << side(prior) << ",\"vtime_ns\":" << vtime << "}";
    return os.str();
}

std::string
LockOrderEdge::str() const
{
    std::ostringstream os;
    os << "goroutine " << goroutineId << " acquired " << lockB
       << " at " << secondSite.str() << " while holding " << lockA
       << " (acquired at " << firstSite.str() << "; created at "
       << spawnSite.str() << ")";
    return os.str();
}

std::string
LockOrderReport::dedupKey() const
{
    // Normalize by rotating the cycle so the lexicographically
    // smallest hop comes first: the same static cycle keys equal no
    // matter where the DFS entered it.
    std::vector<std::string> hops;
    hops.reserve(cycle.size());
    for (const auto& e : cycle)
        hops.push_back(e.lockA + ">" + e.lockB + "@" +
                       e.secondSite.str());
    size_t best = 0;
    for (size_t i = 1; i < hops.size(); ++i) {
        if (hops[i] < hops[best])
            best = i;
    }
    std::string key;
    for (size_t i = 0; i < hops.size(); ++i)
        key += hops[(best + i) % hops.size()] + "|";
    return key;
}

std::string
LockOrderReport::str() const
{
    std::ostringstream os;
    os << "potential deadlock! lock-order cycle of length "
       << cycle.size()
       << (confirmedByGolf ? " (confirmed by GOLF)"
                           : " (run completed cleanly)")
       << "\n";
    for (const auto& e : cycle)
        os << "  " << e.str() << "\n";
    os << "  a schedule interleaving these acquisitions deadlocks";
    return os.str();
}

std::string
LockOrderReport::json() const
{
    std::ostringstream os;
    os << "{\"cycle\":[";
    for (size_t i = 0; i < cycle.size(); ++i) {
        const LockOrderEdge& e = cycle[i];
        os << "{\"held\":\"" << e.lockA << "\",\"acquired\":\""
           << e.lockB << "\",\"goroutine\":" << e.goroutineId
           << ",\"held_site\":\"" << e.firstSite.str()
           << "\",\"acquire_site\":\"" << e.secondSite.str() << "\"}";
        if (i + 1 < cycle.size())
            os << ",";
    }
    os << "],\"confirmed_by_golf\":"
       << (confirmedByGolf ? "true" : "false") << ",\"vtime_ns\":"
       << vtime << "}";
    return os.str();
}

bool
RaceLog::add(RaceReport r)
{
    ++raceInstances_;
    const std::string key = r.dedupKey();
    if (++raceCounts_[key] > 1)
        return false;
    if (sink_)
        sink_(r);
    races_.push_back(std::move(r));
    return true;
}

bool
RaceLog::addLockOrder(LockOrderReport r)
{
    const std::string key = r.dedupKey();
    if (++lockOrderCounts_[key] > 1)
        return false;
    lockOrders_.push_back(std::move(r));
    return true;
}

void
RaceLog::clear()
{
    races_.clear();
    lockOrders_.clear();
    raceCounts_.clear();
    lockOrderCounts_.clear();
    raceInstances_ = 0;
}

} // namespace golf::race
