/**
 * @file
 * Race and potential-deadlock (lock-order) reports, GOLF-report-style.
 *
 * A data race report carries *both* conflicting accesses — goroutine
 * id, access kind, the access site and the goroutine's `go` statement
 * site (the two-frame "stack" this runtime attributes everything to,
 * exactly the ingredients of detect::DeadlockReport). A lock-order
 * report carries one acquisition cycle: each hop names the two locks,
 * the goroutine that ordered them, and the two acquisition sites.
 * Deduplication mirrors the RQ1(b) scheme: the site pair (respectively
 * the normalized cycle site list) is the key, so repeated dynamic
 * instances of one static bug count once.
 */
#ifndef GOLFCC_RACE_REPORT_HPP
#define GOLFCC_RACE_REPORT_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/types.hpp"
#include "support/vclock.hpp"

namespace golf::race {

/** One side of a data race: who accessed, how, where, spawned where. */
struct AccessRecord
{
    uint64_t goroutineId = 0;
    bool write = false;
    rt::Site site;       ///< The annotated access.
    rt::Site spawnSite;  ///< The goroutine's `go` statement.

    std::string str() const;
};

/** One detected data race (a pair of unordered conflicting accesses). */
struct RaceReport
{
    AccessRecord prior;    ///< The access already in the shadow word.
    AccessRecord current;  ///< The access that exposed the race.
    uintptr_t addr = 0;
    size_t size = 0;
    /** objectName() of the owning heap object, or "memory". */
    std::string objectName = "memory";
    support::VTime vtime = 0;

    /** Normalized "siteA|siteB" pair — the dedup key. */
    std::string dedupKey() const;

    /** Human-readable report, GOLF message style. */
    std::string str() const;

    /** One JSON object (structured logging pipelines). */
    std::string json() const;
};

/** One hop of a lock-order cycle: lockB acquired while holding lockA. */
struct LockOrderEdge
{
    std::string lockA;     ///< Label of the held lock.
    std::string lockB;     ///< Label of the lock acquired under it.
    uint64_t goroutineId = 0;
    rt::Site firstSite;    ///< Where lockA was acquired.
    rt::Site secondSite;   ///< Where lockB was acquired (under lockA).
    rt::Site spawnSite;    ///< The goroutine's `go` statement.

    std::string str() const;
};

/** A cyclic lock-acquisition order: a *potential* deadlock, reported
 *  even when the observed schedule completed cleanly. */
struct LockOrderReport
{
    std::vector<LockOrderEdge> cycle;
    /** golf::Collector caught a sync-package deadlock at one of the
     *  cycle's acquisition sites: the prediction manifested. */
    bool confirmedByGolf = false;
    support::VTime vtime = 0;

    /** Normalized cycle site list — the dedup key. */
    std::string dedupKey() const;

    std::string str() const;
    std::string json() const;
};

/** Accumulates race and lock-order reports with deduplication. */
class RaceLog
{
  public:
    /** Record a race; returns true when it is a new (deduped) one. */
    bool add(RaceReport r);

    /** Record a lock-order cycle; returns true when new. */
    bool addLockOrder(LockOrderReport r);

    /** Deduplicated races, in detection order. */
    const std::vector<RaceReport>& races() const { return races_; }

    /** Deduplicated lock-order cycles, in detection order. */
    const std::vector<LockOrderReport>&
    lockOrders() const
    {
        return lockOrders_;
    }

    /** Dynamic instances per race dedup key. */
    const std::map<std::string, size_t>&
    raceCounts() const
    {
        return raceCounts_;
    }

    /** Total dynamic race instances (>= races().size()). */
    size_t raceInstances() const { return raceInstances_; }

    /** Count a dynamic instance dropped by the report cap. */
    void countInstance() { ++raceInstances_; }

    /** Sink invoked for each *new* race report as it is found (the
     *  logging-pipeline hookup, like ReportLog::setSink). */
    void setSink(std::function<void(const RaceReport&)> sink)
    {
        sink_ = std::move(sink);
    }

    void clear();

  private:
    std::vector<RaceReport> races_;
    std::vector<LockOrderReport> lockOrders_;
    std::map<std::string, size_t> raceCounts_;
    std::map<std::string, size_t> lockOrderCounts_;
    size_t raceInstances_ = 0;
    std::function<void(const RaceReport&)> sink_;
};

} // namespace golf::race

#endif // GOLFCC_RACE_REPORT_HPP
