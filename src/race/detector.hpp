/**
 * @file
 * golf::race — FastTrack-style happens-before race detection plus
 * predictive lock-order analysis over the managed runtime.
 *
 * One instrumentation layer, two analyses over the same trace:
 *
 *  1. *Happens-before race detection.* Every goroutine carries a
 *     vector clock; every synchronization edge the runtime already
 *     has — spawn, channel send/recv/close rendezvous, semaphore
 *     acquire/release underneath Mutex/RWMutex/WaitGroup/Cond/
 *     Semaphore, and scheduler wakeups — joins clocks exactly the way
 *     Go's -race (TSan) models sync. Annotated memory accesses
 *     (race::read / race::write, see annotate.hpp) check against
 *     per-address shadow words and report conflicting unordered
 *     access pairs with both sites.
 *
 *  2. *Predictive lock-order analysis.* Every blocking lock
 *     acquisition records a lock-acquisition-graph edge keyed by the
 *     held-lock set (the classic gate-lock construction). Cycles are
 *     reported as *potential* deadlocks even when the observed
 *     schedule completed cleanly — the dynamic analog of van den
 *     Heuvel et al.'s partial-order deadlock prediction — and are
 *     cross-checked against what golf::Collector actually caught.
 *
 * The detector is owned by rt::Runtime and only exists when
 * rt::Config::race is set; every hook in the primitives is a single
 * null-pointer check when it is off (Go's -race build-flag contract:
 * zero overhead unless enabled).
 */
#ifndef GOLFCC_RACE_DETECTOR_HPP
#define GOLFCC_RACE_DETECTOR_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "race/report.hpp"
#include "race/vclock.hpp"
#include "runtime/types.hpp"
#include "support/vclock.hpp"

namespace golf::gc { class Object; }
namespace golf::rt { class Goroutine; }
namespace golf::detect { class ReportLog; }

namespace golf::race {

struct DetectorConfig
{
    /** Print each new race / cycle report to stderr as found. */
    bool verbose = false;
    /** Cap on deduplicated reports kept per category. */
    size_t maxReports = 256;
    /** Longest lock-order cycle searched for (>= 2). */
    size_t maxCycleLength = 4;
};

/** Per-run analysis counters (surfaced via service::AnalysisStats). */
struct DetectorStats
{
    uint64_t goroutines = 0;     ///< Goroutines ever registered.
    uint64_t syncOps = 0;        ///< Acquire/release/pair edges.
    uint64_t memAccesses = 0;    ///< Annotated reads + writes checked.
    uint64_t shadowCells = 0;    ///< Live shadow words.
    uint64_t lockAcquires = 0;   ///< Lock acquisitions tracked.
    uint64_t lockGraphEdges = 0; ///< Distinct held->acquired edges.
    uint64_t raceInstances = 0;  ///< Dynamic race hits (pre-dedup).
    uint64_t raceReports = 0;    ///< Deduplicated race reports.
    uint64_t lockOrderCycles = 0;///< Deduplicated cycle reports.
    uint64_t confirmedCycles = 0;///< Cycles GOLF also caught.
};

class Detector
{
  public:
    Detector(DetectorConfig config, const support::VClock* clock);

    Detector(const Detector&) = delete;
    Detector& operator=(const Detector&) = delete;

    /// @{ Goroutine lifecycle edges (runtime/).
    /** Child inherits the parent's frontier; parent ticks. */
    void onSpawn(const rt::Goroutine* parent,
                 const rt::Goroutine* child);
    /** Final clock published (joins via WaitGroup/channel, not here). */
    void onFinish(const rt::Goroutine* g);
    /** waker -> woken causality (park/wakeup edge). */
    void onWakeEdge(const rt::Goroutine* waker,
                    const rt::Goroutine* woken);
    /// @}

    /// @{ Sync-object edges (chan/, sync/). Null goroutines (timer
    /// or driver context) contribute no edge and are ignored.
    /** VC[g] joins the sync object's clock (lock grant, recv). */
    void acquire(const rt::Goroutine* g, const void* obj);
    /** Sync object's clock joins VC[g]; g ticks (unlock, send). */
    void release(const rt::Goroutine* g, const void* obj);
    /** Unbuffered-channel rendezvous: both sides synchronize. */
    void channelPair(const rt::Goroutine* a, const rt::Goroutine* b,
                     const void* ch);
    /// @}

    /// @{ Lock-order analysis (Mutex / RWMutex).
    /** Lock granted to g. Blocking acquisitions add graph edges from
     *  every held lock; tryLock never blocks, so it only extends the
     *  held set. `exclusive` is false for RLock. Also performs the
     *  happens-before acquire edge. */
    void lockAcquire(const rt::Goroutine* g, const gc::Object* lock,
                     bool exclusive, bool blocking, rt::Site site);
    /** Lock released (possibly by a goroutine that did not acquire
     *  it — Go allows that for Mutex). Also the HB release edge:
     *  exclusive releases publish into the lock's write clock seen
     *  by every later acquirer; shared (RUnlock) releases publish
     *  into a separate read clock joined only by write acquisitions,
     *  so readers never inherit each other's clocks (TSan's RWLock
     *  model — reader-to-reader HB would hide writes-under-RLock). */
    void lockRelease(const rt::Goroutine* g, const gc::Object* lock,
                     bool exclusive = true);
    /// @}

    /// @{ Annotated memory accesses (race::read / race::write).
    /// `objName` labels the report ("counter", "ring buffer", ...);
    /// nullptr falls back to "memory".
    void memRead(const rt::Goroutine* g, const void* addr,
                 size_t size, rt::Site site,
                 const char* objName = nullptr);
    void memWrite(const rt::Goroutine* g, const void* addr,
                  size_t size, rt::Site site,
                  const char* objName = nullptr);
    /// @}

    /** Heap sweep hook: drop shadow/sync state for a freed object so
     *  address reuse cannot alias stale clocks. */
    void onObjectFree(const gc::Object* obj);

    /**
     * End of run: detect lock-order cycles, apply the gate-lock and
     * distinct-goroutine filters, and cross-check each cycle against
     * GOLF's deadlock reports. Idempotent across repeated runs of the
     * same runtime (reports are deduplicated).
     */
    void finalize(const detect::ReportLog& golfLog);

    const RaceLog& log() const { return log_; }
    RaceLog& log() { return log_; }

    DetectorStats stats() const;

    /// @{ Model-checker taps (golf::mc).
    /**
     * Footprint sink: one call per instrumented operation with the
     * acting goroutine, the sync object / shadow address it touched,
     * and whether the operation writes (all sync edges count as
     * writes; only annotated reads pass false). golf::mc accumulates
     * these into per-macro-step footprints — two steps are dependent
     * for DPOR iff their footprints share an address and at least one
     * side wrote it.
     */
    using OpSink =
        std::function<void(uint64_t gid, uintptr_t obj, bool write)>;
    void setOpSink(OpSink sink) { opSink_ = std::move(sink); }

    /**
     * A goroutine parked on `objs` without completing its operation.
     * Purely observational: feeds the opSink only (no HB edges, no
     * lock-order bookkeeping), so DPOR sees the *attempt* conflict
     * with whatever operation would have granted it. Without this, a
     * goroutine blocked forever on its second mutex leaves no
     * footprint on that mutex and the explorer would treat it as
     * independent of the holder — pruning exactly the serializations
     * that complete cleanly.
     */
    void blockedAttempt(const rt::Goroutine* g,
                        const std::vector<gc::Object*>& objs);

    /**
     * FNV-1a hash of g's vector-clock frontier (0 for a goroutine
     * the detector has never seen). Equal frontiers identify equal
     * causal downsets — the Mazurkiewicz-trace ingredient of the mc
     * state fingerprint.
     */
    uint64_t frontierHash(const rt::Goroutine* g) const;
    /// @}

  private:
    /** Per-goroutine analysis state. */
    struct GState
    {
        uint64_t gid = 0;
        Slot slot = 0;
        VectorClock vc;
        rt::Site spawnSite;
        /** Currently held locks: stable id + acquisition site. */
        struct Held
        {
            uint32_t lockId;
            rt::Site site;
        };
        std::vector<Held> held;
    };

    /** One dynamic instance of a lock-graph edge. */
    struct EdgeInst
    {
        uint64_t gid = 0;
        rt::Site spawnSite;
        rt::Site fromSite;
        rt::Site toSite;
        std::vector<uint32_t> guard; ///< Held-set at acquisition.
    };

    /** FastTrack shadow word for one annotated address. */
    struct Access
    {
        Epoch epoch;
        uint64_t gid = 0;
        bool write = false;
        rt::Site site;
        rt::Site spawnSite;
    };
    struct ShadowWord
    {
        bool hasWrite = false;
        Access write;
        std::vector<Access> reads; ///< Maximal concurrent read set.
        size_t size = 0;
        const char* name = nullptr; ///< Annotation label, if any.
    };

    GState& stateOf(const rt::Goroutine* g);
    VectorClock& syncClock(const void* obj);
    VectorClock& readClock(const void* obj);
    uint32_t lockIdOf(const gc::Object* lock);
    void reportRace(const Access& prior, const Access& cur,
                    uintptr_t addr, const ShadowWord& word);
    static Access accessOf(const GState& gs, bool write,
                           rt::Site site);
    void checkWord(const GState& gs, const Access& cur,
                   uintptr_t addr, const ShadowWord& w);
    void checkOverlaps(const GState& gs, const Access& cur,
                       uintptr_t lo, size_t size);
    bool cycleInstances(const std::vector<uint32_t>& nodes,
                        std::vector<LockOrderEdge>& out) const;

    DetectorConfig config_;
    const support::VClock* clock_;
    RaceLog log_;

    std::unordered_map<uint64_t, uint32_t> indexOfGid_;
    std::vector<GState> gs_;

    /** Sync-object clocks, keyed by address; ordered so object free
     *  can range-erase every clock inside the freed allocation. */
    std::map<uintptr_t, VectorClock> syncVc_;

    /** Read-release clocks (RUnlock publishes here; only write
     *  acquisitions join). Keyed/erased like syncVc_. */
    std::map<uintptr_t, VectorClock> readVc_;

    /** Stable lock identities (labels survive object free). */
    std::map<uintptr_t, uint32_t> lockIdByAddr_;
    std::vector<std::string> lockLabels_;

    /** Goroutines currently holding each lock (unlock may come from
     *  a goroutine other than the one that locked — legal in Go). */
    std::unordered_map<uint32_t, std::vector<uint64_t>> holders_;

    /** Lock-acquisition graph: (from,to) -> dynamic instances. */
    std::map<std::pair<uint32_t, uint32_t>, std::vector<EdgeInst>>
        edges_;

    /** Shadow memory, ordered so object free can range-erase. */
    std::map<uintptr_t, ShadowWord> shadow_;

    /** Largest annotated access size seen; bounds the backward scan
     *  when looking for shadow entries overlapping an access. */
    size_t maxShadowSize_ = 0;

    uint64_t syncOps_ = 0;
    uint64_t memAccesses_ = 0;
    uint64_t lockAcquires_ = 0;

    OpSink opSink_;
};

} // namespace golf::race

#endif // GOLFCC_RACE_DETECTOR_HPP
