/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The whole simulator is seeded: scheduler interleavings, select-case
 * shuffles, workload arrivals and corpus generation all draw from Rng
 * instances derived from the run seed, so every experiment run is
 * replayable (substitution note 1 in DESIGN.md).
 */
#ifndef GOLFCC_SUPPORT_RNG_HPP
#define GOLFCC_SUPPORT_RNG_HPP

#include <cstddef>
#include <cstdint>
#include <utility>

namespace golf::support {

/** splitmix64-seeded xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Uniform 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound), bound > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p. */
    bool chance(double p);

    /** Exponentially distributed value with the given mean. */
    double nextExp(double mean);

    /** Normally distributed value (Box-Muller). */
    double nextGaussian(double mean, double stddev);

    /** Derive an independent child generator (for sub-components). */
    Rng split();

    /** Fisher-Yates shuffle of a random-access container. */
    template <typename Container>
    void
    shuffle(Container& c)
    {
        for (size_t i = c.size(); i > 1; --i) {
            size_t j = nextBelow(i);
            using std::swap;
            swap(c[i - 1], c[j]);
        }
    }

  private:
    uint64_t s_[4];
};

} // namespace golf::support

#endif // GOLFCC_SUPPORT_RNG_HPP
