/**
 * @file
 * Error-reporting primitives for the golfcc runtime.
 *
 * Mirrors the fatal/panic split of the Go runtime (and gem5's
 * fatal/panic): panic() is for internal invariant violations of the
 * runtime itself, fatal() for conditions the embedding program caused
 * (e.g. a global deadlock, Go's "all goroutines are asleep").
 * GoPanicError models a Go-level panic (e.g. "send on closed channel")
 * that unwinds the offending goroutine and terminates the scheduler.
 */
#ifndef GOLFCC_SUPPORT_PANIC_HPP
#define GOLFCC_SUPPORT_PANIC_HPP

#include <functional>
#include <stdexcept>
#include <string>

namespace golf::support {

/** Internal invariant violation of the runtime itself. Aborts. */
[[noreturn]] void panic(const std::string& msg);

/**
 * Install a hook run once by panic() between printing the message and
 * aborting. The runtime uses it to flush post-mortem state (deadlock
 * ReportLog, tracer ring, goroutine dump) to stderr so an invariant
 * violation doesn't take its evidence down with it. Re-entrant panics
 * skip the hook.
 */
void setPanicFlushHook(std::function<void()> hook);

/** Error state caused by the embedded program. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg)
        : std::runtime_error(msg)
    {}
};

/**
 * A Go-level panic raised by a goroutine, e.g. "send on closed
 * channel" or "sync: negative WaitGroup counter". Propagates out of
 * the goroutine's coroutine frames; the scheduler converts it into a
 * terminated run (the analog of a Go program crashing).
 */
class GoPanicError : public std::runtime_error
{
  public:
    explicit GoPanicError(const std::string& msg)
        : std::runtime_error(msg)
    {}
};

/** Raise a Go-level panic from library code. */
[[noreturn]] void goPanic(const std::string& msg);

/**
 * Observer invoked with the message of every goPanic *before* the
 * exception is thrown. The runtime registers one to capture panic
 * state on the current goroutine — recover() needs the message while
 * the stack is unwinding, where std::current_exception is unusable.
 */
void setGoPanicObserver(void (*observer)(const std::string&));

} // namespace golf::support

#endif // GOLFCC_SUPPORT_PANIC_HPP
