/**
 * @file
 * Error-reporting primitives for the golfcc runtime.
 *
 * Mirrors the fatal/panic split of the Go runtime (and gem5's
 * fatal/panic): panic() is for internal invariant violations of the
 * runtime itself, fatal() for conditions the embedding program caused
 * (e.g. a global deadlock, Go's "all goroutines are asleep").
 * GoPanicError models a Go-level panic (e.g. "send on closed channel")
 * that unwinds the offending goroutine and terminates the scheduler.
 */
#ifndef GOLFCC_SUPPORT_PANIC_HPP
#define GOLFCC_SUPPORT_PANIC_HPP

#include <stdexcept>
#include <string>

namespace golf::support {

/** Internal invariant violation of the runtime itself. Aborts. */
[[noreturn]] void panic(const std::string& msg);

/** Error state caused by the embedded program. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg)
        : std::runtime_error(msg)
    {}
};

/**
 * A Go-level panic raised by a goroutine, e.g. "send on closed
 * channel" or "sync: negative WaitGroup counter". Propagates out of
 * the goroutine's coroutine frames; the scheduler converts it into a
 * terminated run (the analog of a Go program crashing).
 */
class GoPanicError : public std::runtime_error
{
  public:
    explicit GoPanicError(const std::string& msg)
        : std::runtime_error(msg)
    {}
};

/** Raise a Go-level panic from library code. */
[[noreturn]] void goPanic(const std::string& msg);

} // namespace golf::support

#endif // GOLFCC_SUPPORT_PANIC_HPP
