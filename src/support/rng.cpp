#include "support/rng.hpp"

#include <cmath>

namespace golf::support {

namespace {

uint64_t
splitmix64(uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto& s : s_)
        s = splitmix64(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    // Lemire-style rejection-free reduction is fine here; bias is
    // negligible for simulation purposes.
    return next() % bound;
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    return lo + static_cast<int64_t>(nextBelow(
        static_cast<uint64_t>(hi - lo + 1)));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return nextDouble() < p;
}

double
Rng::nextExp(double mean)
{
    double u = nextDouble();
    if (u <= 0.0)
        u = 1e-18;
    return -mean * std::log(u);
}

double
Rng::nextGaussian(double mean, double stddev)
{
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 <= 0.0)
        u1 = 1e-18;
    double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xD1B54A32D192ED03ull);
}

} // namespace golf::support
