/**
 * @file
 * Address obfuscation (paper Section 5.4).
 *
 * GOLF flips the highest-order bit of goroutine pointers stored in
 * global runtime tables (the allgs array and the semaphore treap) so
 * the marking phase cannot prematurely mark blocked goroutines through
 * those always-reachable structures. We reproduce the masking exactly:
 * MaskedPtr stores ptr with the top bit flipped, and the marker
 * asserts (in debug collectors) that it never traces a masked address.
 */
#ifndef GOLFCC_SUPPORT_MASKED_PTR_HPP
#define GOLFCC_SUPPORT_MASKED_PTR_HPP

#include <cstdint>

namespace golf::support {

/** The high-order bit flipped onto masked addresses. */
constexpr uintptr_t kAddressMask =
    uintptr_t{1} << (sizeof(uintptr_t) * 8 - 1);

/** Whether a raw word looks like a masked address. */
inline bool
isMaskedAddress(uintptr_t word)
{
    return (word & kAddressMask) != 0;
}

inline uintptr_t
maskAddress(uintptr_t addr)
{
    return addr ^ kAddressMask;
}

/**
 * Pointer stored with its top bit flipped. The raw word stored in
 * memory is never a valid address, which is the paper's mechanism for
 * hiding blocked goroutines (and semaphore addresses) from the GC.
 */
template <typename T>
class MaskedPtr
{
  public:
    MaskedPtr() : word_(0) {}
    explicit MaskedPtr(T* p)
        : word_(p ? maskAddress(reinterpret_cast<uintptr_t>(p)) : 0)
    {}

    T*
    get() const
    {
        if (!word_)
            return nullptr;
        return reinterpret_cast<T*>(maskAddress(word_));
    }

    /** The obfuscated word as stored (for tests and the marker). */
    uintptr_t raw() const { return word_; }

    explicit operator bool() const { return word_ != 0; }
    bool operator==(const MaskedPtr&) const = default;

  private:
    uintptr_t word_;
};

} // namespace golf::support

#endif // GOLFCC_SUPPORT_MASKED_PTR_HPP
