/**
 * @file
 * Randomized treap (Aragon & Seidel) keyed by uintptr_t.
 *
 * The Go runtime keeps a treap of in-use semaphore addresses
 * ("semtable"), each entry holding the queue of goroutines blocked on
 * that semaphore. GOLF masks the addresses stored in this table so the
 * marking phase cannot prematurely reach blocked goroutines through it
 * (Section 5.4). We reproduce the same structure: sync primitives park
 * their waiters in a semtable keyed by treap.
 */
#ifndef GOLFCC_SUPPORT_TREAP_HPP
#define GOLFCC_SUPPORT_TREAP_HPP

#include <cstdint>
#include <memory>

#include "support/rng.hpp"

namespace golf::support {

/** Treap map from uintptr_t keys to V values. */
template <typename V>
class Treap
{
  public:
    explicit Treap(uint64_t seed = 0xBADC0FFEEull) : rng_(seed) {}

    /** Find the value for key, or nullptr. */
    V*
    find(uintptr_t key)
    {
        Node* n = root_.get();
        while (n) {
            if (key == n->key)
                return &n->value;
            n = key < n->key ? n->left.get() : n->right.get();
        }
        return nullptr;
    }

    /** Find or default-construct the value for key. */
    V&
    obtain(uintptr_t key)
    {
        if (V* v = find(key))
            return *v;
        root_ = insert(std::move(root_),
                       std::make_unique<Node>(key, rng_.next()));
        return *find(key);
    }

    /** Remove the entry for key; returns whether it existed. */
    bool
    erase(uintptr_t key)
    {
        bool found = false;
        root_ = eraseRec(std::move(root_), key, found);
        if (found)
            --size_;
        return found;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** In-order visit of (key, value&). */
    template <typename Fn>
    void
    forEach(Fn&& fn)
    {
        forEachRec(root_.get(), fn);
    }

    /** Validate BST-order and heap-priority invariants (for tests). */
    bool
    checkInvariants() const
    {
        return checkRec(root_.get(), 0, UINTPTR_MAX);
    }

  private:
    struct Node
    {
        Node(uintptr_t k, uint64_t p) : key(k), prio(p) {}
        uintptr_t key;
        uint64_t prio;
        V value{};
        std::unique_ptr<Node> left;
        std::unique_ptr<Node> right;
    };

    using NodePtr = std::unique_ptr<Node>;

    NodePtr
    rotateRight(NodePtr n)
    {
        NodePtr l = std::move(n->left);
        n->left = std::move(l->right);
        l->right = std::move(n);
        return l;
    }

    NodePtr
    rotateLeft(NodePtr n)
    {
        NodePtr r = std::move(n->right);
        n->right = std::move(r->left);
        r->left = std::move(n);
        return r;
    }

    NodePtr
    insert(NodePtr n, NodePtr fresh)
    {
        if (!n) {
            ++size_;
            return fresh;
        }
        if (fresh->key < n->key) {
            n->left = insert(std::move(n->left), std::move(fresh));
            if (n->left->prio > n->prio)
                n = rotateRight(std::move(n));
        } else {
            n->right = insert(std::move(n->right), std::move(fresh));
            if (n->right->prio > n->prio)
                n = rotateLeft(std::move(n));
        }
        return n;
    }

    NodePtr
    eraseRec(NodePtr n, uintptr_t key, bool& found)
    {
        if (!n)
            return nullptr;
        if (key < n->key) {
            n->left = eraseRec(std::move(n->left), key, found);
        } else if (key > n->key) {
            n->right = eraseRec(std::move(n->right), key, found);
        } else {
            found = true;
            // Rotate the doomed node down to a leaf, then drop it.
            if (!n->left && !n->right)
                return nullptr;
            if (!n->left || (n->right && n->right->prio > n->left->prio)) {
                n = rotateLeft(std::move(n));
                n->left = eraseRec(std::move(n->left), key, found);
            } else {
                n = rotateRight(std::move(n));
                n->right = eraseRec(std::move(n->right), key, found);
            }
        }
        return n;
    }

    template <typename Fn>
    void
    forEachRec(Node* n, Fn& fn)
    {
        if (!n)
            return;
        forEachRec(n->left.get(), fn);
        fn(n->key, n->value);
        forEachRec(n->right.get(), fn);
    }

    bool
    checkRec(const Node* n, uintptr_t lo, uintptr_t hi) const
    {
        if (!n)
            return true;
        if (n->key < lo || n->key > hi)
            return false;
        if (n->left && n->left->prio > n->prio)
            return false;
        if (n->right && n->right->prio > n->prio)
            return false;
        bool left_ok = !n->left ||
            (n->key > 0 && checkRec(n->left.get(), lo, n->key - 1));
        bool right_ok = !n->right ||
            checkRec(n->right.get(), n->key + 1, hi);
        return left_ok && right_ok;
    }

    Rng rng_;
    NodePtr root_;
    size_t size_ = 0;
};

} // namespace golf::support

#endif // GOLFCC_SUPPORT_TREAP_HPP
