/**
 * @file
 * Sample collections and summary statistics for the experiment
 * harnesses: latency percentiles (Table 2/3), box-plot summaries of
 * marking-phase slowdowns (Figure 4), and mean/stddev reporting.
 */
#ifndef GOLFCC_SUPPORT_STATS_HPP
#define GOLFCC_SUPPORT_STATS_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace golf::support {

/** Accumulates raw samples; computes summary statistics on demand. */
class Samples
{
  public:
    void add(double v) { values_.push_back(v); }
    size_t count() const { return values_.size(); }
    bool empty() const { return values_.empty(); }

    double sum() const;
    double mean() const;
    double stddev() const;
    double min() const;
    double max() const;

    /**
     * Percentile in [0, 100] with linear interpolation between
     * adjacent order statistics (matches the convention used by
     * common latency-reporting tools).
     */
    double percentile(double p) const;

    double median() const { return percentile(50.0); }

    const std::vector<double>& values() const { return values_; }

  private:
    void ensureSorted() const;

    std::vector<double> values_;
    mutable std::vector<double> sorted_;
};

/** Five-number summary plus whiskers for box plots (Figure 4). */
struct BoxStats
{
    double min;
    double q1;
    double median;
    double q3;
    double max;
    double mean;

    static BoxStats of(const Samples& s);
    std::string str() const;
};

/** Trapezoidal area under a curve given as y-values on x=1..n,
 *  normalized so a constant y=1 curve has area 1 (Figure 3 AUC). */
double normalizedAuc(const std::vector<double>& ys);

} // namespace golf::support

#endif // GOLFCC_SUPPORT_STATS_HPP
