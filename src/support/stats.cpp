#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/panic.hpp"

namespace golf::support {

double
Samples::sum() const
{
    double acc = 0;
    for (double v : values_)
        acc += v;
    return acc;
}

double
Samples::mean() const
{
    if (values_.empty())
        return 0;
    return sum() / static_cast<double>(values_.size());
}

double
Samples::stddev() const
{
    if (values_.size() < 2)
        return 0;
    double m = mean();
    double acc = 0;
    for (double v : values_)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double
Samples::min() const
{
    if (values_.empty())
        return 0;
    return *std::min_element(values_.begin(), values_.end());
}

double
Samples::max() const
{
    if (values_.empty())
        return 0;
    return *std::max_element(values_.begin(), values_.end());
}

void
Samples::ensureSorted() const
{
    if (sorted_.size() != values_.size()) {
        sorted_ = values_;
        std::sort(sorted_.begin(), sorted_.end());
    }
}

double
Samples::percentile(double p) const
{
    if (values_.empty())
        return 0;
    ensureSorted();
    if (p <= 0)
        return sorted_.front();
    if (p >= 100)
        return sorted_.back();
    double rank = (p / 100.0) * static_cast<double>(sorted_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size())
        return sorted_.back();
    return sorted_[lo] * (1 - frac) + sorted_[lo + 1] * frac;
}

BoxStats
BoxStats::of(const Samples& s)
{
    return BoxStats{
        s.min(), s.percentile(25), s.median(), s.percentile(75),
        s.max(), s.mean(),
    };
}

std::string
BoxStats::str() const
{
    std::ostringstream os;
    os << "min=" << min << " q1=" << q1 << " med=" << median
       << " q3=" << q3 << " max=" << max << " mean=" << mean;
    return os.str();
}

double
normalizedAuc(const std::vector<double>& ys)
{
    if (ys.empty())
        return 0;
    if (ys.size() == 1)
        return ys[0];
    double area = 0;
    for (size_t i = 0; i + 1 < ys.size(); ++i)
        area += (ys[i] + ys[i + 1]) / 2.0;
    return area / static_cast<double>(ys.size() - 1);
}

} // namespace golf::support
