#include "support/panic.hpp"

#include <cstdio>
#include <cstdlib>

namespace golf::support {

void
panic(const std::string& msg)
{
    std::fprintf(stderr, "runtime panic: %s\n", msg.c_str());
    std::abort();
}

void
goPanic(const std::string& msg)
{
    throw GoPanicError(msg);
}

} // namespace golf::support
