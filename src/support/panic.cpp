#include "support/panic.hpp"

#include <cstdio>
#include <cstdlib>

namespace golf::support {

namespace {

std::function<void()>&
flushHook()
{
    static std::function<void()> hook;
    return hook;
}

void (*g_goPanicObserver)(const std::string&) = nullptr;

} // namespace

void
setPanicFlushHook(std::function<void()> hook)
{
    flushHook() = std::move(hook);
}

void
panic(const std::string& msg)
{
    std::fprintf(stderr, "runtime panic: %s\n", msg.c_str());
    // Guard against a panic raised from inside the flush itself.
    static bool flushing = false;
    if (!flushing && flushHook()) {
        flushing = true;
        flushHook()();
        flushing = false;
    }
    std::abort();
}

void
setGoPanicObserver(void (*observer)(const std::string&))
{
    g_goPanicObserver = observer;
}

void
goPanic(const std::string& msg)
{
    if (g_goPanicObserver)
        g_goPanicObserver(msg);
    throw GoPanicError(msg);
}

} // namespace golf::support
