/**
 * @file
 * Minimal intrusive doubly-linked list.
 *
 * Used for channel waiter queues (the sudog lists of the Go runtime),
 * goroutine shadow-stack root lists, and semaphore wait queues. The
 * key property is O(1) unlink of a node that knows only itself, which
 * is what lets a forcibly-destroyed coroutine frame deregister its
 * waiters from whatever queue they sit in (Section 5.4 of the paper:
 * special cleanup of deadlocked goroutines).
 */
#ifndef GOLFCC_SUPPORT_INTRUSIVE_LIST_HPP
#define GOLFCC_SUPPORT_INTRUSIVE_LIST_HPP

#include <cstddef>

#include "support/panic.hpp"

namespace golf::support {

/** A node embedded in the object that wants to live in an IList. */
class IListNode
{
  public:
    IListNode() = default;
    ~IListNode() { if (linked()) unlink(); }

    IListNode(const IListNode&) = delete;
    IListNode& operator=(const IListNode&) = delete;

    /** Whether the node currently sits in a list. */
    bool linked() const { return next_ != nullptr; }

    /** Remove this node from whatever list holds it. O(1). */
    void
    unlink()
    {
        if (!linked())
            panic("IListNode::unlink on unlinked node");
        prev_->next_ = next_;
        next_->prev_ = prev_;
        next_ = nullptr;
        prev_ = nullptr;
    }

  private:
    template <typename T, IListNode T::*> friend class IList;

    IListNode* next_ = nullptr;
    IListNode* prev_ = nullptr;
};

/**
 * Intrusive list of T, where T embeds an IListNode at member pointer
 * Member. The list does not own its elements.
 */
template <typename T, IListNode T::*Member>
class IList
{
  public:
    IList()
    {
        head_.next_ = &head_;
        head_.prev_ = &head_;
    }

    ~IList()
    {
        // Unhook any survivors so their destructors do not touch us.
        while (!empty())
            popFront();
    }

    IList(const IList&) = delete;
    IList& operator=(const IList&) = delete;

    bool empty() const { return head_.next_ == &head_; }

    size_t
    size() const
    {
        size_t n = 0;
        for (IListNode* p = head_.next_; p != &head_; p = p->next_)
            ++n;
        return n;
    }

    void
    pushBack(T* elem)
    {
        IListNode* n = &(elem->*Member);
        if (n->linked())
            panic("IList::pushBack on already-linked node");
        n->prev_ = head_.prev_;
        n->next_ = &head_;
        head_.prev_->next_ = n;
        head_.prev_ = n;
    }

    void
    pushFront(T* elem)
    {
        IListNode* n = &(elem->*Member);
        if (n->linked())
            panic("IList::pushFront on already-linked node");
        n->next_ = head_.next_;
        n->prev_ = &head_;
        head_.next_->prev_ = n;
        head_.next_ = n;
    }

    T*
    front() const
    {
        if (empty())
            return nullptr;
        return owner(head_.next_);
    }

    /** Pop the front element, or nullptr when empty. */
    T*
    popFront()
    {
        if (empty())
            return nullptr;
        IListNode* n = head_.next_;
        T* elem = owner(n);
        n->unlink();
        return elem;
    }

    /** Visit every element; fn may not unlink the current element. */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (IListNode* p = head_.next_; p != &head_;) {
            IListNode* next = p->next_;
            fn(owner(p));
            p = next;
        }
    }

  private:
    static T*
    owner(IListNode* n)
    {
        // Recover T* from the embedded node address.
        const T* probe = nullptr;
        auto offset = reinterpret_cast<const char*>(&(probe->*Member)) -
                      reinterpret_cast<const char*>(probe);
        return reinterpret_cast<T*>(reinterpret_cast<char*>(n) - offset);
    }

    IListNode head_;
};

} // namespace golf::support

#endif // GOLFCC_SUPPORT_INTRUSIVE_LIST_HPP
