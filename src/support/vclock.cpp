#include "support/vclock.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace golf::support {

TimerId
VClock::schedule(VTime when, std::function<void()> fn)
{
    TimerId id = nextId_++;
    heap_.push(Event{when, id, std::move(fn)});
    ++pendingCount_;
    return id;
}

TimerId
VClock::scheduleAfter(VTime delay, std::function<void()> fn)
{
    return schedule(now_ + delay, std::move(fn));
}

bool
VClock::cancel(TimerId id)
{
    // Lazy cancellation: remember the id; the heap entry is skipped
    // when popped. Fine for our event volumes.
    if (cancelled(id))
        return false;
    cancelled_.push_back(id);
    if (pendingCount_ == 0)
        return false;
    --pendingCount_;
    return true;
}

bool
VClock::cancelled(TimerId id) const
{
    return std::find(cancelled_.begin(), cancelled_.end(), id) !=
           cancelled_.end();
}

VTime
VClock::nextDeadline() const
{
    // The top may be a cancelled entry; we cannot pop here (const), so
    // callers treat the returned deadline as a lower bound. fireNext()
    // skips stale entries.
    if (pendingCount_ == 0)
        return kNoDeadline;
    return heap_.top().when;
}

size_t
VClock::fireNext()
{
    // Skip cancelled entries.
    while (!heap_.empty() && cancelled(heap_.top().id)) {
        auto it = std::find(cancelled_.begin(), cancelled_.end(),
                            heap_.top().id);
        cancelled_.erase(it);
        heap_.pop();
    }
    if (heap_.empty())
        return 0;
    VTime deadline = heap_.top().when;
    if (deadline > now_)
        now_ = deadline;
    return firePending();
}

uint64_t
VClock::fingerprint() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    mix(static_cast<uint64_t>(now_));
    mix(pendingCount_);
    // Drain a copy of the heap so deadlines come out sorted — the
    // multiset of pending deadlines, not their insertion order.
    auto copy = heap_;
    while (!copy.empty()) {
        if (!cancelled(copy.top().id))
            mix(static_cast<uint64_t>(copy.top().when));
        copy.pop();
    }
    return h;
}

size_t
VClock::firePending()
{
    size_t fired = 0;
    while (!heap_.empty() && heap_.top().when <= now_) {
        Event ev = heap_.top();
        heap_.pop();
        auto it = std::find(cancelled_.begin(), cancelled_.end(), ev.id);
        if (it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        --pendingCount_;
        ++fired;
        ev.fn();
    }
    return fired;
}

} // namespace golf::support
