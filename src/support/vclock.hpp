/**
 * @file
 * Discrete-event virtual clock with a timer heap.
 *
 * Substitution note 5 (DESIGN.md): the paper's multi-hour production
 * deployments run here on virtual time. Goroutine sleeps, service
 * request arrivals and redeploy schedules are timer events; when the
 * scheduler runs out of runnable goroutines it advances the clock to
 * the next deadline. CPU-time experiments (the GC marking phase of
 * Figure 4) use real clocks and are unaffected.
 */
#ifndef GOLFCC_SUPPORT_VCLOCK_HPP
#define GOLFCC_SUPPORT_VCLOCK_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace golf::support {

/** Virtual nanoseconds. */
using VTime = int64_t;

constexpr VTime kMicrosecond = 1000;
constexpr VTime kMillisecond = 1000 * kMicrosecond;
constexpr VTime kSecond = 1000 * kMillisecond;
constexpr VTime kMinute = 60 * kSecond;
constexpr VTime kHour = 60 * kMinute;

/** A cancellable timer handle. */
using TimerId = uint64_t;

/** Virtual clock plus pending timer events. */
class VClock
{
  public:
    VTime now() const { return now_; }

    /** Advance the clock by delta (monotone). */
    void advance(VTime delta) { now_ += delta; }

    /** Schedule fn to fire at absolute virtual time `when`. */
    TimerId schedule(VTime when, std::function<void()> fn);

    /** Schedule fn to fire `delay` from now. */
    TimerId scheduleAfter(VTime delay, std::function<void()> fn);

    /** Cancel a pending timer; returns whether it was still pending. */
    bool cancel(TimerId id);

    /** Whether any timer is pending. */
    bool hasPending() const { return pendingCount_ > 0; }

    /** Deadline of the earliest pending timer (kNoDeadline if none). */
    VTime nextDeadline() const;

    /**
     * Advance to the next deadline and fire every timer due at it.
     * Returns the number of timers fired (0 when none pending).
     */
    size_t fireNext();

    /** Fire all timers with deadline <= now. */
    size_t firePending();

    /**
     * FNV-1a hash of (now, multiset of pending deadlines) — the
     * clock's contribution to the model checker's state fingerprint.
     * Timer identity (which callback) is not hashed; two states that
     * differ only in which goroutine a deadline wakes are told apart
     * by the goroutine components of the fingerprint.
     */
    uint64_t fingerprint() const;

    static constexpr VTime kNoDeadline = INT64_MAX;

  private:
    struct Event
    {
        VTime when;
        TimerId id;
        std::function<void()> fn;
        bool operator>(const Event& o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    bool cancelled(TimerId id) const;

    VTime now_ = 0;
    TimerId nextId_ = 1;
    size_t pendingCount_ = 0;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    std::vector<TimerId> cancelled_;
};

} // namespace golf::support

#endif // GOLFCC_SUPPORT_VCLOCK_HPP
