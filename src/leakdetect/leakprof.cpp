#include "leakdetect/leakprof.hpp"

namespace golf::leakdetect {

void
LeakProf::sample(const rt::Runtime& rt)
{
    sample(obs::collectGoroutineProfile(rt));
}

void
LeakProf::sample(const obs::GoroutineProfile& prof)
{
    ++samples_;
    std::map<std::string, size_t> byBlockSite;
    for (const obs::GoroutineProfileEntry& e : prof.entries) {
        // A goroutine profile shows every parked goroutine,
        // including ones GOLF has already classified (they are
        // still blocked as far as the profile is concerned).
        const bool parked =
            (e.status == rt::GStatus::Waiting &&
             rt::isDeadlockCandidate(e.reason)) ||
            e.status == rt::GStatus::Deadlocked ||
            e.status == rt::GStatus::PendingReclaim;
        if (parked)
            ++byBlockSite[e.blockSite];
    }

    suspects_.clear();
    for (const auto& [site, count] : byBlockSite) {
        if (count >= threshold_) {
            suspects_.push_back(Suspect{site, count});
            auto it = everFlagged_.find(site);
            if (it == everFlagged_.end() || it->second < count)
                everFlagged_[site] = count;
        }
    }
}

} // namespace golf::leakdetect
