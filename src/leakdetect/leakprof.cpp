#include "leakdetect/leakprof.hpp"

namespace golf::leakdetect {

void
LeakProf::sample(const rt::Runtime& rt)
{
    ++samples_;
    std::map<std::string, size_t> byBlockSite;
    rt.forEachGoroutine([&](rt::Goroutine* g) {
        // A goroutine profile shows every parked goroutine,
        // including ones GOLF has already classified (they are
        // still blocked as far as the profile is concerned).
        const bool parked =
            (g->status() == rt::GStatus::Waiting &&
             rt::isDeadlockCandidate(g->waitReason())) ||
            g->status() == rt::GStatus::Deadlocked ||
            g->status() == rt::GStatus::PendingReclaim;
        if (parked)
            ++byBlockSite[g->blockSite().str()];
    });

    suspects_.clear();
    for (const auto& [site, count] : byBlockSite) {
        if (count >= threshold_) {
            suspects_.push_back(Suspect{site, count});
            auto it = everFlagged_.find(site);
            if (it == everFlagged_.end() || it->second < count)
                everFlagged_[site] = count;
        }
    }
}

} // namespace golf::leakdetect
