#include "leakdetect/goleak.hpp"

namespace golf::leakdetect {

std::string
LeakedGoroutine::dedupKey() const
{
    return spawnSite.str() + "|" + blockSite.str();
}

std::map<std::string, size_t>
GoLeakResult::dedupCounts() const
{
    std::map<std::string, size_t> counts;
    for (const auto& l : leaks)
        ++counts[l.dedupKey()];
    return counts;
}

GoLeakResult
findLeaks(const rt::Runtime& rt)
{
    GoLeakResult result;
    rt.forEachGoroutine([&](rt::Goroutine* g) {
        bool lingering = false;
        switch (g->status()) {
          case rt::GStatus::Waiting:
            // Fairness filter (Section 6.1): IO-blocked and sleeping
            // goroutines are excluded from the GOLEAK comparison.
            lingering = rt::isDeadlockCandidate(g->waitReason());
            break;
          case rt::GStatus::Deadlocked:
          case rt::GStatus::PendingReclaim:
            // Already flagged by GOLF; GOLEAK would see them
            // lingering too (they never terminate).
            lingering = true;
            break;
          default:
            // Runnable ("runaway live") goroutines are excluded per
            // the paper's methodology; Done/Idle are terminated.
            break;
        }
        if (lingering) {
            result.leaks.push_back(LeakedGoroutine{
                g->id(), g->waitReason(), g->status(),
                g->spawnSite(), g->blockSite()});
        }
    });
    return result;
}

} // namespace golf::leakdetect
