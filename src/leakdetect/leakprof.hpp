/**
 * @file
 * LeakProf baseline (Saioc & Chabbi, 2022).
 *
 * LeakProf periodically pulls goroutine profiles from running
 * services and flags blocking operations with a high concentration of
 * blocked goroutines. It is featherlight but unsound in both
 * directions: a busy-but-healthy operation can exceed the threshold
 * (false positive), and a slow leak stays below it (false negative).
 * The ablation bench contrasts this with GOLF's sound detection.
 */
#ifndef GOLFCC_LEAKDETECT_LEAKPROF_HPP
#define GOLFCC_LEAKDETECT_LEAKPROF_HPP

#include <map>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "runtime/runtime.hpp"

namespace golf::leakdetect {

/** A blocking site flagged by LeakProf. */
struct Suspect
{
    std::string blockSite;
    size_t blockedCount = 0;
};

class LeakProf
{
  public:
    /** Flag sites with at least `threshold` blocked goroutines. */
    explicit LeakProf(size_t threshold) : threshold_(threshold) {}

    /** Take one goroutine-profile sample of the runtime (pulls an
     *  obs goroutine profile — exactly what the real LeakProf does
     *  against pprof, instead of reaching into runtime internals). */
    void sample(const rt::Runtime& rt);

    /** Consume an already-collected goroutine profile. */
    void sample(const obs::GoroutineProfile& prof);

    /** Sites over threshold in the most recent sample. */
    const std::vector<Suspect>& suspects() const { return suspects_; }

    /** Sites flagged in any sample so far. */
    const std::map<std::string, size_t>& everFlagged() const
    {
        return everFlagged_;
    }

    size_t samplesTaken() const { return samples_; }

  private:
    size_t threshold_;
    size_t samples_ = 0;
    std::vector<Suspect> suspects_;
    std::map<std::string, size_t> everFlagged_;
};

} // namespace golf::leakdetect

#endif // GOLFCC_LEAKDETECT_LEAKPROF_HPP
