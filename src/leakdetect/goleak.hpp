/**
 * @file
 * GOLEAK baseline (Saioc et al., CGO'24; github.com/uber-go/goleak).
 *
 * GOLEAK inspects the runtime state when a test suite terminates and
 * reports lingering goroutines. Per the paper's RQ1(b) methodology,
 * the comparison excludes goroutines blocked at IO and runaway live
 * (runnable) goroutines, leaving exactly the blocked-at-concurrency-
 * operation population; all GOLF detections are a subset of GOLEAK's
 * by construction.
 */
#ifndef GOLFCC_LEAKDETECT_GOLEAK_HPP
#define GOLFCC_LEAKDETECT_GOLEAK_HPP

#include <map>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"

namespace golf::leakdetect {

/** One lingering goroutine at test end. */
struct LeakedGoroutine
{
    uint64_t id = 0;
    rt::WaitReason reason = rt::WaitReason::None;
    rt::GStatus status = rt::GStatus::Idle;
    rt::Site spawnSite;
    rt::Site blockSite;

    std::string dedupKey() const;
};

/** GOLEAK scan result. */
struct GoLeakResult
{
    std::vector<LeakedGoroutine> leaks;

    size_t total() const { return leaks.size(); }

    /** Individual leaks per (spawn site, block site) pair. */
    std::map<std::string, size_t> dedupCounts() const;
};

/**
 * Scan a runtime after its main goroutine finished (the end of a
 * test). Reports goroutines parked at concurrency operations,
 * including those GOLF already transitioned to Deadlocked /
 * PendingReclaim.
 */
GoLeakResult findLeaks(const rt::Runtime& rt);

} // namespace golf::leakdetect

#endif // GOLFCC_LEAKDETECT_GOLEAK_HPP
