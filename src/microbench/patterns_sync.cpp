/**
 * @file
 * goker/GoBench microbenchmarks ported from Syncthing and Knative
 * Serving issues — the sync-package-heavy end of the corpus. All
 * deterministic, 100% detection.
 */
#include "microbench/patterns_common.hpp"

namespace golf::microbench {
namespace {

rt::Go
recvOnceS(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

rt::Go
sendOnceS(Channel<int>* ch, int v)
{
    co_await chan::send(ch, v);
    co_return;
}

// ---------------------------------------------------------------------
// syncthing/4829 — folder scanner: the progress emitter holds the
// folder mutex while blocked emitting to a detached UI channel.
rt::Go
syncthing4829Emitter(sync::Mutex* mu, Channel<int>* ui)
{
    co_await mu->lock();
    co_await chan::send(ui, 1);
    mu->unlock();
    co_return;
}

rt::Go
syncthing4829(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<sync::Mutex> mu(rt.make<sync::Mutex>(rt));
    gc::Local<Channel<int>> ui(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "syncthing/4829:17", syncthing4829Emitter,
                  mu.get(), ui.get());
    co_return;
}

// ---------------------------------------------------------------------
// syncthing/5795 — connection service: the dialer, the listener and
// the deduplication loop all stall when the service restarts without
// closing its coordination channels. Three leaky sites.
rt::Go
syncthing5795Dedup(Channel<int>* conns)
{
    for (;;) {
        auto r = co_await chan::recv(conns);
        if (!r.ok)
            break;
    }
    co_return;
}

rt::Go
syncthing5795(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> dialed(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> accepted(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> conns(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "syncthing/5795:49", sendOnceS, dialed.get(),
                  1);
    GOLF_GO_LEAKY(ctx, "syncthing/5795:57", sendOnceS,
                  accepted.get(), 1);
    GOLF_GO_LEAKY(ctx, "syncthing/5795:66", syncthing5795Dedup,
                  conns.get());
    co_return;
}

// ---------------------------------------------------------------------
// serving/2137 — autoscaler: the stat reporter waits on a WaitGroup
// the poisoned scrape path never decrements, and the bucket flusher
// blocks behind the reporter's mutex.
struct Autoscaler2137 : gc::Object
{
    sync::WaitGroup* wg = nullptr;
    sync::Mutex* mu = nullptr;

    void
    trace(gc::Marker& m) override
    {
        m.mark(wg);
        m.mark(mu);
    }
};

rt::Go
serving2137Reporter(Autoscaler2137* a)
{
    co_await a->mu->lock();
    co_await a->wg->wait();
    a->mu->unlock();
    co_return;
}

rt::Go
serving2137Flusher(Autoscaler2137* a)
{
    co_await a->mu->lock();
    a->mu->unlock();
    co_return;
}

rt::Go
serving2137(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Autoscaler2137> a(rt.make<Autoscaler2137>());
    a->wg = rt.make<sync::WaitGroup>(rt);
    a->mu = rt.make<sync::Mutex>(rt);
    a->wg->add(1); // scrape path panicked before Done
    GOLF_GO_LEAKY(ctx, "serving/2137:60", serving2137Reporter,
                  a.get());
    co_await rt::sleepFor(100 * kMicrosecond);
    GOLF_GO_LEAKY(ctx, "serving/2137:71", serving2137Flusher,
                  a.get());
    co_return;
}

// ---------------------------------------------------------------------
// serving/4908 — activator: the request prober waits on a readiness
// channel that the torn-down revision never signals.
rt::Go
serving4908(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> readiness(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "serving/4908:33", recvOnceS,
                  readiness.get());
    co_return;
}

} // namespace

void
registerSyncPatterns(Registry& r)
{
    r.add({"syncthing/4829", "goker", {"syncthing/4829:17"}, 1, false,
           syncthing4829});
    r.add({"syncthing/5795", "goker",
           {"syncthing/5795:49", "syncthing/5795:57",
            "syncthing/5795:66"},
           1, false, syncthing5795});
    r.add({"serving/2137", "goker",
           {"serving/2137:60", "serving/2137:71"}, 1, false,
           serving2137});
    r.add({"serving/4908", "goker", {"serving/4908:33"}, 1, false,
           serving4908});
}

} // namespace golf::microbench
