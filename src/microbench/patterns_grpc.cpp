/**
 * @file
 * goker/GoBench microbenchmarks ported from grpc-go issues. 8
 * benchmarks; grpc/1460 and grpc/3017 are Table 1 flaky rows.
 * grpc/3017 is the parallelism-gated one: it never manifests on one
 * virtual core (the cooperative schedule runs the initializer before
 * the checker) and almost always does on two or more.
 */
#include "microbench/patterns_common.hpp"

namespace golf::microbench {
namespace {

rt::Go
recvOnceG(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

rt::Go
sendOnceG(Channel<int>* ch, int v)
{
    co_await chan::send(ch, v);
    co_return;
}

// ---------------------------------------------------------------------
// grpc/660 — benchmark client: stat workers send into an unbuffered
// results channel after the collector timed out. Two sites: the
// sender and the watchdog that waits for it.
rt::Go
grpc660Watchdog(Channel<int>* workerDone)
{
    co_await chan::recv(workerDone);
    co_return;
}

rt::Go
grpc660(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> results(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> workerDone(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "grpc/660:79", sendOnceG, results.get(), 1);
    GOLF_GO_LEAKY(ctx, "grpc/660:84", grpc660Watchdog,
                  workerDone.get());
    co_return; // collector timed out and dropped both channels
}

// ---------------------------------------------------------------------
// grpc/795 — server stop: the listener-accept loop and the
// connection closer both park on a quit channel pair the double-stop
// path abandoned.
rt::Go
grpc795(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> quit(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> conns(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "grpc/795:53", recvOnceG, quit.get());
    GOLF_GO_LEAKY(ctx, "grpc/795:61", recvOnceG, conns.get());
    co_return;
}

// ---------------------------------------------------------------------
// grpc/862 — dial backoff: the connection retry loop and its
// deadline watcher survive a cancelled dial context.
rt::Go
grpc862Retry(Channel<int>* connected, Channel<int>* backoff)
{
    co_await chan::select(chan::recvCase(connected),
                          chan::recvCase(backoff));
    co_return;
}

rt::Go
grpc862(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> connected(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> backoff(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> notify(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "grpc/862:51", grpc862Retry, connected.get(),
                  backoff.get());
    GOLF_GO_LEAKY(ctx, "grpc/862:68", sendOnceG, notify.get(), 1);
    // Cancelled dial: nobody serves connected/backoff (the retry
    // select strands) and nobody drains the caller-notification
    // channel (the notifier strands).
    co_return;
}

// ---------------------------------------------------------------------
// grpc/1275 — recvBufferReader: the stream reader waits for data
// that the closed transport never delivers.
rt::Go
grpc1275(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> recvBuf(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "grpc/1275:97", recvOnceG, recvBuf.get());
    co_return;
}

// ---------------------------------------------------------------------
// grpc/1424 — balancer: the address-update forwarder blocks sending
// to a watcher the closed connection abandoned.
rt::Go
grpc1424(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> updates(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "grpc/1424:83", sendOnceG, updates.get(), 1);
    co_return;
}

// ---------------------------------------------------------------------
// grpc/1460 — FLAKY (Table 1 ~98.5%): transport flow control. The
// ping handler and the settings handler both block when the client
// tears down mid-handshake — which happens on most but not all
// schedules.
rt::Go
grpc1460(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> ping(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> settings(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "grpc/1460:83", sendOnceG, ping.get(), 1);
    GOLF_GO_LEAKY(ctx, "grpc/1460:85", sendOnceG, settings.get(), 1);
    co_await rt::yield();
    if (ctx->rng.chance(0.65))
        co_return; // teardown wins the race: both handlers leak
    co_await chan::recv(ping.get());
    co_await chan::recv(settings.get());
    co_return;
}

// ---------------------------------------------------------------------
// grpc/2166 — stream cleanup: a header writer blocks on a full
// buffered control channel after the control loop stopped.
rt::Go
grpc2166(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> control(makeChan<int>(rt, 1));
    co_await chan::send(control.get(), 0); // loop stopped: stays full
    GOLF_GO_LEAKY(ctx, "grpc/2166:31", sendOnceG, control.get(), 1);
    co_return;
}

// ---------------------------------------------------------------------
// grpc/3017 — FLAKY, parallelism-gated (Table 1: 0 at 1 core,
// ~100% at >=2): resolver state race. A checker goroutine reads a
// readiness flag that an initializer goroutine (spawned just before
// it) sets in its first slice. On one virtual core the cooperative
// FIFO schedule always runs the initializer first; with more cores
// the two land on different run queues and the checker frequently
// wins the race, taking the unsynchronized path that parks on
// channels nobody serves. Three leaky sites.
struct Resolver3017 : gc::Object
{
    bool ready = false;
    /** 0 = unobserved, 1 = saw ready, 2 = raced (poisoned). The
     *  first helper to run snapshots the race outcome; the poisoned
     *  state machine then strands every helper, matching the
     *  original bug where one racy read corrupts the resolver. */
    int observed = 0;
    Channel<int>* updates = nullptr;
    Channel<int>* lookups = nullptr;

    bool
    poisoned()
    {
        if (observed == 0)
            observed = ready ? 1 : 2;
        return observed == 2;
    }

    void
    trace(gc::Marker& m) override
    {
        m.mark(updates);
        m.mark(lookups);
    }
};

rt::Go
grpc3017Init(Resolver3017* r, VTime wake)
{
    co_await rt::sleepUntil(wake);
    r->ready = true;
    co_return;
}

rt::Go
grpc3017Checker(Resolver3017* r, VTime wake)
{
    co_await rt::sleepUntil(wake);
    if (r->poisoned()) {
        // Unsynchronized path: wait for an update that only a ready
        // resolver would publish.
        co_await chan::recv(r->updates);
    }
    co_return;
}

rt::Go
grpc3017Lookup(Resolver3017* r, VTime wake)
{
    co_await rt::sleepUntil(wake);
    if (r->poisoned()) {
        co_await chan::send(r->lookups, 1);
    }
    co_return;
}

rt::Go
grpc3017Watcher(Resolver3017* r, VTime wake)
{
    co_await rt::sleepUntil(wake);
    if (r->poisoned()) {
        co_await chan::recv(r->updates);
    }
    co_return;
}

rt::Go
grpc3017(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Resolver3017> res(rt.make<Resolver3017>());
    res->updates = makeChan<int>(rt, 0);
    res->lookups = makeChan<int>(rt, 0);
    // Initializer and helpers wake at the same instant. On one
    // virtual core the wakeup order is FIFO (initializer first, it
    // parked first), so the race is never lost; with parallelism the
    // scheduler scatters the wakeups across processors and a helper
    // frequently observes the pre-init state.
    const VTime wake = rt.clock().now() + 300 * kMicrosecond;
    GOLF_GO(rt, grpc3017Init, res.get(), wake);
    GOLF_GO_LEAKY(ctx, "grpc/3017:71", grpc3017Checker, res.get(),
                  wake);
    GOLF_GO_LEAKY(ctx, "grpc/3017:97", grpc3017Lookup, res.get(),
                  wake);
    GOLF_GO_LEAKY(ctx, "grpc/3017:106", grpc3017Watcher, res.get(),
                  wake);
    co_return;
}

} // namespace

void
registerGrpcPatterns(Registry& r)
{
    r.add({"grpc/660", "goker", {"grpc/660:79", "grpc/660:84"}, 1,
           false, grpc660});
    r.add({"grpc/795", "goker", {"grpc/795:53", "grpc/795:61"}, 1,
           false, grpc795});
    r.add({"grpc/862", "goker", {"grpc/862:51", "grpc/862:68"}, 1,
           false, grpc862});
    r.add({"grpc/1275", "goker", {"grpc/1275:97"}, 1, false,
           grpc1275});
    r.add({"grpc/1424", "goker", {"grpc/1424:83"}, 1, false,
           grpc1424});
    r.add({"grpc/1460", "goker", {"grpc/1460:83", "grpc/1460:85"},
           100, false, grpc1460});
    r.add({"grpc/2166", "goker", {"grpc/2166:31"}, 1, false,
           grpc2166});
    r.add({"grpc/3017", "goker",
           {"grpc/3017:71", "grpc/3017:97", "grpc/3017:106"}, 1000,
           false, grpc3017});
}

} // namespace golf::microbench
