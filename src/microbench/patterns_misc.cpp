/**
 * @file
 * goker/GoBench microbenchmarks ported from Istio issues (the
 * remainder of the corpus lives in patterns_sync.cpp for syncthing
 * and Knative serving). All deterministic, 100% detection.
 */
#include "microbench/patterns_common.hpp"

namespace golf::microbench {
namespace {

rt::Go
recvOnceI(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

rt::Go
sendOnceI(Channel<int>* ch, int v)
{
    co_await chan::send(ch, v);
    co_return;
}

// ---------------------------------------------------------------------
// istio/16224 — config store sync: the event dispatcher blocks on a
// full 1-slot queue, and the retry scheduler waits for a sync ack
// the stopped controller never sends.
rt::Go
istio16224(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> queue(makeChan<int>(rt, 1));
    gc::Local<Channel<int>> ack(makeChan<int>(rt, 0));
    co_await chan::send(queue.get(), 0); // controller stopped: full
    GOLF_GO_LEAKY(ctx, "istio/16224:38", sendOnceI, queue.get(), 1);
    GOLF_GO_LEAKY(ctx, "istio/16224:46", recvOnceI, ack.get());
    co_return;
}

// ---------------------------------------------------------------------
// istio/17860 — agent proxy: the drain watcher waits for an exit
// signal the aborted proxy run path never delivers.
rt::Go
istio17860(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> exit(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "istio/17860:44", recvOnceI, exit.get());
    co_return;
}

// ---------------------------------------------------------------------
// istio/18454 — pilot discovery: a push worker and the debounce
// timer goroutine both stall on the update channel pair when the
// connection closes mid-push.
rt::Go
istio18454Debounce(Channel<int>* updates, Channel<int>* pushes)
{
    // Flush the pending push first (nobody consumes it any more),
    // so the update sender behind us strands too.
    co_await chan::send(pushes, 1);
    co_await chan::recv(updates);
    co_return;
}

rt::Go
istio18454(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> updates(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> pushes(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "istio/18454:20", istio18454Debounce,
                  updates.get(), pushes.get());
    GOLF_GO_LEAKY(ctx, "istio/18454:29", sendOnceI, updates.get(), 1);
    // The connection closed: nobody consumes pushes, so the
    // debouncer never reaches its receive and the updater strands.
    co_return;
}

} // namespace

void
registerMiscPatterns(Registry& r)
{
    r.add({"istio/16224", "goker",
           {"istio/16224:38", "istio/16224:46"}, 1, false,
           istio16224});
    r.add({"istio/17860", "goker", {"istio/17860:44"}, 1, false,
           istio17860});
    r.add({"istio/18454", "goker",
           {"istio/18454:20", "istio/18454:29"}, 1, false,
           istio18454});
}

} // namespace golf::microbench
