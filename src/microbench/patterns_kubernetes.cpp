/**
 * @file
 * goker/GoBench microbenchmarks ported from Kubernetes issues. 13
 * benchmarks; kubernetes/1321, 10182, 11298, 25331 and 62464 are the
 * Table 1 flaky rows (97.5-99.85%).
 */
#include "microbench/patterns_common.hpp"

namespace golf::microbench {
namespace {

rt::Go
recvOnceK(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

rt::Go
sendOnceK(Channel<int>* ch, int v)
{
    co_await chan::send(ch, v);
    co_return;
}

rt::Go
rangeDrainK(Channel<int>* ch)
{
    for (;;) {
        auto r = co_await chan::recv(ch);
        if (!r.ok)
            break;
    }
    co_return;
}

// ---------------------------------------------------------------------
// kubernetes/1321 — FLAKY (~99.75%): util.Until worker pair. Both
// the ticker loop and the stop forwarder leak when the caller's
// error path forgets to close the stop channel.
rt::Go
kubernetes1321(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> stopCh(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> tick(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "kubernetes/1321:52", recvOnceK, stopCh.get());
    GOLF_GO_LEAKY(ctx, "kubernetes/1321:95", sendOnceK, tick.get(),
                  1);
    co_await rt::yield();
    if (ctx->rng.chance(0.78))
        co_return; // error path: stop never closed
    chan::close(stopCh.get());
    co_await chan::recv(tick.get());
    co_return;
}

// ---------------------------------------------------------------------
// kubernetes/5316 — kubelet prober: the exec result reader waits on
// a probe whose container died before reporting.
rt::Go
kubernetes5316(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> probe(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "kubernetes/5316:58", recvOnceK, probe.get());
    co_return;
}

// ---------------------------------------------------------------------
// kubernetes/6632 — kubelet runonce: a pod-status sender and the
// pod-worker drain both park after the sync loop aborts.
rt::Go
kubernetes6632(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> statusCh(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> workCh(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "kubernetes/6632:21", sendOnceK,
                  statusCh.get(), 1);
    GOLF_GO_LEAKY(ctx, "kubernetes/6632:29", rangeDrainK,
                  workCh.get());
    co_return;
}

// ---------------------------------------------------------------------
// kubernetes/10182 — FLAKY (~99.75%): status manager. The syncBatch
// goroutine blocks on the status channel when the update path exits
// between the capacity check and the send.
rt::Go
kubernetes10182(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> statusCh(makeChan<int>(rt, 1));
    co_await chan::send(statusCh.get(), 0); // buffer full
    GOLF_GO_LEAKY(ctx, "kubernetes/10182:95", sendOnceK,
                  statusCh.get(), 1);
    co_await rt::yield();
    if (ctx->rng.chance(0.78))
        co_return; // consumer exits early: sender stuck on full buf
    co_await chan::recv(statusCh.get());
    co_await chan::recv(statusCh.get());
    co_return;
}

// ---------------------------------------------------------------------
// kubernetes/11298 — FLAKY (~99.85%): scheduler event broadcaster.
// Two subscriber forwarders miss the shutdown broadcast on an
// unlucky path.
rt::Go
kubernetes11298(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> events(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> shutdown(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "kubernetes/11298:20", rangeDrainK,
                  events.get());
    GOLF_GO_LEAKY(ctx, "kubernetes/11298:106", recvOnceK,
                  shutdown.get());
    co_await rt::yield();
    if (ctx->rng.chance(0.82))
        co_return;
    chan::close(events.get());
    co_await chan::send(shutdown.get(), 1);
    co_return;
}

// ---------------------------------------------------------------------
// kubernetes/16697 — pv controller: a claim-sync worker holds a
// mutex-guarded resource while waiting for a binder that quit.
rt::Go
kubernetes16697Worker(sync::Mutex* mu, Channel<int>* binder)
{
    co_await mu->lock();
    co_await chan::recv(binder);
    mu->unlock();
    co_return;
}

rt::Go
kubernetes16697(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<sync::Mutex> mu(rt.make<sync::Mutex>(rt));
    gc::Local<Channel<int>> binder(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "kubernetes/16697:86", kubernetes16697Worker,
                  mu.get(), binder.get());
    co_return;
}

// ---------------------------------------------------------------------
// kubernetes/25331 — FLAKY (~99%): watch cache expiration. The
// reflector's resync goroutine blocks sending into the event queue
// if the consumer errored out first.
rt::Go
kubernetes25331(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> queue(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "kubernetes/25331:79", sendOnceK, queue.get(),
                  1);
    co_await rt::yield();
    if (ctx->rng.chance(0.70))
        co_return; // consumer errored: resync send leaks
    co_await chan::recv(queue.get());
    co_return;
}

// ---------------------------------------------------------------------
// kubernetes/26980 — pod GC: the sweep goroutine and its throttle
// both park on a quota channel that the cancelled context orphaned.
rt::Go
kubernetes26980(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> quota(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> throttle(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "kubernetes/26980:38", recvOnceK,
                  quota.get());
    GOLF_GO_LEAKY(ctx, "kubernetes/26980:47", sendOnceK,
                  throttle.get(), 1);
    co_return;
}

// ---------------------------------------------------------------------
// kubernetes/30872 — federation controller: a three-stage DAG of
// informer, deliverer and reconciler all stall when the stop signal
// is consumed by only one of them. Three leaky sites.
rt::Go
kubernetes30872(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> informer(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> deliver(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> stop(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "kubernetes/30872:34", rangeDrainK,
                  informer.get());
    GOLF_GO_LEAKY(ctx, "kubernetes/30872:51", recvOnceK,
                  deliver.get());
    GOLF_GO_LEAKY(ctx, "kubernetes/30872:63", sendOnceK, stop.get(),
                  1);
    co_return;
}

// ---------------------------------------------------------------------
// kubernetes/38669 — scheduler cache: the expiration cleanup blocks
// on a condition variable whose broadcaster exited.
rt::Go
kubernetes38669Cleanup(sync::Cond* cond)
{
    co_await cond->locker()->lock();
    co_await cond->wait();
    cond->locker()->unlock();
    co_return;
}

rt::Go
kubernetes38669(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<sync::Mutex> mu(rt.make<sync::Mutex>(rt));
    gc::Local<sync::Cond> cond(rt.make<sync::Cond>(rt, mu.get()));
    GOLF_GO_LEAKY(ctx, "kubernetes/38669:40",
                  kubernetes38669Cleanup, cond.get());
    co_return; // broadcaster gone: waiter parked on cond forever
}

// ---------------------------------------------------------------------
// kubernetes/58107 — resource quota controller: the replenishment
// worker and the priority requeuer deadlock against each other's
// queues (a two-goroutine cycle).
rt::Go
kubernetes58107A(Channel<int>* hot, Channel<int>* cold)
{
    co_await chan::recv(hot); // waits for B
    co_await chan::send(cold, 1);
    co_return;
}

rt::Go
kubernetes58107B(Channel<int>* hot, Channel<int>* cold)
{
    co_await chan::recv(cold); // waits for A: cycle
    co_await chan::send(hot, 1);
    co_return;
}

rt::Go
kubernetes58107(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> hot(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> cold(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "kubernetes/58107:13", kubernetes58107A,
                  hot.get(), cold.get());
    GOLF_GO_LEAKY(ctx, "kubernetes/58107:23", kubernetes58107B,
                  hot.get(), cold.get());
    co_return;
}

// ---------------------------------------------------------------------
// kubernetes/62464 — FLAKY (~97.5%): cpu manager reconcile. The
// state reader and the checkpoint writer both stall on an RWMutex a
// poisoned writer path never released.
rt::Go
kubernetes62464Reader(sync::RWMutex* mu)
{
    co_await mu->rlock();
    mu->runlock();
    co_return;
}

rt::Go
kubernetes62464Writer(sync::RWMutex* mu)
{
    co_await mu->lock();
    mu->unlock();
    co_return;
}

rt::Go
kubernetes62464(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<sync::RWMutex> mu(rt.make<sync::RWMutex>(rt));
    const bool poisoned = ctx->rng.chance(0.60);
    if (poisoned)
        co_await mu->lock(); // writer path panicked with lock held
    GOLF_GO_LEAKY(ctx, "kubernetes/62464:115", kubernetes62464Reader,
                  mu.get());
    GOLF_GO_LEAKY(ctx, "kubernetes/62464:117", kubernetes62464Writer,
                  mu.get());
    co_return;
}

// ---------------------------------------------------------------------
// kubernetes/70277 — wait.poller: the poll goroutine and the timer
// forwarder leak when the caller abandons the result channel pair.
rt::Go
kubernetes70277(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> result(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> timer(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "kubernetes/70277:26", sendOnceK,
                  result.get(), 1);
    GOLF_GO_LEAKY(ctx, "kubernetes/70277:34", recvOnceK,
                  timer.get());
    co_return;
}

} // namespace

void
registerKubernetesPatterns(Registry& r)
{
    r.add({"kubernetes/1321", "goker",
           {"kubernetes/1321:52", "kubernetes/1321:95"}, 100, false,
           kubernetes1321});
    r.add({"kubernetes/5316", "goker", {"kubernetes/5316:58"}, 1,
           false, kubernetes5316});
    r.add({"kubernetes/6632", "goker",
           {"kubernetes/6632:21", "kubernetes/6632:29"}, 1, false,
           kubernetes6632});
    r.add({"kubernetes/10182", "goker", {"kubernetes/10182:95"}, 100,
           false, kubernetes10182});
    r.add({"kubernetes/11298", "goker",
           {"kubernetes/11298:20", "kubernetes/11298:106"}, 100,
           false, kubernetes11298});
    r.add({"kubernetes/16697", "goker", {"kubernetes/16697:86"}, 1,
           false, kubernetes16697});
    r.add({"kubernetes/25331", "goker", {"kubernetes/25331:79"}, 100,
           false, kubernetes25331});
    r.add({"kubernetes/26980", "goker",
           {"kubernetes/26980:38", "kubernetes/26980:47"}, 1, false,
           kubernetes26980});
    r.add({"kubernetes/30872", "goker",
           {"kubernetes/30872:34", "kubernetes/30872:51",
            "kubernetes/30872:63"},
           1, false, kubernetes30872});
    r.add({"kubernetes/38669", "goker", {"kubernetes/38669:40"}, 1,
           false, kubernetes38669});
    r.add({"kubernetes/58107", "goker",
           {"kubernetes/58107:13", "kubernetes/58107:23"}, 1, false,
           kubernetes58107});
    r.add({"kubernetes/62464", "goker",
           {"kubernetes/62464:115", "kubernetes/62464:117"}, 100,
           false, kubernetes62464});
    r.add({"kubernetes/70277", "goker",
           {"kubernetes/70277:26", "kubernetes/70277:34"}, 1, false,
           kubernetes70277});
}

} // namespace golf::microbench
