/**
 * @file
 * Microbenchmark corpus registry.
 *
 * The paper's RQ1(a)/RQ2 corpus: 73 microbenchmarks with known
 * partial deadlocks (121 leaky `go` instructions) taken from GoBench
 * ("goker", Yuan et al.) and the CGO'24 leak collection
 * ("cgo-examples", Saioc et al.), plus 32 fixed ("correct") variants
 * for the Figure 4 overhead comparison — 105 programs total.
 *
 * Each pattern is one standalone program body. Leaky spawn sites are
 * registered through PatternCtx::expectLeak with the paper's
 * benchmark:line label, so the harness can match GOLF reports to
 * expected sites exactly the way the artifact's tester matches its
 * `// deadlocks:` annotations.
 */
#ifndef GOLFCC_MICROBENCH_REGISTRY_HPP
#define GOLFCC_MICROBENCH_REGISTRY_HPP

#include <map>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"
#include "support/rng.hpp"

namespace golf::microbench {

/** Per-run context handed to pattern bodies. */
struct PatternCtx
{
    rt::Runtime* rt = nullptr;
    /** Per-run pattern-internal randomness (seeded by the harness). */
    support::Rng rng{1};
    /** GOMAXPROCS of the run; some ported bugs' manifestation
     *  probability scales with available parallelism. */
    int procs = 1;
    /** Label -> spawn-site "file:line" for each leaky go site. */
    std::map<std::string, std::string> siteOfLabel;
    /** Expected individual leaks per label for this run. */
    std::map<std::string, int> expectedLeaks;

    /**
     * Record that the goroutine just spawned at a leaky `go` site is
     * expected to (possibly) deadlock. label follows the paper's
     * "project/issue:line" convention (e.g. "cockroach/6181:58").
     */
    void
    expectLeak(const std::string& label, rt::Goroutine* g)
    {
        siteOfLabel[label] = g->spawnSite().str();
        ++expectedLeaks[label];
    }
};

/** A microbenchmark program. */
struct Pattern
{
    /** Paper-style name, e.g. "cockroach/6181" or "cgo/ex1". */
    std::string name;
    /** Corpus of origin: "goker" or "cgo-examples". */
    std::string suite;
    /** Labels of the leaky go sites this program may produce. */
    std::vector<std::string> leakSites;
    /** Flakiness score 1 (deterministic) .. 10000 (Section 6.1). */
    int flakiness = 1;
    /** True for fixed variants (no deadlock expected). */
    bool correct = false;
    /** The program body; runs as a goroutine, may spawn others. */
    rt::Go (*body)(PatternCtx*) = nullptr;
    /**
     * Model-checking size class: measured choice points along the
     * default schedule of a single instance (golf_mc -measure), the
     * sort key behind `golf_mc -smallest N` and the CI subset.
     * 0 = unmeasured; treated as largest.
     */
    int mcBound = 0;
};

class Registry
{
  public:
    /** The process-wide corpus (built on first use). */
    static Registry& instance();

    void add(Pattern p);

    /** Record a pattern's measured model-checking size class. */
    void setMcBound(const std::string& name, bool correct, int bound);

    const std::vector<Pattern>& all() const { return patterns_; }

    std::vector<const Pattern*> deadlocking() const;
    std::vector<const Pattern*> corrects() const;

    const Pattern* find(const std::string& name) const;

    /** Total leaky go sites across deadlocking patterns. */
    size_t totalLeakSites() const;

  private:
    Registry() = default;
    std::vector<Pattern> patterns_;
};

/// @{ Per-file registration hooks (called once by Registry::instance).
void registerCgoPatterns(Registry& r);
void registerCockroachPatterns(Registry& r);
void registerEtcdPatterns(Registry& r);
void registerGrpcPatterns(Registry& r);
void registerHugoPatterns(Registry& r);
void registerKubernetesPatterns(Registry& r);
void registerMobyPatterns(Registry& r);
void registerMiscPatterns(Registry& r);
void registerSyncPatterns(Registry& r);
void registerCorrectPatterns(Registry& r);
/// @}

} // namespace golf::microbench

#endif // GOLFCC_MICROBENCH_REGISTRY_HPP
