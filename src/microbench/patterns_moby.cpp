/**
 * @file
 * goker/GoBench microbenchmarks ported from Moby (Docker) issues.
 * 13 benchmarks; moby/27282 and moby/33781 are Table 1 flaky rows
 * (82.75% and 97%).
 */
#include "microbench/patterns_common.hpp"

namespace golf::microbench {
namespace {

rt::Go
recvOnceM(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

rt::Go
sendOnceM(Channel<int>* ch, int v)
{
    co_await chan::send(ch, v);
    co_return;
}

rt::Go
rangeDrainM(Channel<int>* ch)
{
    for (;;) {
        auto r = co_await chan::recv(ch);
        if (!r.ok)
            break;
    }
    co_return;
}

// ---------------------------------------------------------------------
// moby/4395 — attach stream: the stdin copier blocks on a stream
// the detached container never reads.
rt::Go
moby4395(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> stdinPipe(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "moby/4395:71", sendOnceM, stdinPipe.get(), 1);
    co_return;
}

// ---------------------------------------------------------------------
// moby/4951 — devmapper: a device-removal worker holds the devices
// mutex while waiting for an activation signal; a second worker
// queues on the mutex behind it.
struct DevSet4951 : gc::Object
{
    sync::Mutex* mu = nullptr;
    Channel<int>* activated = nullptr;

    void
    trace(gc::Marker& m) override
    {
        m.mark(mu);
        m.mark(activated);
    }
};

rt::Go
moby4951Remover(DevSet4951* d)
{
    co_await d->mu->lock();
    co_await chan::recv(d->activated);
    d->mu->unlock();
    co_return;
}

rt::Go
moby4951Creator(DevSet4951* d)
{
    co_await d->mu->lock();
    d->mu->unlock();
    co_return;
}

rt::Go
moby4951(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<DevSet4951> dev(rt.make<DevSet4951>());
    dev->mu = rt.make<sync::Mutex>(rt);
    dev->activated = makeChan<int>(rt, 0);
    GOLF_GO_LEAKY(ctx, "moby/4951:23", moby4951Remover, dev.get());
    co_await rt::sleepFor(100 * kMicrosecond);
    GOLF_GO_LEAKY(ctx, "moby/4951:31", moby4951Creator, dev.get());
    co_return;
}

// ---------------------------------------------------------------------
// moby/7559 — port allocator: the release worker waits on a nil map
// channel when the allocator was never initialized.
rt::Go
moby7559(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    Channel<int>* uninitialized = nullptr;
    GOLF_GO_LEAKY(ctx, "moby/7559:44", recvOnceM, uninitialized);
    (void)rt;
    co_return;
}

// ---------------------------------------------------------------------
// moby/17176 — devmapper deactivation: the poll loop waits for a
// busy-device event the failed udev path never emits.
rt::Go
moby17176(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> udev(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "moby/17176:62", recvOnceM, udev.get());
    co_return;
}

// ---------------------------------------------------------------------
// moby/21233 — pull progress: the progress pump, the throttler and
// the cancellation forwarder all strand when the client detaches
// mid-pull. Three leaky sites.
rt::Go
moby21233Pump(Channel<int>* progress)
{
    for (int i = 0;; ++i)
        co_await chan::send(progress, i);
    co_return;
}

rt::Go
moby21233(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> progress(makeChan<int>(rt, 1));
    gc::Local<Channel<int>> throttled(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> cancel(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "moby/21233:59", moby21233Pump,
                  progress.get());
    GOLF_GO_LEAKY(ctx, "moby/21233:74", recvOnceM, throttled.get());
    GOLF_GO_LEAKY(ctx, "moby/21233:88", sendOnceM, cancel.get(), 1);
    co_await chan::recv(progress.get()); // client reads once, detaches
    co_return;
}

// ---------------------------------------------------------------------
// moby/25384 — volume purge: the unmount waiter waits on a
// WaitGroup that the skipped mount path never decrements, and the
// retry goroutine blocks behind it.
rt::Go
moby25384Waiter(sync::WaitGroup* wg)
{
    co_await wg->wait();
    co_return;
}

rt::Go
moby25384(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<sync::WaitGroup> wg(rt.make<sync::WaitGroup>(rt));
    gc::Local<Channel<int>> retry(makeChan<int>(rt, 0));
    wg->add(1); // the matching Done is on the skipped mount path
    GOLF_GO_LEAKY(ctx, "moby/25384:12", moby25384Waiter, wg.get());
    GOLF_GO_LEAKY(ctx, "moby/25384:19", recvOnceM, retry.get());
    co_return;
}

// ---------------------------------------------------------------------
// moby/27282 — FLAKY (Table 1 82.75%): logs follow. The log watcher
// keeps following rotated files; the consumer detaches on a timing-
// dependent path and strands both the follower and its rotation
// notifier.
rt::Go
moby27282(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> logs(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> rotate(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "moby/27282:65", sendOnceM, logs.get(), 1);
    GOLF_GO_LEAKY(ctx, "moby/27282:213", recvOnceM, rotate.get());
    co_await rt::yield();
    if (ctx->rng.chance(0.35))
        co_return; // consumer detached: follower pair leaks
    co_await chan::recv(logs.get());
    co_await chan::send(rotate.get(), 1);
    co_return;
}

// ---------------------------------------------------------------------
// moby/28462 — health check: the probe runner and the state monitor
// park on a container-state channel pair after dockerd restarts.
rt::Go
moby28462(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> probes(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> state(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "moby/28462:24", rangeDrainM, probes.get());
    GOLF_GO_LEAKY(ctx, "moby/28462:53", sendOnceM, state.get(), 1);
    co_return;
}

// ---------------------------------------------------------------------
// moby/29733 — plugin enable: the manifest fetcher waits on a
// response that the failed handshake path never produces.
rt::Go
moby29733(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> manifest(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "moby/29733:31", recvOnceM, manifest.get());
    co_return;
}

// ---------------------------------------------------------------------
// moby/30408 — stats collector: the publisher blocks on a full
// 1-slot stats channel, and the subscriber registrar waits for an
// ack the dead collector loop never sends.
rt::Go
moby30408(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> statsCh(makeChan<int>(rt, 1));
    gc::Local<Channel<int>> ack(makeChan<int>(rt, 0));
    co_await chan::send(statsCh.get(), 0);
    GOLF_GO_LEAKY(ctx, "moby/30408:18", sendOnceM, statsCh.get(), 1);
    GOLF_GO_LEAKY(ctx, "moby/30408:39", recvOnceM, ack.get());
    co_return;
}

// ---------------------------------------------------------------------
// moby/33293 — libcontainerd: the exit-event processor waits on an
// event stream whose gRPC connection closed uncleanly.
rt::Go
moby33293(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> exits(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "moby/33293:36", rangeDrainM, exits.get());
    co_return;
}

// ---------------------------------------------------------------------
// moby/33781 — FLAKY (Table 1 97%): container wait. The wait
// responder sends the exit status after the client's context is
// cancelled on most schedules.
rt::Go
moby33781(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> waitC(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "moby/33781:39", sendOnceM, waitC.get(), 0);
    co_await rt::yield();
    if (ctx->rng.chance(0.60))
        co_return; // context cancelled: nobody reads the status
    co_await chan::recv(waitC.get());
    co_return;
}

// ---------------------------------------------------------------------
// moby/36114 — container restore: the restore worker holds the
// container lock while awaiting a checkpoint that never loads; the
// state reader queues behind it.
rt::Go
moby36114Restore(sync::Mutex* mu, Channel<int>* checkpoint)
{
    co_await mu->lock();
    co_await chan::recv(checkpoint);
    mu->unlock();
    co_return;
}

rt::Go
moby36114Reader(sync::Mutex* mu)
{
    co_await mu->lock();
    mu->unlock();
    co_return;
}

rt::Go
moby36114(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<sync::Mutex> mu(rt.make<sync::Mutex>(rt));
    gc::Local<Channel<int>> checkpoint(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "moby/36114:15", moby36114Restore, mu.get(),
                  checkpoint.get());
    co_await rt::sleepFor(100 * kMicrosecond);
    GOLF_GO_LEAKY(ctx, "moby/36114:23", moby36114Reader, mu.get());
    co_return;
}

} // namespace

void
registerMobyPatterns(Registry& r)
{
    r.add({"moby/4395", "goker", {"moby/4395:71"}, 1, false,
           moby4395});
    r.add({"moby/4951", "goker", {"moby/4951:23", "moby/4951:31"}, 1,
           false, moby4951});
    r.add({"moby/7559", "goker", {"moby/7559:44"}, 1, false,
           moby7559});
    r.add({"moby/17176", "goker", {"moby/17176:62"}, 1, false,
           moby17176});
    r.add({"moby/21233", "goker",
           {"moby/21233:59", "moby/21233:74", "moby/21233:88"}, 1,
           false, moby21233});
    r.add({"moby/25384", "goker", {"moby/25384:12", "moby/25384:19"},
           1, false, moby25384});
    r.add({"moby/27282", "goker", {"moby/27282:65", "moby/27282:213"},
           100, false, moby27282});
    r.add({"moby/28462", "goker", {"moby/28462:24", "moby/28462:53"},
           1, false, moby28462});
    r.add({"moby/29733", "goker", {"moby/29733:31"}, 1, false,
           moby29733});
    r.add({"moby/30408", "goker", {"moby/30408:18", "moby/30408:39"},
           1, false, moby30408});
    r.add({"moby/33293", "goker", {"moby/33293:36"}, 1, false,
           moby33293});
    r.add({"moby/33781", "goker", {"moby/33781:39"}, 100, false,
           moby33781});
    r.add({"moby/36114", "goker", {"moby/36114:15", "moby/36114:23"},
           1, false, moby36114});
}

} // namespace golf::microbench
