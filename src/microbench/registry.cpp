#include "microbench/registry.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace golf::microbench {

namespace {

/** One measured model-checking size class (golf_mc -measure):
 *  choice points along the default schedule of a single instance.
 *  Patterns not listed keep mcBound 0 (unmeasured = largest). */
struct McBoundEntry
{
    const char* name;
    bool correct;
    int bound;
};

#include "microbench/mc_bounds.inc"

void
applyMcBounds(Registry& r)
{
    for (const auto& e : kMcBounds) {
        if (e.bound > 0)
            r.setMcBound(e.name, e.correct, e.bound);
    }
}

} // namespace

Registry&
Registry::instance()
{
    static Registry* reg = [] {
        auto* r = new Registry();
        registerCgoPatterns(*r);
        registerCockroachPatterns(*r);
        registerEtcdPatterns(*r);
        registerGrpcPatterns(*r);
        registerHugoPatterns(*r);
        registerKubernetesPatterns(*r);
        registerMobyPatterns(*r);
        registerMiscPatterns(*r);
        registerSyncPatterns(*r);
        registerCorrectPatterns(*r);
        applyMcBounds(*r);
        return r;
    }();
    return *reg;
}

void
Registry::add(Pattern p)
{
    if (!p.body)
        support::panic("Registry::add: pattern without a body");
    for (const auto& existing : patterns_) {
        if (existing.name == p.name && existing.correct == p.correct)
            support::panic("Registry::add: duplicate pattern " + p.name);
    }
    patterns_.push_back(std::move(p));
}

void
Registry::setMcBound(const std::string& name, bool correct, int bound)
{
    for (auto& p : patterns_) {
        if (p.name == name && p.correct == correct) {
            p.mcBound = bound;
            return;
        }
    }
    support::panic("Registry::setMcBound: unknown pattern " + name);
}

std::vector<const Pattern*>
Registry::deadlocking() const
{
    std::vector<const Pattern*> out;
    for (const auto& p : patterns_) {
        if (!p.correct)
            out.push_back(&p);
    }
    return out;
}

std::vector<const Pattern*>
Registry::corrects() const
{
    std::vector<const Pattern*> out;
    for (const auto& p : patterns_) {
        if (p.correct)
            out.push_back(&p);
    }
    return out;
}

const Pattern*
Registry::find(const std::string& name) const
{
    for (const auto& p : patterns_) {
        if (p.name == name && !p.correct)
            return &p;
    }
    return nullptr;
}

size_t
Registry::totalLeakSites() const
{
    size_t n = 0;
    for (const auto& p : patterns_) {
        if (!p.correct)
            n += p.leakSites.size();
    }
    return n;
}

} // namespace golf::microbench
