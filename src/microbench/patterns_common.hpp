/**
 * @file
 * Shared includes and helpers for the microbenchmark corpus.
 *
 * Pattern files port goroutine-leak patterns from GoBench/goker and
 * the CGO'24 collection into golfcc's Go-dialect: `rt::Go` coroutine
 * bodies, GOLF_GO spawns, chan/sync operations. Each leaky `go` site
 * is registered via ctx->expectLeak with the paper's benchmark:line
 * label so Table 1 can be regenerated verbatim.
 */
#ifndef GOLFCC_MICROBENCH_PATTERNS_COMMON_HPP
#define GOLFCC_MICROBENCH_PATTERNS_COMMON_HPP

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "microbench/registry.hpp"
#include "runtime/local.hpp"
#include "runtime/timeapi.hpp"
#include "sync/condvar.hpp"
#include "sync/mutex.hpp"
#include "sync/rwmutex.hpp"
#include "sync/semaphore.hpp"
#include "sync/waitgroup.hpp"

namespace golf::microbench {

using chan::Channel;
using chan::RecvResult;
using chan::Unit;
using chan::defaultCase;
using chan::kSelectDefault;
using chan::makeChan;
using chan::recvCase;
using chan::sendCase;
using support::VTime;
using support::kMicrosecond;
using support::kMillisecond;
using support::kSecond;

/** Spawn-and-register helper for leaky go sites. */
#define GOLF_GO_LEAKY(ctx, label, ...) \
    (ctx)->expectLeak( \
        (label), GOLF_GO(*(ctx)->rt __VA_OPT__(,) __VA_ARGS__))

} // namespace golf::microbench

#endif // GOLFCC_MICROBENCH_PATTERNS_COMMON_HPP
