/**
 * @file
 * goker/GoBench microbenchmarks ported from etcd issues. 6
 * benchmarks; etcd/7443 is the hardest Table 1 row: five leaky go
 * sites whose bug manifests extremely rarely, and essentially only
 * under higher parallelism (detected 0-3 times per 100 runs at 10
 * virtual cores, 0 below).
 */
#include "microbench/patterns_common.hpp"

namespace golf::microbench {
namespace {

rt::Go
recvOnceE(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

rt::Go
sendOnceE(Channel<int>* ch, int v)
{
    co_await chan::send(ch, v);
    co_return;
}

// ---------------------------------------------------------------------
// etcd/5509 — watcher stream: the event forwarder blocks sending to
// a subscriber that unsubscribed without draining.
rt::Go
etcd5509(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> sub(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "etcd/5509:28", sendOnceE, sub.get(), 1);
    co_return; // unsubscribe drops the channel undrained
}

// ---------------------------------------------------------------------
// etcd/6708 — lease keepalive: the renew loop waits for a response
// that the closed stream path never delivers.
rt::Go
etcd6708(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> renew(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "etcd/6708:47", recvOnceE, renew.get());
    co_return;
}

// ---------------------------------------------------------------------
// etcd/6857 — raft node stop: the status reporter selects over a
// status/stop channel pair of a node loop that already exited, and
// the stop acknowledger blocks sending into the same dead loop.
rt::Go
etcd6857Status(Channel<int>* status, Channel<int>* done)
{
    co_await chan::select(chan::recvCase(status),
                          chan::recvCase(done));
    co_return;
}

rt::Go
etcd6857(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> status(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> done(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> stop(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "etcd/6857:38", etcd6857Status, status.get(),
                  done.get());
    GOLF_GO_LEAKY(ctx, "etcd/6857:45", sendOnceE, stop.get(), 1);
    co_return; // node loop gone: nobody serves status/done/stop
}

// ---------------------------------------------------------------------
// etcd/6873 — watch broadcast: the coalescing loop ranges over a
// donec that the cancelled watcher never closes.
rt::Go
etcd6873Loop(Channel<int>* donec)
{
    for (;;) {
        auto r = co_await chan::recv(donec);
        if (!r.ok)
            break;
    }
    co_return;
}

rt::Go
etcd6873(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> donec(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "etcd/6873:30", etcd6873Loop, donec.get());
    co_return;
}

// ---------------------------------------------------------------------
// etcd/7443 — FLAKY, five sites (Table 1 ~0.25-0.75%): concurrency
// between client close and lease granting. The bug needs a very
// tight race between the session's keepalive teardown and five
// cooperating goroutines; the window essentially only opens under
// real parallelism (wider with more cores). We model the
// manifestation probability as proportional to the virtual core
// count, calibrated to the paper's 0/0/0/1-3 row.
rt::Go
etcd7443(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    // The teardown race window only opens under wide parallelism
    // (the original bug needs the keepalive teardown to overlap all
    // five helpers); below eight-way parallelism it is negligible.
    const double window = ctx->procs >= 8 ? 0.0015 : 0.000004;
    const bool manifest = ctx->rng.chance(window);
    gc::Local<Channel<int>> grant(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> keepalive(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> session(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "etcd/7443:96", recvOnceE, grant.get());
    GOLF_GO_LEAKY(ctx, "etcd/7443:128", recvOnceE, keepalive.get());
    GOLF_GO_LEAKY(ctx, "etcd/7443:215", sendOnceE, session.get(), 1);
    GOLF_GO_LEAKY(ctx, "etcd/7443:221", sendOnceE, session.get(), 2);
    GOLF_GO_LEAKY(ctx, "etcd/7443:225", recvOnceE, grant.get());
    if (manifest)
        co_return; // racy close order: all five park forever
    // Healthy order: everything pairs up and terminates.
    co_await chan::send(grant.get(), 1);
    co_await chan::send(grant.get(), 2);
    co_await chan::send(keepalive.get(), 1);
    co_await chan::recv(session.get());
    co_await chan::recv(session.get());
    co_return;
}

// ---------------------------------------------------------------------
// etcd/10492 — lessor checkpoint: the checkpointer and the expiry
// loop both wait on a demoted-leader channel pair.
rt::Go
etcd10492(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> checkpoint(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> expiry(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "etcd/10492:41", recvOnceE, checkpoint.get());
    GOLF_GO_LEAKY(ctx, "etcd/10492:55", recvOnceE, expiry.get());
    co_return;
}

} // namespace

void
registerEtcdPatterns(Registry& r)
{
    r.add({"etcd/5509", "goker", {"etcd/5509:28"}, 1, false,
           etcd5509});
    r.add({"etcd/6708", "goker", {"etcd/6708:47"}, 1, false,
           etcd6708});
    r.add({"etcd/6857", "goker", {"etcd/6857:38", "etcd/6857:45"}, 1,
           false, etcd6857});
    r.add({"etcd/6873", "goker", {"etcd/6873:30"}, 1, false,
           etcd6873});
    r.add({"etcd/7443", "goker",
           {"etcd/7443:96", "etcd/7443:128", "etcd/7443:215",
            "etcd/7443:221", "etcd/7443:225"},
           10000, false, etcd7443});
    r.add({"etcd/10492", "goker",
           {"etcd/10492:41", "etcd/10492:55"}, 1, false, etcd10492});
}

} // namespace golf::microbench
