/**
 * @file
 * goker/GoBench microbenchmarks ported from Hugo issues. 3
 * benchmarks; hugo/3261 is a Table 1 flaky row (~95.75%, dipping at
 * high core counts).
 */
#include "microbench/patterns_common.hpp"

namespace golf::microbench {
namespace {

rt::Go
recvOnceH(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

rt::Go
sendOnceH(Channel<int>* ch, int v)
{
    co_await chan::send(ch, v);
    co_return;
}

// ---------------------------------------------------------------------
// hugo/3251 — page renderer: a content worker and its error
// forwarder park on pipeline channels after a template error aborts
// the site build.
rt::Go
hugo3251(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> pages(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> errs(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "hugo/3251:51", recvOnceH, pages.get());
    GOLF_GO_LEAKY(ctx, "hugo/3251:58", sendOnceH, errs.get(), 1);
    co_return; // build aborted; pipeline dropped
}

// ---------------------------------------------------------------------
// hugo/3261 — FLAKY (Table 1 ~95.75%): .GetPage cache fill. Two
// goroutines race to fill the page cache through an unbuffered
// channel; on the unlucky input path the reader that would consume
// the second fill exits early.
rt::Go
hugo3261(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> fill(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> ack(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "hugo/3261:54", sendOnceH, fill.get(), 1);
    GOLF_GO_LEAKY(ctx, "hugo/3261:62", recvOnceH, ack.get());
    co_await rt::yield();
    if (ctx->rng.chance(0.55))
        co_return; // early-exit path: filler and acker leak
    co_await chan::recv(fill.get());
    co_await chan::send(ack.get(), 1);
    co_return;
}

// ---------------------------------------------------------------------
// hugo/5379 — site server rebuild: the file watcher and the rebuild
// throttler both wait on events from a watcher that failed to start.
rt::Go
hugo5379Throttle(Channel<int>* rebuild)
{
    for (;;) {
        auto r = co_await chan::recv(rebuild);
        if (!r.ok)
            break;
    }
    co_return;
}

rt::Go
hugo5379(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> events(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> rebuild(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "hugo/5379:33", recvOnceH, events.get());
    GOLF_GO_LEAKY(ctx, "hugo/5379:41", hugo5379Throttle,
                  rebuild.get());
    co_return;
}

} // namespace

void
registerHugoPatterns(Registry& r)
{
    r.add({"hugo/3251", "goker", {"hugo/3251:51", "hugo/3251:58"}, 1,
           false, hugo3251});
    r.add({"hugo/3261", "goker", {"hugo/3261:54", "hugo/3261:62"},
           100, false, hugo3261});
    r.add({"hugo/5379", "goker", {"hugo/5379:33", "hugo/5379:41"}, 1,
           false, hugo5379});
}

} // namespace golf::microbench
