/**
 * @file
 * Fixed ("correct") variants for 32 of the microbenchmarks — the
 * programs behind the "correct" half of Figure 4's marking-phase
 * comparison (105 programs total: 73 deadlocking + 32 fixed). Each
 * variant performs the same concurrency work as its buggy original
 * but applies the upstream fix: channels are closed/ drained, locks
 * released, WaitGroups balanced. No goroutine leaks; GOLF must stay
 * silent on all of them (that is asserted by the corpus tests).
 */
#include "microbench/patterns_common.hpp"

namespace golf::microbench {
namespace {

rt::Go
drainAll(Channel<int>* ch)
{
    for (;;) {
        auto r = co_await chan::recv(ch);
        if (!r.ok)
            break;
    }
    co_return;
}

rt::Go
sendOnceC(Channel<int>* ch, int v)
{
    co_await chan::send(ch, v);
    co_return;
}

rt::Go
recvOnceC(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

// --------------------------------------------------------------- cgo

rt::Go
cgoEx1Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<Unit>> done(makeChan<Unit>(rt, 0));
    GOLF_GO(rt, +[](Channel<Unit>* d) -> rt::Go {
        rt::busy(50 * kMicrosecond);
        co_await chan::send(d, Unit{});
        co_return;
    }, done.get());
    co_await chan::recv(done.get()); // fix: consume the completion
    co_return;
}

rt::Go
cgoEx2Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    // Fix: buffered result channel lets the worker finish even when
    // the caller times out.
    gc::Local<Channel<int>> result(makeChan<int>(rt, 1));
    GOLF_GO(rt, +[](Channel<int>* r) -> rt::Go {
        co_await rt::sleepFor(2 * kMillisecond);
        co_await chan::send(r, 42);
        co_return;
    }, result.get());
    auto* timeout = rt::after(rt, kMillisecond);
    int v = 0;
    co_await chan::select(chan::recvCase(result.get(), &v),
                          chan::recvCase(timeout));
    co_await rt::sleepFor(3 * kMillisecond); // worker drains into buf
    co_return;
}

rt::Go
cgoEx3Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    // Fix: capacity matches the fan-out, so losers never block.
    gc::Local<Channel<int>> replies(makeChan<int>(rt, 4));
    for (int i = 0; i < 4; ++i)
        GOLF_GO(rt, sendOnceC, replies.get(), i);
    co_await chan::recv(replies.get());
    co_return;
}

rt::Go
cgoEx4Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> out(makeChan<int>(rt, 0));
    GOLF_GO(rt, +[](Channel<int>* o) -> rt::Go {
        co_await chan::send(o, 1);
        co_return; // fix: single send
    }, out.get());
    co_await chan::recv(out.get());
    co_return;
}

rt::Go
cgoEx5Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> e(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> d(makeChan<int>(rt, 0));
    GOLF_GO(rt, drainAll, e.get());
    GOLF_GO(rt, drainAll, d.get());
    // Fix: WaitForResults is always called.
    chan::close(e.get());
    chan::close(d.get());
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

rt::Go
cgoEx6Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> batch(makeChan<int>(rt, 4));
    gc::Local<Channel<Unit>> gate(makeChan<Unit>(rt, 1));
    GOLF_GO(rt, +[](Channel<int>* b) -> rt::Go {
        for (int i = 0; i < 8; ++i)
            co_await chan::send(b, i);
        chan::close(b); // fix: bounded production + close
        co_return;
    }, batch.get());
    GOLF_GO(rt, +[](Channel<Unit>* g, Channel<int>* b) -> rt::Go {
        co_await chan::recv(g);
        for (;;) {
            auto r = co_await chan::recv(b);
            if (!r.ok)
                break;
        }
        co_return;
    }, gate.get(), batch.get());
    co_await chan::send(gate.get(), Unit{}); // fix: gate is opened
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

// --------------------------------------------------------- cockroach

rt::Go
cockroach584Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> stopper(makeChan<int>(rt, 0));
    GOLF_GO(rt, drainAll, stopper.get());
    chan::close(stopper.get()); // fix: stopper closed on all paths
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

rt::Go
cockroach1055Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> drain(makeChan<int>(rt, 3)); // fix: cap
    GOLF_GO(rt, sendOnceC, drain.get(), 1);
    GOLF_GO(rt, sendOnceC, drain.get(), 2);
    GOLF_GO(rt, sendOnceC, drain.get(), 3);
    co_await chan::recv(drain.get());
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

rt::Go
cockroach2448Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> queue(makeChan<int>(rt, 1));
    gc::Local<Channel<Unit>> events(makeChan<Unit>(rt, 0));
    co_await chan::send(queue.get(), 0);
    GOLF_GO(rt, sendOnceC, queue.get(), 1);
    GOLF_GO(rt, +[](Channel<Unit>* ev) -> rt::Go {
        for (;;) {
            auto r = co_await chan::recv(ev);
            if (!r.ok)
                break;
        }
        co_return;
    }, events.get());
    // Fix: processor drains the queue and closes the event stream.
    co_await chan::recv(queue.get());
    co_await chan::recv(queue.get());
    chan::close(events.get());
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

rt::Go
cockroach6181Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> replicaCh(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> errCh(makeChan<int>(rt, 0));
    GOLF_GO(rt, drainAll, replicaCh.get());
    GOLF_GO(rt, drainAll, errCh.get());
    // Fix: defer-style close on every path.
    chan::close(replicaCh.get());
    chan::close(errCh.get());
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

rt::Go
cockroach7504Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> leaseDone(makeChan<int>(rt, 1));
    gc::Local<Channel<int>> indexDone(makeChan<int>(rt, 1));
    GOLF_GO(rt, sendOnceC, leaseDone.get(), 1);
    GOLF_GO(rt, sendOnceC, indexDone.get(), 1);
    co_await chan::recv(leaseDone.get());
    co_await chan::recv(indexDone.get());
    co_return;
}

rt::Go
cockroach9935Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> replies(makeChan<int>(rt, 2)); // fix
    GOLF_GO(rt, sendOnceC, replies.get(), 1);
    GOLF_GO(rt, sendOnceC, replies.get(), 2);
    co_await chan::recv(replies.get());
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

rt::Go
cockroach13197Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> txnDone(makeChan<int>(rt, 0));
    GOLF_GO(rt, recvOnceC, txnDone.get());
    co_await chan::send(txnDone.get(), 1); // fix: cleanup signals
    co_return;
}

rt::Go
cockroach13755Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> rows(makeChan<int>(rt, 0));
    gc::Local<Channel<Unit>> cancel(makeChan<Unit>(rt, 0));
    GOLF_GO(rt, +[](Channel<int>* r, Channel<Unit>* c) -> rt::Go {
        for (int i = 0; i < 8; ++i) {
            // Fix: the scanner honours cancellation.
            int idx = co_await chan::select(chan::sendCase(r, i),
                                            chan::recvCase(c));
            if (idx == 1)
                co_return;
        }
        chan::close(r);
        co_return;
    }, rows.get(), cancel.get());
    co_await chan::recv(rows.get());
    co_await chan::recv(rows.get());
    chan::close(cancel.get()); // fix: consumer cancels on early stop
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

rt::Go
cockroach16167Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> sysCfg(makeChan<int>(rt, 0));
    GOLF_GO(rt, recvOnceC, sysCfg.get());
    GOLF_GO(rt, recvOnceC, sysCfg.get());
    co_await chan::send(sysCfg.get(), 1);
    co_await chan::send(sysCfg.get(), 2);
    co_return;
}

rt::Go
cockroach18101Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<sync::WaitGroup> wg(rt.make<sync::WaitGroup>(rt));
    wg->add(1); // fix: one Add per Done
    GOLF_GO(rt, +[](sync::WaitGroup* w) -> rt::Go {
        co_await w->wait();
        co_return;
    }, wg.get());
    wg->done();
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

// -------------------------------------------------------------- etcd

rt::Go
etcd5509Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> sub(makeChan<int>(rt, 0));
    GOLF_GO(rt, sendOnceC, sub.get(), 1);
    co_await chan::recv(sub.get()); // fix: drain before unsubscribe
    co_return;
}

rt::Go
etcd6708Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> renew(makeChan<int>(rt, 0));
    GOLF_GO(rt, recvOnceC, renew.get());
    co_await chan::send(renew.get(), 1); // fix: stream delivers
    co_return;
}

rt::Go
etcd6873Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> donec(makeChan<int>(rt, 0));
    GOLF_GO(rt, drainAll, donec.get());
    chan::close(donec.get()); // fix: watcher closes donec
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

rt::Go
etcd7443Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> grant(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> keepalive(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> session(makeChan<int>(rt, 0));
    GOLF_GO(rt, recvOnceC, grant.get());
    GOLF_GO(rt, recvOnceC, keepalive.get());
    GOLF_GO(rt, sendOnceC, session.get(), 1);
    GOLF_GO(rt, sendOnceC, session.get(), 2);
    GOLF_GO(rt, recvOnceC, grant.get());
    co_await chan::send(grant.get(), 1);
    co_await chan::send(grant.get(), 2);
    co_await chan::send(keepalive.get(), 1);
    co_await chan::recv(session.get());
    co_await chan::recv(session.get());
    co_return;
}

// -------------------------------------------------------------- grpc

rt::Go
grpc660Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> results(makeChan<int>(rt, 1)); // fix
    gc::Local<Channel<int>> workerDone(makeChan<int>(rt, 0));
    GOLF_GO(rt, sendOnceC, results.get(), 1);
    GOLF_GO(rt, recvOnceC, workerDone.get());
    co_await chan::send(workerDone.get(), 1);
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

rt::Go
grpc1275Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> recvBuf(makeChan<int>(rt, 0));
    GOLF_GO(rt, recvOnceC, recvBuf.get());
    co_await chan::send(recvBuf.get(), 1); // fix: closer flushes
    co_return;
}

rt::Go
grpc1460Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> ping(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> settings(makeChan<int>(rt, 0));
    GOLF_GO(rt, sendOnceC, ping.get(), 1);
    GOLF_GO(rt, sendOnceC, settings.get(), 1);
    co_await chan::recv(ping.get());
    co_await chan::recv(settings.get());
    co_return;
}

rt::Go
grpc2166Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> control(makeChan<int>(rt, 1));
    co_await chan::send(control.get(), 0);
    GOLF_GO(rt, sendOnceC, control.get(), 1);
    co_await chan::recv(control.get()); // fix: loop keeps draining
    co_await chan::recv(control.get());
    co_return;
}

rt::Go
grpc3017Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    // Fix: readiness handed over through a channel, not a racy flag.
    gc::Local<Channel<Unit>> ready(makeChan<Unit>(rt, 3));
    GOLF_GO(rt, +[](Channel<Unit>* rdy) -> rt::Go {
        for (int i = 0; i < 3; ++i)
            co_await chan::send(rdy, Unit{});
        co_return;
    }, ready.get());
    for (int i = 0; i < 3; ++i) {
        GOLF_GO(rt, +[](Channel<Unit>* rdy) -> rt::Go {
            co_await chan::recv(rdy);
            co_return;
        }, ready.get());
    }
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

// -------------------------------------------------------------- hugo

rt::Go
hugo3261Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> fill(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> ack(makeChan<int>(rt, 0));
    GOLF_GO(rt, sendOnceC, fill.get(), 1);
    GOLF_GO(rt, recvOnceC, ack.get());
    co_await chan::recv(fill.get());
    co_await chan::send(ack.get(), 1);
    co_return;
}

// -------------------------------------------------------- kubernetes

rt::Go
kubernetes1321Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> stopCh(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> tick(makeChan<int>(rt, 0));
    GOLF_GO(rt, recvOnceC, stopCh.get());
    GOLF_GO(rt, sendOnceC, tick.get(), 1);
    chan::close(stopCh.get()); // fix: deferred close
    co_await chan::recv(tick.get());
    co_return;
}

rt::Go
kubernetes25331Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> queue(makeChan<int>(rt, 0));
    GOLF_GO(rt, sendOnceC, queue.get(), 1);
    co_await chan::recv(queue.get());
    co_return;
}

rt::Go
kubernetes62464Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<sync::RWMutex> mu(rt.make<sync::RWMutex>(rt));
    co_await mu->lock();
    mu->unlock(); // fix: deferred unlock on every path
    GOLF_GO(rt, +[](sync::RWMutex* m) -> rt::Go {
        co_await m->rlock();
        m->runlock();
        co_return;
    }, mu.get());
    GOLF_GO(rt, +[](sync::RWMutex* m) -> rt::Go {
        co_await m->lock();
        m->unlock();
        co_return;
    }, mu.get());
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

// -------------------------------------------------------------- moby

rt::Go
moby27282Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> logs(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> rotate(makeChan<int>(rt, 0));
    GOLF_GO(rt, sendOnceC, logs.get(), 1);
    GOLF_GO(rt, recvOnceC, rotate.get());
    co_await chan::recv(logs.get());
    co_await chan::send(rotate.get(), 1);
    co_return;
}

rt::Go
moby30408Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> statsCh(makeChan<int>(rt, 1));
    gc::Local<Channel<int>> ack(makeChan<int>(rt, 0));
    co_await chan::send(statsCh.get(), 0);
    GOLF_GO(rt, sendOnceC, statsCh.get(), 1);
    GOLF_GO(rt, recvOnceC, ack.get());
    co_await chan::recv(statsCh.get()); // fix: collector loop lives
    co_await chan::recv(statsCh.get());
    co_await chan::send(ack.get(), 1);
    co_return;
}

rt::Go
moby33781Fixed(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> waitC(makeChan<int>(rt, 1)); // fix: cap 1
    GOLF_GO(rt, sendOnceC, waitC.get(), 0);
    co_await rt::sleepFor(kMillisecond);
    co_return;
}

} // namespace

void
registerCorrectPatterns(Registry& r)
{
    struct Entry
    {
        const char* name;
        const char* suite;
        rt::Go (*body)(PatternCtx*);
    };
    const Entry entries[] = {
        {"cgo/ex1", "cgo-examples", cgoEx1Fixed},
        {"cgo/ex2", "cgo-examples", cgoEx2Fixed},
        {"cgo/ex3", "cgo-examples", cgoEx3Fixed},
        {"cgo/ex4", "cgo-examples", cgoEx4Fixed},
        {"cgo/ex5", "cgo-examples", cgoEx5Fixed},
        {"cgo/ex6", "cgo-examples", cgoEx6Fixed},
        {"cockroach/584", "goker", cockroach584Fixed},
        {"cockroach/1055", "goker", cockroach1055Fixed},
        {"cockroach/2448", "goker", cockroach2448Fixed},
        {"cockroach/6181", "goker", cockroach6181Fixed},
        {"cockroach/7504", "goker", cockroach7504Fixed},
        {"cockroach/9935", "goker", cockroach9935Fixed},
        {"cockroach/13197", "goker", cockroach13197Fixed},
        {"cockroach/13755", "goker", cockroach13755Fixed},
        {"cockroach/16167", "goker", cockroach16167Fixed},
        {"cockroach/18101", "goker", cockroach18101Fixed},
        {"etcd/5509", "goker", etcd5509Fixed},
        {"etcd/6708", "goker", etcd6708Fixed},
        {"etcd/6873", "goker", etcd6873Fixed},
        {"etcd/7443", "goker", etcd7443Fixed},
        {"grpc/660", "goker", grpc660Fixed},
        {"grpc/1275", "goker", grpc1275Fixed},
        {"grpc/1460", "goker", grpc1460Fixed},
        {"grpc/2166", "goker", grpc2166Fixed},
        {"grpc/3017", "goker", grpc3017Fixed},
        {"hugo/3261", "goker", hugo3261Fixed},
        {"kubernetes/1321", "goker", kubernetes1321Fixed},
        {"kubernetes/25331", "goker", kubernetes25331Fixed},
        {"kubernetes/62464", "goker", kubernetes62464Fixed},
        {"moby/27282", "goker", moby27282Fixed},
        {"moby/30408", "goker", moby30408Fixed},
        {"moby/33781", "goker", moby33781Fixed},
    };
    for (const Entry& e : entries)
        r.add({e.name, e.suite, {}, 1, true, e.body});
}

} // namespace golf::microbench
