/**
 * @file
 * The CGO'24 ("cgo-examples") suite: 6 microbenchmarks with 8 leaky
 * go sites, distilled from the goroutine-leak patterns reported in
 * Saioc et al., "Unveiling and Vanquishing Goroutine Leaks in
 * Enterprise Microservices". All are deterministic (flakiness 1) and
 * GOLF detects them in 100% of runs (Table 1, "Remaining" rows).
 */
#include "microbench/patterns_common.hpp"

namespace golf::microbench {
namespace {

// cgo/ex1 — "premature function return": the Listing 7 SendEmail
// shape. A done channel is returned but the caller never receives.
rt::Go
ex1AsyncTask(Channel<Unit>* done)
{
    rt::busy(50 * kMicrosecond); // the email send
    co_await chan::send(done, Unit{});
    co_return;
}

rt::Go
cgoEx1(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<Unit>> done(makeChan<Unit>(rt, 0));
    GOLF_GO_LEAKY(ctx, "cgo/ex1:104", ex1AsyncTask, done.get());
    // HandleRequest ignores the returned channel.
    co_return;
}

// cgo/ex2 — "the timeout leak": caller multiplexes a worker result
// against a timeout; on timeout the result channel is dropped and
// the worker's send blocks forever.
rt::Go
ex2Worker(Channel<int>* result)
{
    co_await rt::sleepFor(20 * kMillisecond); // slow RPC
    co_await chan::send(result, 42);
    co_return;
}

rt::Go
cgoEx2(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> result(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "cgo/ex2:31", ex2Worker, result.get());
    auto* timeout = rt::after(rt, 1 * kMillisecond);
    int v = 0;
    co_await chan::select(chan::recvCase(result.get(), &v),
                          chan::recvCase(timeout));
    co_return; // timeout always wins; result is dropped
}

// cgo/ex3 — "the NCast leak" (first-response-wins): N repliers send
// to an unbuffered channel, the caller consumes only the first.
rt::Go
ex3Replica(Channel<int>* replies, int id)
{
    co_await chan::send(replies, id);
    co_return;
}

rt::Go
cgoEx3(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> replies(makeChan<int>(rt, 0));
    for (int i = 0; i < 4; ++i)
        GOLF_GO_LEAKY(ctx, "cgo/ex3:55", ex3Replica, replies.get(), i);
    co_await chan::recv(replies.get()); // first response wins; 3 leak
    co_return;
}

// cgo/ex4 — "the double send": an error path sends on the same
// channel the success path already used; the caller receives once.
rt::Go
ex4Fetch(Channel<int>* out)
{
    co_await chan::send(out, 1);  // success value
    // A latent bug: the error handler *also* reports, and the caller
    // consumed the only receive.
    co_await chan::send(out, -1);
    co_return;
}

rt::Go
cgoEx4(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> out(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "cgo/ex4:73", ex4Fetch, out.get());
    co_await chan::recv(out.get());
    co_return;
}

// cgo/ex5 — "the early return" (Listing 3): two channel-draining
// goroutines behind an interface; the cleanup method that closes the
// channels is skipped on an early-return path. Two leaky sites.
struct FuncManager : gc::Object
{
    Channel<int>* e = nullptr;
    Channel<int>* d = nullptr;

    void
    trace(gc::Marker& m) override
    {
        m.mark(e);
        m.mark(d);
    }

    const char* objectName() const override { return "goFuncManager"; }
};

rt::Go
ex5DrainErrors(FuncManager* gfm)
{
    while (true) { // for err := range gfm.e
        auto r = co_await chan::recv(gfm->e);
        if (!r.ok)
            break;
    }
    co_return;
}

rt::Go
ex5DrainData(FuncManager* gfm)
{
    while (true) { // for data := range gfm.d
        auto r = co_await chan::recv(gfm->d);
        if (!r.ok)
            break;
    }
    co_return;
}

rt::Go
cgoEx5(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<FuncManager> gfm(rt.make<FuncManager>());
    gfm->e = makeChan<int>(rt, 0);
    gfm->d = makeChan<int>(rt, 0);
    GOLF_GO_LEAKY(ctx, "cgo/ex5:35", ex5DrainErrors, gfm.get());
    GOLF_GO_LEAKY(ctx, "cgo/ex5:38", ex5DrainData, gfm.get());
    // ConcurrentTask hits the early-return branch: WaitForResults
    // (which would close both channels) is never called.
    co_return;
}

// cgo/ex6 — "producer without consumer": a batching producer streams
// into a bounded channel; the consumer goroutine is gated on a
// readiness flag that the error path never sets. Two leaky sites:
// the producer (blocked on a full buffer) and the gate waiter.
rt::Go
ex6Producer(Channel<int>* batch)
{
    for (int i = 0;; ++i)
        co_await chan::send(batch, i); // fills cap then blocks
    co_return;
}

rt::Go
ex6GateWaiter(Channel<Unit>* gate, Channel<int>* batch)
{
    co_await chan::recv(gate); // readiness signal never arrives
    while (true) {
        auto r = co_await chan::recv(batch);
        if (!r.ok)
            break;
    }
    co_return;
}

rt::Go
cgoEx6(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> batch(makeChan<int>(rt, 4));
    gc::Local<Channel<Unit>> gate(makeChan<Unit>(rt, 0));
    GOLF_GO_LEAKY(ctx, "cgo/ex6:12", ex6Producer, batch.get());
    GOLF_GO_LEAKY(ctx, "cgo/ex6:19", ex6GateWaiter, gate.get(),
                  batch.get());
    // Initialization fails before the gate is opened.
    co_return;
}

} // namespace

void
registerCgoPatterns(Registry& r)
{
    r.add({"cgo/ex1", "cgo-examples", {"cgo/ex1:104"}, 1, false,
           cgoEx1});
    r.add({"cgo/ex2", "cgo-examples", {"cgo/ex2:31"}, 1, false,
           cgoEx2});
    r.add({"cgo/ex3", "cgo-examples", {"cgo/ex3:55"}, 1, false,
           cgoEx3});
    r.add({"cgo/ex4", "cgo-examples", {"cgo/ex4:73"}, 1, false,
           cgoEx4});
    r.add({"cgo/ex5", "cgo-examples", {"cgo/ex5:35", "cgo/ex5:38"}, 1,
           false, cgoEx5});
    r.add({"cgo/ex6", "cgo-examples", {"cgo/ex6:12", "cgo/ex6:19"}, 1,
           false, cgoEx6});
}

} // namespace golf::microbench
