#include "microbench/harness.hpp"

#include <sstream>

#include "golf/collector.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"

namespace golf::microbench {

namespace {

/** One pattern instance, started after a small random stagger. The
 *  stagger routes the instance through a timer wakeup, randomizing
 *  which virtual processor it (and its children) land on — the
 *  scheduling noise real runs get for free. */
rt::Go
instanceWrapper(PatternCtx* ctx, const Pattern* p,
                support::VTime delay)
{
    co_await rt::sleepFor(delay);
    ctx->rt->goAt(rt::Site{"<harness>", 0, "spawn"}, p->body, ctx);
    co_return;
}

/** The Figure 5 template: spawn n instances, wait, force a GC. */
rt::Go
harnessMain(PatternCtx* ctx, const Pattern* p, int n,
            support::VTime duration)
{
    for (int i = 0; i < n; ++i) {
        auto delay = static_cast<support::VTime>(
            ctx->rng.nextBelow(200 * support::kMicrosecond));
        ctx->rt->goAt(rt::Site{"<harness>", 0, "stagger"},
                      instanceWrapper, ctx, p, delay);
    }
    co_await rt::sleepFor(duration);
    co_await rt::gcNow();
    co_return;
}

} // namespace

int
instancesForFlakiness(int flakiness, int maxInstances)
{
    if (flakiness <= 1)
        return 1;
    // The artifact scales instance count with the flakiness score;
    // we clamp to keep single runs fast. Sub-linear growth: rare
    // bugs get many concurrent chances per run.
    int n = 2;
    int f = flakiness;
    while (f > 10 && n < maxInstances) {
        f /= 10;
        n *= 2;
    }
    return n > maxInstances ? maxInstances : n;
}

RunOutcome
runPatternOnce(const Pattern& p, const HarnessConfig& cfg)
{
    rt::Config rc;
    rc.procs = cfg.procs;
    rc.seed = cfg.seed;
    rc.gcMode = cfg.gcMode;
    rc.recovery = cfg.recovery;
    rc.detectEveryN = cfg.detectEveryN;
    rc.gcWorkers = cfg.gcWorkers;
    rc.heap = cfg.heap;
    rc.faults = cfg.faults;
    rc.verifyEveryGc = cfg.verifyInvariants;
    rc.race = cfg.race;
    rc.watchdog = cfg.watchdog;
    rc.guard = cfg.guard;
    rc.obs = cfg.obs;
    rc.mem = cfg.mem;

    RunOutcome out;

    rt::Runtime runtime(rc);
    PatternCtx ctx;
    ctx.rt = &runtime;
    ctx.rng = support::Rng(cfg.seed ^ 0xBE7CB37Cull);
    ctx.procs = cfg.procs;

    const int n = instancesForFlakiness(p.flakiness, cfg.maxInstances);
    rt::RunResult rr =
        runtime.runMain(harnessMain, &ctx, &p, n, cfg.duration);

    if (rr.panicked) {
        out.runtimeFailure = true;
        out.failureMessage = rr.panicMessage;
    }

    const auto& log = runtime.collector().reports();
    out.individualReports = log.total();

    // Match reports to registered leaky sites by spawn location.
    std::map<std::string, std::string> labelOfSite;
    for (const auto& [label, site] : ctx.siteOfLabel)
        labelOfSite[site] = label;
    for (const auto& r : log.all()) {
        auto it = labelOfSite.find(r.spawnSite.str());
        if (it != labelOfSite.end())
            ++out.detectedPerLabel[it->second];
        else
            ++out.unexpectedReports;
    }

    const auto& collector = runtime.collector();
    out.gcCycles = collector.cycles();
    if (out.gcCycles > 0) {
        out.avgMarkWallUs =
            static_cast<double>(collector.totalMarkWallNs()) / 1000.0 /
            static_cast<double>(out.gcCycles);
        out.avgMarkCpuUs =
            static_cast<double>(collector.totalMarkCpuNs()) / 1000.0 /
            static_cast<double>(out.gcCycles);
    }

    out.quarantined = log.quarantines().size();
    if (cfg.faults.enabled) {
        out.faultsInjected = runtime.faults().injected();
        out.containedPanics = runtime.containedPanics();
        out.faultTrace = runtime.faults().trace();
        out.spanFaultTrace = runtime.faults().spanTrace();
    }
    out.memScavenges = runtime.memScavenges();
    out.memForcedGolfs = runtime.memForcedGolfs();
    out.fatalOoms = runtime.fatalOoms();
    out.heapPeak = runtime.heap().peakLiveBytes();
    out.cancelsDelivered = runtime.cancelsDelivered();
    out.cancelDeaths = runtime.cancelDeaths();
    out.resurrections = runtime.resurrections();
    out.watchdogTriggers = runtime.watchdogTriggers();
    if (cfg.verifyInvariants)
        out.invariantViolations = runtime.verifyInvariants();
    if (cfg.captureObs) {
        if (obs::Obs* o = runtime.obs()) {
            out.obsMetricsJson = o->metricsJson();
            out.obsPrometheus = o->prometheusText();
            out.obsGoroutineProfile =
                obs::collectGoroutineProfile(runtime).str();
            out.obsBlockProfile = o->blockProfile().folded();
            out.obsMutexProfile = o->mutexProfile().folded();
            if (obs::FlightRecorder* f = o->flight()) {
                std::ostringstream os;
                rt::writeTraceCsv(os, f->drain());
                out.obsFlightCsv = os.str();
            }
        }
    }
    if (const race::Detector* rd = runtime.raceDetector()) {
        out.raceStats = rd->stats();
        for (const auto& r : rd->log().races())
            out.raceReportLines.push_back(r.str());
        for (const auto& r : rd->log().lockOrders())
            out.raceReportLines.push_back(r.str());
    }
    return out;
}

std::vector<SiteDetection>
runPatternRepeated(const Pattern& p, HarnessConfig cfg, int repeats,
                   std::vector<std::string>* failures)
{
    std::map<std::string, SiteDetection> bySite;
    for (const std::string& label : p.leakSites)
        bySite[label] = SiteDetection{label, 0, repeats};

    support::Rng seeder(cfg.seed);
    for (int i = 0; i < repeats; ++i) {
        cfg.seed = seeder.next();
        RunOutcome out = runPatternOnce(p, cfg);
        for (const auto& [label, count] : out.detectedPerLabel) {
            if (count > 0 && bySite.count(label))
                ++bySite[label].detectedRuns;
        }
        if (failures) {
            const std::string at =
                p.name + " seed=" + std::to_string(cfg.seed) + ": ";
            for (const auto& v : out.invariantViolations)
                failures->push_back(at + "invariant: " + v);
            if (out.runtimeFailure)
                failures->push_back(at + "runtime failure: " +
                                    out.failureMessage);
            if (out.quarantined > 0 && !cfg.faults.enabled)
                failures->push_back(at + "unexpected quarantine");
        }
    }

    std::vector<SiteDetection> result;
    for (const std::string& label : p.leakSites)
        result.push_back(bySite[label]);
    return result;
}

} // namespace golf::microbench
