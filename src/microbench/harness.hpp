/**
 * @file
 * Microbenchmark execution harness (the artifact's ./tester analog).
 *
 * For each benchmark b the harness builds a standalone program that
 * concurrently runs n instantiations of b — n derived from the
 * flakiness score — lets it run for five virtual seconds, forces a
 * GC cycle (the Figure 5 template), and checks which expected leaky
 * go sites produced a GOLF report. Repeating this over seeds and
 * GOMAXPROCS values regenerates Table 1; timing the marking phase
 * against the Baseline GC regenerates Figure 4.
 */
#ifndef GOLFCC_MICROBENCH_HARNESS_HPP
#define GOLFCC_MICROBENCH_HARNESS_HPP

#include <map>
#include <string>
#include <vector>

#include "microbench/registry.hpp"
#include "race/detector.hpp"
#include "support/stats.hpp"

namespace golf::microbench {

struct HarnessConfig
{
    int procs = 1;
    uint64_t seed = 1;
    rt::GcMode gcMode = rt::GcMode::Golf;
    rt::Recovery recovery = rt::Recovery::Reclaim;
    int detectEveryN = 1;
    /** GC mark workers (rt::Config::gcWorkers): 0 = auto, 1 =
     *  serial. Outcomes are identical for every value. */
    int gcWorkers = 0;
    /** Heap knobs, including the allocator backend (pool vs legacy;
     *  outcomes are identical for either — alloc_diff_test) and the
     *  soft heap limit. */
    gc::HeapConfig heap;
    /** Memory-pressure ladder thresholds (inert without
     *  heap.softLimitBytes). */
    mem::MemConfig mem;
    /** Virtual runtime before the forced GC (paper: 5 s). */
    support::VTime duration = 5 * support::kSecond;
    /** Cap on concurrent pattern instances derived from flakiness. */
    int maxInstances = 24;
    /** Fault-injection ("chaos") configuration, off by default. */
    rt::FaultConfig faults;
    /** Cross-check runtime invariants after every GC cycle and once
     *  at the end of the run. */
    bool verifyInvariants = false;
    /** Run under the race detector (-race analog): happens-before
     *  race checking plus predictive lock-order analysis. */
    bool race = false;
    /** Blocked-goroutine watchdog (off by default; purely virtual
     *  time, so enabling it keeps runs deterministic per seed). */
    guard::WatchdogConfig watchdog;
    /** Recovery-ladder escalation policy (cancel attempts). */
    guard::GuardPolicy guard;
    /** Telemetry configuration (obs is on by default). */
    obs::Config obs;
    /** Capture obs output strings (metrics JSON, Prometheus text,
     *  profiles, flight-recorder drain) into the RunOutcome after the
     *  run — the replay byte-identity surface. */
    bool captureObs = false;
};

/** Outcome of one program execution. */
struct RunOutcome
{
    /** Leaky labels that produced at least one report. */
    std::map<std::string, int> detectedPerLabel;
    /** Individual deadlock reports in this run. */
    size_t individualReports = 0;
    /** Unexpected reports (spawn sites never registered). */
    size_t unexpectedReports = 0;
    bool runtimeFailure = false; ///< A goroutine panicked.
    std::string failureMessage;
    /** GC metrics for the RQ2 comparison. */
    uint64_t gcCycles = 0;
    double avgMarkWallUs = 0.0;
    double avgMarkCpuUs = 0.0;
    /** Chaos accounting (zero unless cfg.faults.enabled). */
    uint64_t faultsInjected = 0;
    uint64_t containedPanics = 0;
    uint64_t quarantined = 0;
    /** Per-fault decision log, one line per injection; identical for
     *  identical (seed, config) — the determinism contract. */
    std::string faultTrace;
    /** SpanMap (injected mmap-failure) log, separate stream: identical
     *  for identical (seed, config, backend), but pool-only by nature
     *  — compared across replays, never across backends. */
    std::string spanFaultTrace;
    /** Memory-pressure ladder accounting (zero without a limit). */
    uint64_t memScavenges = 0;
    uint64_t memForcedGolfs = 0;
    uint64_t fatalOoms = 0;
    /** High-water mark of modeled live heap bytes. */
    uint64_t heapPeak = 0;
    /** Invariant violations found by verifyInvariants (empty when the
     *  check is disabled or everything held). */
    std::vector<std::string> invariantViolations;
    /** Guard accounting (§9): ladder + watchdog activity. */
    uint64_t cancelsDelivered = 0;
    uint64_t cancelDeaths = 0;
    uint64_t resurrections = 0;
    uint64_t watchdogTriggers = 0;
    /** Race-analysis counters (all zero unless cfg.race). */
    race::DetectorStats raceStats;
    /** Formatted race and lock-order reports (empty unless cfg.race). */
    std::vector<std::string> raceReportLines;
    /** Obs capture (empty unless cfg.captureObs): every field here
     *  must be byte-identical across gcWorkers for a fixed seed. */
    std::string obsMetricsJson;
    std::string obsPrometheus;
    std::string obsGoroutineProfile;
    std::string obsBlockProfile;
    std::string obsMutexProfile;
    std::string obsFlightCsv;
};

/** Number of concurrent instances for a flakiness score. */
int instancesForFlakiness(int flakiness, int maxInstances);

/** Execute one pattern once under the given configuration. */
RunOutcome runPatternOnce(const Pattern& p, const HarnessConfig& cfg);

/** Per-site detection counts over `repeats` runs (one Table 1 cell
 *  column entry: how many runs detected a leak at each site). */
struct SiteDetection
{
    std::string label;
    int detectedRuns = 0;
    int totalRuns = 0;
};

/** When `failures` is given, one line per invariant violation,
 *  runtime failure or unexpected (fault-free) quarantine is appended
 *  to it, each prefixed with the pattern name and failing seed. */
std::vector<SiteDetection>
runPatternRepeated(const Pattern& p, HarnessConfig cfg, int repeats,
                   std::vector<std::string>* failures = nullptr);

} // namespace golf::microbench

#endif // GOLFCC_MICROBENCH_HARNESS_HPP
