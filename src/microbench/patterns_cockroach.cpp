/**
 * @file
 * goker/GoBench microbenchmarks ported from CockroachDB issues.
 * 17 benchmarks; cockroach/6181 and cockroach/7504 are the flaky
 * Table 1 rows, the rest detect at 100%.
 *
 * Flakiness model: where the original bug manifests only on some
 * executions (unlucky input paths or schedules), the pattern draws
 * the path from the per-run seeded RNG; the manifestation probability
 * is calibrated so that, with the harness's flakiness-derived
 * instance count, per-run detection matches the paper's Table 1 row.
 */
#include "microbench/patterns_common.hpp"

namespace golf::microbench {
namespace {

/** Drain a channel until it is closed (for v := range ch). */
rt::Go
rangeDrain(Channel<int>* ch)
{
    while (true) {
        auto r = co_await chan::recv(ch);
        if (!r.ok)
            break;
    }
    co_return;
}

/** Send a single value, then exit. */
rt::Go
sendOnce(Channel<int>* ch, int v)
{
    co_await chan::send(ch, v);
    co_return;
}

/** Receive a single value, then exit. */
rt::Go
recvOnce(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

// ---------------------------------------------------------------------
// cockroach/584 — gossip bootstrap: a retry worker ranges over a
// stopper channel that the failed-bootstrap path never closes.
rt::Go
cockroach584(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> stopper(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "cockroach/584:62", rangeDrain, stopper.get());
    // Bootstrap fails; stopper is dropped without close.
    co_return;
}

// ---------------------------------------------------------------------
// cockroach/1055 — Stopper.Quiesce: three task workers block sending
// completion on an unbuffered drain channel after the drainer quits.
rt::Go
cockroach1055(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> drain(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "cockroach/1055:38", sendOnce, drain.get(), 1);
    GOLF_GO_LEAKY(ctx, "cockroach/1055:42", sendOnce, drain.get(), 2);
    GOLF_GO_LEAKY(ctx, "cockroach/1055:46", sendOnce, drain.get(), 3);
    // The drainer observes the stop signal before handling any
    // completion and returns immediately: all three workers strand.
    co_return;
}

// ---------------------------------------------------------------------
// cockroach/2448 — storage queue: producer and monitor both parked on
// channels owned by a processor that exited early.
rt::Go
cockroach2448Monitor(Channel<Unit>* events)
{
    for (;;)
        co_await chan::recv(events);
    co_return;
}

rt::Go
cockroach2448(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> queue(makeChan<int>(rt, 1));
    gc::Local<Channel<Unit>> events(makeChan<Unit>(rt, 0));
    co_await chan::send(queue.get(), 0); // pre-fill: next send blocks
    GOLF_GO_LEAKY(ctx, "cockroach/2448:24", sendOnce, queue.get(), 1);
    GOLF_GO_LEAKY(ctx, "cockroach/2448:39", cockroach2448Monitor,
                  events.get());
    // Processor exits before consuming queue or emitting events.
    co_return;
}

// ---------------------------------------------------------------------
// cockroach/6181 — FLAKY (Table 1 ~97.5%): tryRemoveReplica: two
// range-scanner goroutines are shut down by a close that only the
// non-error path performs. The error path is input-dependent.
rt::Go
cockroach6181(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> replicaCh(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> errCh(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "cockroach/6181:58", rangeDrain,
                  replicaCh.get());
    GOLF_GO_LEAKY(ctx, "cockroach/6181:65", rangeDrain, errCh.get());
    co_await rt::yield();
    if (ctx->rng.chance(0.60))
        co_return; // error path: scanners leak
    chan::close(replicaCh.get());
    chan::close(errCh.get());
    co_return;
}

// ---------------------------------------------------------------------
// cockroach/7504 — FLAKY (Table 1 ~99.75%): leaktest session: index
// and lease workers signal completion over channels the cancelled
// request path abandons.
rt::Go
cockroach7504(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> leaseDone(makeChan<int>(rt, 0));
    gc::Local<Channel<int>> indexDone(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "cockroach/7504:170", sendOnce,
                  leaseDone.get(), 1);
    GOLF_GO_LEAKY(ctx, "cockroach/7504:177", sendOnce,
                  indexDone.get(), 1);
    co_await rt::yield();
    if (ctx->rng.chance(0.78))
        co_return; // request cancelled: both completions dropped
    co_await chan::recv(leaseDone.get());
    co_await chan::recv(indexDone.get());
    co_return;
}

// ---------------------------------------------------------------------
// cockroach/9935 — DistSender: two RPC replies race into an
// unbuffered channel; only the first is consumed (and the loser's
// retry goroutine leaks with it).
rt::Go
cockroach9935(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> replies(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "cockroach/9935:12", sendOnce, replies.get(),
                  1);
    GOLF_GO_LEAKY(ctx, "cockroach/9935:14", sendOnce, replies.get(),
                  2);
    // The RPC deadline fires before either reply lands; the sender
    // abandons the reply channel and both responders strand.
    auto* deadline = rt::after(rt, 500 * kMicrosecond);
    co_await chan::recv(deadline);
    co_return;
}

// ---------------------------------------------------------------------
// cockroach/10214 — raft storage: a worker holds the store mutex
// while blocked on a response channel nobody serves; a second worker
// blocks on the mutex. Both leak (mutex + channel entanglement).
struct Store10214 : gc::Object
{
    sync::Mutex* mu = nullptr;
    Channel<int>* resp = nullptr;

    void
    trace(gc::Marker& m) override
    {
        m.mark(mu);
        m.mark(resp);
    }
};

rt::Go
cockroach10214Holder(Store10214* s)
{
    co_await s->mu->lock();
    co_await chan::recv(s->resp); // never served
    s->mu->unlock();
    co_return;
}

rt::Go
cockroach10214Waiter(Store10214* s)
{
    co_await s->mu->lock();
    s->mu->unlock();
    co_return;
}

rt::Go
cockroach10214(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Store10214> store(rt.make<Store10214>());
    store->mu = rt.make<sync::Mutex>(rt);
    store->resp = makeChan<int>(rt, 0);
    GOLF_GO_LEAKY(ctx, "cockroach/10214:21", cockroach10214Holder,
                  store.get());
    co_await rt::sleepFor(kMicrosecond * 100);
    GOLF_GO_LEAKY(ctx, "cockroach/10214:29", cockroach10214Waiter,
                  store.get());
    co_return;
}

// ---------------------------------------------------------------------
// cockroach/10790 — replica GC: a beacon goroutine sends on a nil
// channel when the replica was destroyed before initialization.
rt::Go
cockroach10790Beacon(Channel<int>* ch)
{
    co_await chan::send(ch, 1); // ch is nil on the destroyed path
    co_return;
}

rt::Go
cockroach10790(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    Channel<int>* ch = nullptr; // destroyed replica: never made
    GOLF_GO_LEAKY(ctx, "cockroach/10790:17", cockroach10790Beacon,
                  ch);
    (void)rt;
    co_return;
}

// ---------------------------------------------------------------------
// cockroach/13197 — txn coordinator: heartbeat loop waits on a done
// channel from a transaction whose cleanup was skipped.
rt::Go
cockroach13197(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> txnDone(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "cockroach/13197:43", recvOnce, txnDone.get());
    co_return; // commit path skipped cleanup; txnDone never written
}

// ---------------------------------------------------------------------
// cockroach/13755 — rows iterator: the async scanner sends each row
// to an unbuffered channel; the consumer stops at the first error.
rt::Go
cockroach13755Scanner(Channel<int>* rows)
{
    for (int i = 0; i < 8; ++i)
        co_await chan::send(rows, i);
    chan::close(rows);
    co_return;
}

rt::Go
cockroach13755(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> rows(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "cockroach/13755:21", cockroach13755Scanner,
                  rows.get());
    co_await chan::recv(rows.get());
    co_await chan::recv(rows.get());
    co_return; // error after two rows: scanner leaks mid-stream
}

// ---------------------------------------------------------------------
// cockroach/16167 — schema change: a lease acquisition and a config
// gossip both parked on a system-config channel the closer skipped.
rt::Go
cockroach16167(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> sysCfg(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "cockroach/16167:86", recvOnce, sysCfg.get());
    GOLF_GO_LEAKY(ctx, "cockroach/16167:95", recvOnce, sysCfg.get());
    co_return;
}

// ---------------------------------------------------------------------
// cockroach/18101 — consistency checker: worker waits on a
// WaitGroup whose Add was double-counted on the retry path.
rt::Go
cockroach18101Waiter(sync::WaitGroup* wg)
{
    co_await wg->wait();
    co_return;
}

rt::Go
cockroach18101(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<sync::WaitGroup> wg(rt.make<sync::WaitGroup>(rt));
    wg->add(2); // retry path double-adds
    GOLF_GO_LEAKY(ctx, "cockroach/18101:30", cockroach18101Waiter,
                  wg.get());
    wg->done(); // only one Done ever happens
    co_return;
}

// ---------------------------------------------------------------------
// cockroach/24808 — compactor: the suggestion loop ranges over a
// channel owned by an engine that failed to start.
rt::Go
cockroach24808(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> suggestions(makeChan<int>(rt, 2));
    co_await chan::send(suggestions.get(), 1);
    GOLF_GO_LEAKY(ctx, "cockroach/24808:39", rangeDrain,
                  suggestions.get());
    co_return; // engine start failed; channel never closed
}

// ---------------------------------------------------------------------
// cockroach/25456 — CheckConsistency: the collector waits for a
// result that the short-circuited evaluation path never sends.
rt::Go
cockroach25456(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> result(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "cockroach/25456:31", recvOnce, result.get());
    co_return;
}

// ---------------------------------------------------------------------
// cockroach/35073 — rangefeed registry: both the event pump and the
// overflow handler block once the registration is orphaned.
rt::Go
cockroach35073Pump(Channel<int>* events)
{
    for (int i = 0;; ++i)
        co_await chan::send(events, i);
    co_return;
}

rt::Go
cockroach35073(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> events(makeChan<int>(rt, 1));
    gc::Local<Channel<int>> overflow(makeChan<int>(rt, 0));
    GOLF_GO_LEAKY(ctx, "cockroach/35073:12", cockroach35073Pump,
                  events.get());
    GOLF_GO_LEAKY(ctx, "cockroach/35073:19", recvOnce,
                  overflow.get());
    co_await chan::recv(events.get()); // consume one, then orphan
    co_return;
}

// ---------------------------------------------------------------------
// cockroach/35931 — changefeed sink: the emit goroutine blocks on a
// full buffered channel after the flusher stopped.
rt::Go
cockroach35931(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<Channel<int>> sink(makeChan<int>(rt, 1));
    co_await chan::send(sink.get(), 0); // flusher stopped: stays full
    GOLF_GO_LEAKY(ctx, "cockroach/35931:26", sendOnce, sink.get(), 1);
    co_return;
}

// ---------------------------------------------------------------------
// cockroach/7064 — stopper draining: a worker acquires a quiesce
// RWMutex read lock that the leaked writer path poisoned.
rt::Go
cockroach7064Reader(sync::RWMutex* mu)
{
    co_await mu->rlock();
    mu->runlock();
    co_return;
}

rt::Go
cockroach7064(PatternCtx* ctx)
{
    rt::Runtime& rt = *ctx->rt;
    gc::Local<sync::RWMutex> mu(rt.make<sync::RWMutex>(rt));
    co_await mu->lock(); // writer holds and never unlocks
    GOLF_GO_LEAKY(ctx, "cockroach/7064:45", cockroach7064Reader,
                  mu.get());
    co_return;
}

} // namespace

void
registerCockroachPatterns(Registry& r)
{
    r.add({"cockroach/584", "goker", {"cockroach/584:62"}, 1, false,
           cockroach584});
    r.add({"cockroach/1055", "goker",
           {"cockroach/1055:38", "cockroach/1055:42",
            "cockroach/1055:46"},
           1, false, cockroach1055});
    r.add({"cockroach/2448", "goker",
           {"cockroach/2448:24", "cockroach/2448:39"}, 1, false,
           cockroach2448});
    r.add({"cockroach/6181", "goker",
           {"cockroach/6181:58", "cockroach/6181:65"}, 100, false,
           cockroach6181});
    r.add({"cockroach/7504", "goker",
           {"cockroach/7504:170", "cockroach/7504:177"}, 100, false,
           cockroach7504});
    r.add({"cockroach/9935", "goker",
           {"cockroach/9935:12", "cockroach/9935:14"}, 1, false,
           cockroach9935});
    r.add({"cockroach/10214", "goker",
           {"cockroach/10214:21", "cockroach/10214:29"}, 1, false,
           cockroach10214});
    r.add({"cockroach/10790", "goker", {"cockroach/10790:17"}, 1,
           false, cockroach10790});
    r.add({"cockroach/13197", "goker", {"cockroach/13197:43"}, 1,
           false, cockroach13197});
    r.add({"cockroach/13755", "goker", {"cockroach/13755:21"}, 1,
           false, cockroach13755});
    r.add({"cockroach/16167", "goker",
           {"cockroach/16167:86", "cockroach/16167:95"}, 1, false,
           cockroach16167});
    r.add({"cockroach/18101", "goker", {"cockroach/18101:30"}, 1,
           false, cockroach18101});
    r.add({"cockroach/24808", "goker", {"cockroach/24808:39"}, 1,
           false, cockroach24808});
    r.add({"cockroach/25456", "goker", {"cockroach/25456:31"}, 1,
           false, cockroach25456});
    r.add({"cockroach/35073", "goker",
           {"cockroach/35073:12", "cockroach/35073:19"}, 1, false,
           cockroach35073});
    r.add({"cockroach/35931", "goker", {"cockroach/35931:26"}, 1,
           false, cockroach35931});
    r.add({"cockroach/7064", "goker", {"cockroach/7064:45"}, 1, false,
           cockroach7064});
}

} // namespace golf::microbench
