/**
 * @file
 * Cooperative scheduler with P virtual processors.
 *
 * Substitution note 1 (DESIGN.md): GOMAXPROCS becomes the number of
 * per-processor run queues. The scheduler visits processors round-
 * robin and runs one goroutine slice at a time; spawn and wakeup
 * placement draw from the seeded RNG, so interleavings vary with
 * (seed, procs) the way real runs vary with scheduling noise and
 * core count — the lever behind Table 1's per-core detection rates.
 */
#ifndef GOLFCC_RUNTIME_SCHEDULER_HPP
#define GOLFCC_RUNTIME_SCHEDULER_HPP

#include <deque>
#include <vector>

#include "runtime/goroutine.hpp"
#include "runtime/schedule_policy.hpp"
#include "support/rng.hpp"

namespace golf::rt {

class Runtime;

class Scheduler
{
  public:
    Scheduler(Runtime& rt, int procs, uint64_t seed);

    /** The goroutine currently executing a slice, if any. */
    Goroutine* current() const { return current_; }
    void setCurrent(Goroutine* g) { current_ = g; }

    /** Place a freshly spawned goroutine. */
    void enqueueSpawn(Goroutine* g);

    /** Place a goroutine that just became runnable. */
    void enqueueReady(Goroutine* g);

    /** Pop the next goroutine to run, or nullptr. */
    Goroutine* pickNext();

    bool anyRunnable() const;
    size_t runnableCount() const;

    int procs() const { return static_cast<int>(queues_.size()); }

    support::Rng& rng() { return rng_; }

    /**
     * Install (or clear, with nullptr) a schedule policy. While a
     * policy is installed the scheduler is fully deterministic: picks
     * go through SchedulePolicy::pick over the canonical runnable
     * list and wakeup placement draws no RNG. The caller keeps
     * ownership of the policy object.
     */
    void setPolicy(SchedulePolicy* p) { policy_ = p; }
    SchedulePolicy* policy() const { return policy_; }

    /** The runnable set in canonical order (queue 0..P-1, front to
     *  back) — the exact list a policy's pick() indexes into. */
    std::vector<Goroutine*> runnableSnapshot() const;

  private:
    Runtime& rt_;
    std::vector<std::deque<Goroutine*>> queues_;
    size_t rrIndex_ = 0;
    uint64_t spawnCount_ = 0;
    support::Rng rng_;
    Goroutine* current_ = nullptr;
    SchedulePolicy* policy_ = nullptr;
};

} // namespace golf::rt

#endif // GOLFCC_RUNTIME_SCHEDULER_HPP
