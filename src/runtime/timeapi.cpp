#include "runtime/timeapi.hpp"

namespace golf::rt {

chan::Channel<chan::Unit>*
after(Runtime& rt, support::VTime d)
{
    auto* ch = chan::makeChan<chan::Unit>(rt, 1);
    // Pin the channel until the timer fires: the pending timer is a
    // GC root, exactly like Go's runtime timers.
    uint64_t rootId = rt.pinTimerRoot(ch);
    Runtime* rtp = &rt;
    rt.clock().scheduleAfter(d, [rtp, ch, rootId] {
        ch->trySendExternal(chan::Unit{});
        rtp->unpinTimerRoot(rootId);
    });
    return ch;
}

Ticker::Ticker(Runtime& rt, support::VTime period)
    : rt_(rt), period_(period),
      c_(chan::makeChan<chan::Unit>(rt, 1))
{
    rootId_ = rt_.pinTimerRoot(this);
    arm();
}

void
Ticker::arm()
{
    timerId_ = rt_.clock().scheduleAfter(period_, [this] {
        if (stopped_)
            return;
        // Go tickers drop ticks when the receiver lags.
        c_->trySendExternal(chan::Unit{});
        arm();
    });
}

void
Ticker::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    // Cancel the armed timer before releasing the root: once
    // unpinned the ticker may be swept, and a live timer callback
    // would touch freed memory.
    rt_.clock().cancel(timerId_);
    rt_.unpinTimerRoot(rootId_);
}

Ticker*
makeTicker(Runtime& rt, support::VTime period)
{
    return rt.heap().make<Ticker>(rt, period);
}

} // namespace golf::rt
