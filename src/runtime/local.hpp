/**
 * @file
 * gc::Local — a rooted reference held by goroutine code.
 *
 * Go scans goroutine stacks precisely using pointer bitmaps; golfcc
 * instead uses shadow-stack handles: a Local<T> living in a coroutine
 * frame registers one root slot with the *current goroutine* (or with
 * the heap's global roots when constructed outside any goroutine,
 * modelling package-level variables).
 *
 * Invariant (documented in README): any reference to a managed object
 * held across a suspension point must live in a Local, a spawn
 * argument (pinned via spawnRefs), or an object field (traced by
 * trace()). Raw pointers are safe only within a single slice, because
 * collections happen exclusively at scheduling safepoints.
 */
#ifndef GOLFCC_RUNTIME_LOCAL_HPP
#define GOLFCC_RUNTIME_LOCAL_HPP

#include "gc/heap.hpp"
#include "gc/marker.hpp"
#include "gc/object.hpp"
#include "gc/root.hpp"
#include "runtime/runtime.hpp"

namespace golf::gc {

template <typename T>
class Local
{
  public:
    Local() { init(); }
    explicit Local(T* obj) : obj_(obj) { init(); }

    Local(const Local& o) : obj_(o.obj_) { init(); }

    Local&
    operator=(const Local& o)
    {
        obj_ = o.obj_;
        return *this;
    }

    Local&
    operator=(T* obj)
    {
        obj_ = obj;
        return *this;
    }

    ~Local() = default; // slot_ unlinks itself

    T* get() const { return obj_; }
    T* operator->() const { return obj_; }
    T& operator*() const { return *obj_; }
    explicit operator bool() const { return obj_ != nullptr; }

  private:
    void
    init()
    {
        slot_.setSlot(reinterpret_cast<Object**>(&obj_));
        rt::Runtime* rt = rt::Runtime::current();
        if (!rt)
            return; // unmanaged context (plain unit tests)
        if (rt::Goroutine* g = rt->currentGoroutine())
            g->roots().add(&slot_);
        else
            rt->heap().globalRoots().add(&slot_);
    }

    T* obj_ = nullptr;
    RootSlot slot_;
};

/**
 * Root for a value held inside a blocking awaitable (e.g. the payload
 * of a parked channel send). Only pointer-to-Object payloads need a
 * root; other payload types instantiate the empty primary template.
 */
template <typename T>
class ValueRoot
{
  public:
    explicit ValueRoot(T&) {}
};

template <typename U>
    requires std::is_base_of_v<Object, U>
class ValueRoot<U*>
{
  public:
    explicit ValueRoot(U*& ref)
    {
        slot_.setSlot(reinterpret_cast<Object**>(&ref));
        rt::Runtime* rt = rt::Runtime::current();
        if (!rt)
            return;
        if (rt::Goroutine* g = rt->currentGoroutine())
            g->roots().add(&slot_);
        else
            rt->heap().globalRoots().add(&slot_);
    }

  private:
    RootSlot slot_;
};

/** Trace helper for container payloads (channel buffers). */
template <typename T>
inline void
traceValue(Marker&, const T&)
{
}

template <typename U>
    requires std::is_base_of_v<Object, U>
inline void
traceValue(Marker& m, U* const& v)
{
    m.mark(v);
}

} // namespace golf::gc

#endif // GOLFCC_RUNTIME_LOCAL_HPP
