/**
 * @file
 * Shared runtime vocabulary: goroutine states, wait reasons, sites.
 *
 * Wait reasons mirror the Go runtime's decorated wait reasons
 * (Section 5.4): only goroutines blocked at channel or sync-package
 * operations are partial-deadlock candidates; sleeping, IO-blocked and
 * runtime-internal goroutines are always treated as reachably live.
 */
#ifndef GOLFCC_RUNTIME_TYPES_HPP
#define GOLFCC_RUNTIME_TYPES_HPP

#include <cstdint>
#include <source_location>
#include <string>

namespace golf::rt {

/** Goroutine scheduling status (the *g status field analog). */
enum class GStatus : uint8_t
{
    Idle,            ///< In the free pool (Go's _Gdead reuse pool).
    Runnable,        ///< On a run queue.
    Running,         ///< Currently executing.
    Waiting,         ///< Parked on a concurrency operation or timer.
    Done,            ///< Finished; frames destroyed, awaiting recycle.
    PendingReclaim,  ///< Deadlock detected; reclaimed next GC cycle.
    Deadlocked,      ///< Deadlock detected but finalizers reachable:
                     ///< kept alive forever, reported once (§5.5).
    Quarantined,     ///< Forced shutdown threw mid-unwind: isolated,
                     ///< excluded from roots and wakeups, never reused.
};

const char* statusName(GStatus s);

/** Why a Waiting goroutine is parked. */
enum class WaitReason : uint8_t
{
    None,
    // -- Partial-deadlock candidates (channel operations) --
    ChanSend,
    ChanRecv,
    Select,
    SelectNoCases,   ///< select{} with zero cases: blocked forever.
    ChanSendNil,     ///< send on a nil channel: blocked forever.
    ChanRecvNil,     ///< receive on a nil channel: blocked forever.
    // -- Partial-deadlock candidates (sync package, via semaphores) --
    MutexLock,
    RWMutexRLock,
    RWMutexWLock,
    WaitGroupWait,
    CondWait,
    SemAcquire,
    // -- Never candidates: always reachably live --
    Sleep,
    Io,              ///< Simulated system call / network wait.
    GcWait,          ///< Waiting for a forced GC to finish.
    Internal,        ///< Runtime-internal helper goroutine.
    RemoteWait,      ///< Awaiting a reply from another shard: the
                     ///< local fixpoint must treat it as live — only
                     ///< the cross-shard detector (src/cluster) may
                     ///< declare a remote wait dead.
};

/** Number of WaitReason values (for per-reason tables). */
constexpr int kWaitReasonCount = static_cast<int>(WaitReason::RemoteWait) + 1;

const char* waitReasonName(WaitReason r);

/** Whether a wait reason makes the goroutine a deadlock candidate. */
bool isDeadlockCandidate(WaitReason r);

/** A source location: the go statement or the blocking operation. */
struct Site
{
    const char* file = "";
    uint32_t line = 0;
    const char* function = "";

    static Site
    from(const std::source_location& loc)
    {
        return Site{loc.file_name(), loc.line(), loc.function_name()};
    }

    /** "file:line" string used for report deduplication (§6.1). */
    std::string str() const;

    bool
    operator==(const Site& o) const
    {
        return line == o.line && str() == o.str();
    }
};

} // namespace golf::rt

#endif // GOLFCC_RUNTIME_TYPES_HPP
