#include "runtime/scheduler.hpp"

#include "support/panic.hpp"

namespace golf::rt {

Scheduler::Scheduler(Runtime& rt, int procs, uint64_t seed)
    : rt_(rt), rng_(seed ^ 0x5CEDC0DEull)
{
    if (procs < 1)
        support::panic("Scheduler: procs must be >= 1");
    queues_.resize(static_cast<size_t>(procs));
}

void
Scheduler::enqueueSpawn(Goroutine* g)
{
    // Spawn placement: like Go, a new goroutine lands on a processor
    // and tends to run soon. Round-robin over processors keeps spawn
    // order per-processor FIFO; with one processor the global spawn
    // order is preserved exactly.
    size_t proc = spawnCount_++ % queues_.size();
    queues_[proc].push_back(g);
}

void
Scheduler::enqueueReady(Goroutine* g)
{
    // Under a schedule policy wakeup placement must not consume RNG
    // and must not reorder: the policy alone decides who runs next,
    // so a stable push_back keeps the canonical runnable order a
    // pure function of the pick sequence.
    if (policy_ != nullptr) {
        queues_[g->id() % queues_.size()].push_back(g);
        return;
    }
    // Wakeup placement is the main source of scheduling
    // nondeterminism: the woken goroutine lands on a random processor
    // and occasionally jumps the queue (Go's runnext slot).
    size_t proc = queues_.size() == 1
        ? 0 : rng_.nextBelow(queues_.size());
    if (queues_.size() > 1 && rng_.chance(0.25))
        queues_[proc].push_front(g);
    else
        queues_[proc].push_back(g);
}

std::vector<Goroutine*>
Scheduler::runnableSnapshot() const
{
    std::vector<Goroutine*> out;
    for (const auto& q : queues_)
        out.insert(out.end(), q.begin(), q.end());
    return out;
}

Goroutine*
Scheduler::pickNext()
{
    if (policy_ != nullptr) {
        std::vector<Goroutine*> runnable = runnableSnapshot();
        if (runnable.empty())
            return nullptr;
        size_t idx = policy_->pick(runnable);
        if (idx >= runnable.size())
            support::panic("SchedulePolicy::pick: index out of range");
        Goroutine* g = runnable[idx];
        for (auto& q : queues_) {
            for (auto it = q.begin(); it != q.end(); ++it) {
                if (*it == g) {
                    q.erase(it);
                    return g;
                }
            }
        }
        support::panic("SchedulePolicy::pick: chose unqueued goroutine");
    }
    for (size_t i = 0; i < queues_.size(); ++i) {
        size_t proc = (rrIndex_ + i) % queues_.size();
        if (!queues_[proc].empty()) {
            Goroutine* g = queues_[proc].front();
            queues_[proc].pop_front();
            rrIndex_ = (proc + 1) % queues_.size();
            return g;
        }
    }
    return nullptr;
}

bool
Scheduler::anyRunnable() const
{
    for (const auto& q : queues_) {
        if (!q.empty())
            return true;
    }
    return false;
}

size_t
Scheduler::runnableCount() const
{
    size_t n = 0;
    for (const auto& q : queues_)
        n += q.size();
    return n;
}

} // namespace golf::rt
