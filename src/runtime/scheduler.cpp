#include "runtime/scheduler.hpp"

#include "support/panic.hpp"

namespace golf::rt {

Scheduler::Scheduler(Runtime& rt, int procs, uint64_t seed)
    : rt_(rt), rng_(seed ^ 0x5CEDC0DEull)
{
    if (procs < 1)
        support::panic("Scheduler: procs must be >= 1");
    queues_.resize(static_cast<size_t>(procs));
}

void
Scheduler::enqueueSpawn(Goroutine* g)
{
    // Spawn placement: like Go, a new goroutine lands on a processor
    // and tends to run soon. Round-robin over processors keeps spawn
    // order per-processor FIFO; with one processor the global spawn
    // order is preserved exactly.
    size_t proc = spawnCount_++ % queues_.size();
    queues_[proc].push_back(g);
}

void
Scheduler::enqueueReady(Goroutine* g)
{
    // Wakeup placement is the main source of scheduling
    // nondeterminism: the woken goroutine lands on a random processor
    // and occasionally jumps the queue (Go's runnext slot).
    size_t proc = queues_.size() == 1
        ? 0 : rng_.nextBelow(queues_.size());
    if (queues_.size() > 1 && rng_.chance(0.25))
        queues_[proc].push_front(g);
    else
        queues_[proc].push_back(g);
}

Goroutine*
Scheduler::pickNext()
{
    for (size_t i = 0; i < queues_.size(); ++i) {
        size_t proc = (rrIndex_ + i) % queues_.size();
        if (!queues_[proc].empty()) {
            Goroutine* g = queues_[proc].front();
            queues_[proc].pop_front();
            rrIndex_ = (proc + 1) % queues_.size();
            return g;
        }
    }
    return nullptr;
}

bool
Scheduler::anyRunnable() const
{
    for (const auto& q : queues_) {
        if (!q.empty())
            return true;
    }
    return false;
}

size_t
Scheduler::runnableCount() const
{
    size_t n = 0;
    for (const auto& q : queues_)
        n += q.size();
    return n;
}

} // namespace golf::rt
