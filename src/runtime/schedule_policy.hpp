/**
 * @file
 * SchedulePolicy: the pluggable "which goroutine runs next" seam.
 *
 * The scheduler's default behaviour (seeded round-robin with random
 * wakeup placement) is one policy among several: chaos sampling keeps
 * the historical RNG-driven path, replay re-executes a recorded pick
 * sequence, and the model checker (golf::mc) enumerates every pick at
 * every choice point. Installing a policy switches the scheduler to a
 * fully deterministic mode:
 *
 *   - pickNext() enumerates the runnable set in canonical order
 *     (queue 0..P-1, front to back) and asks the policy to choose an
 *     index into that list;
 *   - enqueueReady() places wakeups deterministically (no RNG draws,
 *     no runnext queue-jumping);
 *   - the runtime charges the fixed sliceCost with no jitter.
 *
 * With no policy installed the scheduler's behaviour is bit-identical
 * to the historical path, preserving every chaos/-repro trace.
 */
#ifndef GOLFCC_RUNTIME_SCHEDULE_POLICY_HPP
#define GOLFCC_RUNTIME_SCHEDULE_POLICY_HPP

#include <cstddef>
#include <vector>

namespace golf::rt {

class Goroutine;

class SchedulePolicy
{
  public:
    virtual ~SchedulePolicy() = default;

    /**
     * Choose which runnable goroutine executes the next slice.
     *
     * `runnable` lists every runnable goroutine in canonical order
     * (queue 0..P-1, each front to back) and is never empty. The
     * return value indexes into `runnable`; out-of-range picks are a
     * panic. The chosen goroutine is removed from its queue and run
     * for one slice.
     */
    virtual size_t pick(const std::vector<Goroutine*>& runnable) = 0;
};

} // namespace golf::rt

#endif // GOLFCC_RUNTIME_SCHEDULE_POLICY_HPP
