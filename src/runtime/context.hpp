/**
 * @file
 * Go context package analog: cancellation signals delivered through
 * a done channel, composable into trees (WithCancel) and bounded by
 * virtual-time deadlines (WithTimeout).
 *
 * In Go, `ctx.Done()` is the idiomatic way for goroutines to learn
 * they should abandon work — and *forgetting* to select on it is a
 * major source of goroutine leaks. Contexts are managed objects: a
 * goroutine blocked solely on the done channel of a context nobody
 * can cancel any more is precisely a partial deadlock, and GOLF
 * detects it like any other channel wait.
 */
#ifndef GOLFCC_RUNTIME_CONTEXT_HPP
#define GOLFCC_RUNTIME_CONTEXT_HPP

#include <vector>

#include "chan/channel.hpp"

namespace golf::rt {

class Context : public gc::Object
{
  public:
    explicit Context(Runtime& rt, Context* parent = nullptr);

    /** The done channel: closed when the context is cancelled.
     *  Receive from it in selects, Go style. */
    chan::Channel<chan::Unit>* done() const { return done_; }

    bool cancelled() const { return cancelled_; }

    /** Cancel this context and its whole subtree. Idempotent. */
    void cancel();

    Context* parent() const { return parent_; }

    void trace(gc::Marker& m) override;

    const char* objectName() const override { return "context"; }

  private:
    friend Context* withTimeout(Runtime&, Context*, support::VTime);

    Runtime& rt_;
    Context* parent_;
    chan::Channel<chan::Unit>* done_;
    std::vector<Context*> children_;
    bool cancelled_ = false;
    support::TimerId timerId_ = 0;
    uint64_t timerRootId_ = 0;
};

/** context.Background(): a root context, never cancelled by time. */
Context* background(Runtime& rt);

/** context.WithCancel(parent). Cancel via ctx->cancel(). */
Context* withCancel(Runtime& rt, Context* parent);

/** context.WithTimeout(parent, d): cancels itself after d. */
Context* withTimeout(Runtime& rt, Context* parent, support::VTime d);

} // namespace golf::rt

#endif // GOLFCC_RUNTIME_CONTEXT_HPP
