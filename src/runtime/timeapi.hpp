/**
 * @file
 * time.After / time.Ticker analogs over virtual time.
 *
 * GC soundness detail: in Go, an active runtime timer references its
 * channel and is itself reachable, so a goroutine blocked on a
 * time.After channel is never deadlocked. golfcc pins the channel as
 * a timer root (Runtime::pinTimerRoot) until the timer fires — a
 * select leaking on other channels still gets detected once the
 * timeout branch has fired and the pin is released.
 */
#ifndef GOLFCC_RUNTIME_TIMEAPI_HPP
#define GOLFCC_RUNTIME_TIMEAPI_HPP

#include "chan/channel.hpp"

namespace golf::rt {

/** time.After(d): capacity-1 channel delivered once after d. */
chan::Channel<chan::Unit>* after(Runtime& rt, support::VTime d);

/** time.Ticker analog: delivers on .c every period until stopped. */
class Ticker : public gc::Object
{
  public:
    Ticker(Runtime& rt, support::VTime period);

    chan::Channel<chan::Unit>* c() const { return c_; }

    /** Stop delivering ticks and release the timer root. */
    void stop();

    bool stopped() const { return stopped_; }

    void
    trace(gc::Marker& m) override
    {
        m.mark(c_);
    }

    const char* objectName() const override { return "time.Ticker"; }

  private:
    void arm();

    Runtime& rt_;
    support::VTime period_;
    chan::Channel<chan::Unit>* c_;
    bool stopped_ = false;
    uint64_t rootId_ = 0;
    support::TimerId timerId_ = 0;
};

/** Create a ticker (the returned object is heap-managed). */
Ticker* makeTicker(Runtime& rt, support::VTime period);

} // namespace golf::rt

#endif // GOLFCC_RUNTIME_TIMEAPI_HPP
