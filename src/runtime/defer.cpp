#include "runtime/defer.hpp"

#include "runtime/goroutine.hpp"
#include "runtime/runtime.hpp"

namespace golf::rt {

Defer::~Defer() noexcept(false)
{
    if (!fn_)
        return;
    const bool unwinding =
        std::uncaught_exceptions() > uncaughtAtEntry_;
    if (!unwinding) {
        // Normal scope exit or forced frame destruction: a throw here
        // propagates (reclaim turns it into a quarantine).
        fn_();
        return;
    }
    // Running while a panic unwinds the frame. A second exception
    // escaping the deferred body would std::terminate, so it is
    // swallowed; Go similarly replaces rather than doubles panics.
    try {
        fn_();
    } catch (...) {
    }
}

std::optional<std::string>
recover()
{
    Runtime* rt = Runtime::current();
    if (!rt)
        return std::nullopt;
    Goroutine* g = rt->currentGoroutine();
    if (!g || !g->panicking_)
        return std::nullopt;
    g->panicking_ = false;
    g->recoverArmed_ = true;
    return g->panicMessage_;
}

bool
panicking()
{
    Runtime* rt = Runtime::current();
    if (!rt)
        return false;
    Goroutine* g = rt->currentGoroutine();
    return g && g->panicking_;
}

} // namespace golf::rt
