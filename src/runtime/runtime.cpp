#include "runtime/runtime.hpp"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <sstream>
#include <unordered_set>

#include "gc/marker.hpp"
#include "gc/parallel.hpp"
#include "golf/collector.hpp"
#include "support/panic.hpp"
#include "sync/pool.hpp"

namespace golf::rt {

namespace {

/** Innermost-active-runtime stack (the process is single-threaded). */
std::vector<Runtime*>&
runtimeStack()
{
    static std::vector<Runtime*> stack;
    return stack;
}

/** goPanic observer: capture the panic message on the current
 *  goroutine at throw time — std::current_exception is unusable from
 *  a deferred function running during unwinding, so recover() reads
 *  this instead. */
void
observeGoPanic(const std::string& msg)
{
    if (Runtime* rt = Runtime::current())
        rt->notePanicking(msg);
}

/** Install the process-wide panic hooks (idempotent). */
void
installPanicHooks()
{
    static bool installed = false;
    if (installed)
        return;
    installed = true;
    support::setGoPanicObserver(&observeGoPanic);
    support::setPanicFlushHook([] {
        if (Runtime* rt = Runtime::current())
            rt->flushPostMortem();
    });
}

} // namespace

Runtime*
Runtime::current()
{
    auto& stack = runtimeStack();
    return stack.empty() ? nullptr : stack.back();
}

bool
parseRecovery(const std::string& name, Recovery& out)
{
    if (name == "detect" || name == "reportonly" ||
        name == "report-only") {
        out = Recovery::Detect;
    } else if (name == "cancel") {
        out = Recovery::Cancel;
    } else if (name == "reclaim") {
        out = Recovery::Reclaim;
    } else if (name == "quarantine") {
        out = Recovery::Quarantine;
    } else {
        return false;
    }
    return true;
}

const char*
recoveryName(Recovery r)
{
    switch (r) {
      case Recovery::Detect: return "detect";
      case Recovery::Cancel: return "cancel";
      case Recovery::Reclaim: return "reclaim";
      case Recovery::Quarantine: return "quarantine";
    }
    return "?";
}

namespace detail {

void
noteFrameAlloc(size_t bytes)
{
    if (Runtime* rt = Runtime::current())
        rt->noteFrameAlloc(bytes);
}

void
noteFrameFree(size_t bytes)
{
    if (Runtime* rt = Runtime::current())
        rt->noteFrameFree(bytes);
}

/** Header prefix remembering the frame size for frameFree. */
constexpr size_t kFrameHeader = alignof(std::max_align_t);

void*
frameAlloc(size_t n)
{
    void* raw = ::operator new(n + kFrameHeader);
    *static_cast<size_t*>(raw) = n;
    noteFrameAlloc(n);
    return static_cast<char*>(raw) + kFrameHeader;
}

void
frameFree(void* p)
{
    void* raw = static_cast<char*>(p) - kFrameHeader;
    noteFrameFree(*static_cast<size_t*>(raw));
    ::operator delete(raw);
}

bool
consumeRecover()
{
    Runtime* rt = Runtime::current();
    if (!rt)
        return false;
    Goroutine* g = rt->currentGoroutine();
    if (!g || !g->recoverArmed_)
        return false;
    g->recoverArmed_ = false;
    g->panicking_ = false;
    g->panicMessage_.clear();
    return true;
}

bool
forcedUnwindActive()
{
    Runtime* rt = Runtime::current();
    return rt && rt->forcedUnwindActive();
}

void
noteForcedUnwindFailure()
{
    Runtime* rt = Runtime::current();
    if (!rt)
        return;
    std::string why = "unknown error";
    try {
        throw;
    } catch (const std::exception& ex) {
        why = ex.what();
    } catch (...) {
    }
    rt->noteForcedUnwindFailure(why);
}

} // namespace detail

// ---------------------------------------------------------------------
// Promise glue.

void
Go::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept
{
    Goroutine* g = h.promise().g;
    if (g && Runtime::current())
        Runtime::current()->onGoroutineDone(g);
}

void
Go::promise_type::unhandled_exception()
{
    if (detail::forcedUnwindActive()) {
        detail::noteForcedUnwindFailure();
        return;
    }
    // recover() in a deferred function of the goroutine body itself:
    // the panic stops here and the goroutine completes normally.
    if (detail::consumeRecover())
        return;
    if (Runtime* rt = Runtime::current())
        rt->onGoroutinePanic(std::current_exception());
    else
        support::panic("goroutine exception outside a runtime");
}

// ---------------------------------------------------------------------
// Runtime lifecycle.

Runtime::Runtime(Config config)
    : config_(config),
      heap_(config.heap),
      sched_(*this, config.procs, config.seed),
      injector_(config.faults, config.seed),
      memCtl_(config.mem, config.heap.softLimitBytes)
{
    startCpuNs_ = processCpuNs();
    collector_ = std::make_unique<detect::Collector>(*this);
    installPanicHooks();
    if (config_.obs.enabled) {
        obs_ = std::make_unique<obs::Obs>(config_.obs, config_.procs,
                                          config_.seed);
        obs_->setTracer(&tracer_);
    }
    tracer_.setToggleHook([this] { refreshEventsArmed(); });
    refreshEventsArmed();
    heap_.setAllocHook([this](size_t bytes) { onAllocCheck(bytes); });
    heap_.setSpanFaultHook([this]() -> bool {
        if (!running_)
            return false;
        Goroutine* g = sched_.current();
        return injector_.decideSpanMap(clock_.now(), g ? g->id() : 0);
    });
    if (config_.race) {
        race_ = std::make_unique<race::Detector>(config_.raceCfg,
                                                 &clock_);
        heap_.setFreeHook(
            [this](gc::Object* obj) { race_->onObjectFree(obj); });
    }
    runtimeStack().push_back(this);
}

Runtime::~Runtime()
{
    tearingDown_ = true;
    // Destroy surviving goroutine frames (leaked, deadlocked or
    // abandoned at main exit) while this runtime is current: waiter
    // destructors must be able to reach channels and the semtable,
    // and frame accounting must resolve to us. A cluster shard being
    // restarted sits mid-stack, so force ourselves to the top for
    // the teardown window.
    runtimeStack().push_back(this);
    for (auto& mp : allg_) {
        Goroutine* g = mp.get();
        if (g->hasFrames()) {
            forcedUnwind_ = true;
            forcedUnwindFailed_ = false;
            try {
                g->top_.destroy();
            } catch (...) {
                // A deferred function threw during teardown; there is
                // nobody left to unwind into.
            }
            forcedUnwind_ = false;
            forcedUnwindFailed_ = false;
            g->top_ = {};
            g->resumePoint_ = {};
        }
    }
    runtimeStack().pop_back();
    // Usually we are the innermost runtime, but a cluster shard
    // being restarted is destroyed from under the driver while older
    // shards sit below it on the stack — erase from anywhere.
    auto& stack = runtimeStack();
    auto it = std::find(stack.rbegin(), stack.rend(), this);
    if (it == stack.rend())
        support::panic("Runtime teardown out of order");
    stack.erase(std::next(it).base());
}

Runtime::Scope::Scope(Runtime& rt)
    : rt_(rt)
{
    runtimeStack().push_back(&rt);
}

Runtime::Scope::~Scope()
{
    auto& stack = runtimeStack();
    if (stack.empty() || stack.back() != &rt_)
        support::panic("Runtime::Scope exited out of order");
    stack.pop_back();
}

// ---------------------------------------------------------------------
// Telemetry fan-out (obs subsystem).

void
Runtime::emitEventSlow(TraceEvent ev, uint64_t gid,
                       WaitReason reason)
{
    const support::VTime now = clock_.now();
    tracer_.record(now, ev, gid, reason);
    if (obs_)
        obs_->onEvent(now, ev, gid, reason);
}

void
Runtime::noteUnparkSlow(Goroutine* g)
{
    obs_->onUnpark(clock_.now(), *g);
    g->parkStartVt_ = 0;
}

// ---------------------------------------------------------------------
// Goroutine management.

Goroutine*
Runtime::obtainGoroutine()
{
    Goroutine* g;
    if (!freeg_.empty()) {
        // Goroutine reuse (Section 5.4): recycle a dead *g.
        g = freeg_.back();
        freeg_.pop_back();
    } else {
        gStorage_.push_back(std::make_unique<Goroutine>());
        g = gStorage_.back().get();
        // The allgs registry stores masked addresses so it never
        // leaks reachability to the marker (Section 5.4).
        allg_.push_back(support::MaskedPtr<Goroutine>(g));
    }
    g->id_ = nextGoId_++;
    g->status_ = GStatus::Runnable;
    return g;
}

void
Runtime::resetForReuse(Goroutine* g)
{
    // The paper's "special cleanup procedure": reset fields that a
    // blocking select/semaphore operation may have left behind, so a
    // deadlock-reclaimed *g is indistinguishable from a normally
    // terminated one.
    if (!g->roots_.empty())
        support::panic("goroutine recycled with registered roots");
    g->waitReason_ = WaitReason::None;
    g->blockedOn_.clear();
    g->blockedForever_ = false;
    g->spawnRefs_.clear();
    g->frameBytes_ = 0;
    g->liveEpoch_.store(0, std::memory_order_relaxed);
    g->reported_ = false;
    g->blockedSema_ = support::MaskedPtr<void>();
    g->parkStartVt_ = 0;
    g->selectChoice_ = -1;
    g->selectDone_ = false;
    g->panicking_ = false;
    g->panicMessage_.clear();
    g->recoverArmed_ = false;
    g->spuriousWake_ = false;
    g->cancelPending_ = false;
    g->cancelMessage_.clear();
    g->cancelDeliveries_ = 0;
    g->blockedSinceVt_ = 0;
    g->slicesRun_ = 0;
    g->isMain_ = false;
    g->spawnSite_ = Site{};
    g->blockSite_ = Site{};
}

Goroutine*
Runtime::spawn(Go&& task, Site site)
{
    if (!task.valid())
        support::panic("Runtime::spawn: invalid Go task");
    Goroutine* g = obtainGoroutine();
    g->top_ = task.release();
    g->top_.promise().g = g;
    g->resumePoint_ = g->top_;
    g->spawnSite_ = site;
    g->frameBytes_ = lastFrameBytes_;
    emitEvent(TraceEvent::Spawn, g->id());
    if (race_)
        race_->onSpawn(sched_.current(), g);
    sched_.enqueueSpawn(g);
    return g;
}

void
Runtime::park(Goroutine* g, std::coroutine_handle<> resumePoint,
              WaitReason reason, std::vector<gc::Object*> blockedOn,
              bool forever, Site blockSite)
{
    if (g->status_ != GStatus::Running)
        support::panic("park of a non-running goroutine");
    g->resumePoint_ = resumePoint;
    g->status_ = GStatus::Waiting;
    g->waitReason_ = reason;
    g->blockedOn_ = std::move(blockedOn);
    g->blockedForever_ = forever;
    g->blockSite_ = blockSite;
    // Watchdog input: when the goroutine parked on this candidate
    // operation. (A spurious-wake re-park retains the original stamp:
    // the goroutine never stopped waiting for the operation.)
    if (isDeadlockCandidate(reason))
        g->blockedSinceVt_ = clock_.now();
    g->parkStartVt_ = clock_.now();
    emitEvent(TraceEvent::Park, g->id(), reason);
    if (race_)
        race_->blockedAttempt(g, g->blockedOn_);

    if (injector_.enabled() && isDeadlockCandidate(reason) &&
        injector_.decide(FaultSite::Park, clock_.now(), g->id()) ==
            FaultKind::SpuriousWakeup) {
        // Futex-style spurious wakeup: requeue the goroutine without
        // granting its operation. The wait-state fields are retained
        // and the waiter stays enqueued, so runSlice can re-park it
        // WITHOUT resuming; a genuine wakeup racing the spurious one
        // fuses in readyNow().
        const uint64_t gid = g->id();
        clock_.scheduleAfter(injector_.drawDelay(), [this, g, gid] {
            if (g->id() != gid || g->status_ != GStatus::Waiting)
                return; // recycled, woken or reclaimed meanwhile
            g->spuriousWake_ = true;
            g->status_ = GStatus::Runnable;
            emitEvent(TraceEvent::SpuriousWake, g->id(),
                      g->waitReason_);
            sched_.enqueueReady(g);
        });
    }
}

void
Runtime::ready(Goroutine* g)
{
    if (injector_.enabled() && g->status_ == GStatus::Waiting &&
        injector_.decide(FaultSite::Wakeup, clock_.now(), g->id()) ==
            FaultKind::DelayedWakeup) {
        // Postpone the grant. The waker has already dequeued this
        // goroutine's waiter (the operation IS granted); only the
        // resume is late. The wait reason is rewritten to Sleep so
        // the detector sees a slow goroutine, not a deadlocked one —
        // it holds a granted operation and will certainly run.
        // The genuine operation ended the park: feed obs the real
        // wait reason before rewriting it (the delayed resume is
        // modeled as a fresh sleep, not more blocking).
        noteUnpark(g);
        g->waitReason_ = WaitReason::Sleep;
        g->parkStartVt_ = clock_.now();
        g->blockedOn_.clear();
        g->blockedForever_ = false;
        emitEvent(TraceEvent::DelayedWake, g->id());
        const uint64_t gid = g->id();
        clock_.scheduleAfter(injector_.drawDelay(), [this, g, gid] {
            if (g->id() != gid)
                return; // recycled: the wakeup became moot
            readyNow(g);
        });
        return;
    }
    readyNow(g);
}

void
Runtime::readyNow(Goroutine* g)
{
    if (g->spuriousWake_ && g->status_ == GStatus::Runnable) {
        // Fuse: the goroutine is already on the run queue from an
        // injected spurious wakeup. Clearing the retained wait state
        // converts that pending resume into the genuine one. No race
        // wake edge: the resume the goroutine will run from is the
        // injected one, which is not synchronization — the genuine
        // waker's ordering is carried by the primitive's own
        // acquire/release hooks.
        noteUnpark(g);
        g->spuriousWake_ = false;
        g->waitReason_ = WaitReason::None;
        g->blockedOn_.clear();
        g->blockedForever_ = false;
        emitEvent(TraceEvent::Ready, g->id());
        return;
    }
    if (g->status_ != GStatus::Waiting)
        support::panic("ready of a non-waiting goroutine");
    if (race_)
        race_->onWakeEdge(sched_.current(), g);
    noteUnpark(g);
    g->status_ = GStatus::Runnable;
    g->waitReason_ = WaitReason::None;
    g->blockedOn_.clear();
    g->blockedForever_ = false;
    emitEvent(TraceEvent::Ready, g->id());
    sched_.enqueueReady(g);
}

void
Runtime::yieldCurrent(std::coroutine_handle<> h)
{
    Goroutine* g = sched_.current();
    if (!g)
        support::panic("yield outside a goroutine");
    g->resumePoint_ = h;
    g->status_ = GStatus::Runnable;
    emitEvent(TraceEvent::Yield, g->id());
    sched_.enqueueReady(g);
}

void
Runtime::sleepCurrent(std::coroutine_handle<> h, support::VTime d,
                      WaitReason reason)
{
    Goroutine* g = sched_.current();
    if (!g)
        support::panic("sleep outside a goroutine");
    g->resumePoint_ = h;
    g->status_ = GStatus::Waiting;
    g->waitReason_ = reason;
    g->blockedOn_.clear();
    g->blockedForever_ = false;
    g->parkStartVt_ = clock_.now();
    clock_.scheduleAfter(d < 0 ? 0 : d, [this, g] { ready(g); });
}

void
Runtime::onGoroutineDone(Goroutine* g)
{
    g->status_ = GStatus::Done;
    if (race_)
        race_->onFinish(g);
    if (g->isMain_)
        mainDone_ = true;
}

void
Runtime::onGoroutinePanic(std::exception_ptr e)
{
    if (Goroutine* g = sched_.current()) {
        g->panicking_ = false;
        g->panicMessage_.clear();
        g->recoverArmed_ = false;
    }
    try {
        std::rethrow_exception(e);
    } catch (const InjectedFault& ex) {
        if (injector_.config().containInjectedPanics) {
            // The injected panic killed this goroutine only; the run
            // survives (the chaos analog of a per-request recover()).
            ++containedPanics_;
            return;
        }
        result_.panicked = true;
        result_.panicMessage = ex.what();
    } catch (const guard::DeadlockError&) {
        // An unrecovered cancellation (Cancel rung) kills only the
        // goroutine it woke; the frames were freed by the ordinary
        // exception unwind and the run survives — cancellation must
        // never escalate a partial deadlock into process failure.
        ++cancelDeaths_;
        return;
    } catch (const std::exception& ex) {
        result_.panicked = true;
        result_.panicMessage = ex.what();
    } catch (...) {
        result_.panicked = true;
        result_.panicMessage = "unknown panic";
    }
}

void
Runtime::finalizeDone(Goroutine* g)
{
    emitEvent(TraceEvent::Done, g->id());
    g->top_.destroy();
    g->top_ = {};
    g->resumePoint_ = {};
    resetForReuse(g);
    g->status_ = GStatus::Idle;
    freeg_.push_back(g);
}

void
Runtime::reclaimGoroutine(Goroutine* g)
{
    if (g->status_ != GStatus::PendingReclaim)
        support::panic("reclaim of a non-pending goroutine");
    const bool wasMain = g->isMain_;
    emitEvent(TraceEvent::Reclaim, g->id(), g->waitReason_);
    // Destroying the outermost frame unwinds the whole frame chain:
    // Task temporaries destroy callee frames, parked waiters unlink
    // from channel queues and the semtable, and shadow-stack roots
    // deregister. This is the forced shutdown of Section 5.4. The
    // unwind runs user code (deferred functions, destructors) and so
    // can itself fail: a failure quarantines the goroutine instead of
    // crashing the run (crash-safe reclaim).
    bool destroyStarted = false;
    try {
        if (injector_.enabled() &&
            injector_.decide(FaultSite::Reclaim, clock_.now(),
                             g->id()) == FaultKind::ReclaimFailure) {
            throw InjectedFault("injected reclaim failure");
        }
        destroyStarted = true;
        forcedUnwind_ = true;
        forcedUnwindFailed_ = false;
        g->top_.destroy();
        forcedUnwind_ = false;
        if (forcedUnwindFailed_) {
            // A defer or destructor threw mid-unwind; the compiler
            // routed it into the promise, which recorded it here (an
            // exception must not escape destroy()). The frame chain
            // is partially destroyed: abandon it and quarantine.
            forcedUnwindFailed_ = false;
            quarantineGoroutine(g, forcedUnwindWhy_,
                                /*framesLost=*/true);
            if (wasMain) {
                mainDone_ = true;
                result_.mainReclaimed = true;
            }
            return;
        }
    } catch (...) {
        forcedUnwind_ = false;
        std::string why = "unknown error";
        try {
            throw;
        } catch (const std::exception& ex) {
            why = ex.what();
        } catch (...) {
        }
        quarantineGoroutine(g, why, destroyStarted);
        if (wasMain) {
            mainDone_ = true;
            result_.mainReclaimed = true;
        }
        return;
    }
    g->top_ = {};
    g->resumePoint_ = {};
    resetForReuse(g);
    g->status_ = GStatus::Idle;
    freeg_.push_back(g);
    if (wasMain) {
        mainDone_ = true;
        result_.mainReclaimed = true;
    }
}

void
Runtime::quarantineGoroutine(Goroutine* g, const std::string& why,
                             bool framesLost)
{
    if (framesLost) {
        // destroy() itself threw: the frame chain is partially
        // destroyed and destroying it again would be undefined
        // behavior. Deliberately abandon what remains.
        g->top_ = {};
    }
    // else: the failure fired before unwinding began; the (intact)
    // frames are destroyed at runtime teardown.
    g->resumePoint_ = {};
    g->status_ = GStatus::Quarantined;
    g->blockedOn_.clear();
    g->blockedForever_ = false;
    g->panicking_ = false;
    g->panicMessage_.clear();
    g->recoverArmed_ = false;
    g->spuriousWake_ = false;
    g->cancelPending_ = false;
    g->cancelMessage_.clear();
    g->blockedSinceVt_ = 0;
    g->parkStartVt_ = 0;
    g->blockedSema_ = support::MaskedPtr<void>();
    // Scrub every wait queue: no wakeup must ever reach this
    // goroutine again. Channel queues drop quarantined waiters
    // lazily (Channel::firstActive); the semtable is purged here.
    semtable_.purgeGoroutine(g);
    emitEvent(TraceEvent::Quarantine, g->id(), g->waitReason_);
    collector_->reports().addQuarantine(g->id(), why, clock_.now());
    if (config_.verboseReports) {
        std::fprintf(stderr, "quarantine! goroutine %llu: %s\n",
                     static_cast<unsigned long long>(g->id()),
                     why.c_str());
    }
}

// ---------------------------------------------------------------------
// Guard subsystem: cancellation delivery, resurrection healing and
// the virtual-time watchdog (DESIGN.md Section 9).

void
Runtime::deliverCancel(Goroutine* g, const std::string& msg)
{
    emitEvent(TraceEvent::Cancel, g->id(), g->waitReason_);
    noteUnpark(g); // the delivery ends the park (resume will throw)
    g->cancelPending_ = true;
    g->cancelMessage_ = msg;
    ++g->cancelDeliveries_;
    ++cancelsDelivered_;
    // Scrub semaphore waiters eagerly: the operation is not granted,
    // so no waker may ever pop this goroutine's SemWaiter and ready()
    // it. Channel/select waiters live in the coroutine frames and are
    // unlinked by the unwind (or skipped lazily by firstActive).
    semtable_.purgeGoroutine(g);
    clearBlockedSema(g);
    g->status_ = GStatus::Runnable;
    g->waitReason_ = WaitReason::None;
    g->blockedOn_.clear();
    g->blockedForever_ = false;
    g->blockedSinceVt_ = 0;
    g->spuriousWake_ = false;
    // Direct enqueue at STW: no delayed-wakeup injection draw, no
    // race wake edge — the delivery point is a collector decision,
    // fully determined by (seed, config).
    sched_.enqueueReady(g);
}

void
Runtime::checkCancelCurrent()
{
    Goroutine* g = sched_.current();
    if (!g || !g->cancelPending_)
        return;
    std::string msg = std::move(g->cancelMessage_);
    g->cancelPending_ = false;
    g->cancelMessage_.clear();
    // Same bookkeeping as an injected panic: recover() must observe
    // the message while the DeadlockError unwinds the frame chain.
    g->panicking_ = true;
    g->panicMessage_ = msg;
    g->recoverArmed_ = false;
    throw guard::DeadlockError(msg);
}

void
Runtime::onResurrection(gc::Object* obj, const char* what)
{
    ++resurrections_;
    obj->clearPoisoned();
    collector_->reports().addResurrection(obj->objectName(), what,
                                          clock_.now());
    // Heal: a goroutine declared deadlocked on obj is demonstrably
    // reachable — the verdict was a false positive (the paper's
    // unsafe.Pointer hazard). Revive it to Waiting so the operation
    // now in progress can wake it through the ordinary path instead
    // of corrupting the wait queues.
    for (const auto& mp : allg_) {
        Goroutine* g = mp.get();
        if (g->status() != GStatus::Deadlocked &&
            g->status() != GStatus::PendingReclaim)
            continue;
        bool onObj = false;
        for (gc::Object* b : g->blockedOn_) {
            if (b == obj)
                onObj = true;
        }
        if (!onObj)
            continue;
        if (g->status() == GStatus::PendingReclaim)
            collector_->unstage(g);
        g->status_ = GStatus::Waiting;
        // The whole verdict for g was wrong, so disarm the tripwire
        // on all of B(g) — e.g. a select's other channels — lest one
        // revival report as several.
        for (gc::Object* b : g->blockedOn_)
            b->clearPoisoned();
        emitEvent(TraceEvent::Resurrect, g->id(), g->waitReason_);
    }
    if (config_.verboseReports) {
        std::fprintf(stderr, "resurrection! %s touched via %s\n",
                     obj->objectName(), what);
    }
}

size_t
Runtime::watchdogPressure() const
{
    if (!config_.watchdog.enabled)
        return 0;
    const support::VTime now = clock_.now();
    size_t n = 0;
    for (const auto& mp : allg_) {
        Goroutine* g = mp.get();
        if (g->status() == GStatus::Waiting &&
            isDeadlockCandidate(g->waitReason()) &&
            now - g->blockedSinceVt_ >=
                config_.watchdog.blockedThresholdNs) {
            ++n;
        }
    }
    return n;
}

bool
Runtime::watchdogPoll()
{
    if (!config_.watchdog.enabled)
        return false;
    const support::VTime now = clock_.now();
    if (now < nextWatchdogPollVt_)
        return false;
    nextWatchdogPollVt_ = now + config_.watchdog.pollIntervalNs;
    // Count over-threshold candidates and re-arm them: a live-but-
    // slow goroutine triggers at most one forced pass per threshold
    // period instead of one per poll.
    size_t over = 0;
    for (const auto& mp : allg_) {
        Goroutine* g = mp.get();
        if (g->status() == GStatus::Waiting &&
            isDeadlockCandidate(g->waitReason()) &&
            now - g->blockedSinceVt_ >=
                config_.watchdog.blockedThresholdNs) {
            ++over;
            g->blockedSinceVt_ = now;
        }
    }
    // Publish the shedding signal: the service layer reads this gauge
    // instead of rescanning allg per request.
    if (obs_)
        obs_->setWatchdogPressure(over);
    // Goroutines staged by the previous detecting cycle unwind at the
    // start of the *next* collection; they are no longer Waiting, so
    // without this clause a cycle that stages the last candidates
    // leaves them in PendingReclaim forever.
    if (over == 0 && collector_->pendingReclaim() == 0)
        return false;
    ++watchdogTriggers_;
    emitEvent(TraceEvent::WatchdogTrigger, 0);
    forceDetect_ = true;
    gcRequested_ = true;
    return true;
}

support::VTime
Runtime::watchdogNextWake() const
{
    if (!config_.watchdog.enabled)
        return support::VClock::kNoDeadline;
    support::VTime wake = support::VClock::kNoDeadline;
    if (collector_->pendingReclaim() > 0)
        wake = nextWatchdogPollVt_; // finish the staged reclaims
    for (const auto& mp : allg_) {
        Goroutine* g = mp.get();
        if (g->status() != GStatus::Waiting ||
            !isDeadlockCandidate(g->waitReason()))
            continue;
        const support::VTime cross =
            g->blockedSinceVt_ + config_.watchdog.blockedThresholdNs;
        wake = std::min(wake, std::max(cross, nextWatchdogPollVt_));
    }
    return wake;
}

bool
Runtime::watchdogRescue()
{
    if (!config_.watchdog.enabled)
        return false;
    // No runnable goroutine and no pending timer: without the
    // watchdog this is Go's fatal global deadlock. Force a detection
    // pass instead; every rung changes the status of each processed
    // candidate (Deadlocked, cancelled-Runnable, PendingReclaim), so
    // repeated rescues strictly shrink the candidate set and the
    // loop terminates.
    size_t candidates = 0;
    for (const auto& mp : allg_) {
        Goroutine* g = mp.get();
        if (g->status() == GStatus::Waiting &&
            isDeadlockCandidate(g->waitReason()))
            ++candidates;
    }
    if (candidates == 0 && collector_->pendingReclaim() == 0)
        return false;
    ++watchdogTriggers_;
    emitEvent(TraceEvent::WatchdogTrigger, 0);
    forceDetect_ = true;
    collectNow();
    const auto& cs = collector_->lastCycle();
    return cs.deadlocksFound > 0 || cs.cancelled > 0 ||
           cs.reclaimed > 0 || cs.quarantined > 0;
}

bool
cancelPending()
{
    Runtime* rt = Runtime::current();
    if (!rt)
        return false;
    Goroutine* g = rt->currentGoroutine();
    return g && g->cancelPending();
}

void
checkCancel()
{
    if (Runtime* rt = Runtime::current())
        rt->checkCancelCurrent();
}

// ---------------------------------------------------------------------
// Introspection.

size_t
Runtime::countByStatus(GStatus s) const
{
    size_t n = 0;
    for (const auto& mp : allg_) {
        if (mp.get()->status() == s)
            ++n;
    }
    return n;
}

void
Runtime::forEachGoroutine(
    const std::function<void(Goroutine*)>& fn) const
{
    for (const auto& mp : allg_)
        fn(mp.get());
}

std::string
Runtime::dumpGoroutines() const
{
    std::ostringstream os;
    for (const auto& mp : allg_) {
        Goroutine* g = mp.get();
        if (g->status() == GStatus::Idle)
            continue;
        os << "goroutine " << g->id() << " [" << statusName(g->status());
        if (g->status() == GStatus::Waiting)
            os << ", " << waitReasonName(g->waitReason());
        os << "]:\n";
        os << "  created by " << g->spawnSite().str() << "\n";
        if (g->status() == GStatus::Waiting ||
            g->status() == GStatus::Deadlocked ||
            g->status() == GStatus::PendingReclaim) {
            os << "  blocked at " << g->blockSite().str() << "\n";
        }
        os << "  stack: " << g->frameBytes() << " bytes";
        if (!g->blockedOn().empty())
            os << ", blocked on " << g->blockedOn().size()
               << " object(s)";
        if (g->blockedForever())
            os << " (blocked forever)";
        os << "\n";
    }
    return os.str();
}

std::vector<Goroutine*>
Runtime::blockedCandidates() const
{
    std::vector<Goroutine*> out;
    for (const auto& mp : allg_) {
        Goroutine* g = mp.get();
        if (g->status() == GStatus::Waiting &&
            isDeadlockCandidate(g->waitReason())) {
            out.push_back(g);
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// The run loop.

void
Runtime::runSlice(Goroutine* g)
{
    if (stwDepth_ != 0)
        support::panic("goroutine resumed during stop-the-world");
    if (g->spuriousWake_) {
        // Injected spurious wakeup: the goroutine burns a slice and
        // re-parks. It is NOT resumed — its waiter is still enqueued
        // and its wait state was retained; resuming would complete an
        // operation that was never granted.
        g->spuriousWake_ = false;
        support::VTime slice = config_.sliceCost;
        if (sched_.policy() == nullptr)
            slice += static_cast<support::VTime>(sched_.rng().nextBelow(
                static_cast<uint64_t>(config_.sliceCost) + 1));
        clock_.advance(slice);
        busyNs_ += slice;
        g->slicesRun_++;
        g->status_ = GStatus::Waiting;
        // The original parkStartVt_ is retained: the goroutine never
        // stopped waiting for its (ungranted) operation.
        emitEvent(TraceEvent::Park, g->id(), g->waitReason_);
        return;
    }

    sched_.setCurrent(g);
    g->status_ = GStatus::Running;
    // Virtual time advances per slice, with seeded jitter: this is
    // what makes timeout races seed- and load-dependent, the source
    // of microbenchmark flakiness (Section 6.1). Under a schedule
    // policy the jitter draw is skipped: virtual time must be a pure
    // function of the pick sequence for replay and model checking.
    support::VTime slice = config_.sliceCost;
    if (sched_.policy() == nullptr)
        slice += static_cast<support::VTime>(sched_.rng().nextBelow(
            static_cast<uint64_t>(config_.sliceCost) + 1));
    clock_.advance(slice);
    busyNs_ += slice;
    g->slicesRun_++;
    g->resumePoint_.resume();
    sched_.setCurrent(nullptr);
    // A user-level `catch` of a GoPanicError can strand the panic
    // bookkeeping set at throw time; it must not leak into a later
    // unhandled_exception and swallow an unrelated panic.
    g->panicking_ = false;
    g->recoverArmed_ = false;

    switch (g->status_) {
      case GStatus::Done:
        finalizeDone(g);
        break;
      case GStatus::Waiting:
      case GStatus::Runnable:
        break; // parked or yielded; queues already updated
      default:
        support::panic("goroutine suspended in unexpected status");
    }
}

void
Runtime::stopTheWorld()
{
    if (sched_.current())
        support::panic("stopTheWorld outside a scheduling safepoint");
    ++stwDepth_;
}

void
Runtime::startTheWorld()
{
    if (stwDepth_ <= 0)
        support::panic("startTheWorld without stopTheWorld");
    gc::ParallelMarker* pool = heap_.markerPool();
    if (pool && pool->jobActive())
        support::panic("startTheWorld with mark workers running");
    --stwDepth_;
}

void
Runtime::collectNow()
{
    gcRequested_ = false;
    const uint64_t heapAllocBefore = heap_.stats().heapAlloc;
    emitEvent(TraceEvent::GcStart, 0);
    stopTheWorld();
    collector_->collect();
    startTheWorld();
    emitEvent(TraceEvent::GcEnd, 0);
    if (obs_) {
        const auto& cs = collector_->lastCycle();
        obs_->onGcCycle(cs, heapAllocBefore, heap_.stats());
        if (obs_->gctrace()) {
            std::fprintf(stderr, "%s\n",
                         obs_->gctraceLine(cs, heapAllocBefore,
                                           heap_.stats(),
                                           clock_.now())
                             .c_str());
        }
    }
    if (oomPending_) {
        // The emergency collection for an injected allocation failure
        // has now run; the next failure starts a fresh OOM episode.
        oomPending_ = false;
        ++emergencyGcs_;
    }
    if (memCtl_.enabled()) {
        memCtl_.onGcCycle(heap_.liveBytes());
        if (config_.mem.scavengeOnGc)
            heap_.scavenge(config_.mem.scavengeKeepSpans);
    }
    publishMemGauges();
    if (config_.verifyEveryGc)
        assertInvariants("post-GC");
    if (config_.chargeGcPause) {
        const auto& cs = collector_->lastCycle();
        // Go's pacer limits GC CPU to roughly a quarter of the
        // machine: cap the concurrent-marking charge at a third of
        // the time elapsed since the previous cycle. The STW pause
        // is charged in full.
        support::VTime interval = clock_.now() - lastGcEndVt_;
        auto markCharge = static_cast<support::VTime>(cs.modeledMarkNs);
        if (markCharge > interval / 2)
            markCharge = interval / 2;
        auto charge =
            markCharge + static_cast<support::VTime>(cs.modeledStwNs);
        clock_.advance(charge);
        busyNs_ += charge;
        gcChargedNs_ += charge;
        lastGcEndVt_ = clock_.now();
        // GCCPUFraction: GC time relative to elapsed execution time
        // (the service occupies its cores for the whole run).
        heap_.stats().gcCpuFraction = clock_.now() == 0
            ? 0.0
            : static_cast<double>(gcChargedNs_) /
              static_cast<double>(clock_.now());
    }
    for (Goroutine* g : gcWaiters_)
        ready(g);
    gcWaiters_.clear();
}

void
Runtime::beginRun()
{
    running_ = true;
    result_ = RunResult{};
    mainDone_ = false;
    forceDetect_ = false;
    nextWatchdogPollVt_ =
        clock_.now() + config_.watchdog.pollIntervalNs;
}

Runtime::StepOutcome
Runtime::stepOnce(bool standalone)
{
    if (result_.panicked)
        return StepOutcome::Done;
    if (mainDone_) {
        // Program exit: main returned (or was reclaimed). Like
        // Go, remaining goroutines are abandoned, not awaited.
        result_.mainCompleted = !result_.mainReclaimed;
        return StepOutcome::Done;
    }
    if (injector_.enabled() &&
        injector_.decide(FaultSite::GcSafepoint, clock_.now(),
                         0) == FaultKind::ForceGc) {
        gcRequested_ = true; // adversarially timed collection
    }
    watchdogPoll();
    if (memPoll())
        return StepOutcome::Done;
    if (gcRequested_ || heap_.shouldCollect())
        collectNow();

    Goroutine* g = sched_.pickNext();
    if (!g) {
        if (clock_.hasPending()) {
            // Don't let the idle clock jump past a watchdog
            // deadline: a blocked candidate crossing its
            // threshold must be noticed at threshold + poll, not
            // at the next (possibly much later) timer fire.
            const support::VTime wake = watchdogNextWake();
            if (wake < clock_.nextDeadline()) {
                clock_.advance(std::max<support::VTime>(
                    0, wake - clock_.now()));
                return StepOutcome::Progress;
            }
            clock_.fireNext();
            return StepOutcome::Progress;
        }
        // The watchdog turns a would-be global deadlock into a
        // forced detection pass; the ladder may free goroutines.
        if (watchdogRescue())
            return StepOutcome::Progress;
        if (!standalone) {
            // A shard out of local work is not globally deadlocked:
            // remote messages may still arrive. The cluster driver
            // owns that verdict.
            return StepOutcome::Idle;
        }
        // No runnable goroutine, no timers: Go's fatal error
        // "all goroutines are asleep - deadlock!".
        result_.globalDeadlock = true;
        return StepOutcome::Done;
    }
    runSlice(g);
    return StepOutcome::Progress;
}

RunResult
Runtime::finishRun()
{
    if (race_)
        race_->finalize(collector_->reports());
    running_ = false;
    return result_;
}

void
Runtime::idleAdvanceTo(support::VTime t)
{
    const support::VTime wake = std::min(t, watchdogNextWake());
    if (wake > clock_.now())
        clock_.advance(wake - clock_.now());
}

RunResult
Runtime::driveLoop()
{
    beginRun();
    while (stepOnce(true) == StepOutcome::Progress) {
    }
    return finishRun();
}

// ---------------------------------------------------------------------
// Timer roots: pending runtime timers that reference channels keep
// those channels reachable (Go's active timers are GC roots); without
// this, a goroutine blocked on a time.After channel would be a false
// positive.

uint64_t
Runtime::pinTimerRoot(gc::Object* obj)
{
    auto entry = std::make_unique<TimerRootEntry>();
    entry->id = nextTimerRootId_++;
    entry->obj = obj;
    entry->slot.setSlot(&entry->obj);
    heap_.globalRoots().add(&entry->slot);
    uint64_t id = entry->id;
    timerRoots_.push_back(std::move(entry));
    return id;
}

void
Runtime::unpinTimerRoot(uint64_t id)
{
    for (auto it = timerRoots_.begin(); it != timerRoots_.end(); ++it) {
        if ((*it)->id == id) {
            timerRoots_.erase(it); // slot unlinks in its destructor
            return;
        }
    }
}

// ---------------------------------------------------------------------
// sync.Pool integration.

void
Runtime::registerPool(sync::PoolBase* pool)
{
    pools_.push_back(pool);
}

void
Runtime::unregisterPool(sync::PoolBase* pool)
{
    if (tearingDown_)
        return; // registry may already be gone (heap dies last)
    for (auto it = pools_.begin(); it != pools_.end(); ++it) {
        if (*it == pool) {
            pools_.erase(it);
            return;
        }
    }
}

void
Runtime::runPoolCleanups()
{
    for (sync::PoolBase* pool : pools_)
        pool->gcCleanup();
}

// ---------------------------------------------------------------------
// Accounting.

void
Runtime::noteFrameAlloc(size_t bytes)
{
    heap_.stats().stackInuse += bytes;
    lastFrameBytes_ = bytes;
}

void
Runtime::noteFrameFree(size_t bytes)
{
    auto& inuse = heap_.stats().stackInuse;
    inuse = inuse >= bytes ? inuse - bytes : 0;
}

uint64_t
Runtime::processCpuNs() const
{
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
}

// ---------------------------------------------------------------------
// Fault injection (chaos mode).

void
Runtime::notePanicking(const std::string& msg)
{
    Goroutine* g = sched_.current();
    if (!g)
        return;
    g->panicking_ = true;
    g->panicMessage_ = msg;
    g->recoverArmed_ = false;
}

void
Runtime::noteForcedUnwindFailure(const std::string& why)
{
    // Keep the first failure: later ones in the same unwind come
    // from frames skipped by the compiler's cleanup rerouting.
    if (!forcedUnwindFailed_) {
        forcedUnwindFailed_ = true;
        forcedUnwindWhy_ = why;
    }
}

void
Runtime::checkFaultAt(FaultSite site)
{
    if (!injector_.enabled())
        return;
    Goroutine* g = sched_.current();
    if (!g)
        return;
    switch (injector_.decide(site, clock_.now(), g->id())) {
      case FaultKind::Panic: {
        emitEvent(TraceEvent::Fault, g->id());
        std::string msg =
            std::string("injected panic at ") + faultSiteName(site);
        // This throw bypasses support::goPanic, so record the panic
        // on the goroutine directly for recover().
        g->panicking_ = true;
        g->panicMessage_ = msg;
        g->recoverArmed_ = false;
        throw InjectedFault(msg);
      }
      case FaultKind::ForceGc:
        emitEvent(TraceEvent::Fault, g->id());
        gcRequested_ = true;
        break;
      default:
        break;
    }
}

void
Runtime::onAllocCheck(size_t bytes)
{
    (void)bytes;
    if (!injector_.enabled() || !running_)
        return;
    Goroutine* g = sched_.current();
    if (!g)
        return; // out-of-goroutine allocation (setup): never fails
    if (injector_.decide(FaultSite::HeapAlloc, clock_.now(),
                         g->id()) != FaultKind::AllocFail) {
        return;
    }
    emitEvent(TraceEvent::Fault, g->id());
    if (oomPending_) {
        // A second failure before the emergency collection got to
        // run: Go's runtime throws a fatal out-of-memory error —
        // routed through the FatalReport bookkeeping first so the
        // post-mortem state (reports, fault log, trace tail) is
        // flushed with a replayable failing-seed line, instead of
        // the historical bare throw that took its evidence with it.
        const std::string what =
            "out of memory (injected allocation failure)";
        fatalOom(what);
        support::goPanic(what);
    }
    // First failure: a collection cannot run here — cycles only run
    // at scheduler safepoints, and raw pointers may be live within
    // the current slice — so request an emergency collection at the
    // next safepoint and let this allocation succeed from the
    // reserve.
    oomPending_ = true;
    gcRequested_ = true;
}

// ---------------------------------------------------------------------
// Memory-pressure ladder (DESIGN.md §14).

bool
Runtime::memPoll()
{
    if (!memCtl_.enabled())
        return false;
    const mem::PressureActions a = memCtl_.poll(heap_.liveBytes());
    if (a.scavenge) {
        heap_.scavenge(config_.mem.scavengeKeepSpans);
        ++memScavenges_;
    }
    if (a.forceGolf) {
        // Leaked deadlock cycles are the dominant memory pinner:
        // force an off-cycle detection pass exactly like a watchdog
        // trigger, so detection becomes memory recovery.
        forceDetect_ = true;
        gcRequested_ = true;
        ++memForcedGolfs_;
    }
    publishMemGauges();
    if (!a.fatal)
        return false;
    // FatalReport: we are at a scheduler safepoint, not inside a
    // goroutine slice, so there is no frame chain to unwind — fold
    // the termination into the run result (the global-deadlock
    // pattern) instead of throwing through the drive loop.
    std::ostringstream os;
    os << "soft heap limit exceeded for "
       << memCtl_.overLimitCycles() << " consecutive GC cycles";
    fatalOom(os.str());
    result_.panicked = true;
    result_.panicMessage = os.str();
    return true;
}

void
Runtime::publishMemGauges()
{
    if (!obs_)
        return;
    const gc::PoolStats& ps = heap_.poolStats();
    obs_->setMemSpans(ps.cachedSpans, ps.evictedSpans,
                      ps.scavengedSpans);
    if (!memCtl_.enabled())
        return;
    obs_->setMemPressure(memCtl_.ratio(heap_.liveBytes()));
    obs_->setMemLimit(memCtl_.softLimit());
}

void
Runtime::fatalOom(const std::string& what)
{
    ++fatalOoms_;
    Goroutine* g = sched_.current();
    detect::OomRecord rec;
    rec.goroutineId = g ? g->id() : 0;
    rec.liveBytes = heap_.liveBytes();
    rec.softLimitBytes = memCtl_.softLimit();
    rec.what = what;
    rec.vtime = clock_.now();
    collector_->reports().addOom(rec);
    flushPostMortem();
    // One-line failing-seed summary, chaos_runner -verify style: the
    // seed + config replays the episode exactly.
    std::fprintf(stderr,
                 "FAIL oom seed=%llu: %s (live=%llu limit=%llu)\n",
                 static_cast<unsigned long long>(config_.seed),
                 what.c_str(),
                 static_cast<unsigned long long>(rec.liveBytes),
                 static_cast<unsigned long long>(rec.softLimitBytes));
}

void
checkFault(FaultSite site)
{
    if (Runtime* rt = Runtime::current())
        rt->checkFaultAt(site);
}

// ---------------------------------------------------------------------
// Invariant verification (chaos mode).

std::vector<std::string>
Runtime::verifyInvariants()
{
    std::vector<std::string> violations;
    auto fail = [&violations](std::string msg) {
        violations.push_back(std::move(msg));
    };

    // Heap: counters must agree with the all-objects list, and every
    // object must pass its own self-check (e.g. Channel waiter-queue
    // consistency).
    std::unordered_set<const gc::Object*> live;
    uint64_t liveBytes = 0;
    heap_.forEachObject([&](gc::Object* obj) {
        live.insert(obj);
        liveBytes += obj->allocSize();
        std::string bad = obj->validate();
        if (!bad.empty())
            fail(std::string(obj->objectName()) + ": " + bad);
    });
    if (live.size() != heap_.liveObjects()) {
        std::ostringstream os;
        os << "heap liveObjects=" << heap_.liveObjects()
           << " but the all-objects list has " << live.size();
        fail(os.str());
    }
    if (liveBytes != heap_.liveBytes()) {
        std::ostringstream os;
        os << "heap liveBytes=" << heap_.liveBytes()
           << " but charged object bytes sum to " << liveBytes;
        fail(os.str());
    }

    // Pool allocator: bitmap disjointness/coverage, freeCount vs
    // popcount, pagemap membership, slot-reciprocal round-trip.
    std::string poolBad = heap_.verifyPool();
    if (!poolBad.empty())
        fail("pool allocator: " + poolBad);

    // Goroutines: per-status consistency, including the chaos states.
    size_t pendingReclaim = 0;
    for (const auto& mp : allg_) {
        Goroutine* g = mp.get();
        std::ostringstream os;
        os << "goroutine " << g->id() << " ["
           << statusName(g->status()) << "] ";
        const std::string who = os.str();
        switch (g->status()) {
          case GStatus::Idle:
            if (g->hasFrames())
                fail(who + "is idle but still owns frames");
            if (!g->roots_.empty())
                fail(who + "is idle with registered roots");
            break;
          case GStatus::Running:
            if (g != sched_.current())
                fail(who + "is running but not scheduled");
            break;
          case GStatus::Runnable:
            if (!g->hasFrames())
                fail(who + "is runnable without frames");
            if (g->spuriousWake_) {
                if (g->waitReason_ == WaitReason::None)
                    fail(who +
                         "spurious-runnable lost its wait state");
            } else if (g->waitReason_ != WaitReason::None) {
                fail(who + "is runnable with a stale wait reason");
            }
            break;
          case GStatus::Waiting: {
            if (!g->hasFrames())
                fail(who + "is waiting without frames");
            if (g->waitReason_ == WaitReason::None)
                fail(who + "is waiting with no wait reason");
            const bool semBacked =
                g->waitReason_ == WaitReason::MutexLock ||
                g->waitReason_ == WaitReason::RWMutexRLock ||
                g->waitReason_ == WaitReason::RWMutexWLock ||
                g->waitReason_ == WaitReason::WaitGroupWait ||
                g->waitReason_ == WaitReason::CondWait ||
                g->waitReason_ == WaitReason::SemAcquire;
            if (semBacked) {
                void* sema = g->blockedSema().get();
                if (!sema)
                    fail(who + "sem-blocked with no blockedSema");
                else if (!semtable_.hasWaiterOf(g, sema))
                    fail(who + "sem-blocked but absent from semtable");
            }
            for (gc::Object* obj : g->blockedOn()) {
                if (live.find(obj) == live.end())
                    fail(who + "blocked on a freed object");
            }
            break;
          }
          case GStatus::Deadlocked:
          case GStatus::PendingReclaim:
            if (!g->hasFrames())
                fail(who + "lost its frames before reclaim");
            for (gc::Object* obj : g->blockedOn()) {
                if (live.find(obj) == live.end())
                    fail(who + "blocked on a freed object");
            }
            if (g->status() == GStatus::PendingReclaim)
                ++pendingReclaim;
            break;
          case GStatus::Quarantined:
            if (!g->blockedOn().empty())
                fail(who + "quarantined with a retained blocked set");
            break;
          case GStatus::Done:
            // Done is transient within runSlice and must never be
            // observable at a safepoint.
            fail(who + "observed Done at a verification point");
            break;
        }
    }
    if (pendingReclaim != collector_->pendingReclaim()) {
        std::ostringstream os;
        os << "PendingReclaim goroutine count " << pendingReclaim
           << " != collector staged count "
           << collector_->pendingReclaim();
        fail(os.str());
    }

    // Semtable: masked keys, and every waiter must belong to a
    // goroutine that can still legitimately be woken or unwound.
    if (!semtable_.checkMaskedKeys())
        fail("semtable keys unmasked or treap invariants broken");
    semtable_.forEachWaiter([&](uintptr_t, SemWaiter* w) {
        if (!w->g) {
            fail("semtable waiter with a null goroutine");
            return;
        }
        Goroutine* wg = w->g;
        if (wg->status() == GStatus::Quarantined) {
            fail("semtable waiter survived the quarantine purge");
            return;
        }
        const bool ok =
            wg->status() == GStatus::Waiting ||
            wg->status() == GStatus::Deadlocked ||
            wg->status() == GStatus::PendingReclaim ||
            (wg->status() == GStatus::Runnable && wg->spuriousWake());
        if (!ok) {
            std::ostringstream os;
            os << "semtable waiter for goroutine " << wg->id()
               << " in status " << statusName(wg->status());
            fail(os.str());
        }
    });

    return violations;
}

void
Runtime::assertInvariants(const char* when)
{
    std::vector<std::string> v = verifyInvariants();
    if (v.empty())
        return;
    std::ostringstream os;
    os << "invariant violation (" << when << "):";
    for (const std::string& s : v)
        os << "\n  " << s;
    support::panic(os.str());
}

void
Runtime::flushPostMortem() const
{
    std::ostringstream os;
    os << "\n--- golfcc post-mortem ---\n";
    const detect::ReportLog& log = collector_->reports();
    if (!log.all().empty()) {
        os << "deadlock reports (" << log.all().size() << "):\n";
        for (const auto& r : log.all())
            os << r.str() << "\n";
    }
    if (!log.quarantines().empty()) {
        os << "quarantines (" << log.quarantines().size() << "):\n";
        for (const auto& q : log.quarantines())
            os << q.str() << "\n";
    }
    if (!log.ooms().empty()) {
        os << "fatal oom reports (" << log.ooms().size() << "):\n";
        for (const auto& o : log.ooms())
            os << o.str() << "\n";
    }
    if (injector_.injected() > 0) {
        const auto& faults = injector_.log();
        size_t start = faults.size() > 32 ? faults.size() - 32 : 0;
        os << "injected faults (" << faults.size() << "):\n";
        if (start > 0)
            os << "  ... " << start << " earlier faults elided\n";
        for (size_t i = start; i < faults.size(); ++i) {
            const FaultRecord& f = faults[i];
            os << "  #" << f.seq << " t=" << f.vtime << " g="
               << f.goroutineId << " " << faultSiteName(f.site) << " "
               << faultKindName(f.kind) << "\n";
        }
    }
    // Trace tail: prefer the full-fidelity tracer; fall back to the
    // always-on flight recorder (its whole point: recent history is
    // available post-mortem without ever enabling the tracer).
    std::vector<TraceRecord> recs = tracer_.records();
    const char* what = "trace tail";
    if (recs.empty() && obs_ && obs_->flight()) {
        recs = obs_->flight()->drain();
        what = "flight-recorder tail";
    }
    if (!recs.empty()) {
        size_t start = recs.size() > 64 ? recs.size() - 64 : 0;
        os << what << " (" << recs.size() - start << " of "
           << recs.size() << " events):\n";
        for (size_t i = start; i < recs.size(); ++i) {
            const TraceRecord& r = recs[i];
            os << "  t=" << r.t << " g=" << r.goroutineId << " "
               << traceEventName(r.event);
            if (r.reason != WaitReason::None)
                os << " (" << waitReasonName(r.reason) << ")";
            os << "\n";
        }
    }
    os << dumpGoroutines();
    os << "--- end post-mortem ---\n";
    std::fputs(os.str().c_str(), stderr);
}

// ---------------------------------------------------------------------
// Awaitable glue.

void
YieldAwaiter::await_suspend(std::coroutine_handle<> h) const
{
    Runtime::current()->yieldCurrent(h);
}

void
SleepAwaiter::await_suspend(std::coroutine_handle<> h) const
{
    Runtime::current()->sleepCurrent(h, duration, WaitReason::Sleep);
}

void
SleepUntilAwaiter::await_suspend(std::coroutine_handle<> h) const
{
    Runtime* rt = Runtime::current();
    support::VTime delay = deadline - rt->clock().now();
    rt->sleepCurrent(h, delay < 0 ? 0 : delay, WaitReason::Sleep);
}

void
IoAwaiter::await_suspend(std::coroutine_handle<> h) const
{
    Runtime::current()->sleepCurrent(h, duration, WaitReason::Io);
}

void
GcAwaiter::await_suspend(std::coroutine_handle<> h) const
{
    Runtime* rt = Runtime::current();
    Goroutine* g = rt->currentGoroutine();
    if (!g)
        support::panic("gcNow outside a goroutine");
    rt->park(g, h, WaitReason::GcWait, {}, false,
             Site{"<runtime>", 0, "GC"});
    rt->addGcWaiter(g);
    rt->requestGc();
}

void
busy(support::VTime d)
{
    Runtime* rt = Runtime::current();
    rt->clock().advance(d);
    rt->noteBusy(d);
}

} // namespace golf::rt
