#include "runtime/runtime.hpp"

#include <ctime>
#include <sstream>

#include "gc/marker.hpp"
#include "golf/collector.hpp"
#include "support/panic.hpp"
#include "sync/pool.hpp"

namespace golf::rt {

namespace {

/** Innermost-active-runtime stack (the process is single-threaded). */
std::vector<Runtime*>&
runtimeStack()
{
    static std::vector<Runtime*> stack;
    return stack;
}

} // namespace

Runtime*
Runtime::current()
{
    auto& stack = runtimeStack();
    return stack.empty() ? nullptr : stack.back();
}

namespace detail {

void
noteFrameAlloc(size_t bytes)
{
    if (Runtime* rt = Runtime::current())
        rt->noteFrameAlloc(bytes);
}

void
noteFrameFree(size_t bytes)
{
    if (Runtime* rt = Runtime::current())
        rt->noteFrameFree(bytes);
}

} // namespace detail

// ---------------------------------------------------------------------
// Promise glue.

void
Go::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept
{
    Goroutine* g = h.promise().g;
    if (g && Runtime::current())
        Runtime::current()->onGoroutineDone(g);
}

void
Go::promise_type::unhandled_exception()
{
    if (Runtime* rt = Runtime::current())
        rt->onGoroutinePanic(std::current_exception());
    else
        support::panic("goroutine exception outside a runtime");
}

// ---------------------------------------------------------------------
// Runtime lifecycle.

Runtime::Runtime(Config config)
    : config_(config),
      heap_(config.heap),
      sched_(*this, config.procs, config.seed)
{
    startCpuNs_ = processCpuNs();
    collector_ = std::make_unique<detect::Collector>(*this);
    runtimeStack().push_back(this);
}

Runtime::~Runtime()
{
    tearingDown_ = true;
    // Destroy surviving goroutine frames (leaked, deadlocked or
    // abandoned at main exit) while this runtime is still current:
    // waiter destructors must be able to reach channels and the
    // semtable, and frame accounting must resolve to us.
    for (auto& mp : allg_) {
        Goroutine* g = mp.get();
        if (g->hasFrames()) {
            g->top_.destroy();
            g->top_ = {};
            g->resumePoint_ = {};
        }
    }
    auto& stack = runtimeStack();
    if (stack.empty() || stack.back() != this)
        support::panic("Runtime teardown out of order");
    stack.pop_back();
}

// ---------------------------------------------------------------------
// Goroutine management.

Goroutine*
Runtime::obtainGoroutine()
{
    Goroutine* g;
    if (!freeg_.empty()) {
        // Goroutine reuse (Section 5.4): recycle a dead *g.
        g = freeg_.back();
        freeg_.pop_back();
    } else {
        gStorage_.push_back(std::make_unique<Goroutine>());
        g = gStorage_.back().get();
        // The allgs registry stores masked addresses so it never
        // leaks reachability to the marker (Section 5.4).
        allg_.push_back(support::MaskedPtr<Goroutine>(g));
    }
    g->id_ = nextGoId_++;
    g->status_ = GStatus::Runnable;
    return g;
}

void
Runtime::resetForReuse(Goroutine* g)
{
    // The paper's "special cleanup procedure": reset fields that a
    // blocking select/semaphore operation may have left behind, so a
    // deadlock-reclaimed *g is indistinguishable from a normally
    // terminated one.
    if (!g->roots_.empty())
        support::panic("goroutine recycled with registered roots");
    g->waitReason_ = WaitReason::None;
    g->blockedOn_.clear();
    g->blockedForever_ = false;
    g->spawnRefs_.clear();
    g->frameBytes_ = 0;
    g->liveEpoch_ = 0;
    g->reported_ = false;
    g->blockedSema_ = support::MaskedPtr<void>();
    g->selectChoice_ = -1;
    g->selectDone_ = false;
    g->isMain_ = false;
    g->spawnSite_ = Site{};
    g->blockSite_ = Site{};
}

Goroutine*
Runtime::spawn(Go&& task, Site site)
{
    if (!task.valid())
        support::panic("Runtime::spawn: invalid Go task");
    Goroutine* g = obtainGoroutine();
    g->top_ = task.release();
    g->top_.promise().g = g;
    g->resumePoint_ = g->top_;
    g->spawnSite_ = site;
    g->frameBytes_ = lastFrameBytes_;
    tracer_.record(clock_.now(), TraceEvent::Spawn, g->id());
    sched_.enqueueSpawn(g);
    return g;
}

void
Runtime::park(Goroutine* g, std::coroutine_handle<> resumePoint,
              WaitReason reason, std::vector<gc::Object*> blockedOn,
              bool forever, Site blockSite)
{
    if (g->status_ != GStatus::Running)
        support::panic("park of a non-running goroutine");
    g->resumePoint_ = resumePoint;
    g->status_ = GStatus::Waiting;
    g->waitReason_ = reason;
    g->blockedOn_ = std::move(blockedOn);
    g->blockedForever_ = forever;
    g->blockSite_ = blockSite;
    tracer_.record(clock_.now(), TraceEvent::Park, g->id(), reason);
}

void
Runtime::ready(Goroutine* g)
{
    if (g->status_ != GStatus::Waiting)
        support::panic("ready of a non-waiting goroutine");
    g->status_ = GStatus::Runnable;
    g->waitReason_ = WaitReason::None;
    g->blockedOn_.clear();
    g->blockedForever_ = false;
    tracer_.record(clock_.now(), TraceEvent::Ready, g->id());
    sched_.enqueueReady(g);
}

void
Runtime::yieldCurrent(std::coroutine_handle<> h)
{
    Goroutine* g = sched_.current();
    if (!g)
        support::panic("yield outside a goroutine");
    g->resumePoint_ = h;
    g->status_ = GStatus::Runnable;
    tracer_.record(clock_.now(), TraceEvent::Yield, g->id());
    sched_.enqueueReady(g);
}

void
Runtime::sleepCurrent(std::coroutine_handle<> h, support::VTime d,
                      WaitReason reason)
{
    Goroutine* g = sched_.current();
    if (!g)
        support::panic("sleep outside a goroutine");
    g->resumePoint_ = h;
    g->status_ = GStatus::Waiting;
    g->waitReason_ = reason;
    g->blockedOn_.clear();
    g->blockedForever_ = false;
    clock_.scheduleAfter(d < 0 ? 0 : d, [this, g] { ready(g); });
}

void
Runtime::onGoroutineDone(Goroutine* g)
{
    g->status_ = GStatus::Done;
    if (g->isMain_)
        mainDone_ = true;
}

void
Runtime::onGoroutinePanic(std::exception_ptr e)
{
    result_.panicked = true;
    try {
        std::rethrow_exception(e);
    } catch (const std::exception& ex) {
        result_.panicMessage = ex.what();
    } catch (...) {
        result_.panicMessage = "unknown panic";
    }
}

void
Runtime::finalizeDone(Goroutine* g)
{
    tracer_.record(clock_.now(), TraceEvent::Done, g->id());
    g->top_.destroy();
    g->top_ = {};
    g->resumePoint_ = {};
    resetForReuse(g);
    g->status_ = GStatus::Idle;
    freeg_.push_back(g);
}

void
Runtime::reclaimGoroutine(Goroutine* g)
{
    if (g->status_ != GStatus::PendingReclaim)
        support::panic("reclaim of a non-pending goroutine");
    const bool wasMain = g->isMain_;
    tracer_.record(clock_.now(), TraceEvent::Reclaim, g->id(),
                   g->waitReason_);
    // Destroying the outermost frame unwinds the whole frame chain:
    // Task temporaries destroy callee frames, parked waiters unlink
    // from channel queues and the semtable, and shadow-stack roots
    // deregister. This is the forced shutdown of Section 5.4.
    g->top_.destroy();
    g->top_ = {};
    g->resumePoint_ = {};
    resetForReuse(g);
    g->status_ = GStatus::Idle;
    freeg_.push_back(g);
    if (wasMain) {
        mainDone_ = true;
        result_.mainReclaimed = true;
    }
}

// ---------------------------------------------------------------------
// Introspection.

size_t
Runtime::countByStatus(GStatus s) const
{
    size_t n = 0;
    for (const auto& mp : allg_) {
        if (mp.get()->status() == s)
            ++n;
    }
    return n;
}

void
Runtime::forEachGoroutine(
    const std::function<void(Goroutine*)>& fn) const
{
    for (const auto& mp : allg_)
        fn(mp.get());
}

std::string
Runtime::dumpGoroutines() const
{
    std::ostringstream os;
    for (const auto& mp : allg_) {
        Goroutine* g = mp.get();
        if (g->status() == GStatus::Idle)
            continue;
        os << "goroutine " << g->id() << " [" << statusName(g->status());
        if (g->status() == GStatus::Waiting)
            os << ", " << waitReasonName(g->waitReason());
        os << "]:\n";
        os << "  created by " << g->spawnSite().str() << "\n";
        if (g->status() == GStatus::Waiting ||
            g->status() == GStatus::Deadlocked ||
            g->status() == GStatus::PendingReclaim) {
            os << "  blocked at " << g->blockSite().str() << "\n";
        }
        os << "  stack: " << g->frameBytes() << " bytes";
        if (!g->blockedOn().empty())
            os << ", blocked on " << g->blockedOn().size()
               << " object(s)";
        if (g->blockedForever())
            os << " (blocked forever)";
        os << "\n";
    }
    return os.str();
}

std::vector<Goroutine*>
Runtime::blockedCandidates() const
{
    std::vector<Goroutine*> out;
    for (const auto& mp : allg_) {
        Goroutine* g = mp.get();
        if (g->status() == GStatus::Waiting &&
            isDeadlockCandidate(g->waitReason())) {
            out.push_back(g);
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// The run loop.

void
Runtime::runSlice(Goroutine* g)
{
    sched_.setCurrent(g);
    g->status_ = GStatus::Running;
    // Virtual time advances per slice, with seeded jitter: this is
    // what makes timeout races seed- and load-dependent, the source
    // of microbenchmark flakiness (Section 6.1).
    support::VTime slice =
        config_.sliceCost +
        static_cast<support::VTime>(sched_.rng().nextBelow(
            static_cast<uint64_t>(config_.sliceCost) + 1));
    clock_.advance(slice);
    busyNs_ += slice;
    g->resumePoint_.resume();
    sched_.setCurrent(nullptr);

    switch (g->status_) {
      case GStatus::Done:
        finalizeDone(g);
        break;
      case GStatus::Waiting:
      case GStatus::Runnable:
        break; // parked or yielded; queues already updated
      default:
        support::panic("goroutine suspended in unexpected status");
    }
}

void
Runtime::collectNow()
{
    gcRequested_ = false;
    tracer_.record(clock_.now(), TraceEvent::GcStart, 0);
    collector_->collect();
    tracer_.record(clock_.now(), TraceEvent::GcEnd, 0);
    if (config_.chargeGcPause) {
        const auto& cs = collector_->lastCycle();
        // Go's pacer limits GC CPU to roughly a quarter of the
        // machine: cap the concurrent-marking charge at a third of
        // the time elapsed since the previous cycle. The STW pause
        // is charged in full.
        support::VTime interval = clock_.now() - lastGcEndVt_;
        auto markCharge = static_cast<support::VTime>(cs.modeledMarkNs);
        if (markCharge > interval / 2)
            markCharge = interval / 2;
        auto charge =
            markCharge + static_cast<support::VTime>(cs.modeledStwNs);
        clock_.advance(charge);
        busyNs_ += charge;
        gcChargedNs_ += charge;
        lastGcEndVt_ = clock_.now();
        // GCCPUFraction: GC time relative to elapsed execution time
        // (the service occupies its cores for the whole run).
        heap_.stats().gcCpuFraction = clock_.now() == 0
            ? 0.0
            : static_cast<double>(gcChargedNs_) /
              static_cast<double>(clock_.now());
    }
    for (Goroutine* g : gcWaiters_)
        ready(g);
    gcWaiters_.clear();
}

RunResult
Runtime::driveLoop()
{
    running_ = true;
    result_ = RunResult{};
    mainDone_ = false;

    while (true) {
        if (result_.panicked)
            break;
        if (mainDone_) {
            // Program exit: main returned (or was reclaimed). Like
            // Go, remaining goroutines are abandoned, not awaited.
            result_.mainCompleted = !result_.mainReclaimed;
            break;
        }
        if (gcRequested_ || heap_.shouldCollect())
            collectNow();

        Goroutine* g = sched_.pickNext();
        if (!g) {
            if (clock_.hasPending()) {
                clock_.fireNext();
                continue;
            }
            // No runnable goroutine, no timers: Go's fatal error
            // "all goroutines are asleep - deadlock!".
            result_.globalDeadlock = true;
            break;
        }
        runSlice(g);
    }

    running_ = false;
    return result_;
}

// ---------------------------------------------------------------------
// Timer roots: pending runtime timers that reference channels keep
// those channels reachable (Go's active timers are GC roots); without
// this, a goroutine blocked on a time.After channel would be a false
// positive.

uint64_t
Runtime::pinTimerRoot(gc::Object* obj)
{
    auto entry = std::make_unique<TimerRootEntry>();
    entry->id = nextTimerRootId_++;
    entry->obj = obj;
    entry->slot.setSlot(&entry->obj);
    heap_.globalRoots().add(&entry->slot);
    uint64_t id = entry->id;
    timerRoots_.push_back(std::move(entry));
    return id;
}

void
Runtime::unpinTimerRoot(uint64_t id)
{
    for (auto it = timerRoots_.begin(); it != timerRoots_.end(); ++it) {
        if ((*it)->id == id) {
            timerRoots_.erase(it); // slot unlinks in its destructor
            return;
        }
    }
}

// ---------------------------------------------------------------------
// sync.Pool integration.

void
Runtime::registerPool(sync::PoolBase* pool)
{
    pools_.push_back(pool);
}

void
Runtime::unregisterPool(sync::PoolBase* pool)
{
    if (tearingDown_)
        return; // registry may already be gone (heap dies last)
    for (auto it = pools_.begin(); it != pools_.end(); ++it) {
        if (*it == pool) {
            pools_.erase(it);
            return;
        }
    }
}

void
Runtime::runPoolCleanups()
{
    for (sync::PoolBase* pool : pools_)
        pool->gcCleanup();
}

// ---------------------------------------------------------------------
// Accounting.

void
Runtime::noteFrameAlloc(size_t bytes)
{
    heap_.stats().stackInuse += bytes;
    lastFrameBytes_ = bytes;
}

void
Runtime::noteFrameFree(size_t bytes)
{
    auto& inuse = heap_.stats().stackInuse;
    inuse = inuse >= bytes ? inuse - bytes : 0;
}

uint64_t
Runtime::processCpuNs() const
{
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
}

// ---------------------------------------------------------------------
// Awaitable glue.

void
YieldAwaiter::await_suspend(std::coroutine_handle<> h) const
{
    Runtime::current()->yieldCurrent(h);
}

void
SleepAwaiter::await_suspend(std::coroutine_handle<> h) const
{
    Runtime::current()->sleepCurrent(h, duration, WaitReason::Sleep);
}

void
SleepUntilAwaiter::await_suspend(std::coroutine_handle<> h) const
{
    Runtime* rt = Runtime::current();
    support::VTime delay = deadline - rt->clock().now();
    rt->sleepCurrent(h, delay < 0 ? 0 : delay, WaitReason::Sleep);
}

void
IoAwaiter::await_suspend(std::coroutine_handle<> h) const
{
    Runtime::current()->sleepCurrent(h, duration, WaitReason::Io);
}

void
GcAwaiter::await_suspend(std::coroutine_handle<> h) const
{
    Runtime* rt = Runtime::current();
    Goroutine* g = rt->currentGoroutine();
    if (!g)
        support::panic("gcNow outside a goroutine");
    rt->park(g, h, WaitReason::GcWait, {}, false,
             Site{"<runtime>", 0, "GC"});
    rt->addGcWaiter(g);
    rt->requestGc();
}

void
busy(support::VTime d)
{
    Runtime* rt = Runtime::current();
    rt->clock().advance(d);
    rt->noteBusy(d);
}

} // namespace golf::rt
