/**
 * @file
 * Go-style defer/recover for goroutine bodies.
 *
 * GOLF_DEFER registers a cleanup that runs when the enclosing scope
 * exits — on normal return, while a Go-level panic unwinds the frame
 * chain, or when the collector force-destroys a deadlocked goroutine's
 * frames (the Section 5.4 forced shutdown). Deferred functions run in
 * LIFO order per scope, exactly like C++ destructors, which is how Go
 * orders defers within a function.
 *
 * recover(): inside a deferred function running during a panic unwind,
 * returns the panic message and arms the goroutine so the *enclosing
 * coroutine frame* swallows the exception and completes with its zero
 * value — Go's "recover stops the panic at the enclosing function"
 * semantics, mapped onto coroutine frames. Outside an unwind it
 * returns nullopt and has no effect.
 *
 * Forced-reclaim interaction: frame destruction runs Defer bodies with
 * no exception in flight, so a *throwing* deferred function propagates
 * out of Handle::destroy() — that is the hook the chaos tests use to
 * exercise the collector's quarantine path (~Defer is noexcept(false)
 * for exactly this reason).
 */
#ifndef GOLFCC_RUNTIME_DEFER_HPP
#define GOLFCC_RUNTIME_DEFER_HPP

#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <utility>

namespace golf::rt {

class Defer
{
  public:
    template <typename Fn>
    explicit Defer(Fn&& fn)
        : fn_(std::forward<Fn>(fn)),
          uncaughtAtEntry_(std::uncaught_exceptions())
    {}

    /** noexcept(false): a deferred function that throws during frame
     *  destruction (no panic in flight) must propagate so reclaim can
     *  quarantine the goroutine instead of std::terminate'ing. */
    ~Defer() noexcept(false);

    Defer(const Defer&) = delete;
    Defer& operator=(const Defer&) = delete;

  private:
    std::function<void()> fn_;
    /** Exception-in-flight count at construction; a higher count at
     *  destruction means we are unwinding a panic. */
    int uncaughtAtEntry_;
};

/**
 * Go's recover(): meaningful only inside a deferred function while a
 * panic unwinds the current goroutine. Returns the panic message and
 * stops the panic at the enclosing coroutine frame; returns nullopt
 * (and does nothing) otherwise.
 */
std::optional<std::string> recover();

/** Whether the current goroutine is unwinding a panic right now. */
bool panicking();

#define GOLF_DEFER_CONCAT2(a, b) a##b
#define GOLF_DEFER_CONCAT(a, b) GOLF_DEFER_CONCAT2(a, b)

/** GOLF_DEFER([&]{ ... }); — the `defer` statement. */
#define GOLF_DEFER(...) \
    ::golf::rt::Defer GOLF_DEFER_CONCAT(golfDefer_, __COUNTER__)( \
        __VA_ARGS__)

} // namespace golf::rt

#endif // GOLFCC_RUNTIME_DEFER_HPP
