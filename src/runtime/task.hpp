/**
 * @file
 * Coroutine task types: Go (a goroutine body) and Task<T> (a callee).
 *
 * A goroutine is a chain of coroutine frames: the outermost frame has
 * promise type Go::promise_type; nested calls are Task<T> coroutines
 * awaited with symmetric transfer. Blocking awaitables suspend the
 * innermost frame and record it as the goroutine's resume point, so
 * the scheduler can resume exactly where the goroutine parked.
 *
 * Frame bytes are tracked through the promises' operator new/delete;
 * this is the StackInuse metric of Table 2 and the "Stack size" line
 * of GOLF's deadlock reports.
 *
 * Forced shutdown of a deadlocked goroutine destroys the outermost
 * frame; Task temporaries living in that frame destroy their callee
 * frames recursively, and channel/semaphore waiter objects living in
 * the frames deregister from their wait queues in their destructors —
 * the C++ shape of the paper's "special cleanup procedure" (§5.4).
 */
#ifndef GOLFCC_RUNTIME_TASK_HPP
#define GOLFCC_RUNTIME_TASK_HPP

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

#include "support/panic.hpp"

namespace golf::rt {

class Goroutine;

namespace detail {

/** Frame-byte accounting hooks (implemented in runtime.cpp). */
void noteFrameAlloc(size_t bytes);
void noteFrameFree(size_t bytes);

/**
 * Size-tracked coroutine-frame allocation (implemented in
 * runtime.cpp). Out of line on purpose: the size header lives at a
 * negative offset from the returned pointer, and when GCC inlines
 * that pointer arithmetic into a coroutine's ramp function its
 * -Wmismatched-new-delete analysis misattributes the underlying
 * allocator pair.
 */
void* frameAlloc(size_t n);
void frameFree(void* p);

/**
 * recover() support (implemented in runtime.cpp): true when a
 * deferred function in the frame that just threw called recover(),
 * meaning this frame absorbs the panic and completes with its zero
 * value instead of propagating the exception.
 */
bool consumeRecover();

/**
 * True while the runtime is force-destroying a goroutine's frames
 * (reclaim or teardown). Compilers route an exception thrown by a
 * local's destructor during coroutine destroy() into
 * promise.unhandled_exception(); during a forced unwind the promise
 * must not treat that as a goroutine panic — it records the failure
 * on the runtime with noteForcedUnwindFailure() and returns, letting
 * destroy() finish. The reclaim path then quarantines the goroutine.
 * (Exceptions must never escape destroy(): the call sites are
 * noexcept destructors, and a potentially-throwing ~Task ICEs GCC's
 * coroutine lowering.)
 */
bool forcedUnwindActive();

/** Record a defer/destructor failure observed during a forced
 *  unwind; the reclaim/teardown path reads it after destroy(). */
void noteForcedUnwindFailure();

/** Mixin giving a promise size-tracked frame allocation. */
struct FrameAccounting
{
    static void* operator new(size_t n) { return frameAlloc(n); }
    static void operator delete(void* p) { frameFree(p); }
};

} // namespace detail

/**
 * The return type of a goroutine body. Created suspended; ownership
 * of the frame passes to the Goroutine at spawn.
 */
class Go
{
  public:
    struct promise_type : detail::FrameAccounting
    {
        /** Back-pointer to the owning goroutine; set at spawn. */
        Goroutine* g = nullptr;
        size_t frameBytes = 0;

        Go
        get_return_object()
        {
            return Go(Handle::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }
            void await_suspend(
                std::coroutine_handle<promise_type> h) noexcept;
            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception();
    };

    using Handle = std::coroutine_handle<promise_type>;

    Go() = default;
    explicit Go(Handle h) : handle_(h) {}

    Go(Go&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}

    Go&
    operator=(Go&& o) noexcept
    {
        if (this != &o) {
            reset();
            handle_ = std::exchange(o.handle_, {});
        }
        return *this;
    }

    ~Go() { reset(); }

    Go(const Go&) = delete;
    Go& operator=(const Go&) = delete;

    /** Transfer the frame to a spawner. */
    Handle release() { return std::exchange(handle_, {}); }

    bool valid() const { return static_cast<bool>(handle_); }

  private:
    void
    reset()
    {
        if (handle_)
            handle_.destroy();
        handle_ = {};
    }

    Handle handle_;
};

/**
 * A coroutine callee awaited from a goroutine body (or from another
 * Task). Completion resumes the awaiting frame by symmetric transfer.
 */
template <typename T = void>
class Task;

namespace detail {

template <typename Derived>
struct TaskPromiseBase : FrameAccounting
{
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;
    /** Panic stopped here by recover(): yield the zero value. */
    bool recovered = false;

    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Derived> h) noexcept
        {
            return h.promise().continuation;
        }

        void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }

    void
    unhandled_exception()
    {
        if (forcedUnwindActive()) {
            noteForcedUnwindFailure();
            return;
        }
        // Go semantics: recover() in a deferred function stops the
        // panic at the enclosing function, which returns its zero
        // value. The defers ran during unwinding, before we get here.
        if (consumeRecover()) {
            recovered = true;
            return;
        }
        exception = std::current_exception();
    }
};

} // namespace detail

template <typename T>
class Task
{
  public:
    struct promise_type : detail::TaskPromiseBase<promise_type>
    {
        std::optional<T> value;

        Task
        get_return_object()
        {
            return Task(Handle::from_promise(*this));
        }

        template <typename U>
        void
        return_value(U&& v)
        {
            value.emplace(std::forward<U>(v));
        }
    };

    using Handle = std::coroutine_handle<promise_type>;

    Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;
    Task& operator=(Task&&) = delete;

    ~Task()
    {
        if (handle_)
            handle_.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> parent) noexcept
    {
        handle_.promise().continuation = parent;
        return handle_;
    }

    T
    await_resume()
    {
        auto& p = handle_.promise();
        if (p.exception)
            std::rethrow_exception(p.exception);
        if (p.recovered) {
            if constexpr (std::is_default_constructible_v<T>)
                return T{};
            else
                support::panic(
                    "recover() in a Task whose value type has no "
                    "zero value");
        }
        return std::move(*p.value);
    }

  private:
    explicit Task(Handle h) : handle_(h) {}
    Handle handle_;
};

template <>
class Task<void>
{
  public:
    struct promise_type : detail::TaskPromiseBase<promise_type>
    {
        Task
        get_return_object()
        {
            return Task(Handle::from_promise(*this));
        }

        void return_void() {}
    };

    using Handle = std::coroutine_handle<promise_type>;

    Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;
    Task& operator=(Task&&) = delete;

    ~Task()
    {
        if (handle_)
            handle_.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> parent) noexcept
    {
        handle_.promise().continuation = parent;
        return handle_;
    }

    void
    await_resume()
    {
        auto& p = handle_.promise();
        if (p.exception)
            std::rethrow_exception(p.exception);
    }

  private:
    explicit Task(Handle h) : handle_(h) {}
    Handle handle_;
};

} // namespace golf::rt

#endif // GOLFCC_RUNTIME_TASK_HPP
