#include "runtime/context.hpp"

namespace golf::rt {

Context::Context(Runtime& rt, Context* parent)
    : rt_(rt), parent_(parent),
      done_(chan::makeChan<chan::Unit>(rt, 0))
{
    if (parent_)
        parent_->children_.push_back(this);
}

void
Context::trace(gc::Marker& m)
{
    m.mark(done_);
    for (Context* child : children_)
        m.mark(child);
    // The parent edge is deliberately untraced: a child must not
    // keep an otherwise-dropped ancestor (and its whole tree) alive.
}

void
Context::cancel()
{
    if (cancelled_)
        return;
    cancelled_ = true;
    if (timerId_ != 0) {
        rt_.clock().cancel(timerId_);
        timerId_ = 0;
    }
    if (timerRootId_ != 0) {
        rt_.unpinTimerRoot(timerRootId_);
        timerRootId_ = 0;
    }
    // Closing the done channel releases every waiter and makes the
    // done case of any select fire with ok=false — Go semantics.
    done_->doClose();
    for (Context* child : children_)
        child->cancel();
}

Context*
background(Runtime& rt)
{
    return rt.make<Context>(rt);
}

Context*
withCancel(Runtime& rt, Context* parent)
{
    return rt.make<Context>(rt, parent);
}

Context*
withTimeout(Runtime& rt, Context* parent, support::VTime d)
{
    Context* ctx = rt.make<Context>(rt, parent);
    // The armed timer must keep the context reachable (like
    // time.After): a goroutine waiting on ctx->done() is live until
    // the deadline fires.
    ctx->timerRootId_ = rt.pinTimerRoot(ctx);
    ctx->timerId_ = rt.clock().scheduleAfter(d, [ctx] {
        ctx->timerId_ = 0;
        uint64_t root = ctx->timerRootId_;
        ctx->timerRootId_ = 0;
        ctx->cancel();
        ctx->rt_.unpinTimerRoot(root);
    });
    return ctx;
}

} // namespace golf::rt
