#include "runtime/tracer.hpp"

#include <fstream>
#include <map>
#include <sstream>

namespace golf::rt {

const char*
traceEventName(TraceEvent ev)
{
    switch (ev) {
      case TraceEvent::Spawn: return "spawn";
      case TraceEvent::Park: return "park";
      case TraceEvent::Ready: return "ready";
      case TraceEvent::Yield: return "yield";
      case TraceEvent::Done: return "done";
      case TraceEvent::Reclaim: return "reclaim";
      case TraceEvent::Deadlock: return "deadlock";
      case TraceEvent::GcStart: return "gc-start";
      case TraceEvent::GcEnd: return "gc-end";
      case TraceEvent::Fault: return "fault";
      case TraceEvent::SpuriousWake: return "spurious-wake";
      case TraceEvent::DelayedWake: return "delayed-wake";
      case TraceEvent::Quarantine: return "quarantine";
      case TraceEvent::Cancel: return "cancel";
      case TraceEvent::WatchdogTrigger: return "watchdog-trigger";
      case TraceEvent::Resurrect: return "resurrect";
    }
    return "?";
}

size_t
Tracer::count(TraceEvent ev) const
{
    size_t n = 0;
    for (const auto& r : records_)
        n += r.event == ev ? 1 : 0;
    return n;
}

std::vector<TraceRecord>
Tracer::forGoroutine(uint64_t gid) const
{
    std::vector<TraceRecord> out;
    for (const auto& r : records_) {
        if (r.goroutineId == gid)
            out.push_back(r);
    }
    return out;
}

void
Tracer::writeCsv(const std::string& path) const
{
    std::ofstream out(path);
    out << "t_ns,event,goroutine,reason\n";
    for (const auto& r : records_) {
        out << r.t << "," << traceEventName(r.event) << ","
            << r.goroutineId << "," << waitReasonName(r.reason)
            << "\n";
    }
}

void
Tracer::writeChromeTrace(const std::string& path) const
{
    std::ofstream out(path);
    out << "[\n";
    for (size_t i = 0; i < records_.size(); ++i) {
        const TraceRecord& r = records_[i];
        out << "  {\"name\":\"" << traceEventName(r.event)
            << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
            << r.t / 1000 << ",\"pid\":1,\"tid\":"
            << r.goroutineId << ",\"args\":{\"reason\":\""
            << waitReasonName(r.reason) << "\"}}";
        if (i + 1 < records_.size())
            out << ",";
        out << "\n";
    }
    out << "]\n";
}

std::string
Tracer::summary() const
{
    std::map<TraceEvent, size_t> counts;
    for (const auto& r : records_)
        ++counts[r.event];
    std::ostringstream os;
    for (const auto& [ev, n] : counts)
        os << traceEventName(ev) << ": " << n << "\n";
    return os.str();
}

} // namespace golf::rt
