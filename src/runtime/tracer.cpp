#include "runtime/tracer.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace golf::rt {

const char*
traceEventName(TraceEvent ev)
{
    switch (ev) {
      case TraceEvent::Spawn: return "spawn";
      case TraceEvent::Park: return "park";
      case TraceEvent::Ready: return "ready";
      case TraceEvent::Yield: return "yield";
      case TraceEvent::Done: return "done";
      case TraceEvent::Reclaim: return "reclaim";
      case TraceEvent::Deadlock: return "deadlock";
      case TraceEvent::GcStart: return "gc-start";
      case TraceEvent::GcEnd: return "gc-end";
      case TraceEvent::Fault: return "fault";
      case TraceEvent::SpuriousWake: return "spurious-wake";
      case TraceEvent::DelayedWake: return "delayed-wake";
      case TraceEvent::Quarantine: return "quarantine";
      case TraceEvent::Cancel: return "cancel";
      case TraceEvent::WatchdogTrigger: return "watchdog-trigger";
      case TraceEvent::Resurrect: return "resurrect";
    }
    return "?";
}

void
Tracer::recordSlow(support::VTime t, TraceEvent ev, uint64_t gid,
                   WaitReason reason)
{
    if (capacity_ != 0 && records_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    records_.push_back(TraceRecord{t, ev, gid, reason});
}

size_t
Tracer::count(TraceEvent ev) const
{
    size_t n = 0;
    for (const auto& r : records_)
        n += r.event == ev ? 1 : 0;
    return n;
}

std::vector<TraceRecord>
Tracer::forGoroutine(uint64_t gid) const
{
    std::vector<TraceRecord> out;
    for (const auto& r : records_) {
        if (r.goroutineId == gid)
            out.push_back(r);
    }
    return out;
}

void
writeTraceCsv(std::ostream& out,
              const std::vector<TraceRecord>& records)
{
    out << "t_ns,event,goroutine,reason\n";
    for (const auto& r : records) {
        out << r.t << "," << traceEventName(r.event) << ","
            << r.goroutineId << "," << waitReasonName(r.reason)
            << "\n";
    }
}

void
writeTraceCsv(const std::string& path,
              const std::vector<TraceRecord>& records)
{
    std::ofstream out(path);
    writeTraceCsv(out, records);
}

namespace {

void
chromeInstant(std::ostream& out, const TraceRecord& r)
{
    out << "  {\"name\":\"" << traceEventName(r.event)
        << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << r.t / 1000
        << ",\"pid\":1,\"tid\":" << r.goroutineId
        << ",\"args\":{\"reason\":\"" << waitReasonName(r.reason)
        << "\"}}";
}

} // namespace

void
writeTraceChrome(std::ostream& out,
                 const std::vector<TraceRecord>& records)
{
    // First pass: pair each GcStart with the next GcEnd. Cycles never
    // nest (collection is stop-the-world), so a single open slot
    // suffices; unpaired endpoints fall back to instants.
    std::vector<int> role(records.size(), 0); // 0=instant 1=span 2=skip
    std::vector<support::VTime> spanEnd(records.size(), 0);
    size_t openStart = records.size();
    for (size_t i = 0; i < records.size(); ++i) {
        if (records[i].event == TraceEvent::GcStart) {
            openStart = i;
        } else if (records[i].event == TraceEvent::GcEnd &&
                   openStart < records.size()) {
            role[openStart] = 1;
            spanEnd[openStart] = records[i].t;
            role[i] = 2;
            openStart = records.size();
        }
    }

    out << "[\n";
    bool first = true;
    for (size_t i = 0; i < records.size(); ++i) {
        if (role[i] == 2)
            continue;
        if (!first)
            out << ",\n";
        first = false;
        if (role[i] == 1) {
            const TraceRecord& r = records[i];
            out << "  {\"name\":\"GC\",\"ph\":\"X\",\"ts\":"
                << r.t / 1000 << ",\"dur\":"
                << (spanEnd[i] - r.t) / 1000
                << ",\"pid\":1,\"tid\":0,\"args\":{}}";
        } else {
            chromeInstant(out, records[i]);
        }
    }
    out << "\n]\n";
}

void
writeTraceChrome(const std::string& path,
                 const std::vector<TraceRecord>& records)
{
    std::ofstream out(path);
    writeTraceChrome(out, records);
}

std::string
traceSummary(const std::vector<TraceRecord>& records,
             uint64_t dropped)
{
    std::map<TraceEvent, size_t> counts;
    for (const auto& r : records)
        ++counts[r.event];
    std::ostringstream os;
    for (const auto& [ev, n] : counts)
        os << traceEventName(ev) << ": " << n << "\n";
    if (dropped != 0)
        os << "dropped: " << dropped << "\n";
    return os.str();
}

void
Tracer::writeCsv(const std::string& path) const
{
    writeTraceCsv(path, records_);
}

void
Tracer::writeChromeTrace(const std::string& path) const
{
    writeTraceChrome(path, records_);
}

std::string
Tracer::summary() const
{
    return traceSummary(records_, dropped_);
}

} // namespace golf::rt
