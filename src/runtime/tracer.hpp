/**
 * @file
 * Scheduling-event tracer (the GoAT-style observability of related
 * work, Section 7): when enabled, the runtime records every spawn,
 * park, ready, completion, GC cycle and deadlock verdict with its
 * virtual timestamp. Traces can be dumped as CSV for offline
 * analysis, or summarized; the overhead when disabled is one branch
 * per event.
 *
 * The tracer is the *full-fidelity* path: an (optionally bounded)
 * in-order vector of every event. The always-on path is the obs
 * flight recorder (src/obs/flight.hpp), which drains into the same
 * writers below.
 */
#ifndef GOLFCC_RUNTIME_TRACER_HPP
#define GOLFCC_RUNTIME_TRACER_HPP

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/types.hpp"
#include "support/vclock.hpp"

namespace golf::rt {

enum class TraceEvent : uint8_t
{
    Spawn,     ///< go statement executed
    Park,      ///< goroutine blocked
    Ready,     ///< goroutine unblocked
    Yield,     ///< cooperative reschedule
    Done,      ///< goroutine finished normally
    Reclaim,   ///< forced shutdown of a deadlocked goroutine
    Deadlock,  ///< GOLF verdict for a goroutine
    GcStart,   ///< collection cycle began
    GcEnd,     ///< collection cycle finished
    Fault,         ///< injected fault fired (chaos mode)
    SpuriousWake,  ///< injected spurious wakeup delivered
    DelayedWake,   ///< genuine wakeup postponed by injection
    Quarantine,    ///< reclaim unwind failed; goroutine isolated
    Cancel,          ///< DeadlockError delivered (Cancel rung)
    WatchdogTrigger, ///< watchdog forced an off-cycle detection
    Resurrect,       ///< poisoned object touched; goroutine revived
};

const char* traceEventName(TraceEvent ev);

struct TraceRecord
{
    support::VTime t = 0;
    TraceEvent event = TraceEvent::Spawn;
    uint64_t goroutineId = 0;
    WaitReason reason = WaitReason::None;
};

/** "t_ns,event,goroutine,reason" rows. Shared by the tracer and the
 *  flight-recorder drain. */
void writeTraceCsv(std::ostream& out,
                   const std::vector<TraceRecord>& records);
void writeTraceCsv(const std::string& path,
                   const std::vector<TraceRecord>& records);

/** Chrome trace-event JSON (open in chrome://tracing or Perfetto):
 *  GcStart/GcEnd pairs become complete "X" duration spans on a
 *  dedicated GC row (tid 0) so cycles render as bars; every other
 *  record is an instant event on its goroutine's row. Timestamps are
 *  virtual microseconds. Unpaired GC endpoints degrade to instants. */
void writeTraceChrome(std::ostream& out,
                      const std::vector<TraceRecord>& records);
void writeTraceChrome(const std::string& path,
                      const std::vector<TraceRecord>& records);

/** One line per event kind with counts; reports drops if any. */
std::string traceSummary(const std::vector<TraceRecord>& records,
                         uint64_t dropped);

class Tracer
{
  public:
    bool enabled() const { return enabled_; }
    void enable()
    {
        enabled_ = true;
        if (toggleHook_)
            toggleHook_();
    }
    void disable()
    {
        enabled_ = false;
        if (toggleHook_)
            toggleHook_();
    }

    /** The runtime hooks this to refresh its one-branch armed flag
     *  when tests toggle the tracer mid-run. */
    void setToggleHook(std::function<void()> hook)
    {
        toggleHook_ = std::move(hook);
    }

    /** Bound the record vector: once `cap` records are held, further
     *  records are counted as drops instead of growing the vector
     *  (soak/chaos tiers run billions of virtual ns). 0 = unbounded. */
    void setCapacity(size_t cap) { capacity_ = cap; }
    size_t capacity() const { return capacity_; }
    uint64_t dropped() const { return dropped_; }

    void
    record(support::VTime t, TraceEvent ev, uint64_t gid,
           WaitReason reason = WaitReason::None)
    {
        if (enabled_)
            recordSlow(t, ev, gid, reason);
    }

    const std::vector<TraceRecord>& records() const
    {
        return records_;
    }

    size_t count(TraceEvent ev) const;

    /** Events concerning one goroutine, in order. */
    std::vector<TraceRecord> forGoroutine(uint64_t gid) const;

    /** "t_ns,event,goroutine,reason" rows. */
    void writeCsv(const std::string& path) const;

    /** See writeTraceChrome above. */
    void writeChromeTrace(const std::string& path) const;

    /** One line per event kind with counts. */
    std::string summary() const;

    void clear()
    {
        records_.clear();
        dropped_ = 0;
    }

  private:
    void recordSlow(support::VTime t, TraceEvent ev, uint64_t gid,
                    WaitReason reason);

    bool enabled_ = false;
    size_t capacity_ = 0;
    uint64_t dropped_ = 0;
    std::vector<TraceRecord> records_;
    std::function<void()> toggleHook_;
};

} // namespace golf::rt

#endif // GOLFCC_RUNTIME_TRACER_HPP
