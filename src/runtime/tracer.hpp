/**
 * @file
 * Scheduling-event tracer (the GoAT-style observability of related
 * work, Section 7): when enabled, the runtime records every spawn,
 * park, ready, completion, GC cycle and deadlock verdict with its
 * virtual timestamp. Traces can be dumped as CSV for offline
 * analysis, or summarized; the overhead when disabled is one branch
 * per event.
 */
#ifndef GOLFCC_RUNTIME_TRACER_HPP
#define GOLFCC_RUNTIME_TRACER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/types.hpp"
#include "support/vclock.hpp"

namespace golf::rt {

enum class TraceEvent : uint8_t
{
    Spawn,     ///< go statement executed
    Park,      ///< goroutine blocked
    Ready,     ///< goroutine unblocked
    Yield,     ///< cooperative reschedule
    Done,      ///< goroutine finished normally
    Reclaim,   ///< forced shutdown of a deadlocked goroutine
    Deadlock,  ///< GOLF verdict for a goroutine
    GcStart,   ///< collection cycle began
    GcEnd,     ///< collection cycle finished
    Fault,         ///< injected fault fired (chaos mode)
    SpuriousWake,  ///< injected spurious wakeup delivered
    DelayedWake,   ///< genuine wakeup postponed by injection
    Quarantine,    ///< reclaim unwind failed; goroutine isolated
    Cancel,          ///< DeadlockError delivered (Cancel rung)
    WatchdogTrigger, ///< watchdog forced an off-cycle detection
    Resurrect,       ///< poisoned object touched; goroutine revived
};

const char* traceEventName(TraceEvent ev);

struct TraceRecord
{
    support::VTime t = 0;
    TraceEvent event = TraceEvent::Spawn;
    uint64_t goroutineId = 0;
    WaitReason reason = WaitReason::None;
};

class Tracer
{
  public:
    bool enabled() const { return enabled_; }
    void enable() { enabled_ = true; }
    void disable() { enabled_ = false; }

    void
    record(support::VTime t, TraceEvent ev, uint64_t gid,
           WaitReason reason = WaitReason::None)
    {
        if (enabled_)
            records_.push_back(TraceRecord{t, ev, gid, reason});
    }

    const std::vector<TraceRecord>& records() const
    {
        return records_;
    }

    size_t count(TraceEvent ev) const;

    /** Events concerning one goroutine, in order. */
    std::vector<TraceRecord> forGoroutine(uint64_t gid) const;

    /** "t_ns,event,goroutine,reason" rows. */
    void writeCsv(const std::string& path) const;

    /** Chrome trace-event JSON (open in chrome://tracing or
     *  Perfetto): one instant event per record, one row ("thread")
     *  per goroutine, timestamps in virtual microseconds. */
    void writeChromeTrace(const std::string& path) const;

    /** One line per event kind with counts. */
    std::string summary() const;

    void clear() { records_.clear(); }

  private:
    bool enabled_ = false;
    std::vector<TraceRecord> records_;
};

} // namespace golf::rt

#endif // GOLFCC_RUNTIME_TRACER_HPP
