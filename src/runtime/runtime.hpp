/**
 * @file
 * The Runtime facade: the "Go runtime" of golfcc.
 *
 * Owns the managed heap, the scheduler, the virtual clock, the
 * semtable and the goroutine registry (allgs) + free pool, and drives
 * the run loop. The GC/deadlock-detection cycle itself lives in
 * golf::Collector; the runtime decides *when* a cycle runs
 * (allocation pacing or a forced runtime.GC()), always at a scheduling
 * safepoint — between goroutine slices — which is the STW window the
 * paper's detector relies on.
 */
#ifndef GOLFCC_RUNTIME_RUNTIME_HPP
#define GOLFCC_RUNTIME_RUNTIME_HPP

#include <coroutine>
#include <deque>
#include <functional>
#include <memory>
#include <source_location>
#include <string>
#include <thread>
#include <vector>

#include "gc/heap.hpp"
#include "guard/cancel.hpp"
#include "guard/watchdog.hpp"
#include "mem/pressure.hpp"
#include "obs/obs.hpp"
#include "race/detector.hpp"
#include "runtime/fault.hpp"
#include "runtime/goroutine.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/semtable.hpp"
#include "runtime/task.hpp"
#include "runtime/tracer.hpp"
#include "runtime/types.hpp"
#include "support/rng.hpp"
#include "support/vclock.hpp"

namespace golf::detect { class Collector; }
namespace golf::sync { class PoolBase; }

namespace golf::rt {

/** Which collection algorithm the runtime uses. */
enum class GcMode
{
    Baseline,  ///< Ordinary Go GC: every goroutine is a root.
    Golf,      ///< GOLF: runnable-only roots + liveness fixpoint.
};

/**
 * What GOLF does with detected deadlocks — the graded recovery
 * ladder (DESIGN.md Section 9). Each rung names the *strongest*
 * action the collector may take; rungs above Detect subsume the
 * reporting of the rungs below.
 *
 *   Detect     report only; keep the goroutine (and its memory).
 *   Cancel     deliver a guard::DeadlockError into the blocked
 *              operation (observable via GOLF_DEFER/rt::recover());
 *              after Config::guard.cancelAttempts deliveries the
 *              goroutine is kept as Deadlocked — never torn down.
 *   Reclaim    the paper's recovery: report, then forcibly shut the
 *              goroutine down and reclaim next cycle. (No cancel
 *              pass — bit-identical to the historical binary mode.)
 *   Quarantine the full ladder: cancel first; if the goroutine
 *              deadlocks again with its attempts exhausted, escalate
 *              to reclaim; a failed unwind quarantines it.
 *
 * ReportOnly is the historical name for Detect and stays valid.
 */
enum class Recovery
{
    Detect,      ///< Report; keep the goroutine (and its memory).
    Cancel,      ///< Deliver DeadlockError; never tear down.
    Reclaim,     ///< Report, then shut down and reclaim next cycle.
    Quarantine,  ///< Cancel, then escalate to reclaim/quarantine.
    ReportOnly = Detect, ///< Historical alias.
};

/** Parse "detect|cancel|reclaim|quarantine" (also "reportonly");
 *  returns false on an unknown name. */
bool parseRecovery(const std::string& name, Recovery& out);
const char* recoveryName(Recovery r);

struct Config
{
    int procs = 1;              ///< GOMAXPROCS analog.
    uint64_t seed = 1;          ///< Master seed for all randomness.
    /** Cluster shard identity (-1 = standalone runtime). Purely
     *  informational inside the runtime: reports and metrics carry
     *  it, and src/cluster keys link endpoints on it. */
    int shardId = -1;
    GcMode gcMode = GcMode::Golf;
    Recovery recovery = Recovery::Reclaim;
    /** Run detection only every Nth GC cycle (Section 6.2 closing
     *  remark); 1 = every cycle, the paper's default. */
    int detectEveryN = 1;
    /**
     * The Section 5.3 optimization the paper leaves as future work:
     * add blocked goroutines to the root set on the fly, as the
     * concurrency objects they are attached to are marked. Collapses
     * the daisy-chain fixpoint from n mark iterations to one and
     * removes the O(NS) per-round check cost; results are identical
     * (see the eager-liveness tests and the gc_mark_micro ablation).
     */
    bool eagerLivenessMarking = false;
    /**
     * Mark workers for parallel GC marking and the parallel GOLF
     * fixpoint (GOMAXPROCS for the collector, the paper's parallel
     * background marking). 0 = auto (hardware concurrency); 1 = the
     * exact historical serial behavior; N > 1 = a persistent pool of
     * N workers with work stealing. Deadlock reports and MemStats
     * are identical for every value (see DESIGN.md Section 8).
     */
    int gcWorkers = 0;
    gc::HeapConfig heap;
    /** Virtual time consumed by one scheduling slice. */
    support::VTime sliceCost = 2 * support::kMicrosecond;
    /** Print "partial deadlock!" report lines to stderr. */
    bool verboseReports = false;
    /**
     * Charge GC work to the virtual clock. Marking cost (modelled on
     * Go's concurrent marker: proportional to bytes and objects
     * marked) steals CPU time from the service — a bloated baseline
     * heap degrades latency (Table 2). The STW pause carries GOLF's
     * extra work — root-expansion checks, reclaim — which is why the
     * paper reports ~2.5x higher pause-per-cycle under GOLF while
     * GOLF still wins end-to-end on a leaky service.
     */
    bool chargeGcPause = true;
    /** Deterministic fault injection (chaos mode; see fault.hpp). */
    FaultConfig faults;
    /** Run verifyInvariants() at every collection safepoint and
     *  panic on a violation (chaos mode; expensive). */
    bool verifyEveryGc = false;
    /**
     * The -race build analog: happens-before race detection plus
     * predictive lock-order analysis (race::Detector). Off by
     * default; when off, every instrumentation hook is one inlined
     * null-pointer check — zero overhead, matching Go's contract
     * that an un-instrumented build pays nothing.
     */
    bool race = false;
    race::DetectorConfig raceCfg;
    /** Virtual-time blocked-goroutine watchdog (off by default; see
     *  guard/watchdog.hpp). Triggers off-cycle detection passes. */
    guard::WatchdogConfig watchdog;
    /** Recovery-ladder escalation policy (guard/watchdog.hpp). */
    guard::GuardPolicy guard;
    /** Memory-pressure ladder thresholds; inert unless
     *  heap.softLimitBytes is set (mem/pressure.hpp). */
    mem::MemConfig mem;
    /** Always-on telemetry: flight recorder, metrics registry,
     *  contention profiles, gctrace (obs/obs.hpp). When disabled the
     *  runtime holds no Obs and each event site costs one branch. */
    obs::Config obs;
    support::VTime gcStwFixedNs = 50 * support::kMicrosecond;
    double gcNsPerDetectCheck = 100.0;
    support::VTime gcNsPerIteration = 10 * support::kMicrosecond;
    support::VTime gcNsPerReclaim = 20 * support::kMicrosecond;
    double gcMarkNsPerByte = 1.0;
    double gcMarkNsPerObject = 20.0;

    /** gcWorkers with 0 resolved to the machine's concurrency. */
    int
    resolvedGcWorkers() const
    {
        if (gcWorkers > 0)
            return gcWorkers;
        unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<int>(hw);
    }
};

/** Outcome of Runtime::run(). */
struct RunResult
{
    bool mainCompleted = false;
    bool globalDeadlock = false;   ///< Go's fatal "all goroutines ...".
    bool panicked = false;         ///< A goroutine panicked (crash).
    std::string panicMessage;
    bool mainReclaimed = false;    ///< main itself was deadlocked.

    bool ok() const { return mainCompleted && !panicked; }
};

class Runtime
{
  public:
    explicit Runtime(Config config = {});
    ~Runtime();

    Runtime(const Runtime&) = delete;
    Runtime& operator=(const Runtime&) = delete;

    /// @{ Component access.
    gc::Heap& heap() { return heap_; }
    Scheduler& sched() { return sched_; }
    support::VClock& clock() { return clock_; }
    const support::VClock& clock() const { return clock_; }
    SemTable& semtable() { return semtable_; }
    Tracer& tracer() { return tracer_; }
    detect::Collector& collector() { return *collector_; }
    const Config& config() const { return config_; }
    /** The race detector, or nullptr when Config::race is off. Every
     *  instrumentation site is gated on exactly this null check. */
    race::Detector* raceDetector() const { return race_.get(); }
    /** The telemetry facade, or nullptr when Config::obs is off. */
    obs::Obs* obs() const { return obs_.get(); }
    /// @}

    /**
     * Trace-event fan-out: one predictable branch when neither the
     * tracer nor obs wants events; otherwise the slow path feeds the
     * full-fidelity tracer and/or the obs flight recorder + counters.
     * Timestamps are always the current virtual time.
     */
    void
    emitEvent(TraceEvent ev, uint64_t gid,
              WaitReason reason = WaitReason::None)
    {
        if (eventsArmed_)
            emitEventSlow(ev, gid, reason);
    }

    /** Allocate a managed object. */
    template <typename T, typename... Args>
    T*
    make(Args&&... args)
    {
        return heap_.make<T>(std::forward<Args>(args)...);
    }

    /**
     * Spawn a goroutine at an explicit site. fn must be a coroutine
     * function returning Go; args are copied into the frame, and any
     * argument that is a pointer to a gc::Object is pinned in the
     * goroutine's spawnRefs (they are its initial stack contents).
     * Use the GOLF_GO macro to capture the call site automatically.
     */
    template <typename Fn, typename... Args>
    Goroutine*
    goAt(Site site, Fn&& fn, Args&&... args)
    {
        Go task = std::invoke(std::forward<Fn>(fn), args...);
        Goroutine* g = spawn(std::move(task), site);
        (pinArg(g, args), ...);
        return g;
    }

    /** Run fn as the main goroutine until it returns (or the program
     *  dies). The runtime can be run multiple times sequentially. */
    template <typename Fn, typename... Args>
    RunResult
    runMain(Fn&& fn, Args&&... args)
    {
        Site site{"<main>", 0, "main"};
        Go task = std::invoke(std::forward<Fn>(fn), args...);
        Goroutine* g = spawn(std::move(task), site);
        g->isMain_ = true;
        (pinArg(g, args), ...);
        return driveLoop();
    }

    /// @{ Steppable execution (the cluster driver's interface).
    /// runMain() == startMain() + step() until Done + finishRun();
    /// driveLoop() is recomposed from exactly these pieces, so the
    /// standalone path is unchanged. In stepped mode an idle shard
    /// (no runnables, no timers) is NOT a global deadlock — remote
    /// messages may still arrive — so step() reports Idle and the
    /// cluster decides how far to advance the shard's clock.
    enum class StepOutcome
    {
        Progress,  ///< Ran a slice, fired a timer, or collected.
        Idle,      ///< No local work; waiting on external input.
        Done,      ///< Main returned, panicked, or was reclaimed.
    };

    /** Spawn main and arm the run loop without driving it. */
    template <typename Fn, typename... Args>
    void
    startMain(Fn&& fn, Args&&... args)
    {
        Site site{"<main>", 0, "main"};
        Go task = std::invoke(std::forward<Fn>(fn), args...);
        Goroutine* g = spawn(std::move(task), site);
        g->isMain_ = true;
        (pinArg(g, args), ...);
        beginRun();
    }

    /** One run-loop iteration in stepped (non-standalone) mode. */
    StepOutcome step() { return stepOnce(false); }

    /** Finalize a stepped run and collect its result. */
    RunResult finishRun();

    /** Advance an Idle shard's clock toward t (never past the next
     *  watchdog wake, so blocked-candidate thresholds are still
     *  noticed at threshold + poll). */
    void idleAdvanceTo(support::VTime t);

    /** The virtual time the watchdog next wants to look at blocked
     *  candidates (kNoDeadline when it never does). */
    support::VTime watchdogNextWake() const;

    /** Config::shardId (-1 when standalone). */
    int shardId() const { return config_.shardId; }

    /**
     * RAII "make this runtime current": pushes onto the active-
     * runtime stack so allocation accounting, panic observers and
     * Runtime::current() resolve to this shard while the cluster
     * driver steps it or manipulates its heap from outside a slice.
     */
    class Scope
    {
      public:
        explicit Scope(Runtime& rt);
        ~Scope();
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

      private:
        Runtime& rt_;
    };
    /// @}

    /** Request a collection at the next safepoint. */
    void requestGc() { gcRequested_ = true; }

    /// @{ Stop-the-world handshake. Collection always runs at a
    /// scheduling safepoint, but parallel marking adds real OS
    /// threads, so the boundary is now explicit: the world is stopped
    /// for the whole cycle (mark workers may run; goroutines may
    /// not), and the scheduler enforces it.
    void stopTheWorld();
    void startTheWorld();
    bool stwActive() const { return stwDepth_ > 0; }
    /// @}

    /// @{ Fault injection and invariant checking (chaos mode).
    FaultInjector& faults() { return injector_; }
    /** Injected panics that killed a single goroutine without
     *  crashing the run (FaultConfig::containInjectedPanics). */
    uint64_t containedPanics() const { return containedPanics_; }
    /** Injected allocation failures absorbed by an emergency GC. */
    uint64_t emergencyGcs() const { return emergencyGcs_; }
    /**
     * Cross-check waiter queues, the semtable, the goroutine registry
     * and the heap against each other. Returns one human-readable
     * string per violation (empty = consistent). Used after every
     * fault by the chaos runner, and at GC safepoints when
     * Config::verifyEveryGc is set.
     */
    std::vector<std::string> verifyInvariants();
    /** verifyInvariants() + support::panic on any violation. */
    void assertInvariants(const char* when);
    /** Dump post-mortem state (reports, quarantines, fault log,
     *  trace tail, goroutine dump) to stderr. */
    void flushPostMortem() const;
    /// @}

    /// @{ Recovery ladder + watchdog (guard subsystem).
    /**
     * Cancel rung delivery, called by the collector at STW: flag the
     * deadlocked goroutine, scrub its semtable waiters, and requeue
     * it Runnable. The blocked awaitable notices the flag when it
     * resumes and throws guard::DeadlockError via rt::checkCancel().
     */
    void deliverCancel(Goroutine* g, const std::string& msg);
    /** Body of the free checkCancel(): consume the pending flag and
     *  throw guard::DeadlockError with panic bookkeeping armed. */
    void checkCancelCurrent();
    /** DeadlockErrors delivered so far (Cancel/Quarantine rungs). */
    uint64_t cancelsDelivered() const { return cancelsDelivered_; }
    /** Cancelled goroutines that died without recovering. */
    uint64_t cancelDeaths() const { return cancelDeaths_; }
    /**
     * A poisoned concurrency object was touched after its blocked
     * goroutine was declared deadlocked — a GOLF false positive the
     * paper's unsafe.Pointer hazard would have turned into silent
     * corruption. Records a resurrection report, clears the poison
     * and revives any staged-for-reclaim goroutine parked on obj so
     * the wakeup proceeds legitimately.
     */
    void onResurrection(gc::Object* obj, const char* what);
    /** Resurrections detected (and healed) so far. */
    uint64_t resurrections() const { return resurrections_; }
    /** Deadlock-candidate goroutines blocked longer than the watchdog
     *  threshold right now (the service layer's shedding signal). */
    size_t watchdogPressure() const;
    /** Off-cycle detection passes the watchdog has triggered. */
    uint64_t watchdogTriggers() const { return watchdogTriggers_; }
    /** Collector-side: consume the watchdog's force-detect request
     *  (true at most once per trigger). */
    bool
    consumeForceDetect()
    {
        bool f = forceDetect_;
        forceDetect_ = false;
        return f;
    }
    /// @}

    /// @{ Memory-pressure ladder (mem/pressure.hpp, DESIGN.md §14).
    /** live / soft limit right now (0.0 when no limit is set) — the
     *  service layer's memory-shedding signal. */
    double
    memPressureRatio() const
    {
        return memCtl_.ratio(heap_.liveBytes());
    }
    /** Configured soft heap limit (0 = no limit). */
    uint64_t memLimitBytes() const { return memCtl_.softLimit(); }
    /** Scavenge passes the ladder has fired. */
    uint64_t memScavenges() const { return memScavenges_; }
    /** Off-cycle detection passes the ladder has forced. */
    uint64_t memForcedGolfs() const { return memForcedGolfs_; }
    /** FatalReport-rung OOM reports recorded (injected allocation
     *  failures that exhausted the emergency GC count here too). */
    uint64_t fatalOoms() const { return fatalOoms_; }
    /// @}

    /** Number of goroutines in a given status. */
    size_t countByStatus(GStatus s) const;

    /** Visit every goroutine ever created (the allgs array). */
    void forEachGoroutine(
        const std::function<void(Goroutine*)>& fn) const;

    /** Goroutines that are candidates for deadlock right now. */
    std::vector<Goroutine*> blockedCandidates() const;

    /** Human-readable dump of every goroutine (the SIGQUIT stack
     *  dump analog): id, status, wait reason, sites, frame bytes. */
    std::string dumpGoroutines() const;

    gc::MemStats& memStats() { return heap_.stats(); }

    /// @{ Used by awaitables and the collector (not user code).
    Goroutine* currentGoroutine() const { return sched_.current(); }
    void park(Goroutine* g, std::coroutine_handle<> resumePoint,
              WaitReason reason, std::vector<gc::Object*> blockedOn,
              bool forever, Site blockSite);
    void ready(Goroutine* g);
    /** Yield: requeue the current goroutine as runnable. */
    void yieldCurrent(std::coroutine_handle<> h);
    /** Park the current goroutine on a virtual-time timer. */
    void sleepCurrent(std::coroutine_handle<> h, support::VTime d,
                      WaitReason reason);
    /** Record the masked semaphore address blocking g (§5.4). */
    void setBlockedSema(Goroutine* g, const void* sema)
    {
        g->blockedSema_ = support::MaskedPtr<void>(
            const_cast<void*>(sema));
    }
    void clearBlockedSema(Goroutine* g)
    {
        g->blockedSema_ = support::MaskedPtr<void>();
    }
    void onGoroutineDone(Goroutine* g);
    void onGoroutinePanic(std::exception_ptr e);
    /** Fault-injection probe body (see the free checkFault()). */
    void checkFaultAt(FaultSite site);
    /** See detail::forcedUnwindActive() in task.hpp. */
    bool forcedUnwindActive() const { return forcedUnwind_; }
    /** See detail::noteForcedUnwindFailure() in task.hpp. */
    void noteForcedUnwindFailure(const std::string& why);
    /** goPanic observer target: record the in-flight panic message
     *  on the current goroutine so recover() can return it. */
    void notePanicking(const std::string& msg);
    void noteFrameAlloc(size_t bytes);
    void noteFrameFree(size_t bytes);
    /** Forcibly destroy a deadlocked goroutine's frames and recycle
     *  the Goroutine object (paper Sections 5.4-5.5). */
    void reclaimGoroutine(Goroutine* g);
    /** Enqueue a goroutine waiting for a forced GC. */
    void addGcWaiter(Goroutine* g) { gcWaiters_.push_back(g); }
    /** Register/unregister a pending-timer root pinning obj. */
    uint64_t pinTimerRoot(gc::Object* obj);
    void unpinTimerRoot(uint64_t id);
    /** sync.Pool integration: pools demote/drop caches per GC cycle
     *  (Go's poolCleanup, run in the STW window before marking). */
    void registerPool(sync::PoolBase* pool);
    void unregisterPool(sync::PoolBase* pool);
    void runPoolCleanups();
    /** CPU-time accounting hook used by the collector. */
    uint64_t processCpuNs() const;
    uint64_t startCpuNs() const { return startCpuNs_; }
    /** Virtual time spent doing work (slices, busy, GC pauses), as
     *  opposed to idle waits — the basis of the CPU%% metric. */
    support::VTime busyVirtualNs() const { return busyNs_; }
    void noteBusy(support::VTime d) { busyNs_ += d; }
    /// @}

    /** The currently active runtime (innermost), or nullptr. */
    static Runtime* current();

  private:
    Goroutine* spawn(Go&& task, Site site);
    Goroutine* obtainGoroutine();
    void resetForReuse(Goroutine* g);
    void finalizeDone(Goroutine* g);
    RunResult driveLoop();
    void beginRun();
    StepOutcome stepOnce(bool standalone);
    void runSlice(Goroutine* g);
    void collectNow();
    /** Deliver a wakeup immediately (no delayed-wakeup injection);
     *  fuses with a pending injected spurious wakeup. */
    void readyNow(Goroutine* g);
    /** Mid-unwind failure during forced reclaim: isolate g forever.
     *  framesLost = destroy() itself threw (frames are poison). */
    void quarantineGoroutine(Goroutine* g, const std::string& why,
                             bool framesLost);
    /** Heap allocation hook: injected OOM + emergency-GC retry. */
    void onAllocCheck(size_t bytes);
    /** Memory-pressure ladder safepoint poll (stepOnce). Returns
     *  true when the FatalReport rung fired (the run is over). */
    bool memPoll();
    /** Push pressure + span-cache gauges into obs. */
    void publishMemGauges();
    /** FatalReport rung bookkeeping: record a structured OOM and
     *  flush post-mortem state with a failing-seed summary line.
     *  Termination is the caller's move — goPanic inside a slice,
     *  a panicked RunResult at the safepoint. */
    void fatalOom(const std::string& what);
    void emitEventSlow(TraceEvent ev, uint64_t gid,
                       WaitReason reason);
    void refreshEventsArmed()
    {
        eventsArmed_ = tracer_.enabled() || obs_ != nullptr;
    }
    /** Feed obs the ending park (duration histograms + contention
     *  profiles) before g's wait state is consumed or rewritten.
     *  One predictable branch when obs is off. */
    void
    noteUnpark(Goroutine* g)
    {
        if (obs_ && g->parkStartVt() != 0)
            noteUnparkSlow(g);
    }
    void noteUnparkSlow(Goroutine* g);

    template <typename A>
    void
    pinArg(Goroutine* g, A& arg)
    {
        if constexpr (std::is_pointer_v<std::remove_reference_t<A>>) {
            using P = std::remove_pointer_t<std::remove_reference_t<A>>;
            if constexpr (std::is_base_of_v<gc::Object, P>) {
                if (arg)
                    g->spawnRefs().push_back(arg);
            }
        }
    }

    Config config_;
    /** Declared before heap_: the free hook installed on the heap
     *  calls into the detector, so it must outlive heap teardown. */
    std::unique_ptr<race::Detector> race_;
    gc::Heap heap_;
    support::VClock clock_;
    SemTable semtable_;
    Tracer tracer_;
    Scheduler sched_;
    FaultInjector injector_;
    mem::PressureController memCtl_;
    std::unique_ptr<detect::Collector> collector_;
    std::unique_ptr<obs::Obs> obs_;
    /** tracer_.enabled() || obs_ — the one-branch event gate. */
    bool eventsArmed_ = false;

    uint64_t containedPanics_ = 0;
    uint64_t emergencyGcs_ = 0;
    uint64_t memScavenges_ = 0;
    uint64_t memForcedGolfs_ = 0;
    uint64_t fatalOoms_ = 0;
    /** An injected allocation failure is pending: the next safepoint
     *  runs an emergency collection; a second failure before that
     *  relief arrives is a fatal OOM. */
    bool oomPending_ = false;

    std::deque<std::unique_ptr<Goroutine>> gStorage_;
    std::vector<support::MaskedPtr<Goroutine>> allg_;
    std::vector<Goroutine*> freeg_;
    uint64_t nextGoId_ = 1;

    /** Watchdog poll in the drive loop; also the no-runnable rescue
     *  that turns would-be global deadlocks into detection passes. */
    bool watchdogPoll();
    bool watchdogRescue();

    bool gcRequested_ = false;
    /** Watchdog asked for an off-cycle detection pass. */
    bool forceDetect_ = false;
    support::VTime nextWatchdogPollVt_ = 0;
    uint64_t watchdogTriggers_ = 0;
    uint64_t cancelsDelivered_ = 0;
    uint64_t cancelDeaths_ = 0;
    uint64_t resurrections_ = 0;
    int stwDepth_ = 0;
    std::vector<Goroutine*> gcWaiters_;
    bool mainDone_ = false;
    bool running_ = false;
    RunResult result_;
    size_t lastFrameBytes_ = 0;
    uint64_t startCpuNs_ = 0;
    support::VTime busyNs_ = 0;
    support::VTime gcChargedNs_ = 0;
    support::VTime lastGcEndVt_ = 0;

    struct TimerRootEntry
    {
        uint64_t id;
        gc::Object* obj;
        gc::RootSlot slot;
    };
    std::deque<std::unique_ptr<TimerRootEntry>> timerRoots_;
    uint64_t nextTimerRootId_ = 1;
    std::vector<sync::PoolBase*> pools_;
    /** Set during ~Runtime: pool objects deleted by heap teardown
     *  must not touch the (already destroyed) registry. */
    bool tearingDown_ = false;
    /** Set while force-destroying a goroutine's frames (reclaim or
     *  teardown): a throwing defer is routed by the compiler into
     *  promise.unhandled_exception(), which records it here instead
     *  of treating it as a goroutine panic; the reclaim path reads
     *  the slot after destroy() and quarantines the goroutine. */
    bool forcedUnwind_ = false;
    bool forcedUnwindFailed_ = false;
    std::string forcedUnwindWhy_;
};

/**
 * Spawn with automatic call-site capture — the `go` statement:
 *   GOLF_GO(rt, worker, ch, n);
 */
#define GOLF_GO(runtime_, ...) \
    (runtime_).goAt( \
        ::golf::rt::Site::from(std::source_location::current()), \
        __VA_ARGS__)

/// @{ In-goroutine awaitable operations.

/** Cooperative yield (Gosched analog). */
struct YieldAwaiter
{
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const;
    void await_resume() const noexcept {}
};
inline YieldAwaiter yield() { return {}; }

/** Park for a duration of virtual time (time.Sleep analog). */
struct SleepAwaiter
{
    support::VTime duration;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const;
    void await_resume() const noexcept {}
};
inline SleepAwaiter sleepFor(support::VTime d) { return {d}; }

/** Park until an absolute virtual deadline. Goroutines sharing a
 *  deadline wake simultaneously; their wakeup placement is the
 *  scheduler's (parallelism-dependent) choice — the natural way to
 *  express a tight scheduling race. */
struct SleepUntilAwaiter
{
    support::VTime deadline;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const;
    void await_resume() const noexcept {}
};
inline SleepUntilAwaiter sleepUntil(support::VTime t) { return {t}; }

/** Simulated blocking system call (treated as always-live, §5.4). */
struct IoAwaiter
{
    support::VTime duration;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const;
    void await_resume() const noexcept {}
};
inline IoAwaiter ioWait(support::VTime d) { return {d}; }

/** Force a GC cycle and wait for it (runtime.GC() analog). */
struct GcAwaiter
{
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const;
    void await_resume() const noexcept {}
};
inline GcAwaiter gcNow() { return {}; }

/** Consume virtual CPU time without suspending. */
void busy(support::VTime d);

/**
 * Fault-injection probe, called by every blocking awaitable at the
 * top of await_suspend (i.e. at a scheduling point, before any waiter
 * state is published). May throw InjectedFault — which propagates out
 * of the co_await exactly like a Go panic raised at that point.
 * No-op when no runtime is active or injection is disabled.
 */
void checkFault(FaultSite site);

/**
 * True when the current goroutine has a pending cancellation
 * (delivered by the Cancel rung) that has not yet been consumed.
 * Non-consuming: awaitables use it to roll back partial wait state
 * before throwing via checkCancel().
 */
bool cancelPending();

/**
 * Consume a pending cancellation and throw guard::DeadlockError,
 * arming the panic bookkeeping so defer/recover observe it exactly
 * like a Go panic. No-op when no cancellation is pending. Called by
 * every blocking awaitable at the top of await_resume, before it
 * touches the (never granted) operation state.
 */
void checkCancel();

/// @}

} // namespace golf::rt

#endif // GOLFCC_RUNTIME_RUNTIME_HPP
