#include "runtime/fault.hpp"

#include <sstream>

namespace golf::rt {

const char*
faultSiteName(FaultSite s)
{
    switch (s) {
      case FaultSite::ChanSend: return "chan-send";
      case FaultSite::ChanRecv: return "chan-recv";
      case FaultSite::Select: return "select";
      case FaultSite::MutexLock: return "mutex-lock";
      case FaultSite::RWMutexRLock: return "rwmutex-rlock";
      case FaultSite::RWMutexWLock: return "rwmutex-wlock";
      case FaultSite::WaitGroupWait: return "waitgroup-wait";
      case FaultSite::CondWait: return "cond-wait";
      case FaultSite::SemAcquire: return "sem-acquire";
      case FaultSite::Park: return "park";
      case FaultSite::Wakeup: return "wakeup";
      case FaultSite::HeapAlloc: return "heap-alloc";
      case FaultSite::GcSafepoint: return "gc-safepoint";
      case FaultSite::Reclaim: return "reclaim";
      case FaultSite::SpanMap: return "span-map";
    }
    return "?";
}

const char*
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::None: return "none";
      case FaultKind::Panic: return "panic";
      case FaultKind::SpuriousWakeup: return "spurious-wakeup";
      case FaultKind::DelayedWakeup: return "delayed-wakeup";
      case FaultKind::AllocFail: return "alloc-fail";
      case FaultKind::ForceGc: return "force-gc";
      case FaultKind::ReclaimFailure: return "reclaim-failure";
      case FaultKind::SpanMap: return "span-map";
    }
    return "?";
}

FaultInjector::FaultInjector(const FaultConfig& cfg, uint64_t masterSeed)
    : cfg_(cfg),
      // Decorrelate from the scheduler's stream while staying a pure
      // function of the master seed.
      rng_(masterSeed ^ 0xC4A05F0D5EEDull),
      spanRng_(masterSeed ^ 0x5A75FA17D5EEDull)
{
}

FaultKind
FaultInjector::decide(FaultSite site, support::VTime now, uint64_t gid)
{
    if (!cfg_.enabled)
        return FaultKind::None;
    ++decisions_;
    if (log_.size() >= cfg_.maxFaults)
        return FaultKind::None;

    // One uniform draw per decision; each site offers a menu of fault
    // kinds selected by cumulative probability thresholds.
    const double u = rng_.nextDouble();
    FaultKind kind = FaultKind::None;
    switch (site) {
      case FaultSite::Park:
        if (u < cfg_.spuriousWakeupProb)
            kind = FaultKind::SpuriousWakeup;
        break;
      case FaultSite::Wakeup:
        if (u < cfg_.delayedWakeupProb)
            kind = FaultKind::DelayedWakeup;
        break;
      case FaultSite::HeapAlloc:
        if (u < cfg_.allocFailProb)
            kind = FaultKind::AllocFail;
        break;
      case FaultSite::GcSafepoint:
        if (u < cfg_.forceGcProb)
            kind = FaultKind::ForceGc;
        break;
      case FaultSite::Reclaim:
        if (u < cfg_.reclaimFailureProb)
            kind = FaultKind::ReclaimFailure;
        break;
      default:
        // Blocking-operation sites: panic first, then a forced GC
        // timed adversarially right at the park.
        if (u < cfg_.panicProb)
            kind = FaultKind::Panic;
        else if (u < cfg_.panicProb + cfg_.forceGcProb)
            kind = FaultKind::ForceGc;
        break;
    }

    if (kind != FaultKind::None)
        log_.push_back(FaultRecord{log_.size(), now, site, kind, gid});
    return kind;
}

bool
FaultInjector::decideSpanMap(support::VTime now, uint64_t gid)
{
    if (!cfg_.enabled || cfg_.spanMapFailProb <= 0.0)
        return false;
    ++spanDecisions_;
    if (spanLog_.size() >= cfg_.maxFaults)
        return false;
    if (spanRng_.nextDouble() >= cfg_.spanMapFailProb)
        return false;
    spanLog_.push_back(FaultRecord{spanLog_.size(), now,
                                   FaultSite::SpanMap,
                                   FaultKind::SpanMap, gid});
    return true;
}

support::VTime
FaultInjector::drawDelay()
{
    const auto max = static_cast<uint64_t>(
        cfg_.delayMaxNs > 0 ? cfg_.delayMaxNs : 1);
    return static_cast<support::VTime>(rng_.nextBelow(max) + 1);
}

uint64_t
FaultInjector::countOf(FaultKind k) const
{
    uint64_t n = 0;
    for (const auto& r : log_)
        n += r.kind == k ? 1 : 0;
    return n;
}

std::string
FaultInjector::trace() const
{
    std::ostringstream os;
    for (const auto& r : log_) {
        os << r.seq << " t=" << r.vtime << " g=" << r.goroutineId
           << " " << faultSiteName(r.site) << " "
           << faultKindName(r.kind) << "\n";
    }
    return os.str();
}

std::string
FaultInjector::spanTrace() const
{
    std::ostringstream os;
    for (const auto& r : spanLog_) {
        os << r.seq << " t=" << r.vtime << " g=" << r.goroutineId
           << " " << faultSiteName(r.site) << " "
           << faultKindName(r.kind) << "\n";
    }
    return os.str();
}

} // namespace golf::rt
