/**
 * @file
 * Goroutine: the *g structure analog.
 *
 * A goroutine owns a chain of coroutine frames (its "stack"), a
 * shadow-stack root list (the GC-visible references held by those
 * frames), the set B(g) of concurrency objects it is blocked on
 * (Section 4.1), and bookkeeping for scheduling and deadlock
 * reporting. Goroutine objects are pooled and reused, mirroring the
 * Go runtime's *g reuse described in Section 5.4.
 */
#ifndef GOLFCC_RUNTIME_GOROUTINE_HPP
#define GOLFCC_RUNTIME_GOROUTINE_HPP

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gc/root.hpp"
#include "runtime/task.hpp"
#include "runtime/types.hpp"
#include "support/masked_ptr.hpp"
#include "support/vclock.hpp"

namespace golf::gc { class Marker; class Object; }

namespace golf::rt {

class Runtime;
class Scheduler;

class Goroutine
{
  public:
    using Id = uint64_t;

    /// @{ Identity and lifecycle.
    Id id() const { return id_; }
    GStatus status() const { return status_; }
    void setStatus(GStatus s) { status_ = s; }
    bool isMain() const { return isMain_; }
    /** Whether the goroutine still owns live coroutine frames. */
    bool hasFrames() const { return static_cast<bool>(top_); }
    /// @}

    /// @{ Wait state: why and on what the goroutine is parked.
    WaitReason waitReason() const { return waitReason_; }
    const std::vector<gc::Object*>& blockedOn() const
    {
        return blockedOn_;
    }
    /** True when parked on an operation that can never fire: nil
     *  channel or zero-case select (B(g) = {epsilon}, Section 4.1). */
    bool blockedForever() const { return blockedForever_; }
    /// @}

    /// @{ Sites for reports: where spawned, where blocked.
    const Site& spawnSite() const { return spawnSite_; }
    const Site& blockSite() const { return blockSite_; }
    /// @}

    /**
     * Reachable-liveness mark (LIVE+ of Section 4.1): the goroutine
     * was added to the expanding root set during the GC cycle with
     * this heap epoch.
     */
    bool liveAt(uint64_t epoch) const
    {
        return liveEpoch_.load(std::memory_order_relaxed) == epoch;
    }
    void setLiveAt(uint64_t epoch)
    {
        liveEpoch_.store(epoch, std::memory_order_relaxed);
    }
    /**
     * Atomically claim this goroutine for the cycle's root set: true
     * for exactly one caller per epoch. Parallel mark workers race
     * here via the eager-liveness hook; the winner (and only the
     * winner) marks the stack.
     */
    bool claimLiveAt(uint64_t epoch)
    {
        uint64_t seen = liveEpoch_.load(std::memory_order_relaxed);
        if (seen == epoch)
            return false;
        return liveEpoch_.compare_exchange_strong(
            seen, epoch, std::memory_order_relaxed,
            std::memory_order_relaxed);
    }

    /** Whether a deadlock report was already emitted for this g. */
    bool reported() const { return reported_; }
    void setReported() { reported_ = true; }

    /** Mark this goroutine's stack: registered root slots plus the
     *  references pinned by its spawn arguments. */
    void markStack(gc::Marker& marker);

    /** The shadow stack: root slots registered by frames. */
    gc::RootList& roots() { return roots_; }

    /** References pinned for the lifetime of the goroutine by go()
     *  (the goroutine's argument registers, so to speak). */
    std::vector<gc::Object*>& spawnRefs() { return spawnRefs_; }

    /** Frame bytes currently charged to this goroutine. */
    size_t frameBytes() const { return frameBytes_; }

    /** Masked address of the semaphore blocking this g, if any
     *  (the paper extends *g with exactly this field, §5.4). */
    support::MaskedPtr<void> blockedSema() const { return blockedSema_; }

    /** Whether an injected spurious wakeup put this goroutine on the
     *  run queue without granting its blocking operation. */
    bool spuriousWake() const { return spuriousWake_; }

    /** Whether a panic is currently unwinding this goroutine. */
    bool panicking() const { return panicking_; }

    /** Whether a Cancel-rung DeadlockError delivery is pending (the
     *  goroutine is Runnable; its awaitable will throw on resume). */
    bool cancelPending() const { return cancelPending_; }

    /** DeadlockError deliveries to this goroutine so far (ladder
     *  escalation counter, reset on reuse). */
    int cancelDeliveries() const { return cancelDeliveries_; }

    /** Virtual time at which the goroutine parked on its current
     *  deadlock-candidate operation (watchdog input; 0 = n/a). */
    support::VTime blockedSinceVt() const { return blockedSinceVt_; }

    /** Virtual time of the current park, any reason (obs input:
     *  park-duration histograms and block/mutex profiles). Unlike
     *  blockedSinceVt_, never re-armed by watchdog polls. */
    support::VTime parkStartVt() const { return parkStartVt_; }

    /** Slices executed so far (model-checker fingerprint input:
     *  makes states strictly increase along any one schedule). */
    uint64_t slicesRun() const { return slicesRun_; }

  private:
    friend class Runtime;
    friend class Scheduler;
    friend class ParkGuard;
    friend std::optional<std::string> recover();
    friend bool panicking();
    friend bool detail::consumeRecover();

    /// @{ Scheduling internals, manipulated by Runtime/Scheduler.
    Id id_ = 0;
    bool isMain_ = false;
    GStatus status_ = GStatus::Idle;
    WaitReason waitReason_ = WaitReason::None;
    std::vector<gc::Object*> blockedOn_;
    bool blockedForever_ = false;
    Site spawnSite_;
    Site blockSite_;
    Go::Handle top_;                      ///< Outermost frame.
    std::coroutine_handle<> resumePoint_; ///< Innermost parked frame.
    gc::RootList roots_;
    std::vector<gc::Object*> spawnRefs_;
    size_t frameBytes_ = 0;
    std::atomic<uint64_t> liveEpoch_{0};
    bool reported_ = false;
    support::MaskedPtr<void> blockedSema_;
    /** Scratch used by select to record the chosen case. */
    int selectChoice_ = -1;
    bool selectDone_ = false;
    /// @}

    /// @{ Panic/recover and fault-injection state.
    /** A Go-level panic is unwinding this goroutine's frames. */
    bool panicking_ = false;
    /** Message captured when the panic was raised (recover() result —
     *  std::current_exception is unusable inside unwinding defers). */
    std::string panicMessage_;
    /** recover() ran: the enclosing frame swallows the exception and
     *  completes with its zero value. */
    bool recoverArmed_ = false;
    /** Runnable due to an injected spurious wakeup; wait state fields
     *  are retained so the goroutine can re-park unchanged. */
    bool spuriousWake_ = false;
    /// @}

    /// @{ Guard (cancellation + watchdog) state.
    /** A DeadlockError delivery awaits consumption by the blocked
     *  awaitable's await_resume (see Runtime::deliverCancel). */
    bool cancelPending_ = false;
    /** Message carried by the pending DeadlockError. */
    std::string cancelMessage_;
    /** Deliveries so far (ladder escalation; reset on reuse). */
    int cancelDeliveries_ = 0;
    /** Virtual park time of the current candidate block (watchdog). */
    support::VTime blockedSinceVt_ = 0;
    /// @}

    /** Virtual time of the current park, any reason (obs). */
    support::VTime parkStartVt_ = 0;

    /** Slices executed so far (mc fingerprint; reset on reuse). */
    uint64_t slicesRun_ = 0;
};

} // namespace golf::rt

#endif // GOLFCC_RUNTIME_GOROUTINE_HPP
