/**
 * @file
 * Deterministic fault injection ("chaos") for the golfcc runtime.
 *
 * The paper's recovery story (Sections 5.4-5.5) depends on forced
 * shutdown being safe no matter where a goroutine was parked; related
 * work on dynamic deadlock prediction stresses that such bugs "only
 * occur under specific schedulings". The FaultInjector explores those
 * schedulings systematically: every scheduling point (channel park,
 * sync acquire, heap allocation, GC safepoint, reclaim) consults the
 * injector, which draws from an RNG derived from the master seed —
 * so any failure reproduces exactly from (seed, config).
 *
 * Fault kinds:
 *  - Panic: throw InjectedFault into the parking goroutine's frame
 *    chain (propagates out of the co_await per [expr.await]);
 *  - SpuriousWakeup: requeue a parked goroutine without granting the
 *    operation; it burns a slice and re-parks (futex-style);
 *  - DelayedWakeup: postpone a genuine wakeup by a bounded interval;
 *  - AllocFail: simulated OOM, triggering one emergency collection
 *    before a second failure surfaces FatalError;
 *  - ForceGc: adversarially timed collection at the next safepoint;
 *  - ReclaimFailure: make the forced shutdown of a PendingReclaim
 *    goroutine throw, exercising the quarantine path.
 */
#ifndef GOLFCC_RUNTIME_FAULT_HPP
#define GOLFCC_RUNTIME_FAULT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "support/panic.hpp"
#include "support/rng.hpp"
#include "support/vclock.hpp"

namespace golf::rt {

/** Where in the runtime a fault decision is being made. */
enum class FaultSite : uint8_t
{
    ChanSend,      ///< Blocking channel send about to park.
    ChanRecv,      ///< Blocking channel receive about to park.
    Select,        ///< Select statement about to park.
    MutexLock,     ///< sync.Mutex.Lock about to park.
    RWMutexRLock,  ///< sync.RWMutex.RLock about to park.
    RWMutexWLock,  ///< sync.RWMutex.Lock about to park.
    WaitGroupWait, ///< sync.WaitGroup.Wait about to park.
    CondWait,      ///< sync.Cond.Wait about to park.
    SemAcquire,    ///< Semaphore acquire about to park.
    Park,          ///< A goroutine just parked (spurious-wake draw).
    Wakeup,        ///< A goroutine is being woken (delay draw).
    HeapAlloc,     ///< Managed allocation (simulated OOM draw).
    GcSafepoint,   ///< Scheduler safepoint (forced-collection draw).
    Reclaim,       ///< Forced shutdown of a PendingReclaim goroutine.
    SpanMap,       ///< Pool span acquisition (mmap-failure draw).
};

const char* faultSiteName(FaultSite s);

/** What the injector decided to do at a site. */
enum class FaultKind : uint8_t
{
    None,
    Panic,
    SpuriousWakeup,
    DelayedWakeup,
    AllocFail,
    ForceGc,
    ReclaimFailure,
    SpanMap,
};

constexpr size_t kFaultKindCount = 8;

const char* faultKindName(FaultKind k);

/** Injection knobs, carried inside rt::Config. */
struct FaultConfig
{
    bool enabled = false;
    /** P(injected panic) per blocking-operation park. */
    double panicProb = 0.0;
    /** P(spurious wakeup) per completed park. */
    double spuriousWakeupProb = 0.0;
    /** P(delayed wakeup) per genuine wakeup. */
    double delayedWakeupProb = 0.0;
    /** P(simulated OOM) per managed allocation. */
    double allocFailProb = 0.0;
    /** P(forced collection) per safepoint and per blocking park. */
    double forceGcProb = 0.0;
    /** P(throwing unwind) per forced reclaim. */
    double reclaimFailureProb = 0.0;
    /**
     * P(mmap failure) per pool span acquisition. Drawn from a
     * dedicated RNG stream and logged separately (spanTrace), because
     * span acquisitions only happen under the pool backend — sharing
     * the decide() stream would shift every later draw and diverge
     * the pool-vs-legacy fault traces.
     */
    double spanMapFailProb = 0.0;
    /** Upper bound on spurious/delayed wakeup scheduling horizons. */
    support::VTime delayMaxNs = 500 * support::kMicrosecond;
    /** Stop injecting after this many faults (determinism intact). */
    uint64_t maxFaults = UINT64_MAX;
    /**
     * When true (default), an injected panic kills only the goroutine
     * it hit — the chaos analog of a per-request recover() — instead
     * of crashing the whole run like a real Go panic would.
     */
    bool containInjectedPanics = true;
};

/** One injected fault, as logged for replay comparison. */
struct FaultRecord
{
    uint64_t seq = 0;
    support::VTime vtime = 0;
    FaultSite site = FaultSite::Park;
    FaultKind kind = FaultKind::None;
    uint64_t goroutineId = 0;
};

/**
 * The exception thrown into a goroutine by an injected panic. Derives
 * GoPanicError so defer/recover and the panic bookkeeping treat it
 * exactly like a user-level panic.
 */
class InjectedFault : public support::GoPanicError
{
  public:
    explicit InjectedFault(const std::string& msg)
        : support::GoPanicError(msg)
    {}
};

class FaultInjector
{
  public:
    FaultInjector() = default;
    FaultInjector(const FaultConfig& cfg, uint64_t masterSeed);

    bool enabled() const { return cfg_.enabled; }

    /** Mutable so tests can phase probabilities mid-run. */
    FaultConfig& config() { return cfg_; }
    const FaultConfig& config() const { return cfg_; }

    /**
     * Decide whether a fault fires at this site. Exactly one RNG draw
     * per call when enabled, so the decision stream is a pure function
     * of (seed, sequence of decide calls) — i.e. of the schedule.
     * Injected faults are appended to the log.
     */
    FaultKind decide(FaultSite site, support::VTime now, uint64_t gid);

    /** Deterministic wakeup delay in (0, delayMaxNs]. */
    support::VTime drawDelay();

    /**
     * Decide whether this pool span acquisition's mmap fails
     * (FaultKind::SpanMap). Separate stream + log from decide(): the
     * shared stream is a backend-independent determinism surface,
     * while span acquisitions exist only under the pool backend.
     */
    bool decideSpanMap(support::VTime now, uint64_t gid);

    const std::vector<FaultRecord>& log() const { return log_; }
    uint64_t injected() const { return log_.size(); }
    uint64_t decisions() const { return decisions_; }
    uint64_t countOf(FaultKind k) const;

    /**
     * Byte-stable text dump of the fault schedule: identical seed +
     * config + program must yield an identical string (the chaos
     * runner's reproducibility check).
     */
    std::string trace() const;

    const std::vector<FaultRecord>& spanLog() const { return spanLog_; }
    uint64_t spanDecisions() const { return spanDecisions_; }

    /** Byte-stable dump of the SpanMap fault schedule (same format as
     *  trace(); compared only across same-backend replays). */
    std::string spanTrace() const;

  private:
    FaultConfig cfg_;
    support::Rng rng_{1};
    support::Rng spanRng_{1};
    std::vector<FaultRecord> log_;
    std::vector<FaultRecord> spanLog_;
    uint64_t decisions_ = 0;
    uint64_t spanDecisions_ = 0;
};

} // namespace golf::rt

#endif // GOLFCC_RUNTIME_FAULT_HPP
