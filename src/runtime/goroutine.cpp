#include "runtime/goroutine.hpp"

#include <sstream>

#include "gc/marker.hpp"

namespace golf::rt {

const char*
statusName(GStatus s)
{
    switch (s) {
      case GStatus::Idle: return "idle";
      case GStatus::Runnable: return "runnable";
      case GStatus::Running: return "running";
      case GStatus::Waiting: return "waiting";
      case GStatus::Done: return "done";
      case GStatus::PendingReclaim: return "pending-reclaim";
      case GStatus::Deadlocked: return "deadlocked";
      case GStatus::Quarantined: return "quarantined";
    }
    return "?";
}

const char*
waitReasonName(WaitReason r)
{
    switch (r) {
      case WaitReason::None: return "none";
      case WaitReason::ChanSend: return "chan send";
      case WaitReason::ChanRecv: return "chan receive";
      case WaitReason::Select: return "select";
      case WaitReason::SelectNoCases: return "select (no cases)";
      case WaitReason::ChanSendNil: return "chan send (nil chan)";
      case WaitReason::ChanRecvNil: return "chan receive (nil chan)";
      case WaitReason::MutexLock: return "sync.Mutex.Lock";
      case WaitReason::RWMutexRLock: return "sync.RWMutex.RLock";
      case WaitReason::RWMutexWLock: return "sync.RWMutex.Lock";
      case WaitReason::WaitGroupWait: return "sync.WaitGroup.Wait";
      case WaitReason::CondWait: return "sync.Cond.Wait";
      case WaitReason::SemAcquire: return "semacquire";
      case WaitReason::Sleep: return "sleep";
      case WaitReason::Io: return "IO wait";
      case WaitReason::GcWait: return "GC assist wait";
      case WaitReason::Internal: return "runtime internal";
      case WaitReason::RemoteWait: return "remote call";
    }
    return "?";
}

bool
isDeadlockCandidate(WaitReason r)
{
    switch (r) {
      case WaitReason::ChanSend:
      case WaitReason::ChanRecv:
      case WaitReason::Select:
      case WaitReason::SelectNoCases:
      case WaitReason::ChanSendNil:
      case WaitReason::ChanRecvNil:
      case WaitReason::MutexLock:
      case WaitReason::RWMutexRLock:
      case WaitReason::RWMutexWLock:
      case WaitReason::WaitGroupWait:
      case WaitReason::CondWait:
      case WaitReason::SemAcquire:
        return true;
      default:
        return false;
    }
}

std::string
Site::str() const
{
    std::ostringstream os;
    os << file << ":" << line;
    return os.str();
}

void
Goroutine::markStack(gc::Marker& marker)
{
    roots_.traceInto(marker);
    for (gc::Object* obj : spawnRefs_)
        marker.mark(obj);
    // The objects of the blocking operation are referenced from this
    // goroutine's stack in Go; marking them here reproduces that.
    for (gc::Object* obj : blockedOn_) {
        if (obj->heap())
            marker.mark(obj);
    }
}

} // namespace golf::rt
