/**
 * @file
 * The semtable: a treap of in-use semaphore addresses.
 *
 * The Go runtime parks goroutines blocked on sync-package primitives
 * in a global treap indexed by semaphore address; GOLF masks those
 * addresses so the table never leaks reachability to the GC, and adds
 * logic to drop entries for reclaimed goroutines (Section 5.4). We
 * reproduce the structure: keys are masked semaphore addresses and
 * values are intrusive waiter queues. Waiter nodes live in coroutine
 * frames, so destroying a deadlocked goroutine automatically removes
 * its entry via ~SemWaiter.
 */
#ifndef GOLFCC_RUNTIME_SEMTABLE_HPP
#define GOLFCC_RUNTIME_SEMTABLE_HPP

#include <cstdint>
#include <vector>

#include "support/intrusive_list.hpp"
#include "support/masked_ptr.hpp"
#include "support/treap.hpp"

namespace golf::rt {

class Goroutine;

/** One goroutine parked on a semaphore. Lives in a coroutine frame. */
struct SemWaiter
{
    support::IListNode node;
    Goroutine* g = nullptr;
    /** Set when the waiter was granted the semaphore. */
    bool granted = false;
};

class SemTable
{
  public:
    using WaiterQueue = support::IList<SemWaiter, &SemWaiter::node>;

    /** Masked key for a semaphore address. */
    static uintptr_t
    keyFor(const void* semaAddr)
    {
        return support::maskAddress(
            reinterpret_cast<uintptr_t>(semaAddr));
    }

    /** Enqueue a waiter for the given semaphore address. */
    void
    enqueue(const void* semaAddr, SemWaiter* w)
    {
        table_.obtain(keyFor(semaAddr)).pushBack(w);
    }

    /** Dequeue the longest waiter, or nullptr. Cleans empty entries. */
    SemWaiter*
    dequeue(const void* semaAddr)
    {
        uintptr_t key = keyFor(semaAddr);
        WaiterQueue* q = table_.find(key);
        if (!q)
            return nullptr;
        SemWaiter* w = q->popFront();
        if (q->empty())
            table_.erase(key);
        return w;
    }

    /** Whether any waiter is parked on the semaphore. */
    bool
    hasWaiters(const void* semaAddr)
    {
        WaiterQueue* q = table_.find(keyFor(semaAddr));
        return q && !q->empty();
    }

    /**
     * Drop a specific waiter (deadlocked-goroutine cleanup path).
     * Returns whether it was present.
     */
    bool
    remove(const void* semaAddr, SemWaiter* w)
    {
        uintptr_t key = keyFor(semaAddr);
        WaiterQueue* q = table_.find(key);
        if (!q || !w->node.linked())
            return false;
        w->node.unlink();
        if (q->empty())
            table_.erase(key);
        return true;
    }

    size_t entries() const { return table_.size(); }

    /** Visit every (masked key, waiter) pair; fn must not unlink. */
    template <typename Fn>
    void
    forEachWaiter(Fn&& fn)
    {
        table_.forEach([&](uintptr_t key, WaiterQueue& q) {
            q.forEach([&](SemWaiter* w) { fn(key, w); });
        });
    }

    /** Whether goroutine g has a waiter parked on semaAddr. */
    bool
    hasWaiterOf(const Goroutine* g, const void* semaAddr)
    {
        WaiterQueue* q = table_.find(keyFor(semaAddr));
        if (!q)
            return false;
        bool found = false;
        q->forEach([&](SemWaiter* w) {
            if (w->g == g)
                found = true;
        });
        return found;
    }

    /**
     * Unlink every waiter belonging to g, across all queues — the
     * quarantine scrub: a goroutine whose forced shutdown failed may
     * have left waiters enqueued, and no wakeup must ever reach it.
     */
    size_t
    purgeGoroutine(const Goroutine* g)
    {
        std::vector<SemWaiter*> doomed;
        forEachWaiter([&](uintptr_t, SemWaiter* w) {
            if (w->g == g)
                doomed.push_back(w);
        });
        for (SemWaiter* w : doomed)
            w->node.unlink();
        purgeEmpty();
        return doomed.size();
    }

    /**
     * Drop entries whose queue emptied without going through
     * dequeue() — the forced-shutdown path unlinks waiters from
     * their coroutine-frame destructors, which cannot reach the
     * table. This is the paper's "logic for removing deadlocked
     * goroutine entries from the semaphore treap" (Section 5.4);
     * the collector runs it after reclaiming goroutines.
     */
    size_t
    purgeEmpty()
    {
        std::vector<uintptr_t> dead;
        table_.forEach([&](uintptr_t key, WaiterQueue& q) {
            if (q.empty())
                dead.push_back(key);
        });
        for (uintptr_t key : dead)
            table_.erase(key);
        return dead.size();
    }

    /** Invariant check for tests. */
    bool
    checkMaskedKeys()
    {
        bool ok = table_.checkInvariants();
        table_.forEach([&](uintptr_t key, WaiterQueue&) {
            if (!support::isMaskedAddress(key))
                ok = false;
        });
        return ok;
    }

  private:
    support::Treap<WaiterQueue> table_;
};

} // namespace golf::rt

#endif // GOLFCC_RUNTIME_SEMTABLE_HPP
