/**
 * @file
 * Metrics registry modeled on Go's runtime/metrics: subsystems
 * register named counters, gauges and fixed-bucket histograms at
 * init and update them at safepoints; readers take JSON snapshots or
 * Prometheus text exposition at any time without stopping the world.
 *
 * Names follow the runtime/metrics path convention,
 * "/subsystem/name:unit" (e.g. "/gc/pause:ns"). Prometheus
 * exposition sanitizes paths to "golf_subsystem_name_unit".
 *
 * Determinism contract: every value fed into the registry must be
 * derived from the virtual clock or modeled cost accounting — never
 * wall/CPU time, worker counts, or anything else that varies across
 * `gcWorkers` — so snapshots are byte-identical for a fixed seed
 * regardless of marking parallelism. Iteration order is the sorted
 * name order of an std::map, so exposition is stable too.
 */
#ifndef GOLFCC_OBS_METRICS_HPP
#define GOLFCC_OBS_METRICS_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace golf::obs {

class Counter
{
  public:
    void add(uint64_t n) { value_ += n; }
    void inc() { ++value_; }
    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0;
};

/** Fixed-boundary histogram. Bucket i counts observations v with
 *  v <= boundaries[i] (and > boundaries[i-1]); one implicit overflow
 *  bucket catches the rest. Boundaries are fixed at registration so
 *  the shape never depends on the data. */
class Histogram
{
  public:
    explicit Histogram(std::vector<uint64_t> boundaries);

    void observe(uint64_t v);

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    const std::vector<uint64_t>& boundaries() const
    {
        return boundaries_;
    }
    /** boundaries().size() + 1 entries; last is the overflow bucket. */
    const std::vector<uint64_t>& bucketCounts() const
    {
        return counts_;
    }

    /** Exponential boundaries: `perDecade` buckets per power of ten
     *  from `lo` up to and including `hi` (both powers of ten). The
     *  default registry histograms use (1us, 10s) in ns. */
    static std::vector<uint64_t> expBoundaries(uint64_t lo,
                                               uint64_t hi);

  private:
    std::vector<uint64_t> boundaries_;
    std::vector<uint64_t> counts_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
};

class Registry
{
  public:
    Counter* counter(const std::string& name,
                     const std::string& help);
    Gauge* gauge(const std::string& name, const std::string& help);
    Histogram* histogram(const std::string& name,
                         const std::string& help,
                         std::vector<uint64_t> boundaries);

    /** Lookups for readers (nullptr when absent). */
    const Counter* findCounter(const std::string& name) const;
    const Gauge* findGauge(const std::string& name) const;
    const Histogram* findHistogram(const std::string& name) const;

    /** {"metrics":[{"name":...,"kind":...,...},...]} sorted by name. */
    std::string snapshotJson() const;

    /** Prometheus text exposition format (# HELP/# TYPE + samples). */
    std::string prometheus() const;

    /** "golf" + path with non-alphanumerics folded to '_'. */
    static std::string promName(const std::string& path);

  private:
    struct Entry
    {
        std::string help;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    std::map<std::string, Entry> entries_;
};

} // namespace golf::obs

#endif // GOLFCC_OBS_METRICS_HPP
