/**
 * @file
 * golf::obs — always-on runtime telemetry.
 *
 * One facade object owned by the runtime bundles the four pillars:
 *
 *   - FlightRecorder: per-P compact ring buffers of recent trace
 *     events (the always-on replacement for the unbounded tracer).
 *   - Registry: runtime/metrics-style named counters / gauges /
 *     histograms, registered here at init, updated by the runtime,
 *     collector and guard layers at safepoints, snapshot anytime.
 *   - Contention profiles: block + mutex profiles weighted by
 *     virtual park time, plus on-demand goroutine profiles
 *     (profile.hpp).
 *   - gctrace: one GODEBUG-style line per GC/GOLF cycle on stderr.
 *
 * Everything here is fed exclusively from virtual-clock timestamps
 * and modeled cost accounting, so for a fixed seed every output
 * (metrics JSON, Prometheus text, profiles, flight drains) is
 * byte-identical across gcWorkers values. The one exception is the
 * gctrace line, which prints the resolved worker count and is
 * explicitly outside the byte-identity set.
 *
 * When obs is disabled the runtime holds no Obs at all and each
 * trace-event site costs exactly one predictable branch.
 */
#ifndef GOLFCC_OBS_OBS_HPP
#define GOLFCC_OBS_OBS_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "runtime/tracer.hpp"
#include "runtime/types.hpp"
#include "support/vclock.hpp"

namespace golf::gc { struct MemStats; }
namespace golf::detect { struct CycleStats; }
namespace golf::rt { class Goroutine; }

namespace golf::obs {

struct Config
{
    /** Master switch. Off = the runtime constructs no Obs object and
     *  trace-event sites cost one branch. */
    bool enabled = true;
    /** Flight-recorder ring capacity per P, in records (0 = no
     *  flight recorder). */
    size_t flightRecords = 4096;
    /** Block-profile sampling rate in virtual ns, Go
     *  SetBlockProfileRate-style: 0 = off, 1 = everything, r =
     *  parks shorter than r sampled with probability d/r. */
    uint64_t blockProfileRateNs = 0;
    /** Same knob for the mutex-contention profile (Mutex, RWMutex,
     *  semaphore and Cond parks only). */
    uint64_t mutexProfileRateNs = 0;
    /** Print one line per GC/GOLF cycle to stderr. */
    bool gctrace = false;
};

/** Path-style name of the park-duration histogram for a reason. */
std::string parkMetricName(rt::WaitReason r);

class Obs
{
  public:
    Obs(const Config& cfg, int procs, uint64_t seed);
    ~Obs();

    const Config& config() const { return cfg_; }

    Registry& registry() { return registry_; }
    const Registry& registry() const { return registry_; }
    FlightRecorder* flight() { return flight_.get(); }
    const FlightRecorder* flight() const { return flight_.get(); }
    ContentionProfile& blockProfile() { return blockProfile_; }
    ContentionProfile& mutexProfile() { return mutexProfile_; }
    bool gctrace() const { return cfg_.gctrace; }

    /// @{ Hot hooks, called by the runtime behind its armed branch.
    void onEvent(support::VTime t, rt::TraceEvent ev, uint64_t gid,
                 rt::WaitReason reason);
    /** A parked goroutine is about to become runnable: feed the park
     *  duration histograms and contention profiles. */
    void onUnpark(support::VTime now, const rt::Goroutine& g);
    /// @}

    /// @{ Safepoint hooks.
    void onGcCycle(const detect::CycleStats& cs,
                   uint64_t heapAllocBefore,
                   const gc::MemStats& after);
    /** GOLF verdict for one goroutine; `latencyNs` is park-to-verdict
     *  measured from the PR 4 watchdog stamp. */
    void onDeadlockVerdict(uint64_t latencyNs);
    void setWatchdogPressure(size_t pressure);
    /** Last value pushed by the watchdog poll (the service layer's
     *  shedding signal — read the gauge, don't rescan allg). */
    double watchdogPressure() const;
    /** Memory-pressure ratio (live / soft limit), pushed by the
     *  runtime's ladder poll; the memory-shedding signal. */
    void setMemPressure(double ratio);
    double memPressure() const;
    /** Configured soft heap limit (0 = none). */
    void setMemLimit(uint64_t bytes);
    /** Retired-span cache occupancy + cumulative evictions and
     *  scavenger releases (pool backend; all zero under Legacy). */
    void setMemSpans(uint64_t retired, uint64_t evicted,
                     uint64_t scavenged);
    /** Install the runtime's tracer so its ring-overflow drop count
     *  surfaces as /sched/trace/dropped:events. */
    void setTracer(const rt::Tracer* tracer) { tracer_ = tracer; }
    /// @}

    /** Refresh derived gauges, then Registry::snapshotJson(). */
    std::string metricsJson();
    /** Refresh derived gauges, then Registry::prometheus(). */
    std::string prometheusText();

    /** The gctrace line for a finished cycle (no trailing newline). */
    std::string gctraceLine(const detect::CycleStats& cs,
                            uint64_t heapAllocBefore,
                            const gc::MemStats& after,
                            support::VTime now) const;

  private:
    void refreshDerivedGauges();

    Config cfg_;
    Registry registry_;
    std::unique_ptr<FlightRecorder> flight_;
    ContentionProfile blockProfile_;
    ContentionProfile mutexProfile_;

    // Cached handles (avoid map lookups on hot paths).
    Counter* spawned_ = nullptr;
    Counter* done_ = nullptr;
    Counter* verdicts_ = nullptr;
    Counter* cancels_ = nullptr;
    Counter* reclaims_ = nullptr;
    Counter* quarantines_ = nullptr;
    Counter* resurrections_ = nullptr;
    Counter* watchdogTriggers_ = nullptr;
    Counter* faults_ = nullptr;
    Counter* gcCycles_ = nullptr;
    Counter* objectsMarked_ = nullptr;
    Counter* bytesMarked_ = nullptr;
    Counter* objectsFreed_ = nullptr;
    Counter* detectChecks_ = nullptr;
    Counter* modeledMarkNs_ = nullptr;
    Histogram* gcPause_ = nullptr;
    Histogram* detectLatency_ = nullptr;
    Gauge* heapLive_ = nullptr;
    Gauge* heapObjects_ = nullptr;
    Gauge* heapInuse_ = nullptr;
    Gauge* stackInuse_ = nullptr;
    Gauge* pressure_ = nullptr;
    Gauge* memPressure_ = nullptr;
    Gauge* memLimit_ = nullptr;
    Gauge* memSpansRetired_ = nullptr;
    Gauge* memSpansEvicted_ = nullptr;
    Gauge* memSpansScavenged_ = nullptr;
    Gauge* flightDropped_ = nullptr;
    Gauge* traceDropped_ = nullptr;
    Gauge* blockSamples_ = nullptr;
    Gauge* mutexSamples_ = nullptr;
    const rt::Tracer* tracer_ = nullptr;
    std::array<Histogram*, rt::kWaitReasonCount> parkHists_{};
};

} // namespace golf::obs

#endif // GOLFCC_OBS_OBS_HPP
