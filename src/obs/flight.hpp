/**
 * @file
 * Flight recorder: fixed-capacity per-P ring buffers holding the
 * most recent trace events in a compact 16-byte binary encoding.
 * This is the always-on tracing path — unlike the legacy
 * full-fidelity `rt::Tracer` it never grows, so soak runs can leave
 * it enabled for billions of virtual nanoseconds and still drain the
 * recent-history window after a crash or on demand.
 *
 * Encoding (two little-endian u64 words per record):
 *
 *     word0: virtual timestamp, ns
 *     word1: [seq:26][gid:26][event:6][reason:6]
 *
 * `seq` is the low 26 bits of a global append counter; it breaks
 * timestamp ties when rings are merged at drain time. The merge
 * compares sequence numbers by sign-extended 26-bit *delta*, which is
 * exact while every live record lies within a 2^25-record window of
 * the newest — guaranteed by clamping total ring capacity below that.
 * `gid` stores goroutine ids modulo 2^26 (ids are sequential;
 * collisions would need 67M goroutines inside one ring window).
 *
 * Events are appended to ring `gid & ringMask` — a static,
 * deterministic P assignment (the virtual scheduler has no migration
 * to track), so ring contents and drains are byte-identical across
 * gcWorkers. Ring count and per-ring capacity are rounded up to
 * powers of two so the per-event path is mask arithmetic only, with
 * no integer division.
 */
#ifndef GOLFCC_OBS_FLIGHT_HPP
#define GOLFCC_OBS_FLIGHT_HPP

#include <cstdint>
#include <vector>

#include "runtime/tracer.hpp"
#include "support/vclock.hpp"

namespace golf::obs {

class FlightRecorder
{
  public:
    /** `rings` = one per P; `perRingCapacity` in records. Both are
     *  rounded up to powers of two, then the capacity is clamped so
     *  the total stays below the 2^25 merge window. */
    FlightRecorder(int rings, size_t perRingCapacity);

    void
    record(support::VTime t, rt::TraceEvent ev, uint64_t gid,
           rt::WaitReason reason)
    {
        Ring& r = rings_[gid & ringMask_];
        if (r.count == capacity_)
            ++dropped_;
        else
            ++r.count;
        const size_t head = r.head;
        r.words[head * 2] = t;
        r.words[head * 2 + 1] = pack(seq_++, gid, ev, reason);
        r.head = (head + 1) & capMask_;
    }

    /** Records currently held across all rings. */
    size_t size() const;
    size_t perRingCapacity() const { return capacity_; }
    int rings() const { return static_cast<int>(rings_.size()); }
    /** Records overwritten since start (oldest-first eviction). */
    uint64_t dropped() const { return dropped_; }
    /** Total records ever appended. */
    uint64_t appended() const { return seq_; }

    /** Decode every ring and merge into one time-ordered record
     *  vector, suitable for the rt::writeTrace* writers. */
    std::vector<rt::TraceRecord> drain() const;

    void clear();

  private:
    struct Ring
    {
        std::vector<uint64_t> words; // 2 per record
        size_t head = 0;             // next slot, in records
        size_t count = 0;
    };

    static constexpr uint64_t kSeqBits = 26;
    static constexpr uint64_t kGidBits = 26;
    static constexpr uint64_t kSeqMask = (1ull << kSeqBits) - 1;
    static constexpr uint64_t kGidMask = (1ull << kGidBits) - 1;
    // Keep every live record within half the 26-bit sequence space
    // so delta comparison at drain time is exact.
    static constexpr uint64_t kMaxTotalRecords = 1ull << 25;

    static uint64_t
    pack(uint64_t seq, uint64_t gid, rt::TraceEvent ev,
         rt::WaitReason reason)
    {
        return ((seq & kSeqMask) << 38) | ((gid & kGidMask) << 12) |
               ((static_cast<uint64_t>(ev) & 63u) << 6) |
               (static_cast<uint64_t>(reason) & 63u);
    }

    size_t capacity_ = 0;
    uint64_t capMask_ = 0;  // capacity_ - 1 (capacity_ is pow2)
    uint64_t ringMask_ = 0; // rings_.size() - 1 (pow2)
    uint64_t seq_ = 0;
    uint64_t dropped_ = 0;
    std::vector<Ring> rings_;
};

} // namespace golf::obs

#endif // GOLFCC_OBS_FLIGHT_HPP
