/**
 * @file
 * pprof-style runtime profiles.
 *
 * - Goroutine profile: a point-in-time snapshot of every live
 *   goroutine — status, wait reason, blocked-on objects, spawn and
 *   block sites — in allg order. Replaces direct Runtime walking for
 *   consumers like leakdetect::LeakProf, and renders in both a
 *   `pprof -debug=1`-style text dump and the folded-stack format
 *   flamegraph.pl / speedscope consume.
 *
 * - Block / mutex-contention profiles: folded stacks
 *   "spawnSite;blockSite;reason weight" where the weight is the
 *   *virtual* park duration in ns. Like Go's SetBlockProfileRate, a
 *   rate knob samples short events: a park of duration d >= rate is
 *   always recorded at weight d; shorter parks are recorded with
 *   probability d/rate at weight rate, keeping expected totals exact.
 *   The sampling RNG is seeded from the run seed and drawn in
 *   scheduler order only, so profiles are deterministic and never
 *   perturb scheduling decisions.
 */
#ifndef GOLFCC_OBS_PROFILE_HPP
#define GOLFCC_OBS_PROFILE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/types.hpp"
#include "support/rng.hpp"
#include "support/vclock.hpp"

namespace golf::rt { class Runtime; }

namespace golf::obs {

struct GoroutineProfileEntry
{
    uint64_t id = 0;
    rt::GStatus status = rt::GStatus::Idle;
    rt::WaitReason reason = rt::WaitReason::None;
    bool blockedForever = false;
    support::VTime blockedSinceVt = 0;
    support::VTime parkStartVt = 0;
    size_t frameBytes = 0;
    std::string spawnSite;
    std::string blockSite;
    std::vector<std::string> blockedOn; ///< object type names
};

struct GoroutineProfile
{
    support::VTime sampledAt = 0;
    std::vector<GoroutineProfileEntry> entries; ///< allg order

    /** pprof -debug=1 style text dump. */
    std::string str() const;
    /** "status;spawnSite;blockSite;reason count" folded stacks. */
    std::string folded() const;
};

GoroutineProfile collectGoroutineProfile(const rt::Runtime& rt);

/** Shared by the block and mutex profiles: a folded-stack weight map
 *  with Go-style rate sampling. */
class ContentionProfile
{
  public:
    /** rateNs == 0 disables; 1 records everything. */
    ContentionProfile(uint64_t rateNs, uint64_t seed);

    bool enabled() const { return rateNs_ != 0; }
    uint64_t rateNs() const { return rateNs_; }

    /** Record a park of virtual duration `durationNs` ending at the
     *  given folded stack (subject to rate sampling). */
    void observe(const std::string& stack, uint64_t durationNs);

    uint64_t samples() const { return samples_; }

    /** "stack weightNs" lines, sorted by stack. */
    std::string folded() const;

  private:
    uint64_t rateNs_;
    uint64_t samples_ = 0;
    support::Rng rng_;
    std::map<std::string, uint64_t> weights_;
};

} // namespace golf::obs

#endif // GOLFCC_OBS_PROFILE_HPP
