#include "obs/profile.hpp"

#include <sstream>

#include "gc/object.hpp"
#include "runtime/goroutine.hpp"
#include "runtime/runtime.hpp"

namespace golf::obs {

GoroutineProfile
collectGoroutineProfile(const rt::Runtime& rt)
{
    GoroutineProfile prof;
    prof.sampledAt = rt.clock().now();
    rt.forEachGoroutine([&prof](rt::Goroutine* g) {
        GoroutineProfileEntry e;
        e.id = g->id();
        e.status = g->status();
        e.reason = g->waitReason();
        e.blockedForever = g->blockedForever();
        e.blockedSinceVt = g->blockedSinceVt();
        e.parkStartVt = g->parkStartVt();
        e.frameBytes = g->frameBytes();
        e.spawnSite = g->spawnSite().str();
        e.blockSite = g->blockSite().str();
        for (const gc::Object* obj : g->blockedOn())
            e.blockedOn.push_back(obj->objectName());
        prof.entries.push_back(std::move(e));
    });
    return prof;
}

std::string
GoroutineProfile::str() const
{
    std::ostringstream os;
    os << "goroutine profile: total " << entries.size() << " @"
       << sampledAt << "ns\n";
    for (const auto& e : entries) {
        os << "goroutine " << e.id << " ["
           << rt::statusName(e.status);
        if (e.reason != rt::WaitReason::None)
            os << ", " << rt::waitReasonName(e.reason);
        if (e.blockedForever)
            os << ", forever";
        os << "]:\n";
        if (!e.blockedOn.empty()) {
            os << "  blocked on:";
            for (const auto& n : e.blockedOn)
                os << " " << n;
            os << "\n";
        }
        if (e.status == rt::GStatus::Waiting ||
            e.status == rt::GStatus::Deadlocked ||
            e.status == rt::GStatus::PendingReclaim ||
            e.status == rt::GStatus::Quarantined) {
            os << "  block site: " << e.blockSite << "\n";
        }
        os << "  spawn site: " << e.spawnSite << "\n";
        os << "  frame bytes: " << e.frameBytes << "\n";
    }
    return os.str();
}

std::string
GoroutineProfile::folded() const
{
    std::map<std::string, uint64_t> stacks;
    for (const auto& e : entries) {
        std::string key = rt::statusName(e.status);
        key += ";";
        key += e.spawnSite;
        if (e.reason != rt::WaitReason::None) {
            key += ";";
            key += e.blockSite;
            key += ";";
            key += rt::waitReasonName(e.reason);
        }
        ++stacks[key];
    }
    std::ostringstream os;
    for (const auto& [stack, n] : stacks)
        os << stack << " " << n << "\n";
    return os.str();
}

ContentionProfile::ContentionProfile(uint64_t rateNs, uint64_t seed)
    : rateNs_(rateNs), rng_(seed)
{
}

void
ContentionProfile::observe(const std::string& stack,
                           uint64_t durationNs)
{
    if (rateNs_ == 0)
        return;
    uint64_t weight;
    if (durationNs >= rateNs_) {
        weight = durationNs;
    } else {
        // Sample with probability d/rate at weight rate: expected
        // contribution stays d, short parks stay cheap.
        if (rng_.nextBelow(rateNs_) >= durationNs)
            return;
        weight = rateNs_;
    }
    ++samples_;
    weights_[stack] += weight;
}

std::string
ContentionProfile::folded() const
{
    std::ostringstream os;
    for (const auto& [stack, w] : weights_)
        os << stack << " " << w << "\n";
    return os.str();
}

} // namespace golf::obs
