#include "obs/obs.hpp"

#include <iomanip>
#include <sstream>

#include "gc/memstats.hpp"
#include "golf/collector.hpp"
#include "runtime/goroutine.hpp"

namespace golf::obs {
namespace {

/** "sync.Mutex.Lock" -> "sync-mutex-lock", "GC assist wait" ->
 *  "gc-assist-wait": lowercase, non-alphanumerics folded to '-'. */
std::string
slug(const char* s)
{
    std::string out;
    bool sep = false;
    for (const char* p = s; *p; ++p) {
        char c = *p;
        if (c >= 'A' && c <= 'Z')
            c = static_cast<char>(c - 'A' + 'a');
        const bool alnum = (c >= 'a' && c <= 'z') ||
                           (c >= '0' && c <= '9');
        if (alnum) {
            if (sep && !out.empty())
                out += '-';
            out += c;
            sep = false;
        } else {
            sep = true;
        }
    }
    return out;
}

bool
isMutexFamily(rt::WaitReason r)
{
    switch (r) {
      case rt::WaitReason::MutexLock:
      case rt::WaitReason::RWMutexRLock:
      case rt::WaitReason::RWMutexWLock:
      case rt::WaitReason::CondWait:
      case rt::WaitReason::SemAcquire:
        return true;
      default:
        return false;
    }
}

} // namespace

std::string
parkMetricName(rt::WaitReason r)
{
    return "/sched/park/" + slug(rt::waitReasonName(r)) + ":ns";
}

Obs::Obs(const Config& cfg, int procs, uint64_t seed)
    : cfg_(cfg),
      blockProfile_(cfg.blockProfileRateNs, seed ^ 0xB10CB10Cull),
      mutexProfile_(cfg.mutexProfileRateNs, seed ^ 0x5E3A704Eull)
{
    if (cfg_.flightRecords > 0) {
        flight_ = std::make_unique<FlightRecorder>(
            procs, cfg_.flightRecords);
    }

    // Metric catalog (DESIGN.md §10.3). Event-derived counters:
    spawned_ = registry_.counter("/sched/goroutines/spawned:count",
                                 "Goroutines spawned");
    done_ = registry_.counter("/sched/goroutines/done:count",
                              "Goroutines finished normally");
    verdicts_ = registry_.counter("/golf/verdicts:count",
                                  "GOLF deadlock verdicts");
    cancels_ = registry_.counter(
        "/guard/cancels:count",
        "DeadlockError deliveries (Cancel rung)");
    reclaims_ = registry_.counter("/guard/reclaims:count",
                                  "Deadlocked goroutines reclaimed");
    quarantines_ = registry_.counter(
        "/guard/quarantines:count",
        "Reclaim unwinds that failed; goroutine isolated");
    resurrections_ = registry_.counter(
        "/guard/resurrections:count",
        "Poisoned objects touched; goroutines revived");
    watchdogTriggers_ = registry_.counter(
        "/guard/watchdog/triggers:count",
        "Off-cycle detections forced by the watchdog");
    faults_ = registry_.counter("/chaos/faults:count",
                                "Injected faults fired");

    // Per-cycle counters and histograms:
    gcCycles_ = registry_.counter("/gc/cycles:count",
                                  "Completed GC cycles");
    objectsMarked_ = registry_.counter("/gc/marked:objects",
                                       "Objects marked, cumulative");
    bytesMarked_ = registry_.counter("/gc/marked:bytes",
                                     "Bytes marked, cumulative");
    objectsFreed_ = registry_.counter("/gc/freed:objects",
                                      "Objects swept, cumulative");
    detectChecks_ = registry_.counter(
        "/golf/detect/checks:count",
        "(goroutine, object) pairs examined by the fixpoint");
    modeledMarkNs_ = registry_.counter(
        "/gc/mark:ns", "Modeled marking time, virtual ns");
    gcPause_ = registry_.histogram(
        "/gc/pause:ns", "Modeled stop-the-world pause, virtual ns",
        Histogram::expBoundaries(1000, 10'000'000'000ull));
    detectLatency_ = registry_.histogram(
        "/golf/detect/latency:ns",
        "Park-to-verdict latency (watchdog stamps), virtual ns",
        Histogram::expBoundaries(1000, 10'000'000'000ull));

    // Heap gauges (sampled from MemStats at each cycle end):
    heapLive_ = registry_.gauge("/memory/heap/live:bytes",
                                "Live heap bytes after last sweep");
    heapObjects_ = registry_.gauge("/memory/heap/objects:count",
                                   "Live heap objects");
    heapInuse_ = registry_.gauge(
        "/memory/heap/inuse:bytes",
        "Heap bytes held, including unswept garbage");
    stackInuse_ = registry_.gauge("/memory/stack/inuse:bytes",
                                  "Goroutine frame bytes");

    pressure_ = registry_.gauge(
        "/guard/watchdog/pressure:goroutines",
        "Candidates blocked past the watchdog threshold");
    memPressure_ = registry_.gauge(
        "/mem/pressure:ratio",
        "Live heap over the soft limit (0 when no limit)");
    memLimit_ = registry_.gauge("/mem/limit:bytes",
                                "Configured soft heap limit");
    memSpansRetired_ = registry_.gauge(
        "/mem/spans/retired:spans",
        "Retired spans parked in the reuse cache");
    memSpansEvicted_ = registry_.gauge(
        "/mem/spans/evicted:spans",
        "Retiring spans released at the cache cap, cumulative");
    memSpansScavenged_ = registry_.gauge(
        "/mem/spans/scavenged:spans",
        "Cached spans released by the scavenger, cumulative");
    flightDropped_ = registry_.gauge(
        "/obs/flight/dropped:records",
        "Flight-recorder records overwritten");
    traceDropped_ = registry_.gauge(
        "/sched/trace/dropped:events",
        "Tracer events dropped by the bounded ring");
    blockSamples_ = registry_.gauge("/obs/profile/block:samples",
                                    "Block-profile samples taken");
    mutexSamples_ = registry_.gauge("/obs/profile/mutex:samples",
                                    "Mutex-profile samples taken");

    // One park-duration histogram per wait reason.
    const auto bounds =
        Histogram::expBoundaries(1000, 10'000'000'000ull);
    for (int i = 1; i < static_cast<int>(parkHists_.size()); ++i) {
        const auto r = static_cast<rt::WaitReason>(i);
        parkHists_[static_cast<size_t>(i)] = registry_.histogram(
            parkMetricName(r),
            std::string("Park duration, ") + rt::waitReasonName(r) +
                ", virtual ns",
            bounds);
    }
}

Obs::~Obs() = default;

void
Obs::onEvent(support::VTime t, rt::TraceEvent ev, uint64_t gid,
             rt::WaitReason reason)
{
    if (flight_)
        flight_->record(t, ev, gid, reason);
    switch (ev) {
      case rt::TraceEvent::Spawn: spawned_->inc(); break;
      case rt::TraceEvent::Done: done_->inc(); break;
      case rt::TraceEvent::Deadlock: verdicts_->inc(); break;
      case rt::TraceEvent::Cancel: cancels_->inc(); break;
      case rt::TraceEvent::Reclaim: reclaims_->inc(); break;
      case rt::TraceEvent::Quarantine: quarantines_->inc(); break;
      case rt::TraceEvent::Resurrect: resurrections_->inc(); break;
      case rt::TraceEvent::WatchdogTrigger:
        watchdogTriggers_->inc();
        break;
      case rt::TraceEvent::Fault: faults_->inc(); break;
      default: break;
    }
}

void
Obs::onUnpark(support::VTime now, const rt::Goroutine& g)
{
    const rt::WaitReason reason = g.waitReason();
    const support::VTime start = g.parkStartVt();
    if (reason == rt::WaitReason::None || start == 0 || now < start)
        return;
    const uint64_t d = now - start;
    parkHists_[static_cast<size_t>(reason)]->observe(d);
    if (blockProfile_.enabled() && rt::isDeadlockCandidate(reason)) {
        blockProfile_.observe(g.spawnSite().str() + ";" +
                                  g.blockSite().str() + ";" +
                                  slug(rt::waitReasonName(reason)),
                              d);
    }
    if (mutexProfile_.enabled() && isMutexFamily(reason)) {
        mutexProfile_.observe(g.spawnSite().str() + ";" +
                                  g.blockSite().str() + ";" +
                                  slug(rt::waitReasonName(reason)),
                              d);
    }
}

void
Obs::onGcCycle(const detect::CycleStats& cs,
               uint64_t /*heapAllocBefore*/,
               const gc::MemStats& after)
{
    gcCycles_->inc();
    objectsMarked_->add(cs.objectsMarked);
    bytesMarked_->add(cs.bytesMarked);
    objectsFreed_->add(cs.freedObjects);
    detectChecks_->add(cs.detectChecks);
    modeledMarkNs_->add(cs.modeledMarkNs);
    gcPause_->observe(cs.modeledStwNs);
    heapLive_->set(static_cast<double>(after.heapAlloc));
    heapObjects_->set(static_cast<double>(after.heapObjects));
    heapInuse_->set(static_cast<double>(after.heapInuse));
    stackInuse_->set(static_cast<double>(after.stackInuse));
}

void
Obs::onDeadlockVerdict(uint64_t latencyNs)
{
    detectLatency_->observe(latencyNs);
}

void
Obs::setWatchdogPressure(size_t pressure)
{
    pressure_->set(static_cast<double>(pressure));
}

double
Obs::watchdogPressure() const
{
    return pressure_->value();
}

void
Obs::setMemPressure(double ratio)
{
    memPressure_->set(ratio);
}

double
Obs::memPressure() const
{
    return memPressure_->value();
}

void
Obs::setMemLimit(uint64_t bytes)
{
    memLimit_->set(static_cast<double>(bytes));
}

void
Obs::setMemSpans(uint64_t retired, uint64_t evicted,
                 uint64_t scavenged)
{
    memSpansRetired_->set(static_cast<double>(retired));
    memSpansEvicted_->set(static_cast<double>(evicted));
    memSpansScavenged_->set(static_cast<double>(scavenged));
}

void
Obs::refreshDerivedGauges()
{
    flightDropped_->set(
        flight_ ? static_cast<double>(flight_->dropped()) : 0.0);
    traceDropped_->set(
        tracer_ ? static_cast<double>(tracer_->dropped()) : 0.0);
    blockSamples_->set(static_cast<double>(blockProfile_.samples()));
    mutexSamples_->set(static_cast<double>(mutexProfile_.samples()));
}

std::string
Obs::metricsJson()
{
    refreshDerivedGauges();
    return registry_.snapshotJson();
}

std::string
Obs::prometheusText()
{
    refreshDerivedGauges();
    return registry_.prometheus();
}

std::string
Obs::gctraceLine(const detect::CycleStats& cs,
                 uint64_t heapAllocBefore, const gc::MemStats& after,
                 support::VTime now) const
{
    // gc 3 @1.204s: 4->3 MB, 120 objs freed, 2 mark iters,
    //   0.5 ms pause, 2 workers, golf: 1 deadlocked 1 cancelled
    //   0 reclaimed 0 quarantined [watchdog]
    std::ostringstream os;
    os << "gc " << cs.cycle << " @" << now / 1'000'000'000ull << "."
       << std::setw(3) << std::setfill('0')
       << (now / 1'000'000ull) % 1000 << std::setfill(' ') << "s: "
       << heapAllocBefore / (1024 * 1024) << "->"
       << after.heapAlloc / (1024 * 1024) << " MB, "
       << cs.freedObjects << " objs freed, " << cs.markIterations
       << " mark iters, " << cs.modeledStwNs / 1'000'000ull << "."
       << std::setw(3) << std::setfill('0')
       << (cs.modeledStwNs / 1000ull) % 1000 << std::setfill(' ')
       << " ms pause, " << cs.gcWorkers << " workers";
    if (cs.detectionRan) {
        os << ", golf: " << cs.deadlocksFound << " deadlocked "
           << cs.cancelled << " cancelled " << cs.reclaimed
           << " reclaimed " << cs.quarantined << " quarantined";
    }
    if (cs.watchdogTriggered)
        os << " [watchdog]";
    return os.str();
}

} // namespace golf::obs
