#include "obs/flight.hpp"

#include <algorithm>

namespace golf::obs {
namespace {

size_t
ceilPow2(size_t v)
{
    size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

FlightRecorder::FlightRecorder(int rings, size_t perRingCapacity)
{
    if (rings < 1)
        rings = 1;
    const size_t nrings = ceilPow2(static_cast<size_t>(rings));
    size_t cap = ceilPow2(perRingCapacity == 0 ? 1 : perRingCapacity);
    // nrings and kMaxTotalRecords are both powers of two, so the
    // clamp stays a power of two.
    const size_t maxPerRing = kMaxTotalRecords / nrings;
    if (cap > maxPerRing)
        cap = maxPerRing;
    capacity_ = cap;
    capMask_ = cap - 1;
    ringMask_ = nrings - 1;
    rings_.resize(nrings);
    for (Ring& r : rings_)
        r.words.assign(capacity_ * 2, 0);
}

size_t
FlightRecorder::size() const
{
    size_t n = 0;
    for (const Ring& r : rings_)
        n += r.count;
    return n;
}

std::vector<rt::TraceRecord>
FlightRecorder::drain() const
{
    struct Decoded
    {
        rt::TraceRecord rec;
        int64_t rel; // sign-extended seq delta vs. newest append
    };
    std::vector<Decoded> all;
    all.reserve(size());
    for (const Ring& r : rings_) {
        // Oldest record sits at head when full, at 0 otherwise.
        const size_t start =
            r.count == capacity_ ? r.head : 0;
        for (size_t i = 0; i < r.count; ++i) {
            const size_t slot = (start + i) & capMask_;
            const uint64_t t = r.words[slot * 2];
            const uint64_t w = r.words[slot * 2 + 1];
            const uint64_t seq = (w >> 38) & kSeqMask;
            Decoded d;
            d.rec.t = t;
            d.rec.goroutineId = (w >> 12) & kGidMask;
            d.rec.event = static_cast<rt::TraceEvent>((w >> 6) & 63u);
            d.rec.reason = static_cast<rt::WaitReason>(w & 63u);
            // 26-bit wrapping delta, sign-extended: negative for all
            // live records (seq_ is one past the newest).
            const uint64_t delta = (seq - seq_) & kSeqMask;
            d.rel = static_cast<int64_t>(delta << (64 - kSeqBits)) >>
                    (64 - kSeqBits);
            all.push_back(d);
        }
    }
    std::sort(all.begin(), all.end(),
              [](const Decoded& a, const Decoded& b) {
                  return a.rel < b.rel;
              });
    std::vector<rt::TraceRecord> out;
    out.reserve(all.size());
    for (const Decoded& d : all)
        out.push_back(d.rec);
    return out;
}

void
FlightRecorder::clear()
{
    for (Ring& r : rings_) {
        r.head = 0;
        r.count = 0;
    }
    dropped_ = 0;
}

} // namespace golf::obs
