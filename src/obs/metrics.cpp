#include "obs/metrics.hpp"

#include <sstream>

namespace golf::obs {

Histogram::Histogram(std::vector<uint64_t> boundaries)
    : boundaries_(std::move(boundaries)),
      counts_(boundaries_.size() + 1, 0)
{
}

void
Histogram::observe(uint64_t v)
{
    size_t i = 0;
    while (i < boundaries_.size() && v > boundaries_[i])
        ++i;
    ++counts_[i];
    ++count_;
    sum_ += v;
}

std::vector<uint64_t>
Histogram::expBoundaries(uint64_t lo, uint64_t hi)
{
    // 1-2-5 series per decade: 1us, 2us, 5us, 10us, ... , hi.
    std::vector<uint64_t> out;
    for (uint64_t base = lo; base <= hi && base != 0; base *= 10) {
        out.push_back(base);
        if (base * 2 <= hi)
            out.push_back(base * 2);
        if (base * 5 <= hi)
            out.push_back(base * 5);
    }
    return out;
}

Counter*
Registry::counter(const std::string& name, const std::string& help)
{
    Entry& e = entries_[name];
    if (!e.counter) {
        e.help = help;
        e.counter = std::make_unique<Counter>();
    }
    return e.counter.get();
}

Gauge*
Registry::gauge(const std::string& name, const std::string& help)
{
    Entry& e = entries_[name];
    if (!e.gauge) {
        e.help = help;
        e.gauge = std::make_unique<Gauge>();
    }
    return e.gauge.get();
}

Histogram*
Registry::histogram(const std::string& name, const std::string& help,
                    std::vector<uint64_t> boundaries)
{
    Entry& e = entries_[name];
    if (!e.histogram) {
        e.help = help;
        e.histogram =
            std::make_unique<Histogram>(std::move(boundaries));
    }
    return e.histogram.get();
}

const Counter*
Registry::findCounter(const std::string& name) const
{
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.counter.get();
}

const Gauge*
Registry::findGauge(const std::string& name) const
{
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.gauge.get();
}

const Histogram*
Registry::findHistogram(const std::string& name) const
{
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr
                                : it->second.histogram.get();
}

namespace {

/** Gauges hold counts and byte totals; print integral values without
 *  a fractional part so snapshots are stable and readable. */
std::string
formatGauge(double v)
{
    std::ostringstream os;
    if (v == static_cast<double>(static_cast<int64_t>(v)))
        os << static_cast<int64_t>(v);
    else
        os << v;
    return os.str();
}

} // namespace

std::string
Registry::snapshotJson() const
{
    std::ostringstream os;
    os << "{\"metrics\":[";
    bool first = true;
    for (const auto& [name, e] : entries_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  {\"name\":\"" << name << "\",";
        if (e.counter) {
            os << "\"kind\":\"counter\",\"value\":"
               << e.counter->value();
        } else if (e.gauge) {
            os << "\"kind\":\"gauge\",\"value\":"
               << formatGauge(e.gauge->value());
        } else if (e.histogram) {
            const Histogram& h = *e.histogram;
            os << "\"kind\":\"histogram\",\"count\":" << h.count()
               << ",\"sum\":" << h.sum() << ",\"buckets\":[";
            const auto& bs = h.boundaries();
            const auto& cs = h.bucketCounts();
            for (size_t i = 0; i < cs.size(); ++i) {
                if (i)
                    os << ",";
                os << "{\"le\":";
                if (i < bs.size())
                    os << bs[i];
                else
                    os << "\"+Inf\"";
                os << ",\"count\":" << cs[i] << "}";
            }
            os << "]";
        }
        os << "}";
    }
    os << "\n]}\n";
    return os.str();
}

std::string
Registry::promName(const std::string& path)
{
    std::string out = "golf";
    bool sep = true; // fold runs of separators into one '_'
    for (char c : path) {
        const bool alnum = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') ||
                           (c >= '0' && c <= '9');
        if (alnum) {
            if (sep)
                out += '_';
            out += c;
            sep = false;
        } else {
            sep = true;
        }
    }
    return out;
}

std::string
Registry::prometheus() const
{
    std::ostringstream os;
    for (const auto& [name, e] : entries_) {
        const std::string pn = promName(name);
        os << "# HELP " << pn << " " << e.help << "\n";
        if (e.counter) {
            os << "# TYPE " << pn << " counter\n";
            os << pn << " " << e.counter->value() << "\n";
        } else if (e.gauge) {
            os << "# TYPE " << pn << " gauge\n";
            os << pn << " " << formatGauge(e.gauge->value()) << "\n";
        } else if (e.histogram) {
            const Histogram& h = *e.histogram;
            os << "# TYPE " << pn << " histogram\n";
            const auto& bs = h.boundaries();
            const auto& cs = h.bucketCounts();
            uint64_t cum = 0;
            for (size_t i = 0; i < cs.size(); ++i) {
                cum += cs[i];
                os << pn << "_bucket{le=\"";
                if (i < bs.size())
                    os << bs[i];
                else
                    os << "+Inf";
                os << "\"} " << cum << "\n";
            }
            os << pn << "_sum " << h.sum() << "\n";
            os << pn << "_count " << h.count() << "\n";
        }
    }
    return os.str();
}

} // namespace golf::obs
