/**
 * @file
 * Go select statements over golfcc channels.
 *
 * Semantics (Section 2): a select blocks until at least one case can
 * fire, then chooses among ready cases pseudo-randomly; a default
 * case makes it non-blocking; nil-channel cases never fire; a select
 * with zero cases (selectForever) blocks forever with B(g) = {eps}.
 *
 * While parked, one waiter per non-nil channel case sits in that
 * channel's queue; all waiters share a SelectState, and the first
 * channel to fire claims it. B(g) is the set of all case channels,
 * exactly the multi-channel blocking set of Section 4.1.
 *
 * Implementation split: case *specs* (channel, output slots, payload)
 * are small movable values carried into the awaitable; the per-case
 * *state* (waiter node, root slot) is non-movable and constructed in
 * place inside the awaitable, which itself lives in the coroutine
 * frame for the duration of the operation.
 */
#ifndef GOLFCC_CHAN_SELECT_HPP
#define GOLFCC_CHAN_SELECT_HPP

#include <tuple>
#include <vector>

#include "chan/channel.hpp"

namespace golf::chan {

/** Index returned when the default case fires. */
constexpr int kSelectDefault = -1;

/// @{ Case specs (movable; built by the case factories).

template <typename T>
struct RecvSpec
{
    Channel<T>* ch;
    T* out;
    bool* okOut;
    rt::Site site;
};

template <typename T>
struct SendSpec
{
    Channel<T>* ch;
    T value;
    rt::Site site;
};

struct DefaultSpec
{
    rt::Site site;
};

template <typename T>
RecvSpec<T>
recvCase(Channel<T>* ch, T* out = nullptr, bool* ok = nullptr,
         std::source_location loc = std::source_location::current())
{
    return RecvSpec<T>{ch, out, ok, rt::Site::from(loc)};
}

template <typename T>
SendSpec<T>
sendCase(Channel<T>* ch, T v,
         std::source_location loc = std::source_location::current())
{
    return SendSpec<T>{ch, std::move(v), rt::Site::from(loc)};
}

inline DefaultSpec
defaultCase(std::source_location loc = std::source_location::current())
{
    return DefaultSpec{rt::Site::from(loc)};
}

/// @}

namespace seldetail {

/// @{ Per-case runtime state (non-movable; constructed in place).

template <typename T>
struct RecvState
{
    Waiter<T> waiter{};
    T tmp{};
    bool pollOk = false;
    bool polled = false;
    gc::RootSlot root{};
};

template <typename T>
struct SendState
{
    Waiter<T> waiter{};
    bool polled = false;
    bool panicClosed = false;
    gc::RootSlot root{};
};

struct DefaultState
{};

template <typename Spec>
struct StateFor;
template <typename T>
struct StateFor<RecvSpec<T>>
{
    using type = RecvState<T>;
};
template <typename T>
struct StateFor<SendSpec<T>>
{
    using type = SendState<T>;
};
template <>
struct StateFor<DefaultSpec>
{
    using type = DefaultState;
};

template <typename C>
struct IsDefault : std::false_type
{};
template <>
struct IsDefault<DefaultSpec> : std::true_type
{};

/** Register `ref` as a root of g if it is a managed pointer. */
template <typename T>
void
rootIfManaged(gc::RootSlot& slot, T& ref, rt::Goroutine* g)
{
    if constexpr (std::is_pointer_v<T> &&
                  std::is_base_of_v<gc::Object,
                                    std::remove_pointer_t<T>>) {
        slot.setSlot(reinterpret_cast<gc::Object**>(&ref));
        g->roots().add(&slot);
    } else {
        (void)slot;
        (void)ref;
        (void)g;
    }
}

template <typename T>
bool
poll(RecvSpec<T>& spec, RecvState<T>& st)
{
    if (!spec.ch)
        return false;
    if (spec.ch->tryRecv(&st.tmp, &st.pollOk) == OpStatus::Done) {
        st.polled = true;
        return true;
    }
    return false;
}

template <typename T>
bool
poll(SendSpec<T>& spec, SendState<T>& st)
{
    if (!spec.ch)
        return false;
    switch (spec.ch->trySend(spec.value)) {
      case OpStatus::Done:
        st.polled = true;
        return true;
      case OpStatus::Closed:
        // The case is "ready": executing it panics (Go semantics).
        st.polled = true;
        st.panicClosed = true;
        return true;
      case OpStatus::WouldBlock:
        return false;
    }
    return false;
}

inline bool
poll(DefaultSpec&, DefaultState&)
{
    return false;
}

template <typename T>
void
registerWaiter(RecvSpec<T>& spec, RecvState<T>& st, SelectState* sel,
               int idx, rt::Goroutine* g)
{
    if (!spec.ch)
        return;
    st.waiter.g = g;
    st.waiter.sel = sel;
    st.waiter.caseIndex = idx;
    st.waiter.slot = &st.tmp;
    spec.ch->enqueueRecv(&st.waiter);
    rootIfManaged(st.root, st.tmp, g);
}

template <typename T>
void
registerWaiter(SendSpec<T>& spec, SendState<T>& st, SelectState* sel,
               int idx, rt::Goroutine* g)
{
    if (!spec.ch)
        return;
    st.waiter.g = g;
    st.waiter.sel = sel;
    st.waiter.caseIndex = idx;
    st.waiter.slot = &spec.value;
    spec.ch->enqueueSend(&st.waiter);
    rootIfManaged(st.root, spec.value, g);
}

inline void
registerWaiter(DefaultSpec&, DefaultState&, SelectState*, int,
               rt::Goroutine*)
{
}

template <typename T>
void
dequeue(RecvSpec<T>&, RecvState<T>& st)
{
    if (st.waiter.node.linked())
        st.waiter.node.unlink();
}

template <typename T>
void
dequeue(SendSpec<T>&, SendState<T>& st)
{
    if (st.waiter.node.linked())
        st.waiter.node.unlink();
}

inline void
dequeue(DefaultSpec&, DefaultState&)
{
}

template <typename T>
void
finish(RecvSpec<T>& spec, RecvState<T>& st)
{
    bool ok = st.polled ? st.pollOk : st.waiter.success;
    if (spec.out)
        *spec.out = std::move(st.tmp);
    if (spec.okOut)
        *spec.okOut = ok;
}

template <typename T>
void
finish(SendSpec<T>&, SendState<T>& st)
{
    if (st.panicClosed || st.waiter.closedWake)
        support::goPanic("send on closed channel");
}

inline void
finish(DefaultSpec&, DefaultState&)
{
}

template <typename T>
gc::Object*
channelOf(RecvSpec<T>& spec)
{
    return spec.ch;
}

template <typename T>
gc::Object*
channelOf(SendSpec<T>& spec)
{
    return spec.ch;
}

inline gc::Object*
channelOf(DefaultSpec&)
{
    return nullptr;
}

} // namespace seldetail

/** The select awaitable; co_await yields the fired case index
 *  (declaration order, 0-based) or kSelectDefault. */
template <typename... Specs>
class SelectOp
{
  public:
    explicit SelectOp(Specs&&... specs)
        : specs_(std::move(specs)...)
    {}

    bool await_ready() const noexcept { return false; }

    bool
    await_suspend(std::coroutine_handle<> h)
    {
        rt::checkFault(rt::FaultSite::Select);
        rt::Runtime* rt = rt::Runtime::current();
        rt::Goroutine* g = rt->currentGoroutine();
        state_.g = g;

        // Random polling order (Go shuffles case evaluation).
        std::vector<int> order;
        forEachCase([&](auto& spec, auto&, int idx) {
            using C = std::decay_t<decltype(spec)>;
            if (!seldetail::IsDefault<C>::value)
                order.push_back(idx);
        });
        rt->sched().rng().shuffle(order);

        for (int idx : order) {
            bool fired = false;
            forEachCase([&](auto& spec, auto& st, int i) {
                if (i == idx)
                    fired = seldetail::poll(spec, st);
            });
            if (fired) {
                chosen_ = idx;
                return false;
            }
        }
        if (hasDefault()) {
            chosen_ = kSelectDefault;
            return false;
        }

        for (int idx : order) {
            forEachCase([&](auto& spec, auto& st, int i) {
                if (i == idx)
                    seldetail::registerWaiter(spec, st, &state_, i, g);
            });
        }

        std::vector<gc::Object*> blockedOn;
        forEachCase([&](auto& spec, auto&, int) {
            if (gc::Object* ch = seldetail::channelOf(spec))
                blockedOn.push_back(ch);
        });
        const bool forever = blockedOn.empty();
        rt->park(g, h, rt::WaitReason::Select, std::move(blockedOn),
                 forever, firstSite());
        suspended_ = true;
        return true;
    }

    int
    await_resume()
    {
        // Cancel wins over any concurrent claim; the per-case state
        // dtors unlink every registered waiter during unwind.
        rt::checkCancel();
        if (suspended_) {
            chosen_ = state_.chosenIndex;
            forEachCase([](auto& spec, auto& st, int) {
                seldetail::dequeue(spec, st);
            });
        }
        if (chosen_ != kSelectDefault) {
            forEachCase([&](auto& spec, auto& st, int i) {
                if (i == chosen_)
                    seldetail::finish(spec, st);
            });
        }
        return chosen_;
    }

  private:
    template <typename Fn>
    void
    forEachCase(Fn&& fn)
    {
        forEachImpl(fn, std::index_sequence_for<Specs...>{});
    }

    template <typename Fn, size_t... Is>
    void
    forEachImpl(Fn& fn, std::index_sequence<Is...>)
    {
        (fn(std::get<Is>(specs_), std::get<Is>(states_),
            static_cast<int>(Is)),
         ...);
    }

    bool
    hasDefault() const
    {
        return (seldetail::IsDefault<Specs>::value || ...);
    }

    rt::Site
    firstSite() const
    {
        return std::get<0>(specs_).site;
    }

    std::tuple<Specs...> specs_;
    std::tuple<typename seldetail::StateFor<Specs>::type...> states_;
    SelectState state_;
    int chosen_ = kSelectDefault - 1;
    bool suspended_ = false;
};

/** select { case ...: } — co_await the returned awaitable. */
template <typename... Specs>
SelectOp<Specs...>
select(Specs... specs)
{
    static_assert(sizeof...(Specs) > 0,
                  "use selectForever() for a zero-case select");
    return SelectOp<Specs...>(std::move(specs)...);
}

/** select {} with zero cases: blocks forever (B(g) = {epsilon}). */
class SelectForeverOp
{
  public:
    explicit SelectForeverOp(rt::Site site) : site_(site) {}

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        rt::checkFault(rt::FaultSite::Select);
        rt::Runtime* rt = rt::Runtime::current();
        rt->park(rt->currentGoroutine(), h,
                 rt::WaitReason::SelectNoCases, {}, true, site_);
    }

    // Not noexcept: a zero-case select can only resume through a
    // cancel delivery (nothing else ever wakes it).
    void await_resume() const { rt::checkCancel(); }

  private:
    rt::Site site_;
};

inline SelectForeverOp
selectForever(std::source_location loc = std::source_location::current())
{
    return SelectForeverOp(rt::Site::from(loc));
}

} // namespace golf::chan

#endif // GOLFCC_CHAN_SELECT_HPP
