/**
 * @file
 * Go channels: bounded message queues with blocking send/receive.
 *
 * Semantics follow Section 2 of the paper:
 *  - capacity 0 (unbuffered): send and receive block until a partner
 *    performs the complementary operation;
 *  - capacity > 0 (buffered): send blocks only when the buffer is
 *    full, receive only when it is empty;
 *  - nil channels: send/receive block forever (B(g) = {epsilon});
 *  - close(): receives drain the buffer then yield (zero, ok=false);
 *    blocked senders and later sends panic; double close panics.
 *
 * GC integration: the buffer contents are traced; the waiter queues
 * are *not* — the Go GC likewise does not use channel waiter lists to
 * mark blocked goroutines (the rejected optimization of Section 5.3).
 * A blocked operation roots the channel from the blocking goroutine's
 * shadow stack, which is what makes the closure of a deadlocked
 * goroutine reclaimable as a unit.
 */
#ifndef GOLFCC_CHAN_CHANNEL_HPP
#define GOLFCC_CHAN_CHANNEL_HPP

#include <deque>
#include <source_location>
#include <utility>

#include "gc/marker.hpp"
#include "gc/object.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "support/intrusive_list.hpp"
#include "support/panic.hpp"

namespace golf::chan {

/** Payload for signal-only channels (chan struct{}). */
struct Unit
{
    bool operator==(const Unit&) const = default;
};

/** Shared state linking the waiters of one select statement. */
struct SelectState
{
    rt::Goroutine* g = nullptr;
    bool claimed = false;
    int chosenIndex = -1;
};

/** A parked channel operation (the sudog analog). Lives inside the
 *  blocking awaitable, i.e. in a coroutine frame: destroying the
 *  frame unlinks it from the channel queue automatically. */
struct WaiterBase
{
    support::IListNode node;
    rt::Goroutine* g = nullptr;
    SelectState* sel = nullptr;
    int caseIndex = -1;
    bool success = false;    ///< Value delivered / taken.
    bool closedWake = false; ///< Woken because the channel closed.
};

template <typename T>
struct Waiter : WaiterBase
{
    T* slot = nullptr;
};

/** Result of a non-blocking channel operation attempt. */
enum class OpStatus
{
    Done,       ///< Operation completed (for recv, check ok).
    WouldBlock, ///< Must park.
    Closed,     ///< Send on closed channel (caller panics).
};

template <typename T>
class Channel : public gc::Object
{
  public:
    Channel(rt::Runtime& rt, size_t capacity)
        : rt_(rt), cap_(capacity)
    {}

    size_t capacity() const { return cap_; }
    size_t size() const { return buf_.size(); }
    bool closed() const { return closed_; }

    /** Non-blocking send attempt; moves from v on success. */
    OpStatus
    trySend(T& v)
    {
        if (poisoned())
            rt_.onResurrection(this, "chan send");
        if (closed_)
            return OpStatus::Closed;
        if (Waiter<T>* w = popRecvWaiter()) {
            *w->slot = std::move(v);
            w->success = true;
            // Direct handoff: the rendezvous synchronizes both sides
            // (send HB recv completing, recv HB send returning).
            if (auto* rd = rt_.raceDetector())
                rd->channelPair(rt_.currentGoroutine(), w->g, this);
            rt_.ready(w->g);
            return OpStatus::Done;
        }
        if (buf_.size() < cap_) {
            // Buffered send: release into the channel's clock; the
            // eventual receive acquires it (send HB recv).
            if (auto* rd = rt_.raceDetector())
                rd->release(rt_.currentGoroutine(), this);
            buf_.push_back(std::move(v));
            return OpStatus::Done;
        }
        return OpStatus::WouldBlock;
    }

    /** Non-blocking receive attempt. On Done, *ok reports whether a
     *  value (vs. the closed-channel zero value) was received. */
    OpStatus
    tryRecv(T* out, bool* ok)
    {
        if (poisoned())
            rt_.onResurrection(this, "chan recv");
        if (!buf_.empty()) {
            // Buffered receive: acquire the channel's clock (the
            // matching send released into it).
            if (auto* rd = rt_.raceDetector())
                rd->acquire(rt_.currentGoroutine(), this);
            *out = std::move(buf_.front());
            buf_.pop_front();
            // A parked sender can now place its value in the buffer.
            if (Waiter<T>* w = popSendWaiter()) {
                // The granted sender's value enters the buffer now:
                // publish its clock for the value's eventual receiver.
                if (auto* rd = rt_.raceDetector())
                    rd->release(w->g, this);
                buf_.push_back(std::move(*w->slot));
                w->success = true;
                rt_.ready(w->g);
            }
            *ok = true;
            return OpStatus::Done;
        }
        if (Waiter<T>* w = popSendWaiter()) {
            // Unbuffered handoff: full rendezvous.
            if (auto* rd = rt_.raceDetector())
                rd->channelPair(rt_.currentGoroutine(), w->g, this);
            *out = std::move(*w->slot);
            w->success = true;
            rt_.ready(w->g);
            *ok = true;
            return OpStatus::Done;
        }
        if (closed_) {
            // close(ch) HB a receive observing the close.
            if (auto* rd = rt_.raceDetector())
                rd->acquire(rt_.currentGoroutine(), this);
            *out = T{};
            *ok = false;
            return OpStatus::Done;
        }
        return OpStatus::WouldBlock;
    }

    /** close(ch). Panics on double close. */
    void
    doClose()
    {
        if (poisoned())
            rt_.onResurrection(this, "chan close");
        if (closed_)
            support::goPanic("close of closed channel");
        closed_ = true;
        // close(ch) releases; woken receivers inherit the closer's
        // clock through the wakeup edge, later receivers through the
        // acquire in tryRecv's closed path.
        if (auto* rd = rt_.raceDetector())
            rd->release(rt_.currentGoroutine(), this);
        while (Waiter<T>* w = popRecvWaiter()) {
            *w->slot = T{};
            w->success = false;
            w->closedWake = true;
            rt_.ready(w->g);
        }
        while (Waiter<T>* w = popSendWaiter()) {
            w->closedWake = true;
            rt_.ready(w->g);
        }
    }

    /**
     * Send from outside any goroutine (runtime timers, the service
     * driver). Drops the value if it would block and the buffer is
     * full — used only for capacity >= 1 notification channels
     * (time.After semantics).
     */
    bool
    trySendExternal(T v)
    {
        return trySend(v) == OpStatus::Done;
    }

    /// @{ Waiter registration for blocking ops and select.
    void enqueueSend(Waiter<T>* w) { sendq_.pushBack(w); }
    void enqueueRecv(Waiter<T>* w) { recvq_.pushBack(w); }
    bool hasBlockedSenders() { return firstActive(sendq_) != nullptr; }
    bool hasBlockedReceivers() { return firstActive(recvq_) != nullptr; }
    /// @}

    void
    trace(gc::Marker& m) override
    {
        for (auto& v : buf_)
            gc::traceValue(m, v);
        // sendq_/recvq_ deliberately untraced (Section 5.3): blocked
        // goroutines become reachable only through the GOLF root-set
        // expansion, never through the channel itself.
    }

    const char* objectName() const override { return "chan"; }

    uint64_t
    mcFingerprint() const override
    {
        return (static_cast<uint64_t>(buf_.size()) << 2) |
               (static_cast<uint64_t>(closed_) << 1) | 1u;
    }

    std::string
    validate() const override
    {
        if (cap_ > 0 && buf_.size() > cap_)
            return "buffer exceeds capacity";
        if (const char* bad = validateQueue(sendq_, rt::WaitReason::ChanSend))
            return bad;
        if (const char* bad = validateQueue(recvq_, rt::WaitReason::ChanRecv))
            return bad;
        return {};
    }

  private:
    using Queue = support::IList<WaiterBase, &WaiterBase::node>;

    /** First waiter whose select (if any) is still unclaimed; stale
     *  claimed select waiters are unlinked lazily on the way. */
    WaiterBase*
    firstActive(Queue& q)
    {
        while (WaiterBase* w = q.front()) {
            if (w->sel && w->sel->claimed) {
                w->node.unlink();
                continue;
            }
            if (w->g &&
                w->g->status() == rt::GStatus::Quarantined) {
                // A quarantined goroutine's waiters may survive in
                // the queue (its unwind failed); no wakeup must ever
                // reach it.
                w->node.unlink();
                continue;
            }
            if (w->g && w->g->cancelPending()) {
                // A DeadlockError was delivered while this waiter
                // was parked: the goroutine is already Runnable and
                // throws on resume. Never hand it a value.
                w->node.unlink();
                continue;
            }
            return w;
        }
        return nullptr;
    }

    Waiter<T>*
    popActive(Queue& q)
    {
        WaiterBase* w = firstActive(q);
        if (!w)
            return nullptr;
        w->node.unlink();
        if (w->sel) {
            w->sel->claimed = true;
            w->sel->chosenIndex = w->caseIndex;
        }
        return static_cast<Waiter<T>*>(w);
    }

    Waiter<T>* popRecvWaiter() { return popActive(recvq_); }
    Waiter<T>* popSendWaiter() { return popActive(sendq_); }

    /** verifyInvariants() support: every enqueued waiter must belong
     *  to a goroutine in a state that can legitimately hold one. */
    const char*
    validateQueue(const Queue& q, rt::WaitReason reason) const
    {
        const char* bad = nullptr;
        q.forEach([&](WaiterBase* w) {
            if (bad)
                return;
            if (w->sel && w->sel->claimed)
                return; // stale select waiter, unlinked lazily
            if (!w->g) {
                bad = "enqueued waiter with a null goroutine";
                return;
            }
            const rt::GStatus s = w->g->status();
            const bool ok =
                s == rt::GStatus::Waiting ||
                s == rt::GStatus::Deadlocked ||
                s == rt::GStatus::PendingReclaim ||
                s == rt::GStatus::Quarantined ||
                (s == rt::GStatus::Runnable &&
                 (w->g->spuriousWake() || w->g->cancelPending()));
            if (!ok) {
                bad = "waiter whose goroutine is neither parked nor "
                      "pending unwind";
                return;
            }
            if (!w->sel && s != rt::GStatus::Quarantined &&
                !w->g->cancelPending() &&
                w->g->waitReason() != reason) {
                bad = "waiter whose goroutine reports a different "
                      "wait reason";
            }
        });
        return bad;
    }

    rt::Runtime& rt_;
    size_t cap_;
    std::deque<T> buf_;
    bool closed_ = false;
    Queue sendq_;
    Queue recvq_;
};

/** make(chan T, capacity) analog. */
template <typename T>
Channel<T>*
makeChan(rt::Runtime& rt, size_t capacity = 0)
{
    return rt.heap().make<Channel<T>>(rt, capacity);
}

/** Result of a receive: the value and the ok flag. */
template <typename T>
struct RecvResult
{
    T value{};
    bool ok = false;
};

/** Awaitable send (ch <- v). A nil channel blocks forever. */
template <typename T>
class SendOp
{
  public:
    SendOp(Channel<T>* ch, T v, rt::Site site)
        : ch_(ch), value_(std::move(v)), site_(site),
          valueRoot_(value_), chanRoot_(ch_)
    {}

    bool await_ready() const noexcept { return false; }

    bool
    await_suspend(std::coroutine_handle<> h)
    {
        rt::checkFault(rt::FaultSite::ChanSend);
        rt::Runtime* rt = rt::Runtime::current();
        rt::Goroutine* g = rt->currentGoroutine();
        if (!ch_) {
            rt->park(g, h, rt::WaitReason::ChanSendNil, {}, true,
                     site_);
            return true;
        }
        switch (ch_->trySend(value_)) {
          case OpStatus::Done:
            return false;
          case OpStatus::Closed:
            panicClosed_ = true;
            return false;
          case OpStatus::WouldBlock:
            break;
        }
        waiter_.g = g;
        waiter_.slot = &value_;
        ch_->enqueueSend(&waiter_);
        rt->park(g, h, rt::WaitReason::ChanSend, {ch_}, false, site_);
        return true;
    }

    void
    await_resume()
    {
        // Cancel wins over any concurrent wake: the thrown
        // DeadlockError unwinds the frame, and ~Waiter unlinks us
        // from the send queue.
        rt::checkCancel();
        if (panicClosed_ || waiter_.closedWake)
            support::goPanic("send on closed channel");
    }

  private:
    Channel<T>* ch_;
    T value_;
    rt::Site site_;
    gc::ValueRoot<T> valueRoot_;
    gc::ValueRoot<Channel<T>*> chanRoot_;
    Waiter<T> waiter_;
    bool panicClosed_ = false;
};

/** Awaitable receive (<-ch). A nil channel blocks forever. */
template <typename T>
class RecvOp
{
  public:
    RecvOp(Channel<T>* ch, rt::Site site)
        : ch_(ch), site_(site), valueRoot_(value_), chanRoot_(ch_)
    {}

    bool await_ready() const noexcept { return false; }

    bool
    await_suspend(std::coroutine_handle<> h)
    {
        rt::checkFault(rt::FaultSite::ChanRecv);
        rt::Runtime* rt = rt::Runtime::current();
        rt::Goroutine* g = rt->currentGoroutine();
        if (!ch_) {
            rt->park(g, h, rt::WaitReason::ChanRecvNil, {}, true,
                     site_);
            return true;
        }
        if (ch_->tryRecv(&value_, &ok_) == OpStatus::Done) {
            immediate_ = true;
            return false;
        }
        waiter_.g = g;
        waiter_.slot = &value_;
        ch_->enqueueRecv(&waiter_);
        rt->park(g, h, rt::WaitReason::ChanRecv, {ch_}, false, site_);
        return true;
    }

    RecvResult<T>
    await_resume()
    {
        rt::checkCancel();
        if (!immediate_)
            ok_ = waiter_.success;
        return RecvResult<T>{std::move(value_), ok_};
    }

  private:
    Channel<T>* ch_;
    rt::Site site_;
    T value_{};
    bool ok_ = false;
    bool immediate_ = false;
    gc::ValueRoot<T> valueRoot_;
    gc::ValueRoot<Channel<T>*> chanRoot_;
    Waiter<T> waiter_;
};

/// @{ The channel operation API (free functions accept nil channels).

template <typename T>
SendOp<T>
send(Channel<T>* ch, T v,
     std::source_location loc = std::source_location::current())
{
    return SendOp<T>(ch, std::move(v), rt::Site::from(loc));
}

template <typename T>
RecvOp<T>
recv(Channel<T>* ch,
     std::source_location loc = std::source_location::current())
{
    return RecvOp<T>(ch, rt::Site::from(loc));
}

template <typename T>
void
close(Channel<T>* ch)
{
    if (!ch)
        support::goPanic("close of nil channel");
    ch->doClose();
}

/// @}

} // namespace golf::chan

#endif // GOLFCC_CHAN_CHANNEL_HPP
