/**
 * @file
 * Partial-deadlock reports and the report log.
 *
 * Individual reports carry the goroutine id, wait reason, stack size,
 * the `go` statement site and the blocking-operation site — the same
 * ingredients as GOLF's "partial deadlock!" runtime message (Artifact
 * Appendix A.6). Deduplication pairs the spawn site with the blocking
 * site, exactly the key used for the RQ1(b) deduplicated counts.
 */
#ifndef GOLFCC_GOLF_REPORT_HPP
#define GOLFCC_GOLF_REPORT_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/types.hpp"
#include "support/vclock.hpp"

namespace golf::detect {

/** One detected partial deadlock (one goroutine). */
struct DeadlockReport
{
    uint64_t goroutineId = 0;
    rt::WaitReason reason = rt::WaitReason::None;
    rt::Site spawnSite;
    rt::Site blockSite;
    size_t stackBytes = 0;
    uint64_t gcCycle = 0;
    support::VTime vtime = 0;

    /** "spawnFile:line|blockFile:line" — the RQ1(b) dedup key. */
    std::string dedupKey() const;

    /** Human-readable report, GOLF message style. */
    std::string str() const;

    /** One JSON object (for structured logging pipelines). */
    std::string json() const;
};

/** A goroutine whose forced shutdown failed mid-unwind and was
 *  isolated instead of recycled (crash-safe reclaim). */
struct QuarantineRecord
{
    uint64_t goroutineId = 0;
    std::string reason;
    support::VTime vtime = 0;

    std::string str() const;
};

/** A DeadlockError delivered to a blocked goroutine (Cancel rung). */
struct CancelRecord
{
    uint64_t goroutineId = 0;
    rt::WaitReason reason = rt::WaitReason::None;
    /** Deliveries to this goroutine including this one. */
    int attempt = 0;
    support::VTime vtime = 0;

    std::string str() const;
};

/** A poisoned concurrency object was touched after its waiter was
 *  declared deadlocked: a detected (and healed) false positive. */
struct ResurrectionRecord
{
    std::string object;  ///< objectName() of the poisoned object.
    std::string op;      ///< The operation that tripped the poison.
    support::VTime vtime = 0;

    std::string str() const;
};

/** The FatalReport rung fired: live bytes stayed over the soft heap
 *  limit past the grace window (DESIGN.md §14). */
struct OomRecord
{
    uint64_t goroutineId = 0;   ///< Goroutine running at the report.
    uint64_t liveBytes = 0;     ///< Modeled live heap at the report.
    uint64_t softLimitBytes = 0;
    std::string what;           ///< Human-readable cause.
    support::VTime vtime = 0;

    std::string str() const;
};

/** Accumulates individual reports plus deduplicated counts. */
class ReportLog
{
  public:
    void add(const DeadlockReport& r);

    /** Record a quarantined goroutine (reclaim-unwind failure). */
    void addQuarantine(uint64_t goroutineId, std::string reason,
                       support::VTime vtime);

    /** Record a Cancel-rung DeadlockError delivery. */
    void addCancel(uint64_t goroutineId, rt::WaitReason reason,
                   int attempt, support::VTime vtime);

    /** Record a detected resurrection (healed false positive). */
    void addResurrection(std::string object, std::string op,
                         support::VTime vtime);

    /** Record a fatal out-of-memory report (FatalReport rung). */
    void addOom(const OomRecord& r);

    /** All fatal OOM records, in order. */
    const std::vector<OomRecord>& ooms() const { return ooms_; }

    /** All quarantine records, in order. */
    const std::vector<QuarantineRecord>& quarantines() const
    {
        return quarantines_;
    }

    /** All cancellation deliveries, in order. */
    const std::vector<CancelRecord>& cancels() const
    {
        return cancels_;
    }

    /** All detected resurrections, in order. */
    const std::vector<ResurrectionRecord>& resurrections() const
    {
        return resurrections_;
    }

    /** All individual reports, in detection order. */
    const std::vector<DeadlockReport>& all() const { return reports_; }

    /** Individual reports per dedup key. */
    const std::map<std::string, size_t>&
    dedupCounts() const
    {
        return dedup_;
    }

    size_t total() const { return reports_.size(); }
    size_t deduplicated() const { return dedup_.size(); }

    /** Individual reports whose spawn site matches file:line. */
    size_t countAtSpawnSite(const std::string& fileLine) const;

    /**
     * Install a sink invoked for each new report — the "existing
     * logging infrastructure" hookup of the RQ1(c) deployment
     * (reports flow to the service's log pipeline as they happen).
     */
    void setSink(std::function<void(const DeadlockReport&)> sink)
    {
        sink_ = std::move(sink);
    }

    /** Write all reports as a JSON array. */
    void writeJson(const std::string& path) const;

    void clear();

  private:
    std::vector<DeadlockReport> reports_;
    std::vector<QuarantineRecord> quarantines_;
    std::vector<CancelRecord> cancels_;
    std::vector<ResurrectionRecord> resurrections_;
    std::vector<OomRecord> ooms_;
    std::map<std::string, size_t> dedup_;
    std::function<void(const DeadlockReport&)> sink_;
};

} // namespace golf::detect

#endif // GOLFCC_GOLF_REPORT_HPP
