#include "golf/report.hpp"

#include <fstream>
#include <sstream>

namespace golf::detect {

std::string
DeadlockReport::dedupKey() const
{
    return spawnSite.str() + "|" + blockSite.str();
}

std::string
DeadlockReport::str() const
{
    std::ostringstream os;
    os << "partial deadlock! goroutine " << goroutineId
       << " [" << rt::waitReasonName(reason) << "]"
       << " Stack size " << stackBytes << " bytes\n"
       << "  created at:  " << spawnSite.str() << "\n"
       << "  blocked at:  " << blockSite.str()
       << " (GC cycle " << gcCycle << ")";
    return os.str();
}

std::string
DeadlockReport::json() const
{
    std::ostringstream os;
    os << "{\"goroutine\":" << goroutineId << ",\"reason\":\""
       << rt::waitReasonName(reason) << "\",\"spawn\":\""
       << spawnSite.str() << "\",\"block\":\"" << blockSite.str()
       << "\",\"stack_bytes\":" << stackBytes << ",\"gc_cycle\":"
       << gcCycle << ",\"vtime_ns\":" << vtime << "}";
    return os.str();
}

std::string
QuarantineRecord::str() const
{
    std::ostringstream os;
    os << "quarantine! goroutine " << goroutineId
       << ": forced shutdown failed (" << reason << ") at t="
       << vtime << "ns; goroutine isolated";
    return os.str();
}

void
ReportLog::add(const DeadlockReport& r)
{
    reports_.push_back(r);
    ++dedup_[r.dedupKey()];
    if (sink_)
        sink_(r);
}

void
ReportLog::writeJson(const std::string& path) const
{
    std::ofstream out(path);
    out << "[\n";
    for (size_t i = 0; i < reports_.size(); ++i) {
        out << "  " << reports_[i].json();
        if (i + 1 < reports_.size())
            out << ",";
        out << "\n";
    }
    out << "]\n";
}

size_t
ReportLog::countAtSpawnSite(const std::string& fileLine) const
{
    size_t n = 0;
    for (const auto& r : reports_) {
        if (r.spawnSite.str() == fileLine)
            ++n;
    }
    return n;
}

void
ReportLog::addQuarantine(uint64_t goroutineId, std::string reason,
                         support::VTime vtime)
{
    quarantines_.push_back(
        QuarantineRecord{goroutineId, std::move(reason), vtime});
}

std::string
CancelRecord::str() const
{
    std::ostringstream os;
    os << "cancel! goroutine " << goroutineId << " ["
       << rt::waitReasonName(reason) << "] delivery #" << attempt
       << " at t=" << vtime << "ns";
    return os.str();
}

std::string
ResurrectionRecord::str() const
{
    std::ostringstream os;
    os << "resurrection! " << object << " touched via " << op
       << " after its waiter was declared deadlocked (t=" << vtime
       << "ns); poison cleared, goroutine revived";
    return os.str();
}

void
ReportLog::addCancel(uint64_t goroutineId, rt::WaitReason reason,
                     int attempt, support::VTime vtime)
{
    cancels_.push_back(
        CancelRecord{goroutineId, reason, attempt, vtime});
}

void
ReportLog::addResurrection(std::string object, std::string op,
                           support::VTime vtime)
{
    resurrections_.push_back(ResurrectionRecord{
        std::move(object), std::move(op), vtime});
}

std::string
OomRecord::str() const
{
    std::ostringstream os;
    os << "fatal oom! goroutine " << goroutineId << ": " << what
       << " (live=" << liveBytes << " limit=" << softLimitBytes
       << " t=" << vtime << "ns)";
    return os.str();
}

void
ReportLog::addOom(const OomRecord& r)
{
    ooms_.push_back(r);
}

void
ReportLog::clear()
{
    reports_.clear();
    quarantines_.clear();
    cancels_.clear();
    resurrections_.clear();
    ooms_.clear();
    dedup_.clear();
}

} // namespace golf::detect
