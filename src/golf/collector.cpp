#include "golf/collector.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <unordered_map>
#include <vector>

#include "gc/heap.hpp"
#include "gc/marker.hpp"
#include "gc/parallel.hpp"
#include "runtime/runtime.hpp"
#include "support/panic.hpp"

namespace golf::detect {

namespace {

uint64_t
wallNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

uint64_t
cpuNowNs()
{
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
}

} // namespace

Collector::Collector(rt::Runtime& rt) : rt_(rt)
{
}

void
Collector::hintInertGoroutine(const rt::Goroutine* g)
{
    // Keyed by goroutine id: *g objects are pooled and reused, and a
    // recycled goroutine gets a fresh id, so stale hints expire.
    inertGoroutineIds_.insert(g->id());
}

bool
Collector::isAlwaysLiveRoot(const rt::Goroutine* g) const
{
    switch (g->status()) {
      case rt::GStatus::Runnable:
      case rt::GStatus::Running:
        return true;
      case rt::GStatus::Waiting:
        // Wait-reason filter (Section 5.4): only channel/sync waits
        // are deadlock candidates; everything else is live.
        return !rt::isDeadlockCandidate(g->waitReason());
      case rt::GStatus::Deadlocked:
        // Finalizer-preserving state: treated as live forever (§5.5).
        return true;
      case rt::GStatus::Idle:
      case rt::GStatus::Done:
      case rt::GStatus::PendingReclaim:
        return false;
      case rt::GStatus::Quarantined:
        // Unwinding failed mid-reclaim: the goroutine is isolated
        // from the root set for good; whatever its frames still
        // reference is allowed to die.
        return false;
    }
    return false;
}

bool
Collector::isBlockedCandidate(const rt::Goroutine* g) const
{
    return g->status() == rt::GStatus::Waiting &&
           rt::isDeadlockCandidate(g->waitReason());
}

bool
Collector::blockedObjectReachable(const rt::Goroutine* g,
                                  uint64_t& checks) const
{
    // B(g) = {epsilon} for nil-channel operations and zero-case
    // selects: epsilon is never reachable (Section 4.1).
    if (g->blockedForever())
        return false;
    for (gc::Object* obj : g->blockedOn()) {
        ++checks;
        // Conservative fallback (Section 5.3): if the object is not
        // managed by our heap we cannot check its mark; assume it is
        // reachable (e.g. a global or foreign object).
        if (!rt_.heap().owns(obj))
            return true;
        if (rt_.heap().isMarked(obj))
            return true;
    }
    return false;
}

void
Collector::markGoroutine(gc::Marker& m, rt::Goroutine* g)
{
    // CAS claim: with parallel marking several workers can race to
    // add the same goroutine to the root set (the eager-liveness
    // hook fires wherever its blocking object is traced); exactly
    // the claim winner marks the stack, so every stack edge is
    // traversed once per cycle no matter the worker count.
    if (g->claimLiveAt(rt_.heap().epoch()))
        g->markStack(m);
}

void
Collector::handleDeadlocked(gc::Marker& m, rt::Goroutine* g,
                            CycleStats& cs)
{
    ++cs.deadlocksFound;
    rt_.emitEvent(rt::TraceEvent::Deadlock, g->id(),
                  g->waitReason());
    if (auto* o = rt_.obs()) {
        // Park-to-verdict latency off the PR 4 watchdog stamp (the
        // stamp is re-armed by polls, so this measures from the last
        // poll that saw the goroutine — the operational signal).
        o->onDeadlockVerdict(rt_.clock().now() - g->blockedSinceVt());
    }

    if (!g->reported()) {
        DeadlockReport report;
        report.goroutineId = g->id();
        report.reason = g->waitReason();
        report.spawnSite = g->spawnSite();
        report.blockSite = g->blockSite();
        report.stackBytes = g->frameBytes();
        report.gcCycle = cycleNo_;
        report.vtime = rt_.clock().now();
        log_.add(report);
        g->setReported();
        if (rt_.config().verboseReports)
            std::fprintf(stderr, "%s\n", report.str().c_str());
    }

    const rt::Recovery recovery = rt_.config().recovery;

    // Cancel-capable rungs deliver a DeadlockError while attempts
    // remain: the goroutine rejoins the run queue, so its closure
    // must survive this cycle's sweep. No poisoning — nothing about
    // the goroutine is torn down yet.
    if ((recovery == rt::Recovery::Cancel ||
         recovery == rt::Recovery::Quarantine) &&
        g->cancelDeliveries() < rt_.config().guard.cancelAttempts) {
        std::string msg =
            std::string("deadlock: cancelled while blocked [") +
            rt::waitReasonName(g->waitReason()) + "] at " +
            g->blockSite().str();
        log_.addCancel(g->id(), g->waitReason(),
                       g->cancelDeliveries() + 1, rt_.clock().now());
        rt_.deliverCancel(g, msg);
        markGoroutine(m, g);
        m.drain();
        ++cs.cancelled;
        return;
    }

    if (recovery == rt::Recovery::Detect ||
        recovery == rt::Recovery::Cancel) {
        // Detect rung (monitoring mode, RQ1(b)) — or Cancel with its
        // delivery attempts exhausted: keep the goroutine and its
        // memory alive forever; the Deadlocked status suppresses
        // re-reports. Poison B(g) so a false-positive wakeup is
        // detected and healed instead of panicking the waker.
        g->setStatus(rt::GStatus::Deadlocked);
        markGoroutine(m, g);
        m.drain();
        poisonBlockedOn(g);
        return;
    }

    // Reclaim rung (the paper's recovery, and Quarantine once cancel
    // attempts are exhausted): mark the goroutine's closure so it
    // survives this cycle's sweep, checking for finalizers while
    // doing so (§5.5).
    m.clearFinalizerSeen();
    markGoroutine(m, g);
    m.drain();
    if (m.finalizerSeen()) {
        // A finalizer is reachable only via this deadlocked
        // goroutine; reclaiming would run it and change program
        // semantics (Listing 6). Keep the goroutine alive forever.
        g->setStatus(rt::GStatus::Deadlocked);
    } else {
        g->setStatus(rt::GStatus::PendingReclaim);
        pendingReclaim_.push_back(g);
    }
    poisonBlockedOn(g);
}

void
Collector::poisonBlockedOn(rt::Goroutine* g)
{
    // By GOLF soundness a true positive's B(g) objects are
    // unreachable and die in an imminent sweep, taking the flag with
    // them; the flag survives only when the verdict was wrong and
    // someone still holds a reference — exactly the case the
    // tripwire exists for.
    for (gc::Object* obj : g->blockedOn()) {
        if (rt_.heap().owns(obj))
            obj->setPoisoned();
    }
}

void
Collector::unstage(rt::Goroutine* g)
{
    for (auto it = pendingReclaim_.begin();
         it != pendingReclaim_.end(); ++it) {
        if (*it == g) {
            pendingReclaim_.erase(it);
            return;
        }
    }
}

void
Collector::collect()
{
    const uint64_t pause0 = wallNowNs();
    const uint64_t cpu0 = cpuNowNs();

    CycleStats cs;
    cs.cycle = ++cycleNo_;
    const bool golfMode = rt_.config().gcMode == rt::GcMode::Golf;
    const int everyN = rt_.config().detectEveryN < 1
        ? 1 : rt_.config().detectEveryN;
    // The watchdog may force an off-cycle detection pass (§9); the
    // flag is consumed unconditionally so a pending force does not
    // leak into a later, unrelated cycle.
    const bool forced = rt_.consumeForceDetect();
    const bool detecting = golfMode &&
        (((cycleNo_ - 1) % static_cast<uint64_t>(everyN)) == 0 || forced);
    cs.detectionRan = detecting;
    cs.watchdogTriggered = forced;

    // Reclaim goroutines staged by the previous detecting cycle
    // *before* building roots: their frames unwind now (waiters
    // deregister from channel queues and the semtable), and the
    // memory they kept alive goes white for this cycle's sweep.
    for (rt::Goroutine* g : pendingReclaim_) {
        if (g->status() == rt::GStatus::PendingReclaim) {
            rt_.reclaimGoroutine(g);
            // Unwinding can fail (injected ReclaimFailure or a defer
            // that throws while the frame is torn down); the runtime
            // quarantines the goroutine instead of completing the
            // reclaim.
            if (g->status() == rt::GStatus::Quarantined)
                ++cs.quarantined;
            else
                ++cs.reclaimed;
        }
    }
    if (!pendingReclaim_.empty())
        rt_.semtable().purgeEmpty();
    pendingReclaim_.clear();

    // Go's poolCleanup: demote/drop sync.Pool caches in the STW
    // window before marking, so dropped items are swept this cycle.
    rt_.runPoolCleanups();

    gc::Heap& heap = rt_.heap();
    // Lazy-sweep drain (DESIGN.md §13): reintegrate any span still
    // parked in PendingSweep since the last sweep — Go's "finish
    // sweeping the previous cycle before the next one starts" rule.
    // beginCycleParallel would do this defensively anyway; doing it
    // here keeps the state machine's terminal transition explicit.
    heap.sweepRemainder();
    gc::ParallelMarker& pool =
        heap.beginCycleParallel(rt_.config().resolvedGcWorkers());
    gc::Marker& marker = pool.coordinator();
    cs.gcWorkers = pool.workers();

    // Eager-liveness extension (Section 5.3): index blocked
    // candidates by blocking object, and shade their stacks the
    // moment the object is discovered during marking. The index is
    // frozen before marking starts; workers only read it. The hook
    // runs on whichever worker pops the object and must mark through
    // that worker's view, not the coordinator's.
    std::unordered_map<gc::Object*, std::vector<rt::Goroutine*>>
        blockedIndex;
    if (detecting && rt_.config().eagerLivenessMarking) {
        rt_.forEachGoroutine([&](rt::Goroutine* g) {
            if (!isBlockedCandidate(g))
                return;
            for (gc::Object* obj : g->blockedOn()) {
                if (heap.owns(obj))
                    blockedIndex[obj].push_back(g);
            }
        });
        marker.setMarkHook(
            [&blockedIndex, this](gc::Marker& m, gc::Object* obj) {
                auto it = blockedIndex.find(obj);
                if (it == blockedIndex.end())
                    return;
                for (rt::Goroutine* g : it->second)
                    markGoroutine(m, g);
            });
    }

    const uint64_t mark0Wall = wallNowNs();
    const uint64_t mark0Cpu = cpuNowNs();

    // Initial root set. Baseline: all goroutines with frames (the
    // ordinary Go root set R = G). GOLF: runnable / always-live
    // goroutines only (R'_0 of Section 4.2). Hinted-inert goroutines
    // (Section 8 future work) are withheld from the liveness roots.
    const bool useHints =
        detecting &&
        (!inertGlobals_.empty() || !inertGoroutineIds_.empty());
    rt_.forEachGoroutine([&](rt::Goroutine* g) {
        if (!g->hasFrames())
            return;
        // Quarantined goroutines may still hold intact frames (the
        // failure happened before frame destruction began), but they
        // are excluded from every root set in both modes: their
        // memory is unreferenced by construction.
        if (g->status() == rt::GStatus::Quarantined)
            return;
        if (detecting && useHints &&
            inertGoroutineIds_.count(g->id())) {
            return;
        }
        if (!detecting || isAlwaysLiveRoot(g))
            markGoroutine(marker, g);
    });
    // Global data is always a root (g0's references, Section 4) —
    // which is exactly why Listing 4's global channel defeats GOLF.
    // With hints, statically-inert globals are withheld here and
    // marked after detection (memory is retained either way).
    if (useHints) {
        heap.globalRoots().forEachRoot([&](gc::Object* obj) {
            if (!inertGlobals_.count(obj))
                marker.mark(obj);
        });
    } else {
        heap.globalRoots().traceInto(marker);
    }

    marker.drain();
    cs.markIterations = 1;

    if (detecting) {
        // Root-set expansion fixpoint: R'_{i+1} adds goroutines
        // blocked on objects that the i'th *completed* mark iteration
        // reached (Section 4.2 steps 2-3). The round first scans
        // against the finished marking, then marks the newly live
        // goroutines and re-runs marking — which is what makes the
        // daisy chain of Section 5.2 take n iterations.
        //
        // Both halves of a round run on the pool, separated by its
        // job barriers. The scan half is read-only (it checks mark
        // bits, marks nothing) so every goroutine is judged against
        // the same completed marking as in the serial code — were the
        // scan allowed to observe the expansion half's in-progress
        // marks, the round count (and the modelled pause derived from
        // it) would depend on worker timing. Results land in
        // index-addressed slots, making them independent of which
        // worker scanned which goroutine.
        bool expanded = true;
        while (expanded) {
            std::vector<rt::Goroutine*> blocked;
            rt_.forEachGoroutine([&](rt::Goroutine* g) {
                if (isBlockedCandidate(g) && !g->liveAt(heap.epoch()))
                    blocked.push_back(g);
            });
            std::vector<uint8_t> reachable(blocked.size(), 0);
            std::vector<uint64_t> checks(blocked.size(), 0);
            pool.forEachThenDrain(
                blocked.size(),
                [&](size_t i, gc::Marker&) {
                    reachable[i] =
                        blockedObjectReachable(blocked[i], checks[i])
                            ? 1 : 0;
                });
            for (uint64_t c : checks)
                cs.detectChecks += c;
            std::vector<rt::Goroutine*> newlyLive;
            for (size_t i = 0; i < blocked.size(); ++i) {
                if (reachable[i])
                    newlyLive.push_back(blocked[i]);
            }
            expanded = !newlyLive.empty();
            if (expanded) {
                pool.forEachThenDrain(
                    newlyLive.size(),
                    [&](size_t i, gc::Marker& view) {
                        markGoroutine(view, newlyLive[i]);
                    });
                ++cs.markIterations;
            }
        }
    }

    cs.markWallNs = wallNowNs() - mark0Wall;
    cs.markCpuNs = cpuNowNs() - mark0Cpu;

    // The eager hook must not fire during deadlocked-closure
    // marking: those objects are dead, not newly live.
    marker.setMarkHook(nullptr);

    if (detecting) {
        // Any blocked candidate not in the fixpoint is deadlocked.
        std::vector<rt::Goroutine*> deadlocked;
        rt_.forEachGoroutine([&](rt::Goroutine* g) {
            if (isBlockedCandidate(g) && !g->liveAt(heap.epoch()))
                deadlocked.push_back(g);
        });
        for (rt::Goroutine* g : deadlocked)
            handleDeadlocked(marker, g, cs);
    }

    // Retention pass for hinted roots: they were excluded from the
    // liveness computation but their memory must survive the sweep.
    if (useHints) {
        for (const gc::Object* obj : inertGlobals_)
            marker.mark(const_cast<gc::Object*>(obj));
        rt_.forEachGoroutine([&](rt::Goroutine* g) {
            if (g->hasFrames() &&
                g->status() != rt::GStatus::Quarantined &&
                inertGoroutineIds_.count(g->id())) {
                markGoroutine(marker, g);
            }
        });
        marker.drain();
    }

    cs.pointersTraversed = marker.pointersTraversed();
    cs.objectsMarked = marker.objectsMarked();
    cs.bytesMarked = marker.bytesMarked();

    cs.freedObjects = heap.sweep(marker);
    cs.parallelMarkJobs = pool.parallelJobsThisCycle();
    heap.runFinalizers();

    cs.pauseWallNs = wallNowNs() - pause0;
    totalMarkWallNs_ += cs.markWallNs;
    totalMarkCpuNs_ += cs.markCpuNs;
    totalGcCpuNs_ += cpuNowNs() - cpu0;

    // Modelled GC costs (see rt::Config): concurrent-marking CPU
    // scales with the live heap; the STW pause carries the GOLF
    // detection work (checks, extra mark iterations, reclaims).
    const rt::Config& rc = rt_.config();
    cs.modeledMarkNs = static_cast<uint64_t>(
        rc.gcMarkNsPerByte * static_cast<double>(cs.bytesMarked) +
        rc.gcMarkNsPerObject * static_cast<double>(cs.objectsMarked));
    cs.modeledStwNs = static_cast<uint64_t>(rc.gcStwFixedNs);
    if (cs.detectionRan) {
        cs.modeledStwNs += static_cast<uint64_t>(
            rc.gcNsPerDetectCheck *
                static_cast<double>(cs.detectChecks) +
            static_cast<double>(rc.gcNsPerIteration) *
                static_cast<double>(cs.markIterations) +
            static_cast<double>(rc.gcNsPerReclaim) *
                static_cast<double>(cs.reclaimed +
                                    cs.deadlocksFound));
    }
    totalModeledGcNs_ += cs.modeledMarkNs + cs.modeledStwNs;

    gc::MemStats& stats = heap.stats();
    stats.numGC = cycleNo_;
    // PauseTotalNs reports the modelled STW pause (the Table 2
    // metric); wall-clock phase timings live in CycleStats.
    // GCCPUFraction is maintained by the runtime, which applies the
    // pacer's CPU cap when charging GC time to the clock.
    stats.pauseTotalNs += cs.modeledStwNs;

    history_.push_back(cs);
}

} // namespace golf::detect
