/**
 * @file
 * The collection cycle driver: ordinary GC and the GOLF extension.
 *
 * Implements Figure 2 of the paper. A cycle runs stop-the-world at a
 * scheduler safepoint:
 *
 *   initialization  -> epoch bump (whitens all objects), root setup
 *   marking         -> worklist drain
 *   [GOLF] liveness -> root-set expansion fixpoint (Section 4.2)
 *   [GOLF] detect   -> unmarked blocked candidates are deadlocked;
 *                      report, then either keep (report-only /
 *                      finalizers found) or stage for reclaim in the
 *                      *next* cycle (two-cycle split, Section 5.5)
 *   sweeping        -> free white objects, run queued finalizers
 *
 * In Baseline mode every goroutine is a root and the GOLF phases are
 * skipped — that is the stock Go collector the paper compares against.
 */
#ifndef GOLFCC_GOLF_COLLECTOR_HPP
#define GOLFCC_GOLF_COLLECTOR_HPP

#include <cstdint>
#include <set>
#include <vector>

#include "golf/report.hpp"

namespace golf::gc { class Marker; class Object; }
namespace golf::rt { class Goroutine; class Runtime; }

namespace golf::detect {

/** Per-cycle measurements (the RQ2 instrumentation). */
struct CycleStats
{
    uint64_t cycle = 0;
    bool detectionRan = false;
    uint64_t markIterations = 0;
    /** Mark workers the cycle ran with (rt::Config::gcWorkers,
     *  resolved). Cycle results are identical for every value. */
    int gcWorkers = 1;
    /** Pool jobs actually dispatched to worker threads (0 = all
     *  marking fit the coordinator's serial budget). Scheduling
     *  detail, NOT deterministic across worker counts. */
    uint64_t parallelMarkJobs = 0;
    uint64_t pointersTraversed = 0;
    uint64_t objectsMarked = 0;
    uint64_t bytesMarked = 0;
    /** (goroutine, blocking object) pairs examined during the
     *  root-expansion fixpoint — the S factor of Section 5.3. */
    uint64_t detectChecks = 0;
    /** Modelled GC costs charged to the virtual clock (see
     *  rt::Config::chargeGcPause). */
    uint64_t modeledMarkNs = 0;
    uint64_t modeledStwNs = 0;
    /** Marking-phase duration (the Figure 4 metric). */
    uint64_t markWallNs = 0;
    uint64_t markCpuNs = 0;
    /** Whole STW cycle (the PauseTotalNs contribution). */
    uint64_t pauseWallNs = 0;
    size_t freedObjects = 0;
    size_t deadlocksFound = 0;
    size_t reclaimed = 0;
    /** Reclaims whose unwind failed; the goroutine was isolated. */
    size_t quarantined = 0;
    /** DeadlockErrors delivered this cycle (Cancel/Quarantine rung). */
    size_t cancelled = 0;
    /** This detection pass was forced off-cycle by the watchdog. */
    bool watchdogTriggered = false;
};

class Collector
{
  public:
    explicit Collector(rt::Runtime& rt);

    /** Run one full collection cycle (STW). */
    void collect();

    ReportLog& reports() { return log_; }
    const ReportLog& reports() const { return log_; }

    const std::vector<CycleStats>& history() const { return history_; }
    const CycleStats& lastCycle() const { return history_.back(); }
    uint64_t cycles() const { return cycleNo_; }

    /** Sum of markWallNs / markCpuNs over all cycles. */
    uint64_t totalMarkWallNs() const { return totalMarkWallNs_; }
    uint64_t totalMarkCpuNs() const { return totalMarkCpuNs_; }

    /** Total modelled GC virtual time (marking + STW). */
    uint64_t totalModeledGcNs() const { return totalModeledGcNs_; }

    /** Goroutines staged for reclaim at the next cycle. */
    size_t pendingReclaim() const { return pendingReclaim_.size(); }

    /** Resurrection heal (Runtime::onResurrection): remove a falsely
     *  staged goroutine from the reclaim list before it is unwound. */
    void unstage(rt::Goroutine* g);

    /// @{ Liveness hints (the paper's Section 8 future work:
    /// "incorporate static analysis techniques to provide liveness
    /// hints to the garbage collector in order to boost the deadlock
    /// detection capability"). A hint asserts that a root does not
    /// contribute to unblocking anyone: an *inert global* is a
    /// package-level object no live code will ever operate on again
    /// (defeats the Listing 4 false negative); an *inert goroutine*
    /// is a runaway-live pinner — e.g. a heartbeat — whose references
    /// are never used for channel operations (defeats Listing 5).
    /// Hints affect liveness only; hinted memory is still retained.
    /// Soundness becomes conditional on the hints being true.

    /** Exclude a global object from the liveness root set. */
    void hintInertGlobal(gc::Object* obj)
    {
        inertGlobals_.insert(obj);
    }

    /** Exclude a goroutine's stack from the liveness root set. */
    void hintInertGoroutine(const rt::Goroutine* g);

    size_t hintCount() const
    {
        return inertGlobals_.size() + inertGoroutineIds_.size();
    }
    /// @}

  private:
    bool isAlwaysLiveRoot(const rt::Goroutine* g) const;
    bool isBlockedCandidate(const rt::Goroutine* g) const;
    /** Whether any of g's B(g) objects is marked; `checks` counts the
     *  (goroutine, object) pairs examined. Read-only on the heap, so
     *  the fixpoint's residency scan can fan it out over the pool. */
    bool blockedObjectReachable(const rt::Goroutine* g,
                                uint64_t& checks) const;
    void markGoroutine(gc::Marker& m, rt::Goroutine* g);
    void handleDeadlocked(gc::Marker& m, rt::Goroutine* g,
                          CycleStats& cs);
    /** Arm the resurrection tripwire on g's B(g) objects (§9). */
    void poisonBlockedOn(rt::Goroutine* g);

    rt::Runtime& rt_;
    ReportLog log_;
    std::vector<CycleStats> history_;
    std::vector<rt::Goroutine*> pendingReclaim_;
    std::set<const gc::Object*> inertGlobals_;
    std::set<uint64_t> inertGoroutineIds_;
    uint64_t cycleNo_ = 0;
    uint64_t totalMarkWallNs_ = 0;
    uint64_t totalMarkCpuNs_ = 0;
    uint64_t totalGcCpuNs_ = 0;
    uint64_t totalModeledGcNs_ = 0;
};

} // namespace golf::detect

#endif // GOLFCC_GOLF_COLLECTOR_HPP
