/**
 * @file
 * Size-class segregated span allocator: layout types.
 *
 * The pool backend (DESIGN.md §13) carves 64 KiB aligned *spans* into
 * slots of one size class each (a ~1.25× geometric ladder from 64 to
 * 4096 bytes; larger objects get a dedicated large span). The span
 * header lives at the span base, so every per-object query the mark
 * loop needs — "is this address pool memory?", "which slot?", "is it
 * marked?" — is pure address arithmetic plus a bitmap word: the hot
 * mark path never touches the object's cache line. That is what buys
 * the gc_mark_parallel throughput target; the per-object epoch word
 * is kept only as the fallback for externally adopted (legacy /
 * stack / foreign) objects.
 *
 * Mark state is a per-span atomic bitmap indexed by 16-byte
 * *granule* (object-base offset >> 4), not by slot: the mark fast
 * path then needs no per-span metadata at all — span base comes from
 * masking the address, the bit index from the low address bits — so
 * shading an object touches exactly one bitmap cache line. (Slots
 * are 16-byte aligned and >= 64 bytes, so object-base granules are
 * unique per slot; sweep converts slot -> granule with one multiply.)
 * Parallel workers race with fetch_or — the bit winner greys the
 * object, exactly like the historical mark-epoch CAS. Three more
 * (mutator-only, non-atomic, slot-indexed) bitmaps drive the
 * allocator:
 *
 *   availBits   slots free for allocation
 *   liveBits    slots holding a constructed object
 *   pendingBits slots whose object was destroyed at sweep but whose
 *               storage has not been reintegrated yet (lazy sweep)
 *
 * avail/live/pending are disjoint; their union covers every slot
 * (transiently minus the one slot between reservation and
 * construction inside Heap::make). Heap::verifyPool() checks this.
 */
#ifndef GOLFCC_GC_SPAN_HPP
#define GOLFCC_GC_SPAN_HPP

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace golf::gc {

class Heap;
class Object;

/// @{ Span geometry.
inline constexpr size_t kSpanShift = 16;
inline constexpr size_t kSpanSize = size_t{1} << kSpanShift; // 64 KiB
/** Header reserved at the span base (Span + padding). */
inline constexpr size_t kSpanHeaderSize = 1024;
inline constexpr size_t kSpanPayload = kSpanSize - kSpanHeaderSize;
/// @}

/** Largest size served from a size-class span; bigger allocations
 *  take the large-object path (a dedicated span). */
inline constexpr size_t kMaxSmallSize = 4096;

/** Sentinel classIdx for large-object spans. */
inline constexpr uint16_t kLargeClassIdx = 0xFFFF;

/** The size-class ladder: ~1.25× steps, 16-byte quantized. The
 *  smallest class must hold sizeof(gc::Object) for any derivation. */
inline constexpr uint32_t kSizeClasses[] = {
    64,   80,   96,   112,  128,  160,  192,  224,  256,
    320,  384,  448,  512,  640,  768,  896,  1024, 1280,
    1536, 1792, 2048, 2560, 3072, 3584, 4096,
};
inline constexpr int kNumSizeClasses =
    static_cast<int>(sizeof(kSizeClasses) / sizeof(kSizeClasses[0]));

inline constexpr size_t kMaxSlotsPerSpan =
    kSpanPayload / kSizeClasses[0]; // 1008
inline constexpr size_t kSpanBitmapWords = (kMaxSlotsPerSpan + 63) / 64;

/// @{ Mark-bitmap geometry: one bit per 16-byte granule of the span
/// (header granules included so the bit index is just offset >> 4).
inline constexpr size_t kGranuleShift = 4;
inline constexpr size_t kSpanGranules = kSpanSize >> kGranuleShift;
inline constexpr size_t kMarkBitmapWords = kSpanGranules / 64; // 64
/// @}

/** Reciprocal for the div-free slot computation: for offsets that are
 *  exact multiples k*s with k < slots-per-span, (off*magic)>>32 == k.
 *  (Proved below by exhaustive constexpr check over every class.) */
constexpr uint32_t
divMagicFor(uint32_t slotSize)
{
    return static_cast<uint32_t>((uint64_t{1} << 32) / slotSize + 1);
}

namespace detail {

constexpr bool
divMagicExact()
{
    for (uint32_t size : kSizeClasses) {
        uint64_t magic = divMagicFor(size);
        uint64_t slots = kSpanPayload / size;
        for (uint64_t k = 0; k < slots; ++k)
            if ((k * size * magic) >> 32 != k)
                return false;
    }
    return true;
}
static_assert(divMagicExact(),
              "slot reciprocal must invert every in-span offset");

/** bytes → size class, via a 16-byte-granular lookup table. */
constexpr auto
makeClassTable()
{
    std::array<uint8_t, kMaxSmallSize / 16 + 1> table{};
    int ci = 0;
    for (size_t i = 0; i < table.size(); ++i) {
        while (kSizeClasses[ci] < i * 16)
            ++ci;
        table[i] = static_cast<uint8_t>(ci);
    }
    return table;
}
inline constexpr auto kClassTable = makeClassTable();

} // namespace detail

/** Size class index for a small request (bytes <= kMaxSmallSize). */
inline int
sizeClassFor(size_t bytes)
{
    return detail::kClassTable[(bytes + 15) / 16];
}

enum class SpanState : uint8_t {
    InUse,        ///< On a class's current/partial/full set.
    PendingSweep, ///< Has dead slots awaiting lazy reintegration.
};

/**
 * Span header, placed at the 64 KiB-aligned base of every span.
 * Objects start at base + kSpanHeaderSize. Only markBits is touched
 * by parallel mark workers; everything else is mutator/STW-only.
 */
struct Span
{
    Heap* heap = nullptr;
    uint32_t slotSize = 0;
    uint32_t numSlots = 0;
    uint32_t divMagic = 0;
    uint32_t freeCount = 0;   ///< == popcount(availBits).
    uint32_t cursorWord = 0;  ///< Allocation scan hint.
    uint16_t classIdx = 0;    ///< kLargeClassIdx for large spans.
    SpanState state = SpanState::InUse;
    size_t footprint = 0;     ///< Bytes obtained from the OS.

    uint64_t availBits[kSpanBitmapWords];
    uint64_t liveBits[kSpanBitmapWords];
    uint64_t pendingBits[kSpanBitmapWords];
    /** Granule-indexed (not slot-indexed): bit (offset >> 4) is set
     *  when the object whose base sits at that granule is marked. */
    std::atomic<uint64_t> markBits[kMarkBitmapWords];

    /** The span containing an object or slot address. */
    static Span*
    of(const void* p)
    {
        return reinterpret_cast<Span*>(reinterpret_cast<uintptr_t>(p) &
                                       ~(kSpanSize - 1));
    }

    uint32_t
    slotIndexOf(const void* p) const
    {
        uint64_t off = (reinterpret_cast<uintptr_t>(p) &
                        (kSpanSize - 1)) - kSpanHeaderSize;
        return static_cast<uint32_t>((off * divMagic) >> 32);
    }

    void*
    slotAt(uint32_t slot) const
    {
        return reinterpret_cast<char*>(const_cast<Span*>(this)) +
               kSpanHeaderSize +
               static_cast<size_t>(slot) * slotSize;
    }

    uint32_t
    bitmapWords() const
    {
        return (numSlots + 63) / 64;
    }

    /** Mark-bit index for a slot's object base. */
    uint32_t
    granuleOf(uint32_t slot) const
    {
        return static_cast<uint32_t>(
            (kSpanHeaderSize + static_cast<size_t>(slot) * slotSize) >>
            kGranuleShift);
    }

    bool
    testMark(uint32_t slot) const
    {
        const uint32_t g = granuleOf(slot);
        return (markBits[g >> 6].load(std::memory_order_relaxed) >>
                (g & 63)) & 1u;
    }
};

static_assert(sizeof(Span) <= kSpanHeaderSize,
              "span header must fit in the reserved prefix");

/**
 * Advisory prefetch of the mark-bitmap word covering an address.
 * Safe for ANY pointer value, including non-pool and masked ones:
 * it only computes an address and issues a prefetch hint, which the
 * hardware drops silently if the line is unmapped. Objects use this
 * from prefetchTrace() hints so the mark words of their trace targets
 * are in flight before mark() needs them.
 */
inline void
prefetchMarkWord(const void* p)
{
#if defined(__GNUC__) || defined(__clang__)
    const uintptr_t addr = reinterpret_cast<uintptr_t>(p);
    const size_t g = (addr & (kSpanSize - 1)) >> kGranuleShift;
    __builtin_prefetch(
        reinterpret_cast<const char*>(&Span::of(p)->markBits[g >> 6]),
        1);
#else
    (void)p;
#endif
}

/** Whether the object at a (known-pooled) address is marked: span
 *  base by mask, granule by low bits — no span metadata load. */
inline bool
spanMarked(const void* obj)
{
    const uintptr_t addr = reinterpret_cast<uintptr_t>(obj);
    const size_t g = (addr & (kSpanSize - 1)) >> kGranuleShift;
    return (Span::of(obj)->markBits[g >> 6].load(
                std::memory_order_relaxed) >>
            (g & 63)) & 1u;
}

/**
 * Pool-membership map: one bit per 64 KiB chunk of a dense address
 * window covering every span. Spans are mmap-allocated (Heap's
 * osAllocSpan), so they cluster in one virtual-address region and the
 * window — and therefore the bitmap — stays tiny (a 96 MB heap needs
 * ~200 bytes of bitmap, L1-resident). contains() is the per-edge
 * membership test on the mark fast path: one range check against the
 * window plus one bitmap load, with no pointer chasing. Addresses
 * outside the window (stack objects, foreign-heap objects, legacy-
 * adopted objects) fail the range check and fall through to the epoch
 * path without dereferencing a bogus span header. The window grows by
 * doubling when a new span lands outside it, so rebuilds are O(log)
 * in the address spread.
 */
class PageMap
{
  public:
    bool
    contains(uintptr_t addr) const
    {
        // Wraps below the window to a huge index: one compare covers
        // both bounds.
        const uint64_t idx = (addr >> kSpanShift) - baseIdx_;
        if (idx >= limitSpans_)
            return false;
        return (bits_[idx >> 6] >> (idx & 63)) & 1u;
    }

    void
    add(uintptr_t base)
    {
        const uint64_t idx = base >> kSpanShift;
        if (bits_.empty() || idx < baseIdx_ ||
            idx - baseIdx_ >= limitSpans_)
            growTo(idx);
        const uint64_t rel = idx - baseIdx_;
        bits_[rel >> 6] |= uint64_t{1} << (rel & 63);
    }

    void
    remove(uintptr_t base)
    {
        const uint64_t rel = (base >> kSpanShift) - baseIdx_;
        bits_[rel >> 6] &= ~(uint64_t{1} << (rel & 63));
    }

  private:
    void
    growTo(uint64_t idx)
    {
        uint64_t lo = bits_.empty() ? idx : baseIdx_;
        uint64_t hi = bits_.empty() ? idx + 1 : baseIdx_ + limitSpans_;
        lo = idx < lo ? idx : lo;
        hi = idx + 1 > hi ? idx + 1 : hi;
        // Pad the window to twice the needed size, split across both
        // ends, and keep it word-aligned so old words copy in place.
        const uint64_t pad = hi - lo;
        lo = (lo > pad / 2 ? lo - pad / 2 : 0) & ~uint64_t{63};
        hi = (hi + pad / 2 + 63) & ~uint64_t{63};
        std::vector<uint64_t> fresh((hi - lo) / 64, 0);
        const uint64_t shiftWords = (baseIdx_ - lo) / 64;
        for (size_t w = 0; w < bits_.size(); ++w)
            fresh[shiftWords + w] = bits_[w];
        bits_.swap(fresh);
        baseIdx_ = lo;
        limitSpans_ = hi - lo;
    }

    // Hot trio read by every contains(): keep adjacent so the mark
    // loop touches one line of PageMap state.
    uint64_t baseIdx_ = 0;    ///< First 64 KiB chunk in the window.
    uint64_t limitSpans_ = 0; ///< Chunks covered (multiple of 64).
    std::vector<uint64_t> bits_;
};

} // namespace golf::gc

#endif // GOLFCC_GC_SPAN_HPP
