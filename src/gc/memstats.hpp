/**
 * @file
 * Go runtime.MemStats analog, the metric source for Table 2.
 *
 * Field names follow the Go API fields cited by the paper
 * (HeapAlloc, HeapInuse, HeapObjects, StackInuse, PauseTotalNs,
 * NumGC, GCCPUFraction).
 */
#ifndef GOLFCC_GC_MEMSTATS_HPP
#define GOLFCC_GC_MEMSTATS_HPP

#include <cstdint>

namespace golf::gc {

struct MemStats
{
    /** Bytes of live heap objects (after the last sweep). */
    uint64_t heapAlloc = 0;
    /** Bytes of heap currently held, including not-yet-swept garbage. */
    uint64_t heapInuse = 0;
    /** Number of live heap objects. */
    uint64_t heapObjects = 0;
    /** Bytes of goroutine frames (coroutine frames = stacks). */
    uint64_t stackInuse = 0;
    /** Cumulative bytes ever allocated. */
    uint64_t totalAlloc = 0;
    /** Cumulative bytes ever freed. */
    uint64_t totalFreed = 0;
    /** Total stop-the-world pause time, real nanoseconds. */
    uint64_t pauseTotalNs = 0;
    /** Completed GC cycles. */
    uint64_t numGC = 0;
    /** Fraction of CPU time spent in GC since process start. */
    double gcCpuFraction = 0.0;
};

} // namespace golf::gc

#endif // GOLFCC_GC_MEMSTATS_HPP
