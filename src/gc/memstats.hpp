/**
 * @file
 * Go runtime.MemStats analog, the metric source for Table 2.
 *
 * Field names follow the Go API fields cited by the paper
 * (HeapAlloc, HeapInuse, HeapObjects, StackInuse, PauseTotalNs,
 * NumGC, GCCPUFraction).
 */
#ifndef GOLFCC_GC_MEMSTATS_HPP
#define GOLFCC_GC_MEMSTATS_HPP

#include <cstdint>

namespace golf::gc {

/**
 * Pool-allocator counters (gc/span.hpp backend). Deliberately kept
 * *out* of MemStats: MemStats is a determinism surface that must stay
 * byte-identical across allocator backends (alloc_diff_test), while
 * these counters describe the pool machinery itself and are all zero
 * under the Legacy backend.
 */
struct PoolStats
{
    /** Small-object spans currently in service. */
    uint64_t spans = 0;
    /** Large-object spans currently in service. */
    uint64_t largeSpans = 0;
    /** Bytes obtained from the OS for in-service spans (the
     *  fragmentation denominator: spanBytes vs MemStats.heapAlloc). */
    uint64_t spanBytes = 0;
    /** Retired spans parked in the reuse cache. */
    uint64_t cachedSpans = 0;
    /** Spans currently parked in PendingSweep. */
    uint64_t pendingSweepSpans = 0;
    /** Cumulative spans reintegrated on the allocation path. */
    uint64_t lazySweptSpans = 0;
    /** Cumulative spans reintegrated by the pre-cycle drain. */
    uint64_t drainSweptSpans = 0;
    /** Cumulative slot allocations (small classes). */
    uint64_t slotAllocs = 0;
    /** Cumulative slots recycled through the lazy sweep. */
    uint64_t slotsRecycled = 0;
    /** Cumulative large-object allocations. */
    uint64_t largeAllocs = 0;
    /** Retiring spans released at the cache cap instead of cached
     *  (HeapConfig::retiredCacheCap), cumulative. */
    uint64_t evictedSpans = 0;
    /** Cached spans released to the OS by Heap::scavenge, cumulative. */
    uint64_t scavengedSpans = 0;
    /** Injected mmap failures at span acquisition (FaultKind::SpanMap);
     *  each fell back to the legacy allocation path. */
    uint64_t spanMapFaults = 0;
};

struct MemStats
{
    /** Bytes of live heap objects (after the last sweep). */
    uint64_t heapAlloc = 0;
    /** Bytes of heap currently held, including not-yet-swept garbage. */
    uint64_t heapInuse = 0;
    /** Number of live heap objects. */
    uint64_t heapObjects = 0;
    /** Bytes of goroutine frames (coroutine frames = stacks). */
    uint64_t stackInuse = 0;
    /** Cumulative bytes ever allocated. */
    uint64_t totalAlloc = 0;
    /** Cumulative bytes ever freed. */
    uint64_t totalFreed = 0;
    /** Total stop-the-world pause time, real nanoseconds. */
    uint64_t pauseTotalNs = 0;
    /** Completed GC cycles. */
    uint64_t numGC = 0;
    /** Fraction of CPU time spent in GC since process start. */
    double gcCpuFraction = 0.0;
};

} // namespace golf::gc

#endif // GOLFCC_GC_MEMSTATS_HPP
