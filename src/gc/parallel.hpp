/**
 * @file
 * Parallel marking: a persistent pool of mark workers with per-worker
 * grey stacks and Chase–Lev work stealing.
 *
 * The paper piggybacks GOLF on Go's *parallel* background marking and
 * prices detection as a marking-slowdown factor (Section 5.3, Fig. 4);
 * this pool is the reproduction's analog of Go's gcBgMarkWorkers. One
 * ParallelMarker lives on the Heap and is reused across collection
 * cycles (worker threads are spawned lazily on the first drain that
 * actually overflows the serial budget, and parked on a condition
 * variable between jobs).
 *
 * Work distribution: each worker owns
 *   - a private grey stack (plain vector, zero atomics) where its own
 *     mark() calls accumulate, and
 *   - a public Chase–Lev deque other workers steal from; a worker
 *     donates half of its private stack to its public deque whenever
 *     the deque looks empty, so idle workers always find food.
 *
 * Termination detection: a seq_cst idle counter. A worker increments
 * it only after its private stack is empty, its own deque is empty
 * and a full steal sweep failed; it decrements before re-engaging.
 * Since only a non-idle worker can push, observing idle == workers
 * proves every deque was empty at that instant and will stay empty —
 * the drain is globally complete (see DESIGN.md Section 8 for the
 * invariant argument).
 *
 * Determinism: the *final* mark set is the reachability closure of
 * the roots, independent of worker count or steal interleaving; the
 * mark-epoch CAS elects exactly one greyer per object, so each object
 * is traced exactly once and each pointer edge traversed exactly
 * once. All cycle statistics are either per-object/per-edge totals
 * (sums over workers — order-independent) or computed by the
 * coordinator between barriers, which is why GOLF's deadlock reports
 * and MemStats are byte-identical across gcWorkers settings.
 */
#ifndef GOLFCC_GC_PARALLEL_HPP
#define GOLFCC_GC_PARALLEL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "gc/marker.hpp"

namespace golf::gc {

class Heap;

/**
 * Chase–Lev work-stealing deque of grey objects. The owning worker
 * pushes and pops at the bottom; thieves steal from the top. Written
 * fence-free (orderings on the atomics themselves) so TSan can reason
 * about it. Buffers grow geometrically; retired buffers are kept
 * until reset() because a slow thief may still be reading one.
 */
class WorkDeque
{
  public:
    WorkDeque();
    ~WorkDeque();

    WorkDeque(const WorkDeque&) = delete;
    WorkDeque& operator=(const WorkDeque&) = delete;

    /** Owner: publish one grey object. */
    void push(Object* obj);

    /** Owner: take the most recently pushed object, or null. */
    Object* pop();

    /** Thief: take the oldest object, or null (empty or lost race). */
    Object* steal();

    /** Racy emptiness hint (exact when the pool is quiescent). */
    bool
    looksEmpty() const
    {
        return bottom_.load(std::memory_order_relaxed) <=
               top_.load(std::memory_order_relaxed);
    }

    /** Quiescent only: drop retired buffers, rewind the indices. */
    void reset();

  private:
    struct Buffer
    {
        explicit Buffer(size_t capacity);

        Object*
        get(int64_t i) const
        {
            return slots[static_cast<size_t>(i) & (cap - 1)].load(
                std::memory_order_relaxed);
        }

        void
        put(int64_t i, Object* obj)
        {
            slots[static_cast<size_t>(i) & (cap - 1)].store(
                obj, std::memory_order_relaxed);
        }

        size_t cap; ///< Power of two.
        std::unique_ptr<std::atomic<Object*>[]> slots;
    };

    Buffer* grow(Buffer* old, int64_t top, int64_t bottom);

    /** top_ and bottom_ on separate cache lines: thieves hammer top_
     *  with CAS while the owner spins on bottom_. */
    alignas(64) std::atomic<int64_t> top_{0};
    alignas(64) std::atomic<int64_t> bottom_{0};
    std::atomic<Buffer*> buffer_;
    /** Every buffer ever grown this job; freed on reset(). */
    std::vector<std::unique_ptr<Buffer>> all_;
};

/**
 * The persistent mark-worker pool. Owns one Marker view and one
 * WorkDeque per worker; view 0 is the coordinator's, used by the
 * collector between barriers. With workers == 1 every entry point
 * degenerates to the historical serial code path (no threads are
 * ever created, no atomics beyond the relaxed mark-word accesses).
 */
class ParallelMarker
{
  public:
    ParallelMarker(Heap& heap, int workers);
    ~ParallelMarker();

    ParallelMarker(const ParallelMarker&) = delete;
    ParallelMarker& operator=(const ParallelMarker&) = delete;

    /** Start a new collection cycle: reset views, deques, the hook
     *  and the per-cycle counters. Pool must be quiescent. */
    void beginEpoch(uint64_t epoch);

    /** The coordinator's view — what the collector marks through. */
    Marker& coordinator() { return *views_[0]; }

    int workers() const { return workers_; }
    bool parallelEnabled() const { return workers_ > 1; }

    /**
     * Run fn(i, view) for every i in [0, count) distributed over the
     * pool in contiguous chunks, then drain all resulting grey work
     * to completion; one barrier at the end. Output written into
     * index-addressed slots is deterministic regardless of which
     * worker processed an index. Serial (coordinator-only) when the
     * pool has one worker or count is tiny.
     */
    void forEachThenDrain(
        size_t count,
        const std::function<void(size_t, Marker&)>& fn);

    /// @{ Cycle-total aggregation over all views.
    uint64_t pointersTraversed() const;
    uint64_t objectsMarked() const;
    uint64_t bytesMarked() const;
    bool finalizerSeen() const;
    void clearFinalizerSeen();
    /// @}

    void setMarkHook(MarkHook hook);

    /** Parallel jobs actually dispatched this cycle (0 = every drain
     *  fit the serial budget; observability for stats/tests). */
    uint64_t parallelJobsThisCycle() const { return jobsThisCycle_; }

    /** Whether a pool job is currently running (STW assertions). */
    bool jobActive() const { return jobActive_; }

  private:
    friend class Marker;

    /** Marker::drain() on the coordinator view lands here. */
    void drainFromCoordinator();

    void ensureThreads();
    void runJob();
    void workerMain(int w);
    void workLoop(int w);
    Object* takeWork(int w, Marker& view);
    Object* trySteal(int w);
    void maybeDonate(int w, Marker& view);
    /** Idle protocol; true = drain globally complete. */
    bool idleUntilWorkOrDone(int w);

    Heap& heap_;
    int workers_;
    std::vector<std::unique_ptr<Marker>> views_;
    std::vector<std::unique_ptr<WorkDeque>> deques_;
    MarkHook hook_;

    std::vector<std::thread> threads_;
    std::mutex mu_;
    std::condition_variable jobCv_;   ///< Workers wait for a job.
    std::condition_variable doneCv_;  ///< Coordinator waits for join.
    uint64_t jobGen_ = 0;
    int finished_ = 0;
    bool shutdown_ = false;
    bool jobActive_ = false;
    uint64_t jobsThisCycle_ = 0;

    /** Current job's for-section ([0,count) fanned out by chunk);
     *  null for a pure drain job. */
    const std::function<void(size_t, Marker&)>* forFn_ = nullptr;
    size_t forCount_ = 0;
    size_t forGrain_ = 1;
    std::atomic<size_t> forNext_{0};

    /** Termination detection (see file comment). */
    std::atomic<int> idle_{0};
};

} // namespace golf::gc

#endif // GOLFCC_GC_PARALLEL_HPP
