#include "gc/parallel.hpp"

#include <algorithm>
#include <utility>

#include "gc/heap.hpp"
#include "support/panic.hpp"

namespace golf::gc {

namespace {

/** Grey objects a worker keeps private before donating half to its
 *  public deque (when that deque looks empty). */
constexpr size_t kDonateThreshold = 2;
/** Cap on objects donated per donation, to bound deque churn. */
constexpr size_t kMaxDonate = 256;
/** Objects the coordinator drains alone before waking the pool: a
 *  heap smaller than this never pays for thread wakeups. */
constexpr size_t kSerialBudget = 4096;
/** Smallest for-section worth fanning out. */
constexpr size_t kMinParallelFor = 32;
/** Initial deque capacity (grows geometrically). */
constexpr size_t kInitialDequeCap = 1024;

} // namespace

// ---------------------------------------------------------------------------
// WorkDeque
// ---------------------------------------------------------------------------

WorkDeque::Buffer::Buffer(size_t capacity)
    : cap(capacity), slots(new std::atomic<Object*>[capacity])
{
}

WorkDeque::WorkDeque()
{
    all_.push_back(std::make_unique<Buffer>(kInitialDequeCap));
    buffer_.store(all_.back().get(), std::memory_order_relaxed);
}

WorkDeque::~WorkDeque() = default;

WorkDeque::Buffer*
WorkDeque::grow(Buffer* old, int64_t top, int64_t bottom)
{
    auto bigger = std::make_unique<Buffer>(old->cap * 2);
    for (int64_t i = top; i < bottom; ++i)
        bigger->put(i, old->get(i));
    Buffer* raw = bigger.get();
    // The old buffer stays alive (a slow thief may still read it);
    // it is reclaimed at the next quiescent reset(). The release
    // store publishes the copied slots to thieves that acquire-load
    // buffer_.
    all_.push_back(std::move(bigger));
    buffer_.store(raw, std::memory_order_release);
    return raw;
}

void
WorkDeque::push(Object* obj)
{
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<int64_t>(buf->cap))
        buf = grow(buf, t, b);
    buf->put(b, obj);
    // Release: a thief that observes bottom > t also observes the
    // slot write for every index below bottom.
    bottom_.store(b + 1, std::memory_order_release);
}

Object*
WorkDeque::pop()
{
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    // The seq_cst store/load pair orders "reserve the bottom slot"
    // before "read top" — the classic Chase–Lev owner/thief duel,
    // expressed on the atomics themselves rather than with fences so
    // TSan models it.
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
        // Empty: undo the reservation.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return nullptr;
    }
    Object* obj = buf->get(b);
    if (t != b)
        return obj; // More than one entry: no race possible.
    // Exactly one entry: duel with thieves via the top CAS.
    bool won = top_.compare_exchange_strong(t, t + 1,
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return won ? obj : nullptr;
}

Object*
WorkDeque::steal()
{
    int64_t t = top_.load(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b)
        return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    Object* obj = buf->get(t);
    // Claim the slot; failure means another thief (or the owner's
    // last-entry pop) beat us to it.
    if (!top_.compare_exchange_strong(t, t + 1,
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
        return nullptr;
    return obj;
}

void
WorkDeque::reset()
{
    if (!looksEmpty())
        support::panic("WorkDeque::reset on a non-empty deque");
    if (all_.size() > 1) {
        // Keep only the largest (current) buffer.
        std::unique_ptr<Buffer> keep = std::move(all_.back());
        all_.clear();
        all_.push_back(std::move(keep));
        buffer_.store(all_.back().get(), std::memory_order_relaxed);
    }
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ParallelMarker
// ---------------------------------------------------------------------------

ParallelMarker::ParallelMarker(Heap& heap, int workers)
    : heap_(heap), workers_(workers < 1 ? 1 : workers)
{
    views_.reserve(static_cast<size_t>(workers_));
    deques_.reserve(static_cast<size_t>(workers_));
    for (int w = 0; w < workers_; ++w) {
        views_.emplace_back(new Marker(*this, heap_, w));
        deques_.push_back(std::make_unique<WorkDeque>());
    }
}

ParallelMarker::~ParallelMarker()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    jobCv_.notify_all();
    for (std::thread& t : threads_)
        t.join();
}

void
ParallelMarker::beginEpoch(uint64_t epoch)
{
    if (jobActive_)
        support::panic("ParallelMarker::beginEpoch during a job");
    for (auto& view : views_)
        view->resetForEpoch(epoch);
    for (auto& dq : deques_)
        dq->reset();
    hook_ = MarkHook{};
    jobsThisCycle_ = 0;
}

void
ParallelMarker::setMarkHook(MarkHook hook)
{
    if (jobActive_)
        support::panic("ParallelMarker::setMarkHook during a job");
    hook_ = std::move(hook);
}

uint64_t
ParallelMarker::pointersTraversed() const
{
    uint64_t total = 0;
    for (const auto& view : views_)
        total += view->pointersTraversed_;
    return total;
}

uint64_t
ParallelMarker::objectsMarked() const
{
    uint64_t total = 0;
    for (const auto& view : views_)
        total += view->objectsMarked_;
    return total;
}

uint64_t
ParallelMarker::bytesMarked() const
{
    uint64_t total = 0;
    for (const auto& view : views_)
        total += view->bytesMarked_;
    return total;
}

bool
ParallelMarker::finalizerSeen() const
{
    for (const auto& view : views_)
        if (view->finalizerSeen_)
            return true;
    return false;
}

void
ParallelMarker::clearFinalizerSeen()
{
    for (auto& view : views_)
        view->finalizerSeen_ = false;
}

void
ParallelMarker::drainFromCoordinator()
{
    Marker& coord = *views_[0];
    // Serial fast path: most cycles in unit tests and small services
    // never overflow this budget, so they never wake a thread (and
    // with one worker the budget loop *is* the whole drain).
    size_t budget = kSerialBudget;
    Object* batch[kTraceBatch];
    while (!coord.grey_.empty() && budget > 0) {
        size_t n = detachTraceBatch(
            coord.grey_, batch,
            budget < kTraceBatch ? budget : kTraceBatch);
        traceBatchTargets(batch, n);
        for (size_t i = 0; i < n; ++i)
            coord.traceOne(batch[i]);
        budget -= n;
    }
    if (coord.grey_.empty())
        return;
    if (!parallelEnabled()) {
        coord.drainLocal();
        return;
    }
    forFn_ = nullptr;
    forCount_ = 0;
    runJob();
}

void
ParallelMarker::forEachThenDrain(
    size_t count, const std::function<void(size_t, Marker&)>& fn)
{
    Marker& coord = *views_[0];
    if (!parallelEnabled() || count < kMinParallelFor) {
        for (size_t i = 0; i < count; ++i)
            fn(i, coord);
        coord.drain(); // Serial-budget fast path / pool drain.
        return;
    }
    forFn_ = &fn;
    forCount_ = count;
    forGrain_ = std::max<size_t>(
        16, count / (static_cast<size_t>(workers_) * 8));
    forNext_.store(0, std::memory_order_relaxed);
    runJob();
    forFn_ = nullptr;
}

void
ParallelMarker::ensureThreads()
{
    if (!threads_.empty())
        return;
    threads_.reserve(static_cast<size_t>(workers_ - 1));
    for (int w = 1; w < workers_; ++w)
        threads_.emplace_back([this, w] { workerMain(w); });
}

void
ParallelMarker::runJob()
{
    ensureThreads();
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Everything the workers read without synchronization during
        // the job (forFn_/forCount_, the views' epoch and grey
        // stacks, object bodies mutated since the last cycle) was
        // written before this critical section, so the workers' wait
        // on mu_ gives the necessary happens-before edge.
        ++jobGen_;
        finished_ = 0;
        idle_.store(0, std::memory_order_relaxed);
        jobActive_ = true;
    }
    jobCv_.notify_all();
    workLoop(0); // The coordinator is worker 0.
    {
        // Join barrier: every worker's writes (marks, stats, per-
        // index slot output) happen-before the return from runJob.
        std::unique_lock<std::mutex> lock(mu_);
        doneCv_.wait(lock, [this] { return finished_ == workers_ - 1; });
        jobActive_ = false;
    }
    ++jobsThisCycle_;
}

void
ParallelMarker::workerMain(int w)
{
    uint64_t seenGen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            jobCv_.wait(lock, [this, seenGen] {
                return shutdown_ || jobGen_ != seenGen;
            });
            if (shutdown_)
                return;
            seenGen = jobGen_;
        }
        workLoop(w);
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++finished_;
        }
        doneCv_.notify_one();
    }
}

void
ParallelMarker::workLoop(int w)
{
    Marker& view = *views_[w];
    // For-section: grab contiguous chunks of [0, forCount_) until
    // exhausted. fn may mark, filling this view's grey stack.
    if (forFn_) {
        for (;;) {
            size_t begin =
                forNext_.fetch_add(forGrain_, std::memory_order_relaxed);
            if (begin >= forCount_)
                break;
            size_t end = std::min(begin + forGrain_, forCount_);
            for (size_t i = begin; i < end; ++i)
                (*forFn_)(i, view);
            maybeDonate(w, view);
        }
    }
    // Mark loop: drain private work (a prefetched batch at a time),
    // then public deque, then steal; when all three fail, enter the
    // idle protocol.
    Object* batch[kTraceBatch];
    for (;;) {
        if (!view.grey_.empty()) {
            size_t n = detachTraceBatch(view.grey_, batch, kTraceBatch);
            traceBatchTargets(batch, n);
            for (size_t i = 0; i < n; ++i)
                view.traceOne(batch[i]);
            maybeDonate(w, view);
            continue;
        }
        Object* obj = takeWork(w, view);
        if (obj) {
            view.traceOne(obj);
            maybeDonate(w, view);
            continue;
        }
        if (idleUntilWorkOrDone(w))
            return;
    }
}

Object*
ParallelMarker::takeWork(int w, Marker& view)
{
    // The private grey stack is drained batch-wise by workLoop; this
    // only consults the shared sources (single-object granularity —
    // the unit of stealing).
    (void)view;
    if (Object* obj = deques_[static_cast<size_t>(w)]->pop())
        return obj;
    return trySteal(w);
}

Object*
ParallelMarker::trySteal(int w)
{
    for (int hop = 1; hop < workers_; ++hop) {
        int victim = (w + hop) % workers_;
        if (Object* obj = deques_[static_cast<size_t>(victim)]->steal())
            return obj;
    }
    return nullptr;
}

void
ParallelMarker::maybeDonate(int w, Marker& view)
{
    // Keep idle workers fed: whenever our public deque looks empty
    // and we are hoarding grey objects, publish half of them. The
    // *oldest* entries (bottom of the vector) go public — they tend
    // to root the larger untraced subgraphs.
    if (view.grey_.size() < kDonateThreshold)
        return;
    WorkDeque& dq = *deques_[static_cast<size_t>(w)];
    if (!dq.looksEmpty())
        return;
    size_t donate = std::min(view.grey_.size() / 2, kMaxDonate);
    for (size_t i = 0; i < donate; ++i)
        dq.push(view.grey_[i]);
    view.grey_.dropFront(donate);
}

bool
ParallelMarker::idleUntilWorkOrDone(int)
{
    // Invariant: a worker increments idle_ only when its private
    // stack and public deque are empty and a full steal sweep just
    // failed; it decrements before touching work again. An idle
    // worker publishes nothing, so once idle_ == workers_ every
    // source of work is empty and will stay empty: terminate.
    idle_.fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
        if (idle_.load(std::memory_order_seq_cst) == workers_)
            return true;
        bool anyVisible = false;
        for (int v = 0; v < workers_; ++v) {
            if (!deques_[static_cast<size_t>(v)]->looksEmpty()) {
                anyVisible = true;
                break;
            }
        }
        if (anyVisible) {
            idle_.fetch_sub(1, std::memory_order_seq_cst);
            return false; // Re-engage via takeWork.
        }
        // Single-core friendliness: never spin against the OS
        // scheduler — the worker that owns the remaining work may
        // need this CPU to finish it.
        std::this_thread::yield();
    }
}

} // namespace golf::gc
