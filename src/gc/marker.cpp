#include "gc/marker.hpp"

#include <cstring>
#include <utility>

#include "gc/heap.hpp"
#include "gc/parallel.hpp"
#include "support/masked_ptr.hpp"
#include "support/panic.hpp"

namespace golf::gc {

Marker::Marker(Heap& heap, uint64_t epoch) : heap_(heap), epoch_(epoch)
{
    pagemap_ = heap.poolPagemap();
    hookRef_ = &ownHook_;
}

Marker::Marker(Marker&& other) noexcept
    : heap_(other.heap_),
      epoch_(other.epoch_),
      pagemap_(other.pagemap_),
      grey_(std::move(other.grey_)),
      pointersTraversed_(other.pointersTraversed_),
      objectsMarked_(other.objectsMarked_),
      bytesMarked_(other.bytesMarked_),
      finalizerSeen_(other.finalizerSeen_),
      ownHook_(std::move(other.ownHook_))
{
    // Only standalone markers move (Heap::beginCycle returns by
    // value); their hook reference must follow the moved-to hook.
    hookRef_ = &ownHook_;
}

Marker::Marker(ParallelMarker& pool, Heap& heap, int workerIdx)
    : heap_(heap),
      epoch_(0),
      pool_(&pool),
      workerIdx_(workerIdx),
      concurrent_(pool.parallelEnabled())
{
    pagemap_ = heap.poolPagemap();
    hookRef_ = &pool.hook_;
}

bool
Marker::markEpochPath(Object* obj)
{
    if (concurrent_) {
        // Several workers may race to shade the same object; the CAS
        // winner greys it (pushes it on a grey stack exactly once),
        // everyone else treats it as already marked. The mark word
        // carries no payload another thread reads before the trace,
        // so relaxed ordering suffices — the pool's job barriers
        // provide the cross-thread happens-before for object bodies.
        uint64_t seen = obj->markEpoch_.load(std::memory_order_relaxed);
        if (seen == epoch_)
            return false;
        return obj->markEpoch_.compare_exchange_strong(
            seen, epoch_, std::memory_order_relaxed,
            std::memory_order_relaxed);
    }
    if (obj->markEpoch_.load(std::memory_order_relaxed) == epoch_)
        return false;
    obj->markEpoch_.store(epoch_, std::memory_order_relaxed);
    return true;
}

void
Marker::traceOne(Object* obj)
{
    // Per-object reads happen here, at pop time — never in mark(),
    // which under the pool backend must not touch the object line.
    // Totals are unchanged: every marked object is popped exactly
    // once (possibly by a different worker, but the stats are summed
    // across views).
    bytesMarked_ += obj->allocSize_;
    if (obj->hasFinalizer_)
        finalizerSeen_ = true;
    // The hook fires here — at pop time, from the iterative loop —
    // never from inside mark(), so hook-driven marking (the eager
    // liveness daisy chain) cannot nest C++ stack frames.
    if (*hookRef_)
        (*hookRef_)(*this, obj);
    obj->trace(*this);
}

void
Marker::drainLocal()
{
    Object* batch[kTraceBatch];
    while (!grey_.empty()) {
        size_t n = detachTraceBatch(grey_, batch, kTraceBatch);
        traceBatchTargets(batch, n);
        for (size_t i = 0; i < n; ++i)
            traceOne(batch[i]);
    }
}

void
Marker::drain()
{
    if (pool_ && pool_->parallelEnabled()) {
        if (workerIdx_ != 0)
            support::panic("Marker::drain on a non-coordinator view");
        pool_->drainFromCoordinator();
        return;
    }
    drainLocal();
}

void
Marker::setMarkHook(MarkHook hook)
{
    if (pool_) {
        pool_->setMarkHook(std::move(hook));
        return;
    }
    ownHook_ = std::move(hook);
}

bool
Marker::finalizerSeen() const
{
    return pool_ ? pool_->finalizerSeen() : finalizerSeen_;
}

void
Marker::clearFinalizerSeen()
{
    if (pool_) {
        pool_->clearFinalizerSeen();
        return;
    }
    finalizerSeen_ = false;
}

uint64_t
Marker::pointersTraversed() const
{
    return pool_ ? pool_->pointersTraversed() : pointersTraversed_;
}

uint64_t
Marker::objectsMarked() const
{
    return pool_ ? pool_->objectsMarked() : objectsMarked_;
}

uint64_t
Marker::bytesMarked() const
{
    return pool_ ? pool_->bytesMarked() : bytesMarked_;
}

void
Marker::resetForEpoch(uint64_t epoch)
{
    epoch_ = epoch;
    grey_.clear();
    pointersTraversed_ = 0;
    objectsMarked_ = 0;
    bytesMarked_ = 0;
    finalizerSeen_ = false;
}

} // namespace golf::gc
