#include "gc/marker.hpp"

#include <utility>

#include "gc/heap.hpp"
#include "gc/parallel.hpp"
#include "support/masked_ptr.hpp"
#include "support/panic.hpp"

namespace golf::gc {

Marker::Marker(Heap& heap, uint64_t epoch) : heap_(heap), epoch_(epoch)
{
    hookRef_ = &ownHook_;
}

Marker::Marker(Marker&& other) noexcept
    : heap_(other.heap_),
      epoch_(other.epoch_),
      grey_(std::move(other.grey_)),
      pointersTraversed_(other.pointersTraversed_),
      objectsMarked_(other.objectsMarked_),
      bytesMarked_(other.bytesMarked_),
      finalizerSeen_(other.finalizerSeen_),
      ownHook_(std::move(other.ownHook_))
{
    // Only standalone markers move (Heap::beginCycle returns by
    // value); their hook reference must follow the moved-to hook.
    hookRef_ = &ownHook_;
}

Marker::Marker(ParallelMarker& pool, Heap& heap, int workerIdx)
    : heap_(heap),
      epoch_(0),
      pool_(&pool),
      workerIdx_(workerIdx),
      concurrent_(pool.parallelEnabled())
{
    hookRef_ = &pool.hook_;
}

void
Marker::mark(Object* obj)
{
    if (!obj)
        return;
    ++pointersTraversed_;
    // Section 5.4: masked addresses (goroutines hidden in allgs, the
    // semaphore treap) must never reach the marker. On mainstream
    // 64-bit Linux a genuine user-space pointer never has the top bit
    // set, so a masked pointer is detectable here.
    if (support::isMaskedAddress(reinterpret_cast<uintptr_t>(obj)))
        support::panic("Marker::mark called on a masked address");
    if (concurrent_) {
        // Several workers may race to shade the same object; the CAS
        // winner greys it (pushes it on a grey stack exactly once),
        // everyone else treats it as already marked. The mark word
        // carries no payload another thread reads before the trace,
        // so relaxed ordering suffices — the pool's job barriers
        // provide the cross-thread happens-before for object bodies.
        uint64_t seen = obj->markEpoch_.load(std::memory_order_relaxed);
        if (seen == epoch_)
            return;
        if (!obj->markEpoch_.compare_exchange_strong(
                seen, epoch_, std::memory_order_relaxed,
                std::memory_order_relaxed))
            return; // Another worker won the shade.
    } else {
        if (obj->markEpoch_.load(std::memory_order_relaxed) == epoch_)
            return;
        obj->markEpoch_.store(epoch_, std::memory_order_relaxed);
    }
    ++objectsMarked_;
    bytesMarked_ += obj->allocSize_;
    if (obj->hasFinalizer_)
        finalizerSeen_ = true;
    grey_.push_back(obj);
}

void
Marker::traceOne(Object* obj)
{
    // The hook fires here — at pop time, from the iterative loop —
    // never from inside mark(), so hook-driven marking (the eager
    // liveness daisy chain) cannot nest C++ stack frames.
    if (*hookRef_)
        (*hookRef_)(*this, obj);
    obj->trace(*this);
}

void
Marker::drainLocal()
{
    while (!grey_.empty()) {
        Object* obj = grey_.back();
        grey_.pop_back();
        traceOne(obj);
    }
}

void
Marker::drain()
{
    if (pool_ && pool_->parallelEnabled()) {
        if (workerIdx_ != 0)
            support::panic("Marker::drain on a non-coordinator view");
        pool_->drainFromCoordinator();
        return;
    }
    drainLocal();
}

void
Marker::setMarkHook(MarkHook hook)
{
    if (pool_) {
        pool_->setMarkHook(std::move(hook));
        return;
    }
    ownHook_ = std::move(hook);
}

bool
Marker::finalizerSeen() const
{
    return pool_ ? pool_->finalizerSeen() : finalizerSeen_;
}

void
Marker::clearFinalizerSeen()
{
    if (pool_) {
        pool_->clearFinalizerSeen();
        return;
    }
    finalizerSeen_ = false;
}

uint64_t
Marker::pointersTraversed() const
{
    return pool_ ? pool_->pointersTraversed() : pointersTraversed_;
}

uint64_t
Marker::objectsMarked() const
{
    return pool_ ? pool_->objectsMarked() : objectsMarked_;
}

uint64_t
Marker::bytesMarked() const
{
    return pool_ ? pool_->bytesMarked() : bytesMarked_;
}

void
Marker::resetForEpoch(uint64_t epoch)
{
    epoch_ = epoch;
    grey_.clear();
    pointersTraversed_ = 0;
    objectsMarked_ = 0;
    bytesMarked_ = 0;
    finalizerSeen_ = false;
}

} // namespace golf::gc
