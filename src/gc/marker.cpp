#include "gc/marker.hpp"

#include "gc/heap.hpp"
#include "support/masked_ptr.hpp"
#include "support/panic.hpp"

namespace golf::gc {

Marker::Marker(Heap& heap, uint64_t epoch) : heap_(heap), epoch_(epoch)
{
}

void
Marker::mark(Object* obj)
{
    if (!obj)
        return;
    ++pointersTraversed_;
    // Section 5.4: masked addresses (goroutines hidden in allgs, the
    // semaphore treap) must never reach the marker. On mainstream
    // 64-bit Linux a genuine user-space pointer never has the top bit
    // set, so a masked pointer is detectable here.
    if (support::isMaskedAddress(reinterpret_cast<uintptr_t>(obj)))
        support::panic("Marker::mark called on a masked address");
    if (obj->markEpoch_ == epoch_)
        return;
    obj->markEpoch_ = epoch_;
    ++objectsMarked_;
    bytesMarked_ += obj->allocSize_;
    if (obj->hasFinalizer_)
        finalizerSeen_ = true;
    worklist_.push_back(obj);
    if (markHook_)
        markHook_(obj);
}

bool
Marker::isMarked(const Object* obj) const
{
    return obj->markEpoch_ == epoch_;
}

void
Marker::drain()
{
    while (!worklist_.empty()) {
        Object* obj = worklist_.back();
        worklist_.pop_back();
        obj->trace(*this);
    }
}

} // namespace golf::gc
