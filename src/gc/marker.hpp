/**
 * @file
 * Tricolor worklist marker.
 *
 * White = markEpoch behind the heap epoch, grey = on the worklist,
 * black = marked and drained. The collector runs one or more "mark
 * iterations" (drains); GOLF's root-set expansion (Section 4.2) adds
 * newly reachably-live goroutine stacks between drains and counts the
 * iterations, which lets tests pin the daisy-chain worst case of
 * Section 5.2.
 */
#ifndef GOLFCC_GC_MARKER_HPP
#define GOLFCC_GC_MARKER_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "gc/object.hpp"

namespace golf::gc {

class Heap;

/** Worklist marker for one collection cycle. */
class Marker
{
  public:
    Marker(Heap& heap, uint64_t epoch);

    /**
     * Shade an object grey if it is still white. Null is ignored.
     * Every call counts as one pointer traversal (the unit in which
     * the paper states GOLF performs "the same amount of marking
     * work" as the ordinary GC).
     */
    void mark(Object* obj);

    /** Whether obj has been marked in this cycle. */
    bool isMarked(const Object* obj) const;

    /** Drain the worklist: trace until no grey objects remain. */
    void drain();

    /**
     * Install a hook invoked once per newly shaded object. GOLF's
     * eager-liveness extension (the Section 5.3 optimization the
     * paper describes but does not implement) uses it to push the
     * stacks of goroutines blocked on the object as soon as the
     * object is discovered, collapsing the root-expansion fixpoint.
     */
    void
    setMarkHook(std::function<void(Object*)> hook)
    {
        markHook_ = std::move(hook);
    }

    /** True when a finalizer-bearing object was newly marked since
     *  the last call to clearFinalizerSeen() (paper Section 5.5). */
    bool finalizerSeen() const { return finalizerSeen_; }
    void clearFinalizerSeen() { finalizerSeen_ = false; }

    /// @{ Marking-work accounting.
    uint64_t pointersTraversed() const { return pointersTraversed_; }
    uint64_t objectsMarked() const { return objectsMarked_; }
    uint64_t bytesMarked() const { return bytesMarked_; }
    /// @}

  private:
    Heap& heap_;
    uint64_t epoch_;
    std::vector<Object*> worklist_;
    uint64_t pointersTraversed_ = 0;
    uint64_t objectsMarked_ = 0;
    uint64_t bytesMarked_ = 0;
    bool finalizerSeen_ = false;
    std::function<void(Object*)> markHook_;
};

} // namespace golf::gc

#endif // GOLFCC_GC_MARKER_HPP
