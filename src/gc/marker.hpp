/**
 * @file
 * Tricolor worklist marker — serial view and parallel worker view.
 *
 * White = markEpoch behind the heap epoch, grey = on a grey stack,
 * black = marked and traced. The collector runs one or more "mark
 * iterations" (drains); GOLF's root-set expansion (Section 4.2) adds
 * newly reachably-live goroutine stacks between drains and counts the
 * iterations, which lets tests pin the daisy-chain worst case of
 * Section 5.2.
 *
 * A Marker is either *standalone* (Heap::beginCycle — the historical
 * single-threaded marker, used directly by tests) or a *worker view*
 * owned by a gc::ParallelMarker pool (Heap::beginCycleParallel). In
 * pool mode each mark worker owns one view: mark() claims the object
 * via a CAS on its mark epoch and pushes it on the view's private
 * grey stack; drain() delegates to the pool, which balances grey
 * objects across workers with Chase–Lev stealing deques. Stats are
 * kept per view and aggregated by the pool, so every accessor below
 * reports cycle totals in both modes.
 *
 * The mark hook fires from the worklist loop when an object is
 * popped for tracing — NOT from inside mark(). Firing it inside
 * mark() would recurse (hook marks an object, whose hook marks an
 * object, ...): with eager-liveness marking a daisy chain of blocked
 * goroutines used to nest one stack frame per link, so a long enough
 * chain overflowed the C++ stack. Hook dispatch from the iterative
 * loop bounds stack depth at O(1) regardless of graph depth.
 */
#ifndef GOLFCC_GC_MARKER_HPP
#define GOLFCC_GC_MARKER_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "gc/object.hpp"

namespace golf::gc {

class Heap;
class Marker;
class ParallelMarker;

/** Hook invoked once per newly shaded object, from the worklist loop
 *  of whichever worker pops the object. The Marker& argument is that
 *  worker's view: hook code must mark through it (and only it). */
using MarkHook = std::function<void(Marker&, Object*)>;

/** Worklist marker for one collection cycle (one worker's view). */
class Marker
{
  public:
    /** Standalone single-threaded marker (Heap::beginCycle). */
    Marker(Heap& heap, uint64_t epoch);

    Marker(const Marker&) = delete;
    Marker& operator=(const Marker&) = delete;
    /** Standalone markers are movable (Heap::beginCycle returns by
     *  value); pool views never move — the pool owns them. */
    Marker(Marker&& other) noexcept;

    /**
     * Shade an object grey if it is still white. Null is ignored.
     * Every call counts as one pointer traversal (the unit in which
     * the paper states GOLF performs "the same amount of marking
     * work" as the ordinary GC). Safe to call concurrently from
     * different worker views during a parallel drain: the mark-epoch
     * CAS elects exactly one greyer per object.
     */
    void mark(Object* obj);

    /** Whether obj has been marked in this cycle. */
    bool isMarked(const Object* obj) const
    {
        return obj->markEpoch_.load(std::memory_order_relaxed) ==
               epoch_;
    }

    /**
     * Drain until no grey objects remain. On a standalone marker (or
     * a pool of one worker) this is the historical serial loop; on a
     * parallel pool's coordinator view it runs the whole pool and
     * returns once global termination is detected. Must only be
     * called on a standalone marker or the pool's coordinator view.
     */
    void drain();

    /**
     * Install a hook invoked once per newly shaded object, when the
     * object is popped for tracing. GOLF's eager-liveness extension
     * (the Section 5.3 optimization the paper describes but does not
     * implement) uses it to push the stacks of goroutines blocked on
     * the object as soon as the object is discovered, collapsing the
     * root-expansion fixpoint. Coordinator/standalone only; applies
     * to every view of a pool.
     */
    void setMarkHook(MarkHook hook);

    /** True when a finalizer-bearing object was newly marked since
     *  the last call to clearFinalizerSeen() (paper Section 5.5).
     *  Aggregated across all pool views. */
    bool finalizerSeen() const;
    void clearFinalizerSeen();

    /// @{ Marking-work accounting (cycle totals; pool-aggregated).
    uint64_t pointersTraversed() const;
    uint64_t objectsMarked() const;
    uint64_t bytesMarked() const;
    /// @}

    uint64_t epoch() const { return epoch_; }

  private:
    friend class ParallelMarker;

    /** Pool-view constructor (workerIdx 0 is the coordinator). */
    Marker(ParallelMarker& pool, Heap& heap, int workerIdx);

    /** Pop-and-trace one object: fire the hook, then obj->trace().
     *  The single place tracing happens, serial or parallel. */
    void traceOne(Object* obj);

    /** Serial drain of this view's private grey stack only. */
    void drainLocal();

    /** Reset per-cycle state for a new epoch (pool views). */
    void resetForEpoch(uint64_t epoch);

    Heap& heap_;
    uint64_t epoch_;
    ParallelMarker* pool_ = nullptr;
    int workerIdx_ = 0;
    /** Whether mark() must use the CAS path (any pool with >1
     *  workers, even outside drains — cross-view visibility). */
    bool concurrent_ = false;
    std::vector<Object*> grey_;  ///< Private grey stack.
    uint64_t pointersTraversed_ = 0;
    uint64_t objectsMarked_ = 0;
    uint64_t bytesMarked_ = 0;
    bool finalizerSeen_ = false;
    /** Standalone mode: the hook itself. Pool views share the pool's
     *  hook instead (hookRef_ points at it either way). */
    MarkHook ownHook_;
    const MarkHook* hookRef_ = nullptr;
};

} // namespace golf::gc

#endif // GOLFCC_GC_MARKER_HPP
