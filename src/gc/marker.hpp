/**
 * @file
 * Tricolor worklist marker — serial view and parallel worker view.
 *
 * White = markEpoch behind the heap epoch, grey = on a grey stack,
 * black = marked and traced. The collector runs one or more "mark
 * iterations" (drains); GOLF's root-set expansion (Section 4.2) adds
 * newly reachably-live goroutine stacks between drains and counts the
 * iterations, which lets tests pin the daisy-chain worst case of
 * Section 5.2.
 *
 * A Marker is either *standalone* (Heap::beginCycle — the historical
 * single-threaded marker, used directly by tests) or a *worker view*
 * owned by a gc::ParallelMarker pool (Heap::beginCycleParallel). In
 * pool mode each mark worker owns one view: mark() claims the object
 * via a CAS on its mark epoch and pushes it on the view's private
 * grey stack; drain() delegates to the pool, which balances grey
 * objects across workers with Chase–Lev stealing deques. Stats are
 * kept per view and aggregated by the pool, so every accessor below
 * reports cycle totals in both modes.
 *
 * The mark hook fires from the worklist loop when an object is
 * popped for tracing — NOT from inside mark(). Firing it inside
 * mark() would recurse (hook marks an object, whose hook marks an
 * object, ...): with eager-liveness marking a daisy chain of blocked
 * goroutines used to nest one stack frame per link, so a long enough
 * chain overflowed the C++ stack. Hook dispatch from the iterative
 * loop bounds stack depth at O(1) regardless of graph depth.
 */
#ifndef GOLFCC_GC_MARKER_HPP
#define GOLFCC_GC_MARKER_HPP

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "gc/object.hpp"
#include "gc/span.hpp"
#include "support/masked_ptr.hpp"
#include "support/panic.hpp"

namespace golf::gc {

class Heap;
class Marker;
class ParallelMarker;

/**
 * Objects detached per batch by the grey-stack pop loops. Tracing is
 * a pointer chase with no computation to hide misses behind, and the
 * stack is LIFO — the next pop is usually the child pushed an instant
 * ago, so a fixed-distance prefetch never gets any lead time. Instead
 * the drain loops detach a whole batch from the top of the stack,
 * prefetch every object header in it (the misses overlap each other),
 * ask each object for its payload hint (Object::prefetchTrace — e.g.
 * a vector backing array), and only then start tracing. Children
 * pushed while tracing form the next batch.
 */
inline constexpr size_t kTraceBatch = 16;

/**
 * A worker's private grey stack: a plain Object* array with manual
 * top/capacity, instead of std::vector, so the mark fast path can do
 * a *branchless conditional push* — unconditionally store the object
 * into the next slot and advance the top by 0 or 1. The shade test in
 * mark() is data-random (~most edges hit already-marked objects), so
 * a conditional branch there mispredicts constantly; turning it into
 * a conditional increment keeps the pipeline full.
 */
class GreyStack
{
  public:
    GreyStack() : buf_(new Object*[kInitialCap]), cap_(kInitialCap) {}

    bool empty() const { return top_ == 0; }
    size_t size() const { return top_; }
    Object* operator[](size_t i) const { return buf_[i]; }

    void clear() { top_ = 0; }

    /** Shrink to n entries (detach from the top). */
    void shrinkTo(size_t n) { top_ = n; }

    /** Drop the n oldest entries (work donation publishes those). */
    void
    dropFront(size_t n)
    {
        std::memmove(buf_.get(), buf_.get() + n,
                     (top_ - n) * sizeof(Object*));
        top_ -= n;
    }

    void
    push(Object* obj)
    {
        if (top_ == cap_) [[unlikely]]
            grow();
        buf_[top_++] = obj;
    }

    /** Branchless conditional push: always stores obj into the slot
     *  past the top, then advances the top by inc (0 or 1). The only
     *  branch is the capacity check, which almost never fires. */
    void
    pushIf(Object* obj, size_t inc)
    {
        if (top_ == cap_) [[unlikely]]
            grow();
        buf_[top_] = obj;
        top_ += inc;
    }

  private:
    static constexpr size_t kInitialCap = 1024;

    void
    grow()
    {
        cap_ *= 2;
        Object** bigger = new Object*[cap_];
        std::memcpy(bigger, buf_.get(), top_ * sizeof(Object*));
        buf_.reset(bigger);
    }

    std::unique_ptr<Object*[]> buf_;
    size_t top_ = 0;
    size_t cap_;
};

/**
 * Detach up to maxN entries from the top of a grey stack into batch[]
 * (batch[0] is the former top, preserving the old pop order) and
 * issue the prefetches described above. Returns the count.
 */
inline size_t
detachTraceBatch(GreyStack& grey, Object** batch, size_t maxN)
{
    size_t n = grey.size() < maxN ? grey.size() : maxN;
    size_t base = grey.size() - n;
    for (size_t i = 0; i < n; ++i) {
        Object* o = grey[base + n - 1 - i];
        batch[i] = o;
#if defined(__GNUC__) || defined(__clang__)
        const char* p = reinterpret_cast<const char*>(o);
        __builtin_prefetch(p, 0);
        __builtin_prefetch(p + 64, 0);
#endif
    }
    grey.shrinkTo(base);
    // Second pass: by now the first headers are arriving, so the
    // virtual hint dispatch (which needs the vptr line) mostly hits,
    // and the payload prefetches it issues overlap in turn. The
    // third stage — prefetchTraceTargets, which needs the payload
    // resident — is the caller's job (traceBatchTargets), giving the
    // payload prefetches this pass worth of lead time first.
    for (size_t i = 0; i < n; ++i)
        batch[i]->prefetchTrace();
    return n;
}

/** Stage-three hint for a detached batch: put every object's trace
 *  targets' mark words in flight (see Object::prefetchTraceTargets). */
inline void
traceBatchTargets(Object* const* batch, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        batch[i]->prefetchTraceTargets();
}

/** Hook invoked once per newly shaded object, from the worklist loop
 *  of whichever worker pops the object. The Marker& argument is that
 *  worker's view: hook code must mark through it (and only it). */
using MarkHook = std::function<void(Marker&, Object*)>;

/** Worklist marker for one collection cycle (one worker's view). */
class Marker
{
  public:
    /** Standalone single-threaded marker (Heap::beginCycle). */
    Marker(Heap& heap, uint64_t epoch);

    Marker(const Marker&) = delete;
    Marker& operator=(const Marker&) = delete;
    /** Standalone markers are movable (Heap::beginCycle returns by
     *  value); pool views never move — the pool owns them. */
    Marker(Marker&& other) noexcept;

    /**
     * Shade an object grey if it is still white. Null is ignored.
     * Every call counts as one pointer traversal (the unit in which
     * the paper states GOLF performs "the same amount of marking
     * work" as the ordinary GC). Safe to call concurrently from
     * different worker views during a parallel drain: the mark-bit
     * fetch_or (pool) / mark-epoch CAS (legacy) elects exactly one
     * greyer per object. Defined inline below — this runs once per
     * edge of the object graph, and the pool fast path is a handful
     * of address-arithmetic instructions that must inline into the
     * trace() loops.
     */
    void mark(Object* obj);

    /** Whether obj has been marked in this cycle. */
    bool isMarked(const Object* obj) const
    {
        if (obj->pooled_)
            return spanMarked(obj);
        return obj->markEpoch_.load(std::memory_order_relaxed) ==
               epoch_;
    }

    /**
     * Drain until no grey objects remain. On a standalone marker (or
     * a pool of one worker) this is the historical serial loop; on a
     * parallel pool's coordinator view it runs the whole pool and
     * returns once global termination is detected. Must only be
     * called on a standalone marker or the pool's coordinator view.
     */
    void drain();

    /**
     * Install a hook invoked once per newly shaded object, when the
     * object is popped for tracing. GOLF's eager-liveness extension
     * (the Section 5.3 optimization the paper describes but does not
     * implement) uses it to push the stacks of goroutines blocked on
     * the object as soon as the object is discovered, collapsing the
     * root-expansion fixpoint. Coordinator/standalone only; applies
     * to every view of a pool.
     */
    void setMarkHook(MarkHook hook);

    /** True when a finalizer-bearing object was newly marked since
     *  the last call to clearFinalizerSeen() (paper Section 5.5).
     *  Aggregated across all pool views. */
    bool finalizerSeen() const;
    void clearFinalizerSeen();

    /// @{ Marking-work accounting (cycle totals; pool-aggregated).
    uint64_t pointersTraversed() const;
    uint64_t objectsMarked() const;
    uint64_t bytesMarked() const;
    /// @}

    uint64_t epoch() const { return epoch_; }

  private:
    friend class ParallelMarker;

    /** Pool-view constructor (workerIdx 0 is the coordinator). */
    Marker(ParallelMarker& pool, Heap& heap, int workerIdx);

    /** Epoch-word shade for non-pool objects (legacy backend, stack
     *  or foreign objects): returns true when this call newly marked
     *  the object. Out of line — the pool fast path stays small. */
    bool markEpochPath(Object* obj);

    /** Pop-and-trace one object: fire the hook, then obj->trace().
     *  The single place tracing happens, serial or parallel. */
    void traceOne(Object* obj);

    /** Serial drain of this view's private grey stack only. */
    void drainLocal();

    /** Reset per-cycle state for a new epoch (pool views). */
    void resetForEpoch(uint64_t epoch);

    Heap& heap_;
    uint64_t epoch_;
    /** Pool-membership map (null under the Legacy backend): mark()
     *  resolves member addresses to span bitmap bits without ever
     *  touching the object's cache line. */
    const PageMap* pagemap_ = nullptr;
    ParallelMarker* pool_ = nullptr;
    int workerIdx_ = 0;
    /** Whether mark() must use the CAS path (any pool with >1
     *  workers, even outside drains — cross-view visibility). */
    bool concurrent_ = false;
    GreyStack grey_;  ///< Private grey stack.
    uint64_t pointersTraversed_ = 0;
    uint64_t objectsMarked_ = 0;
    uint64_t bytesMarked_ = 0;
    bool finalizerSeen_ = false;
    /** Standalone mode: the hook itself. Pool views share the pool's
     *  hook instead (hookRef_ points at it either way). */
    MarkHook ownHook_;
    const MarkHook* hookRef_ = nullptr;
};

inline void
Marker::mark(Object* obj)
{
    if (!obj)
        return;
    ++pointersTraversed_;
    const uintptr_t addr = reinterpret_cast<uintptr_t>(obj);
    // Section 5.4: masked addresses (goroutines hidden in allgs, the
    // semaphore treap) must never reach the marker. On mainstream
    // 64-bit Linux a genuine user-space pointer never has the top bit
    // set, so a masked pointer is detectable here.
    if (support::isMaskedAddress(addr))
        support::panic("Marker::mark called on a masked address");
    if (pagemap_ && pagemap_->contains(addr)) {
        // Pool fast path: the mark bit lives in the span header,
        // granule-indexed, so shading is pure address arithmetic —
        // two pagemap loads plus one bitmap word, no span metadata
        // and no object-line touch (the object's own cache line is
        // read only once per cycle, at pop time). Stack objects,
        // foreign-heap objects and adopted legacy objects miss the
        // pagemap and fall through to the epoch path.
        const size_t g = (addr & (kSpanSize - 1)) >> kGranuleShift;
        std::atomic<uint64_t>& word = Span::of(obj)->markBits[g >> 6];
        const uint64_t bit = uint64_t{1} << (g & 63);
        if (concurrent_) {
            // fetch_or elects the greyer exactly as the epoch CAS
            // did: the worker that flips 0→1 pushes the object.
            if (word.fetch_or(bit, std::memory_order_relaxed) & bit)
                return;
        } else {
            const uint64_t seen = word.load(std::memory_order_relaxed);
            if (seen & bit)
                return;
            word.store(seen | bit, std::memory_order_relaxed);
        }
    } else if (!markEpochPath(obj)) {
        return;
    }
    ++objectsMarked_;
#if defined(__GNUC__) || defined(__clang__)
    // The object's own line was deliberately not read here; it will
    // be, at pop time. Objects greyed during one trace batch are
    // traced in the next, so a prefetch issued now has a whole batch
    // of lead time — by pop the header is resident and the batch
    // pipeline only has to cover payloads and mark words.
    const char* line = reinterpret_cast<const char*>(obj);
    __builtin_prefetch(line, 0);
    __builtin_prefetch(line + 64, 0);
#endif
    grey_.push(obj);
}

} // namespace golf::gc

#endif // GOLFCC_GC_MARKER_HPP
