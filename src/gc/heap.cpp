#include "gc/heap.hpp"

#include <cstring>

#include "gc/marker.hpp"
#include "gc/parallel.hpp"
#include "support/panic.hpp"

namespace golf::gc {

void
RootList::traceInto(Marker& marker) const
{
    slots_.forEach([&](RootSlot* slot) {
        if (slot->slot())
            marker.mark(*slot->slot());
    });
}

Heap::Heap(HeapConfig config)
    : config_(config), triggerBytes_(config.minTriggerBytes)
{
}

Heap::~Heap()
{
    // Destroy all surviving objects; finalizers do not run at heap
    // teardown (matching Go, where finalizers are not guaranteed).
    Object* obj = allHead_;
    while (obj) {
        Object* next = obj->allNext_;
        if (freeHook_)
            freeHook_(obj);
        delete obj;
        obj = next;
    }
}

void
Heap::adopt(Object* obj, size_t bytes)
{
    if (obj->heap_)
        support::panic("gc::Heap::adopt: object already managed");
    obj->heap_ = this;
    obj->allocSize_ = bytes;
    obj->baseSize_ = bytes;
    obj->allNext_ = allHead_;
    allHead_ = obj;
    liveBytes_ += bytes;
    ++liveObjects_;
    stats_.totalAlloc += bytes;
    stats_.heapAlloc = liveBytes_;
    stats_.heapInuse = liveBytes_;
    stats_.heapObjects = liveObjects_;
}

void
Heap::charge(Object* obj, size_t bytes)
{
    if (!owns(obj))
        support::panic("gc::Heap::charge: not my object");
    obj->allocSize_ += bytes;
    liveBytes_ += bytes;
    stats_.totalAlloc += bytes;
    stats_.heapAlloc = liveBytes_;
    stats_.heapInuse = liveBytes_;
}

Marker
Heap::beginCycle()
{
    ++epoch_;
    return Marker(*this, epoch_);
}

ParallelMarker&
Heap::beginCycleParallel(int workers)
{
    if (workers < 1)
        workers = 1;
    ++epoch_;
    if (!markerPool_ || markerPool_->workers() != workers)
        markerPool_ = std::make_unique<ParallelMarker>(*this, workers);
    markerPool_->beginEpoch(epoch_);
    return *markerPool_;
}

size_t
Heap::sweep(Marker& marker)
{
    // Finalizer grace pass: resurrect white finalizer-bearing objects
    // and everything they reach, then queue their finalizers.
    for (Object* obj = allHead_; obj; obj = obj->allNext_) {
        if (obj->hasFinalizer_ && !marker.isMarked(obj)) {
            marker.mark(obj);
            marker.drain();
            auto it = finalizers_.find(obj);
            finalizerQueue_.push_back(std::move(it->second));
            finalizers_.erase(it);
            obj->hasFinalizer_ = false;
        }
    }

    size_t freed = 0;
    Object** link = &allHead_;
    while (Object* obj = *link) {
        if (marker.isMarked(obj)) {
            link = &obj->allNext_;
            continue;
        }
        *link = obj->allNext_;
        liveBytes_ -= obj->allocSize_;
        --liveObjects_;
        stats_.totalFreed += obj->allocSize_;
        // Poison only the object's own footprint; allocSize_ may
        // include charged container payloads living elsewhere.
        size_t size = obj->baseSize_;
        if (freeHook_)
            freeHook_(obj);
        obj->~Object();
        if (config_.poisonFreed)
            std::memset(static_cast<void*>(obj), 0xDD,
                        size < sizeof(Object) ? sizeof(Object) : size);
        ::operator delete(obj);
        ++freed;
    }

    stats_.heapAlloc = liveBytes_;
    stats_.heapInuse = liveBytes_;
    stats_.heapObjects = liveObjects_;

    // Re-pace: next collection when the live heap grows by gcPercent.
    uint64_t next = liveBytes_ +
        liveBytes_ * static_cast<uint64_t>(config_.gcPercent) / 100;
    triggerBytes_ = next < config_.minTriggerBytes
        ? config_.minTriggerBytes : next;
    return freed;
}

size_t
Heap::runFinalizers()
{
    size_t ran = 0;
    // Finalizers may allocate or set more finalizers; drain by swap.
    while (!finalizerQueue_.empty()) {
        std::vector<std::function<void()>> batch;
        batch.swap(finalizerQueue_);
        for (auto& fn : batch) {
            fn();
            ++ran;
        }
    }
    return ran;
}

void
Heap::setFinalizer(Object* obj, std::function<void()> fn)
{
    if (!owns(obj))
        support::panic("gc::Heap::setFinalizer: not my object");
    obj->hasFinalizer_ = true;
    finalizers_[obj] = std::move(fn);
}

bool
Heap::shouldCollect() const
{
    return liveBytes_ >= triggerBytes_;
}

} // namespace golf::gc
