#include "gc/heap.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <new>

#include "gc/marker.hpp"
#include "gc/parallel.hpp"
#include "support/panic.hpp"

namespace golf::gc {

namespace {

inline size_t
popcountWord(uint64_t w)
{
    return static_cast<size_t>(__builtin_popcountll(w));
}

constexpr size_t kOsPage = 4096;

/**
 * Span storage comes straight from mmap, not operator new: anonymous
 * mappings cluster in one virtual-address region, which keeps the
 * PageMap's dense membership window (and so its bitmap) tiny and
 * L1-resident — operator new would mix sbrk- and mmap-backed chunks
 * tens of TB apart and blow the window up. Alignment comes from
 * over-mapping by one span and trimming both ends.
 */
inline void*
osAllocSpan(size_t bytes)
{
    const size_t len = (bytes + kOsPage - 1) & ~(kOsPage - 1);
    const size_t over = len + kSpanSize;
    void* raw = ::mmap(nullptr, over, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw == MAP_FAILED)
        throw std::bad_alloc{};
    const uintptr_t base = reinterpret_cast<uintptr_t>(raw);
    const uintptr_t aligned = (base + kSpanSize - 1) & ~(kSpanSize - 1);
    if (const size_t head = aligned - base)
        ::munmap(raw, head);
    if (const size_t tail = over - (aligned - base) - len)
        ::munmap(reinterpret_cast<void*>(aligned + len), tail);
    return reinterpret_cast<void*>(aligned);
}

inline void
osFreeSpan(void* p, size_t bytes)
{
    ::munmap(p, (bytes + kOsPage - 1) & ~(kOsPage - 1));
}

/** Placement-construct a span header on a fresh 64 KiB chunk. */
Span*
initSpan(void* mem, Heap* heap, uint16_t classIdx, uint32_t slotSize,
         uint32_t numSlots, size_t footprint)
{
    Span* s = new (mem) Span;
    s->heap = heap;
    s->slotSize = slotSize;
    s->numSlots = numSlots;
    s->divMagic = divMagicFor(slotSize);
    s->freeCount = numSlots;
    s->cursorWord = 0;
    s->classIdx = classIdx;
    s->state = SpanState::InUse;
    s->footprint = footprint;
    uint32_t words = s->bitmapWords();
    for (uint32_t w = 0; w < words; ++w) {
        uint64_t full = ~uint64_t{0};
        uint32_t tail = numSlots - w * 64;
        s->availBits[w] = tail >= 64 ? full : (uint64_t{1} << tail) - 1;
        s->liveBits[w] = 0;
        s->pendingBits[w] = 0;
    }
    for (size_t w = 0; w < kMarkBitmapWords; ++w)
        s->markBits[w].store(0, std::memory_order_relaxed);
    return s;
}

} // namespace

void
RootList::traceInto(Marker& marker) const
{
    slots_.forEach([&](RootSlot* slot) {
        if (slot->slot())
            marker.mark(*slot->slot());
    });
}

Heap::Heap(HeapConfig config)
    : config_(config), triggerBytes_(config.minTriggerBytes)
{
    // With a soft limit the first trigger may need to sit below
    // minTriggerBytes; repace() owns that arithmetic.
    if (config_.softLimitBytes > 0)
        repace();
}

Heap::~Heap()
{
    // Destroy all surviving objects; finalizers do not run at heap
    // teardown (matching Go, where finalizers are not guaranteed).
    Object* obj = allHead_;
    while (obj) {
        Object* next = obj->allNext_;
        if (freeHook_)
            freeHook_(obj);
        delete obj;
        obj = next;
    }
    for (Span* s : spans_) {
        uint32_t words = s->bitmapWords();
        for (uint32_t w = 0; w < words; ++w) {
            uint64_t bits = s->liveBits[w];
            while (bits) {
                uint32_t slot =
                    w * 64 +
                    static_cast<uint32_t>(__builtin_ctzll(bits));
                bits &= bits - 1;
                Object* o = static_cast<Object*>(s->slotAt(slot));
                if (freeHook_)
                    freeHook_(o);
                o->~Object();
            }
        }
        const size_t footprint = s->footprint;
        osFreeSpan(s, footprint);
    }
    for (void* raw : freeSpans_)
        osFreeSpan(raw, kSpanSize);
}

// ---------------------------------------------------------------------------
// Pool allocation
// ---------------------------------------------------------------------------

void*
Heap::poolAllocate(size_t bytes)
{
    if (bytes > kMaxSmallSize)
        return allocateLarge(bytes);
    int ci = sizeClassFor(bytes);
    SizeClassState& cls = classes_[static_cast<size_t>(ci)];
    Span* s = cls.cur;
    if (!s || s->freeCount == 0) {
        // A full current span floats: it stays reachable via spans_
        // and re-enters service through the sweep classification.
        cls.cur = nullptr;
        s = allocSlowPath(ci);
        if (!s)
            return nullptr; // span acquisition failed (SpanMap fault)
    }
    ++poolStats_.slotAllocs;
    return s->slotAt(takeSlot(s));
}

uint32_t
Heap::takeSlot(Span* s)
{
    uint32_t words = s->bitmapWords();
    // First-fit from the cursor hint, wrapping once; freeCount > 0
    // guarantees a set bit. Ascending order keeps the allocation
    // pattern (and therefore address reuse) deterministic.
    for (uint32_t w = s->cursorWord;; ++w) {
        if (w == words)
            w = 0;
        uint64_t avail = s->availBits[w];
        if (avail) {
            uint32_t bit =
                static_cast<uint32_t>(__builtin_ctzll(avail));
            s->availBits[w] = avail & (avail - 1);
            --s->freeCount;
            s->cursorWord = w;
            return w * 64 + bit;
        }
    }
}

Span*
Heap::allocSlowPath(int classIdx)
{
    SizeClassState& cls = classes_[static_cast<size_t>(classIdx)];
    // 1. A known-partial span: free slots, no sweep work.
    while (!cls.partial.empty()) {
        Span* s = cls.partial.back();
        cls.partial.pop_back();
        if (s->freeCount > 0) {
            cls.cur = s;
            return s;
        }
    }
    // 2. Lazy sweep: reintegrate pending spans one at a time until
    //    one yields a free slot (this is the "swept on first
    //    allocation after a cycle" leg of the state machine).
    while (!cls.pending.empty()) {
        Span* s = cls.pending.back();
        cls.pending.pop_back();
        --poolStats_.pendingSweepSpans;
        ++poolStats_.lazySweptSpans;
        integrateSpan(s);
        if (s->freeCount > 0) {
            cls.cur = s;
            return s;
        }
    }
    // 3. A fresh span, from the retired cache or the OS.
    Span* s = newSpan(classIdx);
    if (s)
        cls.cur = s;
    return s;
}

Span*
Heap::newSpan(int classIdx)
{
    void* mem;
    if (!freeSpans_.empty()) {
        mem = freeSpans_.back();
        freeSpans_.pop_back();
        --poolStats_.cachedSpans;
    } else {
        if (spanFaultHook_ && spanFaultHook_()) {
            ++poolStats_.spanMapFaults;
            return nullptr;
        }
        mem = osAllocSpan(kSpanSize);
    }
    uint32_t slotSize = kSizeClasses[classIdx];
    uint32_t numSlots = static_cast<uint32_t>(kSpanPayload / slotSize);
    Span* s = initSpan(mem, this, static_cast<uint16_t>(classIdx),
                       slotSize, numSlots, kSpanSize);
    pagemap_.add(reinterpret_cast<uintptr_t>(s));
    spans_.push_back(s);
    ++poolStats_.spans;
    poolStats_.spanBytes += kSpanSize;
    return s;
}

void*
Heap::allocateLarge(size_t bytes)
{
    size_t slotSize = (bytes + 15) & ~size_t{15};
    size_t footprint = kSpanHeaderSize + slotSize;
    void* mem;
    if (footprint <= kSpanSize) {
        // A large object that fits one span recycles whole 64 KiB
        // chunks through the retired-span cache like any small-class
        // span; an mmap/munmap round-trip per object would dominate
        // mixed workloads. Only truly huge objects map their own
        // exactly-sized region.
        footprint = kSpanSize;
        if (!freeSpans_.empty()) {
            mem = freeSpans_.back();
            freeSpans_.pop_back();
            --poolStats_.cachedSpans;
        } else {
            if (spanFaultHook_ && spanFaultHook_()) {
                ++poolStats_.spanMapFaults;
                return nullptr;
            }
            mem = osAllocSpan(kSpanSize);
        }
    } else {
        if (spanFaultHook_ && spanFaultHook_()) {
            ++poolStats_.spanMapFaults;
            return nullptr;
        }
        mem = osAllocSpan(footprint);
    }
    Span* s = initSpan(mem, this, kLargeClassIdx,
                       static_cast<uint32_t>(slotSize), 1, footprint);
    // The single slot is taken immediately.
    s->availBits[0] = 0;
    s->freeCount = 0;
    s->divMagic = 0; // Any in-object offset maps to slot 0.
    pagemap_.add(reinterpret_cast<uintptr_t>(s));
    spans_.push_back(s);
    ++poolStats_.largeSpans;
    poolStats_.spanBytes += footprint;
    ++poolStats_.largeAllocs;
    return s->slotAt(0);
}

void
Heap::poolUnallocate(void* mem)
{
    // Constructor threw: the slot was reserved but never became
    // live. Hand it straight back.
    Span* s = Span::of(mem);
    if (s->classIdx == kLargeClassIdx) {
        // Not necessarily the last span: the throwing constructor
        // may itself have allocated.
        spans_.erase(std::find(spans_.begin(), spans_.end(), s));
        freeLargeSpan(s);
        return;
    }
    uint32_t slot = s->slotIndexOf(mem);
    s->availBits[slot >> 6] |= uint64_t{1} << (slot & 63);
    ++s->freeCount;
}

void
Heap::finishPoolAdopt(Object* obj, size_t bytes)
{
    Span* s = Span::of(obj);
    uint32_t slot = s->slotIndexOf(obj);
    s->liveBits[slot >> 6] |= uint64_t{1} << (slot & 63);
    obj->heap_ = this;
    obj->pooled_ = true;
    obj->allocSize_ = bytes;
    obj->baseSize_ = bytes;
    obj->allocSeq_ = ++allocSeq_;
    liveBytes_ += bytes;
    if (liveBytes_ > peakLiveBytes_)
        peakLiveBytes_ = liveBytes_;
    ++liveObjects_;
    stats_.totalAlloc += bytes;
    stats_.heapAlloc = liveBytes_;
    stats_.heapInuse = liveBytes_;
    stats_.heapObjects = liveObjects_;
}

void
Heap::adopt(Object* obj, size_t bytes)
{
    if (obj->heap_)
        support::panic("gc::Heap::adopt: object already managed");
    obj->heap_ = this;
    obj->allocSize_ = bytes;
    obj->baseSize_ = bytes;
    obj->allocSeq_ = ++allocSeq_;
    obj->allNext_ = allHead_;
    allHead_ = obj;
    liveBytes_ += bytes;
    if (liveBytes_ > peakLiveBytes_)
        peakLiveBytes_ = liveBytes_;
    ++liveObjects_;
    stats_.totalAlloc += bytes;
    stats_.heapAlloc = liveBytes_;
    stats_.heapInuse = liveBytes_;
    stats_.heapObjects = liveObjects_;
}

void
Heap::charge(Object* obj, size_t bytes)
{
    if (!owns(obj))
        support::panic("gc::Heap::charge: not my object");
    obj->allocSize_ += bytes;
    liveBytes_ += bytes;
    if (liveBytes_ > peakLiveBytes_)
        peakLiveBytes_ = liveBytes_;
    stats_.totalAlloc += bytes;
    stats_.heapAlloc = liveBytes_;
    stats_.heapInuse = liveBytes_;
}

// ---------------------------------------------------------------------------
// Cycle begin / whitening
// ---------------------------------------------------------------------------

void
Heap::whitenPool()
{
    // Defensive drain: the collector already calls sweepRemainder()
    // before the cycle; direct Heap users (tests, benches) get the
    // same state machine without knowing about it.
    sweepRemainder();
    for (Span* s : spans_) {
        for (size_t w = 0; w < kMarkBitmapWords; ++w)
            s->markBits[w].store(0, std::memory_order_relaxed);
    }
}

Marker
Heap::beginCycle()
{
    ++epoch_;
    whitenPool();
    return Marker(*this, epoch_);
}

ParallelMarker&
Heap::beginCycleParallel(int workers)
{
    if (workers < 1)
        workers = 1;
    ++epoch_;
    whitenPool();
    if (!markerPool_ || markerPool_->workers() != workers)
        markerPool_ = std::make_unique<ParallelMarker>(*this, workers);
    markerPool_->beginEpoch(epoch_);
    return *markerPool_;
}

// ---------------------------------------------------------------------------
// Sweep
// ---------------------------------------------------------------------------

size_t
Heap::sweep(Marker& marker)
{
    // Finalizer grace pass: resurrect white finalizer-bearing objects
    // and everything they reach, then queue their finalizers. Visits
    // registration order — identical for both backends, so chains of
    // finalizer objects resurrect in the same order and the marking
    // stats stay byte-identical across backends.
    for (size_t i = 0; i < finalizerOrder_.size();) {
        Object* obj = finalizerOrder_[i];
        if (marker.isMarked(obj)) {
            ++i;
            continue;
        }
        marker.mark(obj);
        marker.drain();
        auto it = finalizers_.find(obj);
        finalizerQueue_.push_back(std::move(it->second));
        finalizers_.erase(it);
        obj->hasFinalizer_ = false;
        finalizerOrder_.erase(finalizerOrder_.begin() +
                              static_cast<ptrdiff_t>(i));
    }

    size_t freed = sweepChain(marker);
    if (config_.backend == AllocBackend::Pool)
        freed += sweepSpans(marker);

    stats_.heapAlloc = liveBytes_;
    stats_.heapInuse = liveBytes_;
    stats_.heapObjects = liveObjects_;
    repace();
    return freed;
}

size_t
Heap::sweepChain(const Marker& marker)
{
    size_t freed = 0;
    Object** link = &allHead_;
    while (Object* obj = *link) {
        if (marker.isMarked(obj)) {
            link = &obj->allNext_;
            continue;
        }
        *link = obj->allNext_;
        liveBytes_ -= obj->allocSize_;
        --liveObjects_;
        stats_.totalFreed += obj->allocSize_;
        // Poison only the object's own footprint; allocSize_ may
        // include charged container payloads living elsewhere.
        size_t size = obj->baseSize_;
        if (freeHook_)
            freeHook_(obj);
        obj->~Object();
        if (config_.poisonFreed)
            std::memset(static_cast<void*>(obj), 0xDD,
                        size < sizeof(Object) ? sizeof(Object) : size);
        ::operator delete(obj);
        ++freed;
    }
    return freed;
}

size_t
Heap::sweepSpans(const Marker& marker)
{
    (void)marker; // Pool mark state lives in the span bitmaps.
    size_t freed = 0;
    // Sweep rebuilds the per-class span sets from scratch — every
    // span is visited anyway, so this is where cur/partial/pending
    // membership is recomputed instead of maintained incrementally.
    for (SizeClassState& cls : classes_) {
        cls.cur = nullptr;
        cls.partial.clear();
        cls.pending.clear();
    }
    poolStats_.pendingSweepSpans = 0;

    std::vector<Span*> keep;
    keep.reserve(spans_.size());
    for (Span* s : spans_) {
        uint32_t words = s->bitmapWords();
        bool anyDead = false;
        for (uint32_t w = 0; w < words; ++w) {
            const uint64_t live = s->liveBits[w];
            if (!live)
                continue;
            // Project the granule-indexed mark bitmap back onto this
            // slot word (sweep is cold; mark stays metadata-free).
            uint64_t mark = 0;
            for (uint64_t bits = live; bits;) {
                uint32_t slot =
                    w * 64 +
                    static_cast<uint32_t>(__builtin_ctzll(bits));
                bits &= bits - 1;
                if (s->testMark(slot))
                    mark |= uint64_t{1} << (slot & 63);
            }
            uint64_t dead = live & ~mark;
            if (!dead)
                continue;
            anyDead = true;
            uint64_t bits = dead;
            while (bits) {
                uint32_t slot =
                    w * 64 +
                    static_cast<uint32_t>(__builtin_ctzll(bits));
                bits &= bits - 1;
                Object* obj = static_cast<Object*>(s->slotAt(slot));
                liveBytes_ -= obj->allocSize_;
                --liveObjects_;
                stats_.totalFreed += obj->allocSize_;
                if (freeHook_)
                    freeHook_(obj);
                obj->~Object();
                if (config_.poisonFreed)
                    std::memset(s->slotAt(slot), 0xDD, s->slotSize);
                ++freed;
            }
            s->liveBits[w] &= mark;
            s->pendingBits[w] |= dead;
        }

        if (s->classIdx == kLargeClassIdx) {
            // Large spans are released eagerly: their storage cannot
            // be recycled by another size class, so parking them in
            // PendingSweep would only pin memory.
            if (anyDead) {
                freeLargeSpan(s);
                continue;
            }
            keep.push_back(s);
            continue;
        }

        SizeClassState& cls = classes_[s->classIdx];
        if (anyDead) {
            s->state = SpanState::PendingSweep;
            cls.pending.push_back(s);
            ++poolStats_.pendingSweepSpans;
        } else if (s->freeCount == s->numSlots) {
            // Never got a live object back after a previous drain
            // (e.g. it was the class's current span): retire.
            retireSpan(s);
            continue;
        } else if (s->freeCount > 0) {
            cls.partial.push_back(s);
        }
        keep.push_back(s);
    }
    spans_.swap(keep);
    return freed;
}

void
Heap::integrateSpan(Span* s)
{
    uint32_t words = s->bitmapWords();
    uint32_t recycled = 0;
    for (uint32_t w = 0; w < words; ++w) {
        uint64_t pending = s->pendingBits[w];
        if (!pending)
            continue;
        recycled += static_cast<uint32_t>(popcountWord(pending));
        s->availBits[w] |= pending;
        s->pendingBits[w] = 0;
    }
    s->freeCount += recycled;
    s->cursorWord = 0;
    s->state = SpanState::InUse;
    poolStats_.slotsRecycled += recycled;
}

void
Heap::retireSpan(Span* s)
{
    pagemap_.remove(reinterpret_cast<uintptr_t>(s));
    --poolStats_.spans;
    poolStats_.spanBytes -= kSpanSize;
    cacheOrEvict(static_cast<void*>(s));
}

void
Heap::freeLargeSpan(Span* s)
{
    pagemap_.remove(reinterpret_cast<uintptr_t>(s));
    --poolStats_.largeSpans;
    poolStats_.spanBytes -= s->footprint;
    if (s->footprint == kSpanSize) {
        cacheOrEvict(static_cast<void*>(s));
        return;
    }
    const size_t footprint = s->footprint;
    osFreeSpan(s, footprint);
}

void
Heap::cacheOrEvict(void* mem)
{
    if (freeSpans_.size() >= config_.retiredCacheCap) {
        ++poolStats_.evictedSpans;
        releaseChunk(mem);
        return;
    }
    ++poolStats_.cachedSpans;
    freeSpans_.push_back(mem);
}

void
Heap::releaseChunk(void* mem)
{
    if (releaseSeam_)
        releaseSeam_(mem, kSpanSize);
    else
        osFreeSpan(mem, kSpanSize);
}

void
Heap::osRelease(void* p, size_t bytes)
{
    osFreeSpan(p, bytes);
}

size_t
Heap::scavenge(size_t keepSpans)
{
    size_t released = 0;
    while (freeSpans_.size() > keepSpans) {
        void* mem = freeSpans_.back();
        freeSpans_.pop_back();
        --poolStats_.cachedSpans;
        ++poolStats_.scavengedSpans;
        releaseChunk(mem);
        ++released;
    }
    return released;
}

size_t
Heap::sweepRemainder()
{
    size_t drained = 0;
    for (SizeClassState& cls : classes_) {
        for (Span* s : cls.pending) {
            integrateSpan(s);
            ++drained;
            if (s->freeCount == s->numSlots) {
                auto it = std::find(spans_.begin(), spans_.end(), s);
                spans_.erase(it);
                retireSpan(s);
            } else if (s->freeCount > 0) {
                cls.partial.push_back(s);
            }
        }
        cls.pending.clear();
    }
    if (drained) {
        poolStats_.pendingSweepSpans = 0;
        poolStats_.drainSweptSpans += drained;
    }
    return drained;
}

void
Heap::repace()
{
    // Next collection when the live heap grows by gcPercent.
    uint64_t next = liveBytes_ +
        liveBytes_ * static_cast<uint64_t>(config_.gcPercent) / 100;
    if (next < config_.minTriggerBytes)
        next = config_.minTriggerBytes;
    if (config_.softLimitBytes > 0) {
        // Soft-limit pacing (the ladder's PaceGC rung): never let the
        // trigger pass the midpoint between live bytes and the limit,
        // so cycles run increasingly early as the limit nears. The
        // one-span floor prevents a trigger-every-allocation thrash
        // once live bytes camp at the limit; sustained over-limit
        // pressure is the FatalReport rung's business, not the
        // pacer's.
        const uint64_t headroom =
            config_.softLimitBytes > liveBytes_
                ? (config_.softLimitBytes - liveBytes_) / 2
                : 0;
        const uint64_t cap =
            liveBytes_ + (headroom > kSpanSize ? headroom : kSpanSize);
        if (next > cap)
            next = cap;
    }
    triggerBytes_ = next;
}

// ---------------------------------------------------------------------------
// Finalizers, pacing, verification
// ---------------------------------------------------------------------------

size_t
Heap::runFinalizers()
{
    size_t ran = 0;
    // Finalizers may allocate or set more finalizers; drain by swap.
    while (!finalizerQueue_.empty()) {
        std::vector<std::function<void()>> batch;
        batch.swap(finalizerQueue_);
        for (auto& fn : batch) {
            fn();
            ++ran;
        }
    }
    return ran;
}

void
Heap::setFinalizer(Object* obj, std::function<void()> fn)
{
    if (!owns(obj))
        support::panic("gc::Heap::setFinalizer: not my object");
    if (!obj->hasFinalizer_)
        finalizerOrder_.push_back(obj);
    obj->hasFinalizer_ = true;
    finalizers_[obj] = std::move(fn);
}

bool
Heap::shouldCollect() const
{
    return liveBytes_ >= triggerBytes_;
}

std::string
Heap::verifyPool() const
{
    uint64_t liveSeen = 0;
    for (const Span* s : spans_) {
        char where[64];
        std::snprintf(where, sizeof(where), "span@%p class %u",
                      static_cast<const void*>(s),
                      unsigned(s->classIdx));
        if (!pagemap_.contains(reinterpret_cast<uintptr_t>(s)))
            return std::string(where) + ": not in pagemap";
        uint32_t words = s->bitmapWords();
        size_t avail = 0;
        for (uint32_t w = 0; w < words; ++w) {
            uint64_t a = s->availBits[w];
            uint64_t l = s->liveBits[w];
            uint64_t p = s->pendingBits[w];
            if ((a & l) || (a & p) || (l & p))
                return std::string(where) +
                       ": avail/live/pending bitmaps overlap";
            uint32_t tail = s->numSlots > w * 64 ? s->numSlots - w * 64
                                                 : 0;
            uint64_t valid = tail >= 64 ? ~uint64_t{0}
                             : tail == 0 ? 0
                                         : (uint64_t{1} << tail) - 1;
            if ((a | l | p) & ~valid)
                return std::string(where) +
                       ": bits set beyond numSlots";
            avail += popcountWord(a);
            liveSeen += popcountWord(l);
        }
        if (avail != s->freeCount)
            return std::string(where) + ": freeCount " +
                   std::to_string(s->freeCount) +
                   " != avail popcount " + std::to_string(avail);
        // Slot reciprocal round-trip over the live slots.
        for (uint32_t w = 0; w < words; ++w) {
            uint64_t bits = s->liveBits[w];
            while (bits) {
                uint32_t slot =
                    w * 64 +
                    static_cast<uint32_t>(__builtin_ctzll(bits));
                bits &= bits - 1;
                if (s->slotIndexOf(s->slotAt(slot)) != slot)
                    return std::string(where) +
                           ": slot reciprocal mismatch at slot " +
                           std::to_string(slot);
            }
        }
    }
    for (const Object* obj = allHead_; obj; obj = obj->allNext_)
        ++liveSeen;
    if (liveSeen != liveObjects_)
        return "pool live popcount " + std::to_string(liveSeen) +
               " != heap liveObjects " + std::to_string(liveObjects_);
    return {};
}

} // namespace golf::gc
