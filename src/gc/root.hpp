/**
 * @file
 * GC root slots and root lists.
 *
 * A RootSlot pins one Object* location as a root of whatever RootList
 * it is registered in. The global heap root list models Go's global
 * data (always marked, which is why Listing 4's global channel defeats
 * detection); each goroutine owns a RootList that models its stack.
 */
#ifndef GOLFCC_GC_ROOT_HPP
#define GOLFCC_GC_ROOT_HPP

#include "support/intrusive_list.hpp"

namespace golf::gc {

class Object;
class Marker;

/** One pinned Object* location. Registered/unregistered by RAII
 *  handles (gc::Local / gc::GlobalRoot in runtime code). */
class RootSlot
{
  public:
    RootSlot() = default;
    explicit RootSlot(Object** slot) : slot_(slot) {}

    Object** slot() const { return slot_; }
    void setSlot(Object** s) { slot_ = s; }

    bool linked() const { return node_.linked(); }
    void unlink() { node_.unlink(); }

    support::IListNode node_;

  private:
    Object** slot_ = nullptr;
};

/** A set of root slots (a goroutine stack, or the heap's globals). */
class RootList
{
  public:
    void add(RootSlot* slot) { slots_.pushBack(slot); }

    bool empty() const { return slots_.empty(); }
    size_t size() const { return slots_.size(); }

    /** Mark every object referenced from a registered slot. */
    void traceInto(Marker& marker) const;

    /** Visit the object held by each registered slot. */
    template <typename Fn>
    void
    forEachRoot(Fn&& fn) const
    {
        slots_.forEach([&](RootSlot* slot) {
            if (slot->slot() && *slot->slot())
                fn(*slot->slot());
        });
    }

  private:
    support::IList<RootSlot, &RootSlot::node_> slots_;
};

} // namespace golf::gc

#endif // GOLFCC_GC_ROOT_HPP
