/**
 * @file
 * Base class for all garbage-collected objects.
 *
 * golfcc uses a precise tracing discipline: every managed object
 * derives from gc::Object and enumerates its outgoing references by
 * overriding trace(). Stack-like references (goroutine shadow stacks,
 * global roots) are registered RootSlots. This mirrors what the Go
 * runtime gets from its pointer bitmaps, and is required for the
 * soundness argument of the paper (Section 4.3): a false positive
 * would reclaim live memory.
 */
#ifndef GOLFCC_GC_OBJECT_HPP
#define GOLFCC_GC_OBJECT_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace golf::gc {

class Heap;
class Marker;

/** Epoch-based mark word: an object is marked iff mark_ == heap epoch. */
class Object
{
  public:
    Object() = default;
    virtual ~Object() = default;

    Object(const Object&) = delete;
    Object& operator=(const Object&) = delete;

    /**
     * Enumerate outgoing references by calling marker.mark() on each.
     * The default has no references.
     */
    virtual void trace(Marker& marker) { (void)marker; }

    /** Debug name used in reports and tests. */
    virtual const char* objectName() const { return "object"; }

    /**
     * Self-check of the object's internal invariants, used by
     * rt::Runtime::verifyInvariants() (chaos mode). Returns an empty
     * string when consistent, else a description of the violation.
     * Must not mutate, allocate or free.
     */
    virtual std::string validate() const { return {}; }

    /**
     * Schedule-relevant state digest for the model checker's state
     * fingerprint (DESIGN.md §12): hash whatever can influence which
     * operations are enabled or how they complete — channel occupancy
     * and closed flag, mutex ownership, waitgroup count. Objects with
     * no schedule-relevant state keep the default 0 so they don't
     * perturb the fingerprint. Must not mutate, allocate or free.
     */
    virtual uint64_t mcFingerprint() const { return 0; }

    /** The heap that owns this object, or nullptr if unmanaged. */
    Heap* heap() const { return heap_; }

    /** Bytes currently charged to this object. May exceed the
     *  object's own footprint: Heap::charge() adds payloads that
     *  live elsewhere (container backing stores). */
    size_t allocSize() const { return allocSize_; }

    /** The object's actual allocation footprint in bytes. */
    size_t baseSize() const { return baseSize_; }

    /** Whether a finalizer is attached (paper Section 5.5). */
    bool hasFinalizer() const { return hasFinalizer_; }

    /// @{ Resurrection poisoning (guard subsystem, DESIGN.md §9).
    /// Set on the B(g) objects of a goroutine declared deadlocked:
    /// any later operation on a poisoned object is a GOLF false
    /// positive — the paper's unsafe.Pointer hazard — which the
    /// runtime detects and heals instead of corrupting wait queues.
    /// By GOLF soundness true positives' B(g) objects are
    /// unreachable and swept the same cycle, so the flag outlives
    /// the cycle only on an actual false positive.
    bool poisoned() const { return poisoned_; }
    void setPoisoned() { poisoned_ = true; }
    void clearPoisoned() { poisoned_ = false; }
    /// @}

  private:
    friend class Heap;
    friend class Marker;
    friend class ParallelMarker;

    Heap* heap_ = nullptr;
    Object* allNext_ = nullptr;   ///< Heap's all-objects list.
    size_t allocSize_ = 0;        ///< Bytes charged to this object.
    size_t baseSize_ = 0;         ///< Actual allocation footprint.
    /**
     * Epoch at which last marked. Atomic because parallel mark
     * workers race to shade the same object; the CAS winner owns
     * greying it (pushes it on a grey stack exactly once). With one
     * mark worker the accesses compile to plain loads/stores.
     */
    std::atomic<uint64_t> markEpoch_{0};
    bool hasFinalizer_ = false;
    bool poisoned_ = false;       ///< Resurrection tripwire (§9).
};

} // namespace golf::gc

#endif // GOLFCC_GC_OBJECT_HPP
