/**
 * @file
 * Base class for all garbage-collected objects.
 *
 * golfcc uses a precise tracing discipline: every managed object
 * derives from gc::Object and enumerates its outgoing references by
 * overriding trace(). Stack-like references (goroutine shadow stacks,
 * global roots) are registered RootSlots. This mirrors what the Go
 * runtime gets from its pointer bitmaps, and is required for the
 * soundness argument of the paper (Section 4.3): a false positive
 * would reclaim live memory.
 */
#ifndef GOLFCC_GC_OBJECT_HPP
#define GOLFCC_GC_OBJECT_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace golf::gc {

class Heap;
class Marker;

/** Epoch-based mark word: an object is marked iff mark_ == heap epoch. */
class Object
{
  public:
    Object() = default;
    virtual ~Object() = default;

    Object(const Object&) = delete;
    Object& operator=(const Object&) = delete;

    /**
     * Enumerate outgoing references by calling marker.mark() on each.
     * The default has no references.
     */
    virtual void trace(Marker& marker) { (void)marker; }

    /**
     * Locality hint paired with trace(): issue prefetches for any
     * out-of-line storage trace() will dereference (container backing
     * arrays, edge vectors). The batched drain loop calls this a few
     * objects before trace() so the backing store's cache miss
     * overlaps other work instead of stalling the pointer chase.
     * Purely advisory — must not mutate state; the default does
     * nothing.
     */
    virtual void prefetchTrace() const {}

    /**
     * Second-stage locality hint: called for a whole trace batch
     * after every prefetchTrace() in it, so storage hinted there has
     * had time to arrive. Implementations walk their (now-resident)
     * reference fields and call gc::prefetchMarkWord() on each trace
     * target, putting the mark-bitmap words mark() will touch in
     * flight. Same rules as prefetchTrace: advisory, no mutation.
     */
    virtual void prefetchTraceTargets() const {}

    /** Debug name used in reports and tests. */
    virtual const char* objectName() const { return "object"; }

    /**
     * Self-check of the object's internal invariants, used by
     * rt::Runtime::verifyInvariants() (chaos mode). Returns an empty
     * string when consistent, else a description of the violation.
     * Must not mutate, allocate or free.
     */
    virtual std::string validate() const { return {}; }

    /**
     * Schedule-relevant state digest for the model checker's state
     * fingerprint (DESIGN.md §12): hash whatever can influence which
     * operations are enabled or how they complete — channel occupancy
     * and closed flag, mutex ownership, waitgroup count. Objects with
     * no schedule-relevant state keep the default 0 so they don't
     * perturb the fingerprint. Must not mutate, allocate or free.
     */
    virtual uint64_t mcFingerprint() const { return 0; }

    /** The heap that owns this object, or nullptr if unmanaged. */
    Heap* heap() const { return heap_; }

    /** Bytes currently charged to this object. May exceed the
     *  object's own footprint: Heap::charge() adds payloads that
     *  live elsewhere (container backing stores). */
    size_t allocSize() const { return allocSize_; }

    /** The object's actual allocation footprint in bytes. */
    size_t baseSize() const { return baseSize_; }

    /**
     * Position in the heap's allocation order (1-based). Backend-
     * independent — the pool and legacy allocators hand out identical
     * sequence numbers for identical programs — so it is what the
     * model checker's state fingerprint orders objects by instead of
     * raw (allocator-dependent) addresses.
     */
    uint64_t allocSeq() const { return allocSeq_; }

    /** Whether this object lives in a pool span (mark state in the
     *  span bitmap) or was individually allocated (mark epoch). */
    bool pooled() const { return pooled_; }

    /** Whether a finalizer is attached (paper Section 5.5). */
    bool hasFinalizer() const { return hasFinalizer_; }

    /// @{ Resurrection poisoning (guard subsystem, DESIGN.md §9).
    /// Set on the B(g) objects of a goroutine declared deadlocked:
    /// any later operation on a poisoned object is a GOLF false
    /// positive — the paper's unsafe.Pointer hazard — which the
    /// runtime detects and heals instead of corrupting wait queues.
    /// By GOLF soundness true positives' B(g) objects are
    /// unreachable and swept the same cycle, so the flag outlives
    /// the cycle only on an actual false positive.
    bool poisoned() const { return poisoned_; }
    void setPoisoned() { poisoned_ = true; }
    void clearPoisoned() { poisoned_ = false; }
    /// @}

  private:
    friend class Heap;
    friend class Marker;
    friend class ParallelMarker;

    Heap* heap_ = nullptr;
    Object* allNext_ = nullptr;   ///< Heap's all-objects list.
    size_t allocSize_ = 0;        ///< Bytes charged to this object.
    size_t baseSize_ = 0;         ///< Actual allocation footprint.
    /**
     * Epoch at which last marked. Atomic because parallel mark
     * workers race to shade the same object; the CAS winner owns
     * greying it (pushes it on a grey stack exactly once). With one
     * mark worker the accesses compile to plain loads/stores.
     */
    std::atomic<uint64_t> markEpoch_{0};
    uint64_t allocSeq_ = 0;       ///< Heap allocation order (1-based).
    bool hasFinalizer_ = false;
    bool poisoned_ = false;       ///< Resurrection tripwire (§9).
    /** True for pool-span slots: mark state lives in the span bitmap
     *  and the slot is recycled at sweep instead of delete'd. */
    bool pooled_ = false;
};

} // namespace golf::gc

#endif // GOLFCC_GC_OBJECT_HPP
