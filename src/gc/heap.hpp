/**
 * @file
 * The managed heap: allocation, sweep, pacing, finalizers, globals.
 *
 * The heap knows nothing about goroutines; the collection *cycle*
 * (root selection, mark iterations, deadlock detection) is driven by
 * golf::Collector, which owns the policy differences between the
 * ordinary Go GC and the GOLF extension.
 *
 * Two allocation backends (HeapConfig::backend, DESIGN.md §13):
 *
 *   Pool (default)  size-class segregated spans (gc/span.hpp): slot
 *                   reservation from per-class bitmap spans, mark
 *                   state in per-span bitmaps, slots recycled by a
 *                   lazy sweep instead of returned to the OS.
 *   Legacy          the historical one-`new`-per-object scheme with
 *                   per-object mark epochs.
 *
 * Both backends produce byte-identical MemStats, GOLF reports, race
 * verdicts and mc fingerprints for identical programs — the
 * differential suite in tests/alloc_diff_test.cpp pins this. The
 * determinism argument: every externally visible quantity is a
 * function of which objects exist, their charged sizes and their
 * allocation *order*, none of which the backend changes; addresses
 * never escape into reports or fingerprints.
 */
#ifndef GOLFCC_GC_HEAP_HPP
#define GOLFCC_GC_HEAP_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gc/memstats.hpp"
#include "gc/object.hpp"
#include "gc/root.hpp"
#include "gc/span.hpp"

namespace golf::gc {

class ParallelMarker;

/** Allocation backend selector (chaos_runner/golf_tester -alloc). */
enum class AllocBackend : uint8_t {
    Pool,   ///< Size-class span allocator (default).
    Legacy, ///< Per-object new/delete, per-object mark epochs.
};

/** Pacing and debugging knobs. */
struct HeapConfig
{
    /** GOGC analog: grow the trigger by this percentage of the live
     *  heap after each cycle. */
    int gcPercent = 100;
    /** Collection is first requested at this live size. */
    uint64_t minTriggerBytes = 256 * 1024;
    /** Fill freed memory with 0xDD to catch use-after-sweep. */
    bool poisonFreed = true;
    /** Allocator backend; Legacy exists for differential testing. */
    AllocBackend backend = AllocBackend::Pool;
    /**
     * Soft heap limit in modeled bytes (GOMEMLIMIT analog; 0 = off).
     * Caps the pacing trigger at the midpoint between live bytes and
     * the limit, so collection — and GOLF detection with it — runs
     * increasingly early as the limit nears. Enforcement beyond
     * pacing (scavenge, forced detection, shedding, fatal report) is
     * the runtime's memory-pressure ladder (mem/pressure.hpp).
     * Accounted in modeled bytes, so enabling it keeps every
     * transparency surface byte-identical across gcWorkers counts
     * and allocator backends.
     */
    uint64_t softLimitBytes = 0;
    /** Retired-span reuse cache cap, in spans (16 MiB of 64 KiB
     *  spans). Beyond it a retiring span is released to the OS
     *  instead of cached, so one churn spike no longer holds the peak
     *  span count forever. Sized above steady-state churn working
     *  sets: every eviction costs a munmap now and an mmap at the
     *  next acquisition. */
    size_t retiredCacheCap = 256;
};

class Heap
{
  public:
    explicit Heap(HeapConfig config = {});
    ~Heap();

    Heap(const Heap&) = delete;
    Heap& operator=(const Heap&) = delete;

    /** Allocate a managed T (derived from Object). */
    template <typename T, typename... Args>
    T*
    make(Args&&... args)
    {
        // The pre-allocation hook may throw (simulated OOM under
        // fault injection) — before anything is constructed.
        if (allocHook_)
            allocHook_(sizeof(T));
        if (config_.backend == AllocBackend::Legacy) {
            T* obj = new T(std::forward<Args>(args)...);
            adopt(obj, sizeof(T));
            return obj;
        }
        // Pool path: reserve the slot, then construct in place. A
        // throwing constructor returns the slot before rethrowing;
        // the object becomes live (liveBits, accounting) only after
        // construction succeeds.
        void* mem = poolAllocate(sizeof(T));
        if (!mem) {
            // Span acquisition failed (injected mmap failure): fall
            // back to the legacy path. The object lives on the
            // adopted chain with epoch marks — invisible to every
            // determinism surface, which accounts objects and sizes,
            // never storage.
            T* obj = new T(std::forward<Args>(args)...);
            adopt(obj, sizeof(T));
            return obj;
        }
        T* obj;
        try {
            obj = new (mem) T(std::forward<Args>(args)...);
        } catch (...) {
            poolUnallocate(mem);
            throw;
        }
        finishPoolAdopt(obj, sizeof(T));
        return obj;
    }

    /** Install a hook consulted before every managed allocation. */
    void
    setAllocHook(std::function<void(size_t)> hook)
    {
        allocHook_ = std::move(hook);
    }

    /**
     * Install a hook invoked just before an object is destroyed —
     * both at sweep and at heap teardown. Used by the race detector
     * to drop shadow state for the freed address range before it can
     * be reused by a later allocation. Under the pool backend reuse
     * is the *common* case (the next same-class allocation), so this
     * firing exactly once per destruction is what keeps stale shadow
     * words from bleeding into the slot's next tenant.
     */
    void
    setFreeHook(std::function<void(Object*)> hook)
    {
        freeHook_ = std::move(hook);
    }

    /**
     * Install a hook consulted whenever a fresh span must be mapped
     * from the OS (cache misses in newSpan/allocateLarge). Returning
     * true simulates an mmap failure (FaultKind::SpanMap): the pool
     * allocation returns null and make() falls back to the legacy
     * backend path for that object.
     */
    void
    setSpanFaultHook(std::function<bool()> hook)
    {
        spanFaultHook_ = std::move(hook);
    }

    /**
     * Replace the span-release seam used by the scavenger and the
     * retired-cache eviction (default: munmap). Tests fake it to
     * withhold the unmap and prove released chunks are never served
     * again; a faked seam owns the chunk from then on.
     */
    void
    setReleaseSeam(std::function<void(void*, size_t)> seam)
    {
        releaseSeam_ = std::move(seam);
    }

    /** The default seam body: return the chunk to the OS. */
    static void osRelease(void* p, size_t bytes);

    /**
     * Release cached retired spans beyond `keepSpans` back to the OS
     * through the release seam (the ladder's Scavenge rung). Returns
     * the number of spans released. Deterministic: the cache is a
     * LIFO fed by the (deterministic) sweep order.
     */
    size_t scavenge(size_t keepSpans);

    /** High-water mark of liveBytes() — modeled, so identical across
     *  backends and worker counts. */
    uint64_t peakLiveBytes() const { return peakLiveBytes_; }

    /** Visit every live object; fn must not allocate or free. Pool
     *  objects come first in span-creation/slot order, then the
     *  adopted/legacy chain — deterministic for a deterministic
     *  allocation sequence, but *not* backend-independent (order by
     *  Object::allocSeq() where that matters, as mc does). */
    template <typename Fn>
    void
    forEachObject(Fn&& fn) const
    {
        for (const Span* s : spans_) {
            uint32_t words = s->bitmapWords();
            for (uint32_t w = 0; w < words; ++w) {
                uint64_t bits = s->liveBits[w];
                while (bits) {
                    uint32_t slot =
                        w * 64 +
                        static_cast<uint32_t>(__builtin_ctzll(bits));
                    bits &= bits - 1;
                    fn(static_cast<Object*>(s->slotAt(slot)));
                }
            }
        }
        for (Object* obj = allHead_; obj; obj = obj->allNext_)
            fn(obj);
    }

    /** Register an externally constructed object with this heap,
     *  charging `bytes` to it. Takes ownership. Externally adopted
     *  objects always use the legacy chain + epoch marks, whichever
     *  backend the heap's own allocations use. */
    void adopt(Object* obj, size_t bytes);

    /** Charge extra bytes to an object (e.g. container growth). */
    void charge(Object* obj, size_t bytes);

    /** Whether this heap manages obj. */
    bool owns(const Object* obj) const
    {
        return obj && obj->heap_ == this;
    }

    /// @{ Mark state, relative to the current cycle.
    uint64_t epoch() const { return epoch_; }
    bool isMarked(const Object* obj) const
    {
        if (obj->pooled_)
            return spanMarked(obj);
        return obj->markEpoch_.load(std::memory_order_relaxed) ==
               epoch_;
    }
    /// @}

    /**
     * Begin a collection cycle: bump the epoch, whiten every object
     * (pool spans additionally drain any lazy-sweep remainder and
     * clear their mark bitmaps) and return a marker. Phase sequencing
     * beyond this is the collector's job.
     */
    Marker beginCycle();

    /**
     * Begin a collection cycle marked by the persistent worker pool
     * instead of a standalone marker. The pool is created on first
     * use (and recreated if `workers` changes); its coordinator view
     * is what the collector marks and sweeps through. workers == 1
     * behaves exactly like beginCycle().
     */
    ParallelMarker& beginCycleParallel(int workers);

    /** The worker pool, if beginCycleParallel has ever run. */
    ParallelMarker* markerPool() { return markerPool_.get(); }

    /**
     * Sweep: destroy every white object. Objects with finalizers are
     * resurrected instead (marked, finalizer queued and detached),
     * matching Go's one-cycle-of-grace finalizer semantics.
     *
     * Destructors, the free hook, poisoning and MemStats accounting
     * all happen here, eagerly, for both backends — that is what
     * keeps the two byte-identical. What the pool backend defers
     * (the "lazy" in lazy sweep) is storage reintegration: a span
     * with dead slots parks in PendingSweep and rejoins the
     * allocatable sets on the first allocation that needs it, or at
     * the latest in the sweepRemainder() drain before the next cycle.
     * Returns the number of objects freed.
     */
    size_t sweep(Marker& marker);

    /**
     * Drain the lazy-sweep remainder: reintegrate every span still
     * in PendingSweep (golf::Collector calls this before starting the
     * next cycle; beginCycle* also runs it defensively). Returns the
     * number of spans processed.
     */
    size_t sweepRemainder();

    /** Run queued finalizers; returns how many ran. */
    size_t runFinalizers();

    /** Attach a finalizer to obj (SetFinalizer analog). Finalizer
     *  grace passes visit objects in registration order — a backend-
     *  independent order, unlike the all-objects chain. */
    void setFinalizer(Object* obj, std::function<void()> fn);

    /** Whether the live heap has outgrown the pacing trigger. */
    bool shouldCollect() const;

    /** Global data roots (Go's g0-referenced globals, Section 4). */
    RootList& globalRoots() { return globalRoots_; }

    /// @{ Statistics.
    MemStats& stats() { return stats_; }
    const MemStats& stats() const { return stats_; }
    uint64_t liveBytes() const { return liveBytes_; }
    uint64_t liveObjects() const { return liveObjects_; }
    /** Pool-backend-only counters (all zero under Legacy). */
    const PoolStats& poolStats() const { return poolStats_; }
    /// @}

    /** All pool spans in creation order (introspection for the fuzz
     *  oracle and the alloc bench; do not mutate). */
    const std::vector<Span*>& spans() const { return spans_; }

    /**
     * Check every pool invariant: bitmap disjointness/coverage,
     * freeCount == popcount(availBits), per-span live popcount sums
     * to liveObjects(), pagemap membership, slot reciprocal
     * round-trip. Returns an empty string when consistent, else a
     * description of the first violation. Wired into
     * rt::Runtime::verifyInvariants() so every chaos -verify run
     * exercises it.
     */
    std::string verifyPool() const;

    /** The membership map consulted by Marker's pool fast path;
     *  null under the Legacy backend. */
    const PageMap* poolPagemap() const
    {
        return config_.backend == AllocBackend::Pool ? &pagemap_
                                                     : nullptr;
    }

    const HeapConfig& config() const { return config_; }

  private:
    friend class Marker;

    /** Per-size-class allocation state. A span is referenced by at
     *  most one of: cur, partial, pending (or floats unreferenced
     *  when full); spans_ always holds every span. */
    struct SizeClassState
    {
        Span* cur = nullptr;          ///< Actively allocating span.
        std::vector<Span*> partial;   ///< InUse with free slots.
        std::vector<Span*> pending;   ///< Awaiting lazy sweep.
    };

    /// @{ Pool internals (heap.cpp).
    void* poolAllocate(size_t bytes);
    void poolUnallocate(void* mem);
    void finishPoolAdopt(Object* obj, size_t bytes);
    void* allocateLarge(size_t bytes);
    Span* allocSlowPath(int classIdx);
    Span* newSpan(int classIdx);
    uint32_t takeSlot(Span* s);
    /** Merge pendingBits into availBits; InUse again. */
    void integrateSpan(Span* s);
    /** Remove a fully free span from service into the span cache. */
    void retireSpan(Span* s);
    size_t sweepSpans(const Marker& marker);
    size_t sweepChain(const Marker& marker);
    void freeLargeSpan(Span* s);
    void whitenPool();
    void repace();
    /** Park a whole 64 KiB chunk in the retired cache, or release it
     *  (through the seam) when the cache is at its cap. */
    void cacheOrEvict(void* mem);
    /** Seam dispatch for a 64 KiB chunk leaving the heap. */
    void releaseChunk(void* mem);
    /// @}

    HeapConfig config_;
    Object* allHead_ = nullptr; ///< Adopted/legacy objects chain.
    uint64_t epoch_ = 1;
    uint64_t liveBytes_ = 0;
    uint64_t liveObjects_ = 0;
    uint64_t allocSeq_ = 0;
    uint64_t triggerBytes_;
    uint64_t peakLiveBytes_ = 0;
    MemStats stats_;
    PoolStats poolStats_;
    std::unique_ptr<ParallelMarker> markerPool_;
    RootList globalRoots_;
    std::function<void(size_t)> allocHook_;
    std::function<void(Object*)> freeHook_;
    std::function<bool()> spanFaultHook_;
    std::function<void(void*, size_t)> releaseSeam_;
    std::unordered_map<Object*, std::function<void()>> finalizers_;
    /** Finalizer-bearing objects in registration order (the order
     *  grace passes use, so both backends resurrect identically). */
    std::vector<Object*> finalizerOrder_;
    std::vector<std::function<void()>> finalizerQueue_;

    /// @{ Pool state.
    PageMap pagemap_;
    std::vector<Span*> spans_; ///< Every span, creation order.
    std::array<SizeClassState, kNumSizeClasses> classes_;
    std::vector<void*> freeSpans_; ///< Retired 64 KiB chunks.
    /// @}
};

/** RAII global root handle (module-level `var ch = make(...)`). */
template <typename T>
class GlobalRoot
{
  public:
    GlobalRoot(Heap& heap, T* obj = nullptr)
        : obj_(obj), slot_(reinterpret_cast<Object**>(&obj_))
    {
        heap.globalRoots().add(&slot_);
    }

    ~GlobalRoot()
    {
        if (slot_.linked())
            slot_.unlink();
    }

    GlobalRoot(const GlobalRoot&) = delete;
    GlobalRoot& operator=(const GlobalRoot&) = delete;

    T* get() const { return obj_; }
    T* operator->() const { return obj_; }
    T& operator*() const { return *obj_; }
    void set(T* obj) { obj_ = obj; }
    explicit operator bool() const { return obj_ != nullptr; }

  private:
    T* obj_;
    RootSlot slot_;
};

} // namespace golf::gc

#endif // GOLFCC_GC_HEAP_HPP
