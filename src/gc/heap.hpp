/**
 * @file
 * The managed heap: allocation, sweep, pacing, finalizers, globals.
 *
 * The heap knows nothing about goroutines; the collection *cycle*
 * (root selection, mark iterations, deadlock detection) is driven by
 * golf::Collector, which owns the policy differences between the
 * ordinary Go GC and the GOLF extension.
 */
#ifndef GOLFCC_GC_HEAP_HPP
#define GOLFCC_GC_HEAP_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gc/memstats.hpp"
#include "gc/object.hpp"
#include "gc/root.hpp"

namespace golf::gc {

class ParallelMarker;

/** Pacing and debugging knobs. */
struct HeapConfig
{
    /** GOGC analog: grow the trigger by this percentage of the live
     *  heap after each cycle. */
    int gcPercent = 100;
    /** Collection is first requested at this live size. */
    uint64_t minTriggerBytes = 256 * 1024;
    /** Fill freed memory with 0xDD to catch use-after-sweep. */
    bool poisonFreed = true;
};

class Heap
{
  public:
    explicit Heap(HeapConfig config = {});
    ~Heap();

    Heap(const Heap&) = delete;
    Heap& operator=(const Heap&) = delete;

    /** Allocate a managed T (derived from Object). */
    template <typename T, typename... Args>
    T*
    make(Args&&... args)
    {
        // The pre-allocation hook may throw (simulated OOM under
        // fault injection) — before anything is constructed.
        if (allocHook_)
            allocHook_(sizeof(T));
        T* obj = new T(std::forward<Args>(args)...);
        adopt(obj, sizeof(T));
        return obj;
    }

    /** Install a hook consulted before every managed allocation. */
    void
    setAllocHook(std::function<void(size_t)> hook)
    {
        allocHook_ = std::move(hook);
    }

    /**
     * Install a hook invoked just before an object is destroyed —
     * both at sweep and at heap teardown. Used by the race detector
     * to drop shadow state for the freed address range before it can
     * be reused by a later allocation.
     */
    void
    setFreeHook(std::function<void(Object*)> hook)
    {
        freeHook_ = std::move(hook);
    }

    /** Visit every live object (the all-objects list); fn must not
     *  allocate or free. */
    template <typename Fn>
    void
    forEachObject(Fn&& fn) const
    {
        for (Object* obj = allHead_; obj; obj = obj->allNext_)
            fn(obj);
    }

    /** Register an externally constructed object with this heap,
     *  charging `bytes` to it. Takes ownership. */
    void adopt(Object* obj, size_t bytes);

    /** Charge extra bytes to an object (e.g. container growth). */
    void charge(Object* obj, size_t bytes);

    /** Whether this heap manages obj. */
    bool owns(const Object* obj) const
    {
        return obj && obj->heap_ == this;
    }

    /// @{ Mark state, relative to the current epoch.
    uint64_t epoch() const { return epoch_; }
    bool isMarked(const Object* obj) const
    {
        return obj->markEpoch_.load(std::memory_order_relaxed) ==
               epoch_;
    }
    /// @}

    /**
     * Begin a collection cycle: bump the epoch (which whitens every
     * object) and return a marker. Phase sequencing beyond this is
     * the collector's job.
     */
    Marker beginCycle();

    /**
     * Begin a collection cycle marked by the persistent worker pool
     * instead of a standalone marker. The pool is created on first
     * use (and recreated if `workers` changes); its coordinator view
     * is what the collector marks and sweeps through. workers == 1
     * behaves exactly like beginCycle().
     */
    ParallelMarker& beginCycleParallel(int workers);

    /** The worker pool, if beginCycleParallel has ever run. */
    ParallelMarker* markerPool() { return markerPool_.get(); }

    /**
     * Sweep: destroy every white object. Objects with finalizers are
     * resurrected instead (marked, finalizer queued and detached),
     * matching Go's one-cycle-of-grace finalizer semantics.
     * Returns the number of objects freed.
     */
    size_t sweep(Marker& marker);

    /** Run queued finalizers; returns how many ran. */
    size_t runFinalizers();

    /** Attach a finalizer to obj (SetFinalizer analog). */
    void setFinalizer(Object* obj, std::function<void()> fn);

    /** Whether the live heap has outgrown the pacing trigger. */
    bool shouldCollect() const;

    /** Global data roots (Go's g0-referenced globals, Section 4). */
    RootList& globalRoots() { return globalRoots_; }

    /// @{ Statistics.
    MemStats& stats() { return stats_; }
    const MemStats& stats() const { return stats_; }
    uint64_t liveBytes() const { return liveBytes_; }
    uint64_t liveObjects() const { return liveObjects_; }
    /// @}

    const HeapConfig& config() const { return config_; }

  private:
    HeapConfig config_;
    Object* allHead_ = nullptr;     ///< Singly-linked all-objects list.
    uint64_t epoch_ = 1;
    uint64_t liveBytes_ = 0;
    uint64_t liveObjects_ = 0;
    uint64_t triggerBytes_;
    MemStats stats_;
    std::unique_ptr<ParallelMarker> markerPool_;
    RootList globalRoots_;
    std::function<void(size_t)> allocHook_;
    std::function<void(Object*)> freeHook_;
    std::unordered_map<Object*, std::function<void()>> finalizers_;
    std::vector<std::function<void()>> finalizerQueue_;
};

/** RAII global root handle (module-level `var ch = make(...)`). */
template <typename T>
class GlobalRoot
{
  public:
    GlobalRoot(Heap& heap, T* obj = nullptr)
        : obj_(obj), slot_(reinterpret_cast<Object**>(&obj_))
    {
        heap.globalRoots().add(&slot_);
    }

    ~GlobalRoot()
    {
        if (slot_.linked())
            slot_.unlink();
    }

    GlobalRoot(const GlobalRoot&) = delete;
    GlobalRoot& operator=(const GlobalRoot&) = delete;

    T* get() const { return obj_; }
    T* operator->() const { return obj_; }
    T& operator*() const { return *obj_; }
    void set(T* obj) { obj_ = obj; }
    explicit operator bool() const { return obj_ != nullptr; }

  private:
    T* obj_;
    RootSlot slot_;
};

} // namespace golf::gc

#endif // GOLFCC_GC_HEAP_HPP
