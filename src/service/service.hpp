/**
 * @file
 * The controlled service of Table 2 (Section 6.2, "Services under
 * controlled settings").
 *
 * The paper's setup, rebuilt faithfully: a server whose endpoint
 * makes one downstream RPC and processes a DAG of sub-tasks in
 * parallel; each request spawns a child goroutine, parent and child
 * communicate over two channels, each side allocates a 100K-entry
 * hash map; the parent waits with a select over both channels and
 * returns on the first message. The child may "double send" — send
 * on both channels one after another — so when the parent has already
 * returned, the second send deadlocks the child, pinning its map
 * (the leak the experiment injects in 0% / 10% of requests). A
 * closed-loop client with N connections drives the server for a
 * fixed duration after a warm-up.
 */
#ifndef GOLFCC_SERVICE_SERVICE_HPP
#define GOLFCC_SERVICE_SERVICE_HPP

#include "gc/memstats.hpp"
#include "runtime/runtime.hpp"
#include "service/metrics.hpp"

namespace golf::service {

/** A request-scope allocation standing in for the 100K-entry map. */
class BigMap : public gc::Object
{
  public:
    explicit BigMap(size_t entries) : data_(entries, 0) {}

    size_t entries() const { return data_.size(); }

    const char* objectName() const override { return "map[100K]"; }

  private:
    std::vector<int64_t> data_;
};

struct ServiceConfig
{
    int procs = 8;                  ///< Paper: 8 server cores.
    uint64_t seed = 1;
    rt::GcMode gcMode = rt::GcMode::Golf;
    rt::Recovery recovery = rt::Recovery::Reclaim;
    /** Run detection only every Nth GC cycle (Section 6.2). */
    int detectEveryN = 1;
    /** GC mark workers (rt::Config::gcWorkers): 0 = auto, 1 =
     *  serial. Table 2 metrics are identical for every value. */
    int gcWorkers = 0;
    /** Fraction of requests whose child double-sends (0.0 / 0.10). */
    double leakRate = 0.0;
    int connections = 32;           ///< Concurrent closed-loop conns.
    support::VTime warmup = 5 * support::kSecond;
    support::VTime duration = 30 * support::kSecond;
    /** Entries per request-scope map (paper: 100K). */
    size_t mapEntries = 100000;
    /** Downstream RPC latency model (normal, ms). */
    double rpcLatencyMeanMs = 250.0;
    double rpcLatencyStddevMs = 50.0;
    /** Parallel DAG sub-tasks per request. */
    int dagTasks = 4;
    support::VTime dagTaskCost = 10 * support::kMillisecond;
};

/** The Table 2 column set for one run. */
struct ControlledResult
{
    // Client side.
    double throughputRps = 0;
    LatencySummary latency;
    // Server side (MemStats names as in the paper).
    uint64_t stackInuse = 0;
    uint64_t heapAlloc = 0;
    uint64_t heapInuse = 0;
    uint64_t heapObjects = 0;
    double gcCpuFraction = 0;
    uint64_t pauseTotalNs = 0;
    uint64_t numGC = 0;
    double pausePerCycleNs = 0;
    // GOLF bookkeeping.
    size_t deadlocksDetected = 0;
    size_t requestsServed = 0;
    // Collector parallelism (not a Table 2 column; recorded so runs
    // at different gcWorkers are distinguishable in logs).
    int gcWorkers = 1;
    uint64_t parallelMarkJobs = 0;
};

/** Run the controlled client/server experiment once. */
ControlledResult runControlledService(const ServiceConfig& config);

} // namespace golf::service

#endif // GOLFCC_SERVICE_SERVICE_HPP
