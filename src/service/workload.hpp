/**
 * @file
 * Long-running production-service simulation: the substrate behind
 * Figure 1 (blocked goroutines over weeks, with weekday redeploys),
 * Table 3 (32-hour latency/CPU comparison under diurnal traffic) and
 * RQ1(c) (24-hour deployment that caught 252 partial deadlocks from
 * three programming errors).
 *
 * Requests arrive open-loop with a diurnal rate; a small set of
 * endpoints carries Listing 7-style bugs ("async task whose done
 * channel the handler drops") that leak with a per-endpoint
 * probability. Metrics are sampled on a fixed virtual period, like
 * the paper's three-minute emission.
 */
#ifndef GOLFCC_SERVICE_WORKLOAD_HPP
#define GOLFCC_SERVICE_WORKLOAD_HPP

#include <vector>

#include "golf/report.hpp"
#include "runtime/runtime.hpp"
#include "service/metrics.hpp"

namespace golf::service {

/** One buggy endpoint: requests leak with this probability. */
struct LeakEndpoint
{
    /** Which of the three distinct buggy code paths this endpoint
     *  exercises (0-2): distinct spawn sites in the source. */
    int bugSite = 0;
    double leakProbability = 0.0;
    /** Share of the traffic hitting this endpoint. */
    double trafficShare = 0.0;
};

struct ProductionConfig
{
    uint64_t seed = 1;
    int procs = 8;
    rt::GcMode gcMode = rt::GcMode::Golf;
    rt::Recovery recovery = rt::Recovery::Reclaim;
    support::VTime duration = 24 * support::kHour;
    /** Mean request rate (requests per second) at the diurnal peak
     *  trough midpoint. */
    double baseRps = 2.0;
    /** Diurnal modulation amplitude in [0,1). */
    double diurnalAmplitude = 0.5;
    /** Buggy endpoints (empty = healthy service). */
    std::vector<LeakEndpoint> endpoints;
    /** Metric sampling period (paper: 3 minutes). */
    support::VTime samplePeriod = 3 * support::kMinute;
    /** Request handler latency model (ms). */
    double handlerLatencyMeanMs = 45.0;
    double handlerLatencyStddevMs = 20.0;
};

/** Output of one simulated deployment. */
struct ProductionResult
{
    /** Per-sample P50/P99 latency (ms) and CPU utilization (%). */
    support::Samples p50Samples;
    support::Samples p99Samples;
    support::Samples cpuSamples;
    /** Blocked-goroutine count over time (Figure 1 series). */
    TimeSeries blockedSeries{"blocked_goroutines", {}};
    /** Individual partial-deadlock reports (RQ1(c)). */
    size_t deadlocksDetected = 0;
    /** Deduplicated report keys (the "three programming errors"). */
    size_t dedupReports = 0;
    size_t requestsServed = 0;
    bool ok = false;
};

/** Run one deployment of the simulated production service. */
ProductionResult runProductionService(const ProductionConfig& config);

/**
 * Figure 1: simulate `days` days of a leaky service under the
 * ordinary runtime (no GOLF), redeploying every weekday morning but
 * not on weekends. Returns the stitched blocked-goroutine series.
 */
TimeSeries runFigure1Deployment(uint64_t seed, int days,
                                double leakProbability);

} // namespace golf::service

#endif // GOLFCC_SERVICE_WORKLOAD_HPP
