/**
 * @file
 * Client-side resilience policies extracted from the guard service
 * (and reused by the cluster link layer): exponential backoff with
 * seeded jitter and a consecutive-failure circuit breaker.
 *
 * Both are plain value types over virtual time so tests can assert
 * the exact schedule a seed produces without running a service:
 * one Rng draw per backoff() call, schedules deterministic per seed,
 * backoff capped at `cap` before the proportional jitter is added.
 */
#ifndef GOLFCC_SERVICE_RETRY_HPP
#define GOLFCC_SERVICE_RETRY_HPP

#include "support/rng.hpp"
#include "support/vclock.hpp"

namespace golf::service {

/** Exponential backoff: base << attempt, capped, plus seeded jitter
 *  of up to half the capped value. */
struct BackoffPolicy
{
    support::VTime base = 50 * support::kMillisecond;
    support::VTime cap = 5 * support::kSecond;

    /** Deterministic: exactly one rng draw per call. */
    support::VTime
    backoff(int attempt, support::Rng& rng) const
    {
        // Shift overflow (attempt >= 63) or wraparound both land on
        // the cap; so does any value that grew past it.
        support::VTime b =
            attempt >= 62 ? cap : base << attempt;
        if (b <= 0 || b > cap)
            b = cap;
        b += static_cast<support::VTime>(
            rng.nextBelow(static_cast<uint64_t>(b / 2 + 1)));
        return b;
    }
};

/** Count-based circuit breaker: opens after `window` consecutive
 *  failures, sheds until `cooldown` has elapsed, then re-admits
 *  (half-open is collapsed into "closed with a clean window"). */
struct CircuitBreaker
{
    int window = 5;
    support::VTime cooldown = 1 * support::kSecond;

    int consecutiveFailures = 0;
    bool open = false;
    support::VTime reopenAt = 0;

    /** Admission check; a due cool-down closes the breaker. */
    bool
    allow(support::VTime now)
    {
        if (open && now >= reopenAt) {
            open = false;
            consecutiveFailures = 0;
        }
        return !open;
    }

    /** Record a request outcome. Returns true when this failure
     *  transitioned the breaker to open (for metrics). */
    bool
    onResult(bool ok, support::VTime now)
    {
        if (ok) {
            consecutiveFailures = 0;
            return false;
        }
        if (++consecutiveFailures >= window && !open) {
            open = true;
            reopenAt = now + cooldown;
            return true;
        }
        return false;
    }
};

} // namespace golf::service

#endif // GOLFCC_SERVICE_RETRY_HPP
