#include "service/service.hpp"

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "sync/waitgroup.hpp"

namespace golf::service {
namespace {

using chan::Channel;
using chan::Unit;
using chan::makeChan;
using support::VTime;
using support::kMillisecond;
using support::kSecond;

struct ServiceState
{
    rt::Runtime* rt = nullptr;
    const ServiceConfig* cfg = nullptr;
    support::Rng rng{1};
    support::Samples latenciesMs;
    size_t served = 0;
    VTime warmupEnd = 0;
    VTime end = 0;
};

/** Allocate one request-scope map, charging its payload bytes. */
BigMap*
makeMap(ServiceState* s)
{
    BigMap* map = s->rt->make<BigMap>(s->cfg->mapEntries);
    // Charge what a Go map of this size occupies (~48 B/entry with
    // bucket overhead); the backing vector models the payload only.
    s->rt->heap().charge(map, s->cfg->mapEntries * 48);
    return map;
}

/** One DAG sub-task: parallel work, then Done. */
rt::Go
dagWorker(ServiceState* s, sync::WaitGroup* wg)
{
    co_await rt::sleepFor(s->cfg->dagTaskCost);
    wg->done();
    co_return;
}

/** The child goroutine of each request. On the leaky path it sends
 *  on both channels one after another — the "double send" pattern
 *  (Saioc et al. CGO'24) — and the second send deadlocks because the
 *  parent consumed only the first message and returned. */
rt::Go
childTask(ServiceState* s, Channel<Unit>* ch1, Channel<Unit>* ch2,
          int doubleSend)
{
    gc::Local<BigMap> childMap(makeMap(s));
    rt::busy(200 * support::kMicrosecond); // child computation
    co_await chan::send(ch1, Unit{});
    if (doubleSend)
        co_await chan::send(ch2, Unit{}); // leaks: parent is gone
    co_return;
}

/** One request, server side. */
rt::Task<void>
handleRequest(ServiceState* s)
{
    // One downstream RPC.
    double rpcMs = s->rng.nextGaussian(s->cfg->rpcLatencyMeanMs,
                                       s->cfg->rpcLatencyStddevMs);
    if (rpcMs < 1.0)
        rpcMs = 1.0;
    co_await rt::ioWait(static_cast<VTime>(rpcMs * kMillisecond));

    // A DAG of sub-tasks processed in parallel.
    gc::Local<sync::WaitGroup> wg(s->rt->make<sync::WaitGroup>(*s->rt));
    for (int i = 0; i < s->cfg->dagTasks; ++i) {
        wg->add(1);
        GOLF_GO(*s->rt, dagWorker, s, wg.get());
    }
    co_await wg->wait();

    // Parent allocation + parent/child channel protocol.
    gc::Local<BigMap> parentMap(makeMap(s));
    gc::Local<Channel<Unit>> ch1(makeChan<Unit>(*s->rt, 0));
    gc::Local<Channel<Unit>> ch2(makeChan<Unit>(*s->rt, 0));
    const int leak = s->rng.chance(s->cfg->leakRate) ? 1 : 0;
    GOLF_GO(*s->rt, childTask, s, ch1.get(), ch2.get(), leak);
    co_await chan::select(chan::recvCase(ch1.get()),
                          chan::recvCase(ch2.get()));
    co_return;
}

/** One closed-loop client connection. */
rt::Go
clientConnection(ServiceState* s)
{
    rt::Runtime& rt = *s->rt;
    while (rt.clock().now() < s->end) {
        VTime t0 = rt.clock().now();
        co_await handleRequest(s);
        VTime t1 = rt.clock().now();
        ++s->served;
        if (t0 >= s->warmupEnd) {
            s->latenciesMs.add(static_cast<double>(t1 - t0) /
                               kMillisecond);
        }
        // Client-side think/serialization time.
        co_await rt::sleepFor(170 * kMillisecond);
    }
    co_return;
}

rt::Go
serviceMain(ServiceState* s)
{
    rt::Runtime& rt = *s->rt;
    s->warmupEnd = rt.clock().now() + s->cfg->warmup;
    s->end = s->warmupEnd + s->cfg->duration;
    for (int i = 0; i < s->cfg->connections; ++i)
        GOLF_GO(rt, clientConnection, s);
    while (rt.clock().now() < s->end)
        co_await rt::sleepFor(kSecond);
    co_return;
}

} // namespace

ControlledResult
runControlledService(const ServiceConfig& config)
{
    rt::Config rc;
    rc.procs = config.procs;
    rc.seed = config.seed;
    rc.gcMode = config.gcMode;
    rc.recovery = config.recovery;
    rc.detectEveryN = config.detectEveryN;
    rc.gcWorkers = config.gcWorkers;
    // A service-sized heap: do not collect for every little burst.
    rc.heap.minTriggerBytes = 8 * 1024 * 1024;

    rt::Runtime runtime(rc);
    ServiceState state;
    state.rt = &runtime;
    state.cfg = &config;
    state.rng = support::Rng(config.seed ^ 0x5E471CEull);

    rt::RunResult rr = runtime.runMain(serviceMain, &state);

    ControlledResult out;
    if (!rr.ok())
        return out; // all-zero result signals failure to the bench

    const support::Samples& lat = state.latenciesMs;
    out.latency = LatencySummary::ofMillis(lat);
    out.throughputRps =
        static_cast<double>(lat.count()) /
        (static_cast<double>(config.duration) / kSecond);
    out.requestsServed = state.served;

    const gc::MemStats& ms = runtime.memStats();
    out.stackInuse = ms.stackInuse;
    out.heapAlloc = ms.heapAlloc;
    out.heapInuse = ms.heapInuse;
    out.heapObjects = ms.heapObjects;
    out.gcCpuFraction = ms.gcCpuFraction;
    out.pauseTotalNs = ms.pauseTotalNs;
    out.numGC = ms.numGC;
    out.pausePerCycleNs = ms.numGC == 0
        ? 0.0
        : static_cast<double>(ms.pauseTotalNs) /
          static_cast<double>(ms.numGC);
    out.deadlocksDetected =
        runtime.collector().reports().total();
    out.gcWorkers = rc.resolvedGcWorkers();
    for (const auto& cycle : runtime.collector().history())
        out.parallelMarkJobs += cycle.parallelMarkJobs;
    return out;
}

} // namespace golf::service
