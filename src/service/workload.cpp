#include "service/workload.hpp"

#include <cmath>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"

namespace golf::service {
namespace {

using chan::Channel;
using chan::Unit;
using chan::makeChan;
using support::VTime;
using support::kHour;
using support::kMillisecond;
using support::kSecond;

struct ProdState
{
    rt::Runtime* rt = nullptr;
    const ProductionConfig* cfg = nullptr;
    support::Rng rng{1};
    VTime start = 0;
    VTime end = 0;
    size_t served = 0;
    /** Latencies within the current sampling window (ms). */
    support::Samples windowLat;
    VTime lastBusy = 0;
    ProductionResult* out = nullptr;
};

/** Diurnal request rate (requests/second) at virtual time t. */
double
rateAt(const ProductionConfig& cfg, VTime t)
{
    double hours = static_cast<double>(t) / kHour;
    double phase = 2.0 * M_PI * (hours - 14.0) / 24.0; // 2pm peak
    return cfg.baseRps *
           (1.0 + cfg.diurnalAmplitude * std::cos(phase));
}

// The three distinct buggy code paths of RQ1(c) (Listing 7): each
// spawns an async task whose completion send the handler abandons.
// Three separate functions give three distinct source locations.

rt::Go
asyncEmailTask(Channel<Unit>* done)
{
    rt::busy(100 * support::kMicrosecond); // send the email
    co_await chan::send(done, Unit{});
    co_return;
}

rt::Go
asyncAuditLog(Channel<Unit>* done)
{
    co_await rt::ioWait(2 * kMillisecond); // write the audit record
    co_await chan::send(done, Unit{});
    co_return;
}

rt::Go
asyncMetricsFlush(Channel<Unit>* done)
{
    rt::busy(50 * support::kMicrosecond); // flush counters
    co_await chan::send(done, Unit{});
    co_return;
}

/** Request-scope allocation (decode buffers, handler context). */
class RequestBuf : public gc::Object
{
  public:
    const char* objectName() const override { return "request-buf"; }

  private:
    std::array<char, 512> payload_{};
};

/** One request handler. */
rt::Go
handleRequest(ProdState* s, int bugSite, int leak)
{
    rt::Runtime& rt = *s->rt;
    VTime t0 = rt.clock().now();

    // Handler CPU + allocations: this is what gives the service a
    // CPU profile and keeps the GC pacing ticking in production.
    gc::Local<RequestBuf> buf(rt.make<RequestBuf>());
    rt.heap().charge(buf.get(), 16 * 1024);
    rt::busy(static_cast<VTime>(
        s->rng.nextGaussian(12.0, 4.0) * kMillisecond));

    double ms = s->rng.nextGaussian(s->cfg->handlerLatencyMeanMs,
                                    s->cfg->handlerLatencyStddevMs);
    if (ms < 1.0)
        ms = 1.0;
    co_await rt::ioWait(static_cast<VTime>(ms * kMillisecond));

    if (bugSite >= 0) {
        gc::Local<Channel<Unit>> done(makeChan<Unit>(rt, 0));
        switch (bugSite) {
          case 0:
            GOLF_GO(rt, asyncEmailTask, done.get());
            break;
          case 1:
            GOLF_GO(rt, asyncAuditLog, done.get());
            break;
          default:
            GOLF_GO(rt, asyncMetricsFlush, done.get());
            break;
        }
        if (!leak)
            co_await chan::recv(done.get());
        // else: the handler forgets the done channel (Listing 7's
        // HandleRequest) and the async task deadlocks on its send.
    }

    ++s->served;
    s->windowLat.add(static_cast<double>(rt.clock().now() - t0) /
                     kMillisecond);
    co_return;
}

/** Open-loop arrival process. */
rt::Go
arrivalLoop(ProdState* s)
{
    rt::Runtime& rt = *s->rt;
    while (rt.clock().now() < s->end) {
        double rate = rateAt(*s->cfg, rt.clock().now());
        if (rate < 0.01)
            rate = 0.01;
        auto gap = static_cast<VTime>(
            s->rng.nextExp(1.0 / rate) * kSecond);
        co_await rt::sleepFor(gap);
        if (rt.clock().now() >= s->end)
            break;
        // Route to a buggy endpoint or the healthy default.
        int bugSite = -1;
        int leak = 0;
        double dice = s->rng.nextDouble();
        for (const LeakEndpoint& ep : s->cfg->endpoints) {
            if (dice < ep.trafficShare) {
                bugSite = ep.bugSite;
                leak = s->rng.chance(ep.leakProbability) ? 1 : 0;
                break;
            }
            dice -= ep.trafficShare;
        }
        GOLF_GO(rt, handleRequest, s, bugSite, leak);
    }
    co_return;
}

/** Metric sampler (the paper's 3-minute emission). */
rt::Go
samplerLoop(ProdState* s)
{
    rt::Runtime& rt = *s->rt;
    while (rt.clock().now() < s->end) {
        co_await rt::sleepFor(s->cfg->samplePeriod);
        ProductionResult& out = *s->out;
        if (!s->windowLat.empty()) {
            out.p50Samples.add(s->windowLat.percentile(50));
            out.p99Samples.add(s->windowLat.percentile(99));
        }
        VTime busy = rt.busyVirtualNs();
        double cpuPct = 100.0 *
                        static_cast<double>(busy - s->lastBusy) /
                        static_cast<double>(s->cfg->samplePeriod);
        s->lastBusy = busy;
        out.cpuSamples.add(cpuPct);
        out.blockedSeries.add(
            rt.clock().now(),
            static_cast<double>(rt.blockedCandidates().size()));
        s->windowLat = support::Samples();
    }
    co_return;
}

rt::Go
productionMain(ProdState* s)
{
    rt::Runtime& rt = *s->rt;
    s->start = rt.clock().now();
    s->end = s->start + s->cfg->duration;
    GOLF_GO(rt, arrivalLoop, s);
    GOLF_GO(rt, samplerLoop, s);
    while (rt.clock().now() < s->end)
        co_await rt::sleepFor(support::kMinute);
    co_return;
}

} // namespace

ProductionResult
runProductionService(const ProductionConfig& config)
{
    rt::Config rc;
    rc.procs = config.procs;
    rc.seed = config.seed;
    rc.gcMode = config.gcMode;
    rc.recovery = config.recovery;
    rc.heap.minTriggerBytes = 1024 * 1024;

    rt::Runtime runtime(rc);
    ProductionResult out;
    ProdState state;
    state.rt = &runtime;
    state.cfg = &config;
    state.rng = support::Rng(config.seed ^ 0x9D0DCEull);
    state.out = &out;

    rt::RunResult rr = runtime.runMain(productionMain, &state);
    out.ok = rr.ok();
    out.requestsServed = state.served;
    out.deadlocksDetected = runtime.collector().reports().total();
    out.dedupReports = runtime.collector().reports().deduplicated();
    return out;
}

TimeSeries
runFigure1Deployment(uint64_t seed, int days, double leakProbability)
{
    // Weekday mornings redeploy the service (fresh runtime); the
    // Friday deployment survives the weekend. Leaked goroutines
    // accumulate within a deployment and vanish at restart — the
    // sawtooth with weekend spikes of Figure 1.
    TimeSeries stitched{"blocked_goroutines", {}};
    VTime offset = 0;
    int day = 0;
    support::Rng seeder(seed);
    while (day < days) {
        // Day-of-week: 0 = Monday. Deployments start at 09:00 and
        // last until the next weekday 09:00.
        int dow = day % 7;
        int spanDays = dow == 4 ? 3 : 1; // Friday runs the weekend
        if (dow > 4) { // alignment guard (should not happen)
            ++day;
            continue;
        }

        ProductionConfig cfg;
        cfg.seed = seeder.next();
        cfg.gcMode = rt::GcMode::Baseline; // no GOLF: the leak shows
        cfg.duration = static_cast<VTime>(spanDays) * 24 * kHour;
        cfg.baseRps = 0.5;
        cfg.samplePeriod = kHour;
        cfg.endpoints = {
            LeakEndpoint{0, leakProbability, 0.30},
        };

        ProductionResult r = runProductionService(cfg);
        for (const TimePoint& p : r.blockedSeries.points)
            stitched.add(offset + p.t, p.value);

        offset += cfg.duration;
        day += spanDays;
    }
    return stitched;
}

} // namespace golf::service
