/**
 * @file
 * Graceful service degradation on top of the controlled service (§9).
 *
 * The same double-send workload as service.hpp, but the service now
 * *defends itself* instead of merely leaking:
 *
 *  - every request carries a virtual-time deadline (rt::withTimeout);
 *    the parent selects over {ch1, ch2, ctx->done()} and abandons the
 *    request when the deadline fires;
 *  - child goroutines recover guard::DeadlockError via GOLF_DEFER +
 *    rt::recover(), so a Cancel-rung delivery turns a leaked child
 *    into a clean exit that frees its request-scope map;
 *  - the client retries failed requests with exponential backoff and
 *    seeded jitter (deterministic per seed);
 *  - admission control sheds load while the watchdog reports blocked
 *    pressure above a limit, and a circuit breaker opens after a run
 *    of consecutive timeouts, cooling down before re-admitting.
 *
 * The bench (bench/service_guard.cpp) drives this service across the
 * recovery ladder at leakRate=0.10 and compares goodput against the
 * leak-free baseline — the RQ1(c)-style "does recovery keep the
 * service alive" experiment.
 */
#ifndef GOLFCC_SERVICE_GUARD_SERVICE_HPP
#define GOLFCC_SERVICE_GUARD_SERVICE_HPP

#include "mem/pressure.hpp"
#include "service/retry.hpp"
#include "service/service.hpp"

namespace golf::service {

struct GuardServiceConfig : ServiceConfig
{
    /** Blocked-goroutine watchdog; on by default here — the guard
     *  service is the watchdog's intended deployment. */
    guard::WatchdogConfig watchdog{/*enabled=*/true};
    guard::GuardPolicy guard;
    /** Per-request deadline (rt::withTimeout). */
    support::VTime requestTimeout = 2 * support::kSecond;
    /** Client retries per request after a timeout. */
    int maxRetries = 2;
    /** First retry backoff; doubles per attempt, plus seeded jitter. */
    support::VTime backoffBase = 50 * support::kMillisecond;
    /** Backoff ceiling (applied before jitter; see retry.hpp). */
    support::VTime backoffMax = 5 * support::kSecond;
    /** Shed new requests while watchdogPressure() >= this. */
    size_t shedPressureLimit = 8;
    /** Consecutive client-observed timeouts that open the breaker. */
    int breakerWindow = 5;
    /** How long an open breaker sheds before re-admitting. */
    support::VTime breakerCooldown = 1 * support::kSecond;
    /** Telemetry; admission control sheds off the obs watchdog
     *  pressure gauge instead of recomputing it per request. */
    obs::Config obs;
    /** Capture metrics JSON + Prometheus text into the result. */
    bool captureObs = false;
    /** Heap configuration, including the soft limit
     *  (HeapConfig::softLimitBytes = 0 keeps the ladder inert). */
    gc::HeapConfig heap = defaultHeap();
    /** Memory-pressure ladder thresholds (mem/pressure.hpp). */
    mem::MemConfig mem;
    /** Shed new requests while /mem/pressure:ratio >= this (the
     *  ladder's Shed rung); 0 disables memory shedding. */
    double memShedRatio = 0.95;

    static gc::HeapConfig
    defaultHeap()
    {
        gc::HeapConfig h;
        h.minTriggerBytes = 8 * 1024 * 1024;
        return h;
    }
};

/** Degradation counters (the new Metrics fields of §9). */
struct GuardMetrics
{
    size_t served = 0;       ///< Requests completed OK (any time).
    size_t goodput = 0;      ///< Requests completed OK after warmup.
    size_t recovered = 0;    ///< DeadlockErrors recovered in children.
    size_t cancelled = 0;    ///< Cancel deliveries by the runtime.
    size_t cancelDeaths = 0; ///< Unrecovered cancels (contained).
    size_t shed = 0;         ///< Requests refused at admission.
    size_t memShed = 0;      ///< Of those, refused on memory pressure.
    size_t retried = 0;      ///< Client retry attempts.
    size_t timedOut = 0;     ///< Requests failed after all retries.
    size_t breakerOpens = 0; ///< Circuit-breaker open transitions.
    size_t resurrections = 0; ///< Detected false-positive revivals.
    uint64_t watchdogTriggers = 0;
};

struct GuardResult
{
    /** Goodput: OK requests after warmup per second of duration. */
    double goodputRps = 0;
    LatencySummary latency;
    GuardMetrics metrics;
    size_t deadlocksDetected = 0;
    uint64_t heapInuse = 0;
    uint64_t numGC = 0;
    uint64_t pauseTotalNs = 0;
    /** High-water mark of modeled live heap bytes. */
    uint64_t heapPeak = 0;
    /** FatalReport-rung OOM reports (0 = the limit held). */
    uint64_t fatalOoms = 0;
    /** Ladder scavenge passes fired. */
    uint64_t memScavenges = 0;
    /** Ladder-forced off-cycle detection passes. */
    uint64_t memForcedGolfs = 0;
    bool failed = false; ///< The run itself panicked.
    /** Obs capture (empty unless config.captureObs). */
    std::string metricsJson;
    std::string prometheus;
};

/** Run the guarded service once. Deterministic per (seed, config). */
GuardResult runGuardService(const GuardServiceConfig& config);

} // namespace golf::service

#endif // GOLFCC_SERVICE_GUARD_SERVICE_HPP
