/**
 * @file
 * Synthetic test-suite corpus: the RQ1(b) / Figure 3 substrate.
 *
 * The paper runs GOLF (monitor-only) against GOLEAK over 3 111 Go
 * packages from Uber's monorepo; we cannot have that code, so the
 * corpus generator (DESIGN.md substitution 3) produces packages whose
 * test suites plant leaks drawn from behaviourally distinct classes:
 *
 *  - `full`       — plain orphaned channel operations; GOLF detects
 *                   every instance (reachability collapses at leak
 *                   time).
 *  - `timing`     — a holder goroutine keeps the leaked channel
 *                   reachable for a while; instances whose holder
 *                   outlives the suite's last GC cycle are GOLF
 *                   false negatives (per-class detectable fraction).
 *  - `global`     — the leaked channel is package-global (Listing 4):
 *                   GOLF-blind, GOLEAK-visible.
 *  - `runaway`    — a heartbeat goroutine pins the channel
 *                   (Listing 5): GOLF-blind, GOLEAK-visible.
 *
 * Every class corresponds to one distinct (go site, blocking site)
 * source pair — the paper's deduplication key; multiple packages may
 * exercise the same class, as third-party code does in the monorepo.
 */
#ifndef GOLFCC_SERVICE_CORPUS_HPP
#define GOLFCC_SERVICE_CORPUS_HPP

#include <string>
#include <vector>

#include "support/rng.hpp"

namespace golf::service {

struct CorpusConfig
{
    uint64_t seed = 1;
    /** Packages in the corpus (paper: 3 111). */
    int packages = 3111;
    /** Distinct leak classes (paper: 357 deduplicated reports). */
    int classes = 357;
    /** Fraction of classes GOLF can see at all (paper: ~50%). */
    double visibleShare = 0.504;
    /** Of the visible classes, fraction fully detected (paper: 55%
     *  of GOLF's dedup reports found every GOLEAK instance). */
    double fullShare = 0.50;
    /** Probability a package's test suite plants a leak at all. */
    double leakyPackageShare = 0.35;
};

/** Aggregated outcome for one leak class. */
struct ClassOutcome
{
    int classId = 0;
    std::string category;
    double detectableFraction = 1.0;
    size_t golfCount = 0;
    size_t goleakCount = 0;
};

struct CorpusResult
{
    std::vector<ClassOutcome> classes; ///< Classes that triggered.
    size_t golfTotal = 0;
    size_t goleakTotal = 0;
    size_t packagesRun = 0;

    size_t golfDedup() const;
    size_t goleakDedup() const;

    /** Figure 3: GOLF/GOLEAK ratio per GOLF-visible dedup report,
     *  sorted descending. */
    std::vector<double> ratioCurve() const;
};

/** Run every package test suite under GOLF (monitor mode) and
 *  GOLEAK simultaneously, aggregating per-class counts. */
CorpusResult runCorpus(const CorpusConfig& config);

} // namespace golf::service

#endif // GOLFCC_SERVICE_CORPUS_HPP
