#include "service/guard_service.hpp"

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "golf/collector.hpp"
#include "runtime/context.hpp"
#include "runtime/defer.hpp"
#include "runtime/local.hpp"
#include "sync/waitgroup.hpp"

namespace golf::service {
namespace {

using chan::Channel;
using chan::Unit;
using chan::makeChan;
using support::VTime;
using support::kMillisecond;
using support::kSecond;

enum RequestStatus
{
    ReqOk,
    ReqTimeout,
};

struct GuardState
{
    rt::Runtime* rt = nullptr;
    const GuardServiceConfig* cfg = nullptr;
    support::Rng rng{1};
    support::Samples latenciesMs;
    GuardMetrics m;
    VTime warmupEnd = 0;
    VTime end = 0;
    // Client-side resilience policies (retry.hpp); the breaker is
    // shared by all connections, like a client-side proxy would.
    BackoffPolicy backoff;
    CircuitBreaker breaker;
};

BigMap*
makeMap(GuardState* s)
{
    BigMap* map = s->rt->make<BigMap>(s->cfg->mapEntries);
    s->rt->heap().charge(map, s->cfg->mapEntries * 48);
    return map;
}

rt::Go
dagWorker(GuardState* s, sync::WaitGroup* wg)
{
    co_await rt::sleepFor(s->cfg->dagTaskCost);
    wg->done();
    co_return;
}

/** The double-send child, now with a deadlock guard: a Cancel-rung
 *  DeadlockError delivered mid-send is recovered here, the goroutine
 *  exits normally, and its map becomes garbage. */
rt::Go
guardChildTask(GuardState* s, Channel<Unit>* ch1, Channel<Unit>* ch2,
               int doubleSend)
{
    GOLF_DEFER([s] {
        if (rt::recover())
            ++s->m.recovered;
    });
    gc::Local<BigMap> childMap(makeMap(s));
    rt::busy(200 * support::kMicrosecond);
    co_await chan::send(ch1, Unit{});
    if (doubleSend)
        co_await chan::send(ch2, Unit{}); // leaks: parent is gone
    co_return;
}

/** One request, server side, with a deadline. */
rt::Task<RequestStatus>
handleRequest(GuardState* s)
{
    double rpcMs = s->rng.nextGaussian(s->cfg->rpcLatencyMeanMs,
                                       s->cfg->rpcLatencyStddevMs);
    if (rpcMs < 1.0)
        rpcMs = 1.0;
    co_await rt::ioWait(static_cast<VTime>(rpcMs * kMillisecond));

    gc::Local<sync::WaitGroup> wg(s->rt->make<sync::WaitGroup>(*s->rt));
    for (int i = 0; i < s->cfg->dagTasks; ++i) {
        wg->add(1);
        GOLF_GO(*s->rt, dagWorker, s, wg.get());
    }
    co_await wg->wait();

    gc::Local<BigMap> parentMap(makeMap(s));
    gc::Local<Channel<Unit>> ch1(makeChan<Unit>(*s->rt, 0));
    gc::Local<Channel<Unit>> ch2(makeChan<Unit>(*s->rt, 0));
    const int leak = s->rng.chance(s->cfg->leakRate) ? 1 : 0;
    GOLF_GO(*s->rt, guardChildTask, s, ch1.get(), ch2.get(), leak);

    // Per-request deadline. Parentless on purpose: registering under
    // a run-long parent context would accumulate every request in its
    // children list. The armed timer keeps the context alive; cancel
    // on the happy path releases it.
    gc::Local<rt::Context> ctx(rt::withTimeout(
        *s->rt, nullptr, s->cfg->requestTimeout));
    const int which =
        co_await chan::select(chan::recvCase(ch1.get()),
                              chan::recvCase(ch2.get()),
                              chan::recvCase(ctx->done()));
    ctx->cancel();
    co_return which == 2 ? ReqTimeout : ReqOk;
}

/** One closed-loop client connection: admission control, retries
 *  with exponential backoff + seeded jitter, breaker accounting. */
rt::Go
clientConnection(GuardState* s)
{
    rt::Runtime& rt = *s->rt;
    const GuardServiceConfig& cfg = *s->cfg;
    // Admission control sheds off the obs watchdog-pressure gauge
    // (published by each watchdog poll) instead of rescanning allg
    // per request; with obs off, fall back to the direct scan.
    obs::Obs* obs = rt.obs();
    while (rt.clock().now() < s->end) {
        const bool admitted = s->breaker.allow(rt.clock().now());
        const size_t pressure =
            obs ? static_cast<size_t>(obs->watchdogPressure())
                : rt.watchdogPressure();
        // Shed rung of the memory-pressure ladder: refuse work off
        // the /mem/pressure:ratio gauge before the heap reaches the
        // soft limit (same gauge-not-rescan discipline as above).
        const double memPressure =
            obs ? obs->memPressure() : rt.memPressureRatio();
        const bool memShed = cfg.memShedRatio > 0 &&
                             rt.memLimitBytes() > 0 &&
                             memPressure >= cfg.memShedRatio;
        if (!admitted || pressure >= cfg.shedPressureLimit ||
            memShed) {
            ++s->m.shed;
            if (memShed)
                ++s->m.memShed;
            co_await rt::sleepFor(cfg.backoffBase);
            continue;
        }

        const VTime t0 = rt.clock().now();
        RequestStatus status = ReqTimeout;
        for (int attempt = 0; ; ++attempt) {
            status = co_await handleRequest(s);
            if (status == ReqOk || attempt >= cfg.maxRetries)
                break;
            ++s->m.retried;
            co_await rt::sleepFor(
                s->backoff.backoff(attempt, s->rng));
        }
        const VTime t1 = rt.clock().now();

        if (status == ReqOk) {
            s->breaker.onResult(true, t1);
            ++s->m.served;
            if (t0 >= s->warmupEnd) {
                ++s->m.goodput;
                s->latenciesMs.add(static_cast<double>(t1 - t0) /
                                   kMillisecond);
            }
        } else {
            ++s->m.timedOut;
            if (s->breaker.onResult(false, rt.clock().now()))
                ++s->m.breakerOpens;
        }
        co_await rt::sleepFor(170 * kMillisecond);
    }
    co_return;
}

rt::Go
serviceMain(GuardState* s)
{
    rt::Runtime& rt = *s->rt;
    s->warmupEnd = rt.clock().now() + s->cfg->warmup;
    s->end = s->warmupEnd + s->cfg->duration;
    for (int i = 0; i < s->cfg->connections; ++i)
        GOLF_GO(rt, clientConnection, s);
    while (rt.clock().now() < s->end)
        co_await rt::sleepFor(kSecond);
    co_return;
}

} // namespace

GuardResult
runGuardService(const GuardServiceConfig& config)
{
    rt::Config rc;
    rc.procs = config.procs;
    rc.seed = config.seed;
    rc.gcMode = config.gcMode;
    rc.recovery = config.recovery;
    rc.detectEveryN = config.detectEveryN;
    rc.gcWorkers = config.gcWorkers;
    rc.watchdog = config.watchdog;
    rc.guard = config.guard;
    rc.obs = config.obs;
    rc.heap = config.heap;
    rc.mem = config.mem;

    rt::Runtime runtime(rc);
    GuardState state;
    state.rt = &runtime;
    state.cfg = &config;
    state.rng = support::Rng(config.seed ^ 0x5E471CEull);
    state.backoff.base = config.backoffBase;
    state.backoff.cap = config.backoffMax;
    state.breaker.window = config.breakerWindow;
    state.breaker.cooldown = config.breakerCooldown;

    rt::RunResult rr = runtime.runMain(serviceMain, &state);

    GuardResult out;
    out.heapPeak = runtime.heap().peakLiveBytes();
    out.fatalOoms = runtime.fatalOoms();
    out.memScavenges = runtime.memScavenges();
    out.memForcedGolfs = runtime.memForcedGolfs();
    if (!rr.ok()) {
        out.failed = true;
        return out;
    }

    out.latency = LatencySummary::ofMillis(state.latenciesMs);
    out.goodputRps =
        static_cast<double>(state.m.goodput) /
        (static_cast<double>(config.duration) / kSecond);
    out.metrics = state.m;
    out.metrics.cancelled = runtime.cancelsDelivered();
    out.metrics.cancelDeaths = runtime.cancelDeaths();
    out.metrics.resurrections = runtime.resurrections();
    out.metrics.watchdogTriggers = runtime.watchdogTriggers();
    out.deadlocksDetected = runtime.collector().reports().total();

    const gc::MemStats& ms = runtime.memStats();
    out.heapInuse = ms.heapInuse;
    out.numGC = ms.numGC;
    out.pauseTotalNs = ms.pauseTotalNs;
    if (config.captureObs) {
        if (obs::Obs* o = runtime.obs()) {
            out.metricsJson = o->metricsJson();
            out.prometheus = o->prometheusText();
        }
    }
    return out;
}

} // namespace golf::service
