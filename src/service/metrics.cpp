#include "service/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace golf::service {

std::string
AnalysisStats::str() const
{
    std::ostringstream os;
    os << "race: goroutines=" << d.goroutines
       << " sync_ops=" << d.syncOps
       << " mem_accesses=" << d.memAccesses
       << " shadow_cells=" << d.shadowCells
       << " lock_acquires=" << d.lockAcquires
       << " lock_graph_edges=" << d.lockGraphEdges
       << " races=" << d.raceReports
       << " race_instances=" << d.raceInstances
       << " lock_order_cycles=" << d.lockOrderCycles
       << " confirmed_cycles=" << d.confirmedCycles;
    return os.str();
}

LatencySummary
LatencySummary::ofMillis(const support::Samples& s)
{
    LatencySummary out;
    out.p50 = s.percentile(50);
    out.p90 = s.percentile(90);
    out.p95 = s.percentile(95);
    out.p99 = s.percentile(99);
    out.p999 = s.percentile(99.9);
    out.p99995 = s.percentile(99.995);
    out.max = s.max();
    return out;
}

double
TimeSeries::maxValue() const
{
    double m = 0;
    for (const auto& p : points)
        m = std::max(m, p.value);
    return m;
}

void
TimeSeries::writeCsv(const std::string& path) const
{
    std::ofstream out(path);
    out << "t_seconds," << name << "\n";
    for (const auto& p : points) {
        out << static_cast<double>(p.t) / support::kSecond << ","
            << p.value << "\n";
    }
}

std::string
TimeSeries::sparkline(size_t width) const
{
    static const char* levels = " .:-=+*#%@";
    if (points.empty() || width == 0)
        return "";
    double peak = maxValue();
    if (peak <= 0)
        peak = 1;
    std::string out;
    for (size_t i = 0; i < width; ++i) {
        size_t idx = i * points.size() / width;
        double frac = points[idx].value / peak;
        int level = static_cast<int>(frac * 9.0);
        out += levels[std::clamp(level, 0, 9)];
    }
    return out;
}

std::string
meanPm(const support::Samples& s)
{
    std::ostringstream os;
    os.precision(3);
    os << s.mean() << " +- " << s.stddev();
    return os.str();
}

} // namespace golf::service
