/**
 * @file
 * Metric collection for the service experiments: latency percentile
 * summaries (Table 2/3), windowed time series (Figure 1, Table 3
 * three-minute emission), and CPU utilization derived from the
 * runtime's busy-virtual-time counter.
 */
#ifndef GOLFCC_SERVICE_METRICS_HPP
#define GOLFCC_SERVICE_METRICS_HPP

#include <string>
#include <vector>

#include "race/detector.hpp"
#include "support/stats.hpp"
#include "support/vclock.hpp"

namespace golf::service {

/** The latency rows of Table 2 (milliseconds). */
struct LatencySummary
{
    double p50 = 0;
    double p90 = 0;
    double p95 = 0;
    double p99 = 0;
    double p999 = 0;
    double p99995 = 0;
    double max = 0;

    static LatencySummary ofMillis(const support::Samples& s);
};

/** One sampled point of a metric over virtual time. */
struct TimePoint
{
    support::VTime t;
    double value;
};

/** A named series of samples (blocked-goroutine counts, CPU%...). */
struct TimeSeries
{
    std::string name;
    std::vector<TimePoint> points;

    void add(support::VTime t, double v) { points.push_back({t, v}); }

    double maxValue() const;

    /** Write "t_seconds,value" rows. */
    void writeCsv(const std::string& path) const;

    /** Coarse ASCII rendering for terminal output. */
    std::string sparkline(size_t width) const;
};

/** mean +- stddev formatting used by Table 3. */
std::string meanPm(const support::Samples& s);

/**
 * Per-run race-analysis statistics, emitted next to the GC metrics
 * when a run executes under -race: how much the detector observed
 * (sync edges, annotated accesses, lock acquisitions) and what it
 * concluded (deduplicated races, lock-order cycles, GOLF-confirmed
 * cycles).
 */
struct AnalysisStats
{
    race::DetectorStats d;

    static AnalysisStats
    of(const race::Detector& det)
    {
        return AnalysisStats{det.stats()};
    }

    /** One "key=value ..." summary line for logs and tool output. */
    std::string str() const;
};

} // namespace golf::service

#endif // GOLFCC_SERVICE_METRICS_HPP
