#include "service/corpus.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "leakdetect/goleak.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace golf::service {
namespace {

using chan::Channel;
using chan::makeChan;
using support::VTime;
using support::kMillisecond;

enum class Category
{
    Full,
    Timing,
    Global,
    Runaway,
};

const char*
categoryName(Category c)
{
    switch (c) {
      case Category::Full: return "full";
      case Category::Timing: return "timing";
      case Category::Global: return "global";
      case Category::Runaway: return "runaway";
    }
    return "?";
}

struct ClassSpec
{
    int id = 0;
    Category category = Category::Full;
    /** For `timing`: per-instance probability GOLF catches it. */
    double detectableFraction = 1.0;
};

/** One planted bug in one package suite. */
struct PlantedBug
{
    const ClassSpec* cls = nullptr;
    int instances = 0;
};

struct SuiteCtx
{
    rt::Runtime* rt = nullptr;
    support::Rng* rng = nullptr;
    /** Globals planted by `global` bugs; must outlive the run. */
    std::vector<std::unique_ptr<gc::GlobalRoot<Channel<int>>>> globals;
};

// ---- the four leak shapes; each category has exactly one leaky
// ---- go statement, giving it a distinct dedup source pair.

rt::Go
leakedReceiver(Channel<int>* ch)
{
    co_await chan::recv(ch);
    co_return;
}

rt::Go
timingHolder(Channel<int>* ch, VTime hold)
{
    (void)ch; // pinned via spawnRefs while we sleep
    co_await rt::sleepFor(hold);
    co_return;
}

rt::Go
heartbeatPinner(Channel<int>* ch)
{
    (void)ch;
    for (;;)
        co_await rt::sleepFor(support::kSecond);
    co_return;
}

void
plantInstance(SuiteCtx* s, const ClassSpec& cls)
{
    rt::Runtime& rt = *s->rt;
    Channel<int>* ch = makeChan<int>(rt, 0);
    switch (cls.category) {
      case Category::Full:
        GOLF_GO(rt, leakedReceiver, ch);
        break;
      case Category::Timing: {
        GOLF_GO(rt, leakedReceiver, ch);
        // A holder keeps ch reachable; if it outlives the suite's
        // final GC, GOLF misses this instance.
        const bool detectable =
            s->rng->chance(cls.detectableFraction);
        VTime hold = detectable ? kMillisecond
                                : 3600 * support::kSecond;
        GOLF_GO(rt, timingHolder, ch, hold);
        break;
      }
      case Category::Global: {
        auto root = std::make_unique<gc::GlobalRoot<Channel<int>>>(
            rt.heap(), ch);
        s->globals.push_back(std::move(root));
        GOLF_GO(rt, leakedReceiver, ch);
        break;
      }
      case Category::Runaway:
        GOLF_GO(rt, leakedReceiver, ch);
        GOLF_GO(rt, heartbeatPinner, ch);
        break;
    }
}

rt::Go
suiteMain(SuiteCtx* s, const std::vector<PlantedBug>* bugs)
{
    for (const PlantedBug& bug : *bugs) {
        for (int i = 0; i < bug.instances; ++i)
            plantInstance(s, *bug.cls);
    }
    // Tests run, then the suite quiesces and GOLF's last cycle
    // fires (the strategically injected GC of Section 6.2).
    co_await rt::sleepFor(10 * kMillisecond);
    co_await rt::gcNow();
    co_return;
}

/** The spawn-site line of each category's leaky go statement is the
 *  dedup anchor; resolve it once by planting a probe package. */
std::map<std::string, Category>
categorySiteIndex()
{
    static std::map<std::string, Category> index = [] {
        std::map<std::string, Category> idx;
        rt::Config rc;
        rc.recovery = rt::Recovery::ReportOnly;
        rt::Runtime probe(rc);
        support::Rng rng(42);
        SuiteCtx ctx{&probe, &rng, {}};
        ClassSpec specs[] = {
            {0, Category::Full, 1.0},
            {1, Category::Timing, 1.0},
            {2, Category::Global, 1.0},
            {3, Category::Runaway, 1.0},
        };
        std::vector<PlantedBug> bugs;
        for (auto& cls : specs)
            bugs.push_back(PlantedBug{&cls, 1});
        probe.runMain(suiteMain, &ctx, &bugs);
        leakdetect::GoLeakResult leaks = leakdetect::findLeaks(probe);
        // Attribute each lingering leakedReceiver spawn site: Full
        // and Timing instances were detected by GOLF; map all seen
        // receiver sites. The receiver spawn line differs per
        // category because each category has its own GOLF_GO call.
        (void)leaks;
        // Simpler and robust: rebuild per category, one at a time.
        idx.clear();
        for (auto& cls : specs) {
            rt::Runtime one(rc);
            SuiteCtx c1{&one, &rng, {}};
            std::vector<PlantedBug> b1{PlantedBug{&cls, 1}};
            one.runMain(suiteMain, &c1, &b1);
            leakdetect::GoLeakResult l1 = leakdetect::findLeaks(one);
            for (const auto& leak : l1.leaks) {
                if (leak.reason == rt::WaitReason::ChanRecv)
                    idx[leak.spawnSite.str()] = cls.category;
            }
        }
        return idx;
    }();
    return index;
}

} // namespace

size_t
CorpusResult::golfDedup() const
{
    size_t n = 0;
    for (const auto& c : classes)
        n += c.golfCount > 0 ? 1 : 0;
    return n;
}

size_t
CorpusResult::goleakDedup() const
{
    size_t n = 0;
    for (const auto& c : classes)
        n += c.goleakCount > 0 ? 1 : 0;
    return n;
}

std::vector<double>
CorpusResult::ratioCurve() const
{
    std::vector<double> curve;
    for (const auto& c : classes) {
        if (c.golfCount > 0 && c.goleakCount > 0) {
            curve.push_back(static_cast<double>(c.golfCount) /
                            static_cast<double>(c.goleakCount));
        }
    }
    std::sort(curve.begin(), curve.end(), std::greater<>());
    return curve;
}

CorpusResult
runCorpus(const CorpusConfig& config)
{
    support::Rng rng(config.seed);

    // ---- build the class table ----
    std::vector<ClassSpec> classTable;
    const int visible = static_cast<int>(
        config.visibleShare * config.classes);
    const int full = static_cast<int>(config.fullShare * visible);
    for (int i = 0; i < config.classes; ++i) {
        ClassSpec cls;
        cls.id = i;
        if (i < full) {
            cls.category = Category::Full;
        } else if (i < visible) {
            cls.category = Category::Timing;
            cls.detectableFraction =
                0.15 + 0.70 * rng.nextDouble();
        } else {
            cls.category = rng.chance(0.5) ? Category::Global
                                           : Category::Runaway;
        }
        classTable.push_back(cls);
    }

    std::map<int, ClassOutcome> outcomes;
    CorpusResult result;

    // ---- run the packages ----
    for (int pkg = 0; pkg < config.packages; ++pkg) {
        ++result.packagesRun;
        if (!rng.chance(config.leakyPackageShare)) {
            // A healthy package: still run a (tiny) suite so the
            // corpus exercises both outcomes.
            continue;
        }

        // At most one bug per category per package so reports can be
        // attributed by spawn site.
        std::vector<PlantedBug> bugs;
        std::map<Category, bool> used;
        int bugCount = 1 + static_cast<int>(rng.nextBelow(3));
        for (int b = 0; b < bugCount; ++b) {
            const ClassSpec& cls =
                classTable[rng.nextBelow(classTable.size())];
            if (used[cls.category])
                continue;
            used[cls.category] = true;
            // GOLF-visible bug shapes sit on hotter code paths in
            // this corpus (they are the plain ones); the global /
            // runaway shapes trigger from fewer tests.
            const bool visibleCat =
                cls.category == Category::Full ||
                cls.category == Category::Timing;
            int instances = visibleCat
                ? 3 + static_cast<int>(rng.nextBelow(9))
                : 1 + static_cast<int>(rng.nextBelow(4));
            bugs.push_back(PlantedBug{&cls, instances});
        }
        if (bugs.empty())
            continue;

        rt::Config rc;
        rc.seed = rng.next();
        rc.procs = 4;
        rc.recovery = rt::Recovery::ReportOnly; // monitor mode
        rt::Runtime runtime(rc);
        support::Rng pkgRng(rng.next());
        SuiteCtx ctx{&runtime, &pkgRng, {}};
        runtime.runMain(suiteMain, &ctx, &bugs);

        // ---- attribute GOLF reports and GOLEAK leaks ----
        const auto& siteIdx = categorySiteIndex();
        std::map<Category, size_t> golfByCat, goleakByCat;
        for (const auto& rep :
             runtime.collector().reports().all()) {
            auto it = siteIdx.find(rep.spawnSite.str());
            if (it != siteIdx.end())
                ++golfByCat[it->second];
        }
        leakdetect::GoLeakResult leaks =
            leakdetect::findLeaks(runtime);
        for (const auto& leak : leaks.leaks) {
            auto it = siteIdx.find(leak.spawnSite.str());
            if (it != siteIdx.end())
                ++goleakByCat[it->second];
        }

        for (const PlantedBug& bug : bugs) {
            ClassOutcome& oc = outcomes[bug.cls->id];
            oc.classId = bug.cls->id;
            oc.category = categoryName(bug.cls->category);
            oc.detectableFraction = bug.cls->detectableFraction;
            oc.golfCount += golfByCat[bug.cls->category];
            oc.goleakCount += goleakByCat[bug.cls->category];
        }
        ctx.globals.clear(); // unlink before the runtime dies
    }

    for (auto& [id, oc] : outcomes) {
        result.golfTotal += oc.golfCount;
        result.goleakTotal += oc.goleakCount;
        result.classes.push_back(oc);
    }
    return result;
}

} // namespace golf::service
