/**
 * @file
 * The "golf-mc-trace v1" replayable schedule format.
 *
 * A trace pins everything a byte-exact re-execution needs: the
 * pattern, the virtual duration, the pick-gid sequence with each
 * choice point's enabled set (the replay-drift check), and the
 * canonical verdict the explorer observed. chaos_runner -mc-check
 * re-runs the schedule through mc::runSchedule and compares verdict
 * bytes.
 */
#include "mc/mc.hpp"

#include <istream>
#include <sstream>

namespace golf::mc {

std::string
patternSlug(const std::string& name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool keep = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' ||
                          c == '.';
        out.push_back(keep ? c : '_');
    }
    return out;
}

std::string
writeTrace(const TraceFile& t)
{
    std::ostringstream os;
    os << "golf-mc-trace v1\n";
    os << "pattern " << t.pattern << " correct="
       << (t.correct ? 1 : 0) << "\n";
    os << "duration " << t.duration << "\n";
    if (t.patternSeed != 1)
        os << "seed " << t.patternSeed << "\n";
    for (size_t k = 0; k < t.schedule.size(); ++k) {
        os << "choice " << k << " " << t.schedule[k] << " enabled=";
        const auto& en =
            k < t.enabled.size() ? t.enabled[k]
                                 : std::vector<uint64_t>{};
        for (size_t i = 0; i < en.size(); ++i)
            os << (i ? "," : "") << en[i];
        os << "\n";
    }
    os << "verdict " << t.verdictCanonical << "\n";
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(t.verdictHash));
    os << "verdicthash " << hex << "\n";
    return os.str();
}

bool
parseTrace(std::istream& in, TraceFile& out, std::string& err)
{
    std::string line;
    if (!std::getline(in, line) || line != "golf-mc-trace v1") {
        err = "bad header (want 'golf-mc-trace v1')";
        return false;
    }
    out = TraceFile{};
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "pattern") {
            std::string name, corr;
            ls >> name >> corr;
            out.pattern = name;
            if (corr.rfind("correct=", 0) != 0) {
                err = "malformed pattern line: " + line;
                return false;
            }
            out.correct = corr.substr(8) == "1";
        } else if (tag == "duration") {
            long long d = 0;
            ls >> d;
            out.duration = static_cast<support::VTime>(d);
        } else if (tag == "seed") {
            unsigned long long s = 1;
            ls >> s;
            out.patternSeed = s;
        } else if (tag == "choice") {
            size_t k = 0;
            unsigned long long gid = 0;
            std::string en;
            ls >> k >> gid >> en;
            if (!ls || en.rfind("enabled=", 0) != 0) {
                err = "malformed choice line: " + line;
                return false;
            }
            if (k != out.schedule.size()) {
                err = "out-of-order choice index in: " + line;
                return false;
            }
            out.schedule.push_back(gid);
            std::vector<uint64_t> gids;
            std::istringstream es(en.substr(8));
            std::string item;
            while (std::getline(es, item, ','))
                if (!item.empty())
                    gids.push_back(std::stoull(item));
            out.enabled.push_back(std::move(gids));
        } else if (tag == "verdict") {
            std::string rest;
            std::getline(ls, rest);
            if (!rest.empty() && rest.front() == ' ')
                rest.erase(rest.begin());
            out.verdictCanonical = rest;
        } else if (tag == "verdicthash") {
            std::string hex;
            ls >> hex;
            out.verdictHash = std::stoull(hex, nullptr, 16);
        } else {
            err = "unknown tag '" + tag + "' in: " + line;
            return false;
        }
    }
    if (out.pattern.empty()) {
        err = "trace has no pattern line";
        return false;
    }
    return true;
}

} // namespace golf::mc
