/**
 * @file
 * Stateless DFS over the scheduling choice tree (DESIGN.md §12).
 *
 * Exploration state is a stack of frames, one per choice point along
 * the current path. Each iteration re-executes the pattern from
 * scratch with the stack's pick prefix, extends the stack with the
 * fresh choice points the run exposed, applies the DPOR backtrack
 * rule over the full path, then pops to the deepest frame with an
 * untried candidate. Sleep sets and the visited-fingerprint set
 * prune candidates/subtrees whose behaviors are covered elsewhere.
 */
#include "mc/mc.hpp"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "support/panic.hpp"

namespace golf::mc {

namespace {

/** One choice point on the current DFS path. */
struct Frame
{
    std::vector<uint64_t> enabled;
    uint64_t fingerprint = 0;
    uint64_t chosen = 0;
    /** Footprint of the executed segment for the current chosen. */
    Footprint segment;
    /** gids whose subtree below this frame is done. */
    std::set<uint64_t> explored;
    /** gids scheduled for exploration. Naive mode: all enabled;
     *  DPOR: the default pick plus race-reversal additions. */
    std::set<uint64_t> backtrack;
    /** Sleeping gids (covered at an ancestor) with the footprint of
     *  their first step, for conflict-based wakeup. */
    std::map<uint64_t, Footprint> sleep;
    /** Segment footprints of explored picks (sleep-set inserts). */
    std::map<uint64_t, Footprint> segOf;
    /** Subtree cut at a visited fingerprint: never fork here. */
    bool visitedCut = false;
};

struct Counters
{
    obs::Counter* executions = nullptr;
    obs::Counter* states = nullptr;
    obs::Counter* branches = nullptr;
    obs::Counter* sleepPruned = nullptr;
    obs::Counter* dporPruned = nullptr;
    obs::Counter* visitedPruned = nullptr;
};

Counters
countersOn(obs::Registry& reg)
{
    Counters c;
    c.executions = reg.counter("/mc/executions:count",
                               "Schedule re-executions performed.");
    c.states = reg.counter("/mc/states:count",
                           "Choice-point states visited.");
    c.branches = reg.counter("/mc/branches:count",
                             "Non-default schedule branches explored.");
    c.sleepPruned =
        reg.counter("/mc/sleepset/pruned:count",
                    "Candidate picks skipped by sleep sets.");
    c.dporPruned =
        reg.counter("/mc/dpor/pruned:count",
                    "Candidate picks never forked thanks to DPOR.");
    c.visitedPruned =
        reg.counter("/mc/visited/pruned:count",
                    "Subtrees cut at already-explored fingerprints.");
    return c;
}

} // namespace

void
registerMetrics(obs::Registry& reg)
{
    (void)countersOn(reg);
}

void
accumulateMetrics(obs::Registry& reg, const McStats& s)
{
    Counters c = countersOn(reg);
    c.executions->add(s.executions);
    c.states->add(s.states);
    c.branches->add(s.branches);
    c.sleepPruned->add(s.sleepPruned);
    c.dporPruned->add(s.dporPruned);
    c.visitedPruned->add(s.visitedPruned);
}

namespace {

/** Shortest failing prefix of a failing schedule: runs prefixes
 *  shortest-first, so by construction no strict prefix of the result
 *  fails. The empty prefix is tried first (a pattern whose default
 *  schedule already fails gets an empty trace). */
void
mineMinimal(const microbench::Pattern& p, const McConfig& cfg,
            const Schedule& failing, ExploreResult& out,
            McStats& stats)
{
    for (size_t len = 0; len <= failing.size(); ++len) {
        Schedule prefix(failing.begin(),
                        failing.begin() + static_cast<long>(len));
        ExecResult r = runSchedule(p, cfg, prefix);
        ++stats.executions;
        if (r.verdict.leaky()) {
            out.minimalSchedule = std::move(prefix);
            out.minimalVerdict = r.verdict;
            return;
        }
    }
    // Unreachable: the full schedule failed when explored.
    support::panic("mc: failing schedule did not reproduce");
}

} // namespace

ExploreResult
explore(const microbench::Pattern& p, const McConfig& cfg,
        obs::Registry* metrics)
{
    ExploreResult out;
    McStats& stats = out.stats;
    std::vector<Frame> frames;
    std::unordered_set<uint64_t> visitedComplete;
    std::map<std::string, GoodlockEntry> goodlock;
    bool haveFailing = false;
    Schedule firstFailing;

    auto addGoodlock = [&goodlock](const ExecResult& r) {
        for (const auto& [key, confirmed] : r.lockOrderCycles) {
            GoodlockEntry& e = goodlock[key];
            e.cycle = key;
            ++e.predictedIn;
            if (confirmed)
                ++e.confirmedIn;
        }
    };

    for (;;) {
        if (cfg.maxExecutions != 0 &&
            stats.executions >= cfg.maxExecutions) {
            out.complete = false;
            break;
        }
        if (cfg.maxStates != 0 && stats.states >= cfg.maxStates) {
            out.complete = false;
            break;
        }

        Schedule prefix;
        prefix.reserve(frames.size());
        for (const Frame& f : frames)
            prefix.push_back(f.chosen);

        ExecResult r = runSchedule(p, cfg, prefix);
        ++stats.executions;
        if (r.depthExceeded)
            out.complete = false;
        addGoodlock(r);

        if (r.choices.size() < frames.size())
            support::panic("mc: replay lost choice points");

        // Refresh the replayed frames' segment footprints (identical
        // re-execution; cheap) and extend with the fresh tail.
        for (size_t k = 0; k < frames.size(); ++k)
            frames[k].segment = r.choices[k].step;
        for (size_t k = frames.size(); k < r.choices.size(); ++k) {
            const ChoiceRec& rec = r.choices[k];
            Frame f;
            f.enabled = rec.enabled;
            f.fingerprint = rec.fingerprint;
            f.chosen = rec.chosen;
            f.segment = rec.step;
            if (cfg.visited &&
                visitedComplete.count(rec.fingerprint) != 0) {
                // Subtree already fully explored from an equivalent
                // state: follow the default path for the verdict but
                // never fork below here.
                f.visitedCut = true;
                ++stats.visitedPruned;
                f.backtrack.insert(rec.chosen);
                frames.push_back(std::move(f));
                break;
            }
            if (cfg.dpor)
                f.backtrack.insert(rec.chosen);
            else
                f.backtrack.insert(rec.enabled.begin(),
                                   rec.enabled.end());
            if (cfg.sleepSets && k > 0) {
                // Inherit the parent's sleepers that are independent
                // of the step the parent just executed.
                const Frame& parent = frames[k - 1];
                for (const auto& [gid, fp] : parent.sleep) {
                    if (!fp.conflictsWith(parent.segment))
                        f.sleep.emplace(gid, fp);
                }
            }
            ++stats.states;
            stats.maxDepth = std::max<uint64_t>(stats.maxDepth, k + 1);
            frames.push_back(std::move(f));
        }

        if (cfg.dpor) {
            // Flanagan–Godefroid race reversal over the executed
            // path, at event granularity: an event is one goroutine's
            // batch of ops within a segment (forced goroutines run
            // inside the chosen goroutine's segment but are separate
            // events). For each event q, the latest earlier event p
            // of a different goroutine with a conflicting footprint
            // marks a reversal: at p's choice point, q's goroutine
            // must also be tried (or, if it was not enabled there,
            // conservatively everything enabled).
            struct Event
            {
                size_t seg;
                uint64_t gid;
                const Footprint* fp;
            };
            std::vector<Event> events;
            const size_t n =
                std::min(frames.size(), r.choices.size());
            for (size_t k = 0; k < n; ++k)
                for (const auto& [gid, fp] : r.choices[k].events)
                    events.push_back(Event{k, gid, &fp});
            for (size_t q = 1; q < events.size(); ++q) {
                for (size_t pp = q; pp-- > 0;) {
                    const Event& ep = events[pp];
                    const Event& eq = events[q];
                    if (ep.gid == eq.gid)
                        continue;
                    if (!ep.fp->conflictsWith(*eq.fp))
                        continue;
                    Frame& fi = frames[ep.seg];
                    if (!fi.visitedCut && eq.gid != fi.chosen) {
                        const bool enabledAtI =
                            std::find(fi.enabled.begin(),
                                      fi.enabled.end(), eq.gid) !=
                            fi.enabled.end();
                        if (enabledAtI)
                            fi.backtrack.insert(eq.gid);
                        else
                            fi.backtrack.insert(fi.enabled.begin(),
                                                fi.enabled.end());
                    }
                    break; // Latest conflicting event only.
                }
            }
        }

        // Verdict accounting.
        if (r.verdict.leaky()) {
            if (!out.foundFailure) {
                out.foundFailure = true;
                out.firstFailure = r.verdict;
                firstFailing.clear();
                for (const ChoiceRec& c : r.choices)
                    firstFailing.push_back(c.chosen);
                haveFailing = true;
            }
            for (const auto& [label, cnt] : r.verdict.detected) {
                (void)cnt;
                out.failedLabels.insert(label);
            }
            if (r.verdict.unexpected > 0)
                ++out.falsePositiveExecutions;
            if (cfg.stopOnFailure) {
                out.complete = false;
                break;
            }
        } else if (r.verdict.unexpected > 0) {
            ++out.falsePositiveExecutions;
        }

        // Backtrack: pop to the deepest frame with an untried,
        // non-sleeping candidate.
        bool advanced = false;
        while (!frames.empty()) {
            Frame& f = frames.back();
            f.explored.insert(f.chosen);
            f.segOf[f.chosen] = f.segment;

            uint64_t next = 0;
            bool haveNext = false;
            if (!f.visitedCut) {
                for (const uint64_t gid : f.backtrack) {
                    if (f.explored.count(gid) != 0)
                        continue;
                    if (cfg.sleepSets && f.sleep.count(gid) != 0) {
                        ++stats.sleepPruned;
                        f.explored.insert(gid); // covered elsewhere
                        continue;
                    }
                    next = gid;
                    haveNext = true;
                    break;
                }
            }
            if (haveNext) {
                if (cfg.sleepSets) {
                    // The pick we just finished goes to sleep for the
                    // remaining siblings.
                    f.sleep[f.chosen] = f.segOf[f.chosen];
                }
                f.chosen = next;
                ++stats.branches;
                advanced = true;
                break;
            }
            // Frame done. Account DPOR savings and the fingerprint.
            if (cfg.dpor && !f.visitedCut) {
                const size_t tried = f.explored.size();
                if (f.enabled.size() > tried)
                    stats.dporPruned += f.enabled.size() - tried;
            }
            if (cfg.visited && !f.visitedCut)
                visitedComplete.insert(f.fingerprint);
            frames.pop_back();
        }
        if (!advanced)
            break; // Tree exhausted.
    }

    if (haveFailing)
        mineMinimal(p, cfg, firstFailing, out, stats);

    for (auto& [key, e] : goodlock) {
        (void)key;
        out.goodlock.push_back(e);
    }

    if (metrics != nullptr)
        accumulateMetrics(*metrics, stats);
    return out;
}

} // namespace golf::mc
