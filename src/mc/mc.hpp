/**
 * @file
 * golf::mc — systematic stateless model checking of microbench
 * schedules (DESIGN.md §12).
 *
 * The deterministic runtime has exactly one source of scheduling
 * nondeterminism: Scheduler::pickNext(). Installing a SchedulePolicy
 * removes every RNG draw from the execution, so a run becomes a pure
 * function of the sequence of picks. The model checker exploits this
 * CHESS-style: it re-executes the pattern from scratch for every
 * explored branch, replaying a recorded pick prefix and then
 * following the default (first-enabled) choice, enumerating the
 * choice tree by depth-first search.
 *
 * Pruning (all optional, all on by default):
 *  - visited set: canonical state fingerprints (goroutine statuses,
 *    wait reasons, slice counts, race vector-clock frontiers, channel
 *    / mutex / waitgroup occupancy, virtual clock + pending timers)
 *    mark choice-point states whose subtree is fully explored;
 *  - sleep sets: siblings already explored at an ancestor are not
 *    re-explored below it unless the executed step conflicts;
 *  - dynamic partial-order reduction: only schedule points whose
 *    macro-steps conflict (overlapping sync-object / shared-word
 *    footprints, as instrumented by golf::race) fork branches.
 *
 * Verdict oracle: golf::Collector's ReportLog, matched to the
 * pattern's registered leak labels exactly like the harness — an
 * unmatched report on a correct pattern is a GOLF false positive.
 */
#ifndef GOLFCC_MC_MC_HPP
#define GOLFCC_MC_MC_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "microbench/registry.hpp"
#include "support/vclock.hpp"

namespace golf::obs { class Registry; }
namespace golf::rt { class Runtime; }

namespace golf::mc {

/** Exploration configuration. */
struct McConfig
{
    /** Virtual runtime before the forced GC (harness Figure 5). */
    support::VTime duration = 5 * support::kSecond;
    /** Max choice points recorded per execution; deeper executions
     *  still run to completion but stop forking (incomplete). */
    int depthBound = 256;
    /** Execution budget (0 = unlimited). */
    uint64_t maxExecutions = 0;
    /** Choice-point state budget (0 = unlimited). */
    uint64_t maxStates = 0;
    /** Dynamic partial-order reduction (off = naive full DFS). */
    bool dpor = true;
    /** Sleep-set pruning. */
    bool sleepSets = true;
    /** Visited-fingerprint pruning. */
    bool visited = true;
    /** Stop exploring once one failing schedule is found (leaky
     *  pattern mining); exhaustive proofs leave this off. */
    bool stopOnFailure = false;
    /** GC workers for the explored runtime (fingerprints must not
     *  depend on this; see tests). */
    int gcWorkers = 1;
    /** Allocator backend for the explored runtime (fingerprints and
     *  DPOR verdicts must not depend on this either; see tests). */
    gc::AllocBackend allocBackend = gc::AllocBackend::Pool;
    /** Seed for the pattern's internal data draws (ctx->rng). The
     *  schedule explorer enumerates scheduling nondeterminism only;
     *  FLAKY patterns whose leak hinges on a data draw are covered by
     *  sweeping this seed (one exhaustive exploration per seed). */
    uint64_t patternSeed = 1;
};

/** Canonical GOLF verdict of one execution. */
struct Verdict
{
    std::map<std::string, int> detected; ///< label -> reports
    int unexpected = 0;   ///< Reports at unregistered spawn sites.
    bool globalDeadlock = false;
    bool panicked = false;
    bool mainReclaimed = false;

    /** Any deadlock manifested (expected or not). */
    bool
    leaky() const
    {
        return !detected.empty() || unexpected > 0 || globalDeadlock ||
               mainReclaimed;
    }

    /** Sorted, byte-stable rendering — the -mc-check compare key. */
    std::string canonical() const;
    uint64_t hash() const;

    bool operator==(const Verdict& o) const = default;
};

/** Footprint of one macro-step: the (address, wrote) pairs the race
 *  instrumentation observed between two consecutive choice points. */
struct Footprint
{
    /** Sorted, deduplicated. */
    std::vector<std::pair<uintptr_t, bool>> ops;

    void add(uintptr_t addr, bool write);
    void normalize();
    /** Share an address with at least one side writing it. */
    bool conflictsWith(const Footprint& o) const;
};

/** One choice point of an execution. */
struct ChoiceRec
{
    std::vector<uint64_t> enabled; ///< gids, canonical queue order.
    uint64_t chosen = 0;           ///< gid picked.
    uint64_t fingerprint = 0;      ///< State hash at the choice point.
    Footprint step; ///< Ops until the next choice point (or run end).
    /** The segment's ops split by executing goroutine, in execution
     *  order. Forced (singleton-runnable) goroutines run inside the
     *  previous choice's segment; per-gid events let DPOR see their
     *  conflicts anyway. */
    std::vector<std::pair<uint64_t, Footprint>> events;
};

/** Everything one (re-)execution produced. */
struct ExecResult
{
    std::vector<ChoiceRec> choices;
    Verdict verdict;
    bool depthExceeded = false;
    uint64_t slices = 0;
    /** Deduplicated lock-order cycle keys predicted by golf::race in
     *  this execution, and whether GOLF confirmed each. */
    std::map<std::string, bool> lockOrderCycles;
};

/** A schedule: the pick-gid sequence at successive choice points;
 *  execution continues with default picks beyond the prefix. */
using Schedule = std::vector<uint64_t>;

/** Execute `p` once under `schedule` (+ default continuation). */
ExecResult runSchedule(const microbench::Pattern& p,
                       const McConfig& cfg, const Schedule& schedule);

/**
 * Canonical state fingerprint of a runtime at a scheduling
 * safepoint: per-goroutine (status, wait reason, slice count, race
 * VC frontier), schedule-relevant heap object state (mcFingerprint
 * overrides), and the virtual clock + pending-deadline multiset.
 */
uint64_t stateFingerprint(rt::Runtime& rt);

/** Exploration counters (mirrored into the obs registry). */
struct McStats
{
    uint64_t executions = 0;
    uint64_t states = 0;        ///< Choice-point states visited.
    uint64_t branches = 0;      ///< Non-default alternatives tried.
    uint64_t sleepPruned = 0;   ///< Candidates skipped by sleep sets.
    uint64_t dporPruned = 0;    ///< Candidates never forked by DPOR.
    uint64_t visitedPruned = 0; ///< Subtrees cut at known states.
    uint64_t maxDepth = 0;      ///< Deepest choice point seen.
};

/** Aggregated goodlock cross-check: one predicted lock-order cycle
 *  vs. the schedules the explorer actually realized. */
struct GoodlockEntry
{
    std::string cycle;         ///< Dedup key of the predicted cycle.
    uint64_t predictedIn = 0;  ///< Executions predicting it.
    uint64_t confirmedIn = 0;  ///< Executions where GOLF caught it.
};

/** Result of exploring one pattern. */
struct ExploreResult
{
    McStats stats;
    /** Exploration finished without hitting a depth/state/execution
     *  budget: the verdict set is exhaustive (modulo fingerprint
     *  abstraction, DESIGN.md §12). */
    bool complete = true;
    bool foundFailure = false;
    Verdict firstFailure;
    /** Shortest failing pick prefix (foundFailure only): fails, and
     *  no strict prefix of it fails. */
    Schedule minimalSchedule;
    Verdict minimalVerdict;
    /** Union of labels detected across all failing executions. */
    std::set<std::string> failedLabels;
    /** Executions whose verdict had unexpected reports (the false-
     *  positive signal on correct patterns). */
    uint64_t falsePositiveExecutions = 0;
    /** Predicted lock-order cycles vs. realizations. */
    std::vector<GoodlockEntry> goodlock;
};

/**
 * Explore `p`'s choice tree by stateless DFS. When `metrics` is
 * given, /mc/... counters are registered there and updated as the
 * exploration runs.
 */
ExploreResult explore(const microbench::Pattern& p, const McConfig& cfg,
                      obs::Registry* metrics = nullptr);

/** Register (or re-find) the /mc/ counters on a registry. */
void registerMetrics(obs::Registry& reg);
/** Add one exploration's stats onto the registry's /mc/ counters. */
void accumulateMetrics(obs::Registry& reg, const McStats& s);

/// @{ Replayable trace files ("golf-mc-trace v1", results/mc/*.trace).
struct TraceFile
{
    std::string pattern;
    bool correct = false;
    support::VTime duration = 5 * support::kSecond;
    uint64_t patternSeed = 1;
    Schedule schedule;
    /** Choice-point enabled sets, parallel to `schedule` (replay
     *  drift check: replay must see the same enabled gids). */
    std::vector<std::vector<uint64_t>> enabled;
    std::string verdictCanonical;
    uint64_t verdictHash = 0;
};

/** Serialize; the exact byte format -mc-check re-parses. */
std::string writeTrace(const TraceFile& t);
/** Parse; returns false (and fills err) on malformed input. */
bool parseTrace(std::istream& in, TraceFile& out, std::string& err);
/// @}

/** File-name-safe pattern slug ("cockroach/1462" -> "cockroach_1462"). */
std::string patternSlug(const std::string& name);

} // namespace golf::mc

#endif // GOLFCC_MC_MC_HPP
