/**
 * @file
 * One deterministic (re-)execution of a microbench pattern under a
 * prescribed pick schedule: the model checker's next-state engine.
 */
#include "mc/mc.hpp"

#include <algorithm>
#include <sstream>

#include "golf/collector.hpp"
#include "golf/report.hpp"
#include "race/detector.hpp"
#include "runtime/runtime.hpp"
#include "support/panic.hpp"

namespace golf::mc {

namespace {

/** The harness Figure 5 template reduced to one instance and zero
 *  stagger: spawn the pattern body, run, force a GC. */
rt::Go
mcMain(microbench::PatternCtx* ctx, const microbench::Pattern* p,
       support::VTime duration)
{
    ctx->rt->goAt(rt::Site{"<mc>", 0, "spawn"}, p->body, ctx);
    co_await rt::sleepFor(duration);
    co_await rt::gcNow();
    co_return;
}

/**
 * Replays a pick prefix, then follows the default (first-enabled)
 * pick, recording every choice point: enabled set, state fingerprint,
 * and the footprint of ops until the next choice point.
 */
class ReplayPolicy : public rt::SchedulePolicy
{
  public:
    ReplayPolicy(rt::Runtime& rt, const Schedule& prefix,
                 int depthBound)
        : rt_(rt), prefix_(prefix), depthBound_(depthBound)
    {
    }

    size_t
    pick(const std::vector<rt::Goroutine*>& runnable) override
    {
        if (runnable.size() == 1)
            return 0; // Forced: not a choice point.
        flushSegment();
        if (static_cast<int>(choices_.size()) >=
            depthBound_ + static_cast<int>(prefix_.size())) {
            // Over budget: stop recording, follow defaults so the
            // execution still terminates with a verdict.
            depthExceeded_ = true;
            return 0;
        }
        ChoiceRec rec;
        rec.enabled.reserve(runnable.size());
        for (const rt::Goroutine* g : runnable)
            rec.enabled.push_back(g->id());
        rec.fingerprint = stateFingerprint(rt_);
        size_t idx = 0;
        if (choices_.size() < prefix_.size()) {
            const uint64_t want = prefix_[choices_.size()];
            auto it = std::find(rec.enabled.begin(), rec.enabled.end(),
                                want);
            if (it == rec.enabled.end())
                support::panic(
                    "mc replay drift: prescribed goroutine " +
                    std::to_string(want) + " not enabled at choice " +
                    std::to_string(choices_.size()));
            idx = static_cast<size_t>(it - rec.enabled.begin());
        }
        rec.chosen = rec.enabled[idx];
        choices_.push_back(std::move(rec));
        segmentOpen_ = true;
        return idx;
    }

    /** Race-instrumentation tap: accumulate the running segment,
     *  split by executing goroutine (forced goroutines run inside the
     *  chosen goroutine's segment — DPOR needs to see them apart). */
    void
    onOp(uint64_t gid, uintptr_t addr, bool write)
    {
        if (!segmentOpen_)
            return;
        ChoiceRec& rec = choices_.back();
        rec.step.add(addr, write);
        if (rec.events.empty() || rec.events.back().first != gid)
            rec.events.emplace_back(gid, Footprint{});
        rec.events.back().second.add(addr, write);
    }

    /** Close the trailing segment at end of run. */
    void
    finish()
    {
        flushSegment();
    }

    std::vector<ChoiceRec> takeChoices() { return std::move(choices_); }
    bool depthExceeded() const { return depthExceeded_; }

  private:
    void
    flushSegment()
    {
        if (!segmentOpen_)
            return;
        choices_.back().step.normalize();
        for (auto& [gid, fp] : choices_.back().events) {
            (void)gid;
            fp.normalize();
        }
        segmentOpen_ = false;
    }

    rt::Runtime& rt_;
    const Schedule& prefix_;
    int depthBound_;
    std::vector<ChoiceRec> choices_;
    bool segmentOpen_ = false;
    bool depthExceeded_ = false;
};

uint64_t
fnvMix(uint64_t h, uint64_t v)
{
    h ^= v;
    h *= 0x100000001b3ull;
    return h;
}

} // namespace

uint64_t
stateFingerprint(rt::Runtime& rt)
{
    // Canonical state hash (DESIGN.md §12): per-goroutine scheduling
    // state + race vector-clock frontier, schedule-relevant heap
    // object state, and the virtual clock with its pending-deadline
    // multiset. Two schedules reaching the same fingerprint enable
    // the same continuations.
    struct GRec
    {
        uint64_t id;
        uint64_t packed;
        uint64_t frontier;
    };
    std::vector<GRec> gs;
    const race::Detector* rd = rt.raceDetector();
    rt.forEachGoroutine([&](rt::Goroutine* g) {
        if (g->status() == rt::GStatus::Idle)
            return; // Pooled: no schedule-relevant state.
        GRec r;
        r.id = g->id();
        r.packed = (static_cast<uint64_t>(g->status()) << 48) |
                   (static_cast<uint64_t>(g->waitReason()) << 40) |
                   (static_cast<uint64_t>(g->blockedForever()) << 39) |
                   (g->slicesRun() & ((1ull << 39) - 1));
        r.frontier = rd ? rd->frontierHash(g) : 0;
        gs.push_back(r);
    });
    std::sort(gs.begin(), gs.end(),
              [](const GRec& a, const GRec& b) { return a.id < b.id; });
    uint64_t h = 0xcbf29ce484222325ull;
    for (const GRec& r : gs) {
        h = fnvMix(h, r.id);
        h = fnvMix(h, r.packed);
        h = fnvMix(h, r.frontier);
    }
    // Heap objects ordered by allocation sequence number, never by
    // iteration order (which follows span/slot placement and would
    // encode allocator-backend-dependent addresses); only schedule-
    // relevant objects contribute. This is what makes fingerprints
    // identical across the pool and legacy allocators.
    std::vector<std::pair<uint64_t, uint64_t>> objs;
    rt.heap().forEachObject([&](const gc::Object* o) {
        const uint64_t f = o->mcFingerprint();
        if (f != 0)
            objs.emplace_back(o->allocSeq(), f);
    });
    std::sort(objs.begin(), objs.end());
    for (const auto& [seq, f] : objs) {
        h = fnvMix(h, seq);
        h = fnvMix(h, f);
    }
    h = fnvMix(h, rt.clock().fingerprint());
    return h;
}

void
Footprint::add(uintptr_t addr, bool write)
{
    ops.emplace_back(addr, write);
}

void
Footprint::normalize()
{
    std::sort(ops.begin(), ops.end());
    ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
}

bool
Footprint::conflictsWith(const Footprint& o) const
{
    // Merge-walk the sorted op lists: a conflict is a shared address
    // with at least one side writing it.
    size_t i = 0, j = 0;
    while (i < ops.size() && j < o.ops.size()) {
        const uintptr_t a = ops[i].first;
        const uintptr_t b = o.ops[j].first;
        if (a < b) {
            ++i;
        } else if (b < a) {
            ++j;
        } else {
            // Same address; scan the (at most two) entries per side.
            bool write = false;
            while (i < ops.size() && ops[i].first == a)
                write = write || ops[i++].second;
            bool owrite = false;
            while (j < o.ops.size() && o.ops[j].first == a)
                owrite = owrite || o.ops[j++].second;
            if (write || owrite)
                return true;
        }
    }
    return false;
}

std::string
Verdict::canonical() const
{
    std::ostringstream os;
    bool first = true;
    for (const auto& [label, n] : detected) {
        os << (first ? "" : ";") << label << "=" << n;
        first = false;
    }
    os << "|unexpected=" << unexpected
       << "|globalDeadlock=" << (globalDeadlock ? 1 : 0)
       << "|panicked=" << (panicked ? 1 : 0)
       << "|mainReclaimed=" << (mainReclaimed ? 1 : 0);
    return os.str();
}

uint64_t
Verdict::hash() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : canonical())
        h = fnvMix(h, static_cast<unsigned char>(c));
    return h;
}

ExecResult
runSchedule(const microbench::Pattern& p, const McConfig& cfg,
            const Schedule& schedule)
{
    rt::Config rc;
    rc.procs = 1;
    rc.seed = 1;
    rc.gcMode = rt::GcMode::Golf;
    // Detect-only: verdicts come from the ReportLog; reclaiming would
    // mutate post-verdict state for no exploration benefit.
    rc.recovery = rt::Recovery::Detect;
    rc.gcWorkers = cfg.gcWorkers;
    rc.heap.backend = cfg.allocBackend;
    rc.race = true; // DPOR footprints + frontier hashes + goodlock.
    rc.obs.enabled = false;

    rt::Runtime runtime(rc);
    microbench::PatternCtx ctx;
    ctx.rt = &runtime;
    // Pattern-internal data draws: fixed per exploration; FLAKY
    // patterns are covered by sweeping cfg.patternSeed.
    ctx.rng = support::Rng(cfg.patternSeed);
    ctx.procs = 1;

    ReplayPolicy policy(runtime, schedule, cfg.depthBound);
    runtime.sched().setPolicy(&policy);
    runtime.raceDetector()->setOpSink(
        [&policy](uint64_t gid, uintptr_t obj, bool write) {
            policy.onOp(gid, obj, write);
        });

    rt::RunResult rr =
        runtime.runMain(mcMain, &ctx, &p, cfg.duration);
    policy.finish();

    ExecResult out;
    out.choices = policy.takeChoices();
    out.depthExceeded = policy.depthExceeded();
    out.verdict.globalDeadlock = rr.globalDeadlock;
    out.verdict.panicked = rr.panicked;
    out.verdict.mainReclaimed = rr.mainReclaimed;

    std::map<std::string, std::string> labelOfSite;
    for (const auto& [label, site] : ctx.siteOfLabel)
        labelOfSite[site] = label;
    for (const auto& r : runtime.collector().reports().all()) {
        auto it = labelOfSite.find(r.spawnSite.str());
        if (it != labelOfSite.end())
            ++out.verdict.detected[it->second];
        else
            ++out.verdict.unexpected;
    }

    for (const auto& c : runtime.raceDetector()->log().lockOrders()) {
        bool& confirmed = out.lockOrderCycles[c.dedupKey()];
        confirmed = confirmed || c.confirmedByGolf;
    }

    uint64_t slices = 0;
    runtime.forEachGoroutine(
        [&slices](rt::Goroutine* g) { slices += g->slicesRun(); });
    out.slices = slices;
    return out;
}

} // namespace golf::mc
