# Empty compiler generated dependencies file for table1_microbench_detection.
# This may be replaced when dependencies are built.
