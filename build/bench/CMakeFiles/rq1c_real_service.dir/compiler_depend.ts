# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rq1c_real_service.
