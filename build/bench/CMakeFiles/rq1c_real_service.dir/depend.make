# Empty dependencies file for rq1c_real_service.
# This may be replaced when dependencies are built.
