file(REMOVE_RECURSE
  "CMakeFiles/rq1c_real_service.dir/rq1c_real_service.cpp.o"
  "CMakeFiles/rq1c_real_service.dir/rq1c_real_service.cpp.o.d"
  "rq1c_real_service"
  "rq1c_real_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rq1c_real_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
