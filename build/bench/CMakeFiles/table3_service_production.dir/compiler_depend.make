# Empty compiler generated dependencies file for table3_service_production.
# This may be replaced when dependencies are built.
