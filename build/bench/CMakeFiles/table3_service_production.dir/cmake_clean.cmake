file(REMOVE_RECURSE
  "CMakeFiles/table3_service_production.dir/table3_service_production.cpp.o"
  "CMakeFiles/table3_service_production.dir/table3_service_production.cpp.o.d"
  "table3_service_production"
  "table3_service_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_service_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
