# Empty dependencies file for ablation_detect_frequency.
# This may be replaced when dependencies are built.
