file(REMOVE_RECURSE
  "CMakeFiles/ablation_detect_frequency.dir/ablation_detect_frequency.cpp.o"
  "CMakeFiles/ablation_detect_frequency.dir/ablation_detect_frequency.cpp.o.d"
  "ablation_detect_frequency"
  "ablation_detect_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_detect_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
