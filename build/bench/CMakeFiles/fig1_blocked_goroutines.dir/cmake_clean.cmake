file(REMOVE_RECURSE
  "CMakeFiles/fig1_blocked_goroutines.dir/fig1_blocked_goroutines.cpp.o"
  "CMakeFiles/fig1_blocked_goroutines.dir/fig1_blocked_goroutines.cpp.o.d"
  "fig1_blocked_goroutines"
  "fig1_blocked_goroutines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_blocked_goroutines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
