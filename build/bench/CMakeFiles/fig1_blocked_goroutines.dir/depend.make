# Empty dependencies file for fig1_blocked_goroutines.
# This may be replaced when dependencies are built.
