file(REMOVE_RECURSE
  "CMakeFiles/gc_mark_micro.dir/gc_mark_micro.cpp.o"
  "CMakeFiles/gc_mark_micro.dir/gc_mark_micro.cpp.o.d"
  "gc_mark_micro"
  "gc_mark_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_mark_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
