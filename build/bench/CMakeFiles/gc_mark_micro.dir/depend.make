# Empty dependencies file for gc_mark_micro.
# This may be replaced when dependencies are built.
