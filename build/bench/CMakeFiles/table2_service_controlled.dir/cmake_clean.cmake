file(REMOVE_RECURSE
  "CMakeFiles/table2_service_controlled.dir/table2_service_controlled.cpp.o"
  "CMakeFiles/table2_service_controlled.dir/table2_service_controlled.cpp.o.d"
  "table2_service_controlled"
  "table2_service_controlled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_service_controlled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
