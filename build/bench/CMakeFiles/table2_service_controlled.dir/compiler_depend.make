# Empty compiler generated dependencies file for table2_service_controlled.
# This may be replaced when dependencies are built.
