# Empty compiler generated dependencies file for fig3_golf_vs_goleak.
# This may be replaced when dependencies are built.
