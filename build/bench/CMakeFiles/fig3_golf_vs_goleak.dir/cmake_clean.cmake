file(REMOVE_RECURSE
  "CMakeFiles/fig3_golf_vs_goleak.dir/fig3_golf_vs_goleak.cpp.o"
  "CMakeFiles/fig3_golf_vs_goleak.dir/fig3_golf_vs_goleak.cpp.o.d"
  "fig3_golf_vs_goleak"
  "fig3_golf_vs_goleak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_golf_vs_goleak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
