# Empty compiler generated dependencies file for finalizer_semantics.
# This may be replaced when dependencies are built.
