file(REMOVE_RECURSE
  "CMakeFiles/finalizer_semantics.dir/finalizer_semantics.cpp.o"
  "CMakeFiles/finalizer_semantics.dir/finalizer_semantics.cpp.o.d"
  "finalizer_semantics"
  "finalizer_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finalizer_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
