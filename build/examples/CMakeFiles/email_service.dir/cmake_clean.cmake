file(REMOVE_RECURSE
  "CMakeFiles/email_service.dir/email_service.cpp.o"
  "CMakeFiles/email_service.dir/email_service.cpp.o.d"
  "email_service"
  "email_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/email_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
