# Empty compiler generated dependencies file for email_service.
# This may be replaced when dependencies are built.
