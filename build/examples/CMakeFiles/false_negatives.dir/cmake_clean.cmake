file(REMOVE_RECURSE
  "CMakeFiles/false_negatives.dir/false_negatives.cpp.o"
  "CMakeFiles/false_negatives.dir/false_negatives.cpp.o.d"
  "false_negatives"
  "false_negatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/false_negatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
