# Empty compiler generated dependencies file for false_negatives.
# This may be replaced when dependencies are built.
