file(REMOVE_RECURSE
  "CMakeFiles/func_manager.dir/func_manager.cpp.o"
  "CMakeFiles/func_manager.dir/func_manager.cpp.o.d"
  "func_manager"
  "func_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/func_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
