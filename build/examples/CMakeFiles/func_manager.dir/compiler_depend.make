# Empty compiler generated dependencies file for func_manager.
# This may be replaced when dependencies are built.
