# Empty compiler generated dependencies file for structured_pipeline.
# This may be replaced when dependencies are built.
