file(REMOVE_RECURSE
  "CMakeFiles/structured_pipeline.dir/structured_pipeline.cpp.o"
  "CMakeFiles/structured_pipeline.dir/structured_pipeline.cpp.o.d"
  "structured_pipeline"
  "structured_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structured_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
