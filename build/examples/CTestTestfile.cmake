# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;11;golf_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_func_manager "/root/repo/build/examples/func_manager")
set_tests_properties(example_func_manager PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;12;golf_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_email_service "/root/repo/build/examples/email_service")
set_tests_properties(example_email_service PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;13;golf_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_finalizer_semantics "/root/repo/build/examples/finalizer_semantics")
set_tests_properties(example_finalizer_semantics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;14;golf_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_false_negatives "/root/repo/build/examples/false_negatives")
set_tests_properties(example_false_negatives PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;15;golf_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_structured_pipeline "/root/repo/build/examples/structured_pipeline")
set_tests_properties(example_structured_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;16;golf_example;/root/repo/examples/CMakeLists.txt;0;")
