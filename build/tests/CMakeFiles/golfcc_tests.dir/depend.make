# Empty dependencies file for golfcc_tests.
# This may be replaced when dependencies are built.
