
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chan_model_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/chan_model_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/chan_model_test.cpp.o.d"
  "/root/repo/tests/chan_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/chan_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/chan_test.cpp.o.d"
  "/root/repo/tests/collector_stats_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/collector_stats_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/collector_stats_test.cpp.o.d"
  "/root/repo/tests/context_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/context_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/context_test.cpp.o.d"
  "/root/repo/tests/detection_rate_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/detection_rate_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/detection_rate_test.cpp.o.d"
  "/root/repo/tests/eager_liveness_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/eager_liveness_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/eager_liveness_test.cpp.o.d"
  "/root/repo/tests/errgroup_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/errgroup_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/errgroup_test.cpp.o.d"
  "/root/repo/tests/gc_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/gc_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/gc_test.cpp.o.d"
  "/root/repo/tests/golf_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/golf_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/golf_test.cpp.o.d"
  "/root/repo/tests/hints_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/hints_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/hints_test.cpp.o.d"
  "/root/repo/tests/leakdetect_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/leakdetect_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/leakdetect_test.cpp.o.d"
  "/root/repo/tests/microbench_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/microbench_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/microbench_test.cpp.o.d"
  "/root/repo/tests/pool_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/pool_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/pool_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/reclaim_injection_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/reclaim_injection_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/reclaim_injection_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/runtime_edge_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/runtime_edge_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/runtime_edge_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/select_fairness_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/select_fairness_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/select_fairness_test.cpp.o.d"
  "/root/repo/tests/service_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/service_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/service_test.cpp.o.d"
  "/root/repo/tests/soak_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/soak_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/soak_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/sync_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/sync_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/sync_test.cpp.o.d"
  "/root/repo/tests/tracer_test.cpp" "tests/CMakeFiles/golfcc_tests.dir/tracer_test.cpp.o" "gcc" "tests/CMakeFiles/golfcc_tests.dir/tracer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/golfcc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
