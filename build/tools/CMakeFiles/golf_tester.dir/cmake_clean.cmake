file(REMOVE_RECURSE
  "CMakeFiles/golf_tester.dir/golf_tester.cpp.o"
  "CMakeFiles/golf_tester.dir/golf_tester.cpp.o.d"
  "golf_tester"
  "golf_tester.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golf_tester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
