# Empty compiler generated dependencies file for golf_tester.
# This may be replaced when dependencies are built.
