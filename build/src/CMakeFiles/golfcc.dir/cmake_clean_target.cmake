file(REMOVE_RECURSE
  "libgolfcc.a"
)
