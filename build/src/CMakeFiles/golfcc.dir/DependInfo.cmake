
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/heap.cpp" "src/CMakeFiles/golfcc.dir/gc/heap.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/gc/heap.cpp.o.d"
  "/root/repo/src/gc/marker.cpp" "src/CMakeFiles/golfcc.dir/gc/marker.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/gc/marker.cpp.o.d"
  "/root/repo/src/golf/collector.cpp" "src/CMakeFiles/golfcc.dir/golf/collector.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/golf/collector.cpp.o.d"
  "/root/repo/src/golf/report.cpp" "src/CMakeFiles/golfcc.dir/golf/report.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/golf/report.cpp.o.d"
  "/root/repo/src/leakdetect/goleak.cpp" "src/CMakeFiles/golfcc.dir/leakdetect/goleak.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/leakdetect/goleak.cpp.o.d"
  "/root/repo/src/leakdetect/leakprof.cpp" "src/CMakeFiles/golfcc.dir/leakdetect/leakprof.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/leakdetect/leakprof.cpp.o.d"
  "/root/repo/src/microbench/harness.cpp" "src/CMakeFiles/golfcc.dir/microbench/harness.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/microbench/harness.cpp.o.d"
  "/root/repo/src/microbench/patterns_cgo.cpp" "src/CMakeFiles/golfcc.dir/microbench/patterns_cgo.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/microbench/patterns_cgo.cpp.o.d"
  "/root/repo/src/microbench/patterns_cockroach.cpp" "src/CMakeFiles/golfcc.dir/microbench/patterns_cockroach.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/microbench/patterns_cockroach.cpp.o.d"
  "/root/repo/src/microbench/patterns_correct.cpp" "src/CMakeFiles/golfcc.dir/microbench/patterns_correct.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/microbench/patterns_correct.cpp.o.d"
  "/root/repo/src/microbench/patterns_etcd.cpp" "src/CMakeFiles/golfcc.dir/microbench/patterns_etcd.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/microbench/patterns_etcd.cpp.o.d"
  "/root/repo/src/microbench/patterns_grpc.cpp" "src/CMakeFiles/golfcc.dir/microbench/patterns_grpc.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/microbench/patterns_grpc.cpp.o.d"
  "/root/repo/src/microbench/patterns_hugo.cpp" "src/CMakeFiles/golfcc.dir/microbench/patterns_hugo.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/microbench/patterns_hugo.cpp.o.d"
  "/root/repo/src/microbench/patterns_kubernetes.cpp" "src/CMakeFiles/golfcc.dir/microbench/patterns_kubernetes.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/microbench/patterns_kubernetes.cpp.o.d"
  "/root/repo/src/microbench/patterns_misc.cpp" "src/CMakeFiles/golfcc.dir/microbench/patterns_misc.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/microbench/patterns_misc.cpp.o.d"
  "/root/repo/src/microbench/patterns_moby.cpp" "src/CMakeFiles/golfcc.dir/microbench/patterns_moby.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/microbench/patterns_moby.cpp.o.d"
  "/root/repo/src/microbench/patterns_sync.cpp" "src/CMakeFiles/golfcc.dir/microbench/patterns_sync.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/microbench/patterns_sync.cpp.o.d"
  "/root/repo/src/microbench/registry.cpp" "src/CMakeFiles/golfcc.dir/microbench/registry.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/microbench/registry.cpp.o.d"
  "/root/repo/src/runtime/context.cpp" "src/CMakeFiles/golfcc.dir/runtime/context.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/runtime/context.cpp.o.d"
  "/root/repo/src/runtime/goroutine.cpp" "src/CMakeFiles/golfcc.dir/runtime/goroutine.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/runtime/goroutine.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/CMakeFiles/golfcc.dir/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/runtime/runtime.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/CMakeFiles/golfcc.dir/runtime/scheduler.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/runtime/scheduler.cpp.o.d"
  "/root/repo/src/runtime/timeapi.cpp" "src/CMakeFiles/golfcc.dir/runtime/timeapi.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/runtime/timeapi.cpp.o.d"
  "/root/repo/src/runtime/tracer.cpp" "src/CMakeFiles/golfcc.dir/runtime/tracer.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/runtime/tracer.cpp.o.d"
  "/root/repo/src/service/corpus.cpp" "src/CMakeFiles/golfcc.dir/service/corpus.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/service/corpus.cpp.o.d"
  "/root/repo/src/service/metrics.cpp" "src/CMakeFiles/golfcc.dir/service/metrics.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/service/metrics.cpp.o.d"
  "/root/repo/src/service/service.cpp" "src/CMakeFiles/golfcc.dir/service/service.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/service/service.cpp.o.d"
  "/root/repo/src/service/workload.cpp" "src/CMakeFiles/golfcc.dir/service/workload.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/service/workload.cpp.o.d"
  "/root/repo/src/support/panic.cpp" "src/CMakeFiles/golfcc.dir/support/panic.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/support/panic.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/golfcc.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/golfcc.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/vclock.cpp" "src/CMakeFiles/golfcc.dir/support/vclock.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/support/vclock.cpp.o.d"
  "/root/repo/src/sync/condvar.cpp" "src/CMakeFiles/golfcc.dir/sync/condvar.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/sync/condvar.cpp.o.d"
  "/root/repo/src/sync/mutex.cpp" "src/CMakeFiles/golfcc.dir/sync/mutex.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/sync/mutex.cpp.o.d"
  "/root/repo/src/sync/rwmutex.cpp" "src/CMakeFiles/golfcc.dir/sync/rwmutex.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/sync/rwmutex.cpp.o.d"
  "/root/repo/src/sync/semaphore.cpp" "src/CMakeFiles/golfcc.dir/sync/semaphore.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/sync/semaphore.cpp.o.d"
  "/root/repo/src/sync/waitgroup.cpp" "src/CMakeFiles/golfcc.dir/sync/waitgroup.cpp.o" "gcc" "src/CMakeFiles/golfcc.dir/sync/waitgroup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
