# Empty compiler generated dependencies file for golfcc.
# This may be replaced when dependencies are built.
