/**
 * @file
 * Quickstart: golfcc in 80 lines.
 *
 * Shows the core workflow: create a Runtime, write goroutine bodies
 * as coroutines, communicate over channels, and let the GOLF
 * collector find (and reclaim) a partial deadlock for you.
 *
 *   $ ./quickstart
 */
#include <cstdio>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

using namespace golf;
using chan::Channel;

/** A worker that doubles numbers until its input channel closes. */
rt::Go
doubler(Channel<int>* in, Channel<int>* out)
{
    while (true) {
        auto r = co_await chan::recv(in);
        if (!r.ok)
            break;
        co_await chan::send(out, 2 * r.value);
    }
    chan::close(out);
    co_return;
}

/** A worker someone forgot about: its channel is dropped by main,
 *  so it can never be unblocked — a partial deadlock. */
rt::Go
forgotten(Channel<int>* ch)
{
    co_await chan::recv(ch);
    std::printf("this line never runs\n");
    co_return;
}

rt::Go
mainGoroutine(rt::Runtime* rtp)
{
    rt::Runtime& rt = *rtp;

    // A healthy pipeline: main -> doubler -> main.
    gc::Local<Channel<int>> in(chan::makeChan<int>(rt, 0));
    gc::Local<Channel<int>> out(chan::makeChan<int>(rt, 0));
    GOLF_GO(rt, doubler, in.get(), out.get());

    for (int i = 1; i <= 3; ++i) {
        co_await chan::send(in.get(), i);
        auto r = co_await chan::recv(out.get());
        std::printf("doubled %d -> %d\n", i, r.value);
    }
    chan::close(in.get());

    // The bug: spawn a goroutine on a channel we immediately drop.
    GOLF_GO(rt, forgotten, chan::makeChan<int>(rt, 0));

    // Give it a moment to park, then force a GC cycle — in real
    // runs the allocation pacer triggers collections by itself.
    co_await rt::sleepFor(support::kMillisecond);
    co_await rt::gcNow();

    const auto& reports = rt.collector().reports();
    std::printf("\nGOLF found %zu partial deadlock(s):\n",
                reports.total());
    for (const auto& rep : reports.all())
        std::printf("%s\n", rep.str().c_str());

    // One more cycle reclaims the goroutine and its memory.
    co_await rt::gcNow();
    std::printf("\nafter recovery: %zu blocked goroutines, "
                "%llu live heap objects\n",
                rtp->blockedCandidates().size(),
                static_cast<unsigned long long>(
                    rt.heap().liveObjects()));
    co_return;
}

int
main()
{
    rt::Runtime runtime;
    rt::RunResult result = runtime.runMain(mainGoroutine, &runtime);
    std::printf("run ok: %s\n", result.ok() ? "yes" : "no");
    return result.ok() ? 0 : 1;
}
