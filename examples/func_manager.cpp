/**
 * @file
 * The paper's motivating example (Listing 3): GoFuncManager.
 *
 * NewFuncManager spawns two goroutines that range over embedded
 * channels; the implicit contract is that every caller eventually
 * invokes WaitForResults, which closes both channels. ConcurrentTask
 * violates the contract on an early-return path, deadlocking both
 * iterating goroutines. GOLF detects the pair once the manager
 * object becomes unreachable from live goroutines.
 *
 *   $ ./func_manager
 */
#include <cstdio>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

using namespace golf;
using chan::Channel;

/** The goFuncManager struct of Listing 3. */
class GoFuncManager : public gc::Object
{
  public:
    Channel<int>* e = nullptr; ///< error channel
    Channel<int>* d = nullptr; ///< data channel

    void
    trace(gc::Marker& m) override
    {
        m.mark(e);
        m.mark(d);
    }

    const char* objectName() const override { return "goFuncManager"; }
};

rt::Go
drainErrors(GoFuncManager* gfm)
{
    int seen = 0;
    while (true) { // for err := range gfm.e
        auto r = co_await chan::recv(gfm->e);
        if (!r.ok)
            break;
        ++seen;
    }
    std::printf("error drainer exited after %d errors\n", seen);
    co_return;
}

rt::Go
drainData(GoFuncManager* gfm)
{
    int seen = 0;
    while (true) { // for data := range gfm.d
        auto r = co_await chan::recv(gfm->d);
        if (!r.ok)
            break;
        ++seen;
    }
    std::printf("data drainer exited after %d items\n", seen);
    co_return;
}

/** NewFuncManager (Listing 3 lines 29-41). */
GoFuncManager*
newFuncManager(rt::Runtime& rt)
{
    GoFuncManager* gfm = rt.make<GoFuncManager>();
    gfm->e = chan::makeChan<int>(rt, 0);
    gfm->d = chan::makeChan<int>(rt, 0);
    GOLF_GO(rt, drainErrors, gfm);
    GOLF_GO(rt, drainData, gfm);
    return gfm;
}

/** WaitForResults (lines 43-48): the contract-fulfilling path. */
void
waitForResults(GoFuncManager* gfm)
{
    chan::close(gfm->e);
    chan::close(gfm->d);
}

/** ConcurrentTask (lines 49-55). */
rt::Task<void>
concurrentTask(rt::Runtime& rt, bool earlyReturn)
{
    gc::Local<GoFuncManager> gfm(newFuncManager(rt));
    co_await rt::sleepFor(support::kMillisecond); // do some work
    if (earlyReturn) {
        std::printf("ConcurrentTask: error path taken, returning "
                    "without WaitForResults\n");
        co_return; // the two drainers are now doomed
    }
    waitForResults(gfm.get());
    co_return;
}

rt::Go
mainGoroutine(rt::Runtime* rtp)
{
    std::printf("--- correct run (WaitForResults called) ---\n");
    co_await concurrentTask(*rtp, false);
    co_await rt::sleepFor(support::kMillisecond);
    co_await rt::gcNow();
    std::printf("reports so far: %zu\n\n",
                rtp->collector().reports().total());

    std::printf("--- buggy run (early return) ---\n");
    co_await concurrentTask(*rtp, true);
    co_await rt::sleepFor(support::kMillisecond);
    co_await rt::gcNow();

    const auto& log = rtp->collector().reports();
    std::printf("GOLF reports after the buggy run: %zu\n",
                log.total());
    for (const auto& rep : log.all())
        std::printf("%s\n", rep.str().c_str());
    co_return;
}

int
main()
{
    rt::Runtime runtime;
    rt::RunResult r = runtime.runMain(mainGoroutine, &runtime);
    return r.ok() &&
                   runtime.collector().reports().total() == 2
        ? 0 : 1;
}
