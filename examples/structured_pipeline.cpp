/**
 * @file
 * Structured concurrency on golfcc: a request pipeline built from
 * context (deadline + cancellation), errgroup (fan-out with error
 * propagation) and channels — plus the scheduling tracer showing
 * what actually happened, and GOLF catching the one stage that
 * ignores its context.
 *
 *   $ ./structured_pipeline
 */
#include <cstdio>

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "golf/collector.hpp"
#include "runtime/context.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "runtime/timeapi.hpp"
#include "sync/errgroup.hpp"

using namespace golf;
using chan::Channel;
using support::kMillisecond;

namespace {

/** A well-behaved stage: fetches one shard, honours cancellation. */
rt::Task<int>
fetchShard(rt::Context* ctx, Channel<int>* results, int shard)
{
    auto* latency = rt::after(*rt::Runtime::current(),
                              (1 + shard % 3) * kMillisecond);
    int idx = co_await chan::select(chan::recvCase(latency),
                                    chan::recvCase(ctx->done()));
    if (idx == 1)
        co_return 0; // cancelled: clean exit, nothing leaked
    int sendIdx = co_await chan::select(
        chan::sendCase(results, shard * 10),
        chan::recvCase(ctx->done()));
    (void)sendIdx;
    co_return 0;
}

/** The buggy stage: it ignores ctx.Done() entirely — the classic
 *  mistake GOLF exists to catch. */
rt::Task<int>
auditStage(Channel<int>* auditQueue)
{
    co_await chan::send(auditQueue, 1); // no consumer, no ctx guard
    co_return 0;
}

rt::Go
handleQuery(rt::Runtime* rtp)
{
    rt::Runtime& rt = *rtp;

    // A 10ms deadline governs the whole query.
    gc::Local<rt::Context> ctx(rt::withTimeout(
        rt, rt::background(rt), 10 * kMillisecond));
    gc::Local<sync::ErrGroup> group(rt.make<sync::ErrGroup>(
        rt, ctx.get()));
    gc::Local<Channel<int>> results(chan::makeChan<int>(rt, 0));

    for (int shard = 0; shard < 4; ++shard)
        group->spawn(fetchShard, ctx.get(), results.get(), shard);

    // The buggy audit stage: fire-and-forget on a dropped queue.
    group->spawn(auditStage, chan::makeChan<int>(rt, 0));

    // Gather what arrives before the deadline.
    int gathered = 0;
    while (gathered < 4) {
        int v = 0;
        int idx = co_await chan::select(
            chan::recvCase(results.get(), &v),
            chan::recvCase(ctx->done()));
        if (idx == 1)
            break;
        std::printf("  shard result %d\n", v);
        ++gathered;
    }
    std::printf("gathered %d shard results before the deadline\n",
                gathered);
    // NOTE: the handler returns without group->wait() — the audit
    // stage is stranded, but the well-behaved stages all exit via
    // ctx.Done() once the deadline fires.
    co_return;
}

rt::Go
mainGoroutine(rt::Runtime* rtp)
{
    GOLF_GO(*rtp, handleQuery, rtp);
    co_await rt::sleepFor(20 * kMillisecond); // deadline passes
    co_await rt::gcNow();

    std::printf("\nGOLF verdicts after the query:\n");
    for (const auto& rep : rtp->collector().reports().all())
        std::printf("%s\n", rep.str().c_str());
    std::printf("\nscheduler trace summary:\n%s",
                rtp->tracer().summary().c_str());
    co_return;
}

} // namespace

int
main()
{
    rt::Runtime runtime;
    runtime.tracer().enable();
    runtime.runMain(mainGoroutine, &runtime);
    // Exactly one leak: the audit stage. Everything else exited
    // cleanly through structured cancellation.
    const bool ok = runtime.collector().reports().total() == 1;
    std::printf("\nstructured pipeline leaked exactly the buggy "
                "stage: %s\n", ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
