/**
 * @file
 * Preserving Go semantics around finalizers (Listing 6, Section 5.5).
 *
 * A deadlocked goroutine's closure carries a finalizer that would
 * divide by zero if it ever ran. In ordinary Go the finalizer never
 * runs (the goroutine is leaked but alive); naively reclaiming the
 * goroutine would trigger it. GOLF therefore scans the closure while
 * marking it and, on finding a finalizer, parks the goroutine in the
 * permanently-live Deadlocked state: reported once, never reclaimed,
 * finalizer never invoked.
 *
 *   $ ./finalizer_semantics
 */
#include <cstdio>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

using namespace golf;
using chan::Channel;

namespace {

int gFinalizerRuns = 0;

/** The vs slice of Listing 6. */
class IntSlice : public gc::Object
{
  public:
    std::vector<int> values;
    const char* objectName() const override { return "[]int"; }
};

/** PrintAverage's goroutine (Listing 6 lines 86-98). */
rt::Go
averageTask(rt::Runtime* rtp, Channel<int>* ch)
{
    gc::Local<IntSlice> vs(rtp->make<IntSlice>());
    // runtime.SetFinalizer(&vs, ...) — prints the average, dividing
    // by len(*vs), which is zero until a value arrives.
    rtp->heap().setFinalizer(vs.get(), [] {
        ++gFinalizerRuns;
        std::printf("finalizer ran — division by zero would "
                    "crash here!\n");
    });
    auto r = co_await chan::recv(ch); // deadlocks: caller dropped ch
    vs->values.push_back(r.value);
    co_return;
}

rt::Go
mainGoroutine(rt::Runtime* rtp)
{
    // PrintAverage returns a channel the caller neglects.
    GOLF_GO(*rtp, averageTask, rtp, chan::makeChan<int>(*rtp, 0));
    co_await rt::sleepFor(support::kMillisecond);

    for (int cycle = 1; cycle <= 3; ++cycle) {
        co_await rt::gcNow();
        std::printf("GC cycle %d: reports=%zu deadlocked-live=%zu "
                    "finalizer runs=%d\n",
                    cycle, rtp->collector().reports().total(),
                    rtp->countByStatus(rt::GStatus::Deadlocked),
                    gFinalizerRuns);
    }
    co_return;
}

} // namespace

int
main()
{
    rt::Runtime runtime;
    runtime.runMain(mainGoroutine, &runtime);
    const bool ok = gFinalizerRuns == 0 &&
                    runtime.collector().reports().total() == 1;
    std::printf("\nsemantics preserved: %s (reported once, "
                "finalizer suppressed)\n", ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
