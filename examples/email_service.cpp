/**
 * @file
 * The real-service bug of RQ1(c) (Listing 7): SendEmail returns a
 * done channel that HandleRequest never reads, leaking one goroutine
 * (and everything its stack holds) per request. This example runs a
 * burst of requests under the Baseline GC and under GOLF with
 * recovery, and prints the memory the two runtimes retain.
 *
 *   $ ./email_service
 */
#include <cstdio>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

using namespace golf;
using chan::Channel;
using chan::Unit;

/** Attachment buffer the task goroutine keeps on its stack. */
class EmailPayload : public gc::Object
{
  public:
    const char* objectName() const override { return "email-payload"; }

  private:
    std::array<char, 4096> body_{};
};

/** safego.Go(func() { defer func(){ done <- struct{}{} }(); ... }) */
rt::Go
emailTask(rt::Runtime* rtp, Channel<Unit>* done)
{
    gc::Local<EmailPayload> payload(rtp->make<EmailPayload>());
    rt::busy(50 * support::kMicrosecond); // deliver the email
    co_await chan::send(done, Unit{});    // blocks forever: no reader
    co_return;
}

/** SendEmail (Listing 7 lines 102-109). */
Channel<Unit>*
sendEmail(rt::Runtime& rt)
{
    Channel<Unit>* done = chan::makeChan<Unit>(rt, 0);
    GOLF_GO(rt, emailTask, &rt, done);
    return done;
}

rt::Go
handleRequest(rt::Runtime* rtp)
{
    sendEmail(*rtp); // BUG: the done channel is not used
    co_await rt::sleepFor(100 * support::kMicrosecond);
    co_return;
}

rt::Go
serveBurst(rt::Runtime* rtp, int requests)
{
    for (int i = 0; i < requests; ++i) {
        GOLF_GO(*rtp, handleRequest, rtp);
        co_await rt::sleepFor(50 * support::kMicrosecond);
    }
    co_await rt::sleepFor(support::kMillisecond);
    co_await rt::gcNow();
    co_await rt::gcNow(); // second cycle completes any reclaim
    co_return;
}

static void
runOnce(const char* label, rt::GcMode mode)
{
    rt::Config cfg;
    cfg.gcMode = mode;
    rt::Runtime runtime(cfg);
    runtime.runMain(serveBurst, &runtime, 200);

    std::printf("%-22s blocked=%3zu  heapObjects=%4llu  "
                "heapBytes=%7llu  frames=%7llu  reports=%zu\n",
                label, runtime.blockedCandidates().size(),
                static_cast<unsigned long long>(
                    runtime.heap().liveObjects()),
                static_cast<unsigned long long>(
                    runtime.heap().liveBytes()),
                static_cast<unsigned long long>(
                    runtime.memStats().stackInuse),
                runtime.collector().reports().total());
}

int
main()
{
    std::printf("200 requests through the leaky SendEmail handler:\n");
    runOnce("ordinary Go GC:", rt::GcMode::Baseline);
    runOnce("GOLF (detect+reclaim):", rt::GcMode::Golf);
    std::printf("\nThe ordinary runtime retains every leaked task "
                "goroutine, its frames,\nits done channel and its "
                "payload; GOLF reports each leak once and\nreturns "
                "the memory to the system.\n");
    return 0;
}
