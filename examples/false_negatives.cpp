/**
 * @file
 * The two classes of false negatives from Section 4.3: a deadlock on
 * a globally reachable channel (Listing 4) and a deadlock hidden by
 * a runaway live "heartbeat" goroutine (Listing 5). Both goroutines
 * are genuinely stuck forever — GOLEAK-style end-of-test inspection
 * sees them — but memory reachability over-approximates liveness, so
 * GOLF must stay silent (that is the price of soundness).
 *
 *   $ ./false_negatives
 */
#include <cstdio>

#include "chan/channel.hpp"
#include "golf/collector.hpp"
#include "leakdetect/goleak.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

using namespace golf;
using chan::Channel;
using chan::Unit;

namespace {

/** Listing 5's dispatcher. */
class Dispatcher : public gc::Object
{
  public:
    Channel<Unit>* ch = nullptr;
    int ticks = 0;

    void
    trace(gc::Marker& m) override
    {
        m.mark(ch);
    }

    const char* objectName() const override { return "dispatcher"; }
};

rt::Go
globalSender(Channel<int>* ch)
{
    co_await chan::send(ch, 1); // Listing 4 line 59
    co_return;
}

rt::Go
heartbeat(Dispatcher* d)
{
    for (;;) { // Listing 5 lines 71-75
        co_await rt::sleepFor(support::kSecond);
        ++d->ticks;
    }
    co_return;
}

rt::Go
dispatcherSender(Dispatcher* d)
{
    co_await chan::send(d->ch, Unit{}); // Listing 5 line 80
    co_return;
}

rt::Go
mainGoroutine(rt::Runtime* rtp)
{
    rt::Runtime& rt = *rtp;

    // Listing 4: var ch = make(chan int) at package level.
    gc::GlobalRoot<Channel<int>> globalCh(rt.heap(),
                                          chan::makeChan<int>(rt, 0));
    GOLF_GO(rt, globalSender, globalCh.get());

    // Listing 5: newDispatcher + the doomed send on d.ch.
    Dispatcher* d = rt.make<Dispatcher>();
    d->ch = chan::makeChan<Unit>(rt, 0);
    GOLF_GO(rt, heartbeat, d);
    GOLF_GO(rt, dispatcherSender, d);
    // main takes the early-return path: <-d.ch never happens, and
    // main's reference to d is dropped here.

    co_await rt::sleepFor(5 * support::kMillisecond);
    co_await rt::gcNow();

    std::printf("GOLF reports:   %zu (both deadlocks invisible)\n",
                rtp->collector().reports().total());

    // --- the Section 8 future-work fix: liveness hints ---
    // A static analysis (or the developer) asserts that the global
    // channel is never used again and that the heartbeat never
    // operates on d.ch. With hints, both deadlocks surface.
    rtp->collector().hintInertGlobal(globalCh.get());
    rtp->forEachGoroutine([&](rt::Goroutine* g) {
        if (g->status() == rt::GStatus::Waiting &&
            g->waitReason() == rt::WaitReason::Sleep) {
            rtp->collector().hintInertGoroutine(g);
        }
    });
    co_await rt::gcNow();
    std::printf("with liveness hints: %zu reports\n",
                rtp->collector().reports().total());
    co_return;
}

} // namespace

int
main()
{
    rt::Config cfg;
    cfg.recovery = rt::Recovery::ReportOnly; // keep leaks observable
    rt::Runtime runtime(cfg);
    runtime.runMain(mainGoroutine, &runtime);

    // GOLEAK-style end-of-run inspection does see both leaks.
    auto leaks = leakdetect::findLeaks(runtime);
    std::printf("GOLEAK reports: %zu\n", leaks.total());
    for (const auto& l : leaks.leaks) {
        std::printf("  goroutine %llu [%s] spawned at %s\n",
                    static_cast<unsigned long long>(l.id),
                    rt::waitReasonName(l.reason),
                    l.spawnSite.str().c_str());
    }
    // Hint-less GOLF saw nothing; hinted GOLF found both; GOLEAK
    // sees both lingering.
    const bool ok = runtime.collector().reports().total() == 2 &&
                    leaks.total() == 2;
    std::printf("\nfalse negatives (and the hint fix) reproduced: "
                "%s\n", ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
