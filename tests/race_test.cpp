/**
 * @file
 * Race-detector corpus: seeded true positives (an unsynchronized
 * heap write, a racy channel-adjacent access, an ABBA lock cycle
 * that never deadlocks in the observed schedule) and true negatives
 * (every sync primitive used correctly). Counts are exact under the
 * fixed seeds: the detector deduplicates by site pair, so each
 * seeded bug is one report no matter how the schedule interleaves.
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "gc/heap.hpp"
#include "race/annotate.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "sync/condvar.hpp"
#include "sync/mutex.hpp"
#include "sync/rwmutex.hpp"
#include "sync/semaphore.hpp"
#include "sync/waitgroup.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::RunResult;
using rt::Runtime;
using support::kMillisecond;

rt::Config
raceConfig(uint64_t seed = 7)
{
    rt::Config cfg;
    cfg.race = true;
    cfg.seed = seed;
    return cfg;
}

// ----------------------------------------------------- true positives

Go
racyWriter(race::Shared<int>* x, int v)
{
    co_await rt::yield();
    x->store(v);
    co_return;
}

TEST(RaceTest, UnsynchronizedWriteReportedOnce)
{
    Runtime rt(raceConfig());
    race::Shared<int> x("counter", 0);
    RunResult r = rt.runMain(
        +[](Runtime* rtp, race::Shared<int>* xp) -> Go {
            GOLF_GO(*rtp, racyWriter, xp, 1);
            GOLF_GO(*rtp, racyWriter, xp, 2);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &x);
    EXPECT_TRUE(r.ok());

    const race::RaceLog& log = rt.raceDetector()->log();
    ASSERT_EQ(log.races().size(), 1u);
    const race::RaceReport& rep = log.races()[0];
    EXPECT_TRUE(rep.prior.write);
    EXPECT_TRUE(rep.current.write);
    EXPECT_EQ(rep.objectName, "counter");
    // Both "stacks": each side carries its access site and the
    // goroutine's go statement.
    EXPECT_NE(rep.prior.site.line, 0u);
    EXPECT_NE(rep.current.site.line, 0u);
    EXPECT_NE(rep.prior.spawnSite.line, 0u);
    EXPECT_NE(rep.current.spawnSite.line, 0u);
    EXPECT_NE(rep.str().find("data race!"), std::string::npos);
    EXPECT_EQ(log.lockOrders().size(), 0u);
    EXPECT_EQ(rt.raceDetector()->stats().raceReports, 1u);
}

Go
adjacentSender(Channel<int>* ch, race::Shared<int>* x)
{
    co_await chan::send(ch, 1);
    // Published *after* the send: the receiver's acquire at recv
    // does not cover this write. The classic off-by-one-release.
    x->store(42);
    co_return;
}

Go
adjacentReceiver(Channel<int>* ch, race::Shared<int>* x, int* seen)
{
    (void)co_await chan::recv(ch);
    *seen = x->load();
    co_return;
}

TEST(RaceTest, ChannelAdjacentAccessReported)
{
    Runtime rt(raceConfig());
    race::Shared<int> x("payload", 0);
    int seen = -1;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, race::Shared<int>* xp, int* seenp) -> Go {
            auto* ch = makeChan<int>(*rtp, 1);
            GOLF_GO(*rtp, adjacentSender, ch, xp);
            GOLF_GO(*rtp, adjacentReceiver, ch, xp, seenp);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &x, &seen);
    EXPECT_TRUE(r.ok());

    const race::RaceLog& log = rt.raceDetector()->log();
    ASSERT_EQ(log.races().size(), 1u);
    const race::RaceReport& rep = log.races()[0];
    // One side is the sender's late write, the other the receiver's
    // read; detection order depends on the schedule, the pair not.
    EXPECT_NE(rep.prior.write, rep.current.write);
    EXPECT_EQ(rep.objectName, "payload");
    EXPECT_EQ(log.lockOrders().size(), 0u);
}

Go
lockAThenB(sync::Mutex* a, sync::Mutex* b, Channel<int>* done)
{
    co_await a->lock();
    co_await b->lock();
    b->unlock();
    a->unlock();
    co_await chan::send(done, 1);
    co_return;
}

Go
lockBThenA(sync::Mutex* a, sync::Mutex* b, Channel<int>* done)
{
    // Strictly after the other goroutine released both locks: the
    // observed schedule cannot deadlock, the acquisition order can.
    (void)co_await chan::recv(done);
    co_await b->lock();
    co_await a->lock();
    a->unlock();
    b->unlock();
    co_return;
}

TEST(RaceTest, AbbaLockCycleReportedOnCleanRun)
{
    Runtime rt(raceConfig());
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::Local<sync::Mutex> a(rtp->make<sync::Mutex>(*rtp));
            gc::Local<sync::Mutex> b(rtp->make<sync::Mutex>(*rtp));
            auto* done = makeChan<int>(*rtp, 0);
            GOLF_GO(*rtp, lockAThenB, a.get(), b.get(), done);
            GOLF_GO(*rtp, lockBThenA, a.get(), b.get(), done);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok()); // the run itself completed cleanly

    const race::RaceLog& log = rt.raceDetector()->log();
    EXPECT_EQ(log.races().size(), 0u);
    ASSERT_EQ(log.lockOrders().size(), 1u);
    const race::LockOrderReport& rep = log.lockOrders()[0];
    ASSERT_EQ(rep.cycle.size(), 2u);
    EXPECT_FALSE(rep.confirmedByGolf);
    for (const race::LockOrderEdge& hop : rep.cycle) {
        EXPECT_NE(hop.firstSite.line, 0u);
        EXPECT_NE(hop.secondSite.line, 0u);
        EXPECT_NE(hop.spawnSite.line, 0u);
    }
    EXPECT_NE(rep.str().find("potential deadlock!"),
              std::string::npos);
    EXPECT_NE(rep.str().find("run completed cleanly"),
              std::string::npos);
}

TEST(RaceTest, ReportsAreDeterministicAcrossSeeds)
{
    // The same seeded bugs under different schedules: the deduped
    // report set is schedule-independent.
    for (uint64_t seed : {1ull, 99ull, 4242ull}) {
        Runtime rt(raceConfig(seed));
        race::Shared<int> x("counter", 0);
        RunResult r = rt.runMain(
            +[](Runtime* rtp, race::Shared<int>* xp) -> Go {
                GOLF_GO(*rtp, racyWriter, xp, 1);
                GOLF_GO(*rtp, racyWriter, xp, 2);
                co_await rt::sleepFor(kMillisecond);
                co_return;
            },
            &rt, &x);
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(rt.raceDetector()->log().races().size(), 1u)
            << "seed " << seed;
    }
}

// ----------------------------------------------------- true negatives

Go
lockedIncrement(sync::Mutex* mu, race::Shared<int>* x)
{
    co_await mu->lock();
    x->update([](int v) { return v + 1; });
    mu->unlock();
    co_return;
}

TEST(RaceTest, MutexProtectedCounterNoReports)
{
    Runtime rt(raceConfig());
    race::Shared<int> x("counter", 0);
    RunResult r = rt.runMain(
        +[](Runtime* rtp, race::Shared<int>* xp) -> Go {
            gc::Local<sync::Mutex> mu(rtp->make<sync::Mutex>(*rtp));
            for (int i = 0; i < 4; ++i)
                GOLF_GO(*rtp, lockedIncrement, mu.get(), xp);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &x);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(x.unsafeRef(), 4);
    EXPECT_EQ(rt.raceDetector()->log().races().size(), 0u);
    EXPECT_EQ(rt.raceDetector()->log().lockOrders().size(), 0u);
}

Go
handoffSender(Channel<int>* ch, race::Shared<int>* x)
{
    x->store(42); // published *before* the send: properly ordered
    co_await chan::send(ch, 1);
    co_return;
}

TEST(RaceTest, ChannelHandoffNoReports)
{
    for (int cap : {0, 1}) {
        Runtime rt(raceConfig());
        race::Shared<int> x("payload", 0);
        int seen = -1;
        RunResult r = rt.runMain(
            +[](Runtime* rtp, race::Shared<int>* xp, int* seenp,
                int capacity) -> Go {
                auto* ch = makeChan<int>(*rtp, capacity);
                GOLF_GO(*rtp, handoffSender, ch, xp);
                GOLF_GO(*rtp, adjacentReceiver, ch, xp, seenp);
                co_await rt::sleepFor(kMillisecond);
                co_return;
            },
            &rt, &x, &seen, cap);
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(seen, 42);
        EXPECT_EQ(rt.raceDetector()->log().races().size(), 0u)
            << "capacity " << cap;
    }
}

Go
wgWorker(sync::WaitGroup* wg, race::Shared<int>* x)
{
    x->store(7);
    wg->done();
    co_return;
}

TEST(RaceTest, WaitGroupNoReports)
{
    Runtime rt(raceConfig());
    race::Shared<int> x("result", 0);
    RunResult r = rt.runMain(
        +[](Runtime* rtp, race::Shared<int>* xp) -> Go {
            gc::Local<sync::WaitGroup> wg(
                rtp->make<sync::WaitGroup>(*rtp));
            wg->add(1);
            GOLF_GO(*rtp, wgWorker, wg.get(), xp);
            co_await wg->wait();
            EXPECT_EQ(xp->load(), 7); // ordered by done -> wait
            co_return;
        },
        &rt, &x);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.raceDetector()->log().races().size(), 0u);
}

Go
rwReader(sync::RWMutex* mu, race::Shared<int>* x, int* sum)
{
    co_await mu->rlock();
    *sum += x->load();
    mu->runlock();
    co_return;
}

Go
rwWriter(sync::RWMutex* mu, race::Shared<int>* x)
{
    co_await mu->lock();
    x->store(5);
    mu->unlock();
    co_return;
}

TEST(RaceTest, RWMutexNoReports)
{
    Runtime rt(raceConfig());
    race::Shared<int> x("guarded", 0);
    int sum = 0;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, race::Shared<int>* xp, int* sump) -> Go {
            gc::Local<sync::RWMutex> mu(
                rtp->make<sync::RWMutex>(*rtp));
            GOLF_GO(*rtp, rwWriter, mu.get(), xp);
            GOLF_GO(*rtp, rwReader, mu.get(), xp, sump);
            GOLF_GO(*rtp, rwReader, mu.get(), xp, sump);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &x, &sum);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.raceDetector()->log().races().size(), 0u);
    EXPECT_EQ(rt.raceDetector()->log().lockOrders().size(), 0u);
}

Go
condConsumer(sync::Cond* cond, race::Shared<int>* x, int* seen)
{
    co_await cond->locker()->lock();
    while (x->load() == 0)
        co_await cond->wait();
    *seen = x->load();
    cond->locker()->unlock();
    co_return;
}

TEST(RaceTest, CondNoReports)
{
    Runtime rt(raceConfig());
    race::Shared<int> x("flag", 0);
    int seen = 0;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, race::Shared<int>* xp, int* seenp) -> Go {
            gc::Local<sync::Mutex> mu(rtp->make<sync::Mutex>(*rtp));
            gc::Local<sync::Cond> cond(
                rtp->make<sync::Cond>(*rtp, mu.get()));
            GOLF_GO(*rtp, condConsumer, cond.get(), xp, seenp);
            co_await rt::sleepFor(kMillisecond);
            co_await mu->lock();
            xp->store(9);
            mu->unlock();
            cond->signal();
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &x, &seen);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(seen, 9);
    EXPECT_EQ(rt.raceDetector()->log().races().size(), 0u);
}

Go
semWorker(sync::Semaphore* sem, race::Shared<int>* x)
{
    co_await sem->acquire();
    x->update([](int v) { return v + 1; });
    sem->release();
    co_return;
}

TEST(RaceTest, SemaphoreNoReports)
{
    Runtime rt(raceConfig());
    race::Shared<int> x("counter", 0);
    RunResult r = rt.runMain(
        +[](Runtime* rtp, race::Shared<int>* xp) -> Go {
            gc::Local<sync::Semaphore> sem(
                rtp->make<sync::Semaphore>(*rtp, 1));
            for (int i = 0; i < 3; ++i)
                GOLF_GO(*rtp, semWorker, sem.get(), xp);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &x);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(x.unsafeRef(), 3);
    EXPECT_EQ(rt.raceDetector()->log().races().size(), 0u);
}

Go
orderedABLocker(sync::Mutex* a, sync::Mutex* b)
{
    co_await a->lock();
    co_await b->lock();
    b->unlock();
    a->unlock();
    co_return;
}

TEST(RaceTest, ConsistentLockOrderNoCycle)
{
    Runtime rt(raceConfig());
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::Local<sync::Mutex> a(rtp->make<sync::Mutex>(*rtp));
            gc::Local<sync::Mutex> b(rtp->make<sync::Mutex>(*rtp));
            GOLF_GO(*rtp, orderedABLocker, a.get(), b.get());
            GOLF_GO(*rtp, orderedABLocker, a.get(), b.get());
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.raceDetector()->log().lockOrders().size(), 0u);
}

// ------------------------------------------------- model regressions

Go
rlockedWriter(sync::RWMutex* mu, race::Shared<int>* x, int v)
{
    co_await mu->rlock();
    x->store(v); // The bug under test: a write under a read-lock.
    mu->runlock();
    co_return;
}

TEST(RaceTest, WriteUnderRLockReported)
{
    // RUnlock must not publish the reader's clock into the lock's
    // write clock: a later reader would inherit the first reader's
    // buggy write and the race would be hidden (the single-clock
    // RWMutex model's false negative).
    Runtime rt(raceConfig());
    race::Shared<int> x("guarded", 0);
    RunResult r = rt.runMain(
        +[](Runtime* rtp, race::Shared<int>* xp) -> Go {
            gc::Local<sync::RWMutex> mu(
                rtp->make<sync::RWMutex>(*rtp));
            GOLF_GO(*rtp, rlockedWriter, mu.get(), xp, 1);
            GOLF_GO(*rtp, rlockedWriter, mu.get(), xp, 2);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &x);
    EXPECT_TRUE(r.ok());
    const race::RaceLog& log = rt.raceDetector()->log();
    ASSERT_EQ(log.races().size(), 1u);
    EXPECT_TRUE(log.races()[0].prior.write);
    EXPECT_TRUE(log.races()[0].current.write);
}

Go
rlockAThenB(sync::RWMutex* a, sync::RWMutex* b, Channel<int>* done)
{
    co_await a->rlock();
    co_await b->rlock();
    b->runlock();
    a->runlock();
    co_await chan::send(done, 1);
    co_return;
}

Go
rlockBThenA(sync::RWMutex* a, sync::RWMutex* b, Channel<int>* done)
{
    (void)co_await chan::recv(done);
    co_await b->rlock();
    co_await a->rlock();
    a->runlock();
    b->runlock();
    co_return;
}

TEST(RaceTest, ReaderOnlyLockCycleReported)
{
    // RLock is writer-preferring: it blocks whenever a writer is
    // queued, so opposite-order read-locks can genuinely deadlock
    // once writers arrive in between. An all-reader cycle must not
    // be dismissed as reader-harmless.
    Runtime rt(raceConfig());
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::Local<sync::RWMutex> a(rtp->make<sync::RWMutex>(*rtp));
            gc::Local<sync::RWMutex> b(rtp->make<sync::RWMutex>(*rtp));
            auto* done = makeChan<int>(*rtp, 0);
            GOLF_GO(*rtp, rlockAThenB, a.get(), b.get(), done);
            GOLF_GO(*rtp, rlockBThenA, a.get(), b.get(), done);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok()); // the observed schedule completed cleanly
    const race::RaceLog& log = rt.raceDetector()->log();
    EXPECT_EQ(log.races().size(), 0u);
    ASSERT_EQ(log.lockOrders().size(), 1u);
    EXPECT_EQ(log.lockOrders()[0].cycle.size(), 2u);
}

Go
bufWriter(char* buf)
{
    co_await rt::yield();
    race::write(buf, 8, "buffer");
    co_return;
}

Go
bufTailReader(char* buf)
{
    co_await rt::yield();
    race::read(buf + 4, 4, "buffer");
    co_return;
}

TEST(RaceTest, OverlappingAnnotationBasesReported)
{
    // Shadow words are keyed by annotation base address; a conflict
    // between write(p, 8) and read(p + 4, 4) spans two entries and
    // must still be found via the neighbor-overlap scan.
    Runtime rt(raceConfig());
    alignas(8) char buf[8] = {};
    RunResult r = rt.runMain(
        +[](Runtime* rtp, char* bp) -> Go {
            GOLF_GO(*rtp, bufWriter, bp);
            GOLF_GO(*rtp, bufTailReader, bp);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, static_cast<char*>(buf));
    EXPECT_TRUE(r.ok());
    const race::RaceLog& log = rt.raceDetector()->log();
    ASSERT_EQ(log.races().size(), 1u);
    EXPECT_NE(log.races()[0].prior.write, log.races()[0].current.write);
}

Go
pokeNeighbor(char* p)
{
    co_await rt::yield();
    race::write(p, 4, "neighbor");
    co_return;
}

TEST(RaceTest, FreeErasesOnlyTheObjectFootprint)
{
    // A freed object's shadow erase must cover baseSize(), not
    // allocSize(): bytes charged for payloads living elsewhere would
    // widen the range over live neighbors' shadow words and swallow
    // this race.
    Runtime rt(raceConfig());
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            sync::Mutex* doomed = rtp->make<sync::Mutex>(*rtp);
            rtp->heap().charge(doomed, 1 << 20);
            // Inside the charged range, past the actual footprint:
            // this shadow word must survive the free below.
            char* p = reinterpret_cast<char*>(doomed) +
                      doomed->baseSize() + 64;
            GOLF_GO(*rtp, pokeNeighbor, p);
            for (int i = 0; i < 4; ++i)
                co_await rt::yield();
            co_await rt::gcNow(); // doomed is unrooted: freed here
            GOLF_GO(*rtp, pokeNeighbor, p);
            for (int i = 0; i < 4; ++i)
                co_await rt::yield();
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.raceDetector()->log().races().size(), 1u);
}

struct Cell final : gc::Object
{
    int v = 0;
    void trace(gc::Marker&) override {}
    const char* objectName() const override { return "cell"; }
};

Go
cellPoker(Cell* c)
{
    co_await rt::yield();
    race::write(&c->v, sizeof c->v, "cell");
    c->v++;
    co_return;
}

TEST(RaceTest, SlotReuseDoesNotInheritStaleShadow)
{
    // Pool-backend address-reuse regression: under the span allocator
    // a freed slot is recycled by the very next same-class allocation,
    // so the same address hosts two unrelated tenants back to back.
    // Detector::onObjectFree (via the heap free hook, fired at sweep)
    // must erase the first tenant's shadow words — otherwise the old
    // tenant's unsynchronized write and the new tenant's first access
    // look like a race between goroutines that never shared anything.
    Runtime rt(raceConfig());
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            Cell* old = rtp->make<Cell>();
            const void* oldAddr = old;
            GOLF_GO(*rtp, cellPoker, old);
            for (int i = 0; i < 4; ++i)
                co_await rt::yield();
            co_await rt::gcNow(); // old is unrooted: freed here
            Cell* fresh = rtp->make<Cell>();
            // The regression only bites if the slot really is
            // recycled; the pool contract makes that deterministic.
            EXPECT_EQ(static_cast<const void*>(fresh), oldAddr)
                << "pool did not recycle the freed slot";
            GOLF_GO(*rtp, cellPoker, fresh);
            for (int i = 0; i < 4; ++i)
                co_await rt::yield();
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.raceDetector()->log().races().size(), 0u)
        << "stale shadow state bled across slot reuse";
}

TEST(RaceTest, LiveTenantStillRacesAfterNeighborReuse)
{
    // Positive control for the reuse regression: the same two-poker
    // access pattern on one *live* tenant is a real race and must
    // still be reported exactly once — erase-on-free must not wipe
    // live tenants' shadow state.
    Runtime rt(raceConfig());
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::Local<Cell> keep(rtp->make<Cell>());
            GOLF_GO(*rtp, cellPoker, keep.get());
            for (int i = 0; i < 4; ++i)
                co_await rt::yield();
            co_await rt::gcNow(); // keep survives: rooted Local
            GOLF_GO(*rtp, cellPoker, keep.get());
            for (int i = 0; i < 4; ++i)
                co_await rt::yield();
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.raceDetector()->log().races().size(), 1u);
}

// ----------------------------------------------------- gating

TEST(RaceTest, DetectorAbsentByDefault)
{
    Runtime rt;
    EXPECT_EQ(rt.raceDetector(), nullptr);
    race::Shared<int> x("off", 0);
    RunResult r = rt.runMain(
        +[](Runtime* rtp, race::Shared<int>* xp) -> Go {
            // Annotations degrade to plain accesses when race is off.
            GOLF_GO(*rtp, racyWriter, xp, 1);
            GOLF_GO(*rtp, racyWriter, xp, 2);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &x);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(rt.raceDetector(), nullptr);
}

} // namespace
} // namespace golf
