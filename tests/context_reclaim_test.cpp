/**
 * @file
 * Context cancellation interacting with forced reclaim: a withTimeout
 * context created by a goroutine that later gets reclaimed must still
 * fire at its deadline, cancel cleanly, and never touch the waiter
 * entries that were freed when its owner's frames unwound.
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "golf/collector.hpp"
#include "runtime/context.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::RunResult;
using rt::Runtime;
using support::kMillisecond;

/** Creates a timed context, hands it to a waiter, then leaks itself
 *  on an unreachable channel (the reclaim candidate). */
rt::Go
owner(Runtime* rt, bool* cancelled, bool* okFlag)
{
    rt::Context* ctx =
        rt::withTimeout(*rt, rt::background(*rt), 5 * kMillisecond);
    GOLF_GO(*rt, +[](rt::Context* c, bool* done, bool* ok) -> Go {
        auto got = co_await chan::recv(c->done());
        *done = true;
        *ok = got.ok; // closed channel: ok == false
        co_return;
    }, ctx, cancelled, okFlag);
    co_await chan::recv(chan::makeChan<int>(*rt, 0)); // leaks
    co_return;
}

TEST(ContextReclaimTest, TimeoutFiresAfterOwnerReclaimed)
{
    Runtime rt;
    bool cancelled = false;
    bool okFlag = true;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, bool* cancelledp, bool* okp) -> Go {
            GOLF_GO(*rtp, owner, rtp, cancelledp, okp);
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow(); // detect the owner
            co_await rt::gcNow(); // reclaim the owner
            EXPECT_EQ(rtp->collector().reports().total(), 1u);
            EXPECT_FALSE(*cancelledp);
            // The armed timer keeps the context (and the waiter)
            // alive; at the deadline the waiter must wake normally.
            co_await rt::sleepFor(10 * kMillisecond);
            EXPECT_TRUE(*cancelledp);
            co_await rt::gcNow();
            co_await rt::gcNow();
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::Waiting), 0u);
            EXPECT_EQ(rtp->heap().liveObjects(), 0u);
            EXPECT_EQ(rtp->semtable().entries(), 0u);
            co_return;
        },
        &rt, &cancelled, &okFlag);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(cancelled);
    EXPECT_FALSE(okFlag);
}

TEST(ContextReclaimTest, OrphanedTimeoutContextFiresSafely)
{
    // Nobody but the reclaimed owner ever referenced the context: the
    // deadline must still fire (on the timer root) without touching
    // any freed state, and the context must be collectable after.
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            GOLF_GO(*rtp, +[](Runtime* rp) -> Go {
                rt::withTimeout(*rp, rt::background(*rp),
                                5 * kMillisecond);
                co_await chan::recv(
                    chan::makeChan<int>(*rp, 0)); // leaks
                co_return;
            }, rtp);
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_await rt::gcNow();
            EXPECT_EQ(rtp->collector().reports().total(), 1u);
            co_await rt::sleepFor(10 * kMillisecond);
            co_await rt::gcNow();
            co_await rt::gcNow();
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::Waiting), 0u);
            EXPECT_EQ(rtp->heap().liveObjects(), 0u);
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(ContextReclaimTest, SelectingWaiterGetsDoneCaseAfterReclaim)
{
    // The surviving waiter selects on {ctx.done, never-ready}: after
    // its owner is reclaimed it must still take the done case at the
    // deadline, and the select's waiter entries on the never-ready
    // channel must unwind without residue.
    Runtime rt;
    bool woke = false;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, bool* wokep) -> Go {
            gc::Local<Channel<int>> never(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp, +[](Runtime* rp, Channel<int>* nv,
                              bool* w) -> Go {
                rt::Context* ctx = rt::withTimeout(
                    *rp, rt::background(*rp), 5 * kMillisecond);
                GOLF_GO(*rp, +[](rt::Context* c, Channel<int>* n,
                                 bool* wp) -> Go {
                    co_await chan::select(chan::recvCase(c->done()),
                                          chan::recvCase(n));
                    *wp = true;
                    co_return;
                }, ctx, nv, w);
                co_await chan::recv(
                    chan::makeChan<int>(*rp, 0)); // leaks
                co_return;
            }, rtp, never.get(), wokep);
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            co_await rt::gcNow();
            EXPECT_FALSE(*wokep);
            co_await rt::sleepFor(10 * kMillisecond);
            EXPECT_TRUE(*wokep);
            // No select residue on the survivor channel: a send
            // would park rather than find a stale waiter.
            EXPECT_FALSE(never.get()->hasBlockedReceivers());
            co_await rt::gcNow();
            co_await rt::gcNow();
            EXPECT_EQ(rtp->countByStatus(rt::GStatus::Waiting), 0u);
            co_return;
        },
        &rt, &woke);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(woke);
}

} // namespace
} // namespace golf
