/**
 * @file
 * Collector instrumentation tests: the paper's claims about GOLF's
 * marking work and overhead model, pinned as executable checks.
 *
 *  - Section 5.2: "GOLF performs exactly the same amount of marking
 *    work as the ordinary Go GC" — equal objectsMarked on identical
 *    leak-free heaps (the pointer traversals differ only by the
 *    stack-root re-push of expansion rounds).
 *  - Section 5.3: detectChecks counts (goroutine, object) pairs —
 *    the S factor.
 *  - Modelled cost accounting used by the Table 2/3 experiments.
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using support::kMillisecond;

/** Build a small object graph + blocked-but-live goroutines, GC,
 *  and return the last cycle's stats. */
detect::CycleStats
runProgramOnce(rt::GcMode mode, int blockedCount)
{
    rt::Config cfg;
    cfg.gcMode = mode;
    cfg.seed = 7;
    Runtime rt(cfg);
    rt.runMain(
        +[](Runtime* rtp, int n) -> Go {
            struct Node : gc::Object
            {
                Node* next = nullptr;
                void
                trace(gc::Marker& m) override
                {
                    m.mark(next);
                }
            };
            // A list of 50 heap objects reachable from main.
            gc::Local<Node> head(rtp->make<Node>());
            Node* cur = head.get();
            for (int i = 0; i < 49; ++i) {
                cur->next = rtp->make<Node>();
                cur = cur->next;
            }
            // n live goroutines parked on channels main holds.
            gc::Local<Channel<int>> ch(makeChan<int>(*rtp, 0));
            for (int i = 0; i < n; ++i) {
                GOLF_GO(*rtp, +[](Channel<int>* c) -> Go {
                    co_await chan::recv(c);
                    co_return;
                }, ch.get());
            }
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            for (int i = 0; i < n; ++i)
                co_await chan::send(ch.get(), i);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, blockedCount);
    for (const auto& cs : rt.collector().history()) {
        if (cs.cycle == 1)
            return cs;
    }
    return {};
}

TEST(CollectorStatsTest, SameMarkingWorkAsBaselineWhenNoLeaks)
{
    auto base = runProgramOnce(rt::GcMode::Baseline, 6);
    auto golf = runProgramOnce(rt::GcMode::Golf, 6);
    // Identical heaps: the same objects (and bytes) get marked.
    EXPECT_EQ(base.objectsMarked, golf.objectsMarked);
    EXPECT_EQ(base.bytesMarked, golf.bytesMarked);
    // GOLF needed extra mark iterations to discover the blocked
    // goroutines, but each object was traced exactly once.
    EXPECT_GT(golf.markIterations, base.markIterations);
}

TEST(CollectorStatsTest, DetectChecksCountGoroutineObjectPairs)
{
    // n goroutines blocked on one channel each: S = n pairs checked
    // at least once (possibly more across fixpoint rounds).
    auto golf = runProgramOnce(rt::GcMode::Golf, 5);
    EXPECT_GE(golf.detectChecks, 5u);
    auto base = runProgramOnce(rt::GcMode::Baseline, 5);
    EXPECT_EQ(base.detectChecks, 0u);
}

TEST(CollectorStatsTest, SelectContributesAllChannelsToChecks)
{
    rt::Config cfg;
    Runtime rt(cfg);
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::Local<Channel<int>> a(makeChan<int>(*rtp, 0));
            gc::Local<Channel<int>> b(makeChan<int>(*rtp, 0));
            gc::Local<Channel<int>> c(makeChan<int>(*rtp, 0));
            GOLF_GO(*rtp,
                +[](Channel<int>* x, Channel<int>* y,
                    Channel<int>* z) -> Go {
                    co_await chan::select(chan::recvCase(x),
                                          chan::recvCase(y),
                                          chan::recvCase(z));
                    co_return;
                }, a.get(), b.get(), c.get());
            co_await rt::sleepFor(kMillisecond);
            co_await rt::gcNow();
            // One goroutine, three blocking objects: the fixpoint
            // examined up to three pairs before finding one marked.
            EXPECT_GE(rtp->collector().lastCycle().detectChecks, 1u);
            co_await chan::send(a.get(), 1);
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt);
}

TEST(CollectorStatsTest, ModeledCostsArePopulated)
{
    auto golf = runProgramOnce(rt::GcMode::Golf, 4);
    EXPECT_GT(golf.modeledMarkNs, 0u);
    // STW includes the fixed pause plus detection work.
    EXPECT_GE(golf.modeledStwNs, 50000u);
    auto base = runProgramOnce(rt::GcMode::Baseline, 4);
    EXPECT_EQ(base.modeledStwNs, 50000u); // fixed only
}

TEST(CollectorStatsTest, GolfStwExceedsBaselineStw)
{
    // The paper's pause-per-cycle observation: detection runs under
    // stop-the-world, so GOLF's modelled pause is strictly larger.
    auto base = runProgramOnce(rt::GcMode::Baseline, 8);
    auto golf = runProgramOnce(rt::GcMode::Golf, 8);
    EXPECT_GT(golf.modeledStwNs, base.modeledStwNs);
}

TEST(CollectorStatsTest, HistoryRecordsEveryCycle)
{
    Runtime rt;
    rt.runMain(+[]() -> Go {
        co_await rt::gcNow();
        co_await rt::gcNow();
        co_await rt::gcNow();
        co_return;
    });
    EXPECT_EQ(rt.collector().history().size(), 3u);
    EXPECT_EQ(rt.collector().cycles(), 3u);
    uint64_t n = 1;
    for (const auto& cs : rt.collector().history())
        EXPECT_EQ(cs.cycle, n++);
}

TEST(CollectorStatsTest, PauseTotalAccumulatesModeledStw)
{
    Runtime rt;
    rt.runMain(+[]() -> Go {
        co_await rt::gcNow();
        co_await rt::gcNow();
        co_return;
    });
    uint64_t sum = 0;
    for (const auto& cs : rt.collector().history())
        sum += cs.modeledStwNs;
    EXPECT_EQ(rt.memStats().pauseTotalNs, sum);
}

TEST(CollectorStatsTest, GcChargeAdvancesVirtualClock)
{
    rt::Config cfg;
    cfg.chargeGcPause = true;
    Runtime charged(cfg);
    charged.runMain(+[]() -> Go {
        co_await rt::gcNow();
        co_return;
    });

    rt::Config cfg2;
    cfg2.chargeGcPause = false;
    Runtime uncharged(cfg2);
    uncharged.runMain(+[]() -> Go {
        co_await rt::gcNow();
        co_return;
    });

    EXPECT_GT(charged.clock().now(), uncharged.clock().now());
    EXPECT_GT(charged.busyVirtualNs(), uncharged.busyVirtualNs());
}

} // namespace
} // namespace golf
