/**
 * @file
 * sync package tests: Mutex, RWMutex, WaitGroup, Cond, Semaphore,
 * and the semtable treap bookkeeping behind them.
 */
#include <gtest/gtest.h>

#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "sync/condvar.hpp"
#include "sync/mutex.hpp"
#include "sync/rwmutex.hpp"
#include "sync/semaphore.hpp"
#include "sync/waitgroup.hpp"

namespace golf {
namespace {

using rt::Go;
using rt::Runtime;
using rt::RunResult;
using support::kMillisecond;

// ----------------------------------------------------------- Mutex

Go
criticalSection(sync::Mutex* mu, int* counter, int* maxSeen)
{
    co_await mu->lock();
    int v = ++*counter;
    if (v > *maxSeen)
        *maxSeen = v;
    co_await rt::yield(); // invite interleaving inside the section
    --*counter;
    mu->unlock();
    co_return;
}

TEST(MutexTest, MutualExclusionUnderContention)
{
    Runtime rt;
    int inside = 0, maxSeen = 0;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, int* insidep, int* maxp) -> Go {
            gc::Local<sync::Mutex> mu(rtp->make<sync::Mutex>(*rtp));
            for (int i = 0; i < 8; ++i)
                GOLF_GO(*rtp, criticalSection, mu.get(), insidep, maxp);
            co_await rt::sleepFor(5 * kMillisecond);
            co_return;
        },
        &rt, &inside, &maxSeen);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(inside, 0);
    EXPECT_EQ(maxSeen, 1); // never two goroutines inside
}

TEST(MutexTest, UnlockOfUnlockedPanics)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            sync::Mutex* mu = rtp->make<sync::Mutex>(*rtp);
            mu->unlock();
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.panicked);
    EXPECT_EQ(r.panicMessage, "sync: unlock of unlocked mutex");
}

TEST(MutexTest, TryLock)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            sync::Mutex* mu = rtp->make<sync::Mutex>(*rtp);
            EXPECT_TRUE(mu->tryLock());
            EXPECT_TRUE(mu->locked());
            EXPECT_FALSE(mu->tryLock());
            mu->unlock();
            EXPECT_TRUE(mu->tryLock());
            mu->unlock();
            co_return;
        },
        &rt);
}

TEST(MutexTest, HandoffIsFifo)
{
    Runtime rt;
    std::vector<int> order;
    rt.runMain(
        +[](Runtime* rtp, std::vector<int>* orderp) -> Go {
            gc::Local<sync::Mutex> mu(rtp->make<sync::Mutex>(*rtp));
            EXPECT_TRUE(mu->tryLock());
            for (int i = 0; i < 3; ++i) {
                GOLF_GO(*rtp, +[](sync::Mutex* m,
                                  std::vector<int>* op, int tag) -> Go {
                    co_await m->lock();
                    op->push_back(tag);
                    m->unlock();
                    co_return;
                }, mu.get(), orderp, i);
                // Let the goroutine park before spawning the next so
                // queueing order is deterministic.
                co_await rt::sleepFor(kMillisecond);
            }
            mu->unlock();
            co_await rt::sleepFor(5 * kMillisecond);
            co_return;
        },
        &rt, &order);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// -------------------------------------------------------- WaitGroup

TEST(WaitGroupTest, WaitReleasesWhenCounterHitsZero)
{
    // Listing 2's shape: N workers, one waiter.
    Runtime rt;
    int done = 0;
    RunResult r = rt.runMain(
        +[](Runtime* rtp, int* donep) -> Go {
            gc::Local<sync::WaitGroup> wg(
                rtp->make<sync::WaitGroup>(*rtp));
            for (int i = 0; i < 10; ++i) {
                wg->add(1);
                GOLF_GO(*rtp, +[](sync::WaitGroup* w, int* d) -> Go {
                    co_await rt::sleepFor(kMillisecond);
                    ++*d;
                    w->done();
                    co_return;
                }, wg.get(), donep);
            }
            co_await wg->wait();
            EXPECT_EQ(*donep, 10);
            co_return;
        },
        &rt, &done);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(done, 10);
}

TEST(WaitGroupTest, WaitWithZeroCounterDoesNotBlock)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            sync::WaitGroup* wg = rtp->make<sync::WaitGroup>(*rtp);
            co_await wg->wait();
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.ok());
}

TEST(WaitGroupTest, NegativeCounterPanics)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            sync::WaitGroup* wg = rtp->make<sync::WaitGroup>(*rtp);
            wg->done();
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.panicked);
    EXPECT_EQ(r.panicMessage, "sync: negative WaitGroup counter");
}

TEST(WaitGroupTest, MultipleWaitersAllReleased)
{
    Runtime rt;
    int released = 0;
    rt.runMain(
        +[](Runtime* rtp, int* releasedp) -> Go {
            gc::Local<sync::WaitGroup> wg(
                rtp->make<sync::WaitGroup>(*rtp));
            wg->add(1);
            for (int i = 0; i < 4; ++i) {
                GOLF_GO(*rtp, +[](sync::WaitGroup* w, int* r) -> Go {
                    co_await w->wait();
                    ++*r;
                    co_return;
                }, wg.get(), releasedp);
            }
            co_await rt::sleepFor(kMillisecond);
            wg->done();
            co_await rt::sleepFor(kMillisecond);
            co_return;
        },
        &rt, &released);
    EXPECT_EQ(released, 4);
}

// ---------------------------------------------------------- RWMutex

TEST(RWMutexTest, ConcurrentReaders)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            sync::RWMutex* m = rtp->make<sync::RWMutex>(*rtp);
            co_await m->rlock();
            co_await m->rlock();
            EXPECT_EQ(m->readers(), 2);
            m->runlock();
            m->runlock();
            EXPECT_EQ(m->readers(), 0);
            co_return;
        },
        &rt);
}

TEST(RWMutexTest, WriterExcludesReaders)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::Local<sync::RWMutex> m(rtp->make<sync::RWMutex>(*rtp));
            co_await m->lock();
            rt::Goroutine* reader = GOLF_GO(*rtp,
                +[](sync::RWMutex* rw) -> Go {
                    co_await rw->rlock();
                    rw->runlock();
                    co_return;
                }, m.get());
            co_await rt::sleepFor(kMillisecond);
            EXPECT_EQ(reader->status(), rt::GStatus::Waiting);
            EXPECT_EQ(reader->waitReason(),
                      rt::WaitReason::RWMutexRLock);
            m->unlock();
            co_await rt::sleepFor(kMillisecond);
            EXPECT_EQ(reader->status(), rt::GStatus::Idle); // finished
            co_return;
        },
        &rt);
}

TEST(RWMutexTest, WriterPreferredOverNewReaders)
{
    Runtime rt;
    std::vector<std::string> order;
    rt.runMain(
        +[](Runtime* rtp, std::vector<std::string>* orderp) -> Go {
            gc::Local<sync::RWMutex> m(rtp->make<sync::RWMutex>(*rtp));
            co_await m->rlock(); // reader holds
            GOLF_GO(*rtp, +[](sync::RWMutex* rw,
                              std::vector<std::string>* op) -> Go {
                co_await rw->lock();
                op->push_back("writer");
                rw->unlock();
                co_return;
            }, m.get(), orderp);
            co_await rt::sleepFor(kMillisecond);
            // A new reader must queue behind the waiting writer.
            GOLF_GO(*rtp, +[](sync::RWMutex* rw,
                              std::vector<std::string>* op) -> Go {
                co_await rw->rlock();
                op->push_back("reader");
                rw->runlock();
                co_return;
            }, m.get(), orderp);
            co_await rt::sleepFor(kMillisecond);
            m->runlock();
            co_await rt::sleepFor(5 * kMillisecond);
            co_return;
        },
        &rt, &order);
    EXPECT_EQ(order,
              (std::vector<std::string>{"writer", "reader"}));
}

TEST(RWMutexTest, UnlockErrorsPanic)
{
    Runtime rt;
    RunResult r = rt.runMain(
        +[](Runtime* rtp) -> Go {
            sync::RWMutex* m = rtp->make<sync::RWMutex>(*rtp);
            m->runlock();
            co_return;
        },
        &rt);
    EXPECT_TRUE(r.panicked);
}

// ------------------------------------------------------------- Cond

TEST(CondTest, SignalWakesOneWaiter)
{
    Runtime rt;
    int woken = 0;
    rt.runMain(
        +[](Runtime* rtp, int* wokenp) -> Go {
            gc::Local<sync::Mutex> mu(rtp->make<sync::Mutex>(*rtp));
            gc::Local<sync::Cond> cond(
                rtp->make<sync::Cond>(*rtp, mu.get()));
            for (int i = 0; i < 3; ++i) {
                GOLF_GO(*rtp, +[](sync::Cond* c, int* w) -> Go {
                    co_await c->locker()->lock();
                    co_await c->wait();
                    ++*w;
                    c->locker()->unlock();
                    co_return;
                }, cond.get(), wokenp);
            }
            co_await rt::sleepFor(kMillisecond);
            cond->signal();
            co_await rt::sleepFor(kMillisecond);
            EXPECT_EQ(*wokenp, 1);
            cond->broadcast();
            co_await rt::sleepFor(kMillisecond);
            EXPECT_EQ(*wokenp, 3);
            co_return;
        },
        &rt, &woken);
    EXPECT_EQ(woken, 3);
}

TEST(CondTest, SignalWithNoWaitersIsNoop)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            sync::Mutex* mu = rtp->make<sync::Mutex>(*rtp);
            sync::Cond* cond = rtp->make<sync::Cond>(*rtp, mu);
            cond->signal();
            cond->broadcast();
            co_return;
        },
        &rt);
}

TEST(CondTest, WaitReacquiresMutex)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::Local<sync::Mutex> mu(rtp->make<sync::Mutex>(*rtp));
            gc::Local<sync::Cond> cond(
                rtp->make<sync::Cond>(*rtp, mu.get()));
            bool holding = false;
            GOLF_GO(*rtp, +[](sync::Cond* c, bool* h) -> Go {
                co_await c->locker()->lock();
                co_await c->wait();
                *h = c->locker()->locked();
                c->locker()->unlock();
                co_return;
            }, cond.get(), &holding);
            co_await rt::sleepFor(kMillisecond);
            // Waiter released the mutex while parked.
            EXPECT_TRUE(mu->tryLock());
            mu->unlock();
            cond->signal();
            co_await rt::sleepFor(kMillisecond);
            EXPECT_TRUE(holding);
            co_return;
        },
        &rt);
}

// -------------------------------------------------------- Semaphore

TEST(SemaphoreTest, AcquireReleaseCounting)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            sync::Semaphore* s = rtp->make<sync::Semaphore>(*rtp, 2);
            co_await s->acquire();
            co_await s->acquire();
            EXPECT_EQ(s->count(), 0u);
            s->release();
            EXPECT_EQ(s->count(), 1u);
            co_return;
        },
        &rt);
}

TEST(SemaphoreTest, BlockedAcquireWokenByRelease)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::Local<sync::Semaphore> s(
                rtp->make<sync::Semaphore>(*rtp, 0));
            rt::Goroutine* g = GOLF_GO(*rtp,
                +[](sync::Semaphore* sem) -> Go {
                    co_await sem->acquire();
                    co_return;
                }, s.get());
            co_await rt::sleepFor(kMillisecond);
            EXPECT_EQ(g->status(), rt::GStatus::Waiting);
            EXPECT_EQ(g->waitReason(), rt::WaitReason::SemAcquire);
            // The goroutine's masked semaphore pointer is recorded.
            EXPECT_TRUE(static_cast<bool>(g->blockedSema()));
            EXPECT_TRUE(rtp->semtable().checkMaskedKeys());
            s->release();
            co_await rt::sleepFor(kMillisecond);
            EXPECT_EQ(g->status(), rt::GStatus::Idle);
            co_return;
        },
        &rt);
}

TEST(SemTableTest, EntriesTrackWaiters)
{
    Runtime rt;
    rt.runMain(
        +[](Runtime* rtp) -> Go {
            gc::Local<sync::Semaphore> a(
                rtp->make<sync::Semaphore>(*rtp, 0));
            gc::Local<sync::Semaphore> b(
                rtp->make<sync::Semaphore>(*rtp, 0));
            auto acquirer = +[](sync::Semaphore* sem) -> Go {
                co_await sem->acquire();
                co_return;
            };
            GOLF_GO(*rtp, acquirer, a.get());
            GOLF_GO(*rtp, acquirer, a.get());
            GOLF_GO(*rtp, acquirer, b.get());
            co_await rt::sleepFor(kMillisecond);
            EXPECT_EQ(rtp->semtable().entries(), 2u);
            a->release();
            a->release();
            b->release();
            co_await rt::sleepFor(kMillisecond);
            EXPECT_EQ(rtp->semtable().entries(), 0u);
            co_return;
        },
        &rt);
}

} // namespace
} // namespace golf
