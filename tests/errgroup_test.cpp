/**
 * @file
 * errgroup tests: fan-out/fan-in, first-error retention, context
 * cancellation of siblings, and GOLF detection of the classic
 * "worker stuck, Wait never returns" leak.
 */
#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "chan/select.hpp"
#include "golf/collector.hpp"
#include "runtime/local.hpp"
#include "runtime/runtime.hpp"
#include "sync/errgroup.hpp"

namespace golf {
namespace {

using chan::Channel;
using chan::makeChan;
using rt::Go;
using rt::Runtime;
using support::kMillisecond;

rt::Task<int>
okWorker(int* counter)
{
    co_await rt::yield();
    ++*counter;
    co_return 0;
}

TEST(ErrGroupTest, AllWorkersSucceed)
{
    Runtime rt;
    int done = 0;
    rt.runMain(
        +[](Runtime* rtp, int* donep) -> Go {
            gc::Local<sync::ErrGroup> g(
                rtp->make<sync::ErrGroup>(*rtp));
            for (int i = 0; i < 6; ++i)
                g->spawn(okWorker, donep);
            int err = co_await g->wait();
            EXPECT_EQ(err, 0);
            EXPECT_EQ(*donep, 6);
            co_return;
        },
        &rt, &done);
    EXPECT_EQ(done, 6);
}

rt::Task<int>
failing(int code)
{
    co_await rt::yield();
    co_return code;
}

TEST(ErrGroupTest, FirstErrorWins)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        gc::Local<sync::ErrGroup> g(rtp->make<sync::ErrGroup>(*rtp));
        g->spawn(failing, 7);
        co_await rt::sleepFor(kMillisecond);
        g->spawn(failing, 9);
        int err = co_await g->wait();
        EXPECT_EQ(err, 7); // the first error is retained
        co_return;
    }, &rt);
}

rt::Task<int>
ctxWorker(rt::Context* ctx, Channel<int>* slow, int* bailed)
{
    int idx = co_await chan::select(chan::recvCase(slow),
                                    chan::recvCase(ctx->done()));
    if (idx == 1) {
        ++*bailed;
        co_return 0; // cancelled: clean exit
    }
    co_return 0;
}

TEST(ErrGroupTest, ErrorCancelsSiblingsThroughContext)
{
    Runtime rt;
    int bailed = 0;
    rt.runMain(
        +[](Runtime* rtp, int* bailedp) -> Go {
            gc::Local<sync::ErrGroup> g(sync::makeErrGroup(
                *rtp, rt::background(*rtp)));
            gc::Local<Channel<int>> slow(makeChan<int>(*rtp, 0));
            for (int i = 0; i < 4; ++i)
                g->spawn(ctxWorker, g->context(), slow.get(),
                         bailedp);
            co_await rt::sleepFor(kMillisecond);
            g->spawn(failing, 3); // fails -> cancels the context
            int err = co_await g->wait();
            EXPECT_EQ(err, 3);
            EXPECT_EQ(*bailedp, 4); // every sibling bailed out
            co_return;
        },
        &rt, &bailed);
    EXPECT_EQ(rt.countByStatus(rt::GStatus::Waiting), 0u);
}

rt::Task<int>
stuckWorker(Channel<int>* never)
{
    co_await chan::recv(never);
    co_return 0;
}

TEST(ErrGroupTest, StuckWorkerLeakDetectedThroughGroup)
{
    // The classic leak: one worker never finishes, so wait() parks
    // forever. Once the spawning request drops the group, GOLF must
    // report the stuck worker AND the waiter (two goroutines).
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        GOLF_GO(*rtp, +[](Runtime* rp) -> Go {
            gc::Local<sync::ErrGroup> g(
                rp->make<sync::ErrGroup>(*rp));
            g->spawn(stuckWorker, makeChan<int>(*rp, 0));
            co_await g->wait(); // never returns
            co_return;
        }, rtp);
        co_await rt::sleepFor(kMillisecond);
        co_await rt::gcNow();
        EXPECT_EQ(rtp->collector().reports().total(), 2u);
        co_await rt::gcNow(); // reclaim both
        EXPECT_EQ(rtp->blockedCandidates().size(), 0u);
        EXPECT_EQ(rtp->heap().liveObjects(), 0u);
        co_return;
    }, &rt);
}

TEST(ErrGroupTest, WaitOnEmptyGroupReturnsImmediately)
{
    Runtime rt;
    rt.runMain(+[](Runtime* rtp) -> Go {
        gc::Local<sync::ErrGroup> g(rtp->make<sync::ErrGroup>(*rtp));
        int err = co_await g->wait();
        EXPECT_EQ(err, 0);
        co_return;
    }, &rt);
}

} // namespace
} // namespace golf
